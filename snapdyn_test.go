package snapdyn

import (
	"testing"
	"testing/quick"
)

func TestQuickstartFlow(t *testing.T) {
	g := New(100, WithExpectedEdges(1000), Undirected())
	g.InsertEdge(1, 2, 10)
	g.InsertEdge(2, 3, 20)
	g.InsertEdge(10, 11, 30)
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Fatal("undirected insert must create both arcs")
	}
	if g.NumEdges() != 6 {
		t.Fatalf("arcs = %d, want 6", g.NumEdges())
	}
	snap := g.Snapshot(2)
	conn := snap.Connectivity(2)
	if !conn.Connected(1, 3) {
		t.Fatal("1 and 3 must be connected")
	}
	if conn.Connected(1, 10) {
		t.Fatal("1 and 10 must not be connected")
	}
	// Vertices {1,2,3} and {10,11} form 2 components; 95 singletons.
	if snap.ComponentCount(2) != 100-5+2 {
		t.Fatalf("components = %d", snap.ComponentCount(2))
	}
}

func TestRepresentations(t *testing.T) {
	reps := []Representation{RepHybrid, RepDynArr, RepTreaps, RepVpart, RepEpart}
	for _, r := range reps {
		g := New(10, WithRepresentation(r))
		if g.Representation() != r.String() {
			t.Fatalf("rep name %q != %q", g.Representation(), r.String())
		}
		g.InsertEdge(0, 1, 5)
		if !g.HasEdge(0, 1) || g.OutDegree(0) != 1 {
			t.Fatalf("%v: basic ops broken", r)
		}
		if !g.DeleteEdge(0, 1) || g.HasEdge(0, 1) {
			t.Fatalf("%v: delete broken", r)
		}
	}
	if Representation(99).String() == "" {
		t.Fatal("unknown representation string empty")
	}
}

func TestBatchedOption(t *testing.T) {
	g := New(10, WithRepresentation(RepDynArr), Batched())
	if g.Representation() != "batched(dyn-arr)" {
		t.Fatalf("rep = %q", g.Representation())
	}
	g.ApplyUpdates(2, []Update{
		{Edge: Edge{U: 0, V: 1, T: 1}, Op: OpInsert},
		{Edge: Edge{U: 0, V: 2, T: 2}, Op: OpInsert},
		{Edge: Edge{U: 0, V: 1}, Op: OpDelete},
	})
	if g.HasEdge(0, 1) || !g.HasEdge(0, 2) {
		t.Fatal("batched updates wrong")
	}
}

func TestDirectedVsUndirected(t *testing.T) {
	d := New(4)
	d.InsertEdge(0, 1, 0)
	if d.HasEdge(1, 0) {
		t.Fatal("directed graph created a mirror arc")
	}
	if d.Undirected() {
		t.Fatal("Undirected() wrong")
	}
	u := New(4, Undirected())
	u.InsertEdge(0, 1, 0)
	u.InsertEdge(2, 2, 0) // self loop: single arc
	if u.NumEdges() != 3 {
		t.Fatalf("arcs = %d, want 3", u.NumEdges())
	}
	u.DeleteEdge(0, 1)
	if u.HasEdge(1, 0) || u.HasEdge(0, 1) {
		t.Fatal("undirected delete must remove both arcs")
	}
}

func TestApplyUpdatesMirrorsForUndirected(t *testing.T) {
	g := New(6, Undirected())
	g.ApplyUpdates(2, []Update{{Edge: Edge{U: 3, V: 4, T: 7}, Op: OpInsert}})
	if !g.HasEdge(4, 3) {
		t.Fatal("mirror arc missing")
	}
}

func TestGenerateAndLoad(t *testing.T) {
	p := PaperRMAT(10, 8*(1<<10), 50, 99)
	edges, err := GenerateRMAT(0, p)
	if err != nil {
		t.Fatal(err)
	}
	g := New(p.NumVertices(), WithExpectedEdges(len(edges)))
	g.InsertEdges(0, edges)
	if g.NumEdges() != int64(len(edges)) {
		t.Fatalf("m = %d, want %d", g.NumEdges(), len(edges))
	}
	st := g.Stats()
	if st.MaxDegree < 40 {
		t.Fatalf("max degree %d unexpectedly small for R-MAT", st.MaxDegree)
	}
}

func TestSnapshotKernels(t *testing.T) {
	p := PaperRMAT(10, 8*(1<<10), 100, 5)
	edges, _ := GenerateRMAT(0, p)
	g := New(p.NumVertices(), WithExpectedEdges(2*len(edges)), Undirected())
	g.InsertEdges(0, edges)
	snap := g.Snapshot(0)

	// BFS from a sampled source.
	srcs := snap.SampleSources(4, 3)
	res := snap.BFS(2, srcs[0])
	if res.Reached < 2 {
		t.Fatal("BFS reached nothing")
	}
	// Temporal BFS reaches no more than full BFS.
	tres := snap.TemporalBFS(2, srcs[0], 1, 50)
	if tres.Reached > res.Reached {
		t.Fatal("temporal BFS reached more than unfiltered")
	}
	// st-connectivity agrees with the connectivity index.
	conn := snap.Connectivity(2)
	for _, v := range srcs {
		ok, _ := snap.STConnected(2, srcs[0], v)
		if ok != conn.Connected(srcs[0], v) {
			t.Fatalf("BFS and LCT disagree on (%d,%d)", srcs[0], v)
		}
	}
	// Induced subgraph shrinks.
	sub := snap.InducedByTime(2, 20, 70)
	if sub.NumEdges() >= snap.NumEdges() {
		t.Fatal("time filter removed nothing")
	}
	if sub.NumVertices() != snap.NumVertices() {
		t.Fatal("vertex set must be stable")
	}
	// Active vertices.
	act := snap.ActiveVertices(2, 1, 100)
	anyActive := false
	for _, a := range act {
		if a {
			anyActive = true
			break
		}
	}
	if !anyActive {
		t.Fatal("no active vertices in full window")
	}
	// Betweenness (approximate).
	bc := snap.Betweenness(2, BCOptions{Temporal: true, Sources: srcs})
	if len(bc) != snap.NumVertices() {
		t.Fatal("bc length wrong")
	}
}

func TestConnectivityDynamicOps(t *testing.T) {
	c := NewConnectivity(5)
	if err := c.Link(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Link(2, 1); err != nil {
		t.Fatal(err)
	}
	if !c.Connected(0, 2) || c.FindRoot(0) != 1 {
		t.Fatal("link results wrong")
	}
	if !c.Cut(0) || c.Connected(0, 2) {
		t.Fatal("cut results wrong")
	}
	qs := []Query{{U: 0, V: 2}, {U: 2, V: 1}}
	rs := make([]bool, 2)
	c.ConnectedBatch(2, qs, rs)
	if rs[0] || !rs[1] {
		t.Fatal("batch queries wrong")
	}
	if c.TreeHeight() != 1 {
		t.Fatalf("height = %d", c.TreeHeight())
	}
}

func TestSanitizeStreamFacade(t *testing.T) {
	ups := []Update{
		{Edge: Edge{U: 0, V: 1}, Op: OpInsert},
		{Edge: Edge{U: 0, V: 200}, Op: OpInsert},
	}
	clean, dropped := SanitizeStream(ups, 10, false)
	if dropped != 1 || len(clean) != 1 {
		t.Fatal("sanitize wrong")
	}
}

func TestStreamHelpersProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		p := PaperRMAT(8, 500, 10, seed)
		edges, err := GenerateRMAT(2, p)
		if err != nil {
			return false
		}
		ups := Inserts(edges)
		ShuffleStream(ups, seed)
		bs := StreamBatches(ups, 64)
		total := 0
		for _, b := range bs {
			total += len(b)
		}
		return total == len(ups)
	}, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestDeletionsFacade(t *testing.T) {
	p := PaperRMAT(8, 400, 10, 4)
	edges, _ := GenerateRMAT(0, p)
	dels := Deletions(edges, 100, 9)
	if len(dels) != 100 {
		t.Fatalf("dels = %d", len(dels))
	}
	g := New(p.NumVertices(), WithExpectedEdges(len(edges)))
	g.InsertEdges(0, edges)
	before := g.NumEdges()
	g.ApplyUpdates(0, dels)
	if g.NumEdges() != before-100 {
		t.Fatalf("m = %d, want %d", g.NumEdges(), before-100)
	}
}

func TestMixedStreamFacade(t *testing.T) {
	p := PaperRMAT(9, 1000, 10, 6)
	base, _ := GenerateRMAT(0, p)
	p2 := p
	p2.Seed = 7
	extra, _ := GenerateRMAT(0, p2)
	ups, err := MixedStream(base, extra, 500, 0.75, 8)
	if err != nil {
		t.Fatal(err)
	}
	ins := 0
	for _, u := range ups {
		if u.Op == OpInsert {
			ins++
		}
	}
	if ins != 375 {
		t.Fatalf("inserts = %d, want 375", ins)
	}
}

func TestBFSWithEngines(t *testing.T) {
	g := New(64, Undirected())
	for v := VertexID(0); v < 63; v++ {
		g.InsertEdge(v, v+1, 1)
	}
	snap := g.Snapshot(2)
	td := snap.BFSWith(0, BFSOptions{Strategy: BFSTopDown})
	do := snap.BFSWith(0, BFSOptions{Strategy: BFSDirectionOpt})
	for v := range td.Level {
		if td.Level[v] != do.Level[v] {
			t.Fatalf("engines disagree at %d: %d vs %d", v, td.Level[v], do.Level[v])
		}
	}
	tr := snap.Traverser(BFSOptions{Strategy: BFSDirectionOpt})
	r1 := tr.BFS(0)
	if r1.Reached != td.Reached || r1.Levels != td.Levels {
		t.Fatalf("traverser reached/levels %d/%d, want %d/%d",
			r1.Reached, r1.Levels, td.Reached, td.Levels)
	}
	if r2 := tr.BFS(0); r2 != r1 {
		t.Fatal("traverser must reuse its result")
	}
}

func TestBFSDirectionOptDirectedFallback(t *testing.T) {
	// A directed one-way chain: the pull step alone could never discover
	// it (no mirror arcs), so BFSWith must fall back to top-down and
	// still reach everything.
	g := New(32)
	for v := VertexID(0); v < 31; v++ {
		g.InsertEdge(v, v+1, 1)
	}
	snap := g.Snapshot(2)
	res := snap.BFSWith(0, BFSOptions{Strategy: BFSDirectionOpt})
	if res.Reached != 32 {
		t.Fatalf("directed fallback reached %d, want 32", res.Reached)
	}
	for v := 0; v < 32; v++ {
		if res.Level[v] != int32(v) {
			t.Fatalf("level[%d] = %d, want %d", v, res.Level[v], v)
		}
	}
	if tres := snap.Traverser(BFSOptions{Strategy: BFSDirectionOpt}).BFS(0); tres.Reached != 32 {
		t.Fatalf("traverser directed fallback reached %d, want 32", tres.Reached)
	}
}
