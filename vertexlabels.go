package snapdyn

// Vertex time labels, the ξ(v) of the paper's temporal network model:
// "we can similarly define time labels ξ(v) for vertices v ∈ V,
// capturing, for instance, the time when the entity was added or
// removed." Labels are optional per-graph metadata consulted by the
// vertex-window analysis helpers.

import (
	"sync/atomic"

	"snapdyn/internal/par"
)

// VertexLabels stores one time label per vertex, safe for concurrent
// update (atomic stores/loads).
type VertexLabels struct {
	labels []uint32
}

// NewVertexLabels creates a label table for n vertices, all initialized
// to 0 (no label).
func NewVertexLabels(n int) *VertexLabels {
	return &VertexLabels{labels: make([]uint32, n)}
}

// Len returns the table size.
func (l *VertexLabels) Len() int { return len(l.labels) }

// Set assigns ξ(v) = t.
func (l *VertexLabels) Set(v VertexID, t uint32) {
	atomic.StoreUint32(&l.labels[v], t)
}

// Get returns ξ(v).
func (l *VertexLabels) Get(v VertexID) uint32 {
	return atomic.LoadUint32(&l.labels[v])
}

// InWindow returns the keep-mask of vertices with ξ(v) in [lo, hi],
// computed in parallel.
func (l *VertexLabels) InWindow(workers int, lo, hi uint32) []bool {
	keep := make([]bool, len(l.labels))
	par.ForBlock(workers, len(l.labels), func(blo, bhi int) {
		for v := blo; v < bhi; v++ {
			t := atomic.LoadUint32(&l.labels[v])
			keep[v] = t >= lo && t <= hi
		}
	})
	return keep
}

// FromEdgeTimes derives vertex labels from a snapshot: ξ(v) is the
// earliest incident arc label (the entity's first appearance), 0 for
// isolated vertices. Computed in parallel over sources; for undirected
// snapshots every edge is seen from both endpoints.
func FromEdgeTimes(workers int, s *Snapshot) *VertexLabels {
	l := NewVertexLabels(s.NumVertices())
	par.ForDynamic(workers, s.NumVertices(), 256, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			_, ts := s.Neighbors(VertexID(u))
			first := uint32(0)
			for _, t := range ts {
				if t != 0 && (first == 0 || t < first) {
					first = t
				}
			}
			l.labels[u] = first
		}
	})
	return l
}

// InducedByVertexWindow extracts the subgraph induced by vertices whose
// label falls in [lo, hi] — the snapshot of entities active in a period.
func (s *Snapshot) InducedByVertexWindow(workers int, l *VertexLabels, lo, hi uint32) *Snapshot {
	return s.InducedByVertices(workers, l.InWindow(workers, lo, hi))
}
