package snapdyn

import (
	"sync"

	"snapdyn/internal/cc"
	"snapdyn/internal/csr"
	"snapdyn/internal/dyngraph"
	"snapdyn/internal/shard"
	"snapdyn/internal/sssp"
	"snapdyn/internal/stream"
)

// ShardedGraph is the vertex-partitioned counterpart of a Graph behind
// a SnapshotManager: P shard workers, each owning its own dirty-tracked
// store and epoch-versioned snapshot manager, fronted by a router that
// assigns vertex u to shard u mod P (the paper's Vpart rule). Ingest
// batches scatter to the owning shards' gates and apply concurrently;
// queries pin one snapshot per shard and run scatter-gather kernels
// across the pinned set.
//
// The API mirrors SnapshotManager: gated ingest (ApplyUpdates,
// InsertEdge, DeleteEdge), Refresh/Current returning an immutable view,
// and the same auto-refresh policy type. Two contracts differ from the
// single-store manager and are worth naming:
//
//   - Per-shard epochs are independently monotone; Epoch reports their
//     sum. There is no global epoch, so two updates routed to different
//     shards have no defined cross-shard order — exactly like two
//     updates racing a single gate.
//   - A query (anything on a ShardedView) pins one snapshot per shard
//     for its whole run; mid-query refreshes publish without affecting
//     the pinned set.
//
// All methods are safe for concurrent use.
type ShardedGraph struct {
	f          *shard.Fleet
	undirected bool
}

// NewSharded creates a vertex-partitioned dynamic graph over n vertices
// with the given shard count. Options are interpreted per shard: each
// shard's store uses the selected representation over the full vertex
// set (only owned vertices receive arcs), sized to expected-edges /
// shards, with the seed offset per shard for distinct treap priorities.
func NewSharded(n, shards int, opts ...Option) *ShardedGraph {
	o := Options{expectedEdges: 8 * n, seed: 1}
	for _, f := range opts {
		f(&o)
	}
	f := shard.New(n, shard.Config{
		Shards:        shards,
		ExpectedEdges: o.expectedEdges,
		NewStore: func(s, n, perShard int) dyngraph.Store {
			seed := o.seed + uint64(s)
			var st dyngraph.Store
			switch o.rep {
			case RepDynArr:
				st = dyngraph.NewDynArr(n, perShard)
			case RepTreaps:
				st = dyngraph.NewTreapStore(n, seed)
			case RepVpart:
				st = dyngraph.NewVpart(n, perShard)
			case RepEpart:
				st = dyngraph.NewEpart(n, perShard, 0)
			default:
				st = dyngraph.NewHybrid(n, perShard, o.degreeThresh, seed)
			}
			if o.batched {
				st = dyngraph.NewBatched(st)
			}
			return st
		},
	})
	return &ShardedGraph{f: f, undirected: o.undirected}
}

// NumVertices returns the global vertex-set size.
func (g *ShardedGraph) NumVertices() int { return g.f.NumVertices() }

// NumEdges returns the number of live arcs across all shards (an
// undirected edge counts as two arcs).
func (g *ShardedGraph) NumEdges() int64 { return g.f.NumEdges() }

// Shards returns the shard count P.
func (g *ShardedGraph) Shards() int { return g.f.Shards() }

// Undirected reports whether the graph maintains both arcs per edge.
func (g *ShardedGraph) Undirected() bool { return g.undirected }

// ShardOf returns the shard owning u's adjacency (u mod P).
func (g *ShardedGraph) ShardOf(u VertexID) int { return g.f.Owner(u) }

// ApplyUpdates scatters a batch by vertex owner and applies the
// sub-batches through the shards' gates concurrently — safe alongside
// other gated ingest and the background auto-refreshers. Mirrors the
// batch first for undirected graphs, like SnapshotManager.ApplyUpdates.
func (g *ShardedGraph) ApplyUpdates(workers int, batch []Update) {
	if g.undirected {
		batch = stream.Mirror(batch)
	}
	g.f.Ingest(workers, batch)
}

// InsertEdge adds the edge u->v at time t through the owning shard's
// gate (and v->u through its owner's gate for undirected graphs).
func (g *ShardedGraph) InsertEdge(u, v VertexID, t uint32) {
	g.f.Manager(g.f.Owner(u)).Ingest(func(s *dyngraph.Tracked) { s.Insert(u, v, t) })
	if g.undirected && u != v {
		g.f.Manager(g.f.Owner(v)).Ingest(func(s *dyngraph.Tracked) { s.Insert(v, u, t) })
	}
}

// DeleteEdge removes one edge u->v (and its mirror for undirected
// graphs) through the owning shards' gates, reporting whether the
// forward arc existed.
func (g *ShardedGraph) DeleteEdge(u, v VertexID) bool {
	var ok bool
	g.f.Manager(g.f.Owner(u)).Ingest(func(s *dyngraph.Tracked) { ok = s.Delete(u, v) })
	if g.undirected && u != v {
		g.f.Manager(g.f.Owner(v)).Ingest(func(s *dyngraph.Tracked) { s.Delete(v, u) })
	}
	return ok
}

// Refresh materializes and publishes every shard's snapshot (all shards
// in parallel, each incremental over its own dirty set) and returns the
// new current view.
func (g *ShardedGraph) Refresh(workers int) *ShardedView {
	g.f.Refresh(workers)
	return g.Current()
}

// Current pins the latest published snapshot of every shard and returns
// them as one immutable scatter-gather view: P atomic loads, never
// blocking. The view stays valid while newer snapshots are published.
func (g *ShardedGraph) Current() *ShardedView {
	return &ShardedView{views: g.f.View(nil), undirected: g.undirected}
}

// Epoch returns the sum of the per-shard epochs: monotone, and advanced
// by P per full Refresh (by 1 per single-shard auto-refresh).
func (g *ShardedGraph) Epoch() uint64 { return g.f.Epoch() }

// Staleness returns the total number of vertices dirtied across shards
// since their last refreshes began — the work the next Refresh will do.
func (g *ShardedGraph) Staleness() int { return g.f.Staleness() }

// StartAutoRefresh launches one background refresher per shard under
// the given policy, reporting false if any was already running. While
// they run, mutations must go through the gated ingest methods.
func (g *ShardedGraph) StartAutoRefresh(p AutoRefreshPolicy) bool { return g.f.Start(p) }

// StopAutoRefresh halts every shard's background refresher, waiting for
// in-flight refreshes to publish.
func (g *ShardedGraph) StopAutoRefresh() { g.f.Stop() }

// Metrics returns refresh metrics aggregated across shards: counts and
// latency totals sum, worst-case latencies and age take the max.
func (g *ShardedGraph) Metrics() RefreshMetrics { return g.f.Metrics() }

// ShardedStats summarizes a sharded view's shape.
type ShardedStats = shard.Stats

// ShardedView is an immutable scatter-gather view: one pinned snapshot
// per shard, together covering every arc exactly once. Query methods
// are safe for concurrent use (each call checks out pooled scratch) and
// return freshly allocated results.
type ShardedView struct {
	views      []*csr.Graph
	undirected bool
	pool       sync.Pool // *shard.Scratch
}

func (v *ShardedView) scratch() *shard.Scratch {
	if sc, ok := v.pool.Get().(*shard.Scratch); ok {
		return sc
	}
	return shard.NewScratch()
}

// NumVertices returns the vertex-set size.
func (v *ShardedView) NumVertices() int { return v.views[0].N }

// NumEdges returns the number of arcs across the pinned snapshots.
func (v *ShardedView) NumEdges() int64 {
	var m int64
	for _, g := range v.views {
		m += g.NumEdges()
	}
	return m
}

// Shards returns the number of pinned per-shard snapshots.
func (v *ShardedView) Shards() int { return len(v.views) }

// BFS runs a scatter-gather breadth-first search from src, returning
// the hop distance per vertex (NotVisited when unreached), the reached
// count, and the number of levels.
func (v *ShardedView) BFS(src VertexID) (level []int32, reached, levels int) {
	sc := v.scratch()
	l, r, d := sc.BFS(v.views, src)
	level = append([]int32(nil), l...)
	v.pool.Put(sc)
	return level, r, d
}

// STConnected answers an st-connectivity query by early-exiting
// scatter-gather traversal, returning reachability and hop distance
// (-1 if unreachable).
func (v *ShardedView) STConnected(u, w VertexID) (bool, int32) {
	if u == w {
		return true, 0
	}
	sc := v.scratch()
	hops, ok := sc.STConnected(v.views, u, w)
	v.pool.Put(sc)
	if !ok {
		return false, -1
	}
	return true, hops
}

// ShortestPaths runs sharded delta-stepping from src with arc time
// labels as weights, returning the distance per vertex (InfDistance
// when unreachable). delta <= 0 derives the global heuristic bucket
// width from the pinned snapshots.
func (v *ShardedView) ShortestPaths(src VertexID, delta int64) []int64 {
	sc := v.scratch()
	d := sc.SSSP(v.views, src, sssp.LabelWeights, delta)
	dist := append([]int64(nil), d...)
	v.pool.Put(sc)
	return dist
}

// Components labels weakly-connected components by cross-shard label
// merge: comp[u] == comp[v] iff u and v are connected. Labels are
// bit-identical to Snapshot.Components over the union graph.
func (v *ShardedView) Components() []uint32 {
	sc := v.scratch()
	c := sc.Components(v.views)
	comp := append([]uint32(nil), c...)
	v.pool.Put(sc)
	return comp
}

// ComponentCount returns the number of weakly-connected components.
func (v *ShardedView) ComponentCount() int {
	sc := v.scratch()
	n := cc.Count(sc.Components(v.views))
	v.pool.Put(sc)
	return n
}

// Stats fans out over the shards and reduces vertex, arc, and degree
// summaries.
func (v *ShardedView) Stats() ShardedStats {
	sc := v.scratch()
	st := sc.Stats(v.views)
	v.pool.Put(sc)
	return st
}
