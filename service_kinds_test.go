package snapdyn

import (
	"testing"

	"snapdyn/internal/qserve"
)

// benchExecutor builds the serving stack over an R-MAT graph at the
// given scale — the shared setup of the analytics-kind benchmarks.
func benchExecutor(b *testing.B, scale int, cfg qserve.Config) (*qserve.Executor, *SnapshotManager) {
	b.Helper()
	n := 1 << scale
	edges, err := GenerateRMAT(0, PaperRMAT(scale, 10*n, 100, 1))
	if err != nil {
		b.Fatal(err)
	}
	g := New(n, WithExpectedEdges(4*len(edges)), Undirected())
	g.InsertEdges(0, edges)
	sm := g.Manager(0)
	return executorFor(sm, cfg), sm
}

// BenchmarkClusteringQuery measures the pooled clustering-coefficient
// query: a full triangle recount per op from the reused arena.
// allocs/op must stay at zero at the serving config.
func BenchmarkClusteringQuery(b *testing.B) {
	ex, _ := benchExecutor(b, 14, qserve.Config{Undirected: true, MaxConcurrent: 1})
	if _, err := ex.Clustering(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Clustering(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKHopQuery measures the depth-limited neighborhood query at
// the acceptance scale: a BFS truncated at level k, so arcs beyond the
// horizon are never expanded. allocs/op must stay at zero.
func BenchmarkKHopQuery(b *testing.B) {
	ex, sm := benchExecutor(b, 16, qserve.Config{Undirected: true, MaxConcurrent: 1})
	src := sm.Current().SampleSources(1, 1)[0]
	if _, err := ex.KHop(src, 3); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.KHop(src, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPageRankQuery measures the push-residual PageRank solve at
// the default tolerance, all state pooled. allocs/op must stay at zero.
func BenchmarkPageRankQuery(b *testing.B) {
	ex, _ := benchExecutor(b, 14, qserve.Config{Undirected: true, MaxConcurrent: 1})
	if _, err := ex.PageRank(0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.PageRank(0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLiveConnectedQuery measures the between-refresh connectivity
// path at the acceptance scale: admission, two root walks in the
// dynamic forest under a read lock, reply by value. allocs/op must stay
// at zero — this is the query the ingest hot path answers from.
func BenchmarkLiveConnectedQuery(b *testing.B) {
	ex, sm := benchExecutor(b, 16, qserve.Config{Undirected: true, MaxConcurrent: 1})
	ex.EnableLive()
	srcs := sm.Current().SampleSources(2, 1)
	if _, err := ex.ConnectedLive(srcs[0], srcs[1]); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.ConnectedLive(srcs[0], srcs[1]); err != nil {
			b.Fatal(err)
		}
	}
}
