package snapdyn

// Benchmarks for the memory-scale snapshot formats the pipeline can
// publish: gap-compressed adjacency traversed by streaming decode, and
// locality-reordered CSR. Both assert the engine's zero-allocation
// steady state before timing — a regression there silently destroys the
// formats' throughput story.

import (
	"testing"

	"snapdyn/internal/traversal"
)

// layoutBenchSnapshot publishes one snapshot of a bench-sized R-MAT
// graph in the given layout and picks a giant-component source.
func layoutBenchSnapshot(b *testing.B, layout SnapshotLayout) (*Snapshot, VertexID) {
	b.Helper()
	p := PaperRMAT(14, 8<<14, 100, 3)
	edges, err := GenerateRMAT(0, p)
	if err != nil {
		b.Fatal(err)
	}
	g := New(p.NumVertices(), WithExpectedEdges(2*len(edges)), Undirected())
	g.InsertEdges(0, edges)
	snap := g.ManagerWithLayout(0, layout).Current()
	return snap, snap.SampleSources(1, 5)[0]
}

// BenchmarkCompressedBFS times the traversal engine streaming directly
// over the gap-compressed adjacency published by a SnapshotCompressed
// manager, with a warm scratch. The serial steady state must not
// allocate: the cursor decode borrows no buffers and the scratch holds
// every frontier.
func BenchmarkCompressedBFS(b *testing.B) {
	snap, src := layoutBenchSnapshot(b, SnapshotCompressed)
	scratch := traversal.NewScratch()
	res := &traversal.Result{}
	sources := []uint32{src}
	opt := traversal.Options{Workers: 1}
	traversal.RunStream(snap.cg, sources, opt, scratch, res)
	if allocs := testing.AllocsPerRun(5, func() {
		traversal.RunStream(snap.cg, sources, opt, scratch, res)
	}); allocs > 0 {
		b.Fatalf("compressed BFS steady-state allocs/run = %g, want 0", allocs)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		traversal.RunStream(snap.cg, sources, opt, scratch, res)
	}
	b.ReportMetric(float64(snap.view.SizeBytes())/float64(snap.NumEdges()), "B/arc")
	b.ReportMetric(float64(snap.NumEdges())*float64(b.N)/b.Elapsed().Seconds()/1e6, "MTEPS")
}

// BenchmarkReorderedBFS times the engine over each locality-reordered
// CSR layout in layout space (the facade translates at the boundary;
// the kernel itself runs on permuted ids), against the plain baseline.
func BenchmarkReorderedBFS(b *testing.B) {
	for _, layout := range []SnapshotLayout{
		SnapshotPlain, SnapshotDegree, SnapshotBFS, SnapshotRCM,
	} {
		b.Run(layout.String(), func(b *testing.B) {
			snap, src := layoutBenchSnapshot(b, layout)
			scratch := traversal.NewScratch()
			res := &traversal.Result{}
			sources := []uint32{snap.toLayout(src)}
			opt := traversal.Options{Workers: 1}
			traversal.Run(snap.g, sources, opt, scratch, res)
			if allocs := testing.AllocsPerRun(5, func() {
				traversal.Run(snap.g, sources, opt, scratch, res)
			}); allocs > 0 {
				b.Fatalf("%v BFS steady-state allocs/run = %g, want 0", layout, allocs)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				traversal.Run(snap.g, sources, opt, scratch, res)
			}
			b.ReportMetric(float64(snap.view.SizeBytes())/float64(snap.NumEdges()), "B/arc")
			b.ReportMetric(float64(snap.NumEdges())*float64(b.N)/b.Elapsed().Seconds()/1e6, "MTEPS")
		})
	}
}
