package snapdyn

import (
	"snapdyn/internal/rmat"
	"snapdyn/internal/stream"
)

// RMATParams configures the R-MAT synthetic graph generator. See
// rmat.Params; PaperRMAT fills in the paper's shaping parameters.
type RMATParams = rmat.Params

// PaperRMAT returns the paper's R-MAT configuration (a=0.6, b=0.15,
// c=0.15, d=0.10) for n = 2^scale vertices and the given edge count,
// with uniform random time labels in [1, timeMax] (0 disables labels).
func PaperRMAT(scale, edges int, timeMax uint32, seed uint64) RMATParams {
	return rmat.PaperParams(scale, edges, timeMax, seed)
}

// GenerateRMAT samples an edge list in parallel (workers <= 0 uses
// GOMAXPROCS). Output is deterministic for a given seed.
func GenerateRMAT(workers int, p RMATParams) ([]Edge, error) {
	return rmat.Generate(workers, p)
}

// Inserts converts an edge list into a pure insertion stream.
func Inserts(edges []Edge) []Update { return stream.Inserts(edges) }

// Deletions samples count random deletions of existing edges.
func Deletions(edges []Edge, count int, seed uint64) []Update {
	return stream.Deletions(edges, count, seed)
}

// MixedStream builds a shuffled stream with the given insertion fraction:
// insertions drawn from extra, deletions from base.
func MixedStream(base, extra []Edge, count int, insFrac float64, seed uint64) ([]Update, error) {
	return stream.Mixed(base, extra, count, insFrac, seed)
}

// ShuffleStream randomly permutes a stream in place (the paper's load
// balancing mitigation for update streams with per-vertex locality).
func ShuffleStream(ups []Update, seed uint64) { stream.Shuffle(ups, seed) }

// StreamBatches cuts a stream into consecutive batches of the given
// size; the returned slices alias ups.
func StreamBatches(ups []Update, size int) [][]Update { return stream.Batches(ups, size) }

// SanitizeStream drops updates with endpoints outside [0, n) (and self
// loops when dropSelfLoops is set), returning the cleaned stream and the
// number dropped.
func SanitizeStream(ups []Update, n int, dropSelfLoops bool) ([]Update, int) {
	return stream.Sanitize(ups, n, dropSelfLoops)
}
