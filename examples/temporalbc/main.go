// Temporalbc analyzes influence in a time-stamped collaboration-style
// network with the paper's temporal betweenness centrality: paths must
// respect the time ordering of interactions (each edge strictly later
// than the previous), so influence flows only forward in time. The
// example contrasts the temporal ranking with the static one that
// ignores time labels.
package main

import (
	"fmt"
	"log"
	"sort"

	"snapdyn"
)

func main() {
	const scale = 12
	n := 1 << scale
	// Time labels in [1, 20], as in the paper's Figure 11 setup.
	edges, err := snapdyn.GenerateRMAT(0, snapdyn.PaperRMAT(scale, 10*n, 20, 11))
	if err != nil {
		log.Fatal(err)
	}

	g := snapdyn.New(n, snapdyn.WithExpectedEdges(2*len(edges)), snapdyn.Undirected())
	g.InsertEdges(0, edges)
	snap := g.Snapshot(0)

	// Approximate scores from 256 sampled sources, extrapolated — the
	// paper's approximate betweenness configuration.
	sources := snap.SampleSources(256, 99)
	temporal := snap.Betweenness(0, snapdyn.BCOptions{Temporal: true, Sources: sources})
	static := snap.Betweenness(0, snapdyn.BCOptions{Temporal: false, Sources: sources})

	fmt.Println("top 10 vertices by temporal betweenness (vs static rank):")
	staticRank := ranks(static)
	for i, v := range topK(temporal, 10) {
		fmt.Printf("%2d. vertex %6d  temporal=%12.1f  static_rank=%d\n",
			i+1, v, temporal[v], staticRank[v])
	}

	// How much does respecting time ordering change the picture?
	moved := 0
	for rank, v := range topK(temporal, 50) {
		if abs(staticRank[v]-rank) > 10 {
			moved++
		}
	}
	fmt.Printf("\n%d of the temporal top-50 move >10 ranks when time ordering is ignored\n", moved)
}

// topK returns the indices of the k largest scores.
func topK(scores []float64, k int) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// ranks maps vertex -> rank under descending score order.
func ranks(scores []float64) []int {
	order := topK(scores, len(scores))
	r := make([]int, len(scores))
	for rank, v := range order {
		r[v] = rank
	}
	return r
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
