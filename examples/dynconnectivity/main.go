// Dynconnectivity demonstrates incremental connectivity maintenance (the
// dynamic forest problem): the spanning forest is repaired on every
// insertion and deletion, so path-existence queries are always current
// without snapshot rebuilds — and it contrasts the incremental cost with
// recompute-from-scratch.
package main

import (
	"fmt"
	"log"
	"time"

	"snapdyn"
)

func main() {
	const scale = 12
	n := 1 << scale
	edges, err := snapdyn.GenerateRMAT(0, snapdyn.PaperRMAT(scale, 8*n, 100, 7))
	if err != nil {
		log.Fatal(err)
	}

	// Incremental index: forest repaired per update.
	d := snapdyn.NewDynamicConnectivity(n)
	start := time.Now()
	for _, e := range edges {
		d.InsertEdge(e.U, e.V, e.T)
	}
	fmt.Printf("incremental bootstrap: %d edges in %v (%d components)\n",
		d.NumEdges(), time.Since(start).Round(time.Millisecond), d.ComponentCount())

	// Live session: deletions may split components, insertions may merge
	// them; every query is answered against the current structure.
	probes := [][2]uint32{{0, 1}, {1, 2}, {2, 3}}
	report := func(tag string) {
		fmt.Printf("%-28s components=%-5d", tag, d.ComponentCount())
		for _, p := range probes {
			fmt.Printf("  %d~%d:%v", p[0], p[1], d.Connected(p[0], p[1]))
		}
		fmt.Println()
	}
	report("initial")

	// Delete a slice of the original edges.
	t0 := time.Now()
	deleted := 0
	for _, e := range edges[:len(edges)/5] {
		if d.DeleteEdge(e.U, e.V) {
			deleted++
		}
	}
	fmt.Printf("deleted %d edges in %v\n", deleted, time.Since(t0).Round(time.Millisecond))
	report("after deletions")

	// Reconnect with fresh interactions.
	fresh, err := snapdyn.GenerateRMAT(0, snapdyn.PaperRMAT(scale, n, 200, 8))
	if err != nil {
		log.Fatal(err)
	}
	t0 = time.Now()
	for _, e := range fresh {
		d.InsertEdge(e.U, e.V, e.T)
	}
	fmt.Printf("inserted %d fresh edges in %v\n", len(fresh), time.Since(t0).Round(time.Millisecond))
	report("after fresh inserts")

	// Compare one query path against recompute-from-scratch.
	g := snapdyn.New(n, snapdyn.WithExpectedEdges(4*len(edges)), snapdyn.Undirected())
	for _, e := range edges {
		g.InsertEdge(e.U, e.V, e.T)
	}
	for _, e := range edges[:len(edges)/5] {
		g.DeleteEdge(e.U, e.V)
	}
	for _, e := range fresh {
		g.InsertEdge(e.U, e.V, e.T)
	}
	t0 = time.Now()
	snap := g.Snapshot(0)
	conn := snap.Connectivity(0)
	rebuild := time.Since(t0)
	agree := true
	for _, p := range probes {
		if conn.Connected(p[0], p[1]) != d.Connected(p[0], p[1]) {
			agree = false
		}
	}
	fmt.Printf("\nsnapshot rebuild took %v; incremental index agrees: %v\n",
		rebuild.Round(time.Microsecond), agree)
}
