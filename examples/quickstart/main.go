// Quickstart: build a dynamic small-world graph, stream structural
// updates into it, and answer connectivity queries — the minimal tour of
// the snapdyn public API.
package main

import (
	"fmt"
	"log"

	"snapdyn"
)

func main() {
	// Generate a synthetic small-world network with the paper's R-MAT
	// parameters: 2^14 vertices, 10 edges per vertex, time labels 1..100.
	params := snapdyn.PaperRMAT(14, 10*(1<<14), 100, 42)
	edges, err := snapdyn.GenerateRMAT(0, params)
	if err != nil {
		log.Fatal(err)
	}

	// The hybrid array/treap representation is the default: fast array
	// inserts for the many low-degree vertices, logarithmic deletes for
	// the few heavy ones.
	g := snapdyn.New(params.NumVertices(),
		snapdyn.WithExpectedEdges(2*len(edges)),
		snapdyn.Undirected(),
	)
	g.InsertEdges(0, edges)
	fmt.Printf("loaded: %v\n", g.Stats())

	// Stream updates: delete a batch of existing edges, insert new ones.
	dels := snapdyn.Deletions(edges, 1000, 7)
	g.ApplyUpdates(0, dels)
	g.InsertEdge(3, 9, 101)
	fmt.Printf("after updates: %d arcs\n", g.NumEdges())

	// Freeze a snapshot and build the link-cut connectivity index.
	snap := g.Snapshot(0)
	conn := snap.Connectivity(0)
	fmt.Printf("vertices 3 and 9 connected: %v\n", conn.Connected(3, 9))
	fmt.Printf("components: %d\n", snap.ComponentCount(0))

	// Traverse: BFS from the first sampled (non-isolated) source.
	src := snap.SampleSources(1, 1)[0]
	res := snap.BFS(0, src)
	fmt.Printf("BFS from %d reached %d vertices in %d levels\n",
		src, res.Reached, res.Levels)
}
