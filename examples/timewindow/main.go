// Timewindow demonstrates the paper's induced subgraph kernel for
// temporal snapshot analysis: slice a time-stamped interaction network
// into windows, extract each window's induced subgraph, and track how
// connectivity evolves — e.g. when the giant component emerges.
package main

import (
	"fmt"
	"log"

	"snapdyn"
)

func main() {
	const scale = 13
	const tmax = 100
	n := 1 << scale
	edges, err := snapdyn.GenerateRMAT(0, snapdyn.PaperRMAT(scale, 10*n, tmax, 5))
	if err != nil {
		log.Fatal(err)
	}

	g := snapdyn.New(n, snapdyn.WithExpectedEdges(2*len(edges)), snapdyn.Undirected())
	g.InsertEdges(0, edges)
	full := g.Snapshot(0)
	fmt.Printf("full network: %d arcs, %d components\n\n",
		full.NumEdges(), full.ComponentCount(0))

	// Growing prefix windows: the network as of time t.
	fmt.Println("prefix windows (network as of time t):")
	for _, t := range []uint32{10, 25, 50, 75, 100} {
		// Open interval (0, t+1) keeps labels 1..t.
		snap := full.InducedByTime(0, 0, t+1)
		comps := snap.ComponentCount(0)
		active := count(snap.ActiveVertices(0, 1, t))
		fmt.Printf("  t<=%3d: %8d arcs, %5d active vertices, %5d components\n",
			t, snap.NumEdges(), active, comps)
	}

	// Sliding windows, as in the paper's (20,70) example.
	fmt.Println("\nsliding windows:")
	for _, w := range [][2]uint32{{0, 31}, {20, 70}, {60, 101}} {
		snap := full.InducedByTime(0, w[0], w[1])
		src := snap.SampleSources(1, 3)[0]
		res := snap.BFS(0, src)
		fmt.Printf("  (%3d,%3d): %8d arcs | BFS from %5d reaches %5d in %d levels\n",
			w[0], w[1], snap.NumEdges(), src, res.Reached, res.Levels)
	}
}

func count(bs []bool) int {
	c := 0
	for _, b := range bs {
		if b {
			c++
		}
	}
	return c
}
