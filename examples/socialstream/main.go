// Socialstream simulates the paper's motivating workload: a live feed of
// social interactions (friend/unfriend events) applied in batches to a
// dynamic graph while connectivity structure is monitored — the "queries
// on massive dynamic interaction data sets" scenario.
//
// Analysis runs through a SnapshotManager with the background
// auto-refresher: the ingest loop applies each batch through the
// manager's gated ApplyUpdates and never calls Refresh — publication is
// policy (refresh when 2% of the vertices are dirty, or when the
// snapshot is 25ms stale with updates pending). A concurrent reader
// goroutine keeps answering connectivity queries on whatever snapshot
// is current: it never blocks on ingest, and never sees a half-applied
// batch.
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"snapdyn"
)

const (
	scale      = 13
	edgeFactor = 8
	numBatches = 8
)

func main() {
	n := 1 << scale
	// Historical interactions: the initial friendship network.
	history, err := snapdyn.GenerateRMAT(0, snapdyn.PaperRMAT(scale, edgeFactor*n, 1000, 1))
	if err != nil {
		log.Fatal(err)
	}
	// Future interactions arriving on the stream.
	future, err := snapdyn.GenerateRMAT(0, snapdyn.PaperRMAT(scale, edgeFactor*n, 1000, 2))
	if err != nil {
		log.Fatal(err)
	}

	g := snapdyn.New(n,
		snapdyn.WithExpectedEdges(4*len(history)),
		snapdyn.Undirected(),
	)
	start := time.Now()
	g.InsertEdges(0, history)
	fmt.Printf("bootstrap: %d arcs in %v\n", g.NumEdges(), time.Since(start).Round(time.Millisecond))

	mgr := g.Manager(0)
	// Refresh is a background policy, not a call site: republish when a
	// batch dirties 2% of the vertices or the snapshot ages past 25ms
	// with updates pending.
	mgr.StartAutoRefresh(snapdyn.AutoRefreshPolicy{
		MaxDirty: n / 50,
		MaxAge:   25 * time.Millisecond,
	})
	defer mgr.StopAutoRefresh()

	// The RCU read side: one goroutine continuously answers
	// st-connectivity queries on the current snapshot, concurrent with
	// all ingest below.
	var queries atomic.Int64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		src := snapdyn.VertexID(1)
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := mgr.Current()
			snap.STConnectedFast(0, src%snapdyn.VertexID(n))
			queries.Add(1)
			src = src*31 + 17
		}
	}()

	// The stream mixes 75% new interactions with 25% departures, cut into
	// batches as an ingestion pipeline would.
	updates, err := snapdyn.MixedStream(history, future, len(future)/2, 0.75, 3)
	if err != nil {
		log.Fatal(err)
	}
	for i, batch := range snapdyn.StreamBatches(updates, len(updates)/numBatches+1) {
		// Malformed events are routine in interaction logs: filter them.
		clean, dropped := snapdyn.SanitizeStream(batch, n, true)

		// Batches arrive on a feed, not back to back: the pause is what
		// lets the policy (not the ingest loop) decide when to publish.
		time.Sleep(10 * time.Millisecond)

		t0 := time.Now()
		// Gated ingest: serialized with the background refresher, never
		// with readers.
		mgr.ApplyUpdates(0, clean)
		applyDur := time.Since(t0)

		comps := mgr.Current().ComponentCount(0)
		mups := float64(len(clean)) / applyDur.Seconds() / 1e6

		fmt.Printf("batch %d: %6d updates (%d dropped) @ %5.1f MUPS | epoch %d (%5d dirty) | components=%5d\n",
			i, len(clean), dropped, mups, mgr.Epoch(), mgr.Staleness(), comps)
	}

	// Wait for the refresher to drain, then report its accounting.
	for mgr.Staleness() != 0 {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done
	met := mgr.Metrics()
	fmt.Printf("concurrent reader answered %d connectivity queries without ever blocking ingest\n", queries.Load())
	fmt.Printf("auto-refresh: %d publications (%d dirty-triggered, %d age-triggered), last %v, max %v\n",
		met.AutoRefreshes, met.DirtyTriggered, met.AgeTriggered,
		met.LastLatency.Round(time.Microsecond), met.MaxLatency.Round(time.Microsecond))
	fmt.Printf("final: %v (epoch %d)\n", g.Stats(), mgr.Epoch())
}
