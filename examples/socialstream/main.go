// Socialstream simulates the paper's motivating workload: a live feed of
// social interactions (friend/unfriend events) applied in batches to a
// dynamic graph while connectivity structure is monitored — the "queries
// on massive dynamic interaction data sets" scenario.
//
// Analysis runs through a SnapshotManager: the ingest loop applies each
// batch and republishes an incrementally refreshed snapshot (cost
// proportional to the vertices the batch touched, not the graph), while
// a concurrent reader goroutine keeps answering connectivity queries on
// whatever snapshot is current — it never blocks on ingest, and never
// sees a half-applied batch.
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"snapdyn"
)

const (
	scale      = 13
	edgeFactor = 8
	numBatches = 8
)

func main() {
	n := 1 << scale
	// Historical interactions: the initial friendship network.
	history, err := snapdyn.GenerateRMAT(0, snapdyn.PaperRMAT(scale, edgeFactor*n, 1000, 1))
	if err != nil {
		log.Fatal(err)
	}
	// Future interactions arriving on the stream.
	future, err := snapdyn.GenerateRMAT(0, snapdyn.PaperRMAT(scale, edgeFactor*n, 1000, 2))
	if err != nil {
		log.Fatal(err)
	}

	g := snapdyn.New(n,
		snapdyn.WithExpectedEdges(4*len(history)),
		snapdyn.Undirected(),
	)
	start := time.Now()
	g.InsertEdges(0, history)
	fmt.Printf("bootstrap: %d arcs in %v\n", g.NumEdges(), time.Since(start).Round(time.Millisecond))

	mgr := g.Manager(0)

	// The RCU read side: one goroutine continuously answers
	// st-connectivity queries on the current snapshot, concurrent with
	// all ingest below.
	var queries atomic.Int64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		src := snapdyn.VertexID(1)
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := mgr.Current()
			snap.STConnectedFast(0, src%snapdyn.VertexID(n))
			queries.Add(1)
			src = src*31 + 17
		}
	}()

	// The stream mixes 75% new interactions with 25% departures, cut into
	// batches as an ingestion pipeline would.
	updates, err := snapdyn.MixedStream(history, future, len(future)/2, 0.75, 3)
	if err != nil {
		log.Fatal(err)
	}
	for i, batch := range snapdyn.StreamBatches(updates, len(updates)/numBatches+1) {
		// Malformed events are routine in interaction logs: filter them.
		clean, dropped := snapdyn.SanitizeStream(batch, n, true)

		t0 := time.Now()
		g.ApplyUpdates(0, clean)
		applyDur := time.Since(t0)

		stale := mgr.Staleness()
		t1 := time.Now()
		snap := mgr.Refresh(0)
		refreshDur := time.Since(t1)

		comps := snap.ComponentCount(0)
		mups := float64(len(clean)) / applyDur.Seconds() / 1e6

		fmt.Printf("batch %d: %6d updates (%d dropped) @ %5.1f MUPS | refresh %6v (epoch %d, %5d dirty) | components=%5d\n",
			i, len(clean), dropped, mups, refreshDur.Round(time.Microsecond), mgr.Epoch(), stale, comps)
	}
	close(stop)
	<-done
	fmt.Printf("concurrent reader answered %d connectivity queries without ever blocking ingest\n", queries.Load())
	fmt.Printf("final: %v\n", g.Stats())
}
