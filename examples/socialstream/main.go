// Socialstream simulates the paper's motivating workload: a live feed of
// social interactions (friend/unfriend events) applied in batches to a
// dynamic graph while connectivity structure is monitored between
// batches — the "queries on massive dynamic interaction data sets"
// scenario.
package main

import (
	"fmt"
	"log"
	"time"

	"snapdyn"
)

const (
	scale      = 13
	edgeFactor = 8
	numBatches = 8
)

func main() {
	n := 1 << scale
	// Historical interactions: the initial friendship network.
	history, err := snapdyn.GenerateRMAT(0, snapdyn.PaperRMAT(scale, edgeFactor*n, 1000, 1))
	if err != nil {
		log.Fatal(err)
	}
	// Future interactions arriving on the stream.
	future, err := snapdyn.GenerateRMAT(0, snapdyn.PaperRMAT(scale, edgeFactor*n, 1000, 2))
	if err != nil {
		log.Fatal(err)
	}

	g := snapdyn.New(n,
		snapdyn.WithExpectedEdges(4*len(history)),
		snapdyn.Undirected(),
	)
	start := time.Now()
	g.InsertEdges(0, history)
	fmt.Printf("bootstrap: %d arcs in %v\n", g.NumEdges(), time.Since(start).Round(time.Millisecond))

	// The stream mixes 75% new interactions with 25% departures, cut into
	// batches as an ingestion pipeline would.
	updates, err := snapdyn.MixedStream(history, future, len(future)/2, 0.75, 3)
	if err != nil {
		log.Fatal(err)
	}
	for i, batch := range snapdyn.StreamBatches(updates, len(updates)/numBatches+1) {
		// Malformed events are routine in interaction logs: filter them.
		clean, dropped := snapdyn.SanitizeStream(batch, n, true)

		t0 := time.Now()
		g.ApplyUpdates(0, clean)
		applyDur := time.Since(t0)

		snap := g.Snapshot(0)
		conn := snap.Connectivity(0)
		comps := snap.ComponentCount(0)
		mups := float64(len(clean)) / applyDur.Seconds() / 1e6

		fmt.Printf("batch %d: %6d updates (%d dropped) @ %5.1f MUPS | components=%5d | 0~1 connected: %v\n",
			i, len(clean), dropped, mups, comps, conn.Connected(0, 1))
	}
	fmt.Printf("final: %v\n", g.Stats())
}
