// Command snapbench runs the paper's evaluation figures at configurable
// scale and prints the measured series in paper-style tables.
//
// Usage:
//
//	snapbench -fig all -scale 18
//	snapbench -fig 5 -scale 20 -delfrac 0.075
//	snapbench -fig 8 -queries 1000000 -workers 1,2,4,8
//	snapbench -fig 10 -scale 20 -bfs dirop
//	snapbench -fig kernel -kernel bc -bfs dirop -scale 14
//	snapbench -fig kernel -kernel sssp -scale 16 -deltas 0,25,100
//	snapbench -fig pipeline -scale 16 -qworkers 4
//
// Figures map to the paper as documented in DESIGN.md: 1-6 are the
// dynamic-representation experiments, 7-8 the link-cut tree, 9 the
// induced subgraph kernel, 10 temporal BFS, 11 approximate temporal
// betweenness centrality. The extra figure "kernel" sweeps one
// BFS-shaped kernel (-kernel=bfs|bc|closeness) on the unified visitor
// engine, or the weighted delta-stepping kernel (-kernel=sssp, time
// labels as arc weights, one series per -deltas bucket width with 0
// meaning the average-weight heuristic, plus a sequential Dijkstra
// baseline series); the -bfs engine choice applies to every BFS-shaped
// kernel (figures 7, 10, 11, and kernel), not just plain BFS. The
// figure "pipeline" exercises the incremental snapshot pipeline:
// refresh latency vs dirty fraction against a full rebuild, then
// sustained mixed ingest/query with -qworkers concurrent BFS/SSSP
// readers over the epoch-versioned snapshots. The figure "service"
// measures the serving stack itself (auto-refreshing manager + pooled
// query executor, the snapserve configuration): sustained QPS with
// p50/p99 per-query latency under mixed ingest/query load, sweeping
// 1..-qworkers concurrent query workers with -qduration of sustained
// load per point, plus the allocation-churn measurement behind the
// RCU-by-GC verdict in ROADMAP.md. The figure "shard" sweeps the
// vertex-partitioned fleet (-shards counts): bulk-load ingest MUPS
// through P concurrent shard gates, scatter-gather BFS rate over the
// per-shard pinned snapshots, and sustained mixed QPS through the
// fleet executor, each against the single-store baseline. The figure
// "memory" sweeps the memory-scale snapshot formats (plain, degree-,
// BFS- and RCM-reordered CSR, gap-compressed adjacency): bytes per
// stored arc against BFS and SSSP traversal rate on each format, over
// the -scales list (default just -scale). The figure "ingest" prices
// durability: sustained ingest MUPS through the volatile gate vs the
// group-commit write-ahead log (fsync before every ack) under the same
// concurrent query load, the achieved updates-per-fsync amortization,
// and a measured crash recovery (checkpoint load + log-tail replay) of
// the directory the WAL phase leaves behind. The figure "workload"
// prices the snapshot-identity result cache under modeled serving
// traffic: for each -zipf exponent it drives a skewed query mix
// (closed loop, or open-loop bursty arrivals with -rate) against the
// serving executor with caching off and then with a -cache-bytes
// budget, under concurrent churn ingest with age-policy refreshes, and
// reports sustained QPS, p50/p99, and the hit rate — every cached run
// is verified bit-identical against uncached recomputation on the same
// pinned snapshot before its row is printed. -replay substitutes a
// JSONL trace captured by snapserve -record for the synthetic
// generator. -json additionally writes
// every measured table to a file for the committed BENCH_*.json
// artifacts.
//
//	snapbench -fig service -scale 16 -qworkers 8 -qduration 2s
//	snapbench -fig shard -scale 16 -shards 1,2,4,8 -json BENCH_shard.json
//	snapbench -fig memory -scales 16,18 -json BENCH_memory.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"snapdyn/internal/bench"
	"snapdyn/internal/timing"
	"snapdyn/internal/workload"
)

func main() {
	var (
		fig        = flag.String("fig", "all", "figure to run: 1..11 or 'all'")
		scale      = flag.Int("scale", 16, "R-MAT scale (n = 2^scale vertices)")
		edgeFactor = flag.Int("edgefactor", 10, "edges per vertex (m = edgefactor*n)")
		workers    = flag.String("workers", "", "comma-separated worker sweep (default: 1,2,4,..,GOMAXPROCS)")
		seed       = flag.Uint64("seed", 20090525, "random seed")
		timeMax    = flag.Uint("tmax", 100, "max time label")
		queries    = flag.Int("queries", 1_000_000, "connectivity queries for figure 8")
		sources    = flag.Int("sources", 256, "sampled sources for figure 11")
		delFrac    = flag.Float64("delfrac", 0.075, "fraction of m to delete in figure 5")
		bfsEngine  = flag.String("bfs", "topdown", "traversal engine for all BFS-shaped kernels (figures 7, 10, 11, kernel): topdown or dirop (direction-optimizing)")
		kernel     = flag.String("kernel", "bfs", "kernel for the 'kernel' figure: bfs, bc, closeness, or sssp")
		qworkers   = flag.Int("qworkers", 4, "concurrent query workers for the 'pipeline' figure; max of the query-worker sweep for 'service'")
		qduration  = flag.Duration("qduration", time.Second, "sustained-load duration per sweep point for the 'service' figure")
		deltas     = flag.String("deltas", "", "comma-separated delta-stepping bucket widths to sweep for -kernel=sssp (0 = average-weight heuristic; default just the heuristic)")
		scales     = flag.String("scales", "", "comma-separated scales for figure 1 (default scale-6..scale)")
		shards     = flag.String("shards", "1,2,4,8", "comma-separated shard counts for the 'shard' figure")
		zipfs      = flag.String("zipf", "0,0.8,1.2", "comma-separated Zipf exponents for the 'workload' figure")
		cacheBytes = flag.Int64("cache-bytes", 128<<20, "result-cache budget for the 'workload' figure's cached runs")
		rate       = flag.Float64("rate", 0, "open-loop arrival rate (queries/s per worker) for the 'workload' figure; 0 = closed loop")
		replay     = flag.String("replay", "", "JSONL query trace (from snapserve -record) to replay for the 'workload' figure instead of synthetic traffic")
		jsonPath   = flag.String("json", "", "also write the measured tables as JSON to this file")
	)
	flag.Parse()

	if *bfsEngine != "topdown" && *bfsEngine != "dirop" {
		fatalf("bad -bfs %q (want topdown or dirop)", *bfsEngine)
	}
	switch *kernel {
	case "bfs", "bc", "closeness", "sssp":
	default:
		fatalf("bad -kernel %q (want bfs, bc, closeness, or sssp)", *kernel)
	}
	cfg := bench.Config{
		Scale:      *scale,
		EdgeFactor: *edgeFactor,
		TimeMax:    uint32(*timeMax),
		Seed:       *seed,
		BFSEngine:  *bfsEngine,
	}
	if *workers != "" {
		ws, err := parseInts(*workers)
		if err != nil {
			fatalf("bad -workers: %v", err)
		}
		cfg.Workers = ws
	}
	if *deltas != "" {
		ds, err := parseInt64s(*deltas)
		if err != nil {
			fatalf("bad -deltas: %v", err)
		}
		cfg.Deltas = ds
	}

	fig1Scales := []int{}
	if *scales != "" {
		ss, err := parseInts(*scales)
		if err != nil {
			fatalf("bad -scales: %v", err)
		}
		fig1Scales = ss
	} else {
		for s := max(8, *scale-6); s <= *scale; s += 2 {
			fig1Scales = append(fig1Scales, s)
		}
	}

	runners := map[string]func() *timing.Table{
		"1":  func() *timing.Table { return bench.Fig1InsertScaling(cfg, fig1Scales) },
		"2":  func() *timing.Table { return bench.Fig2ResizeOverhead(cfg) },
		"3":  func() *timing.Table { return bench.Fig3Partitioning(cfg) },
		"4":  func() *timing.Table { return bench.Fig4Insertions(cfg) },
		"5":  func() *timing.Table { return bench.Fig5Deletions(cfg, *delFrac) },
		"6":  func() *timing.Table { return bench.Fig6Mixed(cfg) },
		"7":  func() *timing.Table { return bench.Fig7LCTBuild(cfg) },
		"8":  func() *timing.Table { return bench.Fig8Queries(cfg, *queries) },
		"9":  func() *timing.Table { return bench.Fig9Subgraph(cfg) },
		"10": func() *timing.Table { return bench.Fig10BFS(cfg) },
		"11": func() *timing.Table { return bench.Fig11TemporalBC(cfg, *sources) },
		"kernel": func() *timing.Table {
			return bench.KernelSweep(cfg, *kernel, *sources)
		},
		"pipeline": func() *timing.Table {
			return bench.FigPipeline(cfg, *qworkers)
		},
		"memory": func() *timing.Table {
			var memScales []int
			if *scales != "" {
				ss, err := parseInts(*scales)
				if err != nil {
					fatalf("bad -scales: %v", err)
				}
				memScales = ss
			}
			return bench.FigMemory(cfg, memScales)
		},
		"service": func() *timing.Table {
			return bench.FigService(cfg, *qworkers, *qduration)
		},
		"ingest": func() *timing.Table {
			return bench.FigIngest(cfg, *qworkers, *qduration)
		},
		"shard": func() *timing.Table {
			sc, err := parseInts(*shards)
			if err != nil {
				fatalf("bad -shards: %v", err)
			}
			return bench.FigShard(cfg, sc, *qworkers, *qduration)
		},
		"workload": func() *timing.Table {
			zs, err := parseFloats(*zipfs)
			if err != nil {
				fatalf("bad -zipf: %v", err)
			}
			var trace []workload.Op
			if *replay != "" {
				trace, err = workload.ReadTrace(*replay)
				if err != nil {
					fatalf("reading -replay: %v", err)
				}
				if len(trace) == 0 {
					fatalf("-replay trace %q is empty", *replay)
				}
			}
			return bench.FigWorkload(cfg, zs, *cacheBytes, *rate, *qduration, trace)
		},
	}

	var order []string
	if *fig == "all" {
		order = []string{"1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "11"}
	} else {
		for _, f := range strings.Split(*fig, ",") {
			f = strings.TrimSpace(f)
			if _, ok := runners[f]; !ok {
				fatalf("unknown figure %q (want 1..11, kernel, pipeline, service, shard, memory, ingest, workload, or all)", f)
			}
			order = append(order, f)
		}
	}
	type figure struct {
		Fig   string               `json:"fig"`
		Title string               `json:"title"`
		Note  string               `json:"note,omitempty"`
		Rows  []timing.Measurement `json:"rows"`
	}
	var measured []figure
	for _, f := range order {
		t := runners[f]()
		t.Fprint(os.Stdout)
		fmt.Println()
		measured = append(measured, figure{Fig: f, Title: t.Title, Note: t.Note, Rows: t.Rows})
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(measured, "", "  ")
		if err != nil {
			fatalf("encoding -json: %v", err)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fatalf("writing -json: %v", err)
		}
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if v <= 0 {
			return nil, fmt.Errorf("non-positive value %d", v)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		if v < 0 {
			return nil, fmt.Errorf("negative value %g", v)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInt64s(s string) ([]int64, error) {
	var out []int64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, err
		}
		if v < 0 {
			return nil, fmt.Errorf("negative value %d", v)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "snapbench: "+format+"\n", args...)
	os.Exit(2)
}
