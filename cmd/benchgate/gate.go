package main

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// parseBench extracts ns/op samples per benchmark name from `go test
// -bench` output. A result line looks like
//
//	BenchmarkFoo/sub-8   	     100	  11915144 ns/op	 550.4 MTEPS
//
// name, iteration count, then value/unit pairs. Lines that do not
// match (headers, PASS, metrics-only lines) are skipped. Repeated
// names (-count=N) accumulate samples.
func parseBench(out string) map[string][]float64 {
	runs := make(map[string][]float64)
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		for i := 2; i+1 < len(f); i += 2 {
			if f[i+1] != "ns/op" {
				continue
			}
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				break
			}
			runs[f[0]] = append(runs[f[0]], v)
			break
		}
	}
	return runs
}

// median of samples (input order irrelevant; the slice is not mutated).
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// compare renders a delta table over the benchmarks present in both
// runs and reports whether any median ns/op regressed by more than
// maxRegressPct. A threshold-crossing delta only gates when the
// Mann-Whitney U test over the paired sample sets finds the difference
// significant at level alpha — the benchstat discipline, so one noisy
// sample cannot fail CI. When the sample sizes give the test no power
// (its smallest achievable p-value exceeds alpha, e.g. 3v3 runs at
// alpha 0.05), the gate falls back to the raw median delta rather than
// waving regressions through. Benchmarks on only one side are listed
// but never gate: a new benchmark has no baseline, a removed one no
// head.
func compare(oldRuns, newRuns map[string][]float64, maxRegressPct, alpha float64) (string, bool) {
	var names []string
	for name := range oldRuns {
		names = append(names, name)
	}
	sort.Strings(names)

	var b strings.Builder
	failed := false
	fmt.Fprintf(&b, "%-52s %14s %14s %9s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta", "p")
	for _, name := range names {
		oldMed := median(oldRuns[name])
		newSamples, ok := newRuns[name]
		if !ok {
			fmt.Fprintf(&b, "%-52s %14.0f %14s %9s\n", name, oldMed, "-", "gone")
			continue
		}
		newMed := median(newSamples)
		delta := 100 * (newMed - oldMed) / oldMed
		p := mwuP(oldRuns[name], newSamples)
		powerless := minAchievableP(len(oldRuns[name]), len(newSamples)) > alpha
		pStr := fmt.Sprintf("%.3f", p)
		if powerless {
			pStr = "~" + pStr
		}
		mark := ""
		if delta > maxRegressPct && (powerless || p <= alpha) {
			mark = "  REGRESSION"
			failed = true
		} else if delta > maxRegressPct {
			mark = "  (not significant)"
		}
		fmt.Fprintf(&b, "%-52s %14.0f %14.0f %+8.1f%% %8s%s\n", name, oldMed, newMed, delta, pStr, mark)
	}
	var added []string
	for name := range newRuns {
		if _, ok := oldRuns[name]; !ok {
			added = append(added, name)
		}
	}
	sort.Strings(added)
	for _, name := range added {
		fmt.Fprintf(&b, "%-52s %14s %14.0f %9s\n", name, "-", median(newRuns[name]), "new")
	}
	if failed {
		fmt.Fprintf(&b, "FAIL: ns/op regression above %.0f%%\n", maxRegressPct)
	} else {
		fmt.Fprintf(&b, "ok: no ns/op regression above %.0f%%\n", maxRegressPct)
	}
	return b.String(), failed
}
