package main

import (
	"math"
	"sort"
)

// mwuP returns the two-sided p-value of the Mann-Whitney U test for
// samples a and b: the probability, under the null hypothesis that both
// come from the same distribution, of a rank split at least this
// extreme. Small tie-free samples use the exact U distribution (the
// same test benchstat applies to paired benchmark runs); ties or large
// samples fall back to the normal approximation with tie correction.
func mwuP(a, b []float64) float64 {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return 1
	}
	ranks, ties := midranks(a, b)
	// U for sample a from its rank sum.
	var ra float64
	for i := 0; i < n; i++ {
		ra += ranks[i]
	}
	u := ra - float64(n*(n+1))/2

	if !ties && n+m <= 40 {
		return exactP(n, m, u)
	}
	return normalP(n, m, u, tieTerm(a, b))
}

// minAchievableP is the smallest two-sided p-value the exact test can
// produce for sample sizes n and m: 2/C(n+m, n), reached when one
// sample's values all rank above the other's. When this floor exceeds
// the significance level, the test is powerless at those sizes.
func minAchievableP(n, m int) float64 {
	if n == 0 || m == 0 {
		return 1
	}
	return math.Min(1, 2/choose(n+m, n))
}

// midranks assigns ranks over the pooled samples (ties get the mean of
// the ranks they span), returning the pooled ranks — a's first, then
// b's — and whether any tie occurred.
func midranks(a, b []float64) (ranks []float64, ties bool) {
	type obs struct {
		v    float64
		from int // index into the output rank slice
	}
	all := make([]obs, 0, len(a)+len(b))
	for i, v := range a {
		all = append(all, obs{v, i})
	}
	for i, v := range b {
		all = append(all, obs{v, len(a) + i})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })
	ranks = make([]float64, len(all))
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		if j-i > 1 {
			ties = true
		}
		mid := float64(i+j+1) / 2 // mean of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[all[k].from] = mid
		}
		i = j
	}
	return ranks, ties
}

// exactP computes the two-sided p-value from the exact null
// distribution of U: twice the tail probability of the smaller side
// (capped at 1). counts[u] enumerates the rank subsets of size n with
// statistic u via the standard recurrence
//
//	N(u; n, m) = N(u-m; n-1, m) + N(u; n, m-1).
func exactP(n, m int, u float64) float64 {
	total := n * m
	uSmall := math.Min(u, float64(total)-u)
	counts := uCounts(n, m)
	var tail, all float64
	for v, c := range counts {
		all += c
		if float64(v) <= uSmall {
			tail += c
		}
	}
	return math.Min(1, 2*tail/all)
}

// uCounts returns the exact null distribution of U for sample sizes
// (n, m) as counts indexed by u in [0, n*m]: dp[j][u] holds N(u; i, j)
// for the current i, with the largest pooled observation either from
// sample a (beating the j remaining b's) or from sample b.
func uCounts(n, m int) []float64 {
	dp := make([][]float64, m+1)
	for j := range dp {
		dp[j] = make([]float64, n*m+1)
		dp[j][0] = 1 // i = 0: only u == 0
	}
	for i := 1; i <= n; i++ {
		ndp := make([][]float64, m+1)
		for j := 0; j <= m; j++ {
			ndp[j] = make([]float64, n*m+1)
			for u := 0; u <= i*j; u++ {
				var s float64
				if u >= j {
					s = dp[j][u-j] // largest from a
				}
				if j >= 1 {
					s += ndp[j-1][u] // largest from b
				}
				ndp[j][u] = s
			}
		}
		dp = ndp
	}
	return dp[m]
}

// normalP is the large-sample/tied normal approximation with tie
// correction and continuity correction.
func normalP(n, m int, u, tieCorr float64) float64 {
	nm := float64(n * m)
	nTot := float64(n + m)
	mean := nm / 2
	variance := nm/12*(nTot+1) - nm*tieCorr/(12*nTot*(nTot-1))
	if variance <= 0 {
		return 1 // all values tied: no evidence of difference
	}
	z := (math.Abs(u-mean) - 0.5) / math.Sqrt(variance)
	if z < 0 {
		z = 0
	}
	return math.Erfc(z / math.Sqrt2)
}

// tieTerm computes sum(t^3 - t) over tie groups of the pooled samples.
func tieTerm(a, b []float64) float64 {
	all := append(append([]float64(nil), a...), b...)
	sort.Float64s(all)
	var s float64
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j] == all[i] {
			j++
		}
		t := float64(j - i)
		s += t*t*t - t
		i = j
	}
	return s
}

func choose(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	c := 1.0
	for i := 1; i <= k; i++ {
		c = c * float64(n-k+i) / float64(i)
	}
	return c
}
