// Command benchgate is the CI benchmark-regression gate: it parses two
// `go test -bench` outputs (base and head), compares the median ns/op
// of every benchmark present in both, and exits non-zero when any
// regresses by more than the threshold AND the Mann-Whitney U test
// finds the sample sets significantly different at -alpha (benchstat's
// significance discipline, reimplemented here so the pass/fail
// decision is deterministic and dependency-free). When the sample
// sizes give the rank test no power — its smallest achievable p-value
// exceeds alpha, as with fewer than 4v4 runs at alpha 0.05 — the gate
// falls back to the raw median delta so small -count values never
// hide a large regression. benchstat still renders the human-readable
// comparison artifact; this gate is tolerant of benchmarks that exist
// on only one side (new benchmarks are never a regression).
//
// Usage:
//
//	go test -run=NONE -bench=... -count=5 . | tee base.txt   # at the base commit
//	go test -run=NONE -bench=... -count=5 . | tee head.txt   # at the head commit
//	benchgate -old base.txt -new head.txt -max-regress 20
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	var (
		oldPath = flag.String("old", "", "base `go test -bench` output (required)")
		newPath = flag.String("new", "", "head `go test -bench` output (required)")
		maxReg  = flag.Float64("max-regress", 20, "max allowed ns/op regression in percent")
		alpha   = flag.Float64("alpha", 0.05, "significance level for the Mann-Whitney U test; threshold-crossing deltas only gate when significant (or when the sample sizes make the test powerless)")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -old and -new are required")
		os.Exit(2)
	}
	oldRuns, err := parseFile(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	newRuns, err := parseFile(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	report, failed := compare(oldRuns, newRuns, *maxReg, *alpha)
	fmt.Print(report)
	if failed {
		os.Exit(1)
	}
}

func parseFile(path string) (map[string][]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	runs := parseBench(string(data))
	if len(runs) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results found", path)
	}
	return runs, nil
}
