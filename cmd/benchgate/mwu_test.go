package main

import (
	"math"
	"strings"
	"testing"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-12*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestMWUExactSeparated(t *testing.T) {
	// Fully separated 3v3 samples: the most extreme rank split, so the
	// p-value is the distribution floor 2/C(6,3) = 2/20 = 0.1.
	a := []float64{100, 110, 105}
	b := []float64{140, 135, 136}
	if p := mwuP(a, b); !almostEqual(p, 0.1) {
		t.Fatalf("separated 3v3 p = %v, want 0.1", p)
	}
	// The test is symmetric in its arguments.
	if pa, pb := mwuP(a, b), mwuP(b, a); !almostEqual(pa, pb) {
		t.Fatalf("asymmetric p: %v vs %v", pa, pb)
	}
	// Fully separated 5v5: 2/C(10,5) = 2/252.
	a5 := []float64{1, 2, 3, 4, 5}
	b5 := []float64{10, 11, 12, 13, 14}
	if p := mwuP(a5, b5); !almostEqual(p, 2.0/252) {
		t.Fatalf("separated 5v5 p = %v, want 2/252", p)
	}
}

func TestMWUInterleaved(t *testing.T) {
	// Perfectly interleaved samples carry no evidence of a difference;
	// the p-value must not be small.
	a := []float64{1, 3, 5, 7, 9}
	b := []float64{2, 4, 6, 8, 10}
	if p := mwuP(a, b); p < 0.5 {
		t.Fatalf("interleaved p = %v, want >= 0.5", p)
	}
	if p := mwuP(a, b); p > 1 {
		t.Fatalf("p = %v out of range", p)
	}
}

func TestMWUTies(t *testing.T) {
	// All values identical: zero variance, no evidence either way.
	same := []float64{5, 5, 5}
	if p := mwuP(same, same); p != 1 {
		t.Fatalf("all-tied p = %v, want 1", p)
	}
	// Partial ties force the normal approximation; the result must stay
	// a valid probability and separated samples must still score lower
	// than overlapping ones.
	sep := mwuP([]float64{1, 1, 2, 2, 3}, []float64{7, 7, 8, 8, 9})
	mix := mwuP([]float64{1, 7, 2, 8, 3}, []float64{1, 7, 2, 8, 9})
	if sep <= 0 || sep > 1 || mix <= 0 || mix > 1 {
		t.Fatalf("tied p-values out of range: sep=%v mix=%v", sep, mix)
	}
	if sep >= mix {
		t.Fatalf("separated p %v should be below overlapping p %v", sep, mix)
	}
}

func TestMWUEmpty(t *testing.T) {
	if p := mwuP(nil, []float64{1}); p != 1 {
		t.Fatalf("empty-sample p = %v, want 1", p)
	}
}

func TestMinAchievableP(t *testing.T) {
	cases := []struct {
		n, m int
		want float64
	}{
		{3, 3, 0.1},       // 2/C(6,3)
		{5, 5, 2.0 / 252}, // 2/C(10,5)
		{2, 2, 2.0 / 6},
		{1, 1, 1}, // 2/C(2,1) = 1
		{0, 5, 1},
	}
	for _, c := range cases {
		if got := minAchievableP(c.n, c.m); !almostEqual(got, c.want) {
			t.Fatalf("minAchievableP(%d,%d) = %v, want %v", c.n, c.m, got, c.want)
		}
	}
	// Consistency: the floor is exactly the p-value of fully separated
	// samples at those sizes.
	a := []float64{1, 2, 3, 4}
	b := []float64{10, 20, 30, 40, 50}
	if p, floor := mwuP(a, b), minAchievableP(4, 5); !almostEqual(p, floor) {
		t.Fatalf("separated 4v5 p = %v, want floor %v", p, floor)
	}
}

func TestMidranks(t *testing.T) {
	ranks, ties := midranks([]float64{10, 30}, []float64{20, 30})
	if !ties {
		t.Fatal("tie at 30 not detected")
	}
	// Sorted pool: 10(r1), 20(r2), 30, 30 (midrank 3.5 each).
	want := []float64{1, 3.5, 2, 3.5}
	for i := range want {
		if ranks[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", ranks, want)
		}
	}
	if _, ties := midranks([]float64{1, 2}, []float64{3}); ties {
		t.Fatal("false tie on distinct values")
	}
}

func TestUCountsTotals(t *testing.T) {
	// The null distribution must enumerate all C(n+m, n) rank subsets
	// and be symmetric around n*m/2.
	for _, c := range [][2]int{{3, 3}, {2, 5}, {5, 5}, {1, 4}} {
		n, m := c[0], c[1]
		counts := uCounts(n, m)
		var total float64
		for _, v := range counts {
			total += v
		}
		if want := choose(n+m, n); !almostEqual(total, want) {
			t.Fatalf("uCounts(%d,%d) total = %v, want C = %v", n, m, total, want)
		}
		for u := 0; u <= n*m/2; u++ {
			if counts[u] != counts[n*m-u] {
				t.Fatalf("uCounts(%d,%d) asymmetric at u=%d: %v vs %v",
					n, m, u, counts[u], counts[n*m-u])
			}
		}
	}
}

func TestCompareSignificance(t *testing.T) {
	// 30% median regression with heavily overlapping 5v5 samples: the
	// rank test has power at these sizes and finds no significance, so
	// the gate must pass and say why.
	old := map[string][]float64{"BenchmarkNoisy": {100, 105, 250, 260, 95}}
	niu := map[string][]float64{"BenchmarkNoisy": {130, 135, 90, 255, 265}}
	report, failed := compare(old, niu, 20, 0.05)
	if failed {
		t.Fatalf("insignificant overlap failed the gate:\n%s", report)
	}
	if want := "(not significant)"; !strings.Contains(report, want) {
		t.Fatalf("report missing %q:\n%s", want, report)
	}

	// The same delta with cleanly separated samples is significant
	// (p = 2/252) and must gate.
	old = map[string][]float64{"BenchmarkClean": {100, 101, 99, 100.5, 99.5}}
	niu = map[string][]float64{"BenchmarkClean": {130, 131, 129, 130.5, 129.5}}
	report, failed = compare(old, niu, 20, 0.05)
	if !failed {
		t.Fatalf("significant regression passed the gate:\n%s", report)
	}
	if !strings.Contains(report, "REGRESSION") {
		t.Fatalf("report missing REGRESSION:\n%s", report)
	}

	// Powerless sizes (3v3: floor 0.1 > alpha) fall back to the raw
	// delta and still gate — small -count never hides a regression.
	old = map[string][]float64{"BenchmarkSmall": {100, 110, 105}}
	niu = map[string][]float64{"BenchmarkSmall": {140, 135, 136}}
	if report, failed := compare(old, niu, 20, 0.05); !failed {
		t.Fatalf("powerless fallback did not gate:\n%s", report)
	}
}
