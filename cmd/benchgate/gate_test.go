package main

import (
	"strings"
	"testing"
)

const sampleOut = `goos: linux
goarch: amd64
pkg: snapdyn
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkBFSDirectionOpt-8   	       5	   2312886 ns/op	       566.5 MTEPS	       0 B/op	       0 allocs/op
BenchmarkBFSDirectionOpt-8   	       5	   2400000 ns/op	       550.0 MTEPS	       0 B/op	       0 allocs/op
BenchmarkBFSDirectionOpt-8   	       5	   2200000 ns/op	       580.0 MTEPS	       0 B/op	       0 allocs/op
BenchmarkServiceQuery/bfs-8  	       1	  11915144 ns/op	       550.4 MTEPS
PASS
ok  	snapdyn	1.152s
`

func TestParseBench(t *testing.T) {
	runs := parseBench(sampleOut)
	if len(runs) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(runs), runs)
	}
	if got := runs["BenchmarkBFSDirectionOpt-8"]; len(got) != 3 {
		t.Fatalf("samples = %v, want 3 entries", got)
	}
	if got := runs["BenchmarkServiceQuery/bfs-8"]; len(got) != 1 || got[0] != 11915144 {
		t.Fatalf("sub-benchmark samples = %v", got)
	}
	if len(parseBench("PASS\nok 0.1s\n")) != 0 {
		t.Fatal("no-result output must parse to empty")
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("odd median = %v, want 2", m)
	}
	if m := median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Fatalf("even median = %v, want 2.5", m)
	}
	if m := median(nil); m != 0 {
		t.Fatalf("empty median = %v, want 0", m)
	}
	// The input must not be reordered.
	in := []float64{9, 1, 5}
	median(in)
	if in[0] != 9 || in[1] != 1 || in[2] != 5 {
		t.Fatalf("median mutated its input: %v", in)
	}
}

func TestCompareGate(t *testing.T) {
	old := map[string][]float64{
		"BenchmarkA":    {100, 110, 105},
		"BenchmarkB":    {1000, 1000},
		"BenchmarkGone": {50},
	}
	// A regresses 30%, B improves; C is new.
	niu := map[string][]float64{
		"BenchmarkA": {140, 135, 136},
		"BenchmarkB": {800, 820},
		"BenchmarkC": {10},
	}
	report, failed := compare(old, niu, 20, 0.05)
	if !failed {
		t.Fatalf("expected failure, report:\n%s", report)
	}
	for _, want := range []string{"REGRESSION", "BenchmarkGone", "gone", "BenchmarkC", "new", "FAIL"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}

	// Within threshold: 30% regression passes a 40% gate.
	report, failed = compare(old, niu, 40, 0.05)
	if failed {
		t.Fatalf("40%% gate should pass, report:\n%s", report)
	}
	if !strings.Contains(report, "ok: no ns/op regression above 40%") {
		t.Fatalf("report missing ok line:\n%s", report)
	}

	// Improvements and new benchmarks never fail the gate.
	report, failed = compare(map[string][]float64{"BenchmarkB": {1000}}, niu, 20, 0.05)
	if failed {
		t.Fatalf("improvement-only compare failed:\n%s", report)
	}
}
