// Command snapquery loads a time-stamped edge list (rmatgen format or
// plain "u v [t]" lines), builds the hybrid dynamic graph and its
// link-cut connectivity index, and answers analysis queries.
//
// Usage:
//
//	rmatgen -scale 16 -o g.txt
//	snapquery -graph g.txt -stats -components
//	snapquery -graph g.txt -bfs 0
//	snapquery -graph g.txt -connected 3,99 -connected 5,6
//	snapquery -graph g.txt -window 20,70 -stats
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"snapdyn"
	"snapdyn/internal/graphio"
)

type pairList [][2]uint32

func (p *pairList) String() string { return fmt.Sprint(*p) }

func (p *pairList) Set(s string) error {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return fmt.Errorf("want u,v")
	}
	u, err := strconv.ParseUint(strings.TrimSpace(parts[0]), 10, 32)
	if err != nil {
		return err
	}
	v, err := strconv.ParseUint(strings.TrimSpace(parts[1]), 10, 32)
	if err != nil {
		return err
	}
	*p = append(*p, [2]uint32{uint32(u), uint32(v)})
	return nil
}

// parseWindow parses a -window value "lo,hi" into its bounds.
func parseWindow(s string) (lo, hi uint32, err error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("-window wants lo,hi")
	}
	l, errLo := strconv.ParseUint(strings.TrimSpace(parts[0]), 10, 32)
	h, errHi := strconv.ParseUint(strings.TrimSpace(parts[1]), 10, 32)
	if errLo != nil || errHi != nil {
		return 0, 0, fmt.Errorf("-window bounds must be unsigned integers")
	}
	return uint32(l), uint32(h), nil
}

// run parses args (without the program name) and executes the queries,
// writing results to stdout and diagnostics to stderr. It returns the
// process exit code — separated from main so tests can drive the full
// flag-parsing and dispatch path in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("snapquery", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		graphPath  = fs.String("graph", "", "edge list file (required)")
		undirected = fs.Bool("undirected", true, "treat edges as undirected")
		stats      = fs.Bool("stats", false, "print graph statistics")
		components = fs.Bool("components", false, "print component census")
		bfsSrc     = fs.Int("bfs", -1, "run BFS from this source and print reach/levels")
		window     = fs.String("window", "", "restrict analysis to time window lo,hi (open interval)")
		connected  pairList
	)
	fs.Var(&connected, "connected", "answer a connectivity query u,v (repeatable)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *graphPath == "" {
		fmt.Fprintln(stderr, "snapquery: -graph is required")
		return 2
	}
	edges, n, err := loadEdges(*graphPath)
	if err != nil {
		fmt.Fprintf(stderr, "snapquery: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "loaded %d edges over %d vertices from %s\n", len(edges), n, *graphPath)

	opts := []snapdyn.Option{snapdyn.WithExpectedEdges(2 * len(edges))}
	if *undirected {
		opts = append(opts, snapdyn.Undirected())
	}
	g := snapdyn.New(n, opts...)
	g.InsertEdges(0, edges)
	snap := g.Snapshot(0)

	if *window != "" {
		lo, hi, err := parseWindow(*window)
		if err != nil {
			fmt.Fprintf(stderr, "snapquery: %v\n", err)
			return 2
		}
		snap = snap.InducedByTime(0, lo, hi)
		fmt.Fprintf(stdout, "window (%d,%d): %d arcs remain\n", lo, hi, snap.NumEdges())
	}

	if *stats {
		st := g.Stats()
		fmt.Fprintf(stdout, "stats: %v\n", st)
	}
	if *components {
		fmt.Fprintf(stdout, "components: %d\n", snap.ComponentCount(0))
	}
	if *bfsSrc >= 0 {
		if *bfsSrc >= n {
			fmt.Fprintf(stderr, "snapquery: -bfs source %d out of range [0,%d)\n", *bfsSrc, n)
			return 2
		}
		res := snap.BFS(0, uint32(*bfsSrc))
		fmt.Fprintf(stdout, "bfs from %d: reached %d vertices in %d levels\n", *bfsSrc, res.Reached, res.Levels)
	}
	for _, q := range connected {
		if int(q[0]) >= n || int(q[1]) >= n {
			fmt.Fprintf(stderr, "snapquery: -connected %d,%d out of range [0,%d)\n", q[0], q[1], n)
			return 2
		}
	}
	if len(connected) > 0 {
		conn := snap.Connectivity(0)
		for _, q := range connected {
			fmt.Fprintf(stdout, "connected(%d,%d) = %v\n", q[0], q[1], conn.Connected(q[0], q[1]))
		}
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// loadEdges reads an edge list in either graphio format (text or
// binary, auto-detected).
func loadEdges(path string) ([]snapdyn.Edge, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	return graphio.Detect(f)
}
