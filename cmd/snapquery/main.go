// Command snapquery loads a time-stamped edge list (rmatgen format or
// plain "u v [t]" lines), builds the hybrid dynamic graph and its
// link-cut connectivity index, and answers analysis queries.
//
// Usage:
//
//	rmatgen -scale 16 -o g.txt
//	snapquery -graph g.txt -stats -components
//	snapquery -graph g.txt -bfs 0
//	snapquery -graph g.txt -connected 3,99 -connected 5,6
//	snapquery -graph g.txt -window 20,70 -stats
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"snapdyn"
	"snapdyn/internal/graphio"
)

type pairList [][2]uint32

func (p *pairList) String() string { return fmt.Sprint(*p) }

func (p *pairList) Set(s string) error {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return fmt.Errorf("want u,v")
	}
	u, err := strconv.ParseUint(strings.TrimSpace(parts[0]), 10, 32)
	if err != nil {
		return err
	}
	v, err := strconv.ParseUint(strings.TrimSpace(parts[1]), 10, 32)
	if err != nil {
		return err
	}
	*p = append(*p, [2]uint32{uint32(u), uint32(v)})
	return nil
}

func main() {
	var (
		graphPath  = flag.String("graph", "", "edge list file (required)")
		undirected = flag.Bool("undirected", true, "treat edges as undirected")
		stats      = flag.Bool("stats", false, "print graph statistics")
		components = flag.Bool("components", false, "print component census")
		bfsSrc     = flag.Int("bfs", -1, "run BFS from this source and print reach/levels")
		window     = flag.String("window", "", "restrict analysis to time window lo,hi (open interval)")
		connected  pairList
	)
	flag.Var(&connected, "connected", "answer a connectivity query u,v (repeatable)")
	flag.Parse()

	if *graphPath == "" {
		fmt.Fprintln(os.Stderr, "snapquery: -graph is required")
		os.Exit(2)
	}
	edges, n, err := loadEdges(*graphPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "snapquery: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("loaded %d edges over %d vertices from %s\n", len(edges), n, *graphPath)

	opts := []snapdyn.Option{snapdyn.WithExpectedEdges(2 * len(edges))}
	if *undirected {
		opts = append(opts, snapdyn.Undirected())
	}
	g := snapdyn.New(n, opts...)
	g.InsertEdges(0, edges)
	snap := g.Snapshot(0)

	if *window != "" {
		parts := strings.Split(*window, ",")
		if len(parts) != 2 {
			fmt.Fprintln(os.Stderr, "snapquery: -window wants lo,hi")
			os.Exit(2)
		}
		lo, errLo := strconv.ParseUint(strings.TrimSpace(parts[0]), 10, 32)
		hi, errHi := strconv.ParseUint(strings.TrimSpace(parts[1]), 10, 32)
		if errLo != nil || errHi != nil {
			fmt.Fprintln(os.Stderr, "snapquery: -window bounds must be unsigned integers")
			os.Exit(2)
		}
		snap = snap.InducedByTime(0, uint32(lo), uint32(hi))
		fmt.Printf("window (%d,%d): %d arcs remain\n", lo, hi, snap.NumEdges())
	}

	if *stats {
		st := g.Stats()
		fmt.Printf("stats: %v\n", st)
	}
	if *components {
		fmt.Printf("components: %d\n", snap.ComponentCount(0))
	}
	if *bfsSrc >= 0 {
		res := snap.BFS(0, uint32(*bfsSrc))
		fmt.Printf("bfs from %d: reached %d vertices in %d levels\n", *bfsSrc, res.Reached, res.Levels)
	}
	if len(connected) > 0 {
		conn := snap.Connectivity(0)
		for _, q := range connected {
			fmt.Printf("connected(%d,%d) = %v\n", q[0], q[1], conn.Connected(q[0], q[1]))
		}
	}
}

// loadEdges reads an edge list in either graphio format (text or
// binary, auto-detected).
func loadEdges(path string) ([]snapdyn.Edge, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	return graphio.Detect(f)
}
