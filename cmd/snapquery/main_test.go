package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestPairListSet(t *testing.T) {
	var p pairList
	for _, s := range []string{"1,2", " 3 , 4 ", "0,0"} {
		if err := p.Set(s); err != nil {
			t.Fatalf("Set(%q): %v", s, err)
		}
	}
	want := pairList{{1, 2}, {3, 4}, {0, 0}}
	if len(p) != len(want) {
		t.Fatalf("p = %v, want %v", p, want)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("p[%d] = %v, want %v", i, p[i], want[i])
		}
	}
	if got := p.String(); !strings.Contains(got, "[1 2]") {
		t.Fatalf("String() = %q, want it to render the pairs", got)
	}

	for _, bad := range []string{"", "1", "1,2,3", "x,2", "1,y", "-1,2", "99999999999,0"} {
		var q pairList
		if err := q.Set(bad); err == nil {
			t.Fatalf("Set(%q) accepted invalid input", bad)
		}
	}
}

func TestParseWindow(t *testing.T) {
	lo, hi, err := parseWindow("20,70")
	if err != nil || lo != 20 || hi != 70 {
		t.Fatalf("parseWindow(20,70) = (%d,%d,%v)", lo, hi, err)
	}
	lo, hi, err = parseWindow(" 1 , 2 ")
	if err != nil || lo != 1 || hi != 2 {
		t.Fatalf("parseWindow with spaces = (%d,%d,%v)", lo, hi, err)
	}
	for _, bad := range []string{"", "5", "1,2,3", "a,2", "1,b", "-1,2"} {
		if _, _, err := parseWindow(bad); err == nil {
			t.Fatalf("parseWindow(%q) accepted invalid input", bad)
		}
	}
}

// writeGraph writes a small labeled edge list: a 0-1-2-3 path at times
// 10, 50, 90 plus an isolated pair 4-5 at time 50.
func writeGraph(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.txt")
	data := "0 1 10\n1 2 50\n2 3 90\n4 5 50\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// runCLI drives the full flag-parse + dispatch path in-process.
func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw strings.Builder
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestRunQueries(t *testing.T) {
	path := writeGraph(t)

	code, out, errw := runCLI(t, "-graph", path, "-stats", "-components", "-bfs", "0",
		"-connected", "0,3", "-connected", "0,4", "-connected", "2,2")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errw)
	}
	for _, want := range []string{
		"loaded 4 edges over 6 vertices",
		"components: 2",
		"bfs from 0: reached 4 vertices in 4 levels",
		"connected(0,3) = true",
		"connected(0,4) = false",
		"connected(2,2) = true",
		"stats:",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunWindow(t *testing.T) {
	path := writeGraph(t)

	// Open interval (20,70): keeps only the t=50 arcs (1-2 and 4-5).
	code, out, _ := runCLI(t, "-graph", path, "-window", "20,70", "-bfs", "0", "-components")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "window (20,70): 4 arcs remain") {
		t.Fatalf("window line missing:\n%s", out)
	}
	// 0 is isolated inside the window.
	if !strings.Contains(out, "bfs from 0: reached 1 vertices") {
		t.Fatalf("windowed BFS wrong:\n%s", out)
	}
	// Components over the full vertex set: {1,2}, {4,5}, and the
	// singletons 0 and 3 whose arcs fall outside the window.
	if !strings.Contains(out, "components: 4") {
		t.Fatalf("windowed components wrong:\n%s", out)
	}
}

func TestRunDirected(t *testing.T) {
	path := writeGraph(t)
	// Directed: BFS follows only forward arcs.
	code, out, _ := runCLI(t, "-graph", path, "-undirected=false", "-bfs", "3")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "bfs from 3: reached 1 vertices in 1 levels") {
		t.Fatalf("directed BFS from sink wrong:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	path := writeGraph(t)

	if code, _, errw := runCLI(t); code != 2 || !strings.Contains(errw, "-graph is required") {
		t.Fatalf("missing -graph: code=%d stderr=%q", code, errw)
	}
	if code, _, errw := runCLI(t, "-graph", filepath.Join(t.TempDir(), "absent.txt")); code != 2 || errw == "" {
		t.Fatalf("absent file: code=%d stderr=%q", code, errw)
	}
	if code, _, errw := runCLI(t, "-graph", path, "-window", "nope"); code != 2 || !strings.Contains(errw, "-window") {
		t.Fatalf("bad window: code=%d stderr=%q", code, errw)
	}
	if code, _, errw := runCLI(t, "-graph", path, "-bfs", "99"); code != 2 || !strings.Contains(errw, "out of range") {
		t.Fatalf("bfs out of range: code=%d stderr=%q", code, errw)
	}
	if code, _, errw := runCLI(t, "-graph", path, "-connected", "0,99"); code != 2 || !strings.Contains(errw, "out of range") {
		t.Fatalf("connected out of range: code=%d stderr=%q", code, errw)
	}
	if code, _, _ := runCLI(t, "-graph", path, "-connected", "1,2,3"); code != 2 {
		t.Fatalf("bad -connected parse: code=%d, want 2", code)
	}
}
