// Command snapserve is the concurrent query daemon over the
// incremental snapshot pipeline: it ingests structural updates over
// HTTP while serving analysis queries from epoch-versioned immutable
// snapshots, with refresh decided by a background policy rather than a
// call site.
//
// The initial graph comes from an edge-list file (-graph, rmatgen or
// plain "u v [t]" format) or is generated in-process (-scale). Updates
// arrive as JSON batches on /ingest; a background auto-refresher
// republishes the snapshot whenever the dirty-vertex count crosses
// -refresh-dirty or the snapshot age crosses -refresh-age. Queries
// (BFS, delta-stepping SSSP, st-connectivity, connected components)
// run on a bounded executor pool with per-worker kernel scratch reused
// across requests; past -qmax executing and -queue waiting queries,
// requests are shed with 503 so latency stays bounded under overload.
// Results are memoized per snapshot in a -cache-bytes budgeted cache
// keyed by snapshot identity (0 disables): repeat queries between
// refreshes are served from immutable cached slices without touching
// kernel scratch, concurrent identical misses coalesce into one
// execution, and a republished snapshot invalidates by identity — the
// old generation dies with its snapshot, no scanning. -record tees
// every accepted query into a JSONL trace (flushed on shutdown) that
// snapbench -fig workload -replay runs back as a benchmark workload.
//
// With -wal-dir the ingest path becomes durable: submissions coalesce
// in a group-commit batcher, each flush is framed, CRC'd, and fsynced
// to a write-ahead log before it is applied and acknowledged, and the
// /ingest reply's epoch is the snapshot epoch guaranteed to contain
// the batch — pass it back as minEpoch on any query for
// read-your-writes (503 if the snapshot can't catch up in time).
// Periodic checkpoints (-checkpoint-every) bound replay; on restart
// the daemon recovers checkpoint + log tail, truncating a torn final
// record, and continues with monotone epochs. SIGINT/SIGTERM drains
// in-flight requests, flushes the batcher, writes a final checkpoint,
// and closes the log.
//
// With -shards N (N > 1) the daemon serves a vertex-partitioned fleet
// instead of one store: N tracked stores each behind their own
// snapshot manager and auto-refresher, ingest batches routed to the
// owning shard's gate so they apply concurrently, and every query
// running scatter-gather across the shards' pinned snapshots — same
// endpoints, same wire format.
//
// With -live the daemon additionally maintains a dynamic spanning
// forest fed synchronously by the ingest path (per-shard forests
// joined by a merged union-find when sharded), so
// /query/connected?u=N&v=M&live=1 answers from the update stream
// without waiting for the next snapshot refresh.
//
// Endpoints (every query kind in the registry is served at both
// /query/<kind>, flat legacy replies, and /v1/query/<kind>, typed
// envelope with kind, epoch, cache disposition, and structured error
// codes):
//
//	POST /ingest            JSON [{"u":1,"v":2,"t":3,"op":"insert"}, ...]
//	GET  /query/bfs?src=N
//	GET  /query/sssp?src=N&delta=D
//	GET  /query/connected?u=N&v=M[&live=1]
//	GET  /query/components
//	GET  /query/clustering
//	GET  /query/khop?src=N&k=K
//	GET  /query/pagerank[?tol=T]
//	GET  /stats
//	GET  /healthz           epoch, staleness, refresh + admission metrics
//	POST /v1/jobs/betweenness[?samples=S&seed=R&topk=K]   offline job, 202 + id
//	GET  /v1/jobs/{id}      poll job progress/result
//
// Example:
//
//	snapserve -scale 16 -addr :8080 &
//	curl 'localhost:8080/query/bfs?src=0'
//	curl 'localhost:8080/v1/query/pagerank?tol=1e-8'
//	curl -X POST -d '[{"u":1,"v":2,"t":9}]' localhost:8080/ingest
//	curl localhost:8080/healthz
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"snapdyn/internal/batcher"
	"snapdyn/internal/durable"
	"snapdyn/internal/dyngraph"
	"snapdyn/internal/edge"
	"snapdyn/internal/graphio"
	"snapdyn/internal/qserve"
	"snapdyn/internal/rmat"
	"snapdyn/internal/shard"
	"snapdyn/internal/snapmgr"
	"snapdyn/internal/stream"
	"snapdyn/internal/workload"
)

// config collects everything the service needs to come up; flags parse
// into it, tests construct it directly.
type config struct {
	graphPath  string
	scale      int
	edgeFactor int
	timeMax    uint32
	seed       uint64
	undirected bool

	workers      int // ingest + refresh parallelism
	shards       int // vertex-partitioned shard workers (<= 1 = single store)
	queryWorkers int // kernel parallelism per query (single-shard engine)
	maxQueries   int // concurrent query slots
	maxQueue     int // waiting queries before shedding

	refreshDirty int
	refreshAge   time.Duration
	refreshPoll  time.Duration

	// live enables the between-refresh connectivity index: a dynamic
	// spanning forest fed by the ingest path, serving
	// /query/connected?...&live=1 from the update stream.
	live bool

	// cacheBytes budgets the per-snapshot result cache (0 disables —
	// every query recomputes).
	cacheBytes int64
	// recordPath, when set, tees every accepted query into a JSONL
	// trace file for snapbench -fig workload -replay.
	recordPath string

	// walDir enables the durable ingest path: group-commit WAL +
	// checkpoints under this directory (per-shard subdirectories when
	// sharded). Empty keeps the volatile direct-apply path.
	walDir       string
	ckptEvery    uint64
	batchMax     int
	batchDelay   time.Duration
	batchPending int
}

func (c config) durableConfig() durable.Config {
	return durable.Config{
		Dir:             c.walDir,
		CheckpointEvery: c.ckptEvery,
		Batch: batcher.Config{
			MaxBatch:   c.batchMax,
			MaxDelay:   c.batchDelay,
			MaxPending: c.batchPending,
		},
	}
}

// service is a fully assembled serving stack: tracked storage behind
// auto-refreshing snapshot management (one store, or a fleet of
// vertex-partitioned shards), the executor pool, and the HTTP handler.
type service struct {
	ex  qserve.Engine
	srv *qserve.Server
	// stop shuts the stack down in dependency order: batcher flush and
	// final checkpoint (durable path), auto-refresher(s), log close.
	stop func() error
	// recovery describes what the durable path restored, for the
	// startup banner ("" when volatile or fresh).
	recovery string
}

// buildService assembles the stack and, with recordPath set, tees
// every accepted query into a JSONL trace whose flush rides the
// service's own shutdown path — a clean stop never loses the tail.
func buildService(cfg config) (*service, error) {
	svc, err := buildStack(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.recordPath != "" {
		rec, err := workload.NewRecorder(cfg.recordPath)
		if err != nil {
			svc.close()
			return nil, fmt.Errorf("opening -record trace: %w", err)
		}
		svc.srv.SetRecorder(rec)
		stop := svc.stop
		svc.stop = func() error {
			err := stop()
			if cerr := rec.Close(); err == nil {
				err = cerr
			}
			return err
		}
	}
	return svc, nil
}

// buildStack loads or generates the graph, builds the manager (or
// shard fleet) and executor, and starts the auto-refresher(s).
func buildStack(cfg config) (*service, error) {
	var edges []edge.Edge
	var n int
	if cfg.graphPath != "" {
		f, err := os.Open(cfg.graphPath)
		if err != nil {
			return nil, err
		}
		edges, n, err = graphio.Detect(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", cfg.graphPath, err)
		}
	} else {
		n = 1 << cfg.scale
		var err error
		edges, err = rmat.Generate(0, rmat.PaperParams(cfg.scale, cfg.edgeFactor*n, cfg.timeMax, cfg.seed))
		if err != nil {
			return nil, fmt.Errorf("generating R-MAT graph: %w", err)
		}
	}

	ups := stream.Inserts(edges)
	if cfg.undirected {
		ups = stream.Mirror(ups)
	}
	policy := snapmgr.Policy{
		MaxDirty: cfg.refreshDirty,
		MaxAge:   cfg.refreshAge,
		Poll:     cfg.refreshPoll,
		Workers:  cfg.workers,
	}
	qcfg := qserve.Config{
		Workers:       cfg.queryWorkers,
		MaxConcurrent: cfg.maxQueries,
		MaxQueue:      cfg.maxQueue,
		Undirected:    cfg.undirected,
		CacheBytes:    cfg.cacheBytes,
	}

	scfg := shard.Config{
		Shards:        cfg.shards,
		Workers:       cfg.workers,
		ExpectedEdges: 4 * len(ups),
	}

	if cfg.shards > 1 && cfg.walDir != "" {
		// Durable fleet: one WAL + checkpoint directory per shard,
		// ingest scattered into per-shard group commits.
		df, infos, err := shard.OpenDurable(n, scfg, ups, cfg.durableConfig())
		if err != nil {
			return nil, err
		}
		df.Start(policy)
		ex := shard.NewExecutor(df.Fleet, qcfg)
		ex.SetIngest(df.Ingest)
		if cfg.live {
			ex.EnableLive()
		}
		var rec string
		for s, info := range infos {
			if info.Recovered {
				rec += fmt.Sprintf("shard %d: recovered LSN %d (ckpt %d, %d replayed) in %v; ",
					s, info.LSN, info.CheckpointLSN, info.ReplayedUpdates, info.Elapsed.Round(time.Millisecond))
			}
		}
		return &service{
			ex:       ex,
			srv:      qserve.NewServer(ex, cfg.undirected, cfg.workers),
			stop:     df.Close, // flushes batchers, stops refreshers, final checkpoints
			recovery: rec,
		}, nil
	}

	if cfg.shards > 1 {
		// Fleet path: one tracked store + manager + auto-refresher per
		// shard, ingest routed by vertex owner, queries scatter-gather.
		fleet := shard.New(n, scfg)
		fleet.Ingest(cfg.workers, ups)
		fleet.Refresh(cfg.workers)
		fleet.Start(policy)
		ex := shard.NewExecutor(fleet, qcfg)
		if cfg.live {
			ex.EnableLive()
		}
		return &service{
			ex:   ex,
			srv:  qserve.NewServer(ex, cfg.undirected, cfg.workers),
			stop: func() error { fleet.Stop(); return nil },
		}, nil
	}

	if cfg.walDir != "" {
		// Durable single store: bootstrap seeds a fresh directory (and
		// is checkpointed); a recovered directory wins over bootstrap.
		newStore := func(n int) dyngraph.Store {
			return dyngraph.NewHybrid(n, 4*len(edges), 0, cfg.seed)
		}
		d, info, err := durable.Open(n, cfg.workers, newStore, ups, cfg.durableConfig())
		if err != nil {
			return nil, err
		}
		d.Manager().Start(policy)
		ex := qserve.New(d.Manager(), qcfg)
		ex.SetIngest(d.Ingest)
		if cfg.live {
			ex.EnableLive()
		}
		var rec string
		if info.Recovered {
			rec = fmt.Sprintf("recovered LSN %d (ckpt %d, %d replayed, torn=%v) in %v",
				info.LSN, info.CheckpointLSN, info.ReplayedUpdates, info.Torn,
				info.Elapsed.Round(time.Millisecond))
		}
		return &service{
			ex:       ex,
			srv:      qserve.NewServer(ex, cfg.undirected, cfg.workers),
			stop:     d.Close, // flushes batcher, stops refresher, final checkpoint
			recovery: rec,
		}, nil
	}

	store := dyngraph.NewTracked(dyngraph.NewHybrid(n, 4*len(edges), 0, cfg.seed))
	store.ApplyBatch(cfg.workers, ups)
	mgr := snapmgr.New(cfg.workers, store)
	mgr.Start(policy)
	ex := qserve.New(mgr, qcfg)
	if cfg.live {
		ex.EnableLive()
	}
	return &service{
		ex:   ex,
		srv:  qserve.NewServer(ex, cfg.undirected, cfg.workers),
		stop: func() error { mgr.Stop(); return nil },
	}, nil
}

// close drains the stack: on the durable path this resolves every
// outstanding ack, writes a final checkpoint, and closes the log(s).
func (s *service) close() error { return s.stop() }

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		graphPath  = flag.String("graph", "", "edge list file (rmatgen or 'u v [t]' lines); empty generates R-MAT")
		scale      = flag.Int("scale", 14, "R-MAT scale when generating (n = 2^scale)")
		edgeFactor = flag.Int("edgefactor", 8, "edges per vertex when generating")
		timeMax    = flag.Uint("tmax", 100, "max time label when generating")
		seed       = flag.Uint64("seed", 20090525, "random seed")
		undirected = flag.Bool("undirected", true, "maintain mirror arcs (enables direction-optimizing queries)")
		workers    = flag.Int("workers", 0, "ingest/refresh parallelism (0 = GOMAXPROCS)")
		shards     = flag.Int("shards", 1, "vertex-partitioned shard workers; >1 serves a scatter-gather fleet")
		qworkers   = flag.Int("qworkers", 1, "kernel parallelism per query")
		qmax       = flag.Int("qmax", 0, "max concurrent queries (0 = GOMAXPROCS)")
		queue      = flag.Int("queue", 0, "max waiting queries before shedding (0 = 2*qmax)")
		cacheB     = flag.Int64("cache-bytes", 64<<20, "per-snapshot result-cache budget in bytes (0 disables caching)")
		record     = flag.String("record", "", "tee every accepted query into this JSONL trace file (replay with snapbench -fig workload -replay)")
		refDirty   = flag.Int("refresh-dirty", 4096, "auto-refresh when this many vertices are dirty")
		refAge     = flag.Duration("refresh-age", 500*time.Millisecond, "auto-refresh when the snapshot is this stale with updates pending")
		refPoll    = flag.Duration("refresh-poll", 0, "auto-refresh trigger poll interval (0 = derived)")
		live       = flag.Bool("live", false, "maintain a live connectivity forest on the ingest path (serves connected?live=1)")
		walDir     = flag.String("wal-dir", "", "durable ingest: WAL + checkpoint directory (per-shard subdirs when sharded); empty = volatile")
		ckptEvery  = flag.Uint64("checkpoint-every", 1<<20, "checkpoint after this many committed updates per log (0 = only on clean shutdown)")
		batchMax   = flag.Int("batch-max", 0, "group-commit flush size (0 = default)")
		batchDelay = flag.Duration("batch-delay", 0, "group-commit max batch age before flush (0 = default)")
		batchPend  = flag.Int("batch-pending", 0, "max pending updates before ingest backpressure (0 = default)")
	)
	flag.Parse()

	svc, err := buildService(config{
		graphPath:    *graphPath,
		scale:        *scale,
		edgeFactor:   *edgeFactor,
		timeMax:      uint32(*timeMax),
		seed:         *seed,
		undirected:   *undirected,
		workers:      *workers,
		shards:       *shards,
		queryWorkers: *qworkers,
		maxQueries:   *qmax,
		maxQueue:     *queue,
		refreshDirty: *refDirty,
		refreshAge:   *refAge,
		refreshPoll:  *refPoll,
		live:         *live,
		cacheBytes:   *cacheB,
		recordPath:   *record,
		walDir:       *walDir,
		ckptEvery:    *ckptEvery,
		batchMax:     *batchMax,
		batchDelay:   *batchDelay,
		batchPending: *batchPend,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "snapserve: %v\n", err)
		os.Exit(2)
	}

	if svc.recovery != "" {
		fmt.Printf("snapserve: %s\n", svc.recovery)
	}
	st := svc.ex.Stats()
	fmt.Printf("snapserve: serving %d vertices, %d arcs on %s (epoch %d)\n",
		st.Vertices, st.Arcs, *addr, st.Epoch)

	os.Exit(run(svc, *addr))
}

// run serves until SIGINT/SIGTERM, then shuts down in order: stop
// accepting connections and drain in-flight requests, then close the
// service (flush the group-commit batcher, resolve outstanding acks,
// final checkpoint, close the WAL). A second signal aborts the drain.
func run(svc *service, addr string) int {
	srv := &http.Server{
		Addr:              addr,
		Handler:           svc.srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	select {
	case err := <-errCh:
		// Listener died on its own; still drain the durable stack so
		// acked updates get their final checkpoint.
		svc.close()
		fmt.Fprintf(os.Stderr, "snapserve: %v\n", err)
		return 1
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "snapserve: shutting down")
	cancel() // restore default signal behavior: a second signal kills us
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer shutCancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "snapserve: drain: %v\n", err)
	}
	if err := svc.close(); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "snapserve: close: %v\n", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "snapserve: clean shutdown")
	return 0
}
