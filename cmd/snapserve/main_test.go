package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"snapdyn/internal/qserve"
	"snapdyn/internal/workload"
)

// TestServiceSmoke is the race-mode service smoke: bring snapserve's
// stack up on a small R-MAT graph, drive concurrent /ingest and
// /query/bfs traffic, and assert every request returns 200 while
// /healthz reports monotonically non-decreasing epochs that actually
// advance (the background auto-refresher is doing the publishing — no
// explicit refresh call anywhere in this test). Run under -race in CI.
func TestServiceSmoke(t *testing.T) { runServiceSmoke(t, 1) }

// TestServiceSmokeSharded is the same smoke over the scatter-gather
// fleet engine: identical HTTP surface, -shards 4 underneath.
func TestServiceSmokeSharded(t *testing.T) { runServiceSmoke(t, 4) }

func runServiceSmoke(t *testing.T, shards int) {
	svc, err := buildService(config{
		scale:        9,
		edgeFactor:   8,
		timeMax:      50,
		seed:         42,
		undirected:   true,
		workers:      2,
		shards:       shards,
		queryWorkers: 1,
		maxQueries:   4,
		maxQueue:     1 << 20, // never shed: the smoke asserts all-200s
		refreshDirty: 64,
		refreshAge:   5 * time.Millisecond,
		refreshPoll:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.close()

	ts := httptest.NewServer(svc.srv.Handler())
	defer ts.Close()

	get := func(path string) (int, []byte) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, body
	}

	health := func() qserve.Health {
		code, body := get("/healthz")
		if code != http.StatusOK {
			t.Fatalf("/healthz = %d: %s", code, body)
		}
		var h qserve.Health
		if err := json.Unmarshal(body, &h); err != nil {
			t.Fatalf("bad /healthz body %q: %v", body, err)
		}
		return h
	}

	startEpoch := health().Epoch
	if startEpoch == 0 {
		t.Fatal("initial epoch = 0, want >= 1")
	}

	const (
		ingesters = 2
		queriers  = 3
		rounds    = 25
	)
	var wg sync.WaitGroup
	errs := make(chan error, ingesters+queriers+1)

	for in := 0; in < ingesters; in++ {
		wg.Add(1)
		go func(in int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				var b strings.Builder
				b.WriteByte('[')
				for i := 0; i < 20; i++ {
					if i > 0 {
						b.WriteByte(',')
					}
					u := (in*7919 + r*131 + i*17) % 512
					v := (u + 1 + i) % 512
					fmt.Fprintf(&b, `{"u":%d,"v":%d,"t":%d}`, u, v, r+1)
				}
				b.WriteByte(']')
				resp, err := http.Post(ts.URL+"/ingest", "application/json", strings.NewReader(b.String()))
				if err != nil {
					errs <- fmt.Errorf("ingest: %w", err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("ingest status %d: %s", resp.StatusCode, body)
					return
				}
			}
		}(in)
	}

	stop := make(chan struct{})
	for q := 0; q < queriers; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			src := uint32(q)
			for {
				select {
				case <-stop:
					return
				default:
				}
				code, body := get(fmt.Sprintf("/query/bfs?src=%d", src%512))
				if code != http.StatusOK {
					errs <- fmt.Errorf("bfs status %d: %s", code, body)
					return
				}
				var reply qserve.BFSReply
				if err := json.Unmarshal(body, &reply); err != nil {
					errs <- fmt.Errorf("bad bfs body %q: %w", body, err)
					return
				}
				if reply.Epoch < startEpoch {
					errs <- fmt.Errorf("bfs epoch %d below start %d", reply.Epoch, startEpoch)
					return
				}
				src = src*1664525 + 1013904223
			}
		}(q)
	}

	// Epoch monotonicity watcher over /healthz while traffic flows.
	wg.Add(1)
	go func() {
		defer wg.Done()
		last := startEpoch
		for {
			select {
			case <-stop:
				return
			default:
			}
			h := health()
			if h.Epoch < last {
				errs <- fmt.Errorf("epoch regressed %d -> %d", last, h.Epoch)
				return
			}
			last = h.Epoch
			time.Sleep(time.Millisecond)
		}
	}()

	// Wait for ingesters to finish, then let the refresher drain.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// Ingesters are the first `ingesters` members of the group; give
	// the whole run a bounded window.
	deadline := time.After(60 * time.Second)
	for {
		h := health()
		if h.Refreshes > 0 && h.Epoch > startEpoch && h.Staleness == 0 {
			break
		}
		select {
		case err := <-errs:
			t.Fatal(err)
		case <-deadline:
			t.Fatalf("service did not settle: %+v", h)
		case <-time.After(5 * time.Millisecond):
		}
	}
	close(stop)
	<-done
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	final := health()
	if final.Epoch <= startEpoch {
		t.Fatalf("epoch did not advance: start %d, final %d", startEpoch, final.Epoch)
	}
	if final.AutoRefreshes == 0 {
		t.Fatalf("auto-refresher never fired: %+v", final)
	}
	if final.Counters.Served == 0 {
		t.Fatalf("no queries served: %+v", final)
	}

	// The published snapshot reflects the ingested updates: stats sees
	// more arcs than the seed graph.
	code, body := get("/stats")
	if code != http.StatusOK {
		t.Fatalf("/stats = %d", code)
	}
	var st qserve.StatsReply
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Epoch != final.Epoch && st.Epoch < startEpoch {
		t.Fatalf("stats epoch %d inconsistent (healthz %d)", st.Epoch, final.Epoch)
	}

	// Bad requests keep clean status codes.
	if code, _ := get("/query/bfs?src=notanumber"); code != http.StatusBadRequest {
		t.Fatalf("bad src = %d, want 400", code)
	}
	if code, _ := get("/query/bfs?src=99999999"); code != http.StatusBadRequest {
		t.Fatalf("out-of-range src = %d, want 400", code)
	}
	// Out-of-range ingest endpoints must be rejected before they reach
	// the store (a bad index would corrupt the shared structure).
	resp, err := http.Post(ts.URL+"/ingest", "application/json",
		strings.NewReader(`[{"u":4000000000,"v":0,"t":1}]`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range ingest = %d, want 400", resp.StatusCode)
	}
	if h := health(); h.Epoch < final.Epoch || h.Status != "ok" {
		t.Fatalf("service unhealthy after rejected ingest: %+v", h)
	}
}

// TestDurableServiceRestart brings the daemon stack up with a WAL,
// ingests over HTTP with the read-your-writes handshake (ack epoch ->
// minEpoch), shuts down cleanly, and restarts from the same directory:
// the ingested arcs must survive and epochs must stay monotone across
// the restart.
func TestDurableServiceRestart(t *testing.T)        { runDurableRestart(t, 1) }
func TestDurableServiceRestartSharded(t *testing.T) { runDurableRestart(t, 3) }

func runDurableRestart(t *testing.T, shards int) {
	dir := t.TempDir()
	graph := dir + "/g.txt"
	// Two disconnected undirected edges: 0-1 and 2-3. The ingested arc
	// 1-2 is the bridge whose survival the restart must prove.
	if err := os.WriteFile(graph, []byte("0 1 1\n2 3 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := config{
		graphPath:    graph,
		undirected:   true,
		workers:      2,
		shards:       shards,
		queryWorkers: 1,
		maxQueries:   2,
		maxQueue:     1 << 10,
		refreshDirty: 1,
		refreshAge:   time.Millisecond,
		refreshPoll:  time.Millisecond,
		walDir:       dir + "/wal",
		batchDelay:   time.Millisecond,
	}

	svc, err := buildService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if svc.recovery != "" {
		t.Fatalf("fresh directory reported recovery: %q", svc.recovery)
	}
	ts := httptest.NewServer(svc.srv.Handler())

	post := func(body string) qserve.IngestReply {
		t.Helper()
		resp, err := http.Post(ts.URL+"/ingest", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest = %d: %s", resp.StatusCode, raw)
		}
		var rep qserve.IngestReply
		if err := json.Unmarshal(raw, &rep); err != nil {
			t.Fatal(err)
		}
		return rep
	}
	connected := func(q string) (int, qserve.ConnReply) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/query/connected?u=0&v=3" + q)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var rep qserve.ConnReply
		json.Unmarshal(raw, &rep)
		return resp.StatusCode, rep
	}

	rep := post(`[{"u":1,"v":2,"t":9}]`)
	if rep.Epoch == 0 {
		t.Fatal("durable ingest acked epoch 0")
	}
	// Read your writes: minEpoch = ack epoch. The single-store wait is
	// precise; the fleet sum-epoch wait is coarse, so poll there.
	code, conn := connected(fmt.Sprintf("&minEpoch=%d", rep.Epoch))
	if code != http.StatusOK {
		t.Fatalf("connected with minEpoch = %d", code)
	}
	if shards == 1 && !conn.Connected {
		t.Fatal("acked bridge arc not visible at ack epoch")
	}
	deadline := time.Now().Add(10 * time.Second)
	for !conn.Connected {
		if time.Now().After(deadline) {
			t.Fatal("acked bridge arc never became visible")
		}
		time.Sleep(2 * time.Millisecond)
		_, conn = connected("")
	}

	// A hopeless minEpoch fails fast with 503, not a hang.
	svc.srv.SetStaleWait(30 * time.Millisecond)
	if code, _ := connected("&minEpoch=999999999"); code != http.StatusServiceUnavailable {
		t.Fatalf("unreachable minEpoch = %d, want 503", code)
	}

	ts.Close()
	if err := svc.close(); err != nil {
		t.Fatalf("clean shutdown: %v", err)
	}

	// Restart from the same directory: recovery must report, the bridge
	// must still be there, and a new ack must land above the old one.
	svc2, err := buildService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.close()
	if svc2.recovery == "" {
		t.Fatal("restart from a populated WAL directory reported no recovery")
	}
	// post/connected capture ts by reference, so they now hit svc2.
	ts = httptest.NewServer(svc2.srv.Handler())
	defer ts.Close()

	if code, conn := connected(""); code != http.StatusOK || !conn.Connected {
		t.Fatalf("bridge arc lost across restart: code %d, %+v", code, conn)
	}
	rep2 := post(`[{"u":0,"v":2,"t":11}]`)
	if rep2.Epoch <= rep.Epoch {
		t.Fatalf("ack epoch regressed across restart: %d then %d", rep.Epoch, rep2.Epoch)
	}
}

// TestRecordReplay drives the trace loop end to end: a -record service
// serves live HTTP queries, a clean shutdown flushes the JSONL trace,
// and the replayed trace runs back against a fresh engine — same ops,
// same order, every replayed query answerable.
func TestRecordReplay(t *testing.T) {
	dir := t.TempDir()
	trace := dir + "/trace.jsonl"
	cfg := config{
		scale:        9,
		edgeFactor:   8,
		timeMax:      50,
		seed:         42,
		undirected:   true,
		workers:      2,
		queryWorkers: 1,
		maxQueries:   4,
		maxQueue:     1 << 10,
		refreshDirty: 1 << 20,
		refreshAge:   time.Hour, // frozen graph: the loop tests tracing, not refresh
		refreshPoll:  time.Millisecond,
		cacheBytes:   1 << 20,
		recordPath:   trace,
	}
	svc, err := buildService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.srv.Handler())

	paths := []string{
		"/query/bfs?src=3",
		"/query/sssp?src=7&delta=25",
		"/query/connected?u=1&v=9",
		"/query/components",
		"/query/bfs?src=3", // repeat: cache hit must still be recorded
	}
	for _, p := range paths {
		resp, err := http.Get(ts.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", p, resp.StatusCode)
		}
	}
	// Rejected queries must not pollute the trace.
	if resp, err := http.Get(ts.URL + "/query/bfs?src=notanumber"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad src = %d, want 400", resp.StatusCode)
		}
	}

	ts.Close()
	if err := svc.close(); err != nil {
		t.Fatalf("clean shutdown: %v", err)
	}

	ops, err := workload.ReadTrace(trace)
	if err != nil {
		t.Fatal(err)
	}
	want := []workload.Op{
		{Kind: "bfs", U: 3},
		{Kind: "sssp", U: 7, Delta: 25},
		{Kind: "connected", U: 1, V: 9},
		{Kind: "components"},
		{Kind: "bfs", U: 3},
	}
	if len(ops) != len(want) {
		t.Fatalf("trace has %d ops, want %d: %+v", len(ops), len(want), ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("trace op %d = %+v, want %+v", i, ops[i], want[i])
		}
	}

	// Replay against a fresh engine (no recorder this time): every op
	// must execute.
	cfg.recordPath = ""
	svc2, err := buildService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.close()
	for i, op := range ops {
		if _, err := workload.Apply(svc2.ex, op); err != nil {
			t.Fatalf("replaying op %d %+v: %v", i, op, err)
		}
	}
}

// TestBuildServiceFromFile exercises the -graph loading path.
func TestBuildServiceFromFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/g.txt"
	data := "0 1 5\n1 2 6\n2 3 7\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	svc, err := buildService(config{
		graphPath:    path,
		undirected:   true,
		workers:      1,
		queryWorkers: 1,
		refreshPoll:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.close()
	st := svc.ex.Stats()
	if st.Vertices != 4 || st.Arcs != 6 {
		t.Fatalf("loaded stats = %+v, want 4 vertices / 6 arcs", st)
	}
	reply, err := svc.ex.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Reached != 4 {
		t.Fatalf("BFS reached %d, want 4", reply.Reached)
	}
}
