// Command rmatgen generates R-MAT edge lists with time labels, in the
// paper's configuration by default.
//
// Usage:
//
//	rmatgen -scale 20 -edgefactor 10 -tmax 100 -o graph.txt
//	rmatgen -scale 16 -a 0.25 -b 0.25 -c 0.25 -d 0.25 -o uniform.txt
//
// Output format: one "u v t" triple per line, preceded by a header line
// "# rmat n=<n> m=<m> seed=<seed>".
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"snapdyn/internal/graphio"
	"snapdyn/internal/rmat"
)

func main() {
	var (
		scale      = flag.Int("scale", 16, "n = 2^scale vertices")
		edgeFactor = flag.Int("edgefactor", 10, "m = edgefactor*n edges (ignored if -edges set)")
		edges      = flag.Int("edges", 0, "explicit edge count (overrides -edgefactor)")
		a          = flag.Float64("a", 0.6, "R-MAT parameter a")
		b          = flag.Float64("b", 0.15, "R-MAT parameter b")
		c          = flag.Float64("c", 0.15, "R-MAT parameter c")
		d          = flag.Float64("d", 0.10, "R-MAT parameter d")
		noise      = flag.Float64("noise", 0.1, "per-level parameter noise")
		tmax       = flag.Uint("tmax", 100, "uniform time labels in [1,tmax]; 0 disables")
		seed       = flag.Uint64("seed", 1, "random seed")
		out        = flag.String("o", "-", "output file ('-' for stdout)")
		format     = flag.String("format", "text", "output format: text or bin")
	)
	flag.Parse()
	if *format != "text" && *format != "bin" {
		fmt.Fprintf(os.Stderr, "rmatgen: unknown format %q (want text or bin)\n", *format)
		os.Exit(2)
	}

	m := *edges
	if m == 0 {
		m = *edgeFactor << *scale
	}
	p := rmat.Params{
		Scale: *scale, Edges: m,
		A: *a, B: *b, C: *c, D: *d,
		TimeMax: uint32(*tmax), Seed: *seed, Noise: *noise,
	}
	list, err := rmat.Generate(0, p)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rmatgen: %v\n", err)
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rmatgen: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		w = f
	}
	if *format == "bin" {
		err = graphio.WriteBinary(w, list)
	} else {
		err = graphio.WriteText(w, list)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rmatgen: %v\n", err)
		os.Exit(2)
	}
}
