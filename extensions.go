package snapdyn

// Extensions beyond the paper's evaluated system, implementing its
// "future research" directions: compressed adjacency representations,
// vertex reordering for cache performance, incremental connectivity
// maintenance (the dynamic forest problem), and the remaining classic
// centrality indices (closeness, stress).

import (
	"snapdyn/internal/centrality"
	"snapdyn/internal/cluster"
	"snapdyn/internal/compress"
	"snapdyn/internal/dynconn"
	"snapdyn/internal/dyngraph"
	"snapdyn/internal/reorder"
	"snapdyn/internal/sssp"
	"snapdyn/internal/traversal"
)

// --- Compressed snapshots -------------------------------------------------

// CompressedSnapshot is an immutable gap-compressed adjacency structure
// (WebGraph-style varint deltas), trading decode time for memory
// footprint.
type CompressedSnapshot struct {
	g *compress.Graph
}

// Compress encodes the snapshot into compressed form in parallel.
func (s *Snapshot) Compress(workers int) *CompressedSnapshot {
	if s.cg != nil {
		return &CompressedSnapshot{g: s.cg}
	}
	return &CompressedSnapshot{g: compress.FromCSR(workers, s.csrView())}
}

// NumVertices returns the vertex-set size.
func (c *CompressedSnapshot) NumVertices() int { return c.g.N }

// NumEdges returns the arc count.
func (c *CompressedSnapshot) NumEdges() int64 { return c.g.NumEdges() }

// SizeBytes returns the compressed payload size.
func (c *CompressedSnapshot) SizeBytes() int64 { return c.g.SizeBytes() }

// CompressionRatio compares against the 8-byte-per-arc CSR encoding.
func (c *CompressedSnapshot) CompressionRatio() float64 { return c.g.CompressionRatio() }

// OutDegree returns u's arc count (one varint read, no decode scan).
func (c *CompressedSnapshot) OutDegree(u VertexID) int64 { return c.g.Degree(u) }

// Neighbors decodes u's arcs in increasing neighbor order.
func (c *CompressedSnapshot) Neighbors(u VertexID, fn func(v VertexID, t uint32) bool) {
	c.g.Neighbors(u, fn)
}

// Decompress restores an uncompressed snapshot (per-vertex arc order
// becomes sorted).
func (c *CompressedSnapshot) Decompress(workers int) *Snapshot {
	return &Snapshot{g: c.g.ToCSR(workers)}
}

// BFS traverses the compressed graph directly, streaming each adjacency
// block through the full traversal engine (zero-alloc cursor decode, no
// CSR materialization); see traversal.RunStream.
func (c *CompressedSnapshot) BFS(workers int, src VertexID) (level []int32, reached int) {
	res := traversal.RunStream(c.g, []uint32{src}, traversal.Options{Workers: workers}, nil, nil)
	return res.Level, res.Reached
}

// --- Vertex reordering ----------------------------------------------------

// Permutation maps old vertex ids to new ones (newID = perm[oldID]).
type Permutation = reorder.Permutation

// ReorderByDegree returns the hubs-first relabeling permutation.
func (s *Snapshot) ReorderByDegree() Permutation { return reorder.ByDegree(s.csrView()) }

// ReorderByBFS returns the BFS visit-order relabeling permutation from
// the given roots.
func (s *Snapshot) ReorderByBFS(workers int, roots []VertexID) Permutation {
	return reorder.ByBFS(workers, s.csrView(), roots)
}

// ReorderByRCM returns the reverse Cuthill-McKee relabeling permutation,
// the bandwidth-minimizing ordering the pipeline's SnapshotRCM layout
// maintains automatically.
func (s *Snapshot) ReorderByRCM() Permutation { return reorder.ByRCM(s.csrView()) }

// Relabel applies a permutation, returning the relabeled snapshot. The
// result is a raw relabeling: its ids ARE the new ids (unlike the
// managed reordered layouts, which translate at the query boundary).
func (s *Snapshot) Relabel(workers int, perm Permutation) *Snapshot {
	return &Snapshot{g: reorder.Apply(workers, s.csrView(), perm)}
}

// --- Incremental connectivity (dynamic forest) ----------------------------

// DynamicConnectivity maintains connectivity under edge insertions and
// deletions without snapshot rebuilds: a spanning forest (link-cut
// parent pointers) is repaired incrementally on each update. Not safe
// for concurrent mutation.
type DynamicConnectivity struct {
	x *dynconn.Index
}

// NewDynamicConnectivity creates an empty index over n vertices backed
// by the hybrid representation.
func NewDynamicConnectivity(n int) *DynamicConnectivity {
	return &DynamicConnectivity{x: dynconn.New(n, dyngraph.NewHybrid(n, 8*n, 0, 1))}
}

// InsertEdge adds the undirected edge {u, v} at time t.
func (d *DynamicConnectivity) InsertEdge(u, v VertexID, t uint32) { d.x.InsertEdge(u, v, t) }

// DeleteEdge removes one undirected edge {u, v}, repairing the spanning
// forest if needed, and reports whether the edge existed.
func (d *DynamicConnectivity) DeleteEdge(u, v VertexID) bool { return d.x.DeleteEdge(u, v) }

// Connected answers a connectivity query in O(tree height).
func (d *DynamicConnectivity) Connected(u, v VertexID) bool { return d.x.Connected(u, v) }

// NumEdges returns the live undirected edge count.
func (d *DynamicConnectivity) NumEdges() int64 { return d.x.NumEdges() }

// ComponentCount returns the number of connected components (O(n)).
func (d *DynamicConnectivity) ComponentCount() int { return d.x.ComponentCount() }

// --- Additional centrality indices -----------------------------------------

// ClosenessScores holds classic and harmonic closeness for one vertex.
type ClosenessScores = centrality.ClosenessScores

// Closeness computes closeness centrality for the listed vertices (one
// engine traversal each, partitioned among workers). Undirected
// snapshots traverse with the direction-optimizing engine; directed
// ones fall back to top-down.
func (s *Snapshot) Closeness(workers int, sources []VertexID) []ClosenessScores {
	return centrality.Closeness(workers, s.csrView(), sources, s.kernelStrategy(BFSDirectionOpt))
}

// Stress computes stress centrality (absolute shortest-path counts
// through each vertex); options as in Betweenness.
func (s *Snapshot) Stress(workers int, opt BCOptions) []float64 {
	return centrality.Stress(workers, s.csrView(), centrality.Options{
		Temporal:  opt.Temporal,
		Sources:   opt.Sources,
		Normalize: opt.Sources != nil,
		Strategy:  s.kernelStrategy(opt.Strategy),
	})
}

// --- Weighted shortest paths ------------------------------------------------

// InfDistance marks unreachable vertices in ShortestPaths results.
const InfDistance = sssp.Inf

// SSSPScratch is the reusable arena for repeated shortest-path runs over
// one snapshot: it caches the weight-materialized, light/heavy-
// partitioned view of the graph and every kernel buffer, so steady-state
// SSSPWith calls allocate nothing. A scratch must not be shared by
// concurrent runs; the distance slice returned by a run using it is
// overwritten by the next.
type SSSPScratch = sssp.Scratch

// NewSSSPScratch returns an empty arena; buffers are sized on first use.
func NewSSSPScratch() *SSSPScratch { return sssp.NewScratch() }

// SSSPOptions configures a shortest-paths run. The zero value is a
// GOMAXPROCS-wide delta-stepping run with the heuristic bucket width and
// a throwaway scratch.
type SSSPOptions struct {
	// Workers is the parallelism; <= 0 means GOMAXPROCS.
	Workers int
	// Delta is the bucket width; <= 0 picks the heuristic (average arc
	// weight). Light arcs (weight <= Delta) are relaxed to a fixpoint
	// within each distance band, heavy arcs once per settled vertex.
	Delta int64
	// Scratch, when non-nil, is reused across calls (see SSSPScratch).
	Scratch *SSSPScratch
}

// SSSPWith computes single-source shortest path distances under opt,
// treating each arc's time label as its non-negative weight (label 0 =
// free arc), using parallel delta-stepping over a light/heavy
// pre-partitioned weighted view. The result matches Dijkstra exactly;
// unreachable vertices hold InfDistance.
//
// Storage layouts are invisible here like everywhere else: compressed
// snapshots run the streaming Bellman-Ford kernel (Delta and Scratch
// are ignored — there is no bucketed view to cache), reordered ones
// delta-step in layout space and translate the distances back, and the
// returned slice is always indexed by original vertex id.
func (s *Snapshot) SSSPWith(src VertexID, opt SSSPOptions) []int64 {
	if s.cg != nil {
		return sssp.RunStream(s.cg, src, opt.Workers, sssp.LabelWeights, nil)
	}
	dist := sssp.Run(s.g, s.toLayout(src), sssp.Options{
		Workers: opt.Workers,
		Delta:   opt.Delta,
		Scratch: opt.Scratch,
	})
	return s.translateDistances(dist)
}

// translateDistances maps a layout-space distance array back to
// original ids (the identity for plain and compressed layouts).
func (s *Snapshot) translateDistances(dist []int64) []int64 {
	if s.perm == nil {
		return dist
	}
	out := make([]int64, len(dist))
	for v := range out {
		out[v] = dist[s.perm[v]]
	}
	return out
}

// ShortestPaths computes single-source shortest path distances treating
// each arc's time label as its non-negative weight (label 0 = free arc),
// using parallel delta-stepping. delta <= 0 picks a heuristic bucket
// width; the result matches Dijkstra exactly. It is SSSPWith with a
// throwaway scratch, so every call pays the O(m) weighted-view build
// (materialized weights + light/heavy partition) before relaxing; for
// repeated sources over one snapshot use SSSPWith with a warm scratch,
// which builds the view once and thereafter allocates nothing.
func (s *Snapshot) ShortestPaths(workers int, src VertexID, delta int64) []int64 {
	return s.SSSPWith(src, SSSPOptions{Workers: workers, Delta: delta})
}

// ShortestPathsDijkstra computes the same distances with the sequential
// typed-heap Dijkstra baseline, for validation and benchmarking.
func (s *Snapshot) ShortestPathsDijkstra(src VertexID) []int64 {
	return sssp.Dijkstra(s.csrView(), src, sssp.LabelWeights)
}

// HopDistances computes unweighted (hop count) distances via the same
// machinery, for validation against BFS levels.
func (s *Snapshot) HopDistances(workers int, src VertexID) []int64 {
	if s.cg != nil {
		return sssp.RunStream(s.cg, src, workers, sssp.UnitWeights, nil)
	}
	dist := sssp.Run(s.g, s.toLayout(src), sssp.Options{
		Workers: workers,
		Delta:   1,
		Weights: sssp.UnitWeights,
	})
	return s.translateDistances(dist)
}

// --- Small-world diagnostics -------------------------------------------------

// ClusteringCoefficients holds triangle counts and local clustering
// coefficients (see internal/cluster).
type ClusteringCoefficients = cluster.Coefficients

// Clustering computes per-vertex triangle counts and clustering
// coefficients over a symmetric snapshot.
func (s *Snapshot) Clustering(workers int) *ClusteringCoefficients {
	return cluster.Compute(workers, s.csrView())
}

// EstimateDiameter lower-bounds the diameter of the largest component by
// the double-sweep heuristic repeated over sampled starting vertices:
// BFS from a sample, then BFS again from the farthest vertex found. The
// returned value is exact for trees and a tight lower bound in practice
// on small-world graphs.
func (s *Snapshot) EstimateDiameter(workers, samples int, seed uint64) int32 {
	if samples <= 0 {
		samples = 4
	}
	srcs := s.SampleSources(samples, seed)
	var best int32
	for _, src := range srcs {
		res := traversal.BFS(workers, s.csrView(), src)
		far, fd := farthest(res)
		if fd > best {
			best = fd
		}
		res = traversal.BFS(workers, s.csrView(), far)
		if _, fd = farthest(res); fd > best {
			best = fd
		}
	}
	return best
}

func farthest(res *traversal.Result) (VertexID, int32) {
	var v VertexID
	var d int32
	for u, l := range res.Level {
		if l != traversal.NotVisited && l > d {
			d = l
			v = VertexID(u)
		}
	}
	return v, d
}
