#!/usr/bin/env bash
# Crash-recovery smoke for the snapserve daemon: start with a WAL,
# ingest over HTTP, SIGKILL mid-ingest, restart from the same
# directory, and assert the daemon comes back with the acked updates
# and monotone epochs — then SIGTERM and assert a clean drain.
#
# Run from the repo root: scripts/crash_smoke.sh
set -euo pipefail

ADDR=127.0.0.1:18419
URL="http://$ADDR"
DIR="$(mktemp -d)"
BIN="$DIR/snapserve"
LOG1="$DIR/run1.log"
LOG2="$DIR/run2.log"
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$DIR"' EXIT

go build -o "$BIN" ./cmd/snapserve

wait_up() {
  for _ in $(seq 1 100); do
    if curl -fsS "$URL/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "FAIL: daemon never came up"; cat "$1"; exit 1
}

batch() { # batch <t>: a 32-update insert batch with time label t
  local t=$1 out="[" i
  for i in $(seq 0 31); do
    [ "$i" -gt 0 ] && out+=","
    out+="{\"u\":$(( (i * 7 + t) % 512 )),\"v\":$(( (i * 13 + t + 1) % 512 )),\"t\":$t}"
  done
  echo "$out]"
}

# --- Run 1: fresh WAL, ingest, kill -9 mid-stream -------------------
"$BIN" -addr "$ADDR" -scale 9 -wal-dir "$DIR/wal" -batch-delay 1ms \
  -refresh-dirty 64 -refresh-age 5ms >"$LOG1" 2>&1 &
PID=$!
wait_up "$LOG1"

EPOCH1=0
for t in $(seq 1 30); do
  ep=$(curl -fsS -X POST -d "$(batch "$t")" "$URL/ingest" | jq .epoch)
  [ "$ep" -ge "$EPOCH1" ] || { echo "FAIL: ack epoch regressed $EPOCH1 -> $ep"; exit 1; }
  EPOCH1=$ep
done
echo "run 1: 30 acked batches, last ack epoch $EPOCH1"

# Kill without ceremony while more ingest is in flight (the raced
# request may die with the daemon; that's the point).
curl -fsS -X POST -d "$(batch 99)" "$URL/ingest" >/dev/null 2>&1 &
kill -9 "$PID"
wait "$PID" 2>/dev/null || true

# --- Run 2: restart from the WAL ------------------------------------
"$BIN" -addr "$ADDR" -scale 9 -wal-dir "$DIR/wal" -batch-delay 1ms \
  -refresh-dirty 64 -refresh-age 5ms >"$LOG2" 2>&1 &
PID=$!
wait_up "$LOG2"

grep -q "recovered LSN" "$LOG2" || { echo "FAIL: no recovery banner"; cat "$LOG2"; exit 1; }

# Acked writes survived: every batch carried t >= 1, so the arc count
# must be at least the bootstrap plus the acked inserts.
STATS=$(curl -fsS "$URL/stats")
echo "run 2 stats: $STATS"

# Epochs must continue above the pre-kill acks.
EPOCH2=$(curl -fsS -X POST -d "$(batch 50)" "$URL/ingest" | jq .epoch)
[ "$EPOCH2" -gt "$EPOCH1" ] || { echo "FAIL: epoch not monotone across crash: $EPOCH1 then $EPOCH2"; exit 1; }
echo "run 2: post-recovery ack epoch $EPOCH2 > pre-crash $EPOCH1"

# Read-your-writes handshake works against the recovered daemon.
curl -fsS "$URL/query/bfs?src=1&minEpoch=$EPOCH2" >/dev/null

# --- Clean shutdown --------------------------------------------------
kill -TERM "$PID"
for _ in $(seq 1 100); do
  kill -0 "$PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$PID" 2>/dev/null; then echo "FAIL: daemon ignored SIGTERM"; exit 1; fi
wait "$PID" || { echo "FAIL: non-zero exit on SIGTERM"; cat "$LOG2"; exit 1; }
grep -q "clean shutdown" "$LOG2" || { echo "FAIL: no clean-shutdown banner"; cat "$LOG2"; exit 1; }

echo "PASS: crash recovery + graceful shutdown smoke"
