package snapdyn

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"snapdyn/internal/qserve"
)

// executorFor builds a qserve executor over the facade manager's
// internal snapshot manager — the serving stack the snapserve daemon
// and the service figure run, reachable here because the facade and
// its tests share the package.
func executorFor(sm *SnapshotManager, cfg qserve.Config) *qserve.Executor {
	return qserve.New(sm.m, cfg)
}

// TestAutoRefreshHammer is the serving-layer -race hammer required by
// the serving subsystem: concurrent gated ingest through
// SnapshotManager.ApplyUpdates, the background auto-refresher
// publishing on its own, and pooled executor queries all running at
// once. Asserts epochs stay monotone, queries never fail (beyond
// admission shedding), and the final drained state equals a full
// rebuild arc for arc.
func TestAutoRefreshHammer(t *testing.T) {
	const (
		n         = 1 << 9
		ingesters = 3
		queriers  = 3
		rounds    = 12
	)
	edges, err := GenerateRMAT(0, PaperRMAT(9, 8*n, 50, 21))
	if err != nil {
		t.Fatal(err)
	}
	g := New(n, WithExpectedEdges(4*len(edges)), Undirected())
	g.InsertEdges(0, edges)
	m := g.Manager(2)
	if !m.StartAutoRefresh(AutoRefreshPolicy{MaxDirty: 32, MaxAge: 2 * time.Millisecond, Poll: time.Millisecond}) {
		t.Fatal("StartAutoRefresh returned false")
	}
	defer m.StopAutoRefresh()

	ex := executorFor(m, qserve.Config{Undirected: true, MaxConcurrent: 2, MaxQueue: 1 << 20})

	extra, err := GenerateRMAT(0, PaperRMAT(9, 8*n, 50, 22))
	if err != nil {
		t.Fatal(err)
	}

	var fail atomic.Int32
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Gated ingest from several goroutines at once: each applies its
	// own slice of a mixed stream in batches, relying on the manager's
	// gate to serialize against the background refresher.
	for in := 0; in < ingesters; in++ {
		wg.Add(1)
		go func(in int) {
			defer wg.Done()
			per := len(extra) / ingesters
			mine := extra[in*per : (in+1)*per]
			for r := 0; r < rounds; r++ {
				lo := r * len(mine) / rounds
				hi := (r + 1) * len(mine) / rounds
				batch := make([]Update, 0, hi-lo)
				for _, e := range mine[lo:hi] {
					batch = append(batch, Update{Edge: e, Op: OpInsert})
				}
				m.ApplyUpdates(1, batch)
			}
		}(in)
	}

	// Pooled queries against whatever epoch is current.
	for q := 0; q < queriers; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			src := uint32(q + 1)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var err error
				switch i % 3 {
				case 0:
					_, err = ex.BFS(src % n)
				case 1:
					_, err = ex.SSSP(src%n, 0)
				default:
					_, err = ex.Connected(src%n, (src+13)%n)
				}
				if err != nil {
					t.Errorf("query failed: %v", err)
					fail.Add(1)
					return
				}
				src = src*1664525 + 1013904223
			}
		}(q)
	}

	// Epoch monotonicity watcher.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			e := m.Epoch()
			if e < last {
				t.Errorf("epoch regressed %d -> %d", last, e)
				fail.Add(1)
				return
			}
			last = e
		}
	}()

	// Wait until the background refresher has demonstrably fired and
	// caught up at least once; ingest may still be running, which is
	// fine — wg.Wait below joins the ingesters before the final check.
	deadline := time.Now().Add(30 * time.Second)
	for m.Staleness() != 0 || m.Metrics().AutoRefreshes == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("refresher never drained: %+v", m.Metrics())
		}
		if fail.Load() != 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if fail.Load() != 0 {
		t.Fatal("hammer observed failures")
	}

	// Drain any dirt that raced the shutdown, then compare against a
	// full rebuild: the incrementally maintained snapshot must be
	// identical arc for arc.
	m.StopAutoRefresh()
	inc, full := m.Refresh(0), g.Snapshot(0)
	if inc.NumEdges() != full.NumEdges() {
		t.Fatalf("final snapshot has %d arcs, full rebuild %d", inc.NumEdges(), full.NumEdges())
	}
	for u := VertexID(0); int(u) < n; u++ {
		ia, it := inc.Neighbors(u)
		fa, ft := full.Neighbors(u)
		if len(ia) != len(fa) {
			t.Fatalf("vertex %d: %d arcs incremental, %d full", u, len(ia), len(fa))
		}
		for i := range ia {
			if ia[i] != fa[i] || it[i] != ft[i] {
				t.Fatalf("vertex %d arc %d: (%d@%d) incremental, (%d@%d) full",
					u, i, ia[i], it[i], fa[i], ft[i])
			}
		}
	}
	met := m.Metrics()
	if met.AutoRefreshes == 0 || met.Refreshes < met.AutoRefreshes {
		t.Fatalf("implausible metrics after hammer: %+v", met)
	}
}

// TestSnapshotManagerGatedIngest exercises the facade ingest methods
// without the refresher: they mutate through the gate and mirror like
// the Graph methods.
func TestSnapshotManagerGatedIngest(t *testing.T) {
	g := New(16, Undirected())
	m := g.Manager(1)
	m.InsertEdge(1, 2, 7)
	m.ApplyUpdates(1, []Update{{Edge: Edge{U: 3, V: 4, T: 9}, Op: OpInsert}})
	s := m.Refresh(1)
	if s.NumEdges() != 4 {
		t.Fatalf("arcs = %d, want 4 (two mirrored edges)", s.NumEdges())
	}
	if !m.DeleteEdge(1, 2) {
		t.Fatal("DeleteEdge reported missing edge")
	}
	if m.DeleteEdge(1, 2) {
		t.Fatal("second DeleteEdge should report false")
	}
	if s := m.Refresh(1); s.NumEdges() != 2 {
		t.Fatalf("arcs after delete = %d, want 2", s.NumEdges())
	}
	if g.NumEdges() != 2 {
		t.Fatalf("graph arcs = %d, want 2 (manager ingest hits the same store)", g.NumEdges())
	}
}

// BenchmarkServiceQuery measures the steady-state serving path — a
// pooled-scratch executor query against the managed snapshot — at the
// acceptance scale (R-MAT 16, m=10n, undirected). allocs/op must stay
// at zero: the kernel scratch comes from the executor's free list, not
// per-request allocation (the pool's allocation test enforces the same
// invariant).
func BenchmarkServiceQuery(b *testing.B) {
	const scale = 16
	n := 1 << scale
	edges, err := GenerateRMAT(0, PaperRMAT(scale, 10*n, 100, 1))
	if err != nil {
		b.Fatal(err)
	}
	g := New(n, WithExpectedEdges(4*len(edges)), Undirected())
	g.InsertEdges(0, edges)
	sm := g.Manager(0)
	ex := executorFor(sm, qserve.Config{Undirected: true, MaxConcurrent: 1})
	src := sm.Current().SampleSources(1, 1)[0]

	warm := func(b *testing.B) {
		b.Helper()
		if _, err := ex.BFS(src); err != nil {
			b.Fatal(err)
		}
		if _, err := ex.SSSP(src, 0); err != nil {
			b.Fatal(err)
		}
	}
	arcs := float64(sm.Current().NumEdges())

	b.Run("bfs", func(b *testing.B) {
		warm(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ex.BFS(src); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(arcs*float64(b.N)/b.Elapsed().Seconds()/1e6, "MTEPS")
	})
	b.Run("sssp", func(b *testing.B) {
		warm(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ex.SSSP(src, 0); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(arcs*float64(b.N)/b.Elapsed().Seconds()/1e6, "MTEPS")
	})
}

// BenchmarkCachedBFS prices the snapshot-identity result cache at the
// acceptance scale, as a hit/miss pair. The hit variant repeats one hot
// source against a warm, generously budgeted cache: steady state must
// run the kernel zero times and allocate zero objects per op. The miss
// variant cycles more sources than the starved budget can hold, so
// every op recomputes and pays the eviction bookkeeping on top of the
// kernel — the two bounds that bracket any real hit rate.
func BenchmarkCachedBFS(b *testing.B) {
	const scale = 16
	n := 1 << scale
	edges, err := GenerateRMAT(0, PaperRMAT(scale, 10*n, 100, 1))
	if err != nil {
		b.Fatal(err)
	}
	g := New(n, WithExpectedEdges(4*len(edges)), Undirected())
	g.InsertEdges(0, edges)
	sm := g.Manager(0)
	srcs := sm.Current().SampleSources(64, 1)
	arcs := float64(sm.Current().NumEdges())

	b.Run("hit", func(b *testing.B) {
		ex := executorFor(sm, qserve.Config{Undirected: true, MaxConcurrent: 1,
			CacheBytes: 256 << 20})
		for i := 0; i < 2; i++ {
			if _, err := ex.BFS(srcs[0]); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ex.BFS(srcs[0]); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		st := ex.Stats()
		if st.CacheHits < uint64(b.N) {
			b.Fatalf("hit variant missed: %d hits for %d ops", st.CacheHits, b.N)
		}
		b.ReportMetric(arcs*float64(b.N)/b.Elapsed().Seconds()/1e6, "MTEPS")
	})
	b.Run("miss", func(b *testing.B) {
		// A budget that holds only a couple of level arrays: cycling 64
		// sources guarantees every op recomputes and evicts.
		ex := executorFor(sm, qserve.Config{Undirected: true, MaxConcurrent: 1,
			CacheBytes: 1 << 20})
		if _, err := ex.BFS(srcs[0]); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		// Offset by one: the first timed op must not collide with the
		// warm-up entry while it is still resident.
		for i := 0; i < b.N; i++ {
			if _, err := ex.BFS(srcs[(i+1)%len(srcs)]); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		st := ex.Stats()
		if st.CacheMisses < uint64(b.N) {
			b.Fatalf("miss variant hit: %d misses for %d ops", st.CacheMisses, b.N)
		}
		b.ReportMetric(arcs*float64(b.N)/b.Elapsed().Seconds()/1e6, "MTEPS")
	})
}
