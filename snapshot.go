package snapdyn

import (
	"sync"

	"snapdyn/internal/cc"
	"snapdyn/internal/centrality"
	"snapdyn/internal/compress"
	"snapdyn/internal/csr"
	"snapdyn/internal/lct"
	"snapdyn/internal/reorder"
	"snapdyn/internal/snapmgr"
	"snapdyn/internal/subgraph"
	"snapdyn/internal/traversal"
)

// Snapshot is an immutable view of a graph, the substrate for the
// analysis kernels. Snapshots are safe for concurrent queries.
//
// A snapshot's storage layout is invisible at this API: managers built
// with ManagerWithLayout publish snapshots whose backing store may be a
// locality-reordered CSR (vertex ids permuted internally) or a
// gap-compressed adjacency, and every query accepts and reports
// original vertex ids — sources are translated on the way in, levels,
// parents, distances, and component labels on the way out, so results
// are identical across layouts. Queries without a layout-native kernel
// run over a lazily materialized (and cached) original-id CSR.
type Snapshot struct {
	g *csr.Graph // CSR arrays, in layout space for reordered views; nil for compressed
	// cg is the gap-compressed payload under SnapshotCompressed; queries
	// with streaming kernels (BFS, SSSP, components) decode it directly.
	cg *compress.Graph
	// perm/inv translate reordered views: layoutID = perm[origID],
	// origID = inv[layoutID]. Both nil for plain and compressed views.
	perm, inv reorder.Permutation
	// view is the published pipeline view this snapshot wraps (nil for
	// one-shot snapshots); the manager uses it as its cache identity.
	view *snapmgr.View
	// undirected records whether the source graph maintained mirror
	// arcs; engines that need symmetry (BFSDirectionOpt) consult it.
	undirected bool

	// baseOnce guards the lazy original-id CSR materialization backing
	// kernels without a layout-native path.
	baseOnce sync.Once
	baseG    *csr.Graph
}

// snapshotFromView wraps a published pipeline view.
func snapshotFromView(v *snapmgr.View, undirected bool) *Snapshot {
	return &Snapshot{g: v.G, cg: v.C, perm: v.Perm, inv: v.Inv, view: v, undirected: undirected}
}

// layoutPlain reports whether the snapshot is stored as an unpermuted
// CSR, the layout every kernel consumes natively.
func (s *Snapshot) layoutPlain() bool { return s.cg == nil && s.perm == nil }

// toLayout maps an original vertex id into the storage layout's id
// space (the identity except for reordered views).
func (s *Snapshot) toLayout(u VertexID) VertexID {
	if s.perm != nil {
		return s.perm[u]
	}
	return u
}

// csrView returns an original-id CSR of the snapshot, materializing and
// caching one on first use for non-plain layouts: reordered views apply
// the inverse permutation, compressed views decode (which sorts each
// adjacency by neighbor id — an equivalent arc multiset, possibly a
// different per-vertex arc order). Kernels without a layout-native path
// route through here, trading a one-time O(n + m) rebuild for exact
// plain-snapshot semantics.
func (s *Snapshot) csrView() *csr.Graph {
	if s.layoutPlain() {
		return s.g
	}
	s.baseOnce.Do(func() {
		if s.cg != nil {
			s.baseG = s.cg.ToCSR(0)
		} else {
			s.baseG = reorder.ApplyInto(0, s.g, s.inv, s.perm, nil)
		}
	})
	return s.baseG
}

// run dispatches a traversal to the layout's engine: streaming decode
// for compressed views, array indexing otherwise (layout-space ids).
func (s *Snapshot) run(sources []uint32, opt traversal.Options, sc *traversal.Scratch, res *traversal.Result) *traversal.Result {
	if s.cg != nil {
		return traversal.RunStream(s.cg, sources, opt, sc, res)
	}
	return traversal.Run(s.g, sources, opt, sc, res)
}

// translateResultInto maps a layout-space traversal result back to
// original ids into out (fresh arrays when out is nil), returning the
// result callers should read. Plain and compressed layouts already
// produce original-id results and pass through untouched.
func (s *Snapshot) translateResultInto(res, out *traversal.Result) *traversal.Result {
	if s.perm == nil {
		return res
	}
	if out == nil {
		out = &traversal.Result{}
	}
	n := len(res.Level)
	if cap(out.Level) < n || cap(out.Parent) < n {
		out.Level = make([]int32, n)
		out.Parent = make([]uint32, n)
	} else {
		out.Level = out.Level[:n]
		out.Parent = out.Parent[:n]
	}
	out.Reached, out.Levels = res.Reached, res.Levels
	for v := 0; v < n; v++ {
		lv := res.Level[s.perm[v]]
		out.Level[v] = lv
		if lv != traversal.NotVisited {
			out.Parent[v] = s.inv[res.Parent[s.perm[v]]]
		} else {
			out.Parent[v] = 0
		}
	}
	return out
}

// NumVertices returns the vertex-set size.
func (s *Snapshot) NumVertices() int {
	if s.cg != nil {
		return s.cg.N
	}
	return s.g.N
}

// NumEdges returns the number of arcs in the snapshot.
func (s *Snapshot) NumEdges() int64 {
	if s.cg != nil {
		return s.cg.NumEdges()
	}
	return s.g.NumEdges()
}

// OutDegree returns u's out-degree.
func (s *Snapshot) OutDegree(u VertexID) int64 {
	if s.cg != nil {
		return s.cg.Degree(u)
	}
	return s.g.Degree(s.toLayout(u))
}

// Neighbors returns read-only views of u's adjacency and time labels.
// Non-plain layouts serve from the cached original-id CSR (see
// csrView), so the returned heads are always original ids.
func (s *Snapshot) Neighbors(u VertexID) (adj []uint32, ts []uint32) {
	return s.csrView().Neighbors(u)
}

// BFSResult holds a traversal outcome. Level[v] is the hop distance or
// NotVisited; Parent[v] is the BFS-tree parent.
type BFSResult = traversal.Result

// NotVisited marks unreached vertices in BFS results.
const NotVisited = traversal.NotVisited

// BFS runs a parallel level-synchronous breadth-first search from src.
func (s *Snapshot) BFS(workers int, src VertexID) *BFSResult {
	if s.layoutPlain() {
		return traversal.BFS(workers, s.g, src)
	}
	return s.BFSWith(src, BFSOptions{Workers: workers})
}

// BFSStrategy selects the frontier-expansion engine for option-driven
// traversals.
type BFSStrategy = traversal.Strategy

const (
	// BFSTopDown always pushes from the frontier; correct on any
	// snapshot.
	BFSTopDown = traversal.TopDown
	// BFSDirectionOpt switches between top-down push and bottom-up pull
	// by frontier edge mass. Requires an undirected snapshot; on
	// low-diameter small-world graphs it skips most edge inspections.
	//
	// Time-filtered traversals additionally require symmetric time
	// labels (the pull step inspects the reverse arc's label). Snapshots
	// of treap-backed stores (including the default hybrid) keep only
	// the most recent label per direction when parallel edges exist, so
	// a time-filtered traversal over such a snapshot can differ between
	// engines; use BFSTopDown there. Unfiltered traversals are safe on
	// any undirected snapshot.
	BFSDirectionOpt = traversal.DirectionOpt
)

// BFSOptions configures option-driven traversals. The zero value is a
// top-down BFS with GOMAXPROCS workers.
type BFSOptions struct {
	// Workers is the parallelism; <= 0 means GOMAXPROCS.
	Workers int
	// Strategy selects the engine; BFSDirectionOpt needs an undirected
	// snapshot.
	Strategy BFSStrategy
	// Alpha and Beta override the direction-switching thresholds
	// (<= 0 uses the defaults, 15 and 18).
	Alpha, Beta int64
}

func (o BFSOptions) traversalOptions(filter traversal.EdgeFilter) traversal.Options {
	return traversal.Options{
		Workers:  o.Workers,
		Strategy: o.Strategy,
		Alpha:    o.Alpha,
		Beta:     o.Beta,
		Filter:   filter,
	}
}

// demote downgrades BFSDirectionOpt to top-down on directed snapshots,
// where the pull step would silently miss vertices lacking mirror arcs.
func (s *Snapshot) demote(opt BFSOptions) BFSOptions {
	opt.Strategy = s.kernelStrategy(opt.Strategy)
	return opt
}

// BFSWith runs a BFS from src under the given options. On a directed
// snapshot BFSDirectionOpt falls back to top-down: the pull step
// requires mirror arcs.
func (s *Snapshot) BFSWith(src VertexID, opt BFSOptions) *BFSResult {
	opt = s.demote(opt)
	res := s.run([]uint32{s.toLayout(src)}, opt.traversalOptions(nil), nil, nil)
	return s.translateResultInto(res, nil)
}

// Traverser runs repeated traversals over one snapshot while reusing
// all internal buffers and the result arrays: after the first call,
// steady-state traversals allocate only a constant number of small
// fan-out objects regardless of graph size. The returned result is
// overwritten by the next call; a Traverser is not safe for concurrent
// use (create one per goroutine).
type Traverser struct {
	s       *Snapshot
	opt     BFSOptions
	scratch *traversal.Scratch
	res     traversal.Result
	// out is the original-id translation of res for reordered layouts,
	// buffer-reused like res itself.
	out traversal.Result
	src [1]uint32
}

// Traverser returns a reusable traversal engine over the snapshot. On a
// directed snapshot BFSDirectionOpt falls back to top-down: the pull
// step requires mirror arcs.
func (s *Snapshot) Traverser(opt BFSOptions) *Traverser {
	return &Traverser{s: s, opt: s.demote(opt), scratch: traversal.NewScratch()}
}

// BFS traverses from src, reusing the internal scratch and result.
func (t *Traverser) BFS(src VertexID) *BFSResult {
	t.src[0] = t.s.toLayout(src)
	res := t.s.run(t.src[:], t.opt.traversalOptions(nil), t.scratch, &t.res)
	return t.s.translateResultInto(res, &t.out)
}

// TemporalBFS traverses from src over arcs with time labels in [lo, hi],
// reusing the internal scratch and result.
func (t *Traverser) TemporalBFS(src VertexID, lo, hi uint32) *BFSResult {
	t.src[0] = t.s.toLayout(src)
	res := t.s.run(t.src[:],
		t.opt.traversalOptions(traversal.TimeWindow(lo, hi)), t.scratch, &t.res)
	return t.s.translateResultInto(res, &t.out)
}

// MultiBFS traverses from all sources simultaneously (each at level 0),
// reusing the internal scratch and result. Sources must be distinct.
// Reordered layouts translate the sources through an internal buffer,
// so the caller's slice is never modified.
func (t *Traverser) MultiBFS(sources []VertexID) *BFSResult {
	if t.s.perm != nil {
		lsrc := make([]uint32, len(sources))
		for i, u := range sources {
			lsrc[i] = t.s.perm[u]
		}
		res := t.s.run(lsrc, t.opt.traversalOptions(nil), t.scratch, &t.res)
		return t.s.translateResultInto(res, &t.out)
	}
	return t.s.run(sources, t.opt.traversalOptions(nil), t.scratch, &t.res)
}

// TemporalBFS runs BFS traversing only arcs with time labels in
// [lo, hi] — the paper's augmented BFS with a time-stamp check.
func (s *Snapshot) TemporalBFS(workers int, src VertexID, lo, hi uint32) *BFSResult {
	if s.layoutPlain() {
		return traversal.TemporalBFS(workers, s.g, src, traversal.TimeWindow(lo, hi))
	}
	res := s.run([]uint32{s.toLayout(src)},
		traversal.Options{Workers: workers, Filter: traversal.TimeWindow(lo, hi)}, nil, nil)
	return s.translateResultInto(res, nil)
}

// STConnected answers an st-connectivity query by traversal, returning
// reachability and hop distance (-1 if unreachable).
func (s *Snapshot) STConnected(workers int, u, v VertexID) (bool, int32) {
	if s.cg == nil {
		return traversal.STConnected(workers, s.g, s.toLayout(u), s.toLayout(v))
	}
	if u == v {
		return true, 0
	}
	// Compressed: the same early-exiting traversal, streamed.
	res := &traversal.Result{}
	traversal.RunStream(s.cg, []uint32{u}, traversal.Options{
		Workers: workers,
		Hooks: traversal.Hooks{OnLevelEnd: func(int32, int) bool {
			return res.Level[v] == traversal.NotVisited
		}},
	}, nil, res)
	if res.Level[v] == traversal.NotVisited {
		return false, -1
	}
	return true, res.Level[v]
}

// STConnectedFast answers an st-connectivity query with bidirectional
// search: on low-diameter graphs it touches far fewer edges than a full
// BFS. The snapshot must be symmetric (undirected Graph).
func (s *Snapshot) STConnectedFast(u, v VertexID) (bool, int32) {
	return traversal.STConnectedBidirectional(s.csrView(), u, v)
}

// TemporalReachability computes the vertices reachable from src by
// time-respecting paths (strictly increasing labels, Kempe et al.),
// returning the minimum arrival label per vertex (^uint32(0) when
// unreachable) and the reached count.
func (s *Snapshot) TemporalReachability(src VertexID) (arrive []uint32, reached int) {
	return traversal.TemporalReachability(s.csrView(), src)
}

// TemporallyReachable reports whether a time-respecting path u -> v
// exists.
func (s *Snapshot) TemporallyReachable(u, v VertexID) bool {
	return traversal.TemporallyReachable(s.csrView(), u, v)
}

// Components labels weakly-connected components in parallel:
// comp[u] == comp[v] iff u and v are connected. Labels are canonical —
// each component is labeled by its minimum original vertex id — in
// every storage layout, so label arrays compare equal across layouts.
func (s *Snapshot) Components(workers int) []uint32 {
	switch {
	case s.cg != nil:
		// Streaming labeler over compressed adjacency; labels are already
		// component minimums in original id space.
		comp, _ := traversal.StreamComponentsInto(s.cg, nil, nil)
		return comp
	case s.perm != nil:
		// Label in layout space, then canonicalize each component to its
		// minimum ORIGINAL id: ascending original-id scan records the
		// first original vertex seen per layout-space label.
		comp := cc.Components(workers, s.g)
		n := len(comp)
		out := make([]uint32, n)
		const unset = ^uint32(0)
		minOrig := make([]uint32, n)
		for i := range minOrig {
			minOrig[i] = unset
		}
		for v := 0; v < n; v++ {
			l := comp[s.perm[v]]
			if minOrig[l] == unset {
				minOrig[l] = uint32(v)
			}
		}
		for v := 0; v < n; v++ {
			out[v] = minOrig[comp[s.perm[v]]]
		}
		return out
	default:
		return cc.Components(workers, s.g)
	}
}

// ComponentCount returns the number of weakly-connected components.
func (s *Snapshot) ComponentCount(workers int) int {
	return cc.Count(s.Components(workers))
}

// LargestComponent returns a representative vertex of the largest
// weakly-connected component and its size (the smallest representative
// on ties). Labeling, census, and the max scan all run in parallel.
func (s *Snapshot) LargestComponent(workers int) (rep VertexID, size int) {
	return cc.Largest(workers, s.Components(workers))
}

// Connectivity builds the link-cut forest index over the snapshot: a
// spanning forest (parallel BFS per component) whose parent-pointer
// representation answers connectivity queries in O(diameter) hops.
// The snapshot should be symmetric (built from an undirected Graph);
// undirected snapshots build the forest with the direction-optimizing
// engine, directed ones fall back to top-down.
func (s *Snapshot) Connectivity(workers int) *Connectivity {
	return &Connectivity{f: lct.BuildStrategy(workers, s.csrView(), s.kernelStrategy(BFSDirectionOpt))}
}

// kernelStrategy demotes a requested engine to top-down on directed
// snapshots, where the bottom-up pull step would silently miss vertices
// lacking mirror arcs. The analysis kernels (connectivity forest,
// betweenness, closeness, stress) route their engine choice through
// here, so they inherit exactly the BFS facade's safety rule.
func (s *Snapshot) kernelStrategy(want BFSStrategy) BFSStrategy {
	if !s.undirected {
		return BFSTopDown
	}
	return want
}

// InducedByTime extracts the subgraph of arcs with time labels strictly
// inside (lo, hi), keeping the vertex set (the paper's induced subgraph
// kernel).
func (s *Snapshot) InducedByTime(workers int, lo, hi uint32) *Snapshot {
	return &Snapshot{
		g:          subgraph.InducedByEdges(workers, s.csrView(), subgraph.TimeInterval(lo, hi)),
		undirected: s.undirected,
	}
}

// InducedByVertices extracts the subgraph induced by the kept vertices.
func (s *Snapshot) InducedByVertices(workers int, keep []bool) *Snapshot {
	return &Snapshot{
		g:          subgraph.InducedByVertices(workers, s.csrView(), keep),
		undirected: s.undirected,
	}
}

// ActiveVertices returns the vertices incident to at least one arc with
// a time label in [lo, hi].
func (s *Snapshot) ActiveVertices(workers int, lo, hi uint32) []bool {
	return subgraph.VerticesInWindow(workers, s.csrView(), lo, hi)
}

// BCOptions configures betweenness (and stress) computation.
type BCOptions struct {
	// Temporal restricts traversal to temporal (label-increasing)
	// shortest paths.
	Temporal bool
	// Sources, when non-nil, lists traversal roots (approximate
	// betweenness with extrapolated scores); nil means exact.
	Sources []VertexID
	// Strategy selects the per-source traversal engine; the zero value
	// is top-down. BFSDirectionOpt needs an undirected snapshot (it is
	// demoted to top-down otherwise) and, combined with Temporal,
	// symmetric time labels — snapshots of treap-backed stores collapse
	// parallel-edge labels per direction, so use BFSTopDown for
	// temporal scores there (the same caveat as BFSOptions).
	Strategy BFSStrategy
}

// Betweenness computes (temporal) betweenness centrality scores.
func (s *Snapshot) Betweenness(workers int, opt BCOptions) []float64 {
	return centrality.Betweenness(workers, s.csrView(), centrality.Options{
		Temporal:  opt.Temporal,
		Sources:   opt.Sources,
		Normalize: opt.Sources != nil,
		Strategy:  s.kernelStrategy(opt.Strategy),
	})
}

// SampleSources draws k distinct random traversal roots, preferring
// non-isolated vertices.
func (s *Snapshot) SampleSources(k int, seed uint64) []VertexID {
	return centrality.SampleSources(s.csrView(), k, seed)
}

// Connectivity is a link-cut forest supporting constant-time structural
// updates and diameter-bounded connectivity queries. Queries may run
// concurrently with each other; Link/Cut require external serialization
// against queries.
type Connectivity struct {
	f *lct.Forest
}

// NewConnectivity returns a forest of n singleton trees.
func NewConnectivity(n int) *Connectivity { return &Connectivity{f: lct.New(n)} }

// Connected reports whether u and v are in the same tree (two findroot
// walks).
func (c *Connectivity) Connected(u, v VertexID) bool { return c.f.Connected(u, v) }

// FindRoot returns the representative of v's tree.
func (c *Connectivity) FindRoot(v VertexID) VertexID { return c.f.FindRoot(v) }

// Link makes root v a child of w, merging two trees. It fails if v is
// not a root or the link would create a cycle.
func (c *Connectivity) Link(v, w VertexID) error { return c.f.Link(v, w) }

// Cut detaches v from its parent, splitting its subtree off.
func (c *Connectivity) Cut(v VertexID) bool { return c.f.Cut(v) }

// Query is one connectivity query.
type Query = lct.Query

// ConnectedBatch answers queries in parallel into results.
func (c *Connectivity) ConnectedBatch(workers int, queries []Query, results []bool) {
	c.f.ConnectedBatch(workers, queries, results)
}

// TreeHeight returns the maximum parent-walk length in the forest
// (diagnostic; O(n·height)).
func (c *Connectivity) TreeHeight() int { return c.f.Height() }
