package snapdyn

import (
	"testing"
)

func buildSmall(t *testing.T) (*Graph, *Snapshot) {
	t.Helper()
	p := PaperRMAT(10, 8<<10, 100, 21)
	edges, err := GenerateRMAT(0, p)
	if err != nil {
		t.Fatal(err)
	}
	g := New(p.NumVertices(), WithExpectedEdges(2*len(edges)), Undirected())
	g.InsertEdges(0, edges)
	return g, g.Snapshot(0)
}

func TestCompressedSnapshotRoundTrip(t *testing.T) {
	_, snap := buildSmall(t)
	cs := snap.Compress(0)
	if cs.NumVertices() != snap.NumVertices() || cs.NumEdges() != snap.NumEdges() {
		t.Fatal("size mismatch")
	}
	if cs.CompressionRatio() <= 1 {
		t.Fatalf("compression ratio %.2f <= 1", cs.CompressionRatio())
	}
	if cs.SizeBytes() >= snap.NumEdges()*8 {
		t.Fatal("no space saved")
	}
	back := cs.Decompress(0)
	for u := 0; u < snap.NumVertices(); u++ {
		if back.OutDegree(uint32(u)) != snap.OutDegree(uint32(u)) {
			t.Fatalf("degree(%d) changed in round trip", u)
		}
		if int64(cs.OutDegree(uint32(u))) != snap.OutDegree(uint32(u)) {
			t.Fatalf("compressed degree(%d) wrong", u)
		}
	}
}

func TestCompressedBFSMatches(t *testing.T) {
	_, snap := buildSmall(t)
	cs := snap.Compress(0)
	src := snap.SampleSources(1, 4)[0]
	want := snap.BFS(0, src)
	level, reached := cs.BFS(0, src)
	if reached != want.Reached {
		t.Fatalf("reached %d, want %d", reached, want.Reached)
	}
	for v := range level {
		if level[v] != want.Level[v] {
			t.Fatalf("level[%d] = %d, want %d", v, level[v], want.Level[v])
		}
	}
}

func TestCompressedNeighborsCallback(t *testing.T) {
	_, snap := buildSmall(t)
	cs := snap.Compress(0)
	u := snap.SampleSources(1, 9)[0]
	count := 0
	cs.Neighbors(u, func(v VertexID, t32 uint32) bool {
		count++
		return true
	})
	if int64(count) != snap.OutDegree(u) {
		t.Fatalf("decoded %d arcs, want %d", count, snap.OutDegree(u))
	}
}

func TestRelabelPreservesKernels(t *testing.T) {
	_, snap := buildSmall(t)
	perm := snap.ReorderByDegree()
	if !perm.Valid() {
		t.Fatal("invalid degree permutation")
	}
	rg := snap.Relabel(0, perm)
	if rg.NumEdges() != snap.NumEdges() {
		t.Fatal("relabel changed arc count")
	}
	if rg.ComponentCount(0) != snap.ComponentCount(0) {
		t.Fatal("relabel changed component structure")
	}
	bperm := snap.ReorderByBFS(0, []VertexID{0})
	if !bperm.Valid() {
		t.Fatal("invalid BFS permutation")
	}
}

func TestDynamicConnectivityFacade(t *testing.T) {
	d := NewDynamicConnectivity(10)
	d.InsertEdge(0, 1, 1)
	d.InsertEdge(1, 2, 2)
	d.InsertEdge(3, 4, 3)
	if !d.Connected(0, 2) || d.Connected(0, 3) {
		t.Fatal("connectivity wrong")
	}
	if d.NumEdges() != 3 {
		t.Fatalf("m = %d", d.NumEdges())
	}
	// 10 - 5 grouped + 2 groups = 7 components.
	if d.ComponentCount() != 7 {
		t.Fatalf("components = %d", d.ComponentCount())
	}
	if !d.DeleteEdge(1, 2) || d.Connected(0, 2) {
		t.Fatal("delete/split wrong")
	}
	if d.DeleteEdge(7, 8) {
		t.Fatal("absent delete succeeded")
	}
}

func TestDynamicConnectivityTracksSnapshots(t *testing.T) {
	// The incremental index must agree with snapshot-based connectivity
	// after a batch of updates.
	p := PaperRMAT(9, 5<<9, 50, 33)
	edges, err := GenerateRMAT(0, p)
	if err != nil {
		t.Fatal(err)
	}
	n := p.NumVertices()
	d := NewDynamicConnectivity(n)
	g := New(n, WithExpectedEdges(2*len(edges)), Undirected())
	for _, e := range edges {
		d.InsertEdge(e.U, e.V, e.T)
		g.InsertEdge(e.U, e.V, e.T)
	}
	for _, e := range edges[:len(edges)/4] {
		d.DeleteEdge(e.U, e.V)
		g.DeleteEdge(e.U, e.V)
	}
	snap := g.Snapshot(0)
	conn := snap.Connectivity(0)
	srcs := snap.SampleSources(24, 8)
	for _, u := range srcs {
		for _, v := range srcs {
			if d.Connected(u, v) != conn.Connected(u, v) {
				t.Fatalf("incremental and snapshot connectivity disagree on (%d,%d)", u, v)
			}
		}
	}
}

func TestClosenessFacade(t *testing.T) {
	_, snap := buildSmall(t)
	srcs := snap.SampleSources(8, 5)
	scores := snap.Closeness(0, srcs)
	if len(scores) != len(srcs) {
		t.Fatal("length mismatch")
	}
	nonzero := false
	for _, s := range scores {
		if s.Classic < 0 || s.Harmonic < 0 {
			t.Fatal("negative closeness")
		}
		if s.Harmonic > 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("all closeness scores zero")
	}
}

func TestStressFacade(t *testing.T) {
	_, snap := buildSmall(t)
	srcs := snap.SampleSources(16, 6)
	stress := snap.Stress(0, BCOptions{Sources: srcs})
	bc := snap.Betweenness(0, BCOptions{Sources: srcs})
	if len(stress) != snap.NumVertices() {
		t.Fatal("length wrong")
	}
	// Stress dominates betweenness pointwise (counts vs fractions).
	for v := range stress {
		if stress[v]+1e-9 < bc[v] {
			t.Fatalf("stress[%d] = %v < bc %v", v, stress[v], bc[v])
		}
	}
}
