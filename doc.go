// Package snapdyn is a Go reproduction of the dynamic-graph portion of
// the SNAP (Small-world Network Analysis and Partitioning) framework, as
// described in Madduri & Bader, "Compact Graph Representations and
// Parallel Connectivity Algorithms for Massive Dynamic Network Analysis"
// (IPDPS 2009).
//
// The library provides:
//
//   - Compact dynamic graph representations for small-world networks
//     under parallel streams of edge insertions and deletions: resizable
//     adjacency arrays, adjacency treaps, and the hybrid array/treap
//     structure keyed by a degree threshold (the paper's contribution),
//     plus vertex/edge partitioning and batched (semi-sorted) update
//     application.
//   - One traversal substrate for every BFS-shaped kernel: a
//     visitor-hook engine (internal/traversal) that switches between
//     top-down edge-partitioned push and bottom-up pull by frontier edge
//     mass (alpha/beta heuristic), skips whole 64-vertex words of
//     finished vertices in the pull step through a visited shadow
//     bitmap, and exposes per-arc, per-level, and label-correcting
//     relaxation hooks that compile away to the plain BFS fast path when
//     unused. Serial steady-state traversals over a reused
//     Scratch/Result pair allocate nothing at all.
//   - Dynamic graph kernels, all riding that one engine: a
//     parent-pointer link-cut forest for connectivity queries (spanning
//     forests via the multi-source engine), parallel level-synchronous
//     (temporal) BFS, early-terminating st-connectivity, temporal
//     reachability (relaxation hooks), induced subgraph extraction by
//     time interval, parallel connected components with a parallel
//     census, and the centrality indices — (temporal) betweenness and
//     stress assemble the Brandes shortest-path DAG through the
//     engine's arc hooks, closeness needs only its level-count hook —
//     so the direction-optimizing strategy accelerates centrality
//     exactly as it does BFS (BCOptions.Strategy, BFSDirectionOpt).
//   - Weighted single-source shortest paths (the paper's hardest
//     future-work kernel): parallel delta-stepping over a
//     weight-materialized CSR view (internal/wcsr) that computes and
//     validates each arc weight once and pre-partitions every adjacency
//     into a light prefix and heavy suffix, so each relaxation phase
//     scans only its own arcs. Snapshot.SSSPWith with a warm
//     SSSPScratch reuses the view, the cyclic bucket ring, the dedup
//     bitmaps, and the per-worker outputs — steady-state repeated SSSP
//     allocates nothing and runs ~2.4x faster than the previous
//     map-deduped loop (and ~matches sequential Dijkstra per-edge at
//     one worker, scaling with workers from there). Dijkstra with a
//     typed binary heap (no interface boxing) remains the validation
//     baseline (Snapshot.ShortestPathsDijkstra).
//   - The facade: Snapshot.BFSWith/BFSOptions and a reusable Traverser
//     for traversals; BFSDirectionOpt requires an undirected snapshot
//     (directed snapshots demote to top-down) and is several times
//     faster than top-down on low-diameter small-world graphs. When
//     BFSOptions leaves Alpha/Beta unset, the engine derives the
//     direction-switching thresholds from the snapshot's degree skew
//     (heavier tails enter pull later and stay longer).
//   - An incremental snapshot pipeline for serving queries over a live
//     update stream: every Graph tracks its dirty vertices (one atomic
//     bit per mutated adjacency), and a SnapshotManager
//     (Graph.Manager) publishes epoch-versioned immutable snapshots
//     RCU-style — readers load the current snapshot with one atomic
//     pointer read and never block on ingest, old snapshots stay valid
//     until their last reader drops them, and Refresh rebuilds only
//     the dirty adjacencies by reusing the previous snapshot's clean
//     spans (csr.Refresh: prefix sum over degree deltas + bulk span
//     copies), falling back to a full rebuild past a ~15% dirty
//     fraction. At R-MAT scale 16 a refresh after dirtying 0.1% of
//     the vertices runs ~12x faster than the full rebuild it replaces
//     (BenchmarkSnapshotRefresh).
//   - A query-serving layer over that pipeline: the SnapshotManager's
//     background auto-refresher (StartAutoRefresh) republishes by
//     policy — when the dirty-vertex count or the snapshot age crosses
//     a threshold — serialized against gated ingest
//     (SnapshotManager.ApplyUpdates/InsertEdge/DeleteEdge) by a
//     read-write gate that readers never touch, with refresh-latency
//     and epoch-lag metrics (SnapshotManager.Metrics). The
//     internal/qserve executor pool runs BFS / SSSP / st-connectivity /
//     components / stats queries against the current snapshot with
//     per-query kernel scratch from a bounded free list (steady-state
//     queries allocate zero objects per request, asserted) and
//     queue-or-shed admission control, and cmd/snapserve exposes the
//     whole stack as an HTTP/JSON daemon with /ingest, /query/*,
//     /stats, and /healthz endpoints.
//   - A snapshot-identity result cache with singleflight coalescing
//     (internal/qcache, snapserve -cache-bytes): query results are
//     cached per published snapshot and N concurrent identical queries
//     execute one kernel run. The identity-invalidation contract: the
//     cache keys its generation by the published View pointer, never
//     by the epoch number — a no-op refresh bumps the epoch but
//     republishes the identical pointer, so entries survive exactly as
//     long as the snapshot they were computed against, and a real
//     refresh retires the whole generation with its snapshot
//     (RCU-by-GC; there is no invalidation walk to get wrong). Cache
//     hits bypass kernel scratch entirely (0 allocs/op steady state,
//     asserted) and still honor minEpoch: freshness gating runs before
//     the lookup, so a hit on a stale snapshot is still refused.
//   - A registry-based query surface (internal/qserve/registry.go):
//     every query kind is one registered Spec — wire name, parameter
//     decoding, cache-key derivation, kernel dispatch, reply encoding —
//     and the HTTP route table, the generic Query entry point on both
//     engines, and the cache keyspace are all derived from that
//     catalog, so adding a kind is one registration, not a stack of
//     parallel switch statements. Alongside BFS/SSSP/connectivity/
//     components, the catalog serves clustering coefficients and
//     triangle counts (internal/cluster, merge-intersection over
//     dedup-sorted adjacency, float mean folded in original-id order so
//     it is bitwise-identical across layouts and shard counts), k-hop
//     neighborhood size (depth-truncated BFS), and PageRank on the
//     traversal engine's Relax mode (push-residual; the fleet solves by
//     power iteration, so PageRank is the one documented cross-engine
//     tolerance-band exception to bit-identity). All ride the pooled
//     scratch and cache paths at 0 allocs/op steady state, asserted.
//     GET /v1/query/<kind> wraps replies in a typed envelope
//     {kind, epoch, cache, data} with structured error codes; the flat
//     /query/<kind> routes remain as pinned aliases. Between-refresh
//     connectivity (connected?live=1, after EnableLive / snapserve
//     -live) answers from a dynamic spanning forest the ingest path
//     updates synchronously — per-shard forests joined by label merge
//     on the fleet — proving connectivity without hop counts, never
//     cached, and asserted to agree exactly with the next published
//     snapshot's components under randomized churn including tree-edge
//     deletions. Sampled betweenness runs as an offline job
//     (POST /v1/jobs/betweenness, progress polled at /v1/jobs/{id});
//     jobs waive the zero-alloc guarantee and require a resident global
//     CSR (compressed layouts fail the job, fleets answer 501).
//   - A vertex-partitioned sharding layer behind the same facade
//     (NewSharded, internal/shard): vertex u is owned by shard u % P,
//     and each of the P shard workers runs its own Tracked store +
//     snapshot manager + auto-refresher, so ingest parallelizes across
//     P independent gates instead of serializing on one RWMutex. Every
//     shard's store spans the full vertex set but holds only its owned
//     vertices' out-arcs; the union of the per-shard CSRs is exactly
//     the global graph. Queries scatter-gather over one pinned
//     snapshot per shard: BFS and delta-stepping SSSP run
//     level-synchronously with a cross-shard frontier exchange per
//     level (results bit-identical to the single-snapshot kernels),
//     components merge per-shard labels, stats fan out and reduce.
//     The fleet plugs into the same qserve executor interface, and
//     cmd/snapserve serves it behind -shards N with an unchanged HTTP
//     surface. Weight-sorted adjacency in wcsr (arcs sorted by
//     (weight, neighbor) at Rebuild) makes a delta change a
//     binary-search re-split (Retarget, O(n log maxdeg)) instead of a
//     rebuild, fixing mixed-delta scratch thrash in qserve.
//   - Memory-scale snapshot formats as first-class pipeline citizens
//     (Graph.ManagerWithLayout): the manager can publish plain CSR,
//     degree-/BFS-/RCM-reordered CSR (internal/reorder), or
//     gap-compressed adjacency (internal/compress, zigzag/varint delta
//     blocks the traversal engine streams through a zero-allocation
//     cursor — traversal.RunStream, 0 allocs/op serial steady state).
//     The layout contract: queries accept and report original vertex
//     ids on every layout and return results identical to the plain
//     layout — reordered snapshots carry their permutation and inverse
//     and translate at the query boundary, compressed ones stream
//     their blocks through the same engine. Reordered layouts splice
//     incremental refresh deltas through the held permutation; once
//     cumulative churn since the permutation was computed passes ~30%
//     of the vertex set (or the vertex set grows), the ordering is
//     recomputed with a full permuted rebuild. Compressed layouts
//     byte-splice dirty vertices' blocks, byte-identical to a from-
//     scratch build. Kernels with no layout-native path materialize a
//     plain original-id CSR lazily, once per snapshot. The footprint
//     per format is observable (RefreshMetrics.SnapshotBytes/Format,
//     and the /stats endpoint's sizeBytes/format fields) and
//     measured by snapbench -fig memory (committed BENCH_memory.json:
//     compressed ~2.7x fewer bytes per arc than plain at scale 18).
//   - A durable group-commit ingest path (internal/durable =
//     internal/batcher + internal/wal), serving under snapserve
//     -wal-dir. The durability contract: a submission is acknowledged
//     only after its batch is CRC-framed, written, and fsynced to a
//     write-ahead log AND applied to the live store; the ack carries
//     the snapshot epoch guaranteed to contain the batch, and a query
//     can wait on that epoch (minEpoch) for read-your-writes. The
//     batcher coalesces concurrent submissions so one fsync covers
//     many batches (thousands of updates per fsync under load).
//     Recovery after a crash at any point — mid-record, mid-fsync,
//     mid-checkpoint — rebuilds exactly a prefix of the committed
//     sequence that includes every acknowledged batch: torn final
//     records are truncated, corrupt middle records refuse to load,
//     and epochs re-base above anything acknowledged pre-crash.
//     Periodic CSR checkpoints (graphio binary format, written to a
//     temp file and atomically renamed) bound replay and prune covered
//     segments; checkpointing is an optimization, never a correctness
//     requirement. Sharded deployments run one WAL per shard with
//     scattered group commits and a joined ack. All of it is proven by
//     fault-injected randomized kill-and-recover tests (short writes,
//     disk full, fsync failure, crash hooks pinned at every commit
//     stage) comparing recovered state arc-for-arc to a never-crashed
//     oracle.
//   - The R-MAT generator and update-stream tooling used by the paper's
//     evaluation, one benchmark driver per paper figure, a unified
//     kernel sweep (cmd/snapbench -fig kernel
//     -kernel=bfs|bc|closeness|sssp) whose -bfs engine choice applies
//     to every BFS-shaped kernel and whose -deltas flag sweeps the
//     delta-stepping bucket width, a mixed ingest/query pipeline
//     figure (-fig pipeline) measuring refresh latency vs dirty
//     fraction and sustained MUPS+MTEPS under concurrent readers, and
//     a serving figure (-fig service) measuring sustained QPS with
//     p50/p99 per-query latency through the executor pool under
//     policy-driven refresh.
//
// # Quick start
//
//	g := snapdyn.New(1<<20, snapdyn.WithExpectedEdges(10<<20))
//	g.InsertEdge(1, 2, 100)   // edge 1->2 at time 100
//	g.DeleteEdge(1, 2)
//	snap := g.Snapshot(0)     // CSR snapshot with all workers
//	conn := snap.Connectivity(0)
//	ok := conn.Connected(1, 2)
//
// Vertex ids are uint32 values in [0, NumVertices); time labels are
// application-defined uint32 values (Kempe-style time labels).
//
// Concurrency: Graph mutation methods are safe for concurrent use.
// Snapshots are immutable and safe for concurrent queries. A
// Connectivity index supports concurrent queries; its structural updates
// (Link/Cut) require external serialization against queries. A
// SnapshotManager's Current/Epoch/Staleness/Metrics may be called from
// any goroutine at any time; Refresh calls serialize among themselves
// and must not overlap graph mutations (apply a batch, then refresh —
// readers keep querying throughout). While the background
// auto-refresher runs (StartAutoRefresh), route mutations through the
// manager's gated ingest methods (ApplyUpdates, InsertEdge,
// DeleteEdge) — any number of them proceed concurrently, and the gate
// serializes them against background refreshes without ever blocking
// readers.
//
// A ShardedGraph carries the same contracts per shard: per-shard epochs
// are independently monotone (the facade's Epoch is their sum), gated
// ingest routes every update through its owning shard's gate, and a
// query pins one snapshot per shard for its whole lifetime — per-shard
// reads are mutually consistent, but two shards may expose different
// ingest prefixes, exactly as a single-store reader may hold a snapshot
// older than the newest batch.
package snapdyn
