// Package snapdyn is a Go reproduction of the dynamic-graph portion of
// the SNAP (Small-world Network Analysis and Partitioning) framework, as
// described in Madduri & Bader, "Compact Graph Representations and
// Parallel Connectivity Algorithms for Massive Dynamic Network Analysis"
// (IPDPS 2009).
//
// The library provides:
//
//   - Compact dynamic graph representations for small-world networks
//     under parallel streams of edge insertions and deletions: resizable
//     adjacency arrays, adjacency treaps, and the hybrid array/treap
//     structure keyed by a degree threshold (the paper's contribution),
//     plus vertex/edge partitioning and batched (semi-sorted) update
//     application.
//   - Dynamic graph kernels: a parent-pointer link-cut forest for
//     connectivity queries, parallel level-synchronous (temporal) BFS,
//     induced subgraph extraction by time interval, parallel connected
//     components, and (temporal) betweenness centrality.
//   - A direction-optimizing BFS engine (Snapshot.BFSWith, BFSOptions)
//     that switches between top-down edge-partitioned push and bottom-up
//     pull by frontier edge mass (alpha/beta heuristic), and a reusable
//     Traverser whose steady-state traversals allocate nothing beyond a
//     constant fan-out overhead. BFSDirectionOpt requires an undirected
//     snapshot and is several times faster than top-down on low-diameter
//     small-world graphs.
//   - The R-MAT generator and update-stream tooling used by the paper's
//     evaluation, and one benchmark driver per paper figure.
//
// # Quick start
//
//	g := snapdyn.New(1<<20, snapdyn.WithExpectedEdges(10<<20))
//	g.InsertEdge(1, 2, 100)   // edge 1->2 at time 100
//	g.DeleteEdge(1, 2)
//	snap := g.Snapshot(0)     // CSR snapshot with all workers
//	conn := snap.Connectivity(0)
//	ok := conn.Connected(1, 2)
//
// Vertex ids are uint32 values in [0, NumVertices); time labels are
// application-defined uint32 values (Kempe-style time labels).
//
// Concurrency: Graph mutation methods are safe for concurrent use.
// Snapshots are immutable and safe for concurrent queries. A
// Connectivity index supports concurrent queries; its structural updates
// (Link/Cut) require external serialization against queries.
package snapdyn
