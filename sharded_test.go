package snapdyn

import (
	"testing"
	"time"
)

// shardedFixture builds the same R-MAT update stream into a plain
// Graph and a ShardedGraph so tests can compare query results.
func shardedFixture(t *testing.T, shards int, undirected bool) (*Graph, *ShardedGraph) {
	t.Helper()
	const scale, edgeFactor = 9, 8
	n := 1 << scale
	edges, err := GenerateRMAT(2, PaperRMAT(scale, edgeFactor*n, 40, 99))
	if err != nil {
		t.Fatal(err)
	}
	ups := Inserts(edges)
	var opts []Option
	if undirected {
		opts = append(opts, Undirected())
	}
	ref := New(n, opts...)
	ref.ApplyUpdates(2, ups)
	sg := NewSharded(n, shards, opts...)
	sg.ApplyUpdates(2, ups)
	return ref, sg
}

func TestShardedFacadeEquivalence(t *testing.T) {
	for _, shards := range []int{1, 3, 4} {
		ref, sg := shardedFixture(t, shards, true)
		if sg.Shards() != shards {
			t.Fatalf("shards = %d, want %d", sg.Shards(), shards)
		}
		snap := ref.Snapshot(2)
		view := sg.Refresh(2)

		if got, want := view.NumEdges(), snap.NumEdges(); got != want {
			t.Fatalf("shards=%d: arcs %d != %d", shards, got, want)
		}

		res := snap.BFS(2, 0)
		level, reached, _ := view.BFS(0)
		gotReached := 0
		for u := range level {
			if level[u] != res.Level[u] {
				t.Fatalf("shards=%d: BFS level[%d] = %d, want %d", shards, u, level[u], res.Level[u])
			}
			if level[u] != NotVisited {
				gotReached++
			}
		}
		if reached != gotReached {
			t.Fatalf("shards=%d: reached = %d, counted %d", shards, reached, gotReached)
		}

		wantDist := snap.ShortestPaths(2, 0, 0)
		gotDist := view.ShortestPaths(0, 0)
		for u := range wantDist {
			if gotDist[u] != wantDist[u] {
				t.Fatalf("shards=%d: dist[%d] = %d, want %d", shards, u, gotDist[u], wantDist[u])
			}
		}

		wantComp := snap.Components(2)
		gotComp := view.Components()
		for u := range wantComp {
			if gotComp[u] != wantComp[u] {
				t.Fatalf("shards=%d: comp[%d] = %d, want %d", shards, u, gotComp[u], wantComp[u])
			}
		}
		if view.ComponentCount() != snap.ComponentCount(2) {
			t.Fatalf("shards=%d: component counts diverge", shards)
		}

		ok, hops := view.STConnected(0, uint32(sg.NumVertices()-1))
		wantOK, wantHops := snap.STConnected(2, 0, uint32(sg.NumVertices()-1))
		if ok != wantOK || hops != wantHops {
			t.Fatalf("shards=%d: st-connectivity (%v,%d) != (%v,%d)", shards, ok, hops, wantOK, wantHops)
		}
	}
}

func TestShardedGatedEdgeOps(t *testing.T) {
	sg := NewSharded(16, 4, Undirected())
	sg.InsertEdge(1, 2, 10)
	sg.InsertEdge(2, 3, 20)
	if sg.NumEdges() != 4 {
		t.Fatalf("arcs = %d, want 4", sg.NumEdges())
	}
	if sg.ShardOf(1) != 1%4 || sg.ShardOf(5) != 5%4 {
		t.Fatal("ownership rule is u mod P")
	}
	view := sg.Refresh(1)
	if ok, hops := view.STConnected(1, 3); !ok || hops != 2 {
		t.Fatalf("1-3 = (%v,%d), want (true,2)", ok, hops)
	}
	if !sg.DeleteEdge(1, 2) {
		t.Fatal("delete of live edge reported false")
	}
	if sg.DeleteEdge(1, 2) {
		t.Fatal("second delete reported true")
	}
	view = sg.Refresh(1)
	if ok, _ := view.STConnected(1, 3); ok {
		t.Fatal("1-3 still connected after delete")
	}
	if sg.NumEdges() != 2 {
		t.Fatalf("arcs = %d, want 2", sg.NumEdges())
	}
}

func TestShardedAutoRefresh(t *testing.T) {
	_, sg := shardedFixture(t, 4, true)
	start := sg.Epoch()
	if !sg.StartAutoRefresh(AutoRefreshPolicy{MaxDirty: 32, Poll: time.Millisecond}) {
		t.Fatal("auto-refresh did not start")
	}
	defer sg.StopAutoRefresh()
	if sg.StartAutoRefresh(AutoRefreshPolicy{}) {
		t.Fatal("second start must report false")
	}
	for r := 0; r < 20; r++ {
		batch := make([]Update, 0, 16)
		for i := 0; i < 16; i++ {
			u := VertexID((r*31 + i*7) % sg.NumVertices())
			v := VertexID((int(u) + 1 + i) % sg.NumVertices())
			batch = append(batch, Update{Edge: Edge{U: u, V: v, T: uint32(r + 1)}, Op: OpInsert})
		}
		sg.ApplyUpdates(1, batch)
	}
	deadline := time.After(30 * time.Second)
	for sg.Staleness() != 0 || sg.Epoch() == start {
		select {
		case <-deadline:
			t.Fatalf("fleet did not settle: epoch %d staleness %d", sg.Epoch(), sg.Staleness())
		case <-time.After(time.Millisecond):
		}
	}
	if m := sg.Metrics(); m.Refreshes == 0 {
		t.Fatalf("no refreshes recorded: %+v", m)
	}
	sg.StopAutoRefresh()
	view := sg.Refresh(2)
	if view.Stats().Arcs != view.NumEdges() {
		t.Fatal("stats arcs disagree with view arc count")
	}
}
