package snapdyn

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestSnapshotManagerBasics(t *testing.T) {
	g := New(64, WithExpectedEdges(512))
	g.InsertEdge(1, 2, 10)
	g.InsertEdge(2, 3, 20)

	m := g.Manager(2)
	if m.Epoch() != 1 {
		t.Fatalf("initial epoch = %d, want 1", m.Epoch())
	}
	if m.Staleness() != 0 {
		t.Fatalf("initial staleness = %d, want 0", m.Staleness())
	}
	s0 := m.Current()
	if s0.NumEdges() != 2 {
		t.Fatalf("initial snapshot has %d arcs, want 2", s0.NumEdges())
	}

	// No updates: Refresh republishes the same snapshot, epoch advances.
	if s := m.Refresh(2); s != s0 || m.Current() != s0 {
		t.Fatal("no-op Refresh must republish the previous snapshot")
	}
	if m.Epoch() != 2 {
		t.Fatalf("epoch after no-op refresh = %d, want 2", m.Epoch())
	}

	// Updates dirty their sources; Refresh folds them in, old snapshot
	// stays queryable.
	g.InsertEdge(1, 5, 30)
	g.DeleteEdgeAt(2, 3, 20)
	if m.Staleness() != 2 {
		t.Fatalf("staleness = %d, want 2", m.Staleness())
	}
	s1 := m.Refresh(2)
	if m.Staleness() != 0 {
		t.Fatalf("staleness after refresh = %d, want 0", m.Staleness())
	}
	if s1 == s0 {
		t.Fatal("refresh after updates must publish a new snapshot")
	}
	if got := s1.OutDegree(1); got != 2 {
		t.Fatalf("new snapshot degree(1) = %d, want 2", got)
	}
	if got := s1.OutDegree(2); got != 0 {
		t.Fatalf("new snapshot degree(2) = %d, want 0", got)
	}
	// RCU: the old snapshot still reflects its epoch.
	if got := s0.OutDegree(2); got != 1 {
		t.Fatalf("old snapshot degree(2) = %d, want 1 (immutable)", got)
	}
}

func TestSnapshotManagerMatchesFullSnapshot(t *testing.T) {
	const n = 1 << 10
	edges, err := GenerateRMAT(0, PaperRMAT(10, 8*n, 100, 3))
	if err != nil {
		t.Fatal(err)
	}
	extra, err := GenerateRMAT(0, PaperRMAT(10, 8*n, 100, 4))
	if err != nil {
		t.Fatal(err)
	}
	g := New(n, WithExpectedEdges(2*len(edges)), Undirected())
	g.InsertEdges(0, edges)
	m := g.Manager(0)

	ups, err := MixedStream(edges, extra, len(extra)/4, 0.75, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range StreamBatches(ups, 2048) {
		g.ApplyUpdates(0, batch)
		m.Refresh(0)
	}
	inc, full := m.Current(), g.Snapshot(0)
	if inc.NumEdges() != full.NumEdges() {
		t.Fatalf("incremental snapshot has %d arcs, full rebuild %d", inc.NumEdges(), full.NumEdges())
	}
	for u := VertexID(0); int(u) < n; u++ {
		ia, it := inc.Neighbors(u)
		fa, ft := full.Neighbors(u)
		if len(ia) != len(fa) {
			t.Fatalf("vertex %d: %d arcs incremental, %d full", u, len(ia), len(fa))
		}
		for i := range ia {
			if ia[i] != fa[i] || it[i] != ft[i] {
				t.Fatalf("vertex %d arc %d: (%d@%d) incremental, (%d@%d) full",
					u, i, ia[i], it[i], fa[i], ft[i])
			}
		}
	}
}

// TestSnapshotManagerConcurrentReaders hammers the manager with
// concurrent Current()+BFS readers while the ingest side applies
// batches and refreshes repeatedly. Run under -race in CI. Readers
// assert they never observe a torn snapshot (structural invariants and
// a full traversal over every snapshot they load) and that epochs are
// monotone.
func TestSnapshotManagerConcurrentReaders(t *testing.T) {
	const (
		n       = 1 << 9
		readers = 4
		rounds  = 30
	)
	edges, err := GenerateRMAT(0, PaperRMAT(9, 8*n, 50, 7))
	if err != nil {
		t.Fatal(err)
	}
	extra, err := GenerateRMAT(0, PaperRMAT(9, 8*n, 50, 8))
	if err != nil {
		t.Fatal(err)
	}
	g := New(n, WithExpectedEdges(2*len(edges)), Undirected())
	g.InsertEdges(0, edges)
	m := g.Manager(2)

	stop := make(chan struct{})
	var torn atomic.Int32
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed uint32) {
			defer wg.Done()
			tr := (*Traverser)(nil)
			last := (*Snapshot)(nil)
			src := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := m.Current()
				if s == nil {
					torn.Add(1)
					return
				}
				// Structural invariants of a well-formed snapshot.
				if s.NumVertices() != n || s.OutDegree(VertexID(n-1)) < 0 {
					torn.Add(1)
					return
				}
				if s != last {
					tr, last = s.Traverser(BFSOptions{Workers: 1}), s
				}
				res := tr.BFS(VertexID(src % n))
				if len(res.Level) != n {
					torn.Add(1)
					return
				}
				src = src*1664525 + 1013904223
			}
		}(uint32(r + 1))
	}

	// Epoch monotonicity observer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			e := m.Epoch()
			if e < last {
				torn.Add(1)
				return
			}
			last = e
		}
	}()

	ups, err := MixedStream(edges, extra, len(extra)/2, 0.75, 9)
	if err != nil {
		t.Fatal(err)
	}
	batches := StreamBatches(ups, len(ups)/rounds+1)
	startEpoch := m.Epoch()
	for _, batch := range batches {
		g.ApplyUpdates(2, batch)
		m.Refresh(2)
	}
	close(stop)
	wg.Wait()

	if torn.Load() != 0 {
		t.Fatalf("%d readers observed a torn snapshot or non-monotone epoch", torn.Load())
	}
	if got := m.Epoch(); got != startEpoch+uint64(len(batches)) {
		t.Fatalf("epoch = %d, want %d", got, startEpoch+uint64(len(batches)))
	}
	// The final snapshot equals a full rebuild.
	inc, full := m.Current(), g.Snapshot(0)
	if inc.NumEdges() != full.NumEdges() {
		t.Fatalf("final snapshot has %d arcs, full rebuild %d", inc.NumEdges(), full.NumEdges())
	}
}
