package snapdyn

// One testing.B benchmark per figure of the paper's evaluation, backed by
// the drivers in internal/bench, plus ablation benches for the design
// choices DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Each figure bench reports MUPS (millions of updates per second, the
// paper's metric) for the headline series as a custom metric. The bench
// scale is laptop-friendly (n = 2^14, m = 10n unless noted); use
// cmd/snapbench to run larger instances and full worker sweeps.

import (
	"fmt"
	"testing"

	ibench "snapdyn/internal/bench"
	"snapdyn/internal/dyngraph"
	"snapdyn/internal/stream"
	"snapdyn/internal/timing"
)

func benchConfig() ibench.Config {
	return ibench.Config{Scale: 14, EdgeFactor: 10, TimeMax: 100, Seed: 1, Workers: []int{1, 2, 4}}
}

// reportBest attaches the best MUPS per series as custom metrics.
func reportBest(b *testing.B, t *timing.Table) {
	b.Helper()
	for label, m := range t.BestMUPS() {
		b.ReportMetric(m.MUPS(), label+"_MUPS")
	}
}

func BenchmarkFig1InsertScaling(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		t := ibench.Fig1InsertScaling(cfg, []int{10, 12, 14})
		if i == b.N-1 {
			reportBest(b, t)
		}
	}
}

func BenchmarkFig2ResizeOverhead(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		t := ibench.Fig2ResizeOverhead(cfg)
		if i == b.N-1 {
			reportBest(b, t)
		}
	}
}

func BenchmarkFig3Partitioning(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		t := ibench.Fig3Partitioning(cfg)
		if i == b.N-1 {
			reportBest(b, t)
		}
	}
}

func BenchmarkFig4Insertions(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		t := ibench.Fig4Insertions(cfg)
		if i == b.N-1 {
			reportBest(b, t)
		}
	}
}

func BenchmarkFig5Deletions(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		t := ibench.Fig5Deletions(cfg, 0.075)
		if i == b.N-1 {
			reportBest(b, t)
		}
	}
}

func BenchmarkFig6Mixed(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		t := ibench.Fig6Mixed(cfg)
		if i == b.N-1 {
			reportBest(b, t)
		}
	}
}

func BenchmarkFig7LCTBuild(b *testing.B) {
	cfg := benchConfig()
	cfg.EdgeFactor = 8 // the paper's 10M/84M instance has m ≈ 8.4n
	for i := 0; i < b.N; i++ {
		t := ibench.Fig7LCTBuild(cfg)
		if i == b.N-1 {
			reportBest(b, t)
		}
	}
}

func BenchmarkFig8Queries(b *testing.B) {
	cfg := benchConfig()
	cfg.EdgeFactor = 8
	for i := 0; i < b.N; i++ {
		t := ibench.Fig8Queries(cfg, 200_000)
		if i == b.N-1 {
			reportBest(b, t)
		}
	}
}

func BenchmarkFig9Subgraph(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		t := ibench.Fig9Subgraph(cfg)
		if i == b.N-1 {
			reportBest(b, t)
		}
	}
}

func BenchmarkFig10BFS(b *testing.B) {
	cfg := benchConfig()
	cfg.EdgeFactor = 8
	for i := 0; i < b.N; i++ {
		t := ibench.Fig10BFS(cfg)
		if i == b.N-1 {
			reportBest(b, t)
		}
	}
}

func BenchmarkFig11TemporalBC(b *testing.B) {
	cfg := benchConfig()
	cfg.Scale = 12 // BC is O(sources * m): keep the default run quick
	for i := 0; i < b.N; i++ {
		t := ibench.Fig11TemporalBC(cfg, 64)
		if i == b.N-1 {
			reportBest(b, t)
		}
	}
}

func BenchmarkFigMemory(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		t := ibench.FigMemory(cfg, nil)
		if i == b.N-1 {
			reportBest(b, t)
		}
	}
}

// --- Traversal engines ---------------------------------------------------

// benchmarkBFSEngine measures steady-state BFS over an RMAT scale-16
// snapshot through the reusable Traverser, so allocs/op reflects the
// zero-allocation frontier infrastructure rather than arena warm-up.
func benchmarkBFSEngine(b *testing.B, strategy BFSStrategy) {
	const scale = 16
	p := PaperRMAT(scale, 10<<scale, 100, 42)
	edges, err := GenerateRMAT(0, p)
	if err != nil {
		b.Fatal(err)
	}
	g := New(p.NumVertices(), WithExpectedEdges(2*len(edges)), Undirected())
	g.InsertEdges(0, edges)
	snap := g.Snapshot(0)
	src := snap.SampleSources(1, 7)[0]
	tr := snap.Traverser(BFSOptions{Strategy: strategy})
	want := tr.BFS(src).Reached
	b.ReportAllocs()
	b.ResetTimer()
	var res *BFSResult
	for i := 0; i < b.N; i++ {
		res = tr.BFS(src)
	}
	b.StopTimer()
	if res.Reached != want {
		b.Fatalf("reached %d, want %d", res.Reached, want)
	}
	b.ReportMetric(float64(snap.NumEdges())*float64(b.N)/b.Elapsed().Seconds()/1e6, "MTEPS")
}

// BenchmarkBFSTopDown is the classic push-only baseline.
func BenchmarkBFSTopDown(b *testing.B) { benchmarkBFSEngine(b, BFSTopDown) }

// BenchmarkBFSDirectionOpt is the direction-optimizing push/pull engine;
// compare ns/op, allocs/op, and MTEPS against BenchmarkBFSTopDown.
func BenchmarkBFSDirectionOpt(b *testing.B) { benchmarkBFSEngine(b, BFSDirectionOpt) }

// BenchmarkBetweenness measures sampled static betweenness on an R-MAT
// scale-14 snapshot through the unified visitor engine. The topdown
// series reproduces the hand-rolled serial Brandes loop this engine
// replaced (same edge visits, same DAG construction); the dirop series
// adds the bottom-up pull step per source — compare the two to see the
// engine's saturated-level savings compound across sources.
func BenchmarkBetweenness(b *testing.B) {
	const scale = 14
	p := PaperRMAT(scale, 10<<scale, 100, 42)
	edges, err := GenerateRMAT(0, p)
	if err != nil {
		b.Fatal(err)
	}
	g := New(p.NumVertices(), WithExpectedEdges(2*len(edges)), Undirected())
	g.InsertEdges(0, edges)
	snap := g.Snapshot(0)
	sources := snap.SampleSources(32, 7)
	for _, eng := range []struct {
		name     string
		strategy BFSStrategy
	}{{"topdown", BFSTopDown}, {"dirop", BFSDirectionOpt}} {
		b.Run(eng.name, func(b *testing.B) {
			b.ReportAllocs()
			var bc []float64
			for i := 0; i < b.N; i++ {
				bc = snap.Betweenness(0, BCOptions{Sources: sources, Strategy: eng.strategy})
			}
			_ = bc
			teps := float64(snap.NumEdges()) * float64(len(sources)) * float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(teps/1e6, "MTEPS")
		})
	}
}

// BenchmarkCloseness measures sampled closeness through the same engine
// (level-count hooks only). The facade picks the engine itself —
// direction-optimizing on this undirected snapshot — so there is one
// series; use `snapbench -fig kernel -kernel closeness -bfs topdown`
// for the push-only baseline.
func BenchmarkCloseness(b *testing.B) {
	const scale = 14
	p := PaperRMAT(scale, 10<<scale, 100, 42)
	edges, err := GenerateRMAT(0, p)
	if err != nil {
		b.Fatal(err)
	}
	g := New(p.NumVertices(), WithExpectedEdges(2*len(edges)), Undirected())
	g.InsertEdges(0, edges)
	snap := g.Snapshot(0)
	sources := snap.SampleSources(64, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		snap.Closeness(0, sources)
	}
	teps := float64(snap.NumEdges()) * float64(len(sources)) * float64(b.N) / b.Elapsed().Seconds()
	b.ReportMetric(teps/1e6, "MTEPS")
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationDegreeThresh sweeps the hybrid representation's
// degree-thresh over a mixed workload, the design parameter the paper
// tunes to 32.
func BenchmarkAblationDegreeThresh(b *testing.B) {
	cfg := benchConfig()
	edges := mustEdges(b, cfg)
	extraCfg := cfg
	extraCfg.Seed += 99
	extra := mustEdges(b, extraCfg)
	ups, err := stream.Mixed(edges, extra, len(edges)/5, 0.5, 7)
	if err != nil {
		b.Fatal(err)
	}
	for _, thresh := range []int{8, 16, 32, 64, 128} {
		b.Run(benchName("thresh", thresh), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := dyngraph.NewHybrid(1<<cfg.Scale, len(edges), thresh, 1)
				dyngraph.InsertAll(s, 0, edges)
				s.ApplyBatch(0, ups)
			}
			b.ReportMetric(float64(len(ups)), "updates")
		})
	}
}

// BenchmarkAblationInitialSize sweeps Dyn-arr's initial adjacency size
// (the paper's k·m/n heuristic vs fixed sizes) over pure construction.
func BenchmarkAblationInitialSize(b *testing.B) {
	cfg := benchConfig()
	edges := mustEdges(b, cfg)
	ups := stream.Inserts(edges)
	for _, init := range []int{1, 4, 16, 64} {
		b.Run(benchName("init", init), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := dyngraph.NewDynArrInitial(1<<cfg.Scale, init, len(edges))
				s.ApplyBatch(0, ups)
			}
		})
	}
	b.Run("init=2m_over_n", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := dyngraph.NewDynArr(1<<cfg.Scale, len(edges))
			s.ApplyBatch(0, ups)
		}
	})
}

// BenchmarkAblationBatchVsStream compares per-update streaming against
// semi-sorted batched application on the same store.
func BenchmarkAblationBatchVsStream(b *testing.B) {
	cfg := benchConfig()
	edges := mustEdges(b, cfg)
	ups := stream.Inserts(edges)
	b.Run("streamed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := dyngraph.NewDynArr(1<<cfg.Scale, len(edges))
			s.ApplyBatch(0, ups)
		}
	})
	b.Run("batched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := dyngraph.NewBatched(dyngraph.NewDynArr(1<<cfg.Scale, len(edges)))
			s.ApplyBatch(0, ups)
		}
	})
}

// BenchmarkAblationLockFreeInserts compares the spinlock-protected
// fixed-capacity array (Dyn-arr-nr) against the true lock-free variant
// (atomic slot claim + atomic publish), quantifying the paper's
// "lock-free, non-blocking insertions" claim under contention.
func BenchmarkAblationLockFreeInserts(b *testing.B) {
	cfg := benchConfig()
	edges := mustEdges(b, cfg)
	ups := stream.Inserts(edges)
	degrees := make([]int, 1<<cfg.Scale)
	for _, e := range edges {
		degrees[e.U]++
	}
	b.Run("spinlock", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := dyngraph.NewDynArrNoResize(degrees)
			s.ApplyBatch(0, ups)
		}
	})
	b.Run("lockfree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := dyngraph.NewLockFreeArr(degrees)
			s.ApplyBatch(0, ups)
		}
	})
}

// ssspBenchSnapshot builds the weighted SSSP benchmark instance: R-MAT
// scale 16, m = 10n, time labels in [1, 100] doubling as arc weights.
func ssspBenchSnapshot(b *testing.B) (*Snapshot, VertexID) {
	b.Helper()
	const scale = 16
	p := PaperRMAT(scale, 10<<scale, 100, 6)
	edges, err := GenerateRMAT(0, p)
	if err != nil {
		b.Fatal(err)
	}
	g := New(p.NumVertices(), WithExpectedEdges(2*len(edges)), Undirected())
	g.InsertEdges(0, edges)
	snap := g.Snapshot(0)
	return snap, snap.SampleSources(1, 1)[0]
}

// BenchmarkSSSPDeltaStepping measures weighted shortest paths (the
// paper's future-work kernel) through the scratch-reusing
// pre-partitioned delta-stepping kernel: steady state over a warm
// SSSPScratch, so allocs/op reflects the zero-allocation relaxation
// loop rather than the one-time weighted-view build. Compare MTEPS
// against BenchmarkSSSPDijkstra.
func BenchmarkSSSPDeltaStepping(b *testing.B) {
	snap, src := ssspBenchSnapshot(b)
	opt := SSSPOptions{Scratch: NewSSSPScratch()}
	snap.SSSPWith(src, opt) // warm the weighted view and kernel buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap.SSSPWith(src, opt)
	}
	b.ReportMetric(float64(snap.NumEdges())*float64(b.N)/b.Elapsed().Seconds()/1e6, "MTEPS")
}

// BenchmarkSSSPDijkstra is the sequential typed-heap baseline over the
// same instance.
func BenchmarkSSSPDijkstra(b *testing.B) {
	snap, src := ssspBenchSnapshot(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap.ShortestPathsDijkstra(src)
	}
	b.ReportMetric(float64(snap.NumEdges())*float64(b.N)/b.Elapsed().Seconds()/1e6, "MTEPS")
}

// BenchmarkStoreInsertSingle measures single-edge insert latency per
// representation.
// BenchmarkSnapshotRefresh measures the incremental snapshot pipeline's
// materialization cost against the full rebuild it replaces, at the
// acceptance scale (R-MAT 16, m=10n): SnapshotManager.Refresh after
// batches dirtying ~0.1%, 1%, and 10% of the vertices, plus the
// full-rebuild baseline. Each iteration applies a batch (untimed) and
// times only the refresh.
func BenchmarkSnapshotRefresh(b *testing.B) {
	const scale = 16
	n := 1 << scale
	edges, err := GenerateRMAT(0, PaperRMAT(scale, 10*n, 100, 1))
	if err != nil {
		b.Fatal(err)
	}
	build := func(b *testing.B) *Graph {
		b.Helper()
		g := New(n, WithExpectedEdges(2*len(edges)))
		g.InsertEdges(0, edges)
		return g
	}
	dirtyBatch := func(k, round int) []Update {
		batch := make([]Update, k)
		stride := n / k
		if stride < 1 {
			stride = 1
		}
		for i := 0; i < k; i++ {
			u := VertexID((i * stride) % n)
			e := Edge{U: u, V: u ^ 1, T: uint32(round + 1)}
			op := OpInsert
			if round%2 == 1 {
				op = OpDelete // remove the previous round's edge: size stays stable
			}
			batch[i] = Update{Edge: e, Op: op}
		}
		return batch
	}
	for _, frac := range []float64{0.001, 0.01, 0.10} {
		b.Run(fmt.Sprintf("dirty=%g", frac), func(b *testing.B) {
			g := build(b)
			m := g.Manager(0)
			k := max(1, int(frac*float64(n)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				g.ApplyUpdates(0, dirtyBatch(k, i))
				b.StartTimer()
				m.Refresh(0)
			}
			b.ReportMetric(float64(m.Current().NumEdges())/1e6, "Marcs")
		})
	}
	b.Run("full-rebuild", func(b *testing.B) {
		g := build(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			g.ApplyUpdates(0, dirtyBatch(max(1, n/1000), i))
			b.StartTimer()
			g.Snapshot(0)
		}
	})
}

func BenchmarkStoreInsertSingle(b *testing.B) {
	const n = 1 << 14
	mk := map[string]func() dyngraph.Store{
		"dyn-arr": func() dyngraph.Store { return dyngraph.NewDynArr(n, n*10) },
		"treaps":  func() dyngraph.Store { return dyngraph.NewTreapStore(n, 1) },
		"hybrid":  func() dyngraph.Store { return dyngraph.NewHybrid(n, n*10, 0, 1) },
	}
	for name, f := range mk {
		b.Run(name, func(b *testing.B) {
			s := f()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Insert(uint32(i)&(n-1), uint32(i*7)&(n-1), uint32(i))
			}
		})
	}
}

func mustEdges(b *testing.B, cfg ibench.Config) []Edge {
	b.Helper()
	p := PaperRMAT(cfg.Scale, cfg.EdgeFactor<<cfg.Scale, cfg.TimeMax, cfg.Seed)
	edges, err := GenerateRMAT(0, p)
	if err != nil {
		b.Fatal(err)
	}
	return edges
}

func benchName(k string, v int) string {
	const digits = "0123456789"
	if v == 0 {
		return k + "=0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = digits[v%10]
		v /= 10
	}
	return k + "=" + string(buf[i:])
}
