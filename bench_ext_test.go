package snapdyn

// Ablation benchmarks for the future-work extensions: compressed
// adjacency (memory vs decode time), vertex reordering (cache locality),
// and incremental connectivity maintenance vs snapshot rebuilds.

import (
	"testing"

	"snapdyn/internal/xrand"
)

func buildBenchSnapshot(b *testing.B, scale int) *Snapshot {
	b.Helper()
	p := PaperRMAT(scale, 8<<scale, 100, 3)
	edges, err := GenerateRMAT(0, p)
	if err != nil {
		b.Fatal(err)
	}
	g := New(p.NumVertices(), WithExpectedEdges(2*len(edges)), Undirected())
	g.InsertEdges(0, edges)
	return g.Snapshot(0)
}

// BenchmarkAblationCompressedBFS compares traversal over the CSR
// snapshot against the gap-compressed representation, reporting the
// compression ratio.
func BenchmarkAblationCompressedBFS(b *testing.B) {
	snap := buildBenchSnapshot(b, 14)
	src := snap.SampleSources(1, 5)[0]
	b.Run("csr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			snap.BFS(0, src)
		}
	})
	b.Run("compressed", func(b *testing.B) {
		cs := snap.Compress(0)
		b.ReportMetric(cs.CompressionRatio(), "compression_x")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cs.BFS(0, src)
		}
	})
}

// BenchmarkAblationReorderBFS measures BFS over the original labeling
// vs degree-ordered and BFS-ordered relabelings.
func BenchmarkAblationReorderBFS(b *testing.B) {
	snap := buildBenchSnapshot(b, 14)
	src := snap.SampleSources(1, 7)[0]
	b.Run("original", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			snap.BFS(0, src)
		}
	})
	b.Run("degree-ordered", func(b *testing.B) {
		perm := snap.ReorderByDegree()
		rg := snap.Relabel(0, perm)
		rsrc := perm[src]
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rg.BFS(0, rsrc)
		}
	})
	b.Run("bfs-ordered", func(b *testing.B) {
		perm := snap.ReorderByBFS(0, []VertexID{src})
		rg := snap.Relabel(0, perm)
		rsrc := perm[src]
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rg.BFS(0, rsrc)
		}
	})
}

// BenchmarkAblationIncrementalVsRebuild compares answering connectivity
// after each small update batch via (a) the incremental dynamic-forest
// index and (b) snapshot + link-cut rebuild — the "process queries
// faster than recomputing from scratch" motivation of dynamic graph
// algorithms.
func BenchmarkAblationIncrementalVsRebuild(b *testing.B) {
	const scale = 12
	p := PaperRMAT(scale, 8<<scale, 100, 9)
	edges, err := GenerateRMAT(0, p)
	if err != nil {
		b.Fatal(err)
	}
	n := p.NumVertices()
	const batchSize = 256
	r := xrand.New(1)
	mkBatch := func() []Edge {
		batch := make([]Edge, batchSize)
		for i := range batch {
			batch[i] = Edge{U: r.Uint32n(uint32(n)), V: r.Uint32n(uint32(n)), T: 1}
		}
		return batch
	}
	b.Run("incremental", func(b *testing.B) {
		d := NewDynamicConnectivity(n)
		for _, e := range edges {
			d.InsertEdge(e.U, e.V, e.T)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, e := range mkBatch() {
				d.InsertEdge(e.U, e.V, e.T)
			}
			d.Connected(0, uint32(i)%uint32(n))
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		g := New(n, WithExpectedEdges(4*len(edges)), Undirected())
		g.InsertEdges(0, edges)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, e := range mkBatch() {
				g.InsertEdge(e.U, e.V, e.T)
			}
			snap := g.Snapshot(0)
			conn := snap.Connectivity(0)
			conn.Connected(0, uint32(i)%uint32(n))
		}
	})
}

// BenchmarkLCTQueryLatency measures single connectivity-query latency on
// the link-cut forest (the per-query cost behind Figure 8's throughput).
func BenchmarkLCTQueryLatency(b *testing.B) {
	snap := buildBenchSnapshot(b, 14)
	conn := snap.Connectivity(0)
	n := uint32(snap.NumVertices())
	r := xrand.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn.Connected(r.Uint32n(n), r.Uint32n(n))
	}
}

// BenchmarkSnapshotBuild measures CSR snapshot construction from the
// hybrid store.
func BenchmarkSnapshotBuild(b *testing.B) {
	p := PaperRMAT(14, 8<<14, 100, 4)
	edges, err := GenerateRMAT(0, p)
	if err != nil {
		b.Fatal(err)
	}
	g := New(p.NumVertices(), WithExpectedEdges(2*len(edges)), Undirected())
	g.InsertEdges(0, edges)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Snapshot(0)
	}
}
