package csr

import (
	"sort"

	"snapdyn/internal/edge"
	"snapdyn/internal/par"
	"snapdyn/internal/psort"
)

// RefreshMaxDirtyFrac is the dirty fraction above which Refresh falls
// back to a full FromStore rebuild. Past roughly this point the delta
// path's advantage — replacing per-arc store enumeration with bulk
// copies of clean spans — no longer pays for its extra offset pass; the
// crossover was benchmarked on R-MAT instances (see
// BenchmarkSnapshotRefresh), where even 10% dirty still favors the
// delta path but with shrinking margin.
const RefreshMaxDirtyFrac = 0.15

// Refresh materializes a new CSR snapshot of s, reusing the untouched
// spans of the previous snapshot base: a parallel prefix sum over
// per-vertex degree deltas lays out the new arrays, maximal clean runs
// are copied with bulk copy calls, and only the vertices listed in
// dirty (sorted ascending — a Tracked store's Flush output) are
// re-enumerated through the store. The cost is O(n) for the offset
// pass, O(m) of memmove for clean arcs, and O(arcs(dirty)) of store
// enumeration — for small dirty sets an order of magnitude cheaper than
// FromStore's O(m) locked per-arc enumeration.
//
// Refresh falls back to FromStore when base is nil or has a different
// vertex count, or when the dirty fraction exceeds RefreshMaxDirtyFrac.
// An empty dirty set returns base itself (snapshots are immutable, so
// sharing is safe).
//
// Like FromStore, Refresh must not run concurrently with mutations of
// s; base and the returned graph are never written.
func Refresh(workers int, base *Graph, s storeView, dirty []uint32) *Graph {
	n := s.NumVertices()
	if base == nil || base.N != n || float64(len(dirty)) > RefreshMaxDirtyFrac*float64(n) {
		return FromStore(workers, s)
	}
	if len(dirty) == 0 {
		return base
	}
	return refreshDelta(workers, base, s, dirty)
}

// refreshDelta is the incremental path, split out so tests can force it
// regardless of the dirty fraction.
func refreshDelta(workers int, base *Graph, s storeView, dirty []uint32) *Graph {
	n := base.N
	counts := make([]int64, n+1)
	par.ForBlock(workers, n, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			counts[u] = base.Offsets[u+1] - base.Offsets[u]
		}
	})
	par.ForDynamic(workers, len(dirty), 128, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			counts[dirty[i]] = int64(s.Degree(edge.ID(dirty[i])))
		}
	})
	total := psort.ExclusiveScan(workers, counts)
	g := &Graph{
		N:       n,
		Offsets: counts,
		Adj:     make([]uint32, total),
		TS:      make([]uint32, total),
	}
	// Scatter pass over vertex chunks: within a chunk, maximal clean
	// runs between dirty vertices map to contiguous spans of both the
	// old and the new arrays and move with one copy each; dirty
	// vertices re-enumerate their adjacency through the store.
	par.ForDynamic(workers, n, 512, func(lo, hi int) {
		di := sort.Search(len(dirty), func(i int) bool { return int(dirty[i]) >= lo })
		for u := lo; u < hi; {
			d := hi
			if di < len(dirty) && int(dirty[di]) < hi {
				d = int(dirty[di])
			}
			if u < d {
				srcLo, srcHi := base.Offsets[u], base.Offsets[d]
				dstLo := g.Offsets[u]
				copy(g.Adj[dstLo:dstLo+srcHi-srcLo], base.Adj[srcLo:srcHi])
				copy(g.TS[dstLo:dstLo+srcHi-srcLo], base.TS[srcLo:srcHi])
			}
			if d == hi {
				break
			}
			p, end := g.Offsets[d], g.Offsets[d+1]
			s.Neighbors(edge.ID(d), func(v edge.ID, t uint32) bool {
				if p == end {
					// Degree grew between the offset pass and this
					// enumeration: the contract (no concurrent
					// mutation) was violated. Clamp rather than
					// corrupt the neighboring vertex's span.
					return false
				}
				g.Adj[p] = v
				g.TS[p] = t
				p++
				return true
			})
			di++
			u = d + 1
		}
	})
	return g
}
