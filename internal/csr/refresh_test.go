package csr

import (
	"fmt"
	"testing"

	"snapdyn/internal/dyngraph"
	"snapdyn/internal/edge"
	"snapdyn/internal/xrand"
)

// refreshStores lists every Store representation the facade can build,
// each wrapped in the dirty tracker the snapshot pipeline uses.
func refreshStores(n int) map[string]*dyngraph.Tracked {
	m := 8 * n
	return map[string]*dyngraph.Tracked{
		"dyn-arr":        dyngraph.NewTracked(dyngraph.NewDynArr(n, m)),
		"treaps":         dyngraph.NewTracked(dyngraph.NewTreapStore(n, 11)),
		"hybrid":         dyngraph.NewTracked(dyngraph.NewHybrid(n, m, 8, 12)),
		"vpart":          dyngraph.NewTracked(dyngraph.NewVpart(n, m)),
		"epart":          dyngraph.NewTracked(dyngraph.NewEpart(n, m, 0)),
		"batched-hybrid": dyngraph.NewTracked(dyngraph.NewBatched(dyngraph.NewHybrid(n, m, 8, 13))),
	}
}

func graphsEqual(t *testing.T, tag string, got, want *Graph) {
	t.Helper()
	if got.N != want.N {
		t.Fatalf("%s: N = %d, want %d", tag, got.N, want.N)
	}
	for u := 0; u <= got.N; u++ {
		if got.Offsets[u] != want.Offsets[u] {
			t.Fatalf("%s: Offsets[%d] = %d, want %d", tag, u, got.Offsets[u], want.Offsets[u])
		}
	}
	if len(got.Adj) != len(want.Adj) {
		t.Fatalf("%s: %d arcs, want %d", tag, len(got.Adj), len(want.Adj))
	}
	for i := range got.Adj {
		if got.Adj[i] != want.Adj[i] || got.TS[i] != want.TS[i] {
			t.Fatalf("%s: arc %d = (%d@%d), want (%d@%d)",
				tag, i, got.Adj[i], got.TS[i], want.Adj[i], want.TS[i])
		}
	}
}

// randomBatch builds a mixed batch: inserts of fresh random edges plus
// deletions of edges known to be live (and a few misses).
func randomBatch(r *xrand.State, n, size int, live *[]edge.Edge, delFrac float64) []edge.Update {
	batch := make([]edge.Update, 0, size)
	for i := 0; i < size; i++ {
		if r.Float64() < delFrac && len(*live) > 0 {
			k := r.Intn(len(*live))
			e := (*live)[k]
			(*live)[k] = (*live)[len(*live)-1]
			*live = (*live)[:len(*live)-1]
			batch = append(batch, edge.Update{Edge: e, Op: edge.Delete})
			continue
		}
		e := edge.Edge{U: r.Uint32n(uint32(n)), V: r.Uint32n(uint32(n)), T: 1 + r.Uint32n(100)}
		*live = append(*live, e)
		batch = append(batch, edge.Update{Edge: e, Op: edge.Insert})
	}
	// A couple of deletions that miss (absent edges): they must not
	// perturb the snapshot.
	batch = append(batch, edge.Update{Edge: edge.Edge{U: 0, V: uint32(n - 1), T: 999}, Op: edge.Delete})
	return batch
}

// TestRefreshEquivalence asserts that after arbitrary insert/delete/
// mixed batches, Refresh over the flushed dirty set is arc-for-arc
// (adjacency and time label) identical to a fresh FromStore, for every
// store representation, chaining incrementally across rounds.
func TestRefreshEquivalence(t *testing.T) {
	const n, rounds, batchSize = 512, 6, 300
	for _, workers := range []int{1, 4} {
		for name, s := range refreshStores(n) {
			t.Run(fmt.Sprintf("%s/w%d", name, workers), func(t *testing.T) {
				r := xrand.New(uint64(workers)*1000 + uint64(len(name)))
				var live []edge.Edge
				// Bootstrap insertions, then the first materialization.
				s.ApplyBatch(workers, randomBatch(r, n, 4*batchSize, &live, 0))
				s.Flush(nil)
				base := FromStore(workers, s)
				for round := 0; round < rounds; round++ {
					delFrac := 0.3
					if round == rounds-1 {
						delFrac = 0.95 // tombstone-heavy: delete almost everything
					}
					s.ApplyBatch(workers, randomBatch(r, n, batchSize, &live, delFrac))
					dirty := s.Flush(nil)
					got := refreshDelta(workers, base, s, dirty)
					want := FromStore(workers, s)
					graphsEqual(t, fmt.Sprintf("%s round %d (%d dirty)", name, round, len(dirty)), got, want)
					base = got
				}
			})
		}
	}
}

// TestRefreshAllDirty covers the degenerate ends: every vertex dirty
// (the exported Refresh falls back to FromStore past the threshold, and
// the delta path must still be exact when forced), and no vertex dirty
// (base is returned unchanged).
func TestRefreshAllDirty(t *testing.T) {
	const n = 256
	s := dyngraph.NewTracked(dyngraph.NewHybrid(n, 8*n, 8, 5))
	r := xrand.New(77)
	var live []edge.Edge
	s.ApplyBatch(2, randomBatch(r, n, 2048, &live, 0))
	s.Flush(nil)
	base := FromStore(2, s)

	// Touch every vertex.
	batch := make([]edge.Update, n)
	for u := 0; u < n; u++ {
		e := edge.Edge{U: uint32(u), V: uint32((u + 1) % n), T: 7}
		batch[u] = edge.Update{Edge: e, Op: edge.Insert}
	}
	s.ApplyBatch(2, batch)
	dirty := s.Flush(nil)
	if len(dirty) != n {
		t.Fatalf("dirty = %d vertices, want %d", len(dirty), n)
	}
	want := FromStore(2, s)
	graphsEqual(t, "all-dirty forced delta", refreshDelta(2, base, s, dirty), want)
	graphsEqual(t, "all-dirty fallback", Refresh(2, base, s, dirty), want)

	// Empty dirty set: the previous snapshot is shared, not copied.
	next := Refresh(2, want, s, nil)
	if next != want {
		t.Fatal("Refresh with empty dirty set must return base unchanged")
	}

	// Nil base: full rebuild.
	graphsEqual(t, "nil base", Refresh(2, nil, s, dirty), want)
}

// TestRefreshThreshold pins the fallback boundary.
func TestRefreshThreshold(t *testing.T) {
	const n = 1000
	s := dyngraph.NewTracked(dyngraph.NewDynArr(n, 4*n))
	for u := 0; u < n; u++ {
		s.Insert(uint32(u), uint32((u+7)%n), uint32(u+1))
	}
	s.Flush(nil)
	base := FromStore(1, s)

	over := int(RefreshMaxDirtyFrac*float64(n)) + 1
	batch := make([]edge.Update, over)
	for i := 0; i < over; i++ {
		batch[i] = edge.Update{Edge: edge.Edge{U: uint32(i), V: uint32((i + 3) % n), T: 42}, Op: edge.Insert}
	}
	s.ApplyBatch(1, batch)
	dirty := s.Flush(nil)
	got := Refresh(1, base, s, dirty)
	want := FromStore(1, s)
	graphsEqual(t, "over-threshold", got, want)
}
