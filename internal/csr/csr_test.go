package csr

import (
	"sort"
	"testing"

	"snapdyn/internal/dyngraph"
	"snapdyn/internal/edge"
	"snapdyn/internal/rmat"
)

func sortedNeighbors(g *Graph, u edge.ID) []uint32 {
	adj, _ := g.Neighbors(u)
	out := append([]uint32(nil), adj...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestFromEdgesDirected(t *testing.T) {
	edges := []edge.Edge{
		{U: 0, V: 1, T: 10}, {U: 0, V: 2, T: 20}, {U: 1, V: 2, T: 30}, {U: 3, V: 0, T: 40},
	}
	g := FromEdges(2, 4, edges, false)
	if g.NumEdges() != 4 {
		t.Fatalf("m = %d", g.NumEdges())
	}
	if g.Degree(0) != 2 || g.Degree(1) != 1 || g.Degree(2) != 0 || g.Degree(3) != 1 {
		t.Fatal("degrees wrong")
	}
	nb := sortedNeighbors(g, 0)
	if len(nb) != 2 || nb[0] != 1 || nb[1] != 2 {
		t.Fatalf("neighbors of 0 = %v", nb)
	}
}

func TestFromEdgesUndirected(t *testing.T) {
	edges := []edge.Edge{{U: 0, V: 1, T: 5}, {U: 1, V: 2, T: 6}}
	g := FromEdges(1, 3, edges, true)
	if g.NumEdges() != 4 {
		t.Fatalf("m = %d, want 4 arcs", g.NumEdges())
	}
	if g.Degree(1) != 2 {
		t.Fatalf("deg(1) = %d", g.Degree(1))
	}
	adj, ts := g.Neighbors(0)
	if len(adj) != 1 || adj[0] != 1 || ts[0] != 5 {
		t.Fatalf("neighbors of 0 = %v @%v", adj, ts)
	}
}

func TestTimestampsTravel(t *testing.T) {
	edges := []edge.Edge{{U: 0, V: 1, T: 99}, {U: 0, V: 2, T: 77}}
	g := FromEdges(1, 3, edges, false)
	adj, ts := g.Neighbors(0)
	m := map[uint32]uint32{}
	for i := range adj {
		m[adj[i]] = ts[i]
	}
	if m[1] != 99 || m[2] != 77 {
		t.Fatalf("timestamps = %v", m)
	}
}

func TestFromStoreMatchesFromEdges(t *testing.T) {
	p := rmat.PaperParams(10, 5000, 50, 3)
	edges, err := rmat.Generate(0, p)
	if err != nil {
		t.Fatal(err)
	}
	n := p.NumVertices()
	s := dyngraph.NewDynArr(n, len(edges))
	dyngraph.InsertAll(s, 4, edges)
	g1 := FromEdges(4, n, edges, false)
	g2 := FromStore(4, s)
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", g1.NumEdges(), g2.NumEdges())
	}
	for u := 0; u < n; u++ {
		a := sortedNeighbors(g1, edge.ID(u))
		b := sortedNeighbors(g2, edge.ID(u))
		if len(a) != len(b) {
			t.Fatalf("vertex %d degree differs: %d vs %d", u, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d adjacency differs", u)
			}
		}
	}
}

func TestParallelBuildDeterministicContent(t *testing.T) {
	p := rmat.PaperParams(9, 3000, 10, 7)
	edges, _ := rmat.Generate(0, p)
	n := p.NumVertices()
	g1 := FromEdges(1, n, edges, false)
	g8 := FromEdges(8, n, edges, false)
	for u := 0; u < n; u++ {
		a, b := sortedNeighbors(g1, edge.ID(u)), sortedNeighbors(g8, edge.ID(u))
		if len(a) != len(b) {
			t.Fatalf("vertex %d: degree %d vs %d", u, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d adjacency differs across worker counts", u)
			}
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	g := FromEdges(4, 5, nil, false)
	if g.NumEdges() != 0 || g.N != 5 {
		t.Fatalf("empty graph wrong: %+v", g)
	}
	for u := edge.ID(0); u < 5; u++ {
		if g.Degree(u) != 0 {
			t.Fatal("nonzero degree in empty graph")
		}
	}
	if g.MaxDegree() != 0 {
		t.Fatal("max degree nonzero")
	}
}

func TestMaxDegree(t *testing.T) {
	edges := []edge.Edge{{U: 2, V: 0}, {U: 2, V: 1}, {U: 2, V: 3}, {U: 0, V: 1}}
	g := FromEdges(2, 4, edges, false)
	if g.MaxDegree() != 3 {
		t.Fatalf("max degree = %d", g.MaxDegree())
	}
}
