// Package csr builds compressed sparse row (adjacency array) snapshots of
// a graph, the cache-friendly static representation the paper's kernels
// (BFS, connected components, betweenness) traverse. Construction is
// parallel: a degree-counting pass, an exclusive prefix sum over offsets,
// and a scatter pass with per-vertex atomic cursors.
package csr

import (
	"sync/atomic"

	"snapdyn/internal/edge"
	"snapdyn/internal/par"
	"snapdyn/internal/psort"
)

// Graph is an immutable CSR snapshot. Arc i of vertex u is
// (Adj[Offsets[u]+i], TS[Offsets[u]+i]).
type Graph struct {
	N       int
	Offsets []int64 // length N+1
	Adj     []uint32
	TS      []uint32 // time labels, parallel to Adj
}

// NumEdges returns the number of stored arcs.
func (g *Graph) NumEdges() int64 { return int64(len(g.Adj)) }

// SizeBytes returns the snapshot's in-memory footprint: the offset,
// adjacency, and time-label arrays (8 + 4 + 4 bytes per entry). The
// compressed representation reports the matching number through
// compress.Graph.FootprintBytes, so bytes-per-edge comparisons across
// formats are apples-to-apples.
func (g *Graph) SizeBytes() int64 {
	return 8*int64(len(g.Offsets)) + 4*int64(len(g.Adj)) + 4*int64(len(g.TS))
}

// Degree returns the out-degree of u.
func (g *Graph) Degree(u edge.ID) int64 { return g.Offsets[u+1] - g.Offsets[u] }

// Neighbors returns u's adjacency and time-label slices (views, do not
// modify).
func (g *Graph) Neighbors(u edge.ID) (adj []uint32, ts []uint32) {
	lo, hi := g.Offsets[u], g.Offsets[u+1]
	return g.Adj[lo:hi], g.TS[lo:hi]
}

// FromEdges builds a CSR over n vertices from an edge list in parallel.
// When undirected is set, each edge contributes both arcs.
func FromEdges(workers, n int, edges []edge.Edge, undirected bool) *Graph {
	counts := make([]int64, n+1)
	par.ForBlock(workers, len(edges), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := &edges[i]
			atomic.AddInt64(&counts[e.U], 1)
			if undirected {
				atomic.AddInt64(&counts[e.V], 1)
			}
		}
	})
	total := psort.ExclusiveScan(workers, counts)
	g := &Graph{
		N:       n,
		Offsets: append([]int64(nil), counts...),
		Adj:     make([]uint32, total),
		TS:      make([]uint32, total),
	}
	// counts now holds the starting offset of each vertex; reuse it as
	// the scatter cursor array.
	cursors := counts
	par.ForBlock(workers, len(edges), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := &edges[i]
			p := atomic.AddInt64(&cursors[e.U], 1) - 1
			g.Adj[p] = e.V
			g.TS[p] = e.T
			if undirected {
				q := atomic.AddInt64(&cursors[e.V], 1) - 1
				g.Adj[q] = e.U
				g.TS[q] = e.T
			}
		}
	})
	return g
}

// storeView is the minimal dynamic-graph surface csr needs; it matches
// dyngraph.Store without importing it.
type storeView interface {
	NumVertices() int
	Degree(u edge.ID) int
	Neighbors(u edge.ID, fn func(v edge.ID, t uint32) bool)
}

// FromStore snapshots a dynamic graph store into CSR form in parallel.
func FromStore(workers int, s storeView) *Graph {
	n := s.NumVertices()
	counts := make([]int64, n+1)
	par.ForDynamic(workers, n, 256, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			counts[u] = int64(s.Degree(edge.ID(u)))
		}
	})
	total := psort.ExclusiveScan(workers, counts)
	g := &Graph{
		N:       n,
		Offsets: counts,
		Adj:     make([]uint32, total),
		TS:      make([]uint32, total),
	}
	par.ForDynamic(workers, n, 256, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			p := g.Offsets[u]
			s.Neighbors(edge.ID(u), func(v edge.ID, t uint32) bool {
				g.Adj[p] = v
				g.TS[p] = t
				p++
				return true
			})
		}
	})
	return g
}

// DegreeSum returns the total out-degree of the given vertices, the
// "edge mass" quantity the direction-optimizing BFS heuristic compares
// against the unexplored edge count. Runs in parallel for large inputs;
// the serial path avoids the reduction closures so single-worker
// steady-state traversals stay allocation-free.
func (g *Graph) DegreeSum(workers int, vs []uint32) int64 {
	if workers == 1 || len(vs) < 4096 {
		var sum int64
		for _, v := range vs {
			sum += g.Degree(edge.ID(v))
		}
		return sum
	}
	return par.Reduce(workers, len(vs), int64(0),
		func(acc int64, i int) int64 { return acc + g.Degree(edge.ID(vs[i])) },
		func(a, b int64) int64 { return a + b })
}

// MaxDegree returns the largest out-degree, used by degree-aware kernels.
func (g *Graph) MaxDegree() int64 {
	return par.Reduce(0, g.N, int64(0),
		func(acc int64, u int) int64 { return max(acc, g.Degree(edge.ID(u))) },
		func(a, b int64) int64 { return max(a, b) })
}
