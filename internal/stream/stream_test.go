package stream

import (
	"testing"

	"snapdyn/internal/edge"
	"snapdyn/internal/rmat"
)

func sampleEdges(t *testing.T, scale, m int, seed uint64) []edge.Edge {
	t.Helper()
	p := rmat.PaperParams(scale, m, 100, seed)
	edges, err := rmat.Generate(0, p)
	if err != nil {
		t.Fatal(err)
	}
	return edges
}

func TestInserts(t *testing.T) {
	edges := sampleEdges(t, 8, 1000, 1)
	ups := Inserts(edges)
	if len(ups) != len(edges) {
		t.Fatalf("len = %d", len(ups))
	}
	for i := range ups {
		if ups[i].Op != edge.Insert || ups[i].Edge != edges[i] {
			t.Fatalf("update %d wrong: %v", i, ups[i])
		}
	}
}

func TestDeletionsSampleExistingWithoutReplacement(t *testing.T) {
	edges := sampleEdges(t, 8, 500, 2)
	dels := Deletions(edges, 200, 3)
	if len(dels) != 200 {
		t.Fatalf("len = %d", len(dels))
	}
	// Each deletion must reference a distinct edge-list position; since
	// sampling is positional, multiset membership suffices here.
	exists := map[edge.Edge]int{}
	for _, e := range edges {
		exists[e]++
	}
	for _, d := range dels {
		if d.Op != edge.Delete {
			t.Fatal("non-delete op")
		}
		if exists[d.Edge] == 0 {
			t.Fatalf("deletion of non-existent edge %v", d.Edge)
		}
		exists[d.Edge]--
	}
}

func TestDeletionsSparseMatchesDense(t *testing.T) {
	edges := sampleEdges(t, 9, 4000, 11)
	// Both calls replay the identical random sequence (draw i depends
	// only on i and len(edges)), so the sparse-path sample must be
	// exactly the dense-path sample's prefix.
	const small = 200 // < len/8: map-backed sparse permutation
	dense := Deletions(edges, len(edges)/2, 12)
	sparse := Deletions(edges, small, 12)
	if len(sparse) != small {
		t.Fatalf("len = %d", len(sparse))
	}
	for i := range sparse {
		if sparse[i] != dense[i] {
			t.Fatalf("sample %d: sparse %v, dense %v", i, sparse[i], dense[i])
		}
	}
}

func TestDeletionsSparseWithoutReplacement(t *testing.T) {
	edges := sampleEdges(t, 10, 10000, 13)
	dels := Deletions(edges, 500, 14) // sparse path
	exists := map[edge.Edge]int{}
	for _, e := range edges {
		exists[e]++
	}
	for _, d := range dels {
		if exists[d.Edge] == 0 {
			t.Fatalf("deletion of non-existent (or over-sampled) edge %v", d.Edge)
		}
		exists[d.Edge]--
	}
}

func TestDeletionsCapped(t *testing.T) {
	edges := sampleEdges(t, 6, 50, 4)
	dels := Deletions(edges, 1000, 5)
	if len(dels) != 50 {
		t.Fatalf("len = %d, want capped at 50", len(dels))
	}
}

func TestMixedRatio(t *testing.T) {
	base := sampleEdges(t, 9, 2000, 6)
	extra := sampleEdges(t, 9, 2000, 7)
	ups, err := Mixed(base, extra, 1000, 0.75, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 1000 {
		t.Fatalf("len = %d", len(ups))
	}
	ins := 0
	for _, u := range ups {
		if u.Op == edge.Insert {
			ins++
		}
	}
	if ins != 750 {
		t.Fatalf("insertions = %d, want 750", ins)
	}
}

func TestMixedErrors(t *testing.T) {
	base := sampleEdges(t, 6, 10, 9)
	extra := sampleEdges(t, 6, 10, 10)
	if _, err := Mixed(base, extra, 100, 0.75, 1); err == nil {
		t.Fatal("expected error: not enough fresh edges")
	}
	if _, err := Mixed(base, extra, 100, 0.05, 1); err == nil {
		t.Fatal("expected error: not enough base edges for deletions")
	}
	if _, err := Mixed(base, extra, 10, 1.5, 1); err == nil {
		t.Fatal("expected error: bad fraction")
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	edges := sampleEdges(t, 8, 300, 11)
	ups := Inserts(edges)
	orig := map[edge.Update]int{}
	for _, u := range ups {
		orig[u]++
	}
	Shuffle(ups, 12)
	for _, u := range ups {
		orig[u]--
	}
	for k, c := range orig {
		if c != 0 {
			t.Fatalf("multiset changed at %v by %d", k, c)
		}
	}
}

func TestBatches(t *testing.T) {
	ups := Inserts(sampleEdges(t, 6, 105, 13))
	bs := Batches(ups, 25)
	if len(bs) != 5 {
		t.Fatalf("batches = %d, want 5", len(bs))
	}
	total := 0
	for i, b := range bs {
		if i < 4 && len(b) != 25 {
			t.Fatalf("batch %d size %d", i, len(b))
		}
		total += len(b)
	}
	if total != 105 {
		t.Fatalf("total = %d", total)
	}
	if got := Batches(ups, 0); len(got) != 1 || len(got[0]) != 105 {
		t.Fatal("size<=0 should give one batch")
	}
}

func TestMirror(t *testing.T) {
	ups := []edge.Update{{Edge: edge.Edge{U: 1, V: 2, T: 9}, Op: edge.Insert}}
	m := Mirror(ups)
	if len(m) != 2 {
		t.Fatalf("len = %d", len(m))
	}
	if m[1].U != 2 || m[1].V != 1 || m[1].T != 9 || m[1].Op != edge.Insert {
		t.Fatalf("mirrored = %v", m[1])
	}
	// Self-loops are their own mirror: no duplicate.
	loops := Mirror([]edge.Update{{Edge: edge.Edge{U: 3, V: 3}, Op: edge.Insert}})
	if len(loops) != 1 {
		t.Fatalf("self-loop mirrored to %d updates, want 1", len(loops))
	}
}

func TestSanitize(t *testing.T) {
	ups := []edge.Update{
		{Edge: edge.Edge{U: 0, V: 1}},
		{Edge: edge.Edge{U: 5, V: 1}},  // out of range
		{Edge: edge.Edge{U: 2, V: 2}},  // self loop
		{Edge: edge.Edge{U: 1, V: 99}}, // out of range
	}
	clean, dropped := Sanitize(ups, 4, true)
	if dropped != 3 || len(clean) != 1 {
		t.Fatalf("dropped %d, kept %d", dropped, len(clean))
	}
	ups2 := []edge.Update{{Edge: edge.Edge{U: 2, V: 2}}}
	clean, dropped = Sanitize(ups2, 4, false)
	if dropped != 0 || len(clean) != 1 {
		t.Fatal("self loops should be kept when allowed")
	}
}
