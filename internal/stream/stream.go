// Package stream generates and manipulates structural update streams —
// the workloads of the paper's representation experiments: pure insertion
// streams (graph construction), pure deletion streams over an existing
// graph, and mixed streams with a given insertion ratio (Figure 6 uses
// 75% insertions / 25% deletions). Streams can be shuffled (the paper's
// mitigation for contiguous updates hammering one vertex) and cut into
// batches.
package stream

import (
	"fmt"

	"snapdyn/internal/edge"
	"snapdyn/internal/par"
	"snapdyn/internal/xrand"
)

// Inserts converts an edge list into a pure insertion stream.
func Inserts(edges []edge.Edge) []edge.Update {
	ups := make([]edge.Update, len(edges))
	par.ForBlock(0, len(edges), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ups[i] = edge.Update{Edge: edges[i], Op: edge.Insert}
		}
	})
	return ups
}

// Deletions samples count random deletions of existing edges (without
// replacement) from an edge list, the Figure 5 workload ("20 million
// random deletions after constructing this network").
//
// Small samples (count << len(edges)) run the partial Fisher-Yates over
// a map-backed sparse permutation holding only the displaced entries —
// O(count) time and space instead of the O(m) index copy — while large
// samples keep the dense index array. Both paths draw the same random
// sequence, so a given (edges, count, seed) yields identical output
// regardless of which is taken.
func Deletions(edges []edge.Edge, count int, seed uint64) []edge.Update {
	if count > len(edges) {
		count = len(edges)
	}
	r := xrand.New(seed)
	ups := make([]edge.Update, count)
	if count < len(edges)/8 {
		// Sparse permutation: disp[k] is the value a dense partial
		// Fisher-Yates would hold at index k where it differs from the
		// identity. Only swapped-to indices (at most count of them past
		// the sampled prefix) are materialized.
		disp := make(map[int32]int32, 2*count)
		at := func(k int32) int32 {
			if v, ok := disp[k]; ok {
				return v
			}
			return k
		}
		for i := 0; i < count; i++ {
			j := int32(i + r.Intn(len(edges)-i))
			vi, vj := at(int32(i)), at(j)
			disp[j] = vi
			ups[i] = edge.Update{Edge: edges[vj], Op: edge.Delete}
		}
		return ups
	}
	// Dense partial Fisher-Yates over a copy of the index space.
	idx := make([]int32, len(edges))
	for i := range idx {
		idx[i] = int32(i)
	}
	for i := 0; i < count; i++ {
		j := i + r.Intn(len(idx)-i)
		idx[i], idx[j] = idx[j], idx[i]
		e := edges[idx[i]]
		ups[i] = edge.Update{Edge: e, Op: edge.Delete}
	}
	return ups
}

// Mixed builds a stream of count updates with the given insertion
// fraction (e.g. 0.75): insertions are fresh edges drawn from extra,
// deletions target edges of base (sampled without replacement). extra
// must hold at least ceil(count*insFrac) edges.
func Mixed(base, extra []edge.Edge, count int, insFrac float64, seed uint64) ([]edge.Update, error) {
	if insFrac < 0 || insFrac > 1 {
		return nil, fmt.Errorf("stream: insertion fraction %v out of [0,1]", insFrac)
	}
	nIns := int(float64(count)*insFrac + 0.5)
	nDel := count - nIns
	if nIns > len(extra) {
		return nil, fmt.Errorf("stream: need %d fresh edges for insertions, have %d", nIns, len(extra))
	}
	if nDel > len(base) {
		return nil, fmt.Errorf("stream: need %d existing edges for deletions, have %d", nDel, len(base))
	}
	ups := make([]edge.Update, 0, count)
	for i := 0; i < nIns; i++ {
		ups = append(ups, edge.Update{Edge: extra[i], Op: edge.Insert})
	}
	ups = append(ups, Deletions(base, nDel, seed+1)...)
	Shuffle(ups, seed+2)
	return ups, nil
}

// Shuffle randomly permutes a stream in place — the paper's remedy for
// load imbalance when "a stream of contiguous insertions corresponding to
// adjacencies of one vertex" serializes on that vertex's lock.
func Shuffle(ups []edge.Update, seed uint64) {
	r := xrand.New(seed)
	r.Shuffle(len(ups), func(i, j int) { ups[i], ups[j] = ups[j], ups[i] })
}

// Batches cuts a stream into consecutive batches of the given size (the
// last may be shorter). The returned slices alias ups.
func Batches(ups []edge.Update, size int) [][]edge.Update {
	if size <= 0 {
		size = len(ups)
	}
	var out [][]edge.Update
	for lo := 0; lo < len(ups); lo += size {
		hi := min(lo+size, len(ups))
		out = append(out, ups[lo:hi])
	}
	return out
}

// Mirror doubles a stream for undirected graphs: every update on (u,v)
// is followed by the mirrored update on (v,u). Self-loops are their own
// mirror and stay single.
func Mirror(ups []edge.Update) []edge.Update {
	out := make([]edge.Update, 0, 2*len(ups))
	for _, up := range ups {
		out = append(out, up)
		if up.U == up.V {
			continue
		}
		m := up
		m.U, m.V = up.V, up.U
		out = append(out, m)
	}
	return out
}

// Sanitize drops structurally invalid updates (endpoints outside [0, n),
// or self-loops when dropSelfLoops is set) and returns the cleaned stream
// with the number dropped. Malformed interaction logs are routine in the
// intelligence/surveillance settings the paper targets; the library's
// policy is to filter, not crash.
func Sanitize(ups []edge.Update, n int, dropSelfLoops bool) ([]edge.Update, int) {
	out := ups[:0]
	dropped := 0
	for _, up := range ups {
		if int(up.U) >= n || int(up.V) >= n || (dropSelfLoops && up.U == up.V) {
			dropped++
			continue
		}
		out = append(out, up)
	}
	return out, dropped
}
