package lct

import (
	"testing"
	"testing/quick"

	"snapdyn/internal/cc"
	"snapdyn/internal/csr"
	"snapdyn/internal/edge"
	"snapdyn/internal/rmat"
	"snapdyn/internal/xrand"
)

func TestLinkCutBasics(t *testing.T) {
	f := New(5)
	if f.Size() != 5 {
		t.Fatalf("size = %d", f.Size())
	}
	// Build 0 <- 1 <- 2 and 3 <- 4.
	if err := f.Link(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Link(2, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Link(4, 3); err != nil {
		t.Fatal(err)
	}
	if f.FindRoot(2) != 0 || f.FindRoot(4) != 3 {
		t.Fatal("findroot wrong")
	}
	if !f.Connected(0, 2) || f.Connected(2, 4) {
		t.Fatal("connected wrong")
	}
	if p, ok := f.Parent(2); !ok || p != 1 {
		t.Fatal("parent wrong")
	}
	if _, ok := f.Parent(0); ok {
		t.Fatal("root has a parent")
	}
}

func TestLinkErrors(t *testing.T) {
	f := New(4)
	if err := f.Link(1, 0); err != nil {
		t.Fatal(err)
	}
	// 1 is no longer a root.
	if err := f.Link(1, 2); err == nil {
		t.Fatal("link of non-root succeeded")
	}
	// Cycle: root 0, linking 0 under 1 (whose root is 0).
	if err := f.Link(0, 1); err == nil {
		t.Fatal("cycle link succeeded")
	}
	// Self-cycle.
	if err := f.Link(2, 2); err == nil {
		t.Fatal("self link succeeded")
	}
}

func TestCut(t *testing.T) {
	f := New(4)
	_ = f.Link(1, 0)
	_ = f.Link(2, 1)
	_ = f.Link(3, 2)
	if !f.Cut(2) {
		t.Fatal("cut failed")
	}
	if f.Connected(3, 0) {
		t.Fatal("still connected after cut")
	}
	if f.FindRoot(3) != 2 {
		t.Fatalf("new root = %d, want 2", f.FindRoot(3))
	}
	if f.Cut(0) {
		t.Fatal("cutting a root returned true")
	}
	// Relink after cut.
	if err := f.Link(2, 0); err != nil {
		t.Fatal(err)
	}
	if !f.Connected(3, 1) {
		t.Fatal("relink failed")
	}
}

func TestFindRootHops(t *testing.T) {
	f := New(4)
	_ = f.Link(1, 0)
	_ = f.Link(2, 1)
	_ = f.Link(3, 2)
	root, hops := f.FindRootHops(3)
	if root != 0 || hops != 3 {
		t.Fatalf("(root,hops) = (%d,%d), want (0,3)", root, hops)
	}
	if f.Height() != 3 {
		t.Fatalf("height = %d", f.Height())
	}
}

func TestBuildFromGraph(t *testing.T) {
	// Two components plus an isolate.
	edges := []edge.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, // triangle
		{U: 4, V: 5}, // pair
	}
	g := csr.FromEdges(2, 7, edges, true)
	f := Build(4, g)
	if !f.Connected(0, 2) || !f.Connected(4, 5) {
		t.Fatal("in-component connectivity lost")
	}
	if f.Connected(0, 4) || f.Connected(3, 6) || f.Connected(5, 6) {
		t.Fatal("cross-component connectivity invented")
	}
}

func TestBuildMatchesComponents(t *testing.T) {
	p := rmat.PaperParams(11, 6*(1<<11), 0, 3)
	edgesL, _ := rmat.Generate(0, p)
	g := csr.FromEdges(4, p.NumVertices(), edgesL, true)
	comp := cc.Components(4, g)
	f := BuildWithComponents(4, g, comp)
	// Connectivity by forest must equal connectivity by labels for random
	// pairs.
	r := xrand.New(5)
	for i := 0; i < 5000; i++ {
		u := edge.ID(r.Uint32n(uint32(g.N)))
		v := edge.ID(r.Uint32n(uint32(g.N)))
		if f.Connected(u, v) != cc.SameComponent(comp, u, v) {
			t.Fatalf("forest and labels disagree on (%d,%d)", u, v)
		}
	}
}

func TestBuildHeightBounded(t *testing.T) {
	// BFS construction keeps tree height within the traversal levels,
	// far below n for small-world graphs.
	p := rmat.PaperParams(12, 8*(1<<12), 0, 9)
	edgesL, _ := rmat.Generate(0, p)
	g := csr.FromEdges(4, p.NumVertices(), edgesL, true)
	f := Build(4, g)
	if h := f.Height(); h > 64 {
		t.Fatalf("BFS forest height %d too large for a small-world graph", h)
	}
}

func TestConnectedBatch(t *testing.T) {
	f := New(6)
	_ = f.Link(1, 0)
	_ = f.Link(2, 0)
	_ = f.Link(4, 3)
	queries := []Query{{1, 2}, {1, 3}, {3, 4}, {5, 5}, {0, 5}}
	results := make([]bool, len(queries))
	f.ConnectedBatch(4, queries, results)
	want := []bool{true, false, true, true, false}
	for i := range want {
		if results[i] != want[i] {
			t.Fatalf("query %d = %v, want %v", i, results[i], want[i])
		}
	}
}

func TestLinkCutProperty(t *testing.T) {
	// Random link/cut sequences vs a naive reachability oracle.
	if err := quick.Check(func(seed uint64) bool {
		const n = 24
		r := xrand.New(seed)
		f := New(n)
		parent := make([]int, n) // oracle: parent or -1
		for i := range parent {
			parent[i] = -1
		}
		rootOf := func(v int) int {
			for parent[v] >= 0 {
				v = parent[v]
			}
			return v
		}
		for op := 0; op < 300; op++ {
			v := int(r.Uint32n(n))
			w := int(r.Uint32n(n))
			if r.Float64() < 0.6 {
				wantErr := parent[v] >= 0 || rootOf(w) == v
				err := f.Link(edge.ID(v), edge.ID(w))
				if (err != nil) != wantErr {
					return false
				}
				if err == nil {
					parent[v] = w
				}
			} else {
				want := parent[v] >= 0
				if f.Cut(edge.ID(v)) != want {
					return false
				}
				parent[v] = -1
			}
		}
		for v := 0; v < n; v++ {
			if int(f.FindRoot(edge.ID(v))) != rootOf(v) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyForest(t *testing.T) {
	g := csr.FromEdges(1, 0, nil, true)
	f := Build(2, g)
	if f.Size() != 0 {
		t.Fatal("empty build wrong")
	}
}
