// Package lct implements the paper's link-cut tree for connectivity
// queries on dynamic low-diameter networks.
//
// The paper deliberately rejects self-adjusting (splay-based) link-cut
// trees: "a straightforward implementation ... would be to store with
// each vertex a pointer to its parent. This supports link, cut, and
// parent in constant time, but the findroot operation would require a
// worst-case traversal of O(n) vertices ... for low-diameter graphs such
// as small-world networks, this operation just requires a small number of
// hops, as the height of the tree is small."
//
// A Forest is therefore a flat parent-pointer array: Link and Cut are
// O(1), FindRoot walks to the root in O(height) = O(diameter) hops, and a
// connectivity query is two findroots. Construction from a graph runs a
// parallel BFS forest (one root per connected component), so tree heights
// are bounded by component diameters.
package lct

import (
	"fmt"

	"snapdyn/internal/cc"
	"snapdyn/internal/csr"
	"snapdyn/internal/edge"
	"snapdyn/internal/par"
	"snapdyn/internal/traversal"
)

// noParent marks a root.
const noParent = ^uint32(0)

// Forest is a rooted forest over vertices [0, n) stored as parent
// pointers.
//
// Structural operations (Link, Cut) must be externally serialized with
// respect to each other and to queries; queries (FindRoot, Connected,
// Parent) are read-only and safe to run concurrently with each other —
// "the queries can be processed in parallel, as they only involve memory
// reads."
type Forest struct {
	parent []uint32
}

// New returns a forest of n singleton trees.
func New(n int) *Forest {
	p := make([]uint32, n)
	for i := range p {
		p[i] = noParent
	}
	return &Forest{parent: p}
}

// Size returns the number of vertices.
func (f *Forest) Size() int { return len(f.parent) }

// Link creates an arc from root v to vertex w, merging v's tree into
// w's. It returns an error if v is not a root or if the link would create
// a cycle (v and w already connected).
func (f *Forest) Link(v, w edge.ID) error {
	if f.parent[v] != noParent {
		return fmt.Errorf("lct: link(%d,%d): %d is not a root", v, w, v)
	}
	if f.FindRoot(w) == v {
		return fmt.Errorf("lct: link(%d,%d) would create a cycle", v, w)
	}
	f.parent[v] = uint32(w)
	return nil
}

// Cut deletes the arc from v to its parent, splitting v's subtree into
// its own tree. Cutting a root is a no-op returning false.
func (f *Forest) Cut(v edge.ID) bool {
	if f.parent[v] == noParent {
		return false
	}
	f.parent[v] = noParent
	return true
}

// Parent returns v's parent and whether v has one.
func (f *Forest) Parent(v edge.ID) (edge.ID, bool) {
	p := f.parent[v]
	if p == noParent {
		return 0, false
	}
	return p, true
}

// FindRoot walks parent pointers to the root of v's tree: O(height)
// memory reads — a linked-list traversal, fast in practice only because
// small-world BFS trees are shallow.
func (f *Forest) FindRoot(v edge.ID) edge.ID {
	for {
		p := f.parent[v]
		if p == noParent {
			return v
		}
		v = p
	}
}

// FindRootHops returns the root and the number of parent hops taken,
// exposing the query's diameter-dependence for measurements.
func (f *Forest) FindRootHops(v edge.ID) (edge.ID, int) {
	hops := 0
	for {
		p := f.parent[v]
		if p == noParent {
			return v, hops
		}
		v = p
		hops++
	}
}

// Connected reports whether u and v are in the same tree (two findroot
// operations).
func (f *Forest) Connected(u, v edge.ID) bool {
	return f.FindRoot(u) == f.FindRoot(v)
}

// Query is one connectivity query.
type Query struct{ U, V edge.ID }

// ConnectedBatch answers queries in parallel, writing results[i] for
// queries[i].
func (f *Forest) ConnectedBatch(workers int, queries []Query, results []bool) {
	par.ForDynamic(workers, len(queries), 512, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			results[i] = f.Connected(queries[i].U, queries[i].V)
		}
	})
}

// Height returns the height of the tree containing v... computed the slow
// way (walk from every vertex); intended for tests and diagnostics only.
func (f *Forest) Height() int {
	h := 0
	for v := range f.parent {
		_, hops := f.FindRootHops(edge.ID(v))
		if hops > h {
			h = hops
		}
	}
	return h
}

// Build constructs the forest for a graph snapshot: connected components
// are labeled in parallel, then a multi-source parallel BFS from each
// component's representative produces a spanning forest whose parent
// pointers become the link-cut structure. This mirrors the paper's
// "apply a lock-free, level-synchronous parallel BFS ... then run
// connected components to construct a forest of link-cut trees."
//
// g must be symmetric (both arcs of every undirected edge present, e.g.
// csr.FromEdges with undirected=true); otherwise vertices that are only
// weakly reachable stay singleton roots.
func Build(workers int, g *csr.Graph) *Forest {
	return BuildStrategy(workers, g, traversal.TopDown)
}

// BuildStrategy is Build with an explicit engine choice for the
// spanning-forest traversal: the direction-optimizing strategy lets the
// saturated middle levels of the forest BFS run as bottom-up pull steps,
// which is where most of the construction time goes on low-diameter
// graphs. The direction-optimizing strategy requires a symmetric g
// (which Build already assumes for coverage).
func BuildStrategy(workers int, g *csr.Graph, strategy traversal.Strategy) *Forest {
	comp := cc.Components(workers, g)
	return buildFromComponents(workers, g, comp, strategy)
}

// BuildWithComponents is Build reusing a precomputed component labeling.
func BuildWithComponents(workers int, g *csr.Graph, comp []uint32) *Forest {
	return buildFromComponents(workers, g, comp, traversal.TopDown)
}

func buildFromComponents(workers int, g *csr.Graph, comp []uint32, strategy traversal.Strategy) *Forest {
	f := New(g.N)
	if g.N == 0 {
		return f
	}
	// One multi-source BFS with every component representative as a
	// root covers the whole graph in a single traversal.
	var roots []uint32
	for v := 0; v < g.N; v++ {
		if comp[v] == uint32(v) {
			roots = append(roots, uint32(v))
		}
	}
	res := traversal.Run(g, roots, traversal.Options{Workers: workers, Strategy: strategy}, nil, nil)
	par.ForBlock(workers, g.N, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			if res.Level[u] > 0 { // reached, not a root
				f.parent[u] = res.Parent[u]
			}
		}
	})
	return f
}
