package centrality

import (
	"math"
	"testing"

	"snapdyn/internal/csr"
	"snapdyn/internal/edge"
	"snapdyn/internal/rmat"
	"snapdyn/internal/traversal"
)

func rmatUndirected(t testing.TB, scale, edgeFactor int, tmax uint32, seed uint64) *csr.Graph {
	t.Helper()
	p := rmat.PaperParams(scale, edgeFactor*(1<<scale), tmax, seed)
	edgesL, err := rmat.Generate(0, p)
	if err != nil {
		t.Fatal(err)
	}
	return csr.FromEdges(0, p.NumVertices(), edgesL, true)
}

// relClose tolerates the float rounding differences that come from the
// push and pull directions accumulating dependencies in different
// predecessor orders.
func relClose(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

func TestBetweennessTopDownVsDirectionOpt(t *testing.T) {
	g := rmatUndirected(t, 10, 8, 40, 33)
	for _, temporal := range []bool{false, true} {
		want := Betweenness(4, g, Options{Temporal: temporal})
		got := Betweenness(4, g, Options{Temporal: temporal, Strategy: traversal.DirectionOpt})
		for i := range want {
			if !relClose(want[i], got[i]) {
				t.Fatalf("temporal=%v: bc[%d] = %v (dirop) vs %v (topdown)",
					temporal, i, got[i], want[i])
			}
		}
	}
}

func TestBetweennessForcedPullEquivalence(t *testing.T) {
	// Exercise the visitor pull step on every level by making the
	// heuristic enter bottom-up immediately, including the temporal
	// arc gate on mirror arcs.
	g := rmatUndirected(t, 9, 6, 25, 51)
	for _, temporal := range []bool{false, true} {
		want := Betweenness(2, g, Options{Temporal: temporal})
		// A per-test state drives the traversal with extreme
		// thresholds through the public engine options.
		got := betweennessAlphaBeta(2, g, Options{Temporal: temporal, Strategy: traversal.DirectionOpt})
		for i := range want {
			if !relClose(want[i], got[i]) {
				t.Fatalf("temporal=%v: bc[%d] = %v (pull) vs %v (topdown)", temporal, i, got[i], want[i])
			}
		}
	}
}

// betweennessAlphaBeta recomputes betweenness forcing the pull direction
// from level 1 (alpha and beta beyond any real mass), using the internal
// state directly.
func betweennessAlphaBeta(workers int, g *csr.Graph, opt Options) []float64 {
	bc := make([]float64, g.N)
	st := newBrandesState(g.N)
	for s := 0; s < g.N; s++ {
		st.traverseForced(g, edge.ID(s), opt)
		for i := len(st.order) - 1; i >= 0; i-- {
			w := st.order[i]
			coeff := (1 + st.delta[w]) / st.sigma[w]
			for _, v := range st.preds[w] {
				st.delta[v] += st.sigma[v] * coeff
			}
			if w != uint32(s) {
				bc[w] += st.delta[w]
			}
		}
	}
	_ = workers
	return bc
}

// traverseForced mirrors brandesState.traverse with forced-pull
// thresholds.
func (st *brandesState) traverseForced(g *csr.Graph, s edge.ID, opt Options) {
	for _, v := range st.order {
		st.sigma[v] = 0
		st.delta[v] = 0
		st.preds[v] = st.preds[v][:0]
	}
	st.order = st.order[:0]
	st.temporal = opt.Temporal
	st.srcID = uint32(s)
	st.sigma[s] = 1
	st.arrive[s] = 0
	st.order = append(st.order, uint32(s))
	topt := traversal.Options{
		Workers:  1,
		Strategy: opt.Strategy,
		Alpha:    1 << 40,
		Beta:     1 << 40,
		Hooks:    traversal.Hooks{OnArc: st.onArc},
	}
	if opt.Temporal {
		topt.Arc = st.gate
	}
	st.src[0] = uint32(s)
	traversal.Run(g, st.src[:], topt, st.scratch, &st.res)
}

func TestStressTopDownVsDirectionOpt(t *testing.T) {
	g := rmatUndirected(t, 9, 5, 30, 13)
	for _, temporal := range []bool{false, true} {
		want := Stress(4, g, Options{Temporal: temporal})
		got := Stress(4, g, Options{Temporal: temporal, Strategy: traversal.DirectionOpt})
		for i := range want {
			if !relClose(want[i], got[i]) {
				t.Fatalf("temporal=%v: stress[%d] = %v (dirop) vs %v (topdown)",
					temporal, i, got[i], want[i])
			}
		}
	}
}

func TestClosenessTopDownVsDirectionOpt(t *testing.T) {
	g := rmatUndirected(t, 10, 7, 0, 29)
	srcs := SampleSources(g, 64, 3)
	want := Closeness(4, g, srcs, traversal.TopDown)
	got := Closeness(4, g, srcs, traversal.DirectionOpt)
	for i := range want {
		if !relClose(want[i].Classic, got[i].Classic) || !relClose(want[i].Harmonic, got[i].Harmonic) {
			t.Fatalf("closeness[%d] = %+v (dirop) vs %+v (topdown)", i, got[i], want[i])
		}
	}
}

func TestExactVsAllSourcesSampled(t *testing.T) {
	// Listing every vertex as an explicit "sample" must reproduce the
	// exact scores bit-for-bit modulo accumulation order: the sampled
	// path and the exact path share one engine now, so normalization
	// (len == n means scale 1) is the only difference.
	g := rmatUndirected(t, 9, 6, 15, 77)
	for _, temporal := range []bool{false, true} {
		exact := Betweenness(4, g, Options{Temporal: temporal})
		all := make([]edge.ID, g.N)
		for i := range all {
			all[i] = edge.ID(i)
		}
		sampled := Betweenness(4, g, Options{Temporal: temporal, Sources: all, Normalize: true})
		for i := range exact {
			if !relClose(exact[i], sampled[i]) {
				t.Fatalf("temporal=%v: bc[%d] = %v (all-sources sampled) vs %v (exact)",
					temporal, i, sampled[i], exact[i])
			}
		}
	}
}

func TestBrandesSteadyStateAllocations(t *testing.T) {
	// One worker's state, reused across sources, must stop allocating
	// once its arenas are warm: the engine scratch, the DAG arrays, and
	// the predecessor lists are all retained between traversals. This
	// is the regression guard for the hand-rolled Brandes loop's
	// per-level frontier allocations, which grew with every source.
	g := rmatUndirected(t, 11, 8, 20, 5)
	bc := make([]float64, g.N)
	for _, opt := range []Options{
		{Strategy: traversal.TopDown},
		{Strategy: traversal.DirectionOpt},
		{Strategy: traversal.DirectionOpt, Temporal: true},
	} {
		st := newBrandesState(g.N)
		// Warm the arenas (engine scratch, DAG arrays, predecessor list
		// capacities) with the measured source; repeats are then truly
		// steady state.
		const src = edge.ID(9)
		st.run(g, src, opt, bc)
		allocs := testing.AllocsPerRun(10, func() {
			st.run(g, src, opt, bc)
		})
		if allocs > 2 {
			t.Fatalf("opt=%+v: steady-state Brandes traversal allocates %g objects/run, want ~0",
				opt, allocs)
		}
	}
}

func TestBetweennessAllocsIndependentOfSourceCount(t *testing.T) {
	// Whole-call allocation scales with workers (per-worker states and
	// score vectors), not with the number of sources: four times the
	// sources must not approach four times the allocations.
	g := rmatUndirected(t, 10, 8, 0, 6)
	measure := func(k int) float64 {
		srcs := SampleSources(g, k, 11)
		return testing.AllocsPerRun(3, func() {
			Betweenness(2, g, Options{Sources: srcs, Strategy: traversal.DirectionOpt})
		})
	}
	few, many := measure(16), measure(64)
	if many > 1.25*few+64 {
		t.Fatalf("allocations grow with source count: %g (16 sources) -> %g (64 sources)", few, many)
	}
}

func TestSampleSourcesDeterministicAndDegreeFiltered(t *testing.T) {
	// Graph with isolated tail: half the vertices have no arcs.
	var es [][3]uint32
	for v := uint32(0); v < 64; v++ {
		es = append(es, [3]uint32{v, (v + 1) % 64, 0})
	}
	g := undirected(128, es...)
	a := SampleSources(g, 32, 99)
	b := SampleSources(g, 32, 99)
	if len(a) != 32 {
		t.Fatalf("sampled %d sources, want 32", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sampling not deterministic at %d: %d vs %d", i, a[i], b[i])
		}
		if g.Degree(a[i]) == 0 {
			t.Fatalf("sampled isolated vertex %d with non-isolated available", a[i])
		}
	}
	// Requesting more than the non-isolated pool fills from isolated
	// vertices and still returns k distinct sources.
	c := SampleSources(g, 100, 7)
	if len(c) != 100 {
		t.Fatalf("oversized request returned %d sources", len(c))
	}
	seen := map[edge.ID]bool{}
	nonIso := 0
	for _, s := range c {
		if seen[s] {
			t.Fatalf("duplicate source %d", s)
		}
		seen[s] = true
		if g.Degree(s) > 0 {
			nonIso++
		}
	}
	if nonIso != 64 {
		t.Fatalf("oversized request kept %d non-isolated sources, want all 64", nonIso)
	}
}
