package centrality

import (
	"math"
	"snapdyn/internal/traversal"
	"testing"

	"snapdyn/internal/edge"
)

func TestClosenessPath(t *testing.T) {
	// Path 0-1-2-3-4. Distances from 0: 1,2,3,4 -> sum 10, classic 4/10.
	g := undirected(5, [3]uint32{0, 1, 0}, [3]uint32{1, 2, 0}, [3]uint32{2, 3, 0}, [3]uint32{3, 4, 0})
	scores := Closeness(2, g, []edge.ID{0, 2}, traversal.TopDown)
	if !approxEqual(scores[0].Classic, 0.4) {
		t.Fatalf("classic closeness of end = %v, want 0.4", scores[0].Classic)
	}
	// From middle: distances 1,1,2,2 -> sum 6, classic 4/6.
	if !approxEqual(scores[1].Classic, 4.0/6.0) {
		t.Fatalf("classic closeness of middle = %v, want %v", scores[1].Classic, 4.0/6.0)
	}
	// Harmonic from end: 1 + 1/2 + 1/3 + 1/4.
	wantH := 1.0 + 0.5 + 1.0/3 + 0.25
	if !approxEqual(scores[0].Harmonic, wantH) {
		t.Fatalf("harmonic = %v, want %v", scores[0].Harmonic, wantH)
	}
}

func TestClosenessDisconnected(t *testing.T) {
	g := undirected(4, [3]uint32{0, 1, 0}) // 2 and 3 isolated
	scores := Closeness(1, g, []edge.ID{0, 2}, traversal.TopDown)
	if !approxEqual(scores[0].Classic, 1.0) || !approxEqual(scores[0].Harmonic, 1.0) {
		t.Fatalf("pair closeness = %+v", scores[0])
	}
	if scores[1].Classic != 0 || scores[1].Harmonic != 0 {
		t.Fatalf("isolated closeness = %+v", scores[1])
	}
}

func TestClosenessEmptySources(t *testing.T) {
	g := undirected(3, [3]uint32{0, 1, 0})
	if got := Closeness(2, g, nil, traversal.TopDown); len(got) != 0 {
		t.Fatal("non-empty result for empty sources")
	}
}

func TestClosenessCenterBeatsPeriphery(t *testing.T) {
	// Star: hub must have the highest closeness.
	g := undirected(6,
		[3]uint32{0, 1, 0}, [3]uint32{0, 2, 0}, [3]uint32{0, 3, 0},
		[3]uint32{0, 4, 0}, [3]uint32{0, 5, 0})
	scores := Closeness(2, g, []edge.ID{0, 1}, traversal.TopDown)
	if scores[0].Classic <= scores[1].Classic {
		t.Fatalf("hub %v <= leaf %v", scores[0].Classic, scores[1].Classic)
	}
}

func TestClosenessWorkerInvariance(t *testing.T) {
	g := undirected(8,
		[3]uint32{0, 1, 0}, [3]uint32{1, 2, 0}, [3]uint32{2, 3, 0},
		[3]uint32{3, 4, 0}, [3]uint32{4, 5, 0}, [3]uint32{0, 6, 0})
	srcs := []edge.ID{0, 1, 2, 3, 4, 5, 6, 7}
	a := Closeness(1, g, srcs, traversal.TopDown)
	b := Closeness(4, g, srcs, traversal.TopDown)
	for i := range a {
		if math.Abs(a[i].Classic-b[i].Classic) > 1e-12 ||
			math.Abs(a[i].Harmonic-b[i].Harmonic) > 1e-12 {
			t.Fatalf("source %d differs across workers", i)
		}
	}
}

func TestStressPath(t *testing.T) {
	// Path: unique shortest paths => stress == betweenness.
	g := undirected(5, [3]uint32{0, 1, 0}, [3]uint32{1, 2, 0}, [3]uint32{2, 3, 0}, [3]uint32{3, 4, 0})
	stress := Stress(2, g, Options{})
	want := []float64{0, 6, 8, 6, 0}
	for i := range want {
		if !approxEqual(stress[i], want[i]) {
			t.Fatalf("stress[%d] = %v, want %v", i, stress[i], want[i])
		}
	}
}

func TestStressDiamondCountsPaths(t *testing.T) {
	// Diamond 0-1-3, 0-2-3: each middle lies on exactly 1 path per
	// direction of (0,3) -> stress 2, while betweenness is 1.
	g := undirected(4,
		[3]uint32{0, 1, 0}, [3]uint32{0, 2, 0}, [3]uint32{1, 3, 0}, [3]uint32{2, 3, 0})
	stress := Stress(1, g, Options{})
	if !approxEqual(stress[1], 2) || !approxEqual(stress[2], 2) {
		t.Fatalf("diamond stress = %v, want middles = 2", stress)
	}
	bc := Betweenness(1, g, Options{})
	if !approxEqual(bc[1], 1) {
		t.Fatalf("diamond bc = %v", bc[1])
	}
}

func TestStressTemporal(t *testing.T) {
	// Decreasing labels kill the forward temporal path, as in the
	// betweenness test.
	g := undirected(3, [3]uint32{0, 1, 50}, [3]uint32{1, 2, 10})
	stress := Stress(1, g, Options{Temporal: true})
	if !approxEqual(stress[1], 1) {
		t.Fatalf("temporal stress middle = %v, want 1", stress[1])
	}
}

func TestStressWorkerInvariance(t *testing.T) {
	g := undirected(6,
		[3]uint32{0, 1, 0}, [3]uint32{1, 2, 0}, [3]uint32{2, 3, 0},
		[3]uint32{1, 4, 0}, [3]uint32{4, 3, 0}, [3]uint32{3, 5, 0})
	a := Stress(1, g, Options{})
	b := Stress(4, g, Options{})
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatalf("stress[%d] differs across workers: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestStressEmptySources(t *testing.T) {
	g := undirected(3, [3]uint32{0, 1, 0})
	got := Stress(2, g, Options{Sources: []edge.ID{}})
	for _, v := range got {
		if v != 0 {
			t.Fatal("empty sources must give zeros")
		}
	}
}

func TestStressSampledNormalized(t *testing.T) {
	g := undirected(5, [3]uint32{0, 1, 0}, [3]uint32{1, 2, 0}, [3]uint32{2, 3, 0}, [3]uint32{3, 4, 0})
	exact := Stress(1, g, Options{})
	// All sources listed explicitly should equal exact (no scaling since
	// len == n).
	all := []edge.ID{0, 1, 2, 3, 4}
	viaSources := Stress(2, g, Options{Sources: all, Normalize: true})
	for i := range exact {
		if !approxEqual(exact[i], viaSources[i]) {
			t.Fatalf("stress[%d]: %v != %v", i, viaSources[i], exact[i])
		}
	}
}
