package centrality

import (
	"math"
	"testing"

	"snapdyn/internal/csr"
	"snapdyn/internal/edge"
	"snapdyn/internal/rmat"
)

func undirected(n int, es ...[3]uint32) *csr.Graph {
	edges := make([]edge.Edge, len(es))
	for i, e := range es {
		edges[i] = edge.Edge{U: e[0], V: e[1], T: e[2]}
	}
	return csr.FromEdges(2, n, edges, true)
}

func approxEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPathGraphExact(t *testing.T) {
	// Path 0-1-2-3-4: BC (directed both ways counted) of vertex i on a
	// path of n vertices is 2*(i)*(n-1-i).
	g := undirected(5, [3]uint32{0, 1, 0}, [3]uint32{1, 2, 0}, [3]uint32{2, 3, 0}, [3]uint32{3, 4, 0})
	bc := Betweenness(4, g, Options{})
	want := []float64{0, 6, 8, 6, 0}
	for i := range want {
		if !approxEqual(bc[i], want[i]) {
			t.Fatalf("bc[%d] = %v, want %v (all: %v)", i, bc[i], want[i], bc)
		}
	}
}

func TestStarGraphExact(t *testing.T) {
	// Star with hub 0 and 4 leaves: hub lies on all 4*3 leaf pairs.
	g := undirected(5, [3]uint32{0, 1, 0}, [3]uint32{0, 2, 0}, [3]uint32{0, 3, 0}, [3]uint32{0, 4, 0})
	bc := Betweenness(2, g, Options{})
	if !approxEqual(bc[0], 12) {
		t.Fatalf("hub bc = %v, want 12", bc[0])
	}
	for i := 1; i < 5; i++ {
		if !approxEqual(bc[i], 0) {
			t.Fatalf("leaf bc[%d] = %v, want 0", i, bc[i])
		}
	}
}

func TestSigmaSplitting(t *testing.T) {
	// Diamond 0-1-3, 0-2-3: two shortest paths 0..3, each middle vertex
	// carries half of each s-t dependency.
	g := undirected(4,
		[3]uint32{0, 1, 0}, [3]uint32{0, 2, 0}, [3]uint32{1, 3, 0}, [3]uint32{2, 3, 0})
	bc := Betweenness(1, g, Options{})
	if !approxEqual(bc[1], 1) || !approxEqual(bc[2], 1) {
		t.Fatalf("diamond bc = %v, want middles = 1", bc)
	}
}

func TestWorkerCountInvariance(t *testing.T) {
	p := rmat.PaperParams(9, 5*(1<<9), 10, 3)
	edgesL, _ := rmat.Generate(0, p)
	g := csr.FromEdges(4, p.NumVertices(), edgesL, true)
	b1 := Betweenness(1, g, Options{})
	b8 := Betweenness(8, g, Options{})
	for i := range b1 {
		if math.Abs(b1[i]-b8[i]) > 1e-6*(1+math.Abs(b1[i])) {
			t.Fatalf("bc[%d] differs across workers: %v vs %v", i, b1[i], b8[i])
		}
	}
}

func TestTemporalRespectsOrdering(t *testing.T) {
	// Path 0-1-2 with decreasing labels: 0->1 @50, 1->2 @10. The temporal
	// path 0->1->2 is invalid (10 <= 50), so 1 carries no dependency.
	g := undirected(3, [3]uint32{0, 1, 50}, [3]uint32{1, 2, 10})
	static := Betweenness(1, g, Options{})
	if !approxEqual(static[1], 2) {
		t.Fatalf("static middle bc = %v, want 2", static[1])
	}
	temporal := Betweenness(1, g, Options{Temporal: true})
	// Temporally: 0->1 ok, 1->2 from 0 is blocked; 2->1 @10 then 1->0 @50
	// is a valid increasing path. So the middle vertex carries only the
	// 2->0 dependency.
	if !approxEqual(temporal[1], 1) {
		t.Fatalf("temporal middle bc = %v, want 1", temporal[1])
	}
}

func TestTemporalIncreasingPathWorks(t *testing.T) {
	g := undirected(3, [3]uint32{0, 1, 10}, [3]uint32{1, 2, 50})
	temporal := Betweenness(1, g, Options{Temporal: true})
	// 0->1->2 valid (50 > 10); 2->1->0 invalid (10 <= 50).
	if !approxEqual(temporal[1], 1) {
		t.Fatalf("temporal middle bc = %v, want 1", temporal[1])
	}
}

func TestApproximateSampling(t *testing.T) {
	p := rmat.PaperParams(10, 8*(1<<10), 20, 11)
	edgesL, _ := rmat.Generate(0, p)
	g := csr.FromEdges(4, p.NumVertices(), edgesL, true)
	exact := Betweenness(0, g, Options{})
	srcs := SampleSources(g, 256, 7)
	if len(srcs) != 256 {
		t.Fatalf("sampled %d sources", len(srcs))
	}
	approx := Betweenness(0, g, Options{Sources: srcs, Normalize: true})
	// The top exact vertex should rank highly under approximation.
	argmax := 0
	for i := range exact {
		if exact[i] > exact[argmax] {
			argmax = i
		}
	}
	rank := 0
	for i := range approx {
		if approx[i] > approx[argmax] {
			rank++
		}
	}
	if rank > g.N/20 {
		t.Fatalf("exact top vertex ranked %d under approximation", rank)
	}
}

func TestSampleSourcesDistinct(t *testing.T) {
	p := rmat.PaperParams(8, 4*(1<<8), 0, 5)
	edgesL, _ := rmat.Generate(0, p)
	g := csr.FromEdges(2, p.NumVertices(), edgesL, true)
	srcs := SampleSources(g, 50, 1)
	seen := map[edge.ID]bool{}
	for _, s := range srcs {
		if seen[s] {
			t.Fatalf("duplicate source %d", s)
		}
		seen[s] = true
	}
}

func TestEmptySources(t *testing.T) {
	g := undirected(3, [3]uint32{0, 1, 0})
	bc := Betweenness(2, g, Options{Sources: []edge.ID{}})
	for _, v := range bc {
		if v != 0 {
			t.Fatal("empty source set must give zero scores")
		}
	}
}

func TestDisconnectedGraph(t *testing.T) {
	g := undirected(4, [3]uint32{0, 1, 0}, [3]uint32{2, 3, 0})
	bc := Betweenness(2, g, Options{})
	for i, v := range bc {
		if !approxEqual(v, 0) {
			t.Fatalf("bc[%d] = %v on disjoint pairs", i, v)
		}
	}
}
