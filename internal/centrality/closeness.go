package centrality

import (
	"snapdyn/internal/csr"
	"snapdyn/internal/edge"
	"snapdyn/internal/par"
	"snapdyn/internal/traversal"
)

// ClosenessScores holds the two standard closeness variants for a vertex.
type ClosenessScores struct {
	// Classic is (reachable-1) / sum-of-distances within the vertex's
	// component (0 for isolated vertices).
	Classic float64
	// Harmonic is the sum of 1/d(v,t) over reachable t != v, which is
	// well-defined on disconnected graphs.
	Harmonic float64
}

// Closeness computes closeness centrality for each vertex in sources
// (one engine traversal per source, sources partitioned among workers).
// Closeness needs only per-level reach counts, so it observes the
// traversal through the engine's level-end hook alone — no per-vertex
// state, no frontier bookkeeping — and inherits the strategy's pull-step
// savings on saturated levels. The result is indexed like sources.
func Closeness(workers int, g *csr.Graph, sources []edge.ID, strategy traversal.Strategy) []ClosenessScores {
	if workers <= 0 {
		workers = par.MaxWorkers()
	}
	out := make([]ClosenessScores, len(sources))
	if len(sources) == 0 {
		return out
	}
	if workers > len(sources) {
		workers = len(sources)
	}
	par.Workers(workers, func(id int) {
		scratch := traversal.NewScratch()
		res := &traversal.Result{}
		var src [1]uint32
		var sum int64
		var harmonic float64
		var reached int
		opt := traversal.Options{
			Workers:  1,
			Strategy: strategy,
			Hooks: traversal.Hooks{OnLevelEnd: func(level int32, discovered int) bool {
				sum += int64(level) * int64(discovered)
				harmonic += float64(discovered) / float64(level)
				reached += discovered
				return true
			}},
		}
		for i := id; i < len(sources); i += workers {
			sum, harmonic, reached = 0, 0, 0
			src[0] = uint32(sources[i])
			traversal.Run(g, src[:], opt, scratch, res)
			sc := ClosenessScores{Harmonic: harmonic}
			if sum > 0 {
				sc.Classic = float64(reached) / float64(sum)
			}
			out[i] = sc
		}
	})
	return out
}
