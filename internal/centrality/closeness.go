package centrality

import (
	"snapdyn/internal/csr"
	"snapdyn/internal/edge"
	"snapdyn/internal/par"
)

// ClosenessScores holds the two standard closeness variants for a vertex.
type ClosenessScores struct {
	// Classic is (reachable-1) / sum-of-distances within the vertex's
	// component (0 for isolated vertices).
	Classic float64
	// Harmonic is the sum of 1/d(v,t) over reachable t != v, which is
	// well-defined on disconnected graphs.
	Harmonic float64
}

// Closeness computes closeness centrality for each vertex in sources
// (one BFS per source, sources partitioned among workers). The result is
// indexed like sources.
func Closeness(workers int, g *csr.Graph, sources []edge.ID) []ClosenessScores {
	if workers <= 0 {
		workers = par.MaxWorkers()
	}
	out := make([]ClosenessScores, len(sources))
	if len(sources) == 0 {
		return out
	}
	if workers > len(sources) {
		workers = len(sources)
	}
	par.Workers(workers, func(id int) {
		dist := make([]int32, g.N)
		var frontier, next []uint32
		for i := id; i < len(sources); i += workers {
			s := sources[i]
			for j := range dist {
				dist[j] = -1
			}
			dist[s] = 0
			frontier = frontier[:0]
			frontier = append(frontier, uint32(s))
			var sum int64
			var harmonic float64
			reached := 0
			for d := int32(1); len(frontier) > 0; d++ {
				next = next[:0]
				for _, u := range frontier {
					adj, _ := g.Neighbors(u)
					for _, v := range adj {
						if dist[v] == -1 {
							dist[v] = d
							next = append(next, v)
						}
					}
				}
				sum += int64(d) * int64(len(next))
				harmonic += float64(len(next)) / float64(d)
				reached += len(next)
				frontier, next = next, frontier
			}
			sc := ClosenessScores{Harmonic: harmonic}
			if sum > 0 {
				sc.Classic = float64(reached) / float64(sum)
			}
			out[i] = sc
		}
	})
	return out
}
