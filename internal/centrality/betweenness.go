// Package centrality implements betweenness centrality following Brandes'
// algorithm, parallelized as in the paper's prior work (Bader & Madduri,
// ICPP 2006) and extended with the paper's temporal-path formulation:
// the graph traversal stage is modified to follow only temporal paths —
// sequences of edges with strictly increasing time labels — "while the
// dependency-accumulation stage remains unchanged."
//
// The exact algorithm traverses from every vertex; the approximate
// variant of Figure 11 traverses from a random sample of sources and
// extrapolates the scores.
package centrality

import (
	"snapdyn/internal/csr"
	"snapdyn/internal/edge"
	"snapdyn/internal/par"
	"snapdyn/internal/xrand"
)

// Options configures a betweenness computation.
type Options struct {
	// Temporal, when set, restricts traversal to temporal shortest
	// paths: an edge (v, w, t) extends a path ending at v only if t is
	// strictly greater than the label of the edge that reached v (any
	// edge may leave the source).
	Temporal bool
	// Sources, when non-nil, lists the traversal roots (approximate
	// betweenness); nil means every vertex (exact).
	Sources []edge.ID
	// Normalize scales scores by n/|Sources| to extrapolate sampled
	// scores to the full graph, as in the paper's approximate variant.
	Normalize bool
}

// SampleSources draws k distinct random vertices of g with degree > 0
// when possible (traversals from isolated vertices contribute nothing).
func SampleSources(g *csr.Graph, k int, seed uint64) []edge.ID {
	r := xrand.New(seed)
	if k > g.N {
		k = g.N
	}
	seen := make(map[edge.ID]bool, k)
	out := make([]edge.ID, 0, k)
	attempts := 0
	for len(out) < k && attempts < 64*k {
		attempts++
		v := edge.ID(r.Uint32n(uint32(g.N)))
		if seen[v] {
			continue
		}
		if g.Degree(v) == 0 && attempts < 32*k {
			continue
		}
		seen[v] = true
		out = append(out, v)
	}
	return out
}

// Betweenness computes (approximate) betweenness centrality scores. The
// source set is partitioned among workers; each worker accumulates into a
// private score vector, reduced at the end — the coarse-grained
// parallelization that scales best when |Sources| >= workers.
func Betweenness(workers int, g *csr.Graph, opt Options) []float64 {
	if workers <= 0 {
		workers = par.MaxWorkers()
	}
	sources := opt.Sources
	if sources == nil {
		sources = make([]edge.ID, g.N)
		for i := range sources {
			sources[i] = edge.ID(i)
		}
	}
	if len(sources) == 0 {
		return make([]float64, g.N)
	}
	if workers > len(sources) {
		workers = len(sources)
	}
	partial := make([][]float64, workers)
	par.Workers(workers, func(id int) {
		bc := make([]float64, g.N)
		st := newBrandesState(g.N)
		for i := id; i < len(sources); i += workers {
			st.run(g, sources[i], opt.Temporal, bc)
		}
		partial[id] = bc
	})
	out := partial[0]
	for w := 1; w < workers; w++ {
		p := partial[w]
		par.ForBlock(workers, g.N, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] += p[i]
			}
		})
	}
	if opt.Normalize && len(sources) < g.N {
		scale := float64(g.N) / float64(len(sources))
		for i := range out {
			out[i] *= scale
		}
	}
	return out
}

// brandesState holds per-worker scratch reused across sources.
type brandesState struct {
	dist   []int32
	sigma  []float64
	delta  []float64
	arrive []uint32 // temporal: label of the edge that reached v
	order  []uint32 // visit order (stack)
	preds  [][]uint32
}

func newBrandesState(n int) *brandesState {
	return &brandesState{
		dist:   make([]int32, n),
		sigma:  make([]float64, n),
		delta:  make([]float64, n),
		arrive: make([]uint32, n),
		order:  make([]uint32, 0, n),
		preds:  make([][]uint32, n),
	}
}

// run performs one Brandes traversal from s, accumulating dependencies
// into bc.
func (st *brandesState) run(g *csr.Graph, s edge.ID, temporal bool, bc []float64) {
	n := g.N
	for i := 0; i < n; i++ {
		st.dist[i] = -1
		st.sigma[i] = 0
		st.delta[i] = 0
		st.preds[i] = st.preds[i][:0]
	}
	st.order = st.order[:0]
	st.dist[s] = 0
	st.sigma[s] = 1
	st.arrive[s] = 0

	frontier := []uint32{uint32(s)}
	level := int32(0)
	for len(frontier) > 0 {
		level++
		var next []uint32
		for _, u := range frontier {
			st.order = append(st.order, u)
			adj, ts := g.Neighbors(u)
			for i, v := range adj {
				if temporal && u != uint32(s) && ts[i] <= st.arrive[u] {
					// Not a temporal continuation: the edge's label must
					// strictly exceed the label that reached u.
					continue
				}
				switch {
				case st.dist[v] == -1:
					st.dist[v] = level
					st.arrive[v] = ts[i]
					st.sigma[v] = st.sigma[u]
					st.preds[v] = append(st.preds[v], u)
					next = append(next, v)
				case st.dist[v] == level:
					st.sigma[v] += st.sigma[u]
					st.preds[v] = append(st.preds[v], u)
					// Keep the smallest arrival label among shortest
					// temporal paths: it admits the most continuations.
					if temporal && ts[i] < st.arrive[v] {
						st.arrive[v] = ts[i]
					}
				}
			}
		}
		frontier = next
	}
	// Dependency accumulation in reverse visit order (unchanged from the
	// static algorithm, as the paper notes).
	for i := len(st.order) - 1; i >= 0; i-- {
		w := st.order[i]
		coeff := (1 + st.delta[w]) / st.sigma[w]
		for _, v := range st.preds[w] {
			st.delta[v] += st.sigma[v] * coeff
		}
		if w != uint32(s) {
			bc[w] += st.delta[w]
		}
	}
}
