// Package centrality implements betweenness centrality following Brandes'
// algorithm, parallelized as in the paper's prior work (Bader & Madduri,
// ICPP 2006) and extended with the paper's temporal-path formulation:
// the graph traversal stage is modified to follow only temporal paths —
// sequences of edges with strictly increasing time labels — "while the
// dependency-accumulation stage remains unchanged."
//
// The traversal stage is not hand-rolled here: every index (betweenness,
// stress, closeness) drives the shared visitor-hook engine in
// internal/traversal. The Brandes shortest-path DAG (visit order, path
// counts, predecessor lists, temporal arrival labels) is assembled by an
// OnArc hook over a per-worker reused Scratch, so a steady-state
// traversal allocates nothing, and the engine's direction-optimizing
// strategy (bottom-up pull on saturated levels) applies to centrality
// exactly as it does to plain BFS.
//
// The exact algorithm traverses from every vertex; the approximate
// variant of Figure 11 traverses from a random sample of sources and
// extrapolates the scores.
package centrality

import (
	"sync/atomic"

	"snapdyn/internal/csr"
	"snapdyn/internal/edge"
	"snapdyn/internal/par"
	"snapdyn/internal/traversal"
	"snapdyn/internal/xrand"
)

// Options configures a betweenness computation.
type Options struct {
	// Temporal, when set, restricts traversal to temporal shortest
	// paths: an edge (v, w, t) extends a path ending at v only if t is
	// strictly greater than the label of the edge that reached v (any
	// edge may leave the source).
	Temporal bool
	// Sources, when non-nil, lists the traversal roots (approximate
	// betweenness); nil means every vertex (exact).
	Sources []edge.ID
	// Normalize scales scores by n/|Sources| to extrapolate sampled
	// scores to the full graph, as in the paper's approximate variant.
	Normalize bool
	// Strategy selects the traversal engine per source: the classic
	// top-down push (the zero value) or the direction-optimizing
	// push/pull hybrid, which requires a symmetric graph (and symmetric
	// time labels when Temporal is set) exactly as it does for BFS.
	Strategy traversal.Strategy
	// Progress, when set, is called after each completed source
	// traversal with the number of sources finished so far and the
	// total — the polling hook for offline jobs. It is called from
	// worker goroutines and must be safe for concurrent use.
	Progress func(done, total int)
}

// SampleSources draws k distinct random vertices of g, preferring
// vertices with degree > 0 (traversals from isolated vertices contribute
// nothing): isolated vertices are drawn only when fewer than k
// non-isolated ones exist. A partial Fisher-Yates shuffle over the
// degree-filtered candidate pool makes the draw deterministic for a
// given seed and O(n) worst case.
func SampleSources(g *csr.Graph, k int, seed uint64) []edge.ID {
	r := xrand.New(seed)
	if k > g.N {
		k = g.N
	}
	out := make([]edge.ID, 0, k)
	if k <= 0 {
		return out
	}
	// Candidate pool: non-isolated vertices, in id order.
	pool := make([]edge.ID, 0, g.N)
	for v := 0; v < g.N; v++ {
		if g.Degree(edge.ID(v)) > 0 {
			pool = append(pool, edge.ID(v))
		}
	}
	if len(pool) < k {
		// Not enough non-isolated vertices: take them all and fill the
		// remainder from the isolated ones, also uniformly.
		out = append(out, pool...)
		pool = pool[len(pool):]
		for v := 0; v < g.N; v++ {
			if g.Degree(edge.ID(v)) == 0 {
				pool = append(pool, edge.ID(v))
			}
		}
	}
	// Partial Fisher-Yates: the first need swaps of a full shuffle
	// produce a uniform sample without touching the pool's tail.
	need := k - len(out)
	for i := 0; i < need; i++ {
		j := i + r.Intn(len(pool)-i)
		pool[i], pool[j] = pool[j], pool[i]
	}
	return append(out, pool[:need]...)
}

// Betweenness computes (approximate) betweenness centrality scores. The
// source set is partitioned among workers; each worker accumulates into a
// private score vector, reduced at the end — the coarse-grained
// parallelization that scales best when |Sources| >= workers. Each
// per-source traversal runs the shared engine with one worker, so hooks
// execute serially and in level order.
func Betweenness(workers int, g *csr.Graph, opt Options) []float64 {
	if workers <= 0 {
		workers = par.MaxWorkers()
	}
	sources := opt.Sources
	if sources == nil {
		sources = make([]edge.ID, g.N)
		for i := range sources {
			sources[i] = edge.ID(i)
		}
	}
	if len(sources) == 0 {
		return make([]float64, g.N)
	}
	if workers > len(sources) {
		workers = len(sources)
	}
	partial := make([][]float64, workers)
	var done atomic.Int64
	par.Workers(workers, func(id int) {
		bc := make([]float64, g.N)
		st := newBrandesState(g.N)
		for i := id; i < len(sources); i += workers {
			st.run(g, sources[i], opt, bc)
			if opt.Progress != nil {
				opt.Progress(int(done.Add(1)), len(sources))
			}
		}
		partial[id] = bc
	})
	out := partial[0]
	for w := 1; w < workers; w++ {
		p := partial[w]
		par.ForBlock(workers, g.N, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] += p[i]
			}
		})
	}
	if opt.Normalize && len(sources) < g.N {
		scale := float64(g.N) / float64(len(sources))
		for i := range out {
			out[i] *= scale
		}
	}
	return out
}

// brandesState holds per-worker scratch reused across sources: the
// Brandes DAG arrays, the engine arena, and the hook closures, all
// allocated once per worker so steady-state traversals are
// allocation-free.
type brandesState struct {
	sigma    []float64
	delta    []float64
	arrive   []uint32 // temporal: label of the edge that reached v
	order    []uint32 // visit order: source first, then level-sorted
	preds    [][]uint32
	temporal bool
	srcID    uint32
	src      [1]uint32
	scratch  *traversal.Scratch
	res      traversal.Result
	onArc    func(u, v uint32, t uint32, claimed bool)
	gate     traversal.ArcFilter
}

func newBrandesState(n int) *brandesState {
	st := &brandesState{
		sigma:   make([]float64, n),
		delta:   make([]float64, n),
		arrive:  make([]uint32, n),
		order:   make([]uint32, 0, n),
		preds:   make([][]uint32, n),
		scratch: traversal.NewScratch(),
	}
	// The Brandes traversal phase as engine hooks: the claiming arc
	// seeds a vertex's path count, arrival label, and predecessor list;
	// every further same-level arc is a shortest-path DAG tie that adds
	// its tail's path count and predecessor.
	st.onArc = func(u, v uint32, t uint32, claimed bool) {
		if claimed {
			st.order = append(st.order, v)
			st.arrive[v] = t
			st.sigma[v] = st.sigma[u]
			st.preds[v] = append(st.preds[v], u)
			return
		}
		st.sigma[v] += st.sigma[u]
		st.preds[v] = append(st.preds[v], u)
		// Keep the smallest arrival label among shortest temporal
		// paths: it admits the most continuations.
		if st.temporal && t < st.arrive[v] {
			st.arrive[v] = t
		}
	}
	// The temporal-path gate: an edge extends a path ending at u only
	// if its label strictly exceeds the label that reached u (any edge
	// may leave the source).
	st.gate = func(u, _ uint32, t uint32) bool {
		return u == st.srcID || t > st.arrive[u]
	}
	return st
}

// traverse runs the Brandes BFS phase from s on the shared engine,
// leaving the shortest-path DAG (order, sigma, preds, arrive) in st.
// Only state touched by the previous source is cleared, so per-source
// setup is O(previously reached), not O(n).
func (st *brandesState) traverse(g *csr.Graph, s edge.ID, opt Options) {
	for _, v := range st.order {
		st.sigma[v] = 0
		st.delta[v] = 0
		st.preds[v] = st.preds[v][:0]
	}
	st.order = st.order[:0]
	st.temporal = opt.Temporal
	st.srcID = uint32(s)
	st.sigma[s] = 1
	st.arrive[s] = 0
	st.order = append(st.order, uint32(s))
	topt := traversal.Options{
		Workers:  1,
		Strategy: opt.Strategy,
		Hooks:    traversal.Hooks{OnArc: st.onArc},
	}
	if opt.Temporal {
		topt.Arc = st.gate
	}
	st.src[0] = uint32(s)
	traversal.Run(g, st.src[:], topt, st.scratch, &st.res)
}

// run performs one Brandes traversal from s, accumulating dependencies
// into bc.
func (st *brandesState) run(g *csr.Graph, s edge.ID, opt Options, bc []float64) {
	st.traverse(g, s, opt)
	// Dependency accumulation in reverse visit order (unchanged from the
	// static algorithm, as the paper notes).
	for i := len(st.order) - 1; i >= 0; i-- {
		w := st.order[i]
		coeff := (1 + st.delta[w]) / st.sigma[w]
		for _, v := range st.preds[w] {
			st.delta[v] += st.sigma[v] * coeff
		}
		if w != uint32(s) {
			bc[w] += st.delta[w]
		}
	}
}
