package centrality

import (
	"snapdyn/internal/csr"
	"snapdyn/internal/par"
)

// Stress computes stress centrality: the absolute number of shortest
// paths passing through each vertex (betweenness without the σ_st
// normalization), one of the classic indices the paper lists alongside
// closeness and betweenness. The Options semantics match Betweenness:
// temporal restriction, sampled sources, extrapolation, engine strategy.
//
// The accumulation uses the path-count recurrence
// P(v) = Σ_{w ∈ succ(v)} (1 + P(w)), so that σ_sv · P(v) counts the
// shortest s-t paths through v over all t.
func Stress(workers int, g *csr.Graph, opt Options) []float64 {
	if workers <= 0 {
		workers = par.MaxWorkers()
	}
	sources := opt.Sources
	if sources == nil {
		sources = make([]uint32, g.N)
		for i := range sources {
			sources[i] = uint32(i)
		}
	}
	if len(sources) == 0 {
		return make([]float64, g.N)
	}
	if workers > len(sources) {
		workers = len(sources)
	}
	partial := make([][]float64, workers)
	par.Workers(workers, func(id int) {
		sc := make([]float64, g.N)
		st := newBrandesState(g.N)
		for i := id; i < len(sources); i += workers {
			st.runStress(g, sources[i], opt, sc)
		}
		partial[id] = sc
	})
	out := partial[0]
	for w := 1; w < workers; w++ {
		p := partial[w]
		par.ForBlock(workers, g.N, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] += p[i]
			}
		})
	}
	if opt.Normalize && len(sources) < g.N {
		scale := float64(g.N) / float64(len(sources))
		for i := range out {
			out[i] *= scale
		}
	}
	return out
}

// runStress performs one stress-accumulation traversal from s. It reuses
// the engine-driven Brandes BFS phase (identical DAG construction,
// including the temporal-path restriction) and replaces the dependency
// accumulation with the path-count recurrence.
func (st *brandesState) runStress(g *csr.Graph, s uint32, opt Options, stress []float64) {
	st.traverse(g, s, opt)
	// P(v) accumulation in reverse visit order; delta holds P.
	for i := len(st.order) - 1; i >= 0; i-- {
		w := st.order[i]
		for _, v := range st.preds[w] {
			st.delta[v] += 1 + st.delta[w]
		}
		if w != s {
			stress[w] += st.sigma[w] * st.delta[w]
		}
	}
}
