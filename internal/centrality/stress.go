package centrality

import (
	"snapdyn/internal/csr"
	"snapdyn/internal/par"
)

// Stress computes stress centrality: the absolute number of shortest
// paths passing through each vertex (betweenness without the σ_st
// normalization), one of the classic indices the paper lists alongside
// closeness and betweenness. The Options semantics match Betweenness:
// temporal restriction, sampled sources, extrapolation.
//
// The accumulation uses the path-count recurrence
// P(v) = Σ_{w ∈ succ(v)} (1 + P(w)), so that σ_sv · P(v) counts the
// shortest s-t paths through v over all t.
func Stress(workers int, g *csr.Graph, opt Options) []float64 {
	if workers <= 0 {
		workers = par.MaxWorkers()
	}
	sources := opt.Sources
	if sources == nil {
		sources = make([]uint32, g.N)
		for i := range sources {
			sources[i] = uint32(i)
		}
	}
	if len(sources) == 0 {
		return make([]float64, g.N)
	}
	if workers > len(sources) {
		workers = len(sources)
	}
	partial := make([][]float64, workers)
	par.Workers(workers, func(id int) {
		sc := make([]float64, g.N)
		st := newBrandesState(g.N)
		for i := id; i < len(sources); i += workers {
			st.runStress(g, sources[i], opt.Temporal, sc)
		}
		partial[id] = sc
	})
	out := partial[0]
	for w := 1; w < workers; w++ {
		p := partial[w]
		par.ForBlock(workers, g.N, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] += p[i]
			}
		})
	}
	if opt.Normalize && len(sources) < g.N {
		scale := float64(g.N) / float64(len(sources))
		for i := range out {
			out[i] *= scale
		}
	}
	return out
}

// runStress performs one stress-accumulation traversal from s. It reuses
// the Brandes BFS phase (identical DAG construction, including the
// temporal-path restriction) and replaces the dependency accumulation
// with the path-count recurrence.
func (st *brandesState) runStress(g *csr.Graph, s uint32, temporal bool, stress []float64) {
	n := g.N
	for i := 0; i < n; i++ {
		st.dist[i] = -1
		st.sigma[i] = 0
		st.delta[i] = 0
		st.preds[i] = st.preds[i][:0]
	}
	st.order = st.order[:0]
	st.dist[s] = 0
	st.sigma[s] = 1
	st.arrive[s] = 0

	frontier := []uint32{s}
	level := int32(0)
	for len(frontier) > 0 {
		level++
		var next []uint32
		for _, u := range frontier {
			st.order = append(st.order, u)
			adj, ts := g.Neighbors(u)
			for i, v := range adj {
				if temporal && u != s && ts[i] <= st.arrive[u] {
					continue
				}
				switch {
				case st.dist[v] == -1:
					st.dist[v] = level
					st.arrive[v] = ts[i]
					st.sigma[v] = st.sigma[u]
					st.preds[v] = append(st.preds[v], u)
					next = append(next, v)
				case st.dist[v] == level:
					st.sigma[v] += st.sigma[u]
					st.preds[v] = append(st.preds[v], u)
					if temporal && ts[i] < st.arrive[v] {
						st.arrive[v] = ts[i]
					}
				}
			}
		}
		frontier = next
	}
	// P(v) accumulation in reverse visit order; delta holds P.
	for i := len(st.order) - 1; i >= 0; i-- {
		w := st.order[i]
		for _, v := range st.preds[w] {
			st.delta[v] += 1 + st.delta[w]
		}
		if w != s {
			stress[w] += st.sigma[w] * st.delta[w]
		}
	}
}
