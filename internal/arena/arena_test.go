package arena

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestClassSize(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8},
		{16, 16}, {17, 32}, {1023, 1024}, {1024, 1024}, {1025, 2048},
	}
	for _, c := range cases {
		if got := ClassSize(c.n); got != c.want {
			t.Errorf("ClassSize(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestAllocReturnsZeroed(t *testing.T) {
	a := New(0)
	b := a.Alloc(8)
	for i, v := range b {
		if v != 0 {
			t.Fatalf("fresh block entry %d = %d, want 0", i, v)
		}
	}
	for i := range b {
		b[i] = uint64(i) + 1
	}
	a.Free(b)
	b2 := a.Alloc(8)
	for i, v := range b2 {
		if v != 0 {
			t.Fatalf("recycled block entry %d = %d, want 0", i, v)
		}
	}
}

func TestAllocCapacity(t *testing.T) {
	a := New(0)
	if err := quick.Check(func(n uint16) bool {
		want := ClassSize(int(n))
		b := a.Alloc(int(n))
		return len(b) == want && cap(b) == want
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBlocksDoNotOverlap(t *testing.T) {
	a := New(0)
	blocks := make([][]uint64, 0, 100)
	for i := 0; i < 100; i++ {
		b := a.Alloc(16)
		for j := range b {
			b[j] = uint64(i)
		}
		blocks = append(blocks, b)
	}
	for i, b := range blocks {
		for j, v := range b {
			if v != uint64(i) {
				t.Fatalf("block %d entry %d clobbered: %d", i, j, v)
			}
		}
	}
}

func TestRecycle(t *testing.T) {
	a := New(0)
	b := a.Alloc(64)
	a.Free(b)
	b2 := a.Alloc(64)
	if &b[0] != &b2[0] {
		t.Fatal("expected recycled block to be reused")
	}
}

func TestOversizedAlloc(t *testing.T) {
	a := New(0)
	b := a.Alloc(chunkEntries * 2)
	if len(b) < chunkEntries*2 {
		t.Fatalf("oversized alloc returned %d entries", len(b))
	}
}

func TestReserve(t *testing.T) {
	a := New(3 * chunkEntries)
	s := a.Stats()
	if s.EntriesReserved < 3*chunkEntries {
		t.Fatalf("reserved %d entries, want >= %d", s.EntriesReserved, 3*chunkEntries)
	}
	if s.Chunks != 3 {
		t.Fatalf("chunks = %d, want 3", s.Chunks)
	}
}

func TestFreeIgnoresBadBlocks(t *testing.T) {
	a := New(0)
	a.Free(nil)               // empty
	a.Free(make([]uint64, 3)) // not a power of two
	b := a.Alloc(4)
	a.Free(b)
	if got := a.Alloc(4); &got[0] != &b[0] {
		t.Fatal("valid free was not recycled")
	}
}

func TestConcurrentAlloc(t *testing.T) {
	a := New(0)
	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	results := make([][][]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				b := a.Alloc(8)
				for j := range b {
					b[j] = uint64(w)<<32 | uint64(i)
				}
				results[w] = append(results[w], b)
			}
		}(w)
	}
	wg.Wait()
	for w, bs := range results {
		for i, b := range bs {
			for _, v := range b {
				if v != uint64(w)<<32|uint64(i) {
					t.Fatalf("worker %d block %d corrupted", w, i)
				}
			}
		}
	}
}

func TestStatsCounts(t *testing.T) {
	a := New(0)
	a.Alloc(16)
	b := a.Alloc(32)
	a.Free(b)
	s := a.Stats()
	if s.EntriesAllocated != 48 {
		t.Fatalf("allocated = %d, want 48", s.EntriesAllocated)
	}
	if s.EntriesRecycled != 32 {
		t.Fatalf("recycled = %d, want 32", s.EntriesRecycled)
	}
	if s.String() == "" {
		t.Fatal("empty Stats string")
	}
}

func BenchmarkAlloc(b *testing.B) {
	a := New(1 << 22)
	for i := 0; i < b.N; i++ {
		blk := a.Alloc(16)
		a.Free(blk)
	}
}
