// Package arena implements the custom memory-management scheme the paper
// uses for adjacency storage: a large chunk of memory is reserved up
// front, and worker threads carve blocks out of it in a thread-safe way,
// avoiding per-insert allocator (malloc) traffic.
//
// Blocks hold fixed-width uint64 entries (an adjacency entry packs a
// 32-bit neighbor id and a 32-bit time-stamp). Blocks are addressed by
// (chunk, offset) handles so that adjacency metadata stays compact; the
// arena also recycles freed blocks through per-size-class free lists, the
// analogue of the paper's reuse of doubled-away arrays.
package arena

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
)

const (
	// chunkEntries is the number of uint64 entries per backing chunk.
	// 1<<20 entries = 8 MiB per chunk.
	chunkEntries = 1 << 20

	// maxClass is the largest supported size class exponent: blocks of up
	// to 2^maxClass entries. Larger requests get dedicated chunks.
	maxClass = 20
)

// Arena is a thread-safe bump allocator with size-class free lists.
// The zero value is not usable; call New.
type Arena struct {
	mu     sync.Mutex
	chunks [][]uint64
	cur    []uint64 // active chunk
	off    int      // next free entry in cur

	free [maxClass + 1][][]uint64 // recycled blocks per size class

	allocated atomic.Int64 // total entries handed out (statistics)
	recycled  atomic.Int64 // total entries returned
}

// New returns an empty arena. Memory is reserved chunk by chunk on demand;
// reserveEntries (if > 0) pre-allocates capacity for that many entries up
// front, matching the paper's "allocate a large chunk of memory at
// algorithm initiation".
func New(reserveEntries int) *Arena {
	a := &Arena{}
	if reserveEntries > 0 {
		n := (reserveEntries + chunkEntries - 1) / chunkEntries
		for i := 0; i < n; i++ {
			a.chunks = append(a.chunks, make([]uint64, chunkEntries))
		}
		a.cur = a.chunks[0]
	}
	return a
}

// classFor returns the size class (ceil log2) for n entries.
func classFor(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// ClassSize returns the rounded block size for a request of n entries.
func ClassSize(n int) int {
	return 1 << classFor(n)
}

// Alloc returns a zeroed block with capacity at least n entries. The
// returned slice has len == cap == ClassSize(n). Alloc is safe for
// concurrent use.
func (a *Arena) Alloc(n int) []uint64 {
	if n <= 0 {
		n = 1
	}
	c := classFor(n)
	size := 1 << c
	a.allocated.Add(int64(size))

	a.mu.Lock()
	if c <= maxClass {
		if fl := a.free[c]; len(fl) > 0 {
			b := fl[len(fl)-1]
			a.free[c] = fl[:len(fl)-1]
			a.mu.Unlock()
			clear(b)
			return b
		}
	}
	if size > chunkEntries {
		// Oversized: dedicated chunk, not bump-allocated.
		b := make([]uint64, size)
		a.chunks = append(a.chunks, b)
		a.mu.Unlock()
		return b
	}
	if a.cur == nil || a.off+size > len(a.cur) {
		a.cur = make([]uint64, chunkEntries)
		a.chunks = append(a.chunks, a.cur)
		a.off = 0
	}
	b := a.cur[a.off : a.off+size : a.off+size]
	a.off += size
	a.mu.Unlock()
	return b
}

// Free returns a block obtained from Alloc to the arena for reuse. The
// block must not be used after Free. Blocks whose length is not a power of
// two or exceeds the largest size class are dropped (left to the GC).
func (a *Arena) Free(b []uint64) {
	n := len(b)
	if n == 0 || n&(n-1) != 0 {
		return
	}
	c := classFor(n)
	if c > maxClass {
		return
	}
	a.recycled.Add(int64(n))
	a.mu.Lock()
	a.free[c] = append(a.free[c], b)
	a.mu.Unlock()
}

// Stats reports cumulative allocation statistics.
type Stats struct {
	Chunks           int   // backing chunks held
	EntriesAllocated int64 // entries handed out (cumulative)
	EntriesRecycled  int64 // entries returned via Free (cumulative)
	EntriesReserved  int64 // total backing capacity in entries
}

// Stats returns a snapshot of allocation statistics.
func (a *Arena) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	var reserved int64
	for _, c := range a.chunks {
		reserved += int64(len(c))
	}
	return Stats{
		Chunks:           len(a.chunks),
		EntriesAllocated: a.allocated.Load(),
		EntriesRecycled:  a.recycled.Load(),
		EntriesReserved:  reserved,
	}
}

// String implements fmt.Stringer for diagnostics.
func (s Stats) String() string {
	return fmt.Sprintf("arena{chunks=%d reserved=%d alloc=%d recycled=%d}",
		s.Chunks, s.EntriesReserved, s.EntriesAllocated, s.EntriesRecycled)
}
