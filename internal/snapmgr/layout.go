package snapmgr

import (
	"snapdyn/internal/compress"
	"snapdyn/internal/csr"
	"snapdyn/internal/dyngraph"
	"snapdyn/internal/edge"
	"snapdyn/internal/reorder"
)

// Layout selects the storage format a manager publishes its snapshots
// in. Plain is the seed behavior: the store materialized as-is into CSR.
// The reordered layouts publish a CSR whose vertex ids are permuted for
// locality (the permutation and its inverse ride on the View, and every
// facade query translates ids at the boundary so callers only ever see
// original ids). Compressed publishes gap-coded adjacency bytes that the
// traversal engine decodes on the fly (traversal.RunStream).
type Layout int

const (
	// LayoutPlain is the unpermuted CSR snapshot.
	LayoutPlain Layout = iota
	// LayoutDegree relabels hubs-first (reorder.ByDegree).
	LayoutDegree
	// LayoutBFS relabels in BFS visit order from the max-degree vertex
	// (reorder.ByBFS).
	LayoutBFS
	// LayoutRCM relabels by reverse Cuthill-McKee (reorder.ByRCM).
	LayoutRCM
	// LayoutCompressed publishes gap-compressed adjacency
	// (compress.Graph) instead of CSR arrays.
	LayoutCompressed
)

// String names the layout the way the bench figures and /stats report it.
func (l Layout) String() string {
	switch l {
	case LayoutPlain:
		return "plain"
	case LayoutDegree:
		return "degree"
	case LayoutBFS:
		return "bfs"
	case LayoutRCM:
		return "rcm"
	case LayoutCompressed:
		return "compressed"
	}
	return "unknown"
}

// permStaleFrac is the churn threshold for the reordered layouts: once
// the cumulative dirty-vertex count since the permutation was computed
// exceeds this fraction of the vertex set, the locality argument for the
// old ordering has decayed and the next refresh recomputes the
// permutation with a full permuted rebuild instead of splicing deltas
// through the stale one.
const permStaleFrac = 0.30

// View is one published snapshot in its storage layout. Exactly one of
// G (CSR layouts) and C (compressed) is non-nil. For the reordered
// layouts, G lives in permuted id space and Perm/Inv translate:
// layoutID = Perm[origID], origID = Inv[layoutID]; both are nil for
// plain and compressed views (identity). Views are immutable and, like
// the csr snapshots they wrap, reclaimed by GC once the last reader
// drops them.
type View struct {
	G      *csr.Graph
	C      *compress.Graph
	Perm   reorder.Permutation
	Inv    reorder.Permutation
	Layout Layout
}

// NumVertices returns the vertex count of the viewed snapshot.
func (v *View) NumVertices() int {
	if v.C != nil {
		return v.C.N
	}
	return v.G.N
}

// NumEdges returns the arc count of the viewed snapshot.
func (v *View) NumEdges() int64 {
	if v.C != nil {
		return v.C.NumEdges()
	}
	return v.G.NumEdges()
}

// SizeBytes returns the snapshot's in-memory footprint in this layout:
// the graph arrays (or compressed payload plus offsets) and, for
// reordered views, the carried permutation pair.
func (v *View) SizeBytes() int64 {
	var b int64
	if v.C != nil {
		b = v.C.FootprintBytes()
	} else {
		b = v.G.SizeBytes()
	}
	return b + 4*int64(len(v.Perm)) + 4*int64(len(v.Inv))
}

// NewLayout is New publishing snapshots in the given layout: the initial
// materialization and every later Refresh produce that format.
func NewLayout(workers int, store *dyngraph.Tracked, layout Layout) *Manager {
	m := &Manager{store: store, layout: layout}
	m.Refresh(workers)
	return m
}

// Layout returns the storage format this manager publishes.
func (m *Manager) Layout() Layout { return m.layout }

// View returns the latest published snapshot in its storage layout: one
// atomic load, never blocking. Prefer View over Current for layout-aware
// readers; Current remains the plain-CSR accessor and returns nil under
// LayoutCompressed.
func (m *Manager) View() *View { return m.view.Load() }

// materialize builds the next View from the store under the exclusive
// gate. prev is the previously published view (nil on the first call),
// dirty the flushed dirty set. A no-op refresh (the delta rebuild hands
// back the previous representation unchanged) republishes prev itself,
// preserving snapshot identity for caches keyed by the view pointer.
func (m *Manager) materialize(workers int, prev *View, dirty []uint32) *View {
	switch m.layout {
	case LayoutCompressed:
		var base *compress.Graph
		if prev != nil {
			base = prev.C
		}
		c := compress.Refresh(workers, base, m.store, dirty)
		if prev != nil && c == prev.C {
			return prev
		}
		return &View{C: c, Layout: m.layout}
	case LayoutDegree, LayoutBFS, LayoutRCM:
		return m.materializePermuted(workers, prev, dirty)
	default:
		var base *csr.Graph
		if prev != nil {
			base = prev.G
		}
		g := csr.Refresh(workers, base, m.store, dirty)
		if prev != nil && g == prev.G {
			return prev
		}
		return &View{G: g, Layout: LayoutPlain}
	}
}

// materializePermuted handles the reordered layouts: splice deltas
// through the held permutation while it is fresh, recompute it (full
// permuted rebuild) once the vertex set grew or cumulative churn crossed
// permStaleFrac of the vertex count.
func (m *Manager) materializePermuted(workers int, prev *View, dirty []uint32) *View {
	n := m.store.NumVertices()
	m.churn += len(dirty)
	stale := prev == nil || len(prev.Perm) != n ||
		float64(m.churn) > permStaleFrac*float64(n)
	if !stale {
		g := reorder.RefreshPermuted(workers, prev.G, m.store, dirty, prev.Perm, prev.Inv)
		if g == prev.G {
			return prev // no-op refresh: keep the published view's identity
		}
		if g != nil {
			return &View{G: g, Perm: prev.Perm, Inv: prev.Inv, Layout: m.layout}
		}
	}
	plain := csr.FromStore(workers, m.store)
	var perm reorder.Permutation
	switch m.layout {
	case LayoutDegree:
		perm = reorder.ByDegree(plain)
	case LayoutBFS:
		perm = reorder.ByBFS(workers, plain, []uint32{maxDegreeVertex(plain)})
	default:
		perm = reorder.ByRCM(plain)
	}
	inv := perm.Inverse()
	m.churn = 0
	return &View{
		G:      reorder.ApplyInto(workers, plain, perm, inv, nil),
		Perm:   perm,
		Inv:    inv,
		Layout: m.layout,
	}
}

// maxDegreeVertex returns the id of a maximum-out-degree vertex, the BFS
// reordering root (the hub roots the ordering so the giant component
// clusters at the front).
func maxDegreeVertex(g *csr.Graph) uint32 {
	var best uint32
	var bestDeg int64 = -1
	for u := 0; u < g.N; u++ {
		if d := g.Degree(edge.ID(u)); d > bestDeg {
			best, bestDeg = uint32(u), d
		}
	}
	return best
}
