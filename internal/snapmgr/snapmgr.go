// Package snapmgr couples a dirty-tracked dynamic store to an
// epoch-versioned sequence of immutable CSR snapshots — the core of the
// incremental snapshot pipeline. It is RCU-shaped: any number of reader
// goroutines load the current snapshot with one atomic pointer read and
// traverse it without coordination, while a single refresher
// materializes the next snapshot from the store's dirty set
// (csr.Refresh) and publishes it with one atomic pointer store. Old
// snapshots stay valid for the readers still holding them and are
// reclaimed by the garbage collector once the last reference drops —
// there is no explicit release.
package snapmgr

import (
	"sync"
	"sync/atomic"

	"snapdyn/internal/csr"
	"snapdyn/internal/dyngraph"
)

// Manager versions snapshots of one tracked store. Current, Epoch, and
// Staleness may be called from any goroutine at any time; Refresh calls
// serialize on an internal mutex and must not run concurrently with
// store mutations (reading the current snapshot during ingest is always
// safe — that is the point).
type Manager struct {
	store *dyngraph.Tracked
	cur   atomic.Pointer[csr.Graph]
	epoch atomic.Uint64

	mu    sync.Mutex
	dirty []uint32 // reused Flush buffer, guarded by mu
}

// New builds the initial snapshot (a full FromStore materialization of
// everything inserted so far) and returns the manager at epoch 1.
func New(workers int, store *dyngraph.Tracked) *Manager {
	m := &Manager{store: store}
	m.Refresh(workers)
	return m
}

// Store returns the tracked store the manager materializes.
func (m *Manager) Store() *dyngraph.Tracked { return m.store }

// Current returns the latest published snapshot: one atomic load, never
// blocking, safe during concurrent Refresh. The returned graph is
// immutable.
func (m *Manager) Current() *csr.Graph { return m.cur.Load() }

// Epoch returns the number of published materializations; it increases
// monotonically, by exactly one per Refresh.
func (m *Manager) Epoch() uint64 { return m.epoch.Load() }

// Staleness returns the number of vertices whose adjacency changed
// since the snapshot Current returns was cut — the dirty-set size the
// next Refresh will consume.
func (m *Manager) Staleness() int { return m.store.DirtyCount() }

// Refresh materializes and publishes a new snapshot covering every
// update applied so far: it consumes the store's dirty set and rebuilds
// only those adjacencies, reusing the clean spans of the previous
// snapshot (falling back to a full rebuild past the dirty-fraction
// threshold). When nothing changed, the previous snapshot is
// republished unchanged. Concurrent Refresh calls serialize; the epoch
// advances once per call.
func (m *Manager) Refresh(workers int) *csr.Graph {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dirty = m.store.Flush(m.dirty[:0])
	g := csr.Refresh(workers, m.cur.Load(), m.store, m.dirty)
	m.cur.Store(g)
	m.epoch.Add(1)
	return g
}
