// Package snapmgr couples a dirty-tracked dynamic store to an
// epoch-versioned sequence of immutable CSR snapshots — the core of the
// incremental snapshot pipeline. It is RCU-shaped: any number of reader
// goroutines load the current snapshot with one atomic pointer read and
// traverse it without coordination, while a single refresher
// materializes the next snapshot from the store's dirty set
// (csr.Refresh) and publishes it with one atomic pointer store. Old
// snapshots stay valid for the readers still holding them and are
// reclaimed by the garbage collector once the last reference drops —
// there is no explicit release.
package snapmgr

import (
	"sync"
	"sync/atomic"
	"time"

	"snapdyn/internal/csr"
	"snapdyn/internal/dyngraph"
)

// Manager versions snapshots of one tracked store. Current, Epoch,
// Staleness, and Metrics may be called from any goroutine at any time;
// Refresh calls serialize on an internal gate and must not run
// concurrently with store mutations (reading the current snapshot
// during ingest is always safe — that is the point). Mutations applied
// through Ingest take the shared side of that gate, so they serialize
// against Refresh automatically — the contract a background
// auto-refresher (Start/Stop) relies on.
type Manager struct {
	store  *dyngraph.Tracked
	layout Layout
	cur    atomic.Pointer[csr.Graph]
	view   atomic.Pointer[View]
	epoch  atomic.Uint64

	// churn accumulates dirty-vertex counts since the reordered layouts
	// last computed their permutation; written only under the exclusive
	// gate.
	churn int

	// gate serializes refresh (exclusive) against ingest (shared):
	// concurrent Ingest calls proceed together, none overlaps a
	// Refresh. It also protects the reused dirty Flush buffer, written
	// only under the exclusive side.
	gate  sync.RWMutex
	dirty []uint32

	lastPub atomic.Int64 // UnixNano of the last publication

	// pubCh holds the channel the next publication closes — the
	// broadcast primitive behind WaitEpoch. Lazily created; swapped
	// and closed by broadcast().
	pubCh atomic.Pointer[chan struct{}]

	metMu sync.Mutex
	met   Metrics // counters only; lag fields filled by Metrics()

	autoMu sync.Mutex
	stopCh chan struct{}
	doneCh chan struct{}
}

// New builds the initial snapshot (a full FromStore materialization of
// everything inserted so far) and returns the manager at epoch 1,
// publishing plain CSR snapshots. NewLayout selects another storage
// format.
func New(workers int, store *dyngraph.Tracked) *Manager {
	return NewLayout(workers, store, LayoutPlain)
}

// Store returns the tracked store the manager materializes.
func (m *Manager) Store() *dyngraph.Tracked { return m.store }

// Current returns the latest published snapshot as a CSR graph: one
// atomic load, never blocking, safe during concurrent Refresh. The
// returned graph is immutable. For the reordered layouts the graph is
// in permuted id space (use View for the translation tables); under
// LayoutCompressed there is no CSR and Current returns nil — layout-
// aware readers should use View.
func (m *Manager) Current() *csr.Graph { return m.cur.Load() }

// Epoch returns the number of published materializations; it increases
// monotonically, by exactly one per Refresh.
func (m *Manager) Epoch() uint64 { return m.epoch.Load() }

// Staleness returns the number of vertices whose adjacency changed
// since the snapshot Current returns was cut — the dirty-set size the
// next Refresh will consume.
func (m *Manager) Staleness() int { return m.store.DirtyCount() }

// Refresh materializes and publishes a new snapshot covering every
// update applied so far: it consumes the store's dirty set and rebuilds
// only those adjacencies, reusing the clean spans of the previous
// snapshot (falling back to a full rebuild past the dirty-fraction
// threshold). When nothing changed, the previous snapshot is
// republished unchanged. Concurrent Refresh calls serialize; the epoch
// advances once per call.
func (m *Manager) Refresh(workers int) *csr.Graph {
	m.gate.Lock()
	start := time.Now()
	m.dirty = m.store.Flush(m.dirty[:0])
	consumed := len(m.dirty)
	v := m.materialize(workers, m.view.Load(), m.dirty)
	m.view.Store(v)
	m.cur.Store(v.G)
	g := v.G
	m.epoch.Add(1)
	m.lastPub.Store(time.Now().UnixNano())
	m.broadcast()

	// Record metrics before releasing the gate: refreshes serialize on
	// it, so Last* always describes the most recently published epoch
	// (a delayed post-unlock update could land after a later refresh's).
	lat := time.Since(start)
	m.metMu.Lock()
	m.met.Refreshes++
	m.met.LastDirty = consumed
	m.met.LastLatency = lat
	m.met.TotalLatency += lat
	if lat > m.met.MaxLatency {
		m.met.MaxLatency = lat
	}
	m.metMu.Unlock()
	m.gate.Unlock()
	return g
}
