package snapmgr

import (
	"time"

	"snapdyn/internal/dyngraph"
)

// Policy configures the background auto-refresher: when a dirty-vertex
// threshold or a staleness age is crossed, the refresher materializes
// and publishes a new snapshot on its own, so serving layers treat
// refresh as a policy rather than a call site. The zero value refreshes
// whenever any update is pending, checked every default poll interval.
type Policy struct {
	// MaxDirty triggers a refresh as soon as Staleness() reaches this
	// many dirty vertices. <= 0 disables the dirty trigger (unless
	// MaxAge is also unset, in which case any dirt triggers).
	MaxDirty int
	// MaxAge triggers a refresh once this much time has passed since
	// the last publication while updates are pending. <= 0 disables the
	// age trigger.
	MaxAge time.Duration
	// Poll is how often the refresher checks the triggers; <= 0 derives
	// a default (MaxAge/8, floored at 1ms, or 5ms when MaxAge is unset).
	Poll time.Duration
	// Workers is the parallelism of each background refresh; <= 0 means
	// GOMAXPROCS.
	Workers int
}

// poll returns the effective trigger-check interval.
func (p Policy) poll() time.Duration {
	if p.Poll > 0 {
		return p.Poll
	}
	if p.MaxAge > 0 {
		if d := p.MaxAge / 8; d > time.Millisecond {
			return d
		}
		return time.Millisecond
	}
	return 5 * time.Millisecond
}

// Metrics is a consistent snapshot of the manager's refresh behavior:
// how often snapshots were published, what each refresh cost, and how
// far the published snapshot lags the live store right now.
type Metrics struct {
	// Refreshes counts every publication (manual and automatic),
	// including the initial materialization.
	Refreshes uint64
	// AutoRefreshes counts publications initiated by the background
	// refresher; DirtyTriggered and AgeTriggered split them by which
	// policy trigger fired (dirty wins ties).
	AutoRefreshes  uint64
	DirtyTriggered uint64
	AgeTriggered   uint64
	// LastDirty is the dirty-vertex count the most recent refresh
	// consumed — the delta-rebuild work it did.
	LastDirty int
	// LastLatency, MaxLatency, and TotalLatency describe the wall-clock
	// cost of refreshes (flush + materialize + publish).
	LastLatency  time.Duration
	MaxLatency   time.Duration
	TotalLatency time.Duration
	// Epoch is the published snapshot version; Staleness the pending
	// dirty-vertex count and Age the time since the last publication —
	// together the epoch lag between Current() and the live store.
	Epoch     uint64
	Staleness int
	Age       time.Duration
	// SnapshotBytes is the in-memory footprint of the published snapshot
	// in its storage layout (View.SizeBytes), and Format that layout's
	// name — the per-format memory accounting operators read off /stats.
	SnapshotBytes int64
	Format        string
	// CacheHits..CacheBytes describe the serving layer's
	// snapshot-identity result cache (internal/qcache); all zero when
	// caching is disabled. The manager itself never touches them — the
	// executor overlays its cache counters so one Metrics value carries
	// the whole pipeline's health.
	CacheHits      uint64
	CacheMisses    uint64
	CacheCoalesced uint64
	CacheEvictions uint64
	CacheBytes     int64
}

// Ingest runs fn(store) under the ingest side of the refresh gate:
// any number of Ingest calls may run concurrently (the store's own
// mutation methods are concurrency-safe), but none overlaps a Refresh.
// Routing all mutations through Ingest is what makes a background
// auto-refresher safe; mutating the store directly remains fine only
// when the caller serializes against Refresh some other way.
func (m *Manager) Ingest(fn func(*dyngraph.Tracked)) {
	m.gate.RLock()
	defer m.gate.RUnlock()
	fn(m.store)
}

// Start launches the background auto-refresher under p. It reports
// false (and does nothing) when one is already running. While the
// refresher runs, all store mutations must go through Ingest — the
// refresher takes the write side of the same gate, preserving the
// single-writer refresh contract without a stop-the-world ingest.
func (m *Manager) Start(p Policy) bool {
	m.autoMu.Lock()
	defer m.autoMu.Unlock()
	if m.stopCh != nil {
		return false
	}
	if p.MaxDirty <= 0 && p.MaxAge <= 0 {
		p.MaxDirty = 1 // zero policy: refresh whenever anything is dirty
	}
	stop, done := make(chan struct{}), make(chan struct{})
	m.stopCh, m.doneCh = stop, done
	go m.autoLoop(p, stop, done)
	return true
}

// Stop halts the background refresher and waits for it to exit. Updates
// still pending stay pending until the next Refresh (manual or a later
// Start). Stop is a no-op when no refresher is running.
func (m *Manager) Stop() {
	m.autoMu.Lock()
	stop, done := m.stopCh, m.doneCh
	m.stopCh, m.doneCh = nil, nil
	m.autoMu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// autoLoop is the background refresher: poll the triggers, refresh when
// one fires, account the trigger. Refresh itself records the latency
// metrics shared with manual refreshes.
func (m *Manager) autoLoop(p Policy, stop, done chan struct{}) {
	defer close(done)
	tick := time.NewTicker(p.poll())
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		dirty := m.Staleness()
		if dirty == 0 {
			continue
		}
		byDirty := p.MaxDirty > 0 && dirty >= p.MaxDirty
		byAge := p.MaxAge > 0 && time.Since(time.Unix(0, m.lastPub.Load())) >= p.MaxAge
		if !byDirty && !byAge {
			continue
		}
		m.Refresh(p.Workers)
		m.metMu.Lock()
		m.met.AutoRefreshes++
		if byDirty {
			m.met.DirtyTriggered++
		} else {
			m.met.AgeTriggered++
		}
		m.metMu.Unlock()
	}
}

// Metrics returns a snapshot of the refresh counters plus the current
// epoch lag (pending dirty count and time since the last publication).
func (m *Manager) Metrics() Metrics {
	m.metMu.Lock()
	out := m.met
	m.metMu.Unlock()
	out.Epoch = m.Epoch()
	out.Staleness = m.Staleness()
	out.Age = time.Since(time.Unix(0, m.lastPub.Load()))
	if v := m.View(); v != nil {
		out.SnapshotBytes = v.SizeBytes()
	}
	out.Format = m.layout.String()
	return out
}
