package snapmgr

import (
	"testing"
	"time"

	"snapdyn/internal/dyngraph"
	"snapdyn/internal/edge"
)

func newStore(n int) *dyngraph.Tracked {
	return dyngraph.NewTracked(dyngraph.NewHybrid(n, 8*n, 0, 1))
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", msg)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAutoRefreshDirtyTrigger(t *testing.T) {
	store := newStore(64)
	m := New(0, store)
	if !m.Start(Policy{MaxDirty: 4, Poll: time.Millisecond}) {
		t.Fatal("Start returned false on first call")
	}
	defer m.Stop()
	if m.Start(Policy{}) {
		t.Fatal("second Start must report false")
	}

	// Below the threshold: no refresh even after several polls.
	m.Ingest(func(s *dyngraph.Tracked) { s.Insert(1, 2, 10) })
	time.Sleep(20 * time.Millisecond)
	if e := m.Epoch(); e != 1 {
		t.Fatalf("epoch = %d after sub-threshold dirt, want 1", e)
	}

	// Crossing it: the background refresher publishes on its own.
	m.Ingest(func(s *dyngraph.Tracked) {
		s.Insert(3, 4, 10)
		s.Insert(5, 6, 10)
		s.Insert(7, 8, 10)
	})
	waitFor(t, 2*time.Second, func() bool { return m.Epoch() >= 2 }, "dirty-triggered refresh")
	waitFor(t, 2*time.Second, func() bool { return m.Staleness() == 0 }, "dirty set consumed")
	if g := m.Current(); g.NumEdges() != 4 {
		t.Fatalf("snapshot has %d arcs, want 4", g.NumEdges())
	}
	met := m.Metrics()
	if met.AutoRefreshes == 0 || met.DirtyTriggered == 0 {
		t.Fatalf("metrics = %+v, want dirty-triggered auto refresh counted", met)
	}
}

func TestAutoRefreshAgeTrigger(t *testing.T) {
	store := newStore(64)
	m := New(0, store)
	// Huge dirty threshold: only the age trigger can fire.
	if !m.Start(Policy{MaxDirty: 1 << 30, MaxAge: 10 * time.Millisecond, Poll: time.Millisecond}) {
		t.Fatal("Start returned false")
	}
	defer m.Stop()

	m.Ingest(func(s *dyngraph.Tracked) { s.Insert(1, 2, 10) })
	waitFor(t, 2*time.Second, func() bool { return m.Epoch() >= 2 }, "age-triggered refresh")
	met := m.Metrics()
	if met.AgeTriggered == 0 {
		t.Fatalf("metrics = %+v, want age-triggered refresh counted", met)
	}
	if g := m.Current(); g.NumEdges() != 1 {
		t.Fatalf("snapshot has %d arcs, want 1", g.NumEdges())
	}
}

func TestAutoRefreshZeroPolicyRefreshesOnAnyDirt(t *testing.T) {
	store := newStore(64)
	m := New(0, store)
	if !m.Start(Policy{Poll: time.Millisecond}) {
		t.Fatal("Start returned false")
	}
	defer m.Stop()
	m.Ingest(func(s *dyngraph.Tracked) { s.Insert(9, 10, 1) })
	waitFor(t, 2*time.Second, func() bool { return m.Epoch() >= 2 }, "zero-policy refresh")
}

func TestStopHaltsRefresher(t *testing.T) {
	store := newStore(64)
	m := New(0, store)
	m.Start(Policy{Poll: time.Millisecond})
	m.Stop()
	m.Stop() // idempotent

	m.Ingest(func(s *dyngraph.Tracked) { s.Insert(1, 2, 10) })
	time.Sleep(20 * time.Millisecond)
	if e := m.Epoch(); e != 1 {
		t.Fatalf("epoch advanced to %d after Stop, want 1", e)
	}
	if m.Staleness() != 1 {
		t.Fatalf("staleness = %d, want 1 (pending until next refresh)", m.Staleness())
	}
	// A restart picks the pending updates up.
	if !m.Start(Policy{Poll: time.Millisecond}) {
		t.Fatal("restart after Stop must succeed")
	}
	defer m.Stop()
	waitFor(t, 2*time.Second, func() bool { return m.Staleness() == 0 }, "restarted refresher")
}

func TestRefreshMetricsLatencies(t *testing.T) {
	store := newStore(256)
	m := New(0, store)
	for i := 0; i < 3; i++ {
		m.Ingest(func(s *dyngraph.Tracked) { s.Insert(edge.ID(2*i), edge.ID(2*i+1), 5) })
		m.Refresh(0)
	}
	met := m.Metrics()
	if met.Refreshes != 4 { // initial + 3 manual
		t.Fatalf("refreshes = %d, want 4", met.Refreshes)
	}
	if met.LastDirty != 1 {
		t.Fatalf("last dirty = %d, want 1", met.LastDirty)
	}
	if met.TotalLatency < met.MaxLatency || met.MaxLatency < met.LastLatency && met.LastLatency > met.TotalLatency {
		t.Fatalf("latency accounting inconsistent: %+v", met)
	}
	if met.Epoch != 4 || met.Staleness != 0 {
		t.Fatalf("lag fields wrong: %+v", met)
	}
}
