package snapmgr

import (
	"errors"
	"testing"
	"time"

	"snapdyn/internal/dyngraph"
)

func newMgr(t *testing.T) *Manager {
	t.Helper()
	return New(2, newStore(64))
}

func TestIngestEpochContainsBatch(t *testing.T) {
	m := newMgr(t)
	e := m.IngestEpoch(func(s *dyngraph.Tracked) {
		s.Insert(1, 2, 10)
	})
	if e != m.Epoch()+1 {
		t.Fatalf("ack epoch %d, want %d", e, m.Epoch()+1)
	}
	m.Refresh(2)
	if m.Epoch() != e {
		t.Fatalf("published epoch %d, want ack epoch %d", m.Epoch(), e)
	}
	// The snapshot at the ack epoch must contain the arc.
	adj, ts := m.Current().Neighbors(1)
	found := false
	for i, v := range adj {
		if v == 2 && ts[i] == 10 {
			found = true
		}
	}
	if !found {
		t.Fatal("acked arc missing from the ack-epoch snapshot")
	}
}

func TestIngestEpochNoopReturnsCurrent(t *testing.T) {
	m := newMgr(t)
	cur := m.Epoch()
	e := m.IngestEpoch(func(s *dyngraph.Tracked) {
		s.Delete(3, 4) // miss: nothing dirty
	})
	if e != cur {
		t.Fatalf("no-op ack epoch %d, want current %d — waiters would hang", e, cur)
	}
}

func TestWaitEpochAlreadySatisfied(t *testing.T) {
	m := newMgr(t)
	e, err := m.WaitEpoch(m.Epoch(), 0)
	if err != nil || e < 1 {
		t.Fatalf("WaitEpoch on current: %d, %v", e, err)
	}
}

func TestWaitEpochWakesOnRefresh(t *testing.T) {
	m := newMgr(t)
	target := m.Epoch() + 1
	done := make(chan error, 1)
	go func() {
		_, err := m.WaitEpoch(target, 5*time.Second)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	m.IngestEpoch(func(s *dyngraph.Tracked) { s.Insert(1, 2, 0) })
	m.Refresh(2)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitEpoch never woke")
	}
}

func TestWaitEpochTimeout(t *testing.T) {
	m := newMgr(t)
	start := time.Now()
	e, err := m.WaitEpoch(m.Epoch()+100, 20*time.Millisecond)
	if !errors.Is(err, ErrEpochWaitTimeout) {
		t.Fatalf("err %v, want ErrEpochWaitTimeout", err)
	}
	if e != m.Epoch() {
		t.Fatalf("timeout returned epoch %d, want latest %d", e, m.Epoch())
	}
	if time.Since(start) > 2*time.Second {
		t.Fatalf("timeout took %v", time.Since(start))
	}
}

func TestSetEpochBase(t *testing.T) {
	m := newMgr(t)
	m.SetEpochBase(50)
	if m.Epoch() != 50 {
		t.Fatalf("epoch %d, want 50", m.Epoch())
	}
	m.SetEpochBase(10) // lower: ignored
	if m.Epoch() != 50 {
		t.Fatalf("epoch lowered to %d", m.Epoch())
	}
	// Waiters below the new base wake on re-base.
	done := make(chan struct{})
	go func() {
		m.WaitEpoch(60, 5*time.Second)
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	m.SetEpochBase(60)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("WaitEpoch did not wake on SetEpochBase")
	}
	// Refresh keeps counting from the base.
	m.IngestEpoch(func(s *dyngraph.Tracked) { s.Insert(1, 2, 0) })
	m.Refresh(2)
	if m.Epoch() != 61 {
		t.Fatalf("epoch after refresh %d, want 61", m.Epoch())
	}
}
