package snapmgr

import (
	"errors"
	"time"

	"snapdyn/internal/dyngraph"
)

// ErrEpochWaitTimeout is returned by WaitEpoch when the requested
// epoch is not published within the timeout.
var ErrEpochWaitTimeout = errors.New("snapmgr: epoch wait timeout")

// IngestEpoch is Ingest returning the epoch whose snapshot is
// guaranteed to contain fn's mutations: the ack epoch of the durable
// ingest path. While fn runs the shared gate is held, so no Refresh
// can interleave between mutating the store and reading the epoch —
// the next publication (current epoch + 1) must consume the dirty set
// fn produced. When fn left nothing dirty (e.g. a batch of deletes
// that all missed) the *current* epoch already reflects it, and
// returning that avoids making callers wait for a refresh that may
// never be triggered.
func (m *Manager) IngestEpoch(fn func(*dyngraph.Tracked)) uint64 {
	m.gate.RLock()
	defer m.gate.RUnlock()
	fn(m.store)
	if m.store.DirtyCount() == 0 {
		return m.epoch.Load()
	}
	return m.epoch.Load() + 1
}

// WaitEpoch blocks until the published epoch reaches min, returning
// the epoch observed. timeout <= 0 waits indefinitely; otherwise
// ErrEpochWaitTimeout reports that min did not arrive in time (the
// returned epoch is still the latest observed). Together with the ack
// epoch from the ingest path this gives read-your-writes: wait for
// the ack's epoch, then query the current view.
func (m *Manager) WaitEpoch(min uint64, timeout time.Duration) (uint64, error) {
	if e := m.epoch.Load(); e >= min {
		return e, nil
	}
	var timeC <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timeC = t.C
	}
	for {
		// Grab the publication channel before re-checking the epoch:
		// a publication after the check closes this channel, so the
		// wakeup cannot be missed.
		ch := m.pubChan()
		if e := m.epoch.Load(); e >= min {
			return e, nil
		}
		select {
		case <-ch:
		case <-timeC:
			return m.epoch.Load(), ErrEpochWaitTimeout
		}
	}
}

// SetEpochBase raises the published epoch counter to at least e
// without publishing anything — lower values are ignored. It exists
// for crash recovery: a restarted manager starts over at epoch 1, and
// re-basing to (at least) the epoch recorded in the checkpoint keeps
// the epochs clients hold from a previous life monotone with the new
// one, so a pre-crash ack epoch never reads as "already published"
// when it is not.
func (m *Manager) SetEpochBase(e uint64) {
	for {
		cur := m.epoch.Load()
		if cur >= e {
			return
		}
		if m.epoch.CompareAndSwap(cur, e) {
			m.broadcast() // waiters below e are now satisfied
			return
		}
	}
}

// pubChan returns the channel the next publication will close,
// creating it if no publication has installed one yet.
func (m *Manager) pubChan() chan struct{} {
	for {
		if p := m.pubCh.Load(); p != nil {
			return *p
		}
		ch := make(chan struct{})
		if m.pubCh.CompareAndSwap(nil, &ch) {
			return ch
		}
	}
}

// broadcast wakes every WaitEpoch by closing the current publication
// channel and installing a fresh one.
func (m *Manager) broadcast() {
	ch := make(chan struct{})
	if old := m.pubCh.Swap(&ch); old != nil {
		close(*old)
	}
}
