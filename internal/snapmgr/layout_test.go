package snapmgr

import (
	"sort"
	"testing"

	"snapdyn/internal/csr"
	"snapdyn/internal/dyngraph"
	"snapdyn/internal/edge"
	"snapdyn/internal/xrand"
)

// arcSet returns u's (head, ts) arcs in original id space, sorted, for
// whichever representation the view holds.
func arcSet(v *View, u uint32) [][2]uint32 {
	var out [][2]uint32
	if v.C != nil {
		v.C.Neighbors(edge.ID(u), func(w edge.ID, t uint32) bool {
			out = append(out, [2]uint32{w, t})
			return true
		})
	} else {
		lu := u
		if v.Perm != nil {
			lu = v.Perm[u]
		}
		adj, ts := v.G.Neighbors(edge.ID(lu))
		for i := range adj {
			head := adj[i]
			if v.Inv != nil {
				head = v.Inv[head]
			}
			out = append(out, [2]uint32{head, ts[i]})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a][0] != out[b][0] {
			return out[a][0] < out[b][0]
		}
		return out[a][1] < out[b][1]
	})
	return out
}

// TestLayoutsStayEquivalentUnderChurn drives one store through repeated
// ingest/refresh cycles with a manager per layout and asserts every
// published view stays arc-for-arc identical to the plain manager's
// snapshot (translated back to original ids) — including across the
// churn threshold that forces the reordered layouts to recompute their
// permutation, and through the compressed delta splice.
func TestLayoutsStayEquivalentUnderChurn(t *testing.T) {
	const n = 256
	layouts := []Layout{LayoutPlain, LayoutDegree, LayoutBFS, LayoutRCM, LayoutCompressed}
	stores := make([]*struct {
		m *Manager
	}, len(layouts))
	r := xrand.New(99)
	// Shared initial edge batch, replayed into each layout's own store
	// (managers own their stores; updates are mirrored below).
	type arc struct{ u, v, t uint32 }
	var batch []arc
	for i := 0; i < 1500; i++ {
		batch = append(batch, arc{r.Uint32n(n), r.Uint32n(n), r.Uint32n(100)})
	}
	for i, l := range layouts {
		s := newStore(n)
		for _, a := range batch {
			s.Insert(a.u, a.v, a.t)
			s.Insert(a.v, a.u, a.t)
		}
		stores[i] = &struct{ m *Manager }{NewLayout(2, s, l)}
	}
	check := func(round int) {
		plain := stores[0].m.View()
		for i, l := range layouts[1:] {
			v := stores[i+1].m.View()
			if v.NumVertices() != plain.NumVertices() || v.NumEdges() != plain.NumEdges() {
				t.Fatalf("round %d %v: shape %d/%d, want %d/%d", round, l,
					v.NumVertices(), v.NumEdges(), plain.NumVertices(), plain.NumEdges())
			}
			for u := uint32(0); u < n; u++ {
				got, want := arcSet(v, u), arcSet(plain, u)
				if len(got) != len(want) {
					t.Fatalf("round %d %v: vertex %d degree %d, want %d", round, l, u, len(got), len(want))
				}
				for k := range want {
					if got[k] != want[k] {
						t.Fatalf("round %d %v: vertex %d arc %d: %v != %v", round, l, u, k, got[k], want[k])
					}
				}
			}
		}
	}
	check(0)
	// Churn: small rounds first (delta paths), then a huge round that
	// trips both the dirty-fraction fallback and the permutation-staleness
	// threshold.
	for round := 1; round <= 6; round++ {
		edits := 10
		if round == 5 {
			edits = 600
		}
		var updates []arc
		for i := 0; i < edits; i++ {
			updates = append(updates, arc{r.Uint32n(n), r.Uint32n(n), r.Uint32n(100)})
		}
		for _, st := range stores {
			st.m.Ingest(func(s *dyngraph.Tracked) {
				for _, a := range updates {
					s.Insert(a.u, a.v, a.t)
					s.Insert(a.v, a.u, a.t)
				}
			})
			st.m.Refresh(2)
		}
		check(round)
	}
}

func TestLayoutMetricsBytes(t *testing.T) {
	const n = 512
	build := func(l Layout) *Manager {
		s := newStore(n)
		r := xrand.New(7)
		for i := 0; i < 4000; i++ {
			u, v, ts := r.Uint32n(n), r.Uint32n(n), r.Uint32n(50)
			s.Insert(u, v, ts)
			s.Insert(v, u, ts)
		}
		return NewLayout(2, s, l)
	}
	plain := build(LayoutPlain)
	comp := build(LayoutCompressed)
	rcm := build(LayoutRCM)
	pm, cm, rm := plain.Metrics(), comp.Metrics(), rcm.Metrics()
	if pm.SnapshotBytes <= 0 || cm.SnapshotBytes <= 0 || rm.SnapshotBytes <= 0 {
		t.Fatalf("SnapshotBytes unset: plain %d, compressed %d, rcm %d",
			pm.SnapshotBytes, cm.SnapshotBytes, rm.SnapshotBytes)
	}
	if pm.Format != "plain" || cm.Format != "compressed" || rm.Format != "rcm" {
		t.Fatalf("formats %q/%q/%q", pm.Format, cm.Format, rm.Format)
	}
	if cm.SnapshotBytes >= pm.SnapshotBytes {
		t.Fatalf("compressed snapshot (%d B) not smaller than plain (%d B)",
			cm.SnapshotBytes, pm.SnapshotBytes)
	}
	// The reordered view carries perm+inv on top of the CSR arrays.
	if rm.SnapshotBytes <= pm.SnapshotBytes {
		t.Fatalf("reordered snapshot (%d B) should exceed plain (%d B) by the permutation pair",
			rm.SnapshotBytes, pm.SnapshotBytes)
	}
	if plain.Layout() != LayoutPlain || comp.Layout() != LayoutCompressed {
		t.Fatal("Layout() accessor wrong")
	}
	if comp.Current() != nil {
		t.Fatal("Current() must be nil under LayoutCompressed")
	}
	if comp.View().C == nil || plain.View().G == nil {
		t.Fatal("View() missing representation")
	}
	var _ *csr.Graph = plain.Current()
}
