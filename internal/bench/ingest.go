package bench

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"snapdyn/internal/batcher"
	"snapdyn/internal/durable"
	"snapdyn/internal/dyngraph"
	"snapdyn/internal/edge"
	"snapdyn/internal/qserve"
	"snapdyn/internal/snapmgr"
	"snapdyn/internal/stream"
	"snapdyn/internal/timing"
)

// FigIngest prices durability: sustained ingest MUPS through the
// direct gated apply (volatile baseline) versus through the
// group-commit WAL (every acknowledged batch framed, CRC'd, and
// fsynced before the ack), both under the same concurrent query load,
// followed by a measured crash recovery — reopen the log directory the
// WAL phase left behind and time checkpoint load + tail replay.
//
// Load shape per phase: `submitters` goroutines push fixed-size churn
// batches as fast as acks return while qworkers query workers run a
// BFS mix through the executor pool and the auto-refresher republishes
// snapshots by policy. The WAL phase reports the group-commit ratio
// (updates per fsync) alongside MUPS — that amortization is the whole
// design, so the figure records it.
//
// The recovery row reopens the directory exactly as snapserve -wal-dir
// would after a kill -9: checkpoint load plus replay of every record
// after it, reported as recovery wall-clock and replayed updates.
func FigIngest(cfg Config, qworkers int, perPoint time.Duration) *timing.Table {
	if qworkers <= 0 {
		qworkers = 2
	}
	if perPoint <= 0 {
		perPoint = time.Second
	}
	n := cfg.n()
	edges := cfg.generate()
	extraCfg := cfg
	extraCfg.Seed += 77
	extra := extraCfg.generate()
	ws := cfg.workers()
	iw := ws[len(ws)-1]
	const submitters = 4
	const batchSize = 1024

	t := &timing.Table{
		Title: "Ingest durability: group-commit WAL vs volatile gate, and crash recovery",
		Note: cfg.instanceNote() + fmt.Sprintf(
			" (undirected), %d submitters x %d-update batches, %d query workers, %s per phase",
			submitters, batchSize, qworkers, perPoint),
	}

	churn := churnBatches(extra, batchSize/2) // mirrored: /2 keeps batches at batchSize
	boot := stream.Mirror(stream.Inserts(edges))
	policy := snapmgr.Policy{
		MaxDirty: max(1, n/100),
		MaxAge:   50 * time.Millisecond,
		Poll:     2 * time.Millisecond,
		Workers:  iw,
	}

	// Phase 1: volatile baseline — the pre-WAL ingest path, applied
	// through the refresh gate with no persistence.
	{
		store := dyngraph.NewTracked(dyngraph.NewHybrid(n, 4*len(edges), 0, cfg.Seed))
		store.ApplyBatch(iw, boot)
		mgr := snapmgr.New(iw, store)
		mgr.Start(policy)
		applied, elapsed := drive(mgr, qworkers, perPoint, func(b []edge.Update) error {
			mgr.IngestEpoch(func(s *dyngraph.Tracked) { s.ApplyBatch(iw, b) })
			return nil
		}, churn, submitters)
		mgr.Stop()
		t.Add(timing.Measurement{
			Label: "ingest-volatile",
			Param: fmt.Sprintf("mups=%.2f", float64(applied)/elapsed/1e6),
			Ops:   applied, Workers: submitters, Seconds: elapsed,
		})
	}

	// Phase 2: durable — same load through the group-commit batcher and
	// fsync-on-commit WAL.
	dir, err := os.MkdirTemp("", "snapdyn-ingest-bench-")
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	defer os.RemoveAll(dir)
	dcfg := durable.Config{
		Dir:             dir,
		CheckpointEvery: 1 << 22,
		Batch:           batcher.Config{MaxBatch: 16384, MaxDelay: 2 * time.Millisecond},
	}
	d, _, err := durable.Open(n, iw, func(n int) dyngraph.Store {
		return dyngraph.NewHybrid(n, 4*len(edges), 0, cfg.Seed)
	}, boot, dcfg)
	if err != nil {
		panic(fmt.Sprintf("bench: durable open: %v", err))
	}
	d.Manager().Start(policy)
	applied, elapsed := drive(d.Manager(), qworkers, perPoint, func(b []edge.Update) error {
		_, err := d.Ingest(b)
		return err
	}, churn, submitters)
	met := d.Log().Metrics()
	perFsync := 0.0
	if met.Appends > 0 {
		perFsync = float64(met.AppendedUpdates) / float64(met.Appends)
	}
	// Crash shape: stop the pipeline without the final checkpoint, so
	// the reopen below replays a realistic log tail.
	d.Batcher().Stop()
	d.Manager().Stop()
	d.Log().Close()
	t.Add(timing.Measurement{
		Label: "ingest-wal",
		Param: fmt.Sprintf("mups=%.2f updates/fsync=%.0f fsyncs=%d", float64(applied)/elapsed/1e6,
			perFsync, met.Appends),
		Ops: applied, Workers: submitters, Seconds: elapsed,
	})

	// Phase 3: recovery — reopen the directory the WAL phase left.
	d2, info, err := durable.Open(n, iw, func(n int) dyngraph.Store {
		return dyngraph.NewHybrid(n, 4*len(edges), 0, cfg.Seed)
	}, nil, dcfg)
	if err != nil {
		panic(fmt.Sprintf("bench: recovery: %v", err))
	}
	d2.Close()
	t.Add(timing.Measurement{
		Label: "recovery",
		Param: fmt.Sprintf("lsn=%d replayed=%d ckpt=%d", info.LSN, info.ReplayedUpdates, info.CheckpointLSN),
		Ops:   int64(info.ReplayedUpdates), Workers: 1, Seconds: info.Elapsed.Seconds(),
	})
	return t
}

// drive runs the mixed load: `submitters` ingest goroutines pushing
// churn batches through submit() and qworkers BFS workers through an
// executor over mgr, for perPoint. Returns acked updates and elapsed
// seconds.
func drive(mgr *snapmgr.Manager, qworkers int, perPoint time.Duration,
	submit func([]edge.Update) error, churn [][]edge.Update, submitters int) (int64, float64) {
	ex := qserve.New(mgr, qserve.Config{
		Workers:       1,
		MaxConcurrent: qworkers,
		MaxQueue:      1 << 20,
		Undirected:    true,
	})
	stop := make(chan struct{})
	var qwg sync.WaitGroup
	for q := 0; q < qworkers; q++ {
		qwg.Add(1)
		go func(q int) {
			defer qwg.Done()
			src := uint32(q)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := ex.BFS(src % uint32(mgr.Store().NumVertices())); err != nil {
					panic(fmt.Sprintf("bench: query under ingest load: %v", err))
				}
				src = src*1664525 + 1013904223
			}
		}(q)
	}

	var applied atomic.Int64
	deadline := time.Now().Add(perPoint)
	var iwg sync.WaitGroup
	elapsed := timing.Time(func() {
		for s := 0; s < submitters; s++ {
			iwg.Add(1)
			go func(s int) {
				defer iwg.Done()
				for i := s; time.Now().Before(deadline); i++ {
					b := churn[i%len(churn)]
					if err := submit(b); err != nil {
						panic(fmt.Sprintf("bench: ingest failed: %v", err))
					}
					applied.Add(int64(len(b)))
				}
			}(s)
		}
		iwg.Wait()
	})
	close(stop)
	qwg.Wait()
	return applied.Load(), elapsed
}
