package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"snapdyn/internal/cc"
	"snapdyn/internal/centrality"
	"snapdyn/internal/dyngraph"
	"snapdyn/internal/edge"
	"snapdyn/internal/qcache"
	"snapdyn/internal/qserve"
	"snapdyn/internal/snapmgr"
	"snapdyn/internal/sssp"
	"snapdyn/internal/stream"
	"snapdyn/internal/timing"
	"snapdyn/internal/traversal"
	"snapdyn/internal/workload"
)

// workloadSourcePool is the serving working set: queries draw their
// sources from this many sampled giant-component vertices, with Zipf
// rank popularity over the pool. The pool models the reality the cache
// exploits — production analysis traffic concentrates on a finite hot
// set, not the whole id space.
const workloadSourcePool = 256

// FigWorkload prices the result cache under a modeled serving workload
// — ROADMAP item 2's measurement vehicle. For each Zipf exponent s, a
// query mix (workload.DefaultMix) with Zipf-rank source popularity
// over a sampled source pool runs against the serving executor twice —
// caching disabled, then with a cacheBytes budget — while a churn
// ingest goroutine keeps the store dirty and the auto-refresher
// republishes real (pointer-changing) snapshots by age policy, so
// cache generations are born and retired at the refresh cadence
// throughout. Reported per run: sustained QPS, p50/p99, and the cache
// hit/coalesce rate; the cached run's surviving generation is verified
// entry-by-entry against uncached kernel executions on its own pinned
// snapshot (bit-identical levels/distances/labels) before the row is
// emitted.
//
// rate > 0 switches the drivers from closed-loop (send when the last
// reply arrives — measures capacity) to open-loop bursty arrivals at
// that many queries/second per worker (workload.Arrivals, 8x bursts,
// 20ms mean on/off holding — measures latency under a schedule that
// does not politely slow down when the server queues).
//
// replay, when non-empty, substitutes a captured trace for the
// synthetic generator (zipfs is ignored): the workers round-robin the
// trace's ops verbatim — the reproduce-a-regression path, fed by
// snapserve -record.
func FigWorkload(cfg Config, zipfs []float64, cacheBytes int64, rate float64, perPoint time.Duration, replay []workload.Op) *timing.Table {
	if len(zipfs) == 0 {
		zipfs = []float64{0, 0.8, 1.2}
	}
	if cacheBytes <= 0 {
		cacheBytes = 128 << 20
	}
	if perPoint <= 0 {
		perPoint = time.Second
	}
	const queryWorkers = 4
	n := cfg.n()
	edges := cfg.generate()
	extraCfg := cfg
	extraCfg.Seed += 77
	extra := extraCfg.generate()
	ws := cfg.workers()
	iw := ws[len(ws)-1]

	mode := "closed-loop"
	if rate > 0 {
		mode = fmt.Sprintf("open-loop %.0f q/s/worker 8x bursts", rate)
	}
	t := &timing.Table{
		Title: "Workload: cached vs uncached serving under Zipf/bursty traffic + churn ingest",
		Note: cfg.instanceNote() + fmt.Sprintf(
			" (undirected), %d query workers, %d-source pool, cache %dMiB, %s, %s per run",
			queryWorkers, workloadSourcePool, cacheBytes>>20, mode, perPoint),
	}

	store := dyngraph.NewTracked(dyngraph.NewHybrid(n, 4*len(edges), 0, cfg.Seed))
	store.ApplyBatch(iw, stream.Mirror(stream.Inserts(edges)))
	mgr := snapmgr.New(iw, store)
	// Age-only refresh: under continuous churn every publication is a
	// real snapshot swap, so each one retires the live cache generation
	// — the figure measures the cache at a fixed freshness SLA (2s), not
	// on a conveniently frozen graph.
	mgr.Start(snapmgr.Policy{MaxAge: 2 * time.Second, Poll: 10 * time.Millisecond, Workers: iw})
	defer mgr.Stop()

	churn := churnBatches(extra, max(1024, n/32))
	sources := centrality.SampleSources(mgr.Current(), workloadSourcePool, cfg.Seed+43)

	runPoint := func(label, param string, budget int64, gens []*workload.Generator) {
		ex := qserve.New(mgr, qserve.Config{
			Workers:       1,
			MaxConcurrent: queryWorkers,
			MaxQueue:      4 * queryWorkers,
			Undirected:    true,
			CacheBytes:    budget,
		})

		stopIngest := make(chan struct{})
		var applied atomic.Int64
		var iwg sync.WaitGroup
		iwg.Add(1)
		go func() {
			defer iwg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopIngest:
					return
				case <-time.After(10 * time.Millisecond):
				}
				// Paced, not flat-out: an unthrottled ingest loop is a CPU
				// saturation test, not churn — it starves the query side on
				// small boxes and the figure stops measuring the cache. This
				// still dirties the store every window, so every refresh is
				// a real snapshot swap.
				b := churn[i%len(churn)]
				mgr.Ingest(func(s *dyngraph.Tracked) { s.ApplyBatch(iw, b) })
				applied.Add(int64(len(b)))
			}
		}()

		lats := make([][]time.Duration, queryWorkers)
		var shed atomic.Int64
		deadline := time.Now().Add(perPoint)
		var qwg sync.WaitGroup
		elapsed := timing.Time(func() {
			for q := 0; q < queryWorkers; q++ {
				qwg.Add(1)
				go func(q int) {
					defer qwg.Done()
					var arr *workload.Arrivals
					if rate > 0 {
						arr = workload.NewArrivals(rate, 8, 20*time.Millisecond, 20*time.Millisecond,
							cfg.Seed+uint64(q)*1315423911)
					}
					lat := make([]time.Duration, 0, 4096)
					for i := q; time.Now().Before(deadline); i += queryWorkers {
						var op workload.Op
						if replay != nil {
							op = replay[i%len(replay)]
						} else {
							op = gens[q].Next()
							// Map the generator's rank-space source ids
							// into the sampled pool.
							op.U = sources[int(op.U)%len(sources)]
							op.V = sources[int(op.V)%len(sources)]
						}
						if arr != nil {
							time.Sleep(arr.Next())
						}
						start := time.Now()
						if _, err := workload.Apply(ex, op); err != nil {
							if err == qserve.ErrOverloaded {
								shed.Add(1)
								continue
							}
							panic(fmt.Sprintf("bench: workload query failed: %v", err))
						}
						lat = append(lat, time.Since(start))
					}
					lats[q] = lat
				}(q)
			}
			qwg.Wait()
		})
		close(stopIngest)
		iwg.Wait()

		all := flatten(lats)
		served := len(all)
		extraCols := ""
		if budget > 0 {
			ctr := ex.Cache().Counters()
			total := ctr.Hits + ctr.Misses + ctr.Coalesced
			hitRate := 0.0
			if total > 0 {
				hitRate = float64(ctr.Hits+ctr.Coalesced) / float64(total)
			}
			checked := verifyGeneration(ex.Cache().Current())
			extraCols = fmt.Sprintf(" hit=%.0f%% coalesced=%d evict=%d verified=%d",
				100*hitRate, ctr.Coalesced, ctr.Evictions, checked)
		}
		if s := shed.Load(); s > 0 {
			extraCols += fmt.Sprintf(" shed=%d", s)
		}
		t.Add(timing.Measurement{
			Label: label,
			Param: fmt.Sprintf("%s qps=%.0f p50=%s p99=%s%s", param, float64(served)/elapsed,
				fmtLatency(percentile(all, 0.50)), fmtLatency(percentile(all, 0.99)), extraCols),
			Workers: queryWorkers, Ops: int64(served), Seconds: elapsed,
		})
	}

	points := zipfs
	if replay != nil {
		points = []float64{0}
	}
	for _, s := range points {
		mkGens := func(seedOff uint64) []*workload.Generator {
			if replay != nil {
				return nil
			}
			root := workload.NewGenerator(workload.Config{
				Vertices: workloadSourcePool, ZipfS: s, Seed: cfg.Seed + 1000 + seedOff,
			})
			gens := make([]*workload.Generator, queryWorkers)
			for q := range gens {
				gens[q] = root.Split()
			}
			return gens
		}
		param := fmt.Sprintf("s=%.1f", s)
		label := "workload"
		if replay != nil {
			param = fmt.Sprintf("trace=%d ops", len(replay))
			label = "replay"
		}
		runPoint(label+"-uncached", param, 0, mkGens(0))
		runPoint(label+"-cached", param, cacheBytes, mkGens(0))
	}
	return t
}

// verifyGeneration recomputes up to 48 of the surviving generation's
// entries uncached against the generation's own pinned snapshot and
// panics on any mismatch — bit-identical levels, distances, labels,
// aggregates, and verdicts, or the figure refuses to report. Returns
// the number of entries checked.
func verifyGeneration(g *qcache.Gen) int {
	if g == nil {
		return 0
	}
	view, ok := g.ID().(*snapmgr.View)
	if !ok || view == nil || view.G == nil {
		return 0
	}
	graph := view.G
	tsc, res := traversal.NewScratch(), &traversal.Result{}
	ssc := sssp.NewScratch()
	var src [1]uint32
	checked := 0
	g.Range(func(k qcache.Key, v qcache.Value) bool {
		if checked >= 48 {
			return false
		}
		switch k.Kind {
		case qcache.KindBFS:
			src[0] = uint32(k.A)
			traversal.Run(graph, src[:1], traversal.Options{Workers: 1}, tsc, res)
			if int64(res.Reached) != v.N1 || int64(res.Levels) != v.N2 {
				panic(fmt.Sprintf("bench: cached BFS aggregates differ at src %d: (%d,%d) vs (%d,%d)",
					k.A, v.N1, v.N2, res.Reached, res.Levels))
			}
			for i := range v.Levels {
				if v.Levels[i] != res.Level[i] {
					panic(fmt.Sprintf("bench: cached BFS level differs at src %d vertex %d: %d vs %d",
						k.A, i, v.Levels[i], res.Level[i]))
				}
			}
		case qcache.KindSSSP:
			dist := sssp.Run(graph, edge.ID(uint32(k.A)),
				sssp.Options{Workers: 1, Delta: int64(k.B), Scratch: ssc})
			for i := range v.Dist {
				if v.Dist[i] != dist[i] {
					panic(fmt.Sprintf("bench: cached SSSP distance differs at src %d vertex %d: %d vs %d",
						k.A, i, v.Dist[i], dist[i]))
				}
			}
		case qcache.KindConnected:
			src[0] = uint32(k.A)
			traversal.Run(graph, src[:1], traversal.Options{Workers: 1}, tsc, res)
			lvl := res.Level[uint32(k.B)]
			if conn := lvl != traversal.NotVisited; conn != v.Flag ||
				(conn && int64(lvl) != v.N1) || (!conn && v.N1 != -1) {
				panic(fmt.Sprintf("bench: cached connectivity differs for (%d,%d): flag=%v hops=%d vs level %d",
					k.A, k.B, v.Flag, v.N1, lvl))
			}
		case qcache.KindComponents:
			comp := cc.ComponentsInto(1, graph, nil)
			if int64(cc.Count(comp)) != v.N1 {
				panic(fmt.Sprintf("bench: cached component count differs: %d vs %d", v.N1, cc.Count(comp)))
			}
			for i := range v.Labels {
				if v.Labels[i] != comp[i] {
					panic(fmt.Sprintf("bench: cached component label differs at vertex %d: %d vs %d",
						i, v.Labels[i], comp[i]))
				}
			}
		}
		checked++
		return true
	})
	return checked
}
