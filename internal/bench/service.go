package bench

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"snapdyn/internal/centrality"
	"snapdyn/internal/dyngraph"
	"snapdyn/internal/edge"
	"snapdyn/internal/qserve"
	"snapdyn/internal/snapmgr"
	"snapdyn/internal/stream"
	"snapdyn/internal/timing"
)

// FigService measures the query-serving layer end to end — the figure
// the ROADMAP's north star asks for and the PR-4 pipeline figure only
// approximates: sustained mixed ingest/query load through the real
// serving stack (auto-refreshing snapshot manager + pooled executor),
// reported as QPS with p50/p99 per-query latency at 1..maxQueryWorkers
// concurrent query workers.
//
// Per sweep point, an ingest goroutine continuously applies churn
// batches (mirrored insertions one round, their deletions the next, so
// the graph size stays bounded) through the manager's refresh gate
// while the background auto-refresher republishes snapshots by policy;
// query workers submit a BFS / delta-stepping SSSP / st-connectivity
// mix through the executor pool, each query timed individually. The
// executor runs one kernel worker per query and as many concurrent
// slots as query workers — throughput comes from query concurrency,
// matching the serving default, and nothing queues or sheds, so the
// latency histogram is pure service time.
//
// The largest sweep point also measures allocation churn
// (runtime.MemStats TotalAlloc across the sustained phase) — the
// evidence behind the RCU-by-GC verdict recorded in ROADMAP.md: how
// many bytes per published epoch the no-release snapshot protocol
// hands to the garbage collector.
//
// Compare against FigPipeline (snapbench -fig pipeline), which drives
// the same pipeline with hand-rolled readers and per-call Refresh: the
// delta is what admission control, scratch pooling, and policy-driven
// refresh cost — or save — as a system.
func FigService(cfg Config, maxQueryWorkers int, perPoint time.Duration) *timing.Table {
	if maxQueryWorkers <= 0 {
		maxQueryWorkers = 4
	}
	if perPoint <= 0 {
		perPoint = time.Second
	}
	n := cfg.n()
	edges := cfg.generate()
	extraCfg := cfg
	extraCfg.Seed += 77
	extra := extraCfg.generate()
	ws := cfg.workers()
	iw := ws[len(ws)-1]

	t := &timing.Table{
		Title: "Service: sustained QPS and latency under mixed ingest/query load",
		Note: cfg.instanceNote() + fmt.Sprintf(
			" (undirected), %d ingest workers, 1 kernel worker per query, %s per point", iw, perPoint),
	}

	// Undirected store behind an auto-refreshing manager: the serving
	// configuration snapserve runs.
	store := dyngraph.NewTracked(dyngraph.NewHybrid(n, 4*len(edges), 0, cfg.Seed))
	store.ApplyBatch(iw, stream.Mirror(stream.Inserts(edges)))
	mgr := snapmgr.New(iw, store)
	mgr.Start(snapmgr.Policy{
		MaxDirty: max(1, n/100),
		MaxAge:   50 * time.Millisecond,
		Poll:     2 * time.Millisecond,
		Workers:  iw,
	})
	defer mgr.Stop()

	// Bounded churn: round 2k inserts a slice of fresh mirrored edges,
	// round 2k+1 deletes them again, so sustained ingest never grows
	// the instance past m + batch.
	churn := churnBatches(extra, max(1024, n/32))

	sources := centrality.SampleSources(mgr.Current(), 256, cfg.Seed+43)

	for _, qw := range timing.SweepWorkers(maxQueryWorkers) {
		ex := qserve.New(mgr, qserve.Config{
			Workers:       1,
			MaxConcurrent: qw,
			MaxQueue:      2 * qw,
			Undirected:    true,
		})

		stopIngest := make(chan struct{})
		var applied atomic.Int64
		var iwg sync.WaitGroup
		iwg.Add(1)
		go func() {
			defer iwg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopIngest:
					return
				default:
				}
				b := churn[i%len(churn)]
				mgr.Ingest(func(s *dyngraph.Tracked) { s.ApplyBatch(iw, b) })
				applied.Add(int64(len(b)))
			}
		}()

		measureChurn := qw == maxQueryWorkers
		var msBefore runtime.MemStats
		metBefore := mgr.Metrics()
		if measureChurn {
			runtime.GC()
			runtime.ReadMemStats(&msBefore)
		}

		lats := make([][]time.Duration, qw)
		deadline := time.Now().Add(perPoint)
		var qwg sync.WaitGroup
		elapsed := timing.Time(func() {
			for q := 0; q < qw; q++ {
				qwg.Add(1)
				go func(q int) {
					defer qwg.Done()
					lat := make([]time.Duration, 0, 4096)
					src := uint32(q)
					for i := 0; time.Now().Before(deadline); i++ {
						s := sources[int(src)%len(sources)]
						start := time.Now()
						var err error
						switch i % 3 {
						case 0:
							_, err = ex.BFS(s)
						case 1:
							_, err = ex.SSSP(s, 0)
						default:
							_, err = ex.Connected(s, sources[(int(src)+7)%len(sources)])
						}
						if err != nil {
							panic(fmt.Sprintf("bench: service query failed: %v", err))
						}
						lat = append(lat, time.Since(start))
						src = src*1664525 + 1013904223
					}
					lats[q] = lat
				}(q)
			}
			qwg.Wait()
		})
		close(stopIngest)
		iwg.Wait()

		if measureChurn {
			var msAfter runtime.MemStats
			runtime.ReadMemStats(&msAfter)
			metAfter := mgr.Metrics()
			allocMB := float64(msAfter.TotalAlloc-msBefore.TotalAlloc) / (1 << 20)
			epochs := metAfter.Refreshes - metBefore.Refreshes
			perEpoch := 0.0
			if epochs > 0 {
				perEpoch = allocMB / float64(epochs)
			}
			t.Note += fmt.Sprintf("; alloc churn at %d query workers: %.1f MB/s, %.1f MB per published epoch (%d epochs, RCU-by-GC)",
				qw, allocMB/elapsed, perEpoch, epochs)
		}

		all := flatten(lats)
		served := len(all)
		t.Add(timing.Measurement{
			Label: "service-query",
			Param: fmt.Sprintf("qps=%.0f p50=%s p99=%s", float64(served)/elapsed,
				fmtLatency(percentile(all, 0.50)), fmtLatency(percentile(all, 0.99))),
			Workers: qw, Ops: int64(served), Seconds: elapsed,
		})
		t.Add(timing.Measurement{
			Label: "service-ingest", Param: fmt.Sprintf("epoch=%d", mgr.Epoch()),
			Workers: iw, Ops: applied.Load(), Seconds: elapsed,
		})
	}
	return t
}

// churnBatches builds size-stable ingest rounds from a fresh edge
// stream: each insert batch is followed by the batch deleting exactly
// those arcs (both mirrored), so cycling through the rounds holds the
// live arc count steady no matter how long the sustained phase runs.
func churnBatches(fresh []edge.Edge, per int) [][]edge.Update {
	if per > len(fresh) {
		per = len(fresh)
	}
	var rounds [][]edge.Update
	for at := 0; at+per <= len(fresh) && len(rounds) < 16; at += per {
		ins := make([]edge.Update, 0, 2*per)
		del := make([]edge.Update, 0, 2*per)
		for _, e := range fresh[at : at+per] {
			ins = append(ins,
				edge.Update{Edge: e, Op: edge.Insert},
				edge.Update{Edge: edge.Edge{U: e.V, V: e.U, T: e.T}, Op: edge.Insert})
			del = append(del,
				edge.Update{Edge: e, Op: edge.Delete},
				edge.Update{Edge: edge.Edge{U: e.V, V: e.U, T: e.T}, Op: edge.Delete})
		}
		rounds = append(rounds, ins, del)
	}
	return rounds
}

func flatten(lats [][]time.Duration) []time.Duration {
	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return all
}

// percentile returns the p-quantile of sorted latencies (nearest-rank).
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func fmtLatency(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.0fus", float64(d)/float64(time.Microsecond))
	}
}
