package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"snapdyn/internal/centrality"
	"snapdyn/internal/dyngraph"
	"snapdyn/internal/qserve"
	"snapdyn/internal/shard"
	"snapdyn/internal/snapmgr"
	"snapdyn/internal/stream"
	"snapdyn/internal/timing"
	"snapdyn/internal/traversal"
)

// FigShard measures the vertex-partitioned sharding layer against the
// single-store serving stack, sweeping the shard count:
//
//   - ingest-single / shard-ingest: bulk-load MUPS of the mirrored
//     seed stream through one store gate vs the fleet's P concurrent
//     shard gates (scatter by owner + parallel per-shard apply).
//   - bfs-single / shard-bfs: full-graph traversal rate in edges/s
//     (the MUPS column reads as MTEPS: every BFS is charged the full
//     arc count) for the single-snapshot engine at 1 kernel worker vs
//     the scatter-gather BFS over P pinned shard snapshots.
//   - shard-query / shard-sustained-ingest: sustained mixed load
//     through the fleet executor — qworkers concurrent BFS / SSSP /
//     st-connectivity readers with churn ingest routed through the
//     shard gates while every shard's auto-refresher republishes by
//     policy — reported as QPS with p50/p99 and concurrent ingest MUPS.
//
// Shard speedup is bounded by physical parallelism: with P shards on C
// cores, expect min(P, C)-ish scaling on ingest and near-flat QPS once
// P > C (scatter-gather adds one exchange barrier per BFS level).
func FigShard(cfg Config, shardCounts []int, qworkers int, perPoint time.Duration) *timing.Table {
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 2, 4, 8}
	}
	if qworkers <= 0 {
		qworkers = 4
	}
	if perPoint <= 0 {
		perPoint = time.Second
	}
	n := cfg.n()
	edges := cfg.generate()
	ups := stream.Mirror(stream.Inserts(edges))
	extraCfg := cfg
	extraCfg.Seed += 77
	extra := extraCfg.generate()
	ws := cfg.workers()
	iw := ws[len(ws)-1]

	t := &timing.Table{
		Title: "Shard: vertex-partitioned ingest and scatter-gather query scaling",
		Note: cfg.instanceNote() + fmt.Sprintf(
			" (undirected), %d ingest workers, %d query workers, %s sustained per point", iw, qworkers, perPoint),
	}

	// Single-store baseline: one gate, one snapshot, the qserve engine.
	store := dyngraph.NewTracked(dyngraph.NewHybrid(n, 4*len(edges), 0, cfg.Seed))
	elapsed := timing.Time(func() { store.ApplyBatch(iw, ups) })
	t.Add(timing.Measurement{
		Label: "ingest-single", Param: "baseline",
		Workers: iw, Ops: int64(len(ups)), Seconds: elapsed,
	})
	mgr := snapmgr.New(iw, store)
	g := mgr.Current()
	sources := centrality.SampleSources(g, 64, cfg.Seed+43)
	m := g.NumEdges()
	elapsed = timing.Time(func() {
		for _, s := range sources {
			traversal.BFS(1, g, s)
		}
	})
	t.Add(timing.Measurement{
		Label: "bfs-single", Param: "baseline",
		Workers: 1, Ops: int64(len(sources)) * m, Seconds: elapsed,
	})

	for _, p := range shardCounts {
		fleet := shard.New(n, shard.Config{Shards: p, Workers: iw, ExpectedEdges: 2 * len(ups)})

		// Bulk-load MUPS through P concurrent shard gates.
		elapsed := timing.Time(func() { fleet.Ingest(iw, ups) })
		t.Add(timing.Measurement{
			Label: "shard-ingest", Param: fmt.Sprintf("shards=%d", p),
			Workers: iw, Ops: int64(len(ups)), Seconds: elapsed,
		})
		fleet.Refresh(iw)

		// Scatter-gather BFS rate over the pinned per-shard snapshots.
		sc := shard.NewScratch()
		views := fleet.View(nil)
		elapsed = timing.Time(func() {
			for _, s := range sources {
				sc.BFS(views, s)
			}
		})
		t.Add(timing.Measurement{
			Label: "shard-bfs", Param: fmt.Sprintf("shards=%d", p),
			Workers: p, Ops: int64(len(sources)) * fleet.NumEdges(), Seconds: elapsed,
		})

		// Sustained mixed load through the fleet executor while every
		// shard auto-refreshes by policy.
		fleet.Start(snapmgr.Policy{
			MaxDirty: max(1, n/100),
			MaxAge:   50 * time.Millisecond,
			Poll:     2 * time.Millisecond,
			Workers:  iw,
		})
		ex := shard.NewExecutor(fleet, qserve.Config{
			MaxConcurrent: qworkers,
			MaxQueue:      2 * qworkers,
			Undirected:    true,
		})
		churn := churnBatches(extra, max(1024, n/32))

		stopIngest := make(chan struct{})
		var applied atomic.Int64
		var iwg sync.WaitGroup
		iwg.Add(1)
		go func() {
			defer iwg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopIngest:
					return
				default:
				}
				b := churn[i%len(churn)]
				fleet.Ingest(iw, b)
				applied.Add(int64(len(b)))
			}
		}()

		lats := make([][]time.Duration, qworkers)
		deadline := time.Now().Add(perPoint)
		var qwg sync.WaitGroup
		elapsed = timing.Time(func() {
			for q := 0; q < qworkers; q++ {
				qwg.Add(1)
				go func(q int) {
					defer qwg.Done()
					lat := make([]time.Duration, 0, 4096)
					src := uint32(q)
					for i := 0; time.Now().Before(deadline); i++ {
						s := sources[int(src)%len(sources)]
						start := time.Now()
						var err error
						switch i % 3 {
						case 0:
							_, err = ex.BFS(s)
						case 1:
							_, err = ex.SSSP(s, 0)
						default:
							_, err = ex.Connected(s, sources[(int(src)+7)%len(sources)])
						}
						if err != nil {
							panic(fmt.Sprintf("bench: shard query failed: %v", err))
						}
						lat = append(lat, time.Since(start))
						src = src*1664525 + 1013904223
					}
					lats[q] = lat
				}(q)
			}
			qwg.Wait()
		})
		close(stopIngest)
		iwg.Wait()
		fleet.Stop()

		all := flatten(lats)
		served := len(all)
		t.Add(timing.Measurement{
			Label: "shard-query",
			Param: fmt.Sprintf("shards=%d qps=%.0f p50=%s p99=%s", p, float64(served)/elapsed,
				fmtLatency(percentile(all, 0.50)), fmtLatency(percentile(all, 0.99))),
			Workers: qworkers, Ops: int64(served), Seconds: elapsed,
		})
		t.Add(timing.Measurement{
			Label: "shard-sustained-ingest", Param: fmt.Sprintf("shards=%d epoch=%d", p, fleet.Epoch()),
			Workers: iw, Ops: applied.Load(), Seconds: elapsed,
		})
	}
	return t
}
