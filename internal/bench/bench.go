// Package bench implements one experiment driver per figure of the
// paper's evaluation. Each driver generates its workload, runs the
// measured kernel over a worker-count sweep, and returns a timing.Table
// whose rows are the series the paper plots. Drivers are shared by
// cmd/snapbench and the root-level testing.B benchmarks.
//
// Instance sizes are controlled by Config.Scale; the paper's full-scale
// instances (2^25 vertices, 268M edges) are reachable by raising the
// scale on machines with enough memory. EXPERIMENTS.md records the scale
// used for the checked-in results.
package bench

import (
	"fmt"
	"sync"

	"snapdyn/internal/centrality"
	"snapdyn/internal/csr"
	"snapdyn/internal/dyngraph"
	"snapdyn/internal/edge"
	"snapdyn/internal/lct"
	"snapdyn/internal/par"
	"snapdyn/internal/rmat"
	"snapdyn/internal/snapmgr"
	"snapdyn/internal/sssp"
	"snapdyn/internal/stream"
	"snapdyn/internal/subgraph"
	"snapdyn/internal/timing"
	"snapdyn/internal/traversal"
	"snapdyn/internal/xrand"
)

// Config parameterizes an experiment run.
type Config struct {
	// Scale: n = 2^Scale vertices.
	Scale int
	// EdgeFactor: m = EdgeFactor * n edges (paper instances use 8-10).
	EdgeFactor int
	// Workers is the sweep of worker counts; nil uses SweepWorkers over
	// GOMAXPROCS (at least up to 4 so concurrency paths are exercised
	// even on small machines).
	Workers []int
	// TimeMax: edges get uniform time labels in [1, TimeMax].
	TimeMax uint32
	// Seed for all generators.
	Seed uint64
	// BFSEngine selects the traversal engine for every BFS-shaped
	// kernel (the BFS figure, link-cut forest construction, betweenness
	// and closeness sweeps): "topdown" (the default, classic push) or
	// "dirop" (direction-optimizing push/pull).
	BFSEngine string
	// Deltas is the bucket-width sweep for the "sssp" kernel: one
	// measurement series per value, with 0 meaning the heuristic
	// (average-weight) width. Empty means just the heuristic.
	Deltas []int64
}

// strategy maps BFSEngine to the engine strategy shared by all kernels.
func (c Config) strategy() traversal.Strategy {
	switch c.BFSEngine {
	case "", "topdown":
		return traversal.TopDown
	case "dirop":
		return traversal.DirectionOpt
	default:
		panic(fmt.Sprintf("bench: unknown BFSEngine %q (want topdown or dirop)", c.BFSEngine))
	}
}

// engineLabel tags a measurement series with the engine choice.
func (c Config) engineLabel(kernel string) string {
	if c.strategy() == traversal.DirectionOpt {
		return kernel + "(dirop)"
	}
	return kernel
}

// DefaultConfig returns a laptop-friendly configuration (n = 2^16,
// m = 10n).
func DefaultConfig() Config {
	return Config{Scale: 16, EdgeFactor: 10, TimeMax: 100, Seed: 20090525}
}

func (c Config) workers() []int {
	if len(c.Workers) > 0 {
		return c.Workers
	}
	maxW := par.MaxWorkers()
	if maxW < 4 {
		maxW = 4
	}
	return timing.SweepWorkers(maxW)
}

func (c Config) n() int { return 1 << c.Scale }
func (c Config) m() int { return c.EdgeFactor * c.n() }

func (c Config) generate() []edge.Edge {
	p := rmat.PaperParams(c.Scale, c.m(), c.TimeMax, c.Seed)
	edges, err := rmat.Generate(0, p)
	if err != nil {
		panic(fmt.Sprintf("bench: generation failed: %v", err))
	}
	return edges
}

func (c Config) degrees(edges []edge.Edge) []int {
	deg := make([]int, c.n())
	for _, e := range edges {
		deg[e.U]++
	}
	return deg
}

func (c Config) instanceNote() string {
	return fmt.Sprintf("R-MAT n=2^%d (%d vertices), m=%d (%dn), seed=%d",
		c.Scale, c.n(), c.m(), c.EdgeFactor, c.Seed)
}

// Fig1InsertScaling reproduces Figure 1: Dyn-arr-nr insertion MUPS as the
// problem size sweeps across orders of magnitude, at a low and a high
// worker count (the paper's 1-core and 8-core panels). The paper's
// observation to reproduce: the rate drops once the memory footprint
// exceeds cache.
func Fig1InsertScaling(cfg Config, scales []int) *timing.Table {
	if len(scales) == 0 {
		scales = []int{12, 14, 16, 18}
	}
	ws := cfg.workers()
	low, high := ws[0], ws[len(ws)-1]
	t := &timing.Table{
		Title: "Figure 1: Dyn-arr-nr insertions vs problem size",
		Note:  fmt.Sprintf("m = %dn, worker counts %d and %d", cfg.EdgeFactor, low, high),
	}
	for _, scale := range scales {
		c := cfg
		c.Scale = scale
		edges := c.generate()
		ups := stream.Inserts(edges)
		for _, w := range []int{low, high} {
			s := dyngraph.NewDynArrNoResize(c.degrees(edges))
			secs := timing.Time(func() { s.ApplyBatch(w, ups) })
			t.Add(timing.Measurement{
				Label: "dyn-arr-nr", Param: fmt.Sprintf("n=2^%d", scale),
				Workers: w, Ops: int64(len(ups)), Seconds: secs,
			})
		}
	}
	return t
}

// Fig2ResizeOverhead reproduces Figure 2: construction MUPS of Dyn-arr
// (initial adjacency size 16, doubling resizes) against the no-resize
// upper bound, across the worker sweep. The observation: the resizing
// penalty is modest.
func Fig2ResizeOverhead(cfg Config) *timing.Table {
	edges := cfg.generate()
	ups := stream.Inserts(edges)
	t := &timing.Table{
		Title: "Figure 2: Dyn-arr vs Dyn-arr-nr construction (resize overhead)",
		Note:  cfg.instanceNote() + ", initial array size 16",
	}
	for _, w := range cfg.workers() {
		s := dyngraph.NewDynArrInitial(cfg.n(), 16, cfg.m())
		secs := timing.Time(func() { s.ApplyBatch(w, ups) })
		t.Add(timing.Measurement{Label: "dyn-arr", Workers: w, Ops: int64(len(ups)), Seconds: secs})

		nr := dyngraph.NewDynArrNoResize(cfg.degrees(edges))
		secs = timing.Time(func() { nr.ApplyBatch(w, ups) })
		t.Add(timing.Measurement{Label: "dyn-arr-nr", Workers: w, Ops: int64(len(ups)), Seconds: secs})
	}
	return t
}

// Fig3Partitioning reproduces Figure 3: insert-only performance of
// Dyn-arr-nr against vertex partitioning, edge partitioning, and the
// batched upper bound (semi-sort time alone), at the largest worker
// count. The observation: Dyn-arr outperforms the alternatives.
func Fig3Partitioning(cfg Config) *timing.Table {
	edges := cfg.generate()
	ups := stream.Inserts(edges)
	ws := cfg.workers()
	w := ws[len(ws)-1]
	t := &timing.Table{
		Title: "Figure 3: insertions — Dyn-arr-nr vs Vpart vs Epart vs batched bound",
		Note:  cfg.instanceNote() + fmt.Sprintf(", %d workers", w),
	}
	for _, wrk := range []int{1, w} {
		nr := dyngraph.NewDynArrNoResize(cfg.degrees(edges))
		secs := timing.Time(func() { nr.ApplyBatch(wrk, ups) })
		t.Add(timing.Measurement{Label: "dyn-arr-nr", Workers: wrk, Ops: int64(len(ups)), Seconds: secs})

		vp := dyngraph.NewVpart(cfg.n(), cfg.m())
		secs = timing.Time(func() { vp.ApplyBatch(wrk, ups) })
		t.Add(timing.Measurement{Label: "vpart", Workers: wrk, Ops: int64(len(ups)), Seconds: secs})

		ep := dyngraph.NewEpart(cfg.n(), cfg.m(), 0)
		secs = timing.Time(func() { ep.ApplyBatch(wrk, ups) })
		t.Add(timing.Measurement{Label: "epart", Workers: wrk, Ops: int64(len(ups)), Seconds: secs})

		// Batched upper bound: the semi-sort alone.
		secs = timing.Time(func() { dyngraph.SemiSort(wrk, ups) })
		t.Add(timing.Measurement{Label: "batched-bound(semisort)", Workers: wrk, Ops: int64(len(ups)), Seconds: secs})
	}
	return t
}

// newRepStores builds the Figure 4-6 contenders.
func newRepStores(cfg Config) []dyngraph.Store {
	return []dyngraph.Store{
		dyngraph.NewDynArr(cfg.n(), cfg.m()),
		dyngraph.NewTreapStore(cfg.n(), cfg.Seed),
		dyngraph.NewHybrid(cfg.n(), cfg.m(), 0, cfg.Seed),
	}
}

// Fig4Insertions reproduces Figure 4: graph construction (a series of
// insertions) under Dyn-arr, Treaps, and Hybrid. Expected shape: Dyn-arr
// fastest (~1.4x Hybrid), Hybrid slightly faster than Treaps.
func Fig4Insertions(cfg Config) *timing.Table {
	edges := cfg.generate()
	ups := stream.Inserts(edges)
	t := &timing.Table{
		Title: "Figure 4: insertions — Dyn-arr vs Treaps vs Hybrid",
		Note:  cfg.instanceNote(),
	}
	for _, w := range cfg.workers() {
		for _, s := range newRepStores(cfg) {
			secs := timing.Time(func() { s.ApplyBatch(w, ups) })
			t.Add(timing.Measurement{Label: s.Name(), Workers: w, Ops: int64(len(ups)), Seconds: secs})
		}
	}
	return t
}

// Fig5Deletions reproduces Figure 5: random deletions after
// construction. delFrac is the fraction of m to delete (the paper deletes
// 20M of 268M ≈ 7.5%). Expected shape: Hybrid ~20x Dyn-arr, and faster
// than Treaps.
func Fig5Deletions(cfg Config, delFrac float64) *timing.Table {
	if delFrac <= 0 {
		delFrac = 0.075
	}
	edges := cfg.generate()
	dels := stream.Deletions(edges, int(float64(len(edges))*delFrac), cfg.Seed+5)
	t := &timing.Table{
		Title: "Figure 5: deletions — Dyn-arr vs Treaps vs Hybrid",
		Note:  cfg.instanceNote() + fmt.Sprintf(", %d random deletions", len(dels)),
	}
	for _, w := range cfg.workers() {
		for _, s := range newRepStores(cfg) {
			dyngraph.InsertAll(s, 0, edges) // untimed construction
			secs := timing.Time(func() { s.ApplyBatch(w, dels) })
			t.Add(timing.Measurement{Label: s.Name(), Workers: w, Ops: int64(len(dels)), Seconds: secs})
		}
	}
	return t
}

// Fig6Mixed reproduces Figure 6: a mixed stream of updates (75%
// insertions, 25% deletions) applied after construction. Expected shape:
// Hybrid and Dyn-arr comparable, Treaps slower.
func Fig6Mixed(cfg Config) *timing.Table {
	edges := cfg.generate()
	extraCfg := cfg
	extraCfg.Seed += 99
	extra := extraCfg.generate()
	count := len(edges) / 5
	ups, err := stream.Mixed(edges, extra, count, 0.75, cfg.Seed+6)
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	t := &timing.Table{
		Title: "Figure 6: mixed updates (75% ins / 25% del) — Dyn-arr vs Treaps vs Hybrid",
		Note:  cfg.instanceNote() + fmt.Sprintf(", %d updates", len(ups)),
	}
	for _, w := range cfg.workers() {
		for _, s := range newRepStores(cfg) {
			dyngraph.InsertAll(s, 0, edges)
			secs := timing.Time(func() { s.ApplyBatch(w, ups) })
			t.Add(timing.Measurement{Label: s.Name(), Workers: w, Ops: int64(len(ups)), Seconds: secs})
		}
	}
	return t
}

// Fig7LCTBuild reproduces Figure 7: link-cut tree construction (BFS
// forest + connected components) time and speedup across the worker
// sweep. The paper uses m ≈ 8.4n.
func Fig7LCTBuild(cfg Config) *timing.Table {
	edges := cfg.generate()
	g := csr.FromEdges(0, cfg.n(), edges, true)
	t := &timing.Table{
		Title: "Figure 7: link-cut tree construction",
		Note:  cfg.instanceNote() + " (undirected)",
	}
	strat := cfg.strategy()
	for _, w := range cfg.workers() {
		var f *lct.Forest
		secs := timing.Time(func() { f = lct.BuildStrategy(w, g, strat) })
		_ = f
		t.Add(timing.Measurement{Label: cfg.engineLabel("lct-build"), Workers: w, Ops: g.NumEdges(), Seconds: secs})
	}
	return t
}

// Fig8Queries reproduces Figure 8: connectivity query processing on the
// link-cut tree (two findroot operations per query), queries processed
// in parallel.
func Fig8Queries(cfg Config, numQueries int) *timing.Table {
	if numQueries <= 0 {
		numQueries = 1_000_000
	}
	edges := cfg.generate()
	g := csr.FromEdges(0, cfg.n(), edges, true)
	f := lct.Build(0, g)
	queries := randomQueries(cfg, numQueries)
	results := make([]bool, len(queries))
	t := &timing.Table{
		Title: "Figure 8: connectivity queries on the link-cut tree",
		Note:  cfg.instanceNote() + fmt.Sprintf(", %d queries", numQueries),
	}
	for _, w := range cfg.workers() {
		secs := timing.Time(func() { f.ConnectedBatch(w, queries, results) })
		t.Add(timing.Measurement{Label: "lct-query", Workers: w, Ops: int64(len(queries)), Seconds: secs})
	}
	return t
}

func randomQueries(cfg Config, k int) []lct.Query {
	r := xrand.New(cfg.Seed + 8)
	n := uint32(cfg.n())
	qs := make([]lct.Query, k)
	for i := range qs {
		qs[i] = lct.Query{U: r.Uint32n(n), V: r.Uint32n(n)}
	}
	return qs
}

// Fig9Subgraph reproduces Figure 9: the induced subgraph kernel
// extracting the edges with time labels in the open interval (20, 70)
// out of labels uniform in [1, 100].
func Fig9Subgraph(cfg Config) *timing.Table {
	cfgT := cfg
	if cfgT.TimeMax == 0 {
		cfgT.TimeMax = 100
	}
	edges := cfgT.generate()
	g := csr.FromEdges(0, cfgT.n(), edges, false)
	t := &timing.Table{
		Title: "Figure 9: induced subgraph (time interval (20,70))",
		Note:  cfgT.instanceNote(),
	}
	pred := subgraph.TimeInterval(20, 70)
	for _, w := range cfgT.workers() {
		var sub *csr.Graph
		secs := timing.Time(func() { sub = subgraph.InducedByEdges(w, g, pred) })
		t.Add(timing.Measurement{
			Label: "induced-subgraph", Param: fmt.Sprintf("kept=%d", sub.NumEdges()),
			Workers: w, Ops: g.NumEdges(), Seconds: secs,
		})
	}
	return t
}

// Fig10BFS reproduces Figure 10: parallel BFS with a time-stamp check on
// a large time-stamped instance, time and speedup across the sweep. The
// source is a vertex in the largest component.
func Fig10BFS(cfg Config) *timing.Table {
	edges := cfg.generate()
	g := csr.FromEdges(0, cfg.n(), edges, true)
	src := largestComponentVertex(g)
	strategy, label := cfg.strategy(), cfg.engineLabel("temporal-bfs")
	t := &timing.Table{
		Title: "Figure 10: parallel BFS with time-stamp filtering",
		Note:  cfg.instanceNote() + fmt.Sprintf(" (undirected), source %d, engine %s", src, label),
	}
	filter := traversal.TimeWindow(1, cfg.TimeMax)
	scratch := traversal.NewScratch()
	res := &traversal.Result{}
	for _, w := range cfg.workers() {
		opt := traversal.Options{Workers: w, Strategy: strategy, Filter: filter}
		secs := timing.Time(func() { traversal.Run(g, []uint32{src}, opt, scratch, res) })
		t.Add(timing.Measurement{
			Label: label, Param: fmt.Sprintf("reached=%d", res.Reached),
			Workers: w, Ops: g.NumEdges(), Seconds: secs,
		})
	}
	return t
}

// Fig11TemporalBC reproduces Figure 11: approximate temporal betweenness
// centrality from sampled sources (the paper samples 256) with time
// labels in [0, 20].
func Fig11TemporalBC(cfg Config, numSources int) *timing.Table {
	if numSources <= 0 {
		numSources = 256
	}
	cfgT := cfg
	cfgT.TimeMax = 20
	edges := cfgT.generate()
	g := csr.FromEdges(0, cfgT.n(), edges, true)
	sources := centrality.SampleSources(g, numSources, cfgT.Seed+11)
	t := &timing.Table{
		Title: "Figure 11: approximate temporal betweenness centrality",
		Note:  cfgT.instanceNote() + fmt.Sprintf(", %d sampled sources, labels in [1,20]", len(sources)),
	}
	strat := cfgT.strategy()
	for _, w := range cfgT.workers() {
		secs := timing.Time(func() {
			centrality.Betweenness(w, g, centrality.Options{
				Temporal: true, Sources: sources, Normalize: true, Strategy: strat,
			})
		})
		t.Add(timing.Measurement{
			Label: cfgT.engineLabel("temporal-bc"), Workers: w,
			Ops: int64(len(sources)) * g.NumEdges(), Seconds: secs,
		})
	}
	return t
}

// KernelSweep is the unified-kernel experiment enabled by the visitor
// engine: one driver that runs any BFS-shaped kernel — plain BFS ("bfs"),
// sampled static betweenness ("bc"), or closeness ("closeness") — over
// the worker sweep, with Config.BFSEngine selecting the traversal
// strategy for all of them. It demonstrates (and measures) that the one
// engine serves every kernel; compare a topdown run against a dirop run
// of the same kernel to see the pull step's effect beyond plain BFS.
//
// The weighted kernel ("sssp") sweeps delta-stepping shortest paths
// with the arc time labels as weights — one series per Config.Deltas
// bucket width over the worker sweep, against a single-threaded typed-
// heap Dijkstra baseline series. Runs after the first reuse a warm
// sssp.Scratch, so the steady-state numbers reflect the pre-partitioned
// zero-allocation kernel, not arena warm-up.
func KernelSweep(cfg Config, kernel string, numSources int) *timing.Table {
	if numSources <= 0 {
		numSources = 256
	}
	edges := cfg.generate()
	g := csr.FromEdges(0, cfg.n(), edges, true)
	strat := cfg.strategy()
	t := &timing.Table{
		Title: fmt.Sprintf("Unified kernel sweep: %s", kernel),
		Note:  cfg.instanceNote() + " (undirected)",
	}
	switch kernel {
	case "bfs":
		src := largestComponentVertex(g)
		scratch := traversal.NewScratch()
		res := &traversal.Result{}
		t.Note += fmt.Sprintf(", source %d", src)
		for _, w := range cfg.workers() {
			opt := traversal.Options{Workers: w, Strategy: strat}
			secs := timing.Time(func() { traversal.Run(g, []uint32{src}, opt, scratch, res) })
			t.Add(timing.Measurement{
				Label: cfg.engineLabel("bfs"), Param: fmt.Sprintf("reached=%d", res.Reached),
				Workers: w, Ops: g.NumEdges(), Seconds: secs,
			})
		}
	case "bc":
		sources := centrality.SampleSources(g, numSources, cfg.Seed+11)
		t.Note += fmt.Sprintf(", %d sampled sources", len(sources))
		for _, w := range cfg.workers() {
			secs := timing.Time(func() {
				centrality.Betweenness(w, g, centrality.Options{
					Sources: sources, Normalize: true, Strategy: strat,
				})
			})
			t.Add(timing.Measurement{
				Label: cfg.engineLabel("bc"), Workers: w,
				Ops: int64(len(sources)) * g.NumEdges(), Seconds: secs,
			})
		}
	case "closeness":
		sources := centrality.SampleSources(g, numSources, cfg.Seed+12)
		t.Note += fmt.Sprintf(", %d sampled sources", len(sources))
		for _, w := range cfg.workers() {
			secs := timing.Time(func() { centrality.Closeness(w, g, sources, strat) })
			t.Add(timing.Measurement{
				Label: cfg.engineLabel("closeness"), Workers: w,
				Ops: int64(len(sources)) * g.NumEdges(), Seconds: secs,
			})
		}
	case "sssp":
		src := largestComponentVertex(g)
		deltas := cfg.Deltas
		if len(deltas) == 0 {
			deltas = []int64{0}
		}
		t.Note += fmt.Sprintf(", source %d, label weights", src)
		for _, delta := range deltas {
			// One scratch per delta: the cached weighted view is keyed
			// by (graph, delta), so sharing across the worker sweep
			// reuses it while a delta change rebuilds it untimed here.
			scratch := sssp.NewScratch()
			opt := sssp.Options{Delta: delta, Scratch: scratch}
			sssp.Run(g, src, opt) // warm the view and buffers
			for _, w := range cfg.workers() {
				opt.Workers = w
				secs := timing.Time(func() { sssp.Run(g, src, opt) })
				t.Add(timing.Measurement{
					Label: "sssp-delta", Param: deltaParam(delta),
					Workers: w, Ops: g.NumEdges(), Seconds: secs,
				})
			}
		}
		secs := timing.Time(func() { sssp.Dijkstra(g, src, sssp.LabelWeights) })
		t.Add(timing.Measurement{
			Label: "sssp-dijkstra", Workers: 1, Ops: g.NumEdges(), Seconds: secs,
		})
	default:
		panic(fmt.Sprintf("bench: unknown kernel %q (want bfs, bc, closeness, or sssp)", kernel))
	}
	return t
}

// FigPipeline measures the incremental snapshot pipeline — the mixed
// ingest/query workload the paper motivates but never benchmarks as one
// system. Two parts:
//
// First, snapshot-refresh latency vs dirty fraction: after update
// batches touching ~0.1%, 1%, and 10% of the vertices, an incremental
// Refresh (dirty-vertex delta rebuild reusing the previous snapshot's
// clean spans) is timed against the full FromStore rebuild every
// snapshot used to cost.
//
// Second, the sustained pipeline: an ingest thread applies mixed
// batches (75% insertions) and republishes the snapshot after each,
// while queryWorkers goroutines continuously run BFS and delta-stepping
// SSSP over whatever snapshot is current — the RCU read side, never
// blocking on ingest. Reported as sustained MUPS on the ingest series
// and sustained MTEPS (traversed-arc throughput, Ops = arcs per
// completed query summed) on the query series.
func FigPipeline(cfg Config, queryWorkers int) *timing.Table {
	if queryWorkers <= 0 {
		queryWorkers = 4
	}
	n := cfg.n()
	edges := cfg.generate()
	extraCfg := cfg
	extraCfg.Seed += 41
	extra := extraCfg.generate()
	ws := cfg.workers()
	w := ws[len(ws)-1]

	t := &timing.Table{
		Title: "Pipeline: incremental snapshot refresh + concurrent ingest/query",
		Note: cfg.instanceNote() + fmt.Sprintf(
			" (undirected), %d ingest workers, %d query workers", w, queryWorkers),
	}

	// Undirected: every edge contributes both arcs, like the facade's
	// Undirected graphs, so BFS reaches the giant component.
	store := dyngraph.NewTracked(dyngraph.NewHybrid(n, 4*len(edges), 0, cfg.Seed))
	store.ApplyBatch(w, stream.Mirror(stream.Inserts(edges)))
	mgr := snapmgr.New(w, store)

	// Part 1: refresh latency vs dirty fraction. Batches insert fresh
	// mirrored edges over a distinct-source stride so the dirty-vertex
	// count is controlled.
	for _, frac := range []float64{0.001, 0.01, 0.10} {
		k := max(1, int(frac*float64(n))/2) // each mirrored pair dirties ~2 vertices
		batch := make([]edge.Update, 0, 2*k)
		stride := n / k
		if stride < 2 {
			stride = 2
		}
		for i := 0; i < k; i++ {
			u := uint32((i * stride) % n)
			v := extra[i%len(extra)].V
			batch = append(batch,
				edge.Update{Edge: edge.Edge{U: u, V: v, T: 1}, Op: edge.Insert},
				edge.Update{Edge: edge.Edge{U: v, V: u, T: 1}, Op: edge.Insert})
		}
		store.ApplyBatch(w, batch)
		dirty := mgr.Staleness()
		secs := timing.Time(func() { mgr.Refresh(w) })
		t.Add(timing.Measurement{
			Label: "refresh", Param: fmt.Sprintf("dirty=%.2f%%", 100*float64(dirty)/float64(n)),
			Workers: w, Ops: mgr.Current().NumEdges(), Seconds: secs,
		})
	}
	secs := timing.Time(func() { csr.FromStore(w, store) })
	t.Add(timing.Measurement{Label: "full-rebuild", Workers: w, Ops: store.NumEdges(), Seconds: secs})

	// Part 2: sustained mixed ingest/query.
	mixed, err := stream.Mixed(edges, extra, len(extra)/2, 0.75, cfg.Seed+42)
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	batches := stream.Batches(stream.Mirror(mixed), max(2048, n/8))

	// Query roots come from the degree-filtered sampler (like every
	// other figure): sources in the giant component genuinely traverse
	// ~m arcs, keeping the Ops-per-query = NumEdges convention honest.
	sources := centrality.SampleSources(mgr.Current(), 256, cfg.Seed+43)
	stop := make(chan struct{})
	queryArcs := make([]int64, queryWorkers)
	var qwg sync.WaitGroup
	for q := 0; q < queryWorkers; q++ {
		qwg.Add(1)
		go func(q int) {
			defer qwg.Done()
			tsc, res := traversal.NewScratch(), &traversal.Result{}
			ssc := sssp.NewScratch()
			var src [1]uint32
			var arcs int64
			for i := q; ; i++ {
				select {
				case <-stop:
					queryArcs[q] = arcs
					return
				default:
				}
				src[0] = sources[i%len(sources)]
				g := mgr.Current()
				if i%2 == 0 {
					traversal.Run(g, src[:], traversal.Options{Workers: 1}, tsc, res)
				} else {
					sssp.Run(g, edge.ID(src[0]), sssp.Options{Workers: 1, Scratch: ssc})
				}
				arcs += g.NumEdges()
			}
		}(q)
	}

	var applied int64
	elapsed := timing.Time(func() {
		for _, b := range batches {
			store.ApplyBatch(w, b)
			mgr.Refresh(w)
			applied += int64(len(b))
		}
	})
	close(stop)
	qwg.Wait()

	var traversed int64
	for _, a := range queryArcs {
		traversed += a
	}
	t.Add(timing.Measurement{
		Label: "pipeline-ingest", Param: fmt.Sprintf("epochs=%d", mgr.Epoch()),
		Workers: w, Ops: applied, Seconds: elapsed,
	})
	t.Add(timing.Measurement{
		// Not comparable to the kernel figures' MTEPS: each SSSP query
		// on a freshly published epoch also rebuilds the weighted view
		// (the sssp.Scratch cache is keyed by graph pointer), so this
		// series folds view construction into the sustained rate — the
		// price of querying a moving snapshot, deliberately included.
		Label: "pipeline-query(MTEPS)", Param: "bfs+sssp",
		Workers: queryWorkers, Ops: traversed, Seconds: elapsed,
	})
	return t
}

// deltaParam tags an sssp series with its bucket width.
func deltaParam(delta int64) string {
	if delta <= 0 {
		return "delta=auto"
	}
	return fmt.Sprintf("delta=%d", delta)
}

func largestComponentVertex(g *csr.Graph) edge.ID {
	// The highest-degree vertex is in the giant component of an R-MAT
	// graph with overwhelming probability.
	best := edge.ID(0)
	var bestDeg int64
	for u := 0; u < g.N; u++ {
		if d := g.Degree(edge.ID(u)); d > bestDeg {
			bestDeg = d
			best = edge.ID(u)
		}
	}
	return best
}
