package bench

import (
	"strings"
	"testing"

	"snapdyn/internal/timing"
)

// tinyConfig keeps driver tests fast.
func tinyConfig() Config {
	return Config{Scale: 10, EdgeFactor: 8, TimeMax: 100, Seed: 42, Workers: []int{1, 2}}
}

func checkTable(t *testing.T, tbl *timing.Table, wantLabels ...string) {
	t.Helper()
	if len(tbl.Rows) == 0 {
		t.Fatalf("%s: empty table", tbl.Title)
	}
	labels := map[string]bool{}
	for _, m := range tbl.Rows {
		if m.Seconds <= 0 {
			t.Fatalf("%s: non-positive duration in %+v", tbl.Title, m)
		}
		if m.Ops <= 0 {
			t.Fatalf("%s: non-positive ops in %+v", tbl.Title, m)
		}
		labels[m.Label] = true
	}
	for _, w := range wantLabels {
		if !labels[w] {
			t.Fatalf("%s: missing series %q (have %v)", tbl.Title, w, tbl.Labels())
		}
	}
	var sb strings.Builder
	tbl.Fprint(&sb)
	if !strings.Contains(sb.String(), tbl.Title) {
		t.Fatalf("%s: print missing title", tbl.Title)
	}
}

func TestFig1(t *testing.T) {
	tbl := Fig1InsertScaling(tinyConfig(), []int{8, 10})
	checkTable(t, tbl, "dyn-arr-nr")
	if len(tbl.Rows) != 4 { // 2 scales x 2 worker counts
		t.Fatalf("rows = %d, want 4", len(tbl.Rows))
	}
}

func TestFig2(t *testing.T) {
	tbl := Fig2ResizeOverhead(tinyConfig())
	checkTable(t, tbl, "dyn-arr", "dyn-arr-nr")
}

func TestFig3(t *testing.T) {
	tbl := Fig3Partitioning(tinyConfig())
	checkTable(t, tbl, "dyn-arr-nr", "vpart", "epart", "batched-bound(semisort)")
}

func TestFig4(t *testing.T) {
	tbl := Fig4Insertions(tinyConfig())
	checkTable(t, tbl, "dyn-arr", "treaps", "hybrid-arr-treap")
}

func TestFig5(t *testing.T) {
	tbl := Fig5Deletions(tinyConfig(), 0.1)
	checkTable(t, tbl, "dyn-arr", "treaps", "hybrid-arr-treap")
}

func TestFig6(t *testing.T) {
	tbl := Fig6Mixed(tinyConfig())
	checkTable(t, tbl, "dyn-arr", "treaps", "hybrid-arr-treap")
}

func TestFig7(t *testing.T) {
	tbl := Fig7LCTBuild(tinyConfig())
	checkTable(t, tbl, "lct-build")
}

func TestFig8(t *testing.T) {
	tbl := Fig8Queries(tinyConfig(), 10000)
	checkTable(t, tbl, "lct-query")
}

func TestFig9(t *testing.T) {
	tbl := Fig9Subgraph(tinyConfig())
	checkTable(t, tbl, "induced-subgraph")
}

func TestFig10(t *testing.T) {
	tbl := Fig10BFS(tinyConfig())
	checkTable(t, tbl, "temporal-bfs")
}

func TestFig11(t *testing.T) {
	tbl := Fig11TemporalBC(tinyConfig(), 16)
	checkTable(t, tbl, "temporal-bc")
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Scale < 10 || cfg.EdgeFactor < 1 || cfg.TimeMax == 0 {
		t.Fatalf("suspicious default config: %+v", cfg)
	}
	if len(cfg.workers()) == 0 {
		t.Fatal("empty default sweep")
	}
	if cfg.n() != 1<<cfg.Scale || cfg.m() != cfg.EdgeFactor<<cfg.Scale {
		t.Fatal("size computation wrong")
	}
}

func TestKernelSweepSSSP(t *testing.T) {
	cfg := tinyConfig()
	cfg.Deltas = []int64{0, 25}
	tbl := KernelSweep(cfg, "sssp", 0)
	checkTable(t, tbl, "sssp-delta", "sssp-dijkstra")
	// One row per (delta, worker) plus the Dijkstra baseline.
	if want := len(cfg.Deltas)*len(cfg.Workers) + 1; len(tbl.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(tbl.Rows), want)
	}
}
