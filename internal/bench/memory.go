package bench

import (
	"fmt"

	"snapdyn/internal/csr"
	"snapdyn/internal/dyngraph"
	"snapdyn/internal/snapmgr"
	"snapdyn/internal/sssp"
	"snapdyn/internal/stream"
	"snapdyn/internal/timing"
	"snapdyn/internal/traversal"
)

// memoryLayouts is the format sweep FigMemory measures, plain first so
// every other row reads as a delta against the seed format.
var memoryLayouts = []snapmgr.Layout{
	snapmgr.LayoutPlain, snapmgr.LayoutDegree, snapmgr.LayoutBFS,
	snapmgr.LayoutRCM, snapmgr.LayoutCompressed,
}

// FigMemory measures the memory-scale snapshot formats: for every
// storage layout the pipeline can publish (plain, degree-, BFS- and
// RCM-reordered CSR, gap-compressed adjacency) it reports the snapshot
// footprint in bytes per arc alongside the traversal rate (MUPS column =
// MTEPS, arcs inspected per second) of BFS and of the SSSP hook kernel
// on that format, at each scale in scales. The bytes-per-arc rides in
// each row's Param so the JSON artifact carries footprint and rate
// together. Empty scales measures just cfg.Scale.
func FigMemory(cfg Config, scales []int) *timing.Table {
	if len(scales) == 0 {
		scales = []int{cfg.Scale}
	}
	ws := cfg.workers()
	w := ws[len(ws)-1]
	t := &timing.Table{
		Title: "Memory-scale snapshot formats: footprint vs traversal rate",
		Note: fmt.Sprintf(
			"R-MAT m=%dn (undirected), seed=%d, %d workers; B/arc = snapshot bytes per stored arc, MUPS column = MTEPS",
			cfg.EdgeFactor, cfg.Seed, w),
	}
	for _, scale := range scales {
		sc := cfg
		sc.Scale = scale
		measureMemoryScale(t, sc, w)
	}
	return t
}

// measureMemoryScale runs the layout sweep at one scale: one shared
// store, one manager per layout (each publishing its own format of the
// same graph), BFS and SSSP from a giant-component source.
func measureMemoryScale(t *timing.Table, cfg Config, w int) {
	n := cfg.n()
	edges := cfg.generate()
	store := dyngraph.NewTracked(dyngraph.NewHybrid(n, 4*len(edges), 0, cfg.Seed))
	store.ApplyBatch(w, stream.Mirror(stream.Inserts(edges)))
	src := largestComponentVertex(csr.FromStore(w, store))

	scratch := traversal.NewScratch()
	res := &traversal.Result{}
	for _, layout := range memoryLayouts {
		v := snapmgr.NewLayout(w, store, layout).View()
		bpa := float64(v.SizeBytes()) / float64(v.NumEdges())
		param := fmt.Sprintf("n=2^%d B/arc=%.2f", cfg.Scale, bpa)
		lsrc := src
		if v.Perm != nil {
			lsrc = v.Perm[src]
		}
		opt := traversal.Options{Workers: w}
		var bfsSecs, ssspSecs float64
		if v.C != nil {
			bfsSecs = timing.Time(func() { traversal.RunStream(v.C, []uint32{lsrc}, opt, scratch, res) })
			ssspSecs = timing.Time(func() { sssp.RunStream(v.C, lsrc, w, sssp.LabelWeights, nil) })
		} else {
			bfsSecs = timing.Time(func() { traversal.Run(v.G, []uint32{lsrc}, opt, scratch, res) })
			ssspSecs = timing.Time(func() { sssp.Run(v.G, lsrc, sssp.Options{Workers: w}) })
		}
		t.Add(timing.Measurement{
			Label: "bfs(" + layout.String() + ")", Param: param,
			Workers: w, Ops: v.NumEdges(), Seconds: bfsSecs,
		})
		t.Add(timing.Measurement{
			Label: "sssp(" + layout.String() + ")", Param: param,
			Workers: w, Ops: v.NumEdges(), Seconds: ssspSecs,
		})
	}
}
