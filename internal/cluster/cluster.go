// Package cluster implements local clustering coefficients via parallel
// triangle counting — one of the standard small-world diagnostics in the
// SNAP framework this paper's code shipped in (the small-world
// phenomenon is defined by low diameter plus high clustering, the
// "presence of dense sub-graphs" the paper's introduction cites).
//
// The kernel deduplicates and sorts each adjacency once, then counts
// each triangle exactly once as an ordered triple u < v < w by merge
// intersection of neighbor tails, parallelized over vertices with
// dynamic scheduling (hub vertices dominate the work). Corner credits
// are accumulated with atomic adds.
//
// The arena (Scratch) is pooled: a serving layer keeps one per query
// slot and recounts each snapshot with zero steady-state allocations.
// It counts from a plain CSR, a gap-compressed snapshot, or a sharded
// fleet's vertex-partitioned views — all three produce identical
// per-vertex triangle counts on the same graph.
package cluster

import (
	"slices"
	"sync/atomic"

	"snapdyn/internal/compress"
	"snapdyn/internal/csr"
	"snapdyn/internal/edge"
	"snapdyn/internal/par"
)

// Scratch is a reusable triangle-counting arena: the flattened sorted
// deduplicated adjacency plus per-vertex outputs, resized (never
// shrunk) to each input's shape.
type Scratch struct {
	offs []int64  // offs[u] is the start of u's slot; slot width = raw degree
	adj  []uint32 // sorted, deduplicated, loop-free; valid prefix deg[u] per slot
	deg  []int32  // simple (deduplicated, loop-free) degree
	tri  []int64  // triangles through each vertex
}

// NewScratch returns an empty arena.
func NewScratch() *Scratch { return &Scratch{} }

// Triangles returns the per-vertex triangle counts of the last
// Compute* call (a view into the arena; valid until the next call).
func (s *Scratch) Triangles() []int64 { return s.tri }

// SimpleDegrees returns the per-vertex simple degrees (self loops and
// parallel edges removed) of the last Compute* call.
func (s *Scratch) SimpleDegrees() []int32 { return s.deg }

// Aggregate folds the last Compute* call's per-vertex triangle counts
// into the serving aggregates, visiting vertices as ids 0..n-1 mapped
// through toLayout (identity when storage is unpermuted): the global
// triangle count (each triangle once), the number of vertices with
// simple degree >= 2, and their mean local clustering coefficient. The
// fixed visit order makes the float mean bit-identical for every
// storage permutation of the same graph — the property the serving
// layer's cross-layout equivalence guarantee rests on.
func (s *Scratch) Aggregate(toLayout func(uint32) uint32, n int) (triangles, counted int64, avgLocal float64) {
	var sum float64
	for orig := 0; orig < n; orig++ {
		u := toLayout(uint32(orig))
		triangles += s.tri[u]
		if d := int64(s.deg[u]); d >= 2 {
			sum += 2 * float64(s.tri[u]) / float64(d*(d-1))
			counted++
		}
	}
	triangles /= 3
	if counted > 0 {
		avgLocal = sum / float64(counted)
	}
	return triangles, counted, avgLocal
}

// ComputeCSR counts triangles over a symmetric CSR snapshot (both arcs
// of every undirected edge present). Self loops and parallel edges are
// ignored. The workers == 1 path is closure-free: par closure literals
// escape into the fan-out goroutines regardless of the branch taken
// (escape analysis is not flow-sensitive), and the serving layer's
// steady-state query path must not allocate.
func (s *Scratch) ComputeCSR(workers int, g *csr.Graph) {
	n := g.N
	s.resize(n, int64(len(g.Adj)))
	copy(s.offs, g.Offsets)
	if workers == 1 {
		for u := 0; u < n; u++ {
			raw, _ := g.Neighbors(edge.ID(u))
			s.dedupInto(uint32(u), raw)
		}
		s.countSerial(n)
		return
	}
	s.dedupCSRParallel(workers, g)
	s.count(workers, n)
}

func (s *Scratch) dedupCSRParallel(workers int, g *csr.Graph) {
	par.ForDynamic(workers, g.N, 128, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			raw, _ := g.Neighbors(edge.ID(u))
			s.dedupInto(uint32(u), raw)
		}
	})
}

// ComputeStream counts triangles over a gap-compressed snapshot,
// decoding each adjacency once into the arena.
func (s *Scratch) ComputeStream(workers int, cg *compress.Graph) {
	n := cg.N
	s.resize(n, cg.NumEdges())
	var off int64
	for u := 0; u < n; u++ {
		s.offs[u] = off
		off += cg.Degree(edge.ID(u))
	}
	s.offs[n] = off
	if workers == 1 {
		s.dedupStreamRange(cg, 0, n)
		s.countSerial(n)
		return
	}
	s.dedupStreamParallel(workers, cg)
	s.count(workers, n)
}

func (s *Scratch) dedupStreamParallel(workers int, cg *compress.Graph) {
	par.ForDynamic(workers, cg.N, 128, func(lo, hi int) {
		s.dedupStreamRange(cg, lo, hi)
	})
}

// dedupStreamRange decodes and dedups the adjacencies of [lo, hi).
// Decoded arcs arrive in increasing neighbor order, so each slot is
// already sorted: write then dedup in place.
func (s *Scratch) dedupStreamRange(cg *compress.Graph, lo, hi int) {
	var cur compress.Cursor
	for u := lo; u < hi; u++ {
		p := s.offs[u]
		cg.Begin(&cur, edge.ID(u))
		for {
			v, _, ok := cur.Next()
			if !ok {
				break
			}
			s.adj[p] = uint32(v)
			p++
		}
		s.dedupSorted(uint32(u))
	}
}

// ComputeViews counts triangles over a vertex-partitioned fleet: all
// arcs out of u live in views[u % len(views)] (the fleet's owner
// mapping), each view a full-width CSR.
func (s *Scratch) ComputeViews(workers int, views []*csr.Graph) {
	p := len(views)
	n := views[0].N
	var m int64
	for _, g := range views {
		m += int64(len(g.Adj))
	}
	s.resize(n, m)
	var off int64
	for u := 0; u < n; u++ {
		s.offs[u] = off
		off += views[u%p].Degree(edge.ID(u))
	}
	s.offs[n] = off
	if workers == 1 {
		for u := 0; u < n; u++ {
			raw, _ := views[u%p].Neighbors(edge.ID(u))
			s.dedupInto(uint32(u), raw)
		}
		s.countSerial(n)
		return
	}
	s.dedupViewsParallel(workers, views)
	s.count(workers, n)
}

func (s *Scratch) dedupViewsParallel(workers int, views []*csr.Graph) {
	p := len(views)
	par.ForDynamic(workers, views[0].N, 128, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			raw, _ := views[u%p].Neighbors(edge.ID(u))
			s.dedupInto(uint32(u), raw)
		}
	})
}

// resize shapes the arena for n vertices and m raw arcs.
func (s *Scratch) resize(n int, m int64) {
	if cap(s.offs) < n+1 {
		s.offs = make([]int64, n+1)
	}
	s.offs = s.offs[:n+1]
	if int64(cap(s.adj)) < m {
		s.adj = make([]uint32, m)
	}
	s.adj = s.adj[:m]
	if cap(s.deg) < n {
		s.deg = make([]int32, n)
		s.tri = make([]int64, n)
	}
	s.deg = s.deg[:n]
	s.tri = s.tri[:n]
}

// dedupInto copies u's raw adjacency into its slot, sorts it, and
// deduplicates in place.
func (s *Scratch) dedupInto(u uint32, raw []uint32) {
	lo := s.offs[u]
	nb := s.adj[lo : lo+int64(len(raw))]
	copy(nb, raw)
	slices.Sort(nb)
	s.dedupSorted(u)
}

// dedupSorted compacts u's already-sorted slot, dropping self loops and
// duplicates, and records the simple degree.
func (s *Scratch) dedupSorted(u uint32) {
	lo, hi := s.offs[u], s.offs[u+1]
	nb := s.adj[lo:hi]
	w := 0
	for _, v := range nb {
		if v == u {
			continue
		}
		if w > 0 && nb[w-1] == v {
			continue
		}
		nb[w] = v
		w++
	}
	s.deg[u] = int32(w)
}

// searchAbove returns the index of the first element of a (sorted
// ascending) strictly greater than x — an inlined binary search, so the
// hot counting loop builds no closures.
func searchAbove(a []uint32, x uint32) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// countSerial is count without atomics or closures — the workers == 1
// path of every Compute* entry, kept allocation-free for the serving
// layer's pooled steady state.
func (s *Scratch) countSerial(n int) {
	for i := range s.tri {
		s.tri[i] = 0
	}
	for u := 0; u < n; u++ {
		nu := s.adj[s.offs[u] : s.offs[u]+int64(s.deg[u])]
		for _, v := range nu[searchAbove(nu, uint32(u)):] {
			nv := s.adj[s.offs[v] : s.offs[v]+int64(s.deg[v])]
			a := nu[searchAbove(nu, v):]
			b := nv[searchAbove(nv, v):]
			x, y := 0, 0
			for x < len(a) && y < len(b) {
				switch {
				case a[x] < b[y]:
					x++
				case a[x] > b[y]:
					y++
				default:
					w := a[x]
					s.tri[u]++
					s.tri[v]++
					s.tri[w]++
					x++
					y++
				}
			}
		}
	}
}

// count enumerates each triangle once as an ordered triple u < v < w by
// merge intersection of the sorted neighbor tails, crediting all three
// corners atomically.
func (s *Scratch) count(workers int, n int) {
	for i := range s.tri {
		s.tri[i] = 0
	}
	par.ForDynamic(workers, n, 64, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			nu := s.adj[s.offs[u] : s.offs[u]+int64(s.deg[u])]
			for _, v := range nu[searchAbove(nu, uint32(u)):] {
				nv := s.adj[s.offs[v] : s.offs[v]+int64(s.deg[v])]
				// Common neighbors w > v close triangles u < v < w.
				a := nu[searchAbove(nu, v):]
				b := nv[searchAbove(nv, v):]
				x, y := 0, 0
				for x < len(a) && y < len(b) {
					switch {
					case a[x] < b[y]:
						x++
					case a[x] > b[y]:
						y++
					default:
						w := a[x]
						atomic.AddInt64(&s.tri[u], 1)
						atomic.AddInt64(&s.tri[v], 1)
						atomic.AddInt64(&s.tri[w], 1)
						x++
						y++
					}
				}
			}
		}
	})
}

// Coefficients holds per-vertex triangle statistics.
type Coefficients struct {
	// Triangles[v] is the number of triangles through v.
	Triangles []int64
	// Local[v] is the local clustering coefficient:
	// 2*Triangles[v] / (deg[v]*(deg[v]-1)) over the simple (deduplicated,
	// loop-free) degree; 0 for degree < 2.
	Local []float64
	// TotalTriangles is the global triangle count (each counted once).
	TotalTriangles int64
	// GlobalAverage is the mean of Local over vertices with degree >= 2.
	GlobalAverage float64
}

// Compute counts triangles and clustering coefficients over a symmetric
// snapshot (both arcs of every undirected edge present). Self loops and
// parallel edges are ignored. It is the one-shot convenience over a
// fresh Scratch; pooled callers use Scratch directly.
func Compute(workers int, g *csr.Graph) *Coefficients {
	s := NewScratch()
	s.ComputeCSR(workers, g)
	n := g.N
	c := &Coefficients{
		Triangles: append([]int64(nil), s.tri...),
		Local:     make([]float64, n),
	}
	var total int64
	counted := 0
	var sum float64
	for v := 0; v < n; v++ {
		total += c.Triangles[v]
		d := int(s.deg[v])
		if d >= 2 {
			c.Local[v] = 2 * float64(c.Triangles[v]) / float64(d*(d-1))
			sum += c.Local[v]
			counted++
		}
	}
	c.TotalTriangles = total / 3
	if counted > 0 {
		c.GlobalAverage = sum / float64(counted)
	}
	return c
}
