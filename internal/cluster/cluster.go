// Package cluster implements local clustering coefficients via parallel
// triangle counting — one of the standard small-world diagnostics in the
// SNAP framework this paper's code shipped in (the small-world
// phenomenon is defined by low diameter plus high clustering, the
// "presence of dense sub-graphs" the paper's introduction cites).
//
// The kernel deduplicates and sorts each adjacency once, then counts
// each triangle exactly once as an ordered triple u < v < w by merge
// intersection of neighbor tails, parallelized over vertices with
// dynamic scheduling (hub vertices dominate the work). Corner credits
// are accumulated with atomic adds.
package cluster

import (
	"sort"
	"sync/atomic"

	"snapdyn/internal/csr"
	"snapdyn/internal/edge"
	"snapdyn/internal/par"
)

// Coefficients holds per-vertex triangle statistics.
type Coefficients struct {
	// Triangles[v] is the number of triangles through v.
	Triangles []int64
	// Local[v] is the local clustering coefficient:
	// 2*Triangles[v] / (deg[v]*(deg[v]-1)) over the simple (deduplicated,
	// loop-free) degree; 0 for degree < 2.
	Local []float64
	// TotalTriangles is the global triangle count (each counted once).
	TotalTriangles int64
	// GlobalAverage is the mean of Local over vertices with degree >= 2.
	GlobalAverage float64
}

// Compute counts triangles and clustering coefficients over a symmetric
// snapshot (both arcs of every undirected edge present). Self loops and
// parallel edges are ignored.
func Compute(workers int, g *csr.Graph) *Coefficients {
	n := g.N
	// Deduplicated, sorted adjacency without self loops.
	adj := make([][]uint32, n)
	par.ForDynamic(workers, n, 128, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			raw, _ := g.Neighbors(edge.ID(u))
			nb := append([]uint32(nil), raw...)
			sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
			w := 0
			for _, v := range nb {
				if v == uint32(u) {
					continue
				}
				if w > 0 && nb[w-1] == v {
					continue
				}
				nb[w] = v
				w++
			}
			adj[u] = nb[:w]
		}
	})

	c := &Coefficients{
		Triangles: make([]int64, n),
		Local:     make([]float64, n),
	}
	par.ForDynamic(workers, n, 64, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			nu := adj[u]
			start := sort.Search(len(nu), func(i int) bool { return nu[i] > uint32(u) })
			for _, v := range nu[start:] {
				nv := adj[v]
				// Common neighbors w > v close triangles u < v < w.
				i := sort.Search(len(nu), func(k int) bool { return nu[k] > v })
				j := sort.Search(len(nv), func(k int) bool { return nv[k] > v })
				a, b := nu[i:], nv[j:]
				x, y := 0, 0
				for x < len(a) && y < len(b) {
					switch {
					case a[x] < b[y]:
						x++
					case a[x] > b[y]:
						y++
					default:
						w := a[x]
						atomic.AddInt64(&c.Triangles[u], 1)
						atomic.AddInt64(&c.Triangles[v], 1)
						atomic.AddInt64(&c.Triangles[w], 1)
						x++
						y++
					}
				}
			}
		}
	})

	var total int64
	counted := 0
	var sum float64
	for v := 0; v < n; v++ {
		total += c.Triangles[v]
		d := len(adj[v])
		if d >= 2 {
			c.Local[v] = 2 * float64(c.Triangles[v]) / float64(d*(d-1))
			sum += c.Local[v]
			counted++
		}
	}
	c.TotalTriangles = total / 3
	if counted > 0 {
		c.GlobalAverage = sum / float64(counted)
	}
	return c
}
