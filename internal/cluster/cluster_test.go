package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"snapdyn/internal/csr"
	"snapdyn/internal/edge"
	"snapdyn/internal/rmat"
	"snapdyn/internal/xrand"
)

func undirectedGraph(n int, es ...[2]uint32) *csr.Graph {
	edges := make([]edge.Edge, len(es))
	for i, e := range es {
		edges[i] = edge.Edge{U: e[0], V: e[1]}
	}
	return csr.FromEdges(1, n, edges, true)
}

func TestTriangle(t *testing.T) {
	g := undirectedGraph(3, [2]uint32{0, 1}, [2]uint32{1, 2}, [2]uint32{2, 0})
	c := Compute(2, g)
	if c.TotalTriangles != 1 {
		t.Fatalf("triangles = %d, want 1", c.TotalTriangles)
	}
	for v := 0; v < 3; v++ {
		if c.Triangles[v] != 1 {
			t.Fatalf("Triangles[%d] = %d", v, c.Triangles[v])
		}
		if math.Abs(c.Local[v]-1.0) > 1e-12 {
			t.Fatalf("Local[%d] = %v, want 1", v, c.Local[v])
		}
	}
	if math.Abs(c.GlobalAverage-1.0) > 1e-12 {
		t.Fatalf("global = %v", c.GlobalAverage)
	}
}

func TestStarHasNoTriangles(t *testing.T) {
	g := undirectedGraph(5, [2]uint32{0, 1}, [2]uint32{0, 2}, [2]uint32{0, 3}, [2]uint32{0, 4})
	c := Compute(2, g)
	if c.TotalTriangles != 0 || c.GlobalAverage != 0 {
		t.Fatalf("star stats wrong: %+v", c)
	}
}

func TestK4(t *testing.T) {
	// Complete graph on 4 vertices: 4 triangles, all coefficients 1.
	var es [][2]uint32
	for u := uint32(0); u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			es = append(es, [2]uint32{u, v})
		}
	}
	g := undirectedGraph(4, es...)
	c := Compute(1, g)
	if c.TotalTriangles != 4 {
		t.Fatalf("K4 triangles = %d, want 4", c.TotalTriangles)
	}
	for v := 0; v < 4; v++ {
		if c.Triangles[v] != 3 || math.Abs(c.Local[v]-1) > 1e-12 {
			t.Fatalf("K4 vertex %d: %d triangles, local %v", v, c.Triangles[v], c.Local[v])
		}
	}
}

func TestSquareWithDiagonal(t *testing.T) {
	// 0-1-2-3-0 plus diagonal 0-2: triangles (0,1,2) and (0,2,3).
	g := undirectedGraph(4,
		[2]uint32{0, 1}, [2]uint32{1, 2}, [2]uint32{2, 3}, [2]uint32{3, 0}, [2]uint32{0, 2})
	c := Compute(2, g)
	if c.TotalTriangles != 2 {
		t.Fatalf("triangles = %d, want 2", c.TotalTriangles)
	}
	if c.Triangles[0] != 2 || c.Triangles[2] != 2 || c.Triangles[1] != 1 || c.Triangles[3] != 1 {
		t.Fatalf("per-vertex = %v", c.Triangles)
	}
	// Vertex 1: degree 2, 1 triangle -> coefficient 1.
	if math.Abs(c.Local[1]-1) > 1e-12 {
		t.Fatalf("Local[1] = %v", c.Local[1])
	}
	// Vertex 0: degree 3, 2 triangles -> 2*2/(3*2) = 2/3.
	if math.Abs(c.Local[0]-2.0/3) > 1e-12 {
		t.Fatalf("Local[0] = %v", c.Local[0])
	}
}

func TestDuplicatesAndLoopsIgnored(t *testing.T) {
	g := undirectedGraph(3,
		[2]uint32{0, 1}, [2]uint32{0, 1}, // parallel
		[2]uint32{1, 2}, [2]uint32{2, 0},
		[2]uint32{1, 1}, // loop
	)
	c := Compute(1, g)
	if c.TotalTriangles != 1 {
		t.Fatalf("triangles = %d, want 1 (dups/loops ignored)", c.TotalTriangles)
	}
	if math.Abs(c.Local[1]-1) > 1e-12 {
		t.Fatalf("Local[1] = %v, want 1 (simple degree 2)", c.Local[1])
	}
}

// bruteTriangles counts triangles by scanning all triples.
func bruteTriangles(n int, es [][2]uint32) int64 {
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	for _, e := range es {
		if e[0] != e[1] {
			adj[e[0]][e[1]] = true
			adj[e[1]][e[0]] = true
		}
	}
	var c int64
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !adj[u][v] {
				continue
			}
			for w := v + 1; w < n; w++ {
				if adj[u][w] && adj[v][w] {
					c++
				}
			}
		}
	}
	return c
}

func TestMatchesBruteForceProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		n := 6 + int(r.Uint32n(14))
		var es [][2]uint32
		for i := 0; i < 3*n; i++ {
			es = append(es, [2]uint32{r.Uint32n(uint32(n)), r.Uint32n(uint32(n))})
		}
		g := undirectedGraph(n, es...)
		c := Compute(2, g)
		return c.TotalTriangles == bruteTriangles(n, es)
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestWorkerInvariance(t *testing.T) {
	p := rmat.PaperParams(9, 6*(1<<9), 0, 5)
	edgesL, _ := rmat.Generate(0, p)
	g := csr.FromEdges(0, p.NumVertices(), edgesL, true)
	a := Compute(1, g)
	b := Compute(8, g)
	if a.TotalTriangles != b.TotalTriangles {
		t.Fatalf("totals differ: %d vs %d", a.TotalTriangles, b.TotalTriangles)
	}
	for v := range a.Triangles {
		if a.Triangles[v] != b.Triangles[v] {
			t.Fatalf("Triangles[%d] differs", v)
		}
	}
}

func TestSmallWorldHasClustering(t *testing.T) {
	// R-MAT with a=0.6 produces dense subgraphs: the average clustering
	// coefficient must be far above an Erdos-Renyi graph of equal density.
	p := rmat.PaperParams(11, 8*(1<<11), 0, 9)
	edgesL, _ := rmat.Generate(0, p)
	g := csr.FromEdges(0, p.NumVertices(), edgesL, true)
	c := Compute(0, g)
	if c.TotalTriangles == 0 {
		t.Fatal("no triangles in an R-MAT graph")
	}
	if c.GlobalAverage < 0.01 {
		t.Fatalf("average clustering %v suspiciously low", c.GlobalAverage)
	}
}
