package cluster

import (
	"testing"

	"snapdyn/internal/compress"
	"snapdyn/internal/csr"
	"snapdyn/internal/edge"
	"snapdyn/internal/rmat"
	"snapdyn/internal/xrand"
)

func rmatGraph(t *testing.T, scale int, seed uint64) (*csr.Graph, []edge.Edge) {
	t.Helper()
	n := 1 << scale
	edges, err := rmat.Generate(2, rmat.PaperParams(scale, 8*n, 1000, seed))
	if err != nil {
		t.Fatal(err)
	}
	return csr.FromEdges(2, n, edges, true), edges
}

func identity(u uint32) uint32 { return u }

// TestAggregateMatchesCompute pins the pooled aggregation against the
// one-shot Compute path: identical triangle total, qualifying-vertex
// count, and bitwise-identical mean (both fold in ascending vertex
// order).
func TestAggregateMatchesCompute(t *testing.T) {
	g, _ := rmatGraph(t, 8, 3)
	n := g.N
	want := Compute(1, g)

	s := NewScratch()
	s.ComputeCSR(1, g)
	tri, counted, avg := s.Aggregate(identity, n)
	if tri != want.TotalTriangles {
		t.Fatalf("Aggregate triangles = %d, Compute %d", tri, want.TotalTriangles)
	}
	if avg != want.GlobalAverage {
		t.Fatalf("Aggregate avg = %v, Compute %v (bitwise)", avg, want.GlobalAverage)
	}

	// counted, independently: vertices with deduplicated loop-free
	// degree at least 2.
	wantCounted := int64(0)
	seen := map[uint32]bool{}
	for u := 0; u < n; u++ {
		clear(seen)
		adj, _ := g.Neighbors(edge.ID(u))
		for _, v := range adj {
			if v != uint32(u) {
				seen[v] = true
			}
		}
		if len(seen) >= 2 {
			wantCounted++
		}
	}
	if counted != wantCounted {
		t.Fatalf("Aggregate counted = %d, want %d", counted, wantCounted)
	}
}

// TestAggregatePermutationInvariance is the property the serving
// layer's cross-layout bit-identity rests on: counting over any vertex
// relabeling of the same graph and aggregating through the matching
// original→layout map reproduces the plain answer bitwise — same
// triangle integers, same float mean, summed in the same order.
func TestAggregatePermutationInvariance(t *testing.T) {
	g, edges := rmatGraph(t, 8, 5)
	n := g.N

	s := NewScratch()
	s.ComputeCSR(1, g)
	tri, counted, avg := s.Aggregate(identity, n)

	r := xrand.New(17)
	perm := make([]uint32, n)
	for i := range perm {
		perm[i] = uint32(i)
	}
	for i := n - 1; i > 0; i-- {
		j := int(r.Uint32n(uint32(i + 1)))
		perm[i], perm[j] = perm[j], perm[i]
	}
	relabeled := make([]edge.Edge, len(edges))
	for i, e := range edges {
		relabeled[i] = edge.Edge{U: perm[e.U], V: perm[e.V], T: e.T}
	}
	gp := csr.FromEdges(2, n, relabeled, true)

	sp := NewScratch()
	sp.ComputeCSR(1, gp)
	ptri, pcounted, pavg := sp.Aggregate(func(orig uint32) uint32 { return perm[orig] }, n)
	if ptri != tri || pcounted != counted {
		t.Fatalf("permuted counts (%d, %d), plain (%d, %d)", ptri, pcounted, tri, counted)
	}
	if pavg != avg {
		t.Fatalf("permuted avg = %v, plain %v (must be bitwise equal)", pavg, avg)
	}
}

// TestComputeVariantsMatchCSR checks all three input representations —
// plain CSR, gap-compressed stream, and a vertex-partitioned fleet view
// set — produce identical per-vertex triangle counts and aggregates, at
// the serial serving config and with parallel workers.
func TestComputeVariantsMatchCSR(t *testing.T) {
	g, edges := rmatGraph(t, 8, 7)
	n := g.N

	ref := NewScratch()
	ref.ComputeCSR(1, g)
	tri, counted, avg := ref.Aggregate(identity, n)
	refTri := append([]int64(nil), ref.Triangles()...)

	check := func(name string, s *Scratch) {
		t.Helper()
		got := s.Triangles()
		for v := range refTri {
			if got[v] != refTri[v] {
				t.Fatalf("%s: Triangles[%d] = %d, want %d", name, v, got[v], refTri[v])
			}
		}
		gtri, gcounted, gavg := s.Aggregate(identity, n)
		if gtri != tri || gcounted != counted || gavg != avg {
			t.Fatalf("%s: aggregates (%d, %d, %v), want (%d, %d, %v)", name, gtri, gcounted, gavg, tri, counted, avg)
		}
	}

	par := NewScratch()
	par.ComputeCSR(4, g)
	check("csr workers=4", par)

	cg := compress.FromCSR(2, g)
	for _, w := range []int{1, 4} {
		s := NewScratch()
		s.ComputeStream(w, cg)
		check("stream", s)
	}

	// Vertex-partitioned views: all arcs out of u in views[u % p], each
	// view full-width — the fleet's owner mapping. Mirror by hand so the
	// directed arcs land with their tail's owner.
	var arcs []edge.Edge
	for _, e := range edges {
		arcs = append(arcs, e)
		if e.U != e.V {
			arcs = append(arcs, edge.Edge{U: e.V, V: e.U, T: e.T})
		}
	}
	for _, p := range []int{1, 2, 3, 4} {
		parts := make([][]edge.Edge, p)
		for _, a := range arcs {
			s := int(a.U) % p
			parts[s] = append(parts[s], a)
		}
		views := make([]*csr.Graph, p)
		for s := range views {
			views[s] = csr.FromEdges(1, n, parts[s], false)
		}
		for _, w := range []int{1, 4} {
			s := NewScratch()
			s.ComputeViews(w, views)
			check("views", s)
		}
	}
}
