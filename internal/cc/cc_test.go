package cc

import (
	"testing"

	"snapdyn/internal/csr"
	"snapdyn/internal/edge"
	"snapdyn/internal/rmat"
	"snapdyn/internal/xrand"
)

func graphOf(n int, undirected bool, es ...[2]uint32) *csr.Graph {
	edges := make([]edge.Edge, len(es))
	for i, e := range es {
		edges[i] = edge.Edge{U: e[0], V: e[1]}
	}
	return csr.FromEdges(2, n, edges, undirected)
}

func TestTwoComponents(t *testing.T) {
	g := graphOf(6, true, [2]uint32{0, 1}, [2]uint32{1, 2}, [2]uint32{3, 4})
	comp := Components(4, g)
	if Count(comp) != 3 { // {0,1,2}, {3,4}, {5}
		t.Fatalf("components = %d, want 3", Count(comp))
	}
	if !SameComponent(comp, 0, 2) || SameComponent(comp, 0, 3) || SameComponent(comp, 4, 5) {
		t.Fatal("component membership wrong")
	}
}

func TestSingletons(t *testing.T) {
	g := graphOf(5, true)
	comp := Components(2, g)
	if Count(comp) != 5 {
		t.Fatalf("components = %d, want 5", Count(comp))
	}
}

func TestChainAndCycle(t *testing.T) {
	// A long chain stresses pointer jumping.
	const n = 2000
	var es [][2]uint32
	for i := uint32(0); i < n-1; i++ {
		es = append(es, [2]uint32{i, i + 1})
	}
	g := graphOf(n, true, es...)
	comp := Components(4, g)
	if Count(comp) != 1 {
		t.Fatalf("chain components = %d, want 1", Count(comp))
	}
	for u := 1; u < n; u++ {
		if comp[u] != comp[0] {
			t.Fatalf("vertex %d not in chain component", u)
		}
	}
}

func TestLargest(t *testing.T) {
	g := graphOf(7, true, [2]uint32{0, 1}, [2]uint32{1, 2}, [2]uint32{2, 3}, [2]uint32{5, 6})
	comp := Components(1, g)
	label, size := Largest(2, comp)
	if size != 4 {
		t.Fatalf("largest size = %d, want 4", size)
	}
	if comp[0] != label {
		t.Fatal("largest label mismatch")
	}
}

// bfsComponents is a sequential reference labeling.
func bfsComponents(g *csr.Graph) []int {
	comp := make([]int, g.N)
	for i := range comp {
		comp[i] = -1
	}
	// Treat arcs as undirected: build reverse adjacency too.
	radj := make([][]uint32, g.N)
	for u := 0; u < g.N; u++ {
		adj, _ := g.Neighbors(edge.ID(u))
		for _, v := range adj {
			radj[v] = append(radj[v], uint32(u))
		}
	}
	label := 0
	for s := 0; s < g.N; s++ {
		if comp[s] >= 0 {
			continue
		}
		queue := []uint32{uint32(s)}
		comp[s] = label
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			adj, _ := g.Neighbors(u)
			for _, v := range adj {
				if comp[v] < 0 {
					comp[v] = label
					queue = append(queue, v)
				}
			}
			for _, v := range radj[u] {
				if comp[v] < 0 {
					comp[v] = label
					queue = append(queue, v)
				}
			}
		}
		label++
	}
	return comp
}

func TestMatchesBFSOnRMAT(t *testing.T) {
	p := rmat.PaperParams(10, 3*(1<<10), 0, 5)
	edges, _ := rmat.Generate(0, p)
	g := csr.FromEdges(4, p.NumVertices(), edges, false)
	comp := Components(4, g)
	ref := bfsComponents(g)
	// The two labelings must induce the same partition.
	seen := map[uint32]int{}
	for u := range comp {
		if r, ok := seen[comp[u]]; ok {
			if r != ref[u] {
				t.Fatalf("vertex %d: SV label %d maps to ref %d and %d", u, comp[u], r, ref[u])
			}
		} else {
			seen[comp[u]] = ref[u]
		}
	}
	refCount := 0
	for _, r := range ref {
		if r+1 > refCount {
			refCount = r + 1
		}
	}
	if Count(comp) != refCount {
		t.Fatalf("component count %d != reference %d", Count(comp), refCount)
	}
}

func TestDeterministicAcrossWorkers(t *testing.T) {
	r := xrand.New(8)
	var es [][2]uint32
	for i := 0; i < 3000; i++ {
		es = append(es, [2]uint32{r.Uint32n(500), r.Uint32n(500)})
	}
	g := graphOf(500, true, es...)
	c1 := Components(1, g)
	c8 := Components(8, g)
	// Partitions must agree (labels are canonical minima, so they must
	// be identical).
	for u := range c1 {
		if c1[u] != c8[u] {
			t.Fatalf("labels differ at %d: %d vs %d", u, c1[u], c8[u])
		}
	}
}

func TestCensus(t *testing.T) {
	g := graphOf(7, true, [2]uint32{0, 1}, [2]uint32{1, 2}, [2]uint32{2, 3}, [2]uint32{5, 6})
	comp := Components(2, g)
	sizes := Census(2, comp)
	if len(sizes) != 7 {
		t.Fatalf("census length %d", len(sizes))
	}
	if sizes[comp[0]] != 4 || sizes[comp[5]] != 2 || sizes[comp[4]] != 1 {
		t.Fatalf("census sizes wrong: %v", sizes)
	}
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 7 {
		t.Fatalf("census total %d", total)
	}
}

func TestLargestTieBreaksToSmallestLabel(t *testing.T) {
	// Two components of equal size: {0,1} and {2,3}; label 0 must win.
	g := graphOf(4, true, [2]uint32{0, 1}, [2]uint32{2, 3})
	comp := Components(1, g)
	label, size := Largest(2, comp)
	if size != 2 || label != comp[0] {
		t.Fatalf("largest = (%d,%d), want (%d,2)", label, size, comp[0])
	}
}

func TestCountLargestAgreeOnRMAT(t *testing.T) {
	p := rmat.PaperParams(12, 2*(1<<12), 0, 77)
	edges, _ := rmat.Generate(0, p)
	g := csr.FromEdges(4, p.NumVertices(), edges, true)
	comp := Components(4, g)
	// Reference census with a map, cross-checking the O(n) versions.
	counts := map[uint32]int{}
	for _, l := range comp {
		counts[l]++
	}
	if Count(comp) != len(counts) {
		t.Fatalf("count %d != map count %d", Count(comp), len(counts))
	}
	wantLabel, wantSize := uint32(0), 0
	for l, s := range counts {
		if s > wantSize || (s == wantSize && l < wantLabel) {
			wantLabel, wantSize = l, s
		}
	}
	label, size := Largest(2, comp)
	if label != wantLabel || size != wantSize {
		t.Fatalf("largest = (%d,%d), want (%d,%d)", label, size, wantLabel, wantSize)
	}
}

func TestCensusParallelMatchesSerial(t *testing.T) {
	// Large enough to cross censusParCutoff so the per-worker count +
	// reduce path is exercised, with a giant component to create the
	// hot-label contention the parallel path is designed to avoid.
	p := rmat.PaperParams(15, 4*(1<<15), 0, 9)
	edges, _ := rmat.Generate(0, p)
	g := csr.FromEdges(0, p.NumVertices(), edges, true)
	comp := Components(0, g)
	serial := Census(1, comp)
	for _, workers := range []int{2, 4, 8} {
		got := Census(workers, comp)
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: census[%d] = %d, want %d", workers, i, got[i], serial[i])
			}
		}
	}
	l1, s1 := Largest(1, comp)
	l8, s8 := Largest(8, comp)
	if l1 != l8 || s1 != s8 {
		t.Fatalf("Largest differs across workers: (%d,%d) vs (%d,%d)", l1, s1, l8, s8)
	}
}

func TestEmpty(t *testing.T) {
	g := graphOf(0, true)
	comp := Components(2, g)
	if len(comp) != 0 || Count(comp) != 0 {
		t.Fatal("empty graph mishandled")
	}
}
