// Package cc implements parallel connected components over CSR snapshots
// using the Shiloach-Vishkin style hook-and-compress iteration the SNAP
// framework uses: repeatedly hook higher-labeled roots onto lower-labeled
// neighbors, then pointer-jump until the label forest flattens. On
// low-diameter small-world graphs the iteration count is small.
//
// The component labeling feeds link-cut-tree forest construction
// (internal/lct) and component census queries.
package cc

import (
	"sync/atomic"

	"snapdyn/internal/csr"
	"snapdyn/internal/edge"
	"snapdyn/internal/par"
)

// Components returns a label array: comp[u] == comp[v] iff u and v are in
// the same weakly-connected component (arcs are treated as undirected
// edges). Labels are canonical vertex ids (the minimum id reachable by
// the hooking process, a component representative).
func Components(workers int, g *csr.Graph) []uint32 {
	n := g.N
	comp := make([]uint32, n)
	for i := range comp {
		comp[i] = uint32(i)
	}
	if n == 0 {
		return comp
	}
	for {
		var changed atomic.Bool
		// Hook: for every arc (u,v), point the root of the larger label
		// at the smaller label.
		par.ForDynamic(workers, n, 256, func(lo, hi int) {
			for u := lo; u < hi; u++ {
				adj, _ := g.Neighbors(edge.ID(u))
				cu := atomic.LoadUint32(&comp[u])
				for _, v := range adj {
					cv := atomic.LoadUint32(&comp[v])
					if cu == cv {
						continue
					}
					hi32, lo32 := cu, cv
					if hi32 < lo32 {
						hi32, lo32 = lo32, hi32
					}
					// Hook root(hi) -> lo when hi is still a root; a
					// failed CAS just defers to a later iteration.
					if atomic.CompareAndSwapUint32(&comp[hi32], hi32, lo32) {
						changed.Store(true)
					}
					cu = atomic.LoadUint32(&comp[u])
				}
			}
		})
		// Compress: full pointer jumping.
		par.ForDynamic(workers, n, 1024, func(lo, hi int) {
			for u := lo; u < hi; u++ {
				c := atomic.LoadUint32(&comp[u])
				for {
					cc := atomic.LoadUint32(&comp[c])
					if cc == c {
						break
					}
					c = cc
				}
				atomic.StoreUint32(&comp[u], c)
			}
		})
		if !changed.Load() {
			return comp
		}
	}
}

// Count returns the number of distinct components in a label array.
// Labels are canonical (comp[l] == l for every label l after the
// hook-and-compress iteration), so counting self-rooted entries is an
// O(n) time, O(1) space census.
func Count(comp []uint32) int {
	c := 0
	for i, l := range comp {
		if uint32(i) == l {
			c++
		}
	}
	return c
}

// Largest returns the label and size of the largest component (smallest
// label on ties). Labels are canonical vertex ids, so sizes accumulate
// into a dense O(n) slice instead of a map; the census and the max scan
// both run in parallel.
func Largest(workers int, comp []uint32) (label uint32, size int) {
	sizes := Census(workers, comp)
	type best struct {
		label uint32
		size  int
	}
	b := par.Reduce(workers, len(sizes), best{},
		func(acc best, i int) best {
			// Strict > keeps the earliest (smallest) label on ties.
			if sizes[i] > acc.size {
				return best{uint32(i), sizes[i]}
			}
			return acc
		},
		func(a, b best) best {
			if b.size > a.size {
				return b
			}
			return a
		})
	return b.label, b.size
}

// censusParCutoff is the label-array length below which the parallel
// census costs more in per-worker count arrays than it saves.
const censusParCutoff = 1 << 14

// Census returns the size of every component indexed by canonical label;
// entries for ids that are not labels are zero. Large inputs are counted
// in parallel: each worker tallies one block of comp into a private
// dense count array (no atomics, no contention on giant-component
// labels) and the per-worker counts are reduced label-parallel. The
// private arrays cost O(workers · n) ints, the usual trade for
// contention-free counting at snapshot scale.
func Census(workers int, comp []uint32) []int {
	n := len(comp)
	sizes := make([]int, n)
	if workers <= 0 {
		workers = par.MaxWorkers()
	}
	// Each worker must have at least a cutoff-sized block to amortize
	// its private count array and the extra reduce pass; this also
	// bounds the O(workers · n) scratch to n/cutoff arrays.
	if maxUseful := n / censusParCutoff; workers > maxUseful {
		workers = maxUseful
	}
	if workers <= 1 {
		for _, l := range comp {
			sizes[l]++
		}
		return sizes
	}
	partial := make([][]int, workers)
	par.Workers(workers, func(id int) {
		cnt := make([]int, n)
		// Mirror par.ForBlock's static partitioning of comp.
		q, r := n/workers, n%workers
		lo := id*q + min(id, r)
		hi := lo + q
		if id < r {
			hi++
		}
		for _, l := range comp[lo:hi] {
			cnt[l]++
		}
		partial[id] = cnt
	})
	par.ForBlock(workers, n, func(lo, hi int) {
		for _, cnt := range partial {
			for i := lo; i < hi; i++ {
				sizes[i] += cnt[i]
			}
		}
	})
	return sizes
}

// SameComponent reports whether u and v share a component label.
func SameComponent(comp []uint32, u, v edge.ID) bool {
	return comp[u] == comp[v]
}
