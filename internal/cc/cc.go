// Package cc implements parallel connected components over CSR snapshots
// using the Shiloach-Vishkin style hook-and-compress iteration the SNAP
// framework uses: repeatedly hook higher-labeled roots onto lower-labeled
// neighbors, then pointer-jump until the label forest flattens. On
// low-diameter small-world graphs the iteration count is small.
//
// The component labeling feeds link-cut-tree forest construction
// (internal/lct) and component census queries.
package cc

import (
	"sync/atomic"

	"snapdyn/internal/csr"
	"snapdyn/internal/edge"
	"snapdyn/internal/par"
)

// Components returns a label array: comp[u] == comp[v] iff u and v are in
// the same weakly-connected component (arcs are treated as undirected
// edges). Labels are canonical vertex ids (the minimum id reachable by
// the hooking process, a component representative).
func Components(workers int, g *csr.Graph) []uint32 {
	return ComponentsInto(workers, g, nil)
}

// ComponentsInto is Components into a caller-owned label slice, reused
// when its capacity covers the vertex set — the scratch-pool path that
// keeps repeated component queries at zero allocations.
func ComponentsInto(workers int, g *csr.Graph, comp []uint32) []uint32 {
	n := g.N
	if cap(comp) < n {
		comp = make([]uint32, n)
	} else {
		comp = comp[:n]
	}
	for i := range comp {
		comp[i] = uint32(i)
	}
	if n == 0 {
		return comp
	}
	// Dedicated serial path at workers == 1: the parallel fan-out lives
	// in its own function because its closures capture comp, which would
	// otherwise move the local to the heap on every call (escape
	// analysis is not flow-sensitive) — the pooled serving path must
	// stay at zero allocations per query.
	if workers == 1 {
		return componentsSerial(g, comp)
	}
	componentsParallel(workers, g, comp)
	return comp
}

// componentsParallel is the hook-and-compress iteration with parallel
// fan-out per phase.
func componentsParallel(workers int, g *csr.Graph, comp []uint32) {
	n := g.N
	for {
		var changed atomic.Bool
		// Hook: for every arc (u,v), point the root of the larger label
		// at the smaller label.
		par.ForDynamic(workers, n, 256, func(lo, hi int) {
			for u := lo; u < hi; u++ {
				adj, _ := g.Neighbors(edge.ID(u))
				cu := atomic.LoadUint32(&comp[u])
				for _, v := range adj {
					cv := atomic.LoadUint32(&comp[v])
					if cu == cv {
						continue
					}
					hi32, lo32 := cu, cv
					if hi32 < lo32 {
						hi32, lo32 = lo32, hi32
					}
					// Hook root(hi) -> lo when hi is still a root; a
					// failed CAS just defers to a later iteration.
					if atomic.CompareAndSwapUint32(&comp[hi32], hi32, lo32) {
						changed.Store(true)
					}
					cu = atomic.LoadUint32(&comp[u])
				}
			}
		})
		// Compress: full pointer jumping.
		par.ForDynamic(workers, n, 1024, func(lo, hi int) {
			for u := lo; u < hi; u++ {
				c := atomic.LoadUint32(&comp[u])
				for {
					cc := atomic.LoadUint32(&comp[c])
					if cc == c {
						break
					}
					c = cc
				}
				atomic.StoreUint32(&comp[u], c)
			}
		})
		if !changed.Load() {
			return
		}
	}
}

// componentsSerial is the closure-free hook-and-compress iteration; it
// converges to the same canonical labels (the component minimum) as the
// parallel path.
func componentsSerial(g *csr.Graph, comp []uint32) []uint32 {
	n := g.N
	for {
		changed := false
		for u := 0; u < n; u++ {
			adj, _ := g.Neighbors(edge.ID(u))
			cu := comp[u]
			for _, v := range adj {
				cv := comp[v]
				if cu == cv {
					continue
				}
				hi, lo := cu, cv
				if hi < lo {
					hi, lo = lo, hi
				}
				if comp[hi] == hi {
					comp[hi] = lo
					changed = true
				}
				cu = comp[u]
			}
		}
		for u := range comp {
			c := comp[u]
			for comp[c] != c {
				c = comp[c]
			}
			comp[u] = c
		}
		if !changed {
			return comp
		}
	}
}

// Count returns the number of distinct components in a label array.
// Labels are canonical (comp[l] == l for every label l after the
// hook-and-compress iteration), so counting self-rooted entries is an
// O(n) time, O(1) space census.
func Count(comp []uint32) int {
	c := 0
	for i, l := range comp {
		if uint32(i) == l {
			c++
		}
	}
	return c
}

// Largest returns the label and size of the largest component (smallest
// label on ties). Labels are canonical vertex ids, so sizes accumulate
// into a dense O(n) slice instead of a map; the census and the max scan
// both run in parallel.
func Largest(workers int, comp []uint32) (label uint32, size int) {
	return LargestInto(workers, comp, nil)
}

// LargestInto is Largest with a caller-owned census buffer (see
// CensusInto). With workers <= 1 it allocates nothing.
func LargestInto(workers int, comp []uint32, sizes []int) (label uint32, size int) {
	return LargestOf(workers, CensusInto(workers, comp, sizes))
}

// LargestOf scans an existing census for the largest component
// (smallest label on ties) without redoing the count — the second half
// of Largest, for callers that also want the census itself.
func LargestOf(workers int, sizes []int) (label uint32, size int) {
	// Serial max scan below the parallel-census cutoff (and always at
	// workers <= 1): no reduce closures, so the pooled serving path
	// stays at zero allocations.
	if workers <= 1 || len(sizes) < censusParCutoff {
		for i, s := range sizes {
			if s > size {
				label, size = uint32(i), s
			}
		}
		return label, size
	}
	type best struct {
		label uint32
		size  int
	}
	b := par.Reduce(workers, len(sizes), best{},
		func(acc best, i int) best {
			// Strict > keeps the earliest (smallest) label on ties.
			if sizes[i] > acc.size {
				return best{uint32(i), sizes[i]}
			}
			return acc
		},
		func(a, b best) best {
			if b.size > a.size {
				return b
			}
			return a
		})
	return b.label, b.size
}

// censusParCutoff is the label-array length below which the parallel
// census costs more in per-worker count arrays than it saves.
const censusParCutoff = 1 << 14

// Census returns the size of every component indexed by canonical label;
// entries for ids that are not labels are zero. Large inputs are counted
// in parallel: each worker tallies one block of comp into a private
// dense count array (no atomics, no contention on giant-component
// labels) and the per-worker counts are reduced label-parallel. The
// private arrays cost O(workers · n) ints, the usual trade for
// contention-free counting at snapshot scale.
func Census(workers int, comp []uint32) []int {
	return CensusInto(workers, comp, nil)
}

// CensusInto is Census into a caller-owned count slice, reused when its
// capacity covers the label space. The serial path (small inputs or
// workers <= 1) then allocates nothing; the parallel path still builds
// its per-worker private count arrays.
func CensusInto(workers int, comp []uint32, sizes []int) []int {
	n := len(comp)
	if cap(sizes) < n {
		sizes = make([]int, n)
	} else {
		sizes = sizes[:n]
		for i := range sizes {
			sizes[i] = 0
		}
	}
	if workers <= 0 {
		workers = par.MaxWorkers()
	}
	// Each worker must have at least a cutoff-sized block to amortize
	// its private count array and the extra reduce pass; this also
	// bounds the O(workers · n) scratch to n/cutoff arrays.
	if maxUseful := n / censusParCutoff; workers > maxUseful {
		workers = maxUseful
	}
	if workers <= 1 {
		for _, l := range comp {
			sizes[l]++
		}
		return sizes
	}
	partial := make([][]int, workers)
	par.Workers(workers, func(id int) {
		cnt := make([]int, n)
		// Mirror par.ForBlock's static partitioning of comp.
		q, r := n/workers, n%workers
		lo := id*q + min(id, r)
		hi := lo + q
		if id < r {
			hi++
		}
		for _, l := range comp[lo:hi] {
			cnt[l]++
		}
		partial[id] = cnt
	})
	par.ForBlock(workers, n, func(lo, hi int) {
		for _, cnt := range partial {
			for i := lo; i < hi; i++ {
				sizes[i] += cnt[i]
			}
		}
	})
	return sizes
}

// SameComponent reports whether u and v share a component label.
func SameComponent(comp []uint32, u, v edge.ID) bool {
	return comp[u] == comp[v]
}
