// Package cc implements parallel connected components over CSR snapshots
// using the Shiloach-Vishkin style hook-and-compress iteration the SNAP
// framework uses: repeatedly hook higher-labeled roots onto lower-labeled
// neighbors, then pointer-jump until the label forest flattens. On
// low-diameter small-world graphs the iteration count is small.
//
// The component labeling feeds link-cut-tree forest construction
// (internal/lct) and component census queries.
package cc

import (
	"sync/atomic"

	"snapdyn/internal/csr"
	"snapdyn/internal/edge"
	"snapdyn/internal/par"
)

// Components returns a label array: comp[u] == comp[v] iff u and v are in
// the same weakly-connected component (arcs are treated as undirected
// edges). Labels are canonical vertex ids (the minimum id reachable by
// the hooking process, a component representative).
func Components(workers int, g *csr.Graph) []uint32 {
	n := g.N
	comp := make([]uint32, n)
	for i := range comp {
		comp[i] = uint32(i)
	}
	if n == 0 {
		return comp
	}
	for {
		var changed atomic.Bool
		// Hook: for every arc (u,v), point the root of the larger label
		// at the smaller label.
		par.ForDynamic(workers, n, 256, func(lo, hi int) {
			for u := lo; u < hi; u++ {
				adj, _ := g.Neighbors(edge.ID(u))
				cu := atomic.LoadUint32(&comp[u])
				for _, v := range adj {
					cv := atomic.LoadUint32(&comp[v])
					if cu == cv {
						continue
					}
					hi32, lo32 := cu, cv
					if hi32 < lo32 {
						hi32, lo32 = lo32, hi32
					}
					// Hook root(hi) -> lo when hi is still a root; a
					// failed CAS just defers to a later iteration.
					if atomic.CompareAndSwapUint32(&comp[hi32], hi32, lo32) {
						changed.Store(true)
					}
					cu = atomic.LoadUint32(&comp[u])
				}
			}
		})
		// Compress: full pointer jumping.
		par.ForDynamic(workers, n, 1024, func(lo, hi int) {
			for u := lo; u < hi; u++ {
				c := atomic.LoadUint32(&comp[u])
				for {
					cc := atomic.LoadUint32(&comp[c])
					if cc == c {
						break
					}
					c = cc
				}
				atomic.StoreUint32(&comp[u], c)
			}
		})
		if !changed.Load() {
			return comp
		}
	}
}

// Count returns the number of distinct components in a label array.
// Labels are canonical (comp[l] == l for every label l after the
// hook-and-compress iteration), so counting self-rooted entries is an
// O(n) time, O(1) space census.
func Count(comp []uint32) int {
	c := 0
	for i, l := range comp {
		if uint32(i) == l {
			c++
		}
	}
	return c
}

// Largest returns the label and size of the largest component (smallest
// label on ties). Labels are canonical vertex ids, so sizes accumulate
// into a dense O(n) slice instead of a map.
func Largest(comp []uint32) (label uint32, size int) {
	sizes := Census(comp)
	for l, s := range sizes {
		if s > size {
			label, size = uint32(l), s
		}
	}
	return label, size
}

// Census returns the size of every component indexed by canonical label;
// entries for ids that are not labels are zero.
func Census(comp []uint32) []int {
	sizes := make([]int, len(comp))
	for _, l := range comp {
		sizes[l]++
	}
	return sizes
}

// SameComponent reports whether u and v share a component label.
func SameComponent(comp []uint32, u, v edge.ID) bool {
	return comp[u] == comp[v]
}
