// Package psort implements the parallel semi-sorting substrate the paper
// uses for batched update processing: updates are grouped by source vertex
// with a parallel LSD radix sort, whose running time is the paper's upper
// bound for any batched representation (Figure 3).
//
// The sort is stable and operates on uint32 keys, returning a permutation;
// callers gather their records through it. A parallel prefix sum over
// int64 counters is provided as a shared building block for CSR
// construction and frontier compaction.
package psort

import (
	"snapdyn/internal/par"
)

const (
	radixBits = 11
	radix     = 1 << radixBits
	radixMask = radix - 1
)

// Order returns a permutation p such that keys[p[0]], keys[p[1]], ... is
// in non-decreasing order. The sort is stable: equal keys keep their
// original relative order. workers <= 0 uses GOMAXPROCS.
//
// This is the semi-sort kernel: grouping a batch of edge updates by source
// vertex id so that all updates to one adjacency list are applied in a
// single pass by a single owner.
func Order(workers int, keys []uint32) []uint32 {
	n := len(keys)
	p := make([]uint32, n)
	for i := range p {
		p[i] = uint32(i)
	}
	if n < 2 {
		return p
	}
	maxKey := par.Reduce(workers, n, uint32(0),
		func(acc uint32, i int) uint32 { return max(acc, keys[i]) },
		func(a, b uint32) uint32 { return max(a, b) })
	tmp := make([]uint32, n)
	for shift := 0; shift < 32; shift += radixBits {
		if maxKey>>shift == 0 {
			break
		}
		radixPass(workers, keys, p, tmp, shift)
		p, tmp = tmp, p
	}
	return p
}

// radixPass stably scatters p into out ordered by the digit of
// keys[p[i]] at the given shift, in parallel.
func radixPass(workers int, keys []uint32, p, out []uint32, shift int) {
	n := len(p)
	if workers <= 0 {
		workers = par.MaxWorkers()
	}
	if workers > n {
		workers = n
	}
	// Per-worker digit histograms.
	hist := make([][radix]int32, workers)
	par.ForBlock(workers, n, func(lo, hi int) {
		w := workerOf(workers, n, lo)
		h := &hist[w]
		for i := lo; i < hi; i++ {
			h[(keys[p[i]]>>shift)&radixMask]++
		}
	})
	// Exclusive scan in digit-major, worker-minor order: for digit d,
	// worker w starts at sum of all counts of smaller digits plus counts
	// of digit d in earlier workers. This preserves stability.
	var sum int32
	for d := 0; d < radix; d++ {
		for w := 0; w < workers; w++ {
			c := hist[w][d]
			hist[w][d] = sum
			sum += c
		}
	}
	par.ForBlock(workers, n, func(lo, hi int) {
		w := workerOf(workers, n, lo)
		h := &hist[w]
		for i := lo; i < hi; i++ {
			d := (keys[p[i]] >> shift) & radixMask
			out[h[d]] = p[i]
			h[d]++
		}
	})
}

// workerOf mirrors par.ForBlock's static partitioning: it returns the
// index of the worker whose block starts at or contains offset lo.
func workerOf(workers, n, lo int) int {
	q, r := n/workers, n%workers
	big := r * (q + 1)
	if lo < big {
		return lo / (q + 1)
	}
	if q == 0 {
		return workers - 1
	}
	return r + (lo-big)/q
}

// SortU32 sorts keys in place (non-stable interface over the stable
// kernel) and returns keys for convenience.
func SortU32(workers int, keys []uint32) []uint32 {
	p := Order(workers, keys)
	out := make([]uint32, len(keys))
	par.For(workers, len(keys), func(i int) { out[i] = keys[p[i]] })
	copy(keys, out)
	return keys
}

// ExclusiveScan replaces counts with its exclusive prefix sum in parallel
// and returns the total. counts[i]' = counts[0] + ... + counts[i-1].
func ExclusiveScan(workers int, counts []int64) int64 {
	n := len(counts)
	if n == 0 {
		return 0
	}
	if workers <= 0 {
		workers = par.MaxWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 || n < 4096 {
		var sum int64
		for i := range counts {
			c := counts[i]
			counts[i] = sum
			sum += c
		}
		return sum
	}
	partial := make([]int64, workers)
	par.ForBlock(workers, n, func(lo, hi int) {
		w := workerOf(workers, n, lo)
		var s int64
		for i := lo; i < hi; i++ {
			s += counts[i]
		}
		partial[w] = s
	})
	var total int64
	for w := 0; w < workers; w++ {
		s := partial[w]
		partial[w] = total
		total += s
	}
	par.ForBlock(workers, n, func(lo, hi int) {
		w := workerOf(workers, n, lo)
		s := partial[w]
		for i := lo; i < hi; i++ {
			c := counts[i]
			counts[i] = s
			s += c
		}
	})
	return total
}

// GroupRanges scans sorted keys and invokes fn(key, lo, hi) for every
// maximal run keys[lo:hi] of equal keys. keys must be sorted. Runs are
// delivered in increasing key order.
func GroupRanges(keys []uint32, fn func(key uint32, lo, hi int)) {
	n := len(keys)
	for lo := 0; lo < n; {
		hi := lo + 1
		for hi < n && keys[hi] == keys[lo] {
			hi++
		}
		fn(keys[lo], lo, hi)
		lo = hi
	}
}

// SearchOffsets returns the largest index i with offsets[i] <= pos, for
// an ascending prefix-sum array as produced by ExclusiveScan — the
// inversion edge-partitioned kernels use to map a worker's arc offset
// back to the vertex owning it.
func SearchOffsets(offsets []int64, pos int64) int {
	lo, hi := 0, len(offsets)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if offsets[mid] <= pos {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}
