package psort

import (
	"sort"
	"testing"
	"testing/quick"

	"snapdyn/internal/xrand"
)

func randKeys(n int, mod uint32, seed uint64) []uint32 {
	r := xrand.New(seed)
	keys := make([]uint32, n)
	for i := range keys {
		if mod == 0 {
			keys[i] = r.Uint32()
		} else {
			keys[i] = r.Uint32n(mod)
		}
	}
	return keys
}

func TestOrderSorts(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		for _, n := range []int{0, 1, 2, 3, 100, 10000} {
			keys := randKeys(n, 0, uint64(n)+1)
			p := Order(workers, keys)
			if len(p) != n {
				t.Fatalf("perm length %d != %d", len(p), n)
			}
			seen := make([]bool, n)
			for i := 0; i < n; i++ {
				if seen[p[i]] {
					t.Fatalf("permutation repeats index %d", p[i])
				}
				seen[p[i]] = true
				if i > 0 && keys[p[i-1]] > keys[p[i]] {
					t.Fatalf("workers=%d n=%d: out of order at %d", workers, n, i)
				}
			}
		}
	}
}

func TestOrderStability(t *testing.T) {
	// Many duplicate keys: indices within each key group must be
	// increasing (stability).
	keys := randKeys(5000, 16, 7)
	p := Order(4, keys)
	last := make(map[uint32]uint32)
	for _, idx := range p {
		k := keys[idx]
		if prev, ok := last[k]; ok && idx < prev {
			t.Fatalf("unstable: key %d saw index %d after %d", k, idx, prev)
		}
		last[k] = idx
	}
}

func TestOrderMatchesStdlib(t *testing.T) {
	if err := quick.Check(func(seed uint64, ln uint16) bool {
		n := int(ln % 2000)
		keys := randKeys(n, 1000, seed)
		p := Order(3, keys)
		got := make([]uint32, n)
		for i, idx := range p {
			got[i] = keys[idx]
		}
		want := append([]uint32(nil), keys...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSortU32(t *testing.T) {
	keys := randKeys(3000, 0, 5)
	SortU32(4, keys)
	for i := 1; i < len(keys); i++ {
		if keys[i-1] > keys[i] {
			t.Fatalf("SortU32 out of order at %d", i)
		}
	}
}

func TestExclusiveScan(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7} {
		for _, n := range []int{0, 1, 2, 100, 4096, 10000} {
			counts := make([]int64, n)
			r := xrand.New(uint64(n) * 31)
			for i := range counts {
				counts[i] = int64(r.Uint32n(100))
			}
			want := make([]int64, n)
			var sum int64
			for i := 0; i < n; i++ {
				want[i] = sum
				sum += counts[i]
			}
			total := ExclusiveScan(workers, counts)
			if total != sum {
				t.Fatalf("workers=%d n=%d: total %d != %d", workers, n, total, sum)
			}
			for i := range counts {
				if counts[i] != want[i] {
					t.Fatalf("workers=%d n=%d: scan[%d] = %d, want %d", workers, n, i, counts[i], want[i])
				}
			}
		}
	}
}

func TestGroupRanges(t *testing.T) {
	keys := []uint32{1, 1, 1, 3, 5, 5, 9}
	type group struct {
		key    uint32
		lo, hi int
	}
	var got []group
	GroupRanges(keys, func(k uint32, lo, hi int) { got = append(got, group{k, lo, hi}) })
	want := []group{{1, 0, 3}, {3, 3, 4}, {5, 4, 6}, {9, 6, 7}}
	if len(got) != len(want) {
		t.Fatalf("got %d groups, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("group %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestGroupRangesEmpty(t *testing.T) {
	GroupRanges(nil, func(k uint32, lo, hi int) { t.Fatal("callback on empty input") })
}

func TestGroupRangesSingle(t *testing.T) {
	calls := 0
	GroupRanges([]uint32{42}, func(k uint32, lo, hi int) {
		calls++
		if k != 42 || lo != 0 || hi != 1 {
			t.Fatalf("bad group (%d,%d,%d)", k, lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}

func BenchmarkOrder1M(b *testing.B) {
	keys := randKeys(1<<20, 1<<18, 99)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Order(0, keys)
	}
	b.SetBytes(4 << 20)
}

func BenchmarkStdlibSort1M(b *testing.B) {
	keys := randKeys(1<<20, 1<<18, 99)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tmp := append([]uint32(nil), keys...)
		b.StartTimer()
		sort.Slice(tmp, func(x, y int) bool { return tmp[x] < tmp[y] })
	}
	b.SetBytes(4 << 20)
}
