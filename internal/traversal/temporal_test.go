package traversal

import (
	"testing"
	"testing/quick"

	"snapdyn/internal/csr"
	"snapdyn/internal/edge"
	"snapdyn/internal/xrand"
)

func temporalGraph(n int, es ...[3]uint32) *csr.Graph {
	edges := make([]edge.Edge, len(es))
	for i, e := range es {
		edges[i] = edge.Edge{U: e[0], V: e[1], T: e[2]}
	}
	return csr.FromEdges(1, n, edges, false)
}

func TestTemporalReachabilityIncreasingPath(t *testing.T) {
	g := temporalGraph(4, [3]uint32{0, 1, 10}, [3]uint32{1, 2, 20}, [3]uint32{2, 3, 30})
	arrive, reached := TemporalReachability(g, 0)
	if reached != 4 {
		t.Fatalf("reached %d, want 4", reached)
	}
	if arrive[1] != 10 || arrive[2] != 20 || arrive[3] != 30 {
		t.Fatalf("arrivals = %v", arrive)
	}
}

func TestTemporalReachabilityDecreasingBlocks(t *testing.T) {
	g := temporalGraph(3, [3]uint32{0, 1, 50}, [3]uint32{1, 2, 10})
	_, reached := TemporalReachability(g, 0)
	if reached != 2 {
		t.Fatalf("reached %d, want 2 (10 <= 50 blocks continuation)", reached)
	}
	if TemporallyReachable(g, 0, 2) {
		t.Fatal("0 should not temporally reach 2")
	}
	if !TemporallyReachable(g, 1, 2) {
		t.Fatal("direct edge must be usable")
	}
	if !TemporallyReachable(g, 2, 2) {
		t.Fatal("self reachability")
	}
}

func TestTemporalReachabilityEqualLabelsBlock(t *testing.T) {
	// Strictly increasing: equal labels do not chain.
	g := temporalGraph(3, [3]uint32{0, 1, 5}, [3]uint32{1, 2, 5})
	_, reached := TemporalReachability(g, 0)
	if reached != 2 {
		t.Fatalf("reached %d, want 2", reached)
	}
}

func TestTemporalReachabilityPrefersSmallArrival(t *testing.T) {
	// Two routes to 1: label 50 (direct) and 10 (via 2). Reaching 1 at
	// 10 enables the 1->3 @20 edge; at 50 it would not.
	g := temporalGraph(4,
		[3]uint32{0, 1, 50},
		[3]uint32{0, 2, 5}, [3]uint32{2, 1, 10},
		[3]uint32{1, 3, 20},
	)
	arrive, reached := TemporalReachability(g, 0)
	if reached != 4 {
		t.Fatalf("reached %d, want 4 (min-arrival relaxation)", reached)
	}
	if arrive[1] != 10 || arrive[3] != 20 {
		t.Fatalf("arrivals = %v", arrive)
	}
}

func TestTemporalReachabilitySubsetOfStatic(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		n := 8 + int(r.Uint32n(16))
		var es []edge.Edge
		for i := 0; i < 4*n; i++ {
			es = append(es, edge.Edge{
				U: r.Uint32n(uint32(n)), V: r.Uint32n(uint32(n)), T: 1 + r.Uint32n(40),
			})
		}
		g := csr.FromEdges(1, n, es, false)
		src := edge.ID(r.Uint32n(uint32(n)))
		arrive, _ := TemporalReachability(g, src)
		static := BFS(1, g, src)
		for v := range arrive {
			tReach := arrive[v] != ^uint32(0)
			sReach := static.Level[v] != NotVisited
			if tReach && !sReach {
				return false // temporal reach must imply static reach
			}
		}
		return true
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// bruteTemporalReach explores all time-respecting paths (exponential but
// tiny n) to validate the relaxation algorithm.
func bruteTemporalReach(g *csr.Graph, src edge.ID) []bool {
	reach := make([]bool, g.N)
	reach[src] = true
	var dfs func(u uint32, last uint32, first bool)
	seen := map[[2]uint32]bool{}
	dfs = func(u uint32, last uint32, first bool) {
		adj, ts := g.Neighbors(u)
		for i, v := range adj {
			t := ts[i]
			if !first && t <= last {
				continue
			}
			reach[v] = true
			key := [2]uint32{v, t}
			if seen[key] {
				continue
			}
			seen[key] = true
			dfs(v, t, false)
		}
	}
	dfs(uint32(src), 0, true)
	return reach
}

func TestTemporalReachabilityMatchesBruteForce(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		n := 5 + int(r.Uint32n(6))
		var es []edge.Edge
		for i := 0; i < 2*n; i++ {
			es = append(es, edge.Edge{
				U: r.Uint32n(uint32(n)), V: r.Uint32n(uint32(n)), T: 1 + r.Uint32n(8),
			})
		}
		g := csr.FromEdges(1, n, es, false)
		src := edge.ID(r.Uint32n(uint32(n)))
		arrive, _ := TemporalReachability(g, src)
		want := bruteTemporalReach(g, src)
		for v := range want {
			if (arrive[v] != ^uint32(0)) != want[v] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
