package traversal

import (
	"snapdyn/internal/csr"
	"snapdyn/internal/edge"
)

// TemporalReachability computes the set of vertices reachable from src
// by time-respecting paths: sequences of edges with strictly increasing
// time labels (the temporal-path semantics of Kempe et al. used by the
// paper's temporal betweenness). This differs from a window-filtered
// BFS: an edge is usable only if its label exceeds the label of the edge
// on which its tail was reached.
//
// The traversal maintains, per vertex, the minimum arrival label over
// all time-respecting paths found so far; a vertex is re-relaxed when a
// path with a smaller arrival label appears, since that admits more
// continuations. Termination: arrival labels strictly decrease per
// vertex on re-insertion, and labels are bounded below.
//
// Returns the arrival label per vertex (0 for src, edge.NoTime-marked
// impossible for unreachable) and the reached count.
func TemporalReachability(g *csr.Graph, src edge.ID) (arrive []uint32, reached int) {
	const unreached = ^uint32(0)
	arrive = make([]uint32, g.N)
	for i := range arrive {
		arrive[i] = unreached
	}
	arrive[src] = 0
	queue := []uint32{uint32(src)}
	inQueue := make([]bool, g.N)
	inQueue[src] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		inQueue[u] = false
		au := arrive[u]
		adj, ts := g.Neighbors(u)
		for i, v := range adj {
			t := ts[i]
			// First hop from the source is unconstrained; afterwards
			// labels must strictly increase.
			if u != uint32(src) && t <= au {
				continue
			}
			if t < arrive[v] {
				arrive[v] = t
				if !inQueue[v] {
					inQueue[v] = true
					queue = append(queue, v)
				}
			}
		}
	}
	for _, a := range arrive {
		if a != unreached {
			reached++
		}
	}
	return arrive, reached
}

// TemporallyReachable reports whether a time-respecting path exists from
// u to v.
func TemporallyReachable(g *csr.Graph, u, v edge.ID) bool {
	if u == v {
		return true
	}
	arrive, _ := TemporalReachability(g, u)
	return arrive[v] != ^uint32(0)
}
