package traversal

import (
	"snapdyn/internal/csr"
	"snapdyn/internal/edge"
)

// TemporalReachability computes the set of vertices reachable from src
// by time-respecting paths: sequences of edges with strictly increasing
// time labels (the temporal-path semantics of Kempe et al. used by the
// paper's temporal betweenness). This differs from a window-filtered
// BFS: an edge is usable only if its label exceeds the label of the edge
// on which its tail was reached.
//
// It is a thin wrapper over the traversal engine's relaxation mode: the
// Relax hook maintains, per vertex, the minimum arrival label over all
// time-respecting paths found so far, and re-enqueues a vertex whenever
// a path with a smaller arrival label appears, since that admits more
// continuations. Termination: arrival labels strictly decrease per
// vertex on re-insertion, and labels are bounded below.
//
// Returns the arrival label per vertex (0 for src, ^uint32(0) for
// unreachable) and the reached count.
func TemporalReachability(g *csr.Graph, src edge.ID) (arrive []uint32, reached int) {
	const unreached = ^uint32(0)
	arrive = make([]uint32, g.N)
	for i := range arrive {
		arrive[i] = unreached
	}
	arrive[src] = 0
	res := Run(g, []uint32{src}, Options{
		// One worker keeps the relaxation deterministic and lets the
		// hook update arrive without atomics.
		Workers: 1,
		Hooks: Hooks{Relax: func(u, v uint32, t uint32) bool {
			// First hop from the source is unconstrained; afterwards
			// labels must strictly increase.
			if u != src && t <= arrive[u] {
				return false
			}
			if t < arrive[v] {
				arrive[v] = t
				return true
			}
			return false
		}},
	}, nil, nil)
	return arrive, res.Reached
}

// TemporallyReachable reports whether a time-respecting path exists from
// u to v.
func TemporallyReachable(g *csr.Graph, u, v edge.ID) bool {
	if u == v {
		return true
	}
	arrive, _ := TemporalReachability(g, u)
	return arrive[v] != ^uint32(0)
}
