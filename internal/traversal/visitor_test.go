package traversal

import (
	"sort"
	"testing"

	"snapdyn/internal/csr"
	"snapdyn/internal/edge"
)

type arcEvent struct {
	u, v    uint32
	t       uint32
	claimed bool
}

// collectArcs runs a single-worker traversal recording every OnArc
// event.
func collectArcs(g *csr.Graph, src uint32, opt Options) ([]arcEvent, *Result) {
	var events []arcEvent
	opt.Workers = 1
	opt.Hooks.OnArc = func(u, v uint32, t uint32, claimed bool) {
		events = append(events, arcEvent{u, v, t, claimed})
	}
	res := Run(g, []uint32{src}, opt, nil, nil)
	return events, res
}

func sortArcs(evs []arcEvent) {
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.v != b.v {
			return a.v < b.v
		}
		if a.u != b.u {
			return a.u < b.u
		}
		return a.t < b.t
	})
}

func TestOnArcEnumeratesDAGPredecessors(t *testing.T) {
	// Diamond 0-1-3, 0-2-3 plus a tail 3-4: vertex 3 has two same-level
	// predecessors (one claimed, one tie), the rest have one.
	g := undirectedGraph(5,
		[3]uint32{0, 1, 0}, [3]uint32{0, 2, 0}, [3]uint32{1, 3, 0}, [3]uint32{2, 3, 0},
		[3]uint32{3, 4, 0})
	events, _ := collectArcs(g, 0, Options{})
	claims := map[uint32]int{}
	preds := map[uint32][]uint32{}
	for _, e := range events {
		if e.claimed {
			claims[e.v]++
		}
		preds[e.v] = append(preds[e.v], e.u)
	}
	for v, c := range claims {
		if c != 1 {
			t.Fatalf("vertex %d claimed %d times", v, c)
		}
	}
	wantPreds := map[uint32][]uint32{1: {0}, 2: {0}, 3: {1, 2}, 4: {3}}
	for v, want := range wantPreds {
		got := append([]uint32(nil), preds[v]...)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if len(got) != len(want) {
			t.Fatalf("vertex %d preds = %v, want %v", v, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("vertex %d preds = %v, want %v", v, got, want)
			}
		}
	}
}

func TestOnArcPushPullSameArcSet(t *testing.T) {
	// On a symmetric graph the pull direction must observe exactly the
	// arcs the push direction observes (as mirror arcs), including ties.
	g := rmatGraph(t, 10, 6, 30, 17)
	push, pres := collectArcs(g, 3, Options{})
	pull, bres := collectArcs(g, 3, forcePull)
	levelsEqual(t, "pull-levels", bres.Level, pres.Level)
	if len(push) != len(pull) {
		t.Fatalf("push observed %d arcs, pull %d", len(push), len(pull))
	}
	sortArcs(push)
	sortArcs(pull)
	for i := range push {
		// Claim attribution may differ (any DAG predecessor can claim),
		// but the (u, v, t) arc multiset must match exactly.
		if push[i].u != pull[i].u || push[i].v != pull[i].v || push[i].t != pull[i].t {
			t.Fatalf("arc %d differs: push %+v, pull %+v", i, push[i], pull[i])
		}
	}
	// Each discovered vertex is claimed exactly once in both directions.
	for name, evs := range map[string][]arcEvent{"push": push, "pull": pull} {
		claims := map[uint32]int{}
		for _, e := range evs {
			if e.claimed {
				claims[e.v]++
			}
		}
		for v, c := range claims {
			if c != 1 {
				t.Fatalf("%s: vertex %d claimed %d times", name, v, c)
			}
		}
	}
}

func TestOnLevelEndCountsAndStops(t *testing.T) {
	g := lineGraph(30)
	var perLevel []int
	res := Run(g, []uint32{0}, Options{
		Workers: 1,
		Hooks: Hooks{OnLevelEnd: func(level int32, discovered int) bool {
			if int(level) != len(perLevel)+1 {
				t.Fatalf("level %d out of order", level)
			}
			perLevel = append(perLevel, discovered)
			return level < 5 // stop after five expansions
		}},
	}, nil, nil)
	if len(perLevel) != 5 {
		t.Fatalf("hook ran %d times, want 5", len(perLevel))
	}
	for _, d := range perLevel {
		if d != 1 {
			t.Fatalf("line graph level discovered %d, want 1", d)
		}
	}
	if res.Reached != 6 || res.Levels != 5 {
		t.Fatalf("early stop reached/levels = %d/%d, want 6/5", res.Reached, res.Levels)
	}
	if res.Level[5] != 5 || res.Level[6] != NotVisited {
		t.Fatalf("levels past the stop: %v", res.Level[:8])
	}
}

func TestVisitedShadowsLevel(t *testing.T) {
	for _, opt := range []Options{{Workers: 4}, {Workers: 4, Strategy: DirectionOpt}, forcePull} {
		g := rmatGraph(t, 11, 7, 0, 23)
		res := Run(g, []uint32{1}, opt, nil, nil)
		count := 0
		for v := range res.Level {
			set := res.Visited.Get(uint32(v))
			reached := res.Level[v] != NotVisited
			if set != reached {
				t.Fatalf("Visited bit %d = %v but level = %d", v, set, res.Level[v])
			}
			if set {
				count++
			}
		}
		if count != res.Reached {
			t.Fatalf("Visited popcount %d != Reached %d", count, res.Reached)
		}
	}
}

func TestRelaxModeShortestDistances(t *testing.T) {
	// Use Relax to re-derive plain BFS distances through label
	// correction: relax when the tentative hop distance improves. The
	// fixpoint must match BFS levels even though vertices may re-enter
	// the frontier.
	g := rmatGraph(t, 10, 5, 0, 41)
	want := BFS(1, g, 7)
	dist := make([]int32, g.N)
	for i := range dist {
		dist[i] = int32(g.N)
	}
	dist[7] = 0
	res := Run(g, []uint32{7}, Options{
		Workers: 1,
		Hooks: Hooks{Relax: func(u, v uint32, _ uint32) bool {
			if dist[u]+1 < dist[v] {
				dist[v] = dist[u] + 1
				return true
			}
			return false
		}},
	}, nil, nil)
	for v := range want.Level {
		wl := want.Level[v]
		if wl == NotVisited {
			if dist[v] != int32(g.N) {
				t.Fatalf("unreachable %d relaxed to %d", v, dist[v])
			}
			continue
		}
		if dist[v] != wl {
			t.Fatalf("dist[%d] = %d, want %d", v, dist[v], wl)
		}
	}
	if res.Reached != want.Reached {
		t.Fatalf("relax reached %d, want %d", res.Reached, want.Reached)
	}
}

func TestSTConnectedEarlyStop(t *testing.T) {
	// On a long line, STConnected to a near vertex must not traverse to
	// the far end: verified through the public result (distance) plus
	// the engine contract that levels past the stop stay unvisited.
	g := lineGraph(200)
	ok, d := STConnected(1, g, 10, 13)
	if !ok || d != 3 {
		t.Fatalf("got (%v,%d), want (true,3)", ok, d)
	}
	ok, d = STConnected(2, g, 0, 199)
	if !ok || d != 199 {
		t.Fatalf("far query (%v,%d), want (true,199)", ok, d)
	}
	disc := csr.FromEdges(1, 4, []edge.Edge{{U: 0, V: 1}, {U: 2, V: 3}}, true)
	ok, d = STConnected(1, disc, 0, 3)
	if ok || d != -1 {
		t.Fatalf("disconnected query (%v,%d), want (false,-1)", ok, d)
	}
}

func undirectedGraph(n int, es ...[3]uint32) *csr.Graph {
	edges := make([]edge.Edge, len(es))
	for i, e := range es {
		edges[i] = edge.Edge{U: e[0], V: e[1], T: e[2]}
	}
	return csr.FromEdges(1, n, edges, true)
}
