package traversal

import (
	"math/bits"
	"sync/atomic"

	"snapdyn/internal/compress"
	"snapdyn/internal/edge"
	"snapdyn/internal/par"
)

// This file holds the streaming-decode halves of the engine: the level
// bodies RunStream dispatches to when the adjacency provider is a
// gap-compressed graph. They mirror the CSR bodies arc-for-arc — same
// claim protocol, same hook call sites, same mass bookkeeping — with two
// structural differences. First, arcs arrive through a stack-owned
// compress.Cursor instead of CSR span indexing. Second, the top-down
// step partitions by frontier vertices under dynamic scheduling and
// publishes discoveries through the next frontier's dense writer (the
// relax-body pattern) rather than edge-partitioning into per-worker
// buckets: a compressed block only decodes front-to-back, so an edge
// prefix-sum cannot hand workers mid-list arc ranges.

// runTopDownStream pushes from the frontier over compressed adjacency.
func (e *exec) runTopDownStream() (int, int64) {
	e.verts = e.cur.Vertices()
	e.nextBits = e.next.DenseWriter()
	e.found, e.foundEdges = 0, 0
	body := e.streamTopFast
	if e.onArc != nil || e.arc != nil {
		body = e.streamTopVisit
	}
	par.ForDynamic(e.workers, len(e.verts), relaxChunk, body)
	e.next.SetCount(int(e.found))
	return int(e.found), e.foundEdges
}

// streamTopFastBody is the hook-free streaming push inner loop.
func (e *exec) streamTopFastBody(lo, hi int) {
	cg, res := e.cg, e.res
	level, filter, needMass := e.level, e.filter, e.needMass
	visited := res.Visited
	nextBits := e.nextBits
	var cnt, edges int64
	var c compress.Cursor
	for _, u := range e.verts[lo:hi] {
		cg.Begin(&c, u)
		for {
			v, t, ok := c.Next()
			if !ok {
				break
			}
			if filter != nil && !filter(t) {
				continue
			}
			if atomic.LoadInt32(&res.Level[v]) != NotVisited {
				continue
			}
			if atomic.CompareAndSwapInt32(&res.Level[v], NotVisited, level) {
				res.Parent[v] = u
				visited.TrySet(v)
				nextBits.TrySet(v)
				cnt++
				if needMass {
					edges += cg.Degree(v)
				}
			}
		}
	}
	if cnt > 0 {
		atomic.AddInt64(&e.found, cnt)
		if needMass {
			atomic.AddInt64(&e.foundEdges, edges)
		}
	}
}

// streamTopVisitBody is the visitor streaming push inner loop: adds the
// endpoint-aware arc filter and OnArc for claimed discoveries and
// same-level DAG ties, matching topDownVisitBody.
func (e *exec) streamTopVisitBody(lo, hi int) {
	cg, res := e.cg, e.res
	level, filter, arcF, onArc, needMass := e.level, e.filter, e.arc, e.onArc, e.needMass
	visited := res.Visited
	nextBits := e.nextBits
	var cnt, edges int64
	var c compress.Cursor
	for _, u := range e.verts[lo:hi] {
		cg.Begin(&c, u)
		for {
			v, t, ok := c.Next()
			if !ok {
				break
			}
			if filter != nil && !filter(t) {
				continue
			}
			if arcF != nil && !arcF(u, v, t) {
				continue
			}
			lv := atomic.LoadInt32(&res.Level[v])
			if lv == NotVisited {
				if atomic.CompareAndSwapInt32(&res.Level[v], NotVisited, level) {
					res.Parent[v] = u
					visited.TrySet(v)
					nextBits.TrySet(v)
					cnt++
					if needMass {
						edges += cg.Degree(v)
					}
					if onArc != nil {
						onArc(u, v, t, true)
					}
					continue
				}
				lv = atomic.LoadInt32(&res.Level[v])
			}
			if lv == level && onArc != nil {
				onArc(u, v, t, false)
			}
		}
	}
	if cnt > 0 {
		atomic.AddInt64(&e.found, cnt)
		if needMass {
			atomic.AddInt64(&e.foundEdges, edges)
		}
	}
}

// streamBotFastBody is the hook-free streaming pull inner loop: identical
// word-skipping structure to bottomUpFastBody, decoding each unvisited
// vertex's own block until the first frontier parent.
func (e *exec) streamBotFastBody(lo, hi int) {
	cg, res := e.cg, e.res
	level, filter := e.level, e.filter
	curBits, nextBits := e.curBits, e.nextBits
	words := res.Visited.Words()
	var cnt, edges int64
	var c compress.Cursor
	for wi := lo >> 6; wi<<6 < hi; wi++ {
		w := words[wi]
		if w == ^uint64(0) {
			continue // 64 finished vertices: skip the whole word
		}
		base := wi << 6
		for m := ^w; m != 0; m &= m - 1 {
			v := base + bits.TrailingZeros64(m)
			if v >= hi {
				break
			}
			cg.Begin(&c, edge.ID(v))
			for {
				u, t, ok := c.Next()
				if !ok {
					break
				}
				if !curBits.Get(u) {
					continue
				}
				if filter != nil && !filter(t) {
					continue
				}
				res.Level[v] = level
				res.Parent[v] = u
				words[wi] |= 1 << (uint(v) & 63)
				nextBits.TrySet(uint32(v))
				cnt++
				// The mass heuristic wants v's full degree; the scan
				// stopped early, so read it from the block header.
				edges += cg.Degree(edge.ID(v))
				break
			}
		}
	}
	if cnt > 0 {
		atomic.AddInt64(&e.found, cnt)
		atomic.AddInt64(&e.foundEdges, edges)
	}
}

// streamBotVisitBody is the visitor streaming pull inner loop: scans the
// full block so every predecessor arc is reported, like bottomUpVisitBody.
func (e *exec) streamBotVisitBody(lo, hi int) {
	cg, res := e.cg, e.res
	level, filter, arcF, onArc := e.level, e.filter, e.arc, e.onArc
	curBits, nextBits := e.curBits, e.nextBits
	words := res.Visited.Words()
	var cnt, edges int64
	var c compress.Cursor
	for wi := lo >> 6; wi<<6 < hi; wi++ {
		w := words[wi]
		if w == ^uint64(0) {
			continue
		}
		base := wi << 6
		for m := ^w; m != 0; m &= m - 1 {
			v := base + bits.TrailingZeros64(m)
			if v >= hi {
				break
			}
			claimed := false
			cg.Begin(&c, edge.ID(v))
			for {
				u, t, ok := c.Next()
				if !ok {
					break
				}
				if !curBits.Get(u) {
					continue
				}
				if filter != nil && !filter(t) {
					continue
				}
				if arcF != nil && !arcF(u, uint32(v), t) {
					continue
				}
				if !claimed {
					claimed = true
					res.Level[v] = level
					res.Parent[v] = u
					words[wi] |= 1 << (uint(v) & 63)
					nextBits.TrySet(uint32(v))
					cnt++
					edges += cg.Degree(edge.ID(v))
					if onArc == nil {
						break
					}
					onArc(u, uint32(v), t, true)
					continue
				}
				onArc(u, uint32(v), t, false)
			}
		}
	}
	if cnt > 0 {
		atomic.AddInt64(&e.found, cnt)
		atomic.AddInt64(&e.foundEdges, edges)
	}
}

// streamRelaxBody is the streaming label-correcting inner loop, the
// relaxStepBody twin over a cursor decode.
func (e *exec) streamRelaxBody(lo, hi int) {
	cg, res := e.cg, e.res
	filter, arcF, relax := e.filter, e.arc, e.relax
	level, nextBits := e.level, e.nextBits
	var enq, newly int64
	var c compress.Cursor
	for _, u := range e.verts[lo:hi] {
		cg.Begin(&c, u)
		for {
			v, t, ok := c.Next()
			if !ok {
				break
			}
			if filter != nil && !filter(t) {
				continue
			}
			if arcF != nil && !arcF(u, v, t) {
				continue
			}
			if !relax(u, v, t) {
				continue
			}
			atomic.StoreInt32(&res.Level[v], level)
			atomic.StoreUint32(&res.Parent[v], u)
			if res.Visited.TrySet(v) {
				newly++
			}
			if nextBits.TrySet(v) {
				enq++
			}
		}
	}
	if newly > 0 || enq > 0 {
		atomic.AddInt64(&e.found, newly)
		atomic.AddInt64(&e.foundEdges, enq)
	}
}

// StreamComponentsInto labels the connected components of a symmetric
// compressed graph: comp[v] is the smallest vertex id in v's component,
// bit-identical to cc.ComponentsInto on the equivalent CSR. The sweep
// visits roots in ascending id order, so each BFS root is its
// component's minimum by construction. comp and queue are caller-owned
// buffers grown on demand and returned, making repeated calls
// allocation-free once warm; the scan is serial (one cursor decode per
// arc, O(n+m)) — appropriate for the pooled query path, which bounds
// per-query parallelism anyway.
func StreamComponentsInto(cg *compress.Graph, comp []uint32, queue []uint32) (labels, queueOut []uint32) {
	n := cg.N
	if cap(comp) < n {
		comp = make([]uint32, n)
	}
	comp = comp[:n]
	const unset = ^uint32(0)
	for i := range comp {
		comp[i] = unset
	}
	if queue == nil {
		queue = make([]uint32, 0, 1024)
	}
	var c compress.Cursor
	for u := 0; u < n; u++ {
		if comp[u] != unset {
			continue
		}
		root := uint32(u)
		comp[u] = root
		if cg.Degree(edge.ID(u)) == 0 {
			continue
		}
		queue = append(queue[:0], root)
		for head := 0; head < len(queue); head++ {
			x := queue[head]
			cg.Begin(&c, x)
			for {
				v, _, ok := c.Next()
				if !ok {
					break
				}
				if comp[v] == unset {
					comp[v] = root
					queue = append(queue, v)
				}
			}
		}
	}
	return comp, queue
}
