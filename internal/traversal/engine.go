package traversal

import (
	"math/bits"
	"sync/atomic"

	"snapdyn/internal/compress"
	"snapdyn/internal/csr"
	"snapdyn/internal/frontier"
	"snapdyn/internal/par"
	"snapdyn/internal/psort"
)

// Strategy selects the frontier-expansion engine.
type Strategy int

const (
	// TopDown always pushes from the frontier: the classic
	// level-synchronous edge-partitioned BFS. Correct on any graph,
	// directed or not.
	TopDown Strategy = iota
	// DirectionOpt switches between top-down push and bottom-up pull by
	// frontier edge mass (Beamer-style direction-optimizing BFS). The
	// pull step discovers a vertex by scanning its own adjacency for a
	// frontier endpoint, so the graph must be symmetric (undirected),
	// and a filtered traversal additionally needs the mirror arc v->u
	// to carry the same time label as u->v (the pull step filters on
	// the reverse arc). Graphs built by csr.FromEdges(undirected=true)
	// satisfy both; snapshots of treap-backed dynamic stores collapse
	// parallel-edge labels per direction and only satisfy the
	// unfiltered requirement.
	DirectionOpt
)

// Default direction-switching thresholds (Beamer et al., SC'12).
const (
	// DefaultAlpha: switch push->pull when the frontier's outgoing edge
	// mass exceeds 1/DefaultAlpha of the arcs out of unvisited vertices.
	DefaultAlpha = 15
	// DefaultBeta: switch pull->push when the frontier shrinks below
	// n/DefaultBeta vertices.
	DefaultBeta = 18
)

// thresholdSkewRef is the degree skew (max degree over mean degree) up
// to which the global defaults apply unchanged. R-MAT instances at the
// paper's parameters sit at or below it; the adjustment kicks in only
// for distributions with markedly heavier tails.
const thresholdSkewRef = 128

// DeriveThresholds returns direction-switching thresholds tuned to the
// graph's degree distribution. Up to a skew (MaxDegree/mean degree) of
// thresholdSkewRef it returns the global defaults; beyond that, each
// doubling of the skew lowers alpha and raises beta. The shift is
// empirical (see the ROADMAP benchmark note): on hub-dominated graphs
// the frontier's edge mass explodes one level before the frontier
// itself saturates, so the default alpha enters pull a level too early
// (scanning mostly-unvisited adjacencies that push would have claimed
// cheaply), and the long tail of degree-1 stragglers keeps late
// frontiers small in vertex count while expensive to finish in push —
// dropping back out of pull early (small beta) costs up to 3x there.
// Alpha is floored at 6 and beta capped at 28. Run derives thresholds
// through here whenever Options leaves Alpha or Beta unset for a
// direction-optimizing traversal, caching the result in the Scratch by
// (n, m) so steady-state runs skip the O(n) degree scan.
func DeriveThresholds(g *csr.Graph) (alpha, beta int64) {
	if g.N == 0 || g.NumEdges() == 0 {
		return DefaultAlpha, DefaultBeta
	}
	return deriveThresholdsShape(g.N, g.NumEdges(), g.MaxDegree())
}

// deriveThresholdsShape is DeriveThresholds on the bare shape numbers,
// shared by the plain and compressed adjacency providers (compress
// caches m and max degree at build time, so neither path pays a decode
// scan here).
func deriveThresholdsShape(n int, m, maxDeg int64) (alpha, beta int64) {
	alpha, beta = DefaultAlpha, DefaultBeta
	if n == 0 || m == 0 {
		return alpha, beta
	}
	mean := m / int64(n)
	if mean < 1 {
		mean = 1
	}
	skew := maxDeg / mean
	for s := skew; s > thresholdSkewRef; s >>= 1 {
		alpha -= 2
		beta += 2
	}
	if alpha < 6 {
		alpha = 6
	}
	if beta > 28 {
		beta = 28
	}
	return alpha, beta
}

// ArcFilter restricts traversal to accepted arcs with endpoint context:
// u is the tail (a frontier vertex), v the head, t the arc's time label.
// Unlike EdgeFilter it can consult per-vertex kernel state — e.g. the
// temporal-betweenness gate "the label must strictly exceed the label of
// the edge that reached u". In the bottom-up (pull) direction the filter
// is evaluated on the mirror arc, so a filtered direction-optimizing
// traversal requires symmetric time labels (csr.FromEdges with
// undirected=true provides them).
type ArcFilter func(u, v uint32, t uint32) bool

// Hooks are the visitor callbacks that turn the traversal engine into a
// substrate for every BFS-shaped kernel (Brandes betweenness, closeness,
// spanning forests, reachability). All hooks are optional; when a hook is
// nil the engine runs the plain fast path for that aspect — a hook-free
// Run is exactly the zero-overhead BFS.
//
// Concurrency: OnArc and Relax are invoked from worker goroutines and
// run concurrently when Options.Workers > 1. Kernels that accumulate
// into shared per-vertex state (sigma, predecessor lists, visit order)
// should run the engine with Workers: 1 per traversal and parallelize
// across traversals, the coarse-grained scheme of Bader & Madduri (ICPP
// 2006); with one worker every hook is invoked serially and, for OnArc,
// in level order. OnLevelEnd is always invoked serially from the level
// loop.
type Hooks struct {
	// OnArc observes every accepted arc (u, v, t) whose head v is
	// settled at the level that is currently expanding: once with
	// claimed=true when the arc discovers v (exactly one claiming arc
	// per discovered vertex), and with claimed=false for every further
	// arc into v from the same expansion (a shortest-path DAG tie).
	// Together the calls enumerate exactly the predecessor edges of the
	// BFS DAG, which is what the Brandes traversal phase consumes. In
	// the bottom-up direction the observed arcs are the mirror arcs, so
	// OnArc consumers that traverse direction-optimized require a
	// symmetric graph (and symmetric labels if t is consumed).
	OnArc func(u, v uint32, t uint32, claimed bool)
	// OnLevelEnd is invoked after every frontier expansion with the
	// level just completed (1-based) and the number of vertices it
	// discovered (possibly 0 for the final expansion). Returning false
	// stops the traversal — the early-exit used by st-connectivity.
	OnLevelEnd func(level int32, discovered int) bool
	// Relax, when set, replaces BFS set-once discovery with
	// label-correcting relaxation: it is invoked for every accepted arc
	// out of the frontier and returns whether the head vertex should
	// (re-)enter the next frontier, typically because a kernel-owned
	// label improved. A vertex may re-enter the frontier on later
	// levels, so Level and Parent record the most recent relaxation
	// (diagnostic only) and Reached counts distinct vertices ever
	// touched. Relaxation is push-only: DirectionOpt is demoted to
	// TopDown, and the relaxation itself must be atomic if Workers > 1.
	Relax func(u, v uint32, t uint32) bool
}

// Options configures a traversal run. The zero value reproduces the
// classic top-down BFS over all arcs with GOMAXPROCS workers.
type Options struct {
	// Workers is the parallelism; <= 0 means GOMAXPROCS.
	Workers int
	// Strategy selects top-down or direction-optimizing expansion.
	Strategy Strategy
	// Alpha overrides the push->pull edge-mass threshold (<= 0 uses
	// DefaultAlpha). Larger values switch to bottom-up earlier.
	Alpha int64
	// Beta overrides the pull->push frontier-size threshold (<= 0 uses
	// DefaultBeta). Larger values stay in bottom-up longer.
	Beta int64
	// Filter restricts traversal to accepted arcs by time label; nil
	// accepts all.
	Filter EdgeFilter
	// Arc restricts traversal with endpoint context; nil accepts all.
	// Applied after Filter.
	Arc ArcFilter
	// Hooks are the visitor callbacks; the zero value observes nothing.
	Hooks Hooks
}

// Scratch is the reusable arena for traversals: the two hybrid
// frontiers, the per-worker discovery buckets, the degree prefix-sum
// buffer, and the persistent executor whose closure set is allocated
// once and reused by every level of every Run. A Scratch passed to
// successive Run calls (together with a reused Result) makes
// steady-state traversals allocation-free apart from the O(workers)
// goroutine fan-out. A Scratch must not be shared by concurrent
// traversals.
type Scratch struct {
	cur, next *frontier.Frontier
	buckets   *frontier.Buckets
	offsets   []int64
	ex        *exec

	// Cached DeriveThresholds result, keyed by (n, m). The key is a
	// heuristic identity — a different graph with the same shape reuses
	// the cached thresholds, which only ever affects the direction
	// switch points, never correctness — chosen over a graph pointer so
	// a long-lived Scratch does not pin a retired snapshot.
	thrN              int
	thrM              int64
	thrAlpha, thrBeta int64
}

// NewScratch returns an empty arena; buffers are sized on first use.
func NewScratch() *Scratch { return &Scratch{} }

// thresholds returns the derived direction-switching thresholds for the
// graph shape, recomputing only when the shape changed since the last
// call.
func (s *Scratch) thresholds(n int, m, maxDeg int64) (int64, int64) {
	if s.thrAlpha == 0 || s.thrN != n || s.thrM != m {
		s.thrAlpha, s.thrBeta = deriveThresholdsShape(n, m, maxDeg)
		s.thrN, s.thrM = n, m
	}
	return s.thrAlpha, s.thrBeta
}

func (s *Scratch) ensure(n, workers int) {
	if s.cur == nil {
		s.cur, s.next = frontier.New(n), frontier.New(n)
		s.buckets = frontier.NewBuckets(workers)
	} else {
		s.cur.Grow(n)
		s.next.Grow(n)
		s.buckets.Grow(workers)
	}
	if cap(s.offsets) < n+1 {
		s.offsets = make([]int64, 0, n+1)
	}
}

// exec returns the persistent executor, binding its level-loop bodies
// exactly once per Scratch so the per-level par calls reuse the same
// function values instead of allocating fresh closures.
func (s *Scratch) exec() *exec {
	if s.ex == nil {
		e := &exec{sc: s}
		e.topDownFast = e.topDownFastBody
		e.topDownVisit = e.topDownVisitBody
		e.bottomUpFast = e.bottomUpFastBody
		e.bottomUpVisit = e.bottomUpVisitBody
		e.relaxBody = e.relaxStepBody
		e.streamTopFast = e.streamTopFastBody
		e.streamTopVisit = e.streamTopVisitBody
		e.streamBotFast = e.streamBotFastBody
		e.streamBotVisit = e.streamBotVisitBody
		e.streamRelax = e.streamRelaxBody
		s.ex = e
	}
	return s.ex
}

// Reset prepares r for a traversal over n vertices, reusing its arrays
// when they are large enough.
func (r *Result) Reset(workers, n int) {
	if cap(r.Level) < n || cap(r.Parent) < n {
		r.Level = make([]int32, n)
		r.Parent = make([]uint32, n)
	} else {
		r.Level = r.Level[:n]
		r.Parent = r.Parent[:n]
	}
	lvl := r.Level
	if workers == 1 {
		// Plain loop: the closure below would be the one allocation
		// left in a serial steady-state traversal.
		for i := range lvl {
			lvl[i] = NotVisited
		}
	} else {
		par.ForBlock(workers, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				lvl[i] = NotVisited
			}
		})
	}
	if r.Visited == nil {
		r.Visited = frontier.NewBitmap(n)
	} else {
		r.Visited.Grow(n)
	}
	r.Reached = 0
	r.Levels = 0
}

// Run executes a multi-source traversal under opt, writing into res
// (allocated when nil) and drawing buffers from scratch (a temporary
// arena when nil). Sources must be distinct. It returns res.
func Run(g *csr.Graph, sources []uint32, opt Options, scratch *Scratch, res *Result) *Result {
	return runEngine(g, nil, sources, opt, scratch, res)
}

// RunStream executes the same traversal directly over a gap-compressed
// adjacency: every engine mode (top-down, direction-optimizing pull,
// relaxation) decodes arcs through a zero-alloc compress.Cursor instead
// of indexing CSR spans. The streamed top-down step partitions by
// frontier *vertices* (dynamic chunks) rather than by edges — a
// compressed block has no random access into the middle of an arc list —
// so a single mega-hub level is serialized onto one worker; the
// direction heuristic's pull switch covers exactly that regime.
// Semantics, hooks, thresholds, and results are otherwise identical to
// Run on the equivalent CSR.
func RunStream(cg *compress.Graph, sources []uint32, opt Options, scratch *Scratch, res *Result) *Result {
	return runEngine(nil, cg, sources, opt, scratch, res)
}

// runEngine is the shared level loop behind Run (g set) and RunStream
// (cg set): exactly one of the two adjacency providers is non-nil.
func runEngine(g *csr.Graph, cg *compress.Graph, sources []uint32, opt Options, scratch *Scratch, res *Result) *Result {
	workers := opt.Workers
	if workers <= 0 {
		workers = par.MaxWorkers()
	}
	var n int
	var numEdges, maxDeg int64
	if cg != nil {
		n, numEdges, maxDeg = cg.N, cg.NumEdges(), cg.MaxDegree()
	} else {
		n, numEdges, maxDeg = g.N, g.NumEdges(), 0 // maxDeg lazy below
	}
	if res == nil {
		res = &Result{}
	}
	res.Reset(workers, n)
	if scratch == nil {
		scratch = NewScratch()
	}
	scratch.ensure(n, workers)

	// Unset thresholds derive from the degree distribution; explicit
	// Options values always win. The derivation only matters (and only
	// costs its degree scan, cached in the Scratch) when the direction
	// heuristic is live.
	alpha, beta := opt.Alpha, opt.Beta
	if (alpha <= 0 || beta <= 0) && opt.Strategy == DirectionOpt && opt.Hooks.Relax == nil {
		if cg == nil && (scratch.thrAlpha == 0 || scratch.thrN != n || scratch.thrM != numEdges) {
			maxDeg = g.MaxDegree() // only pay the degree scan on a shape change
		}
		da, db := scratch.thresholds(n, numEdges, maxDeg)
		if alpha <= 0 {
			alpha = da
		}
		if beta <= 0 {
			beta = db
		}
	}
	if alpha <= 0 {
		alpha = DefaultAlpha
	}
	if beta <= 0 {
		beta = DefaultBeta
	}

	e := scratch.exec()
	e.g, e.cg, e.res = g, cg, res
	e.filter, e.arc = opt.Filter, opt.Arc
	e.onArc, e.relax = opt.Hooks.OnArc, opt.Hooks.Relax
	e.workers = workers
	e.cur, e.next = scratch.cur, scratch.next

	for _, s := range sources {
		res.Level[s] = 0
		res.Parent[s] = s
		res.Visited.Set(s)
	}
	res.Reached = len(sources)
	e.cur.AppendAll(sources)

	// Direction heuristic state: the current frontier's outgoing edge
	// mass, and the arcs still leaving unvisited vertices. Maintained
	// only when the heuristic can use it, so pure top-down runs pay no
	// degree-sum bookkeeping. Relaxation is push-only: a pull step
	// cannot re-relax already-visited vertices.
	relaxing := e.relax != nil
	needMass := opt.Strategy == DirectionOpt && !relaxing
	e.needMass = needMass
	var curEdges, unexplored int64
	if needMass {
		if cg != nil {
			curEdges = cg.DegreeSum(workers, sources)
		} else {
			curEdges = g.DegreeSum(workers, sources)
		}
		unexplored = numEdges - curEdges
	}
	pull := false

	level := int32(0)
	for e.cur.Count() > 0 {
		level++
		e.level = level
		if needMass {
			if pull {
				if int64(e.cur.Count()) < int64(n)/beta {
					pull = false
				}
			} else if curEdges > unexplored/alpha {
				pull = true
			}
		}
		var found int
		var foundEdges int64
		switch {
		case relaxing:
			found = e.runRelax()
		case pull:
			found, foundEdges = e.runBottomUp()
		default:
			found, foundEdges = e.runTopDown()
		}
		res.Reached += found
		if needMass {
			unexplored -= foundEdges
			curEdges = foundEdges
		}
		stop := false
		if opt.Hooks.OnLevelEnd != nil {
			stop = !opt.Hooks.OnLevelEnd(level, found)
		}
		e.cur, e.next = e.next, e.cur
		e.next.Reset()
		if stop {
			break
		}
	}
	res.Levels = int(level)
	// Drop the per-run references so a long-lived Scratch does not pin
	// the graph, result, or kernel closures between traversals.
	e.g, e.cg, e.res = nil, nil, nil
	e.filter, e.arc, e.onArc, e.relax = nil, nil, nil, nil
	e.cur, e.next, e.curBits, e.nextBits, e.verts, e.offsets = nil, nil, nil, nil, nil, nil
	return res
}

// exec is the per-Scratch engine executor: a persistent set of
// level-loop bodies over mutable per-level fields, so every level of
// every Run hands the par primitives the same function values and the
// steady state allocates no closures at all.
type exec struct {
	sc  *Scratch
	g   *csr.Graph      // plain adjacency provider (Run)
	cg  *compress.Graph // streaming adjacency provider (RunStream)
	res *Result

	filter EdgeFilter
	arc    ArcFilter
	onArc  func(u, v uint32, t uint32, claimed bool)
	relax  func(u, v uint32, t uint32) bool

	workers  int
	needMass bool
	level    int32

	cur, next *frontier.Frontier
	verts     []uint32         // cur's sparse view (top-down / relax)
	offsets   []int64          // prefix-summed frontier degrees (top-down)
	totalWork int64            // arcs out of the frontier (top-down)
	curBits   *frontier.Bitmap // cur as a bitmap (bottom-up)
	nextBits  *frontier.Bitmap // next's dense writer (bottom-up / relax)

	found      int64 // vertices discovered this level
	foundEdges int64 // their total out-degree (needMass), or relax enqueues

	topDownFast   func(lo, hi int)
	topDownVisit  func(lo, hi int)
	bottomUpFast  func(lo, hi int)
	bottomUpVisit func(lo, hi int)
	relaxBody     func(lo, hi int)

	// Streaming-decode bodies (RunStream).
	streamTopFast  func(lo, hi int)
	streamTopVisit func(lo, hi int)
	streamBotFast  func(lo, hi int)
	streamBotVisit func(lo, hi int)
	streamRelax    func(lo, hi int)
}

// runTopDown pushes from the frontier along out-arcs, partitioning the
// level's work by *edges*: a prefix sum over frontier degrees lets each
// worker claim an equal slice of arcs, so one high-degree hub cannot
// serialize a level. Discoveries are claimed with a CAS on the level
// array and collected in per-worker buckets. Returns the number of
// vertices discovered and, when needMass is set, their total out-degree
// (the next frontier's edge mass).
func (e *exec) runTopDown() (int, int64) {
	if e.cg != nil {
		return e.runTopDownStream()
	}
	verts := e.cur.Vertices()
	offsets := e.sc.offsets[:0]
	for _, u := range verts {
		offsets = append(offsets, e.g.Degree(u))
	}
	offsets = append(offsets, 0)
	e.sc.offsets = offsets
	e.verts, e.offsets = verts, offsets
	e.totalWork = psort.ExclusiveScan(e.workers, offsets)
	e.found, e.foundEdges = 0, 0
	if e.totalWork > 0 {
		body := e.topDownFast
		if e.onArc != nil || e.arc != nil {
			body = e.topDownVisit
		}
		par.ForBlock(e.workers, int(e.totalWork), body)
	}
	e.sc.buckets.Drain(e.next)
	return int(e.found), e.foundEdges
}

// topDownFastBody is the hook-free push inner loop: the original BFS
// fast path plus the Visited shadow-bitmap publication.
func (e *exec) topDownFastBody(lo, hi int) {
	g, res, offsets, verts := e.g, e.res, e.offsets, e.verts
	level, filter, needMass := e.level, e.filter, e.needMass
	visited := res.Visited
	w := par.BlockIndex(e.workers, int(e.totalWork), lo)
	local := e.sc.buckets.Take(w)
	var edges int64
	// Locate the first frontier vertex whose arc range intersects
	// [lo, hi).
	vi := psort.SearchOffsets(offsets, int64(lo))
	for pos := int64(lo); pos < int64(hi); {
		for offsets[vi+1] <= pos {
			vi++
		}
		u := verts[vi]
		base := g.Offsets[u] + (pos - offsets[vi])
		end := g.Offsets[u] + (offsets[vi+1] - offsets[vi])
		stop := g.Offsets[u] + (int64(hi) - offsets[vi])
		if stop < end {
			end = stop
		}
		for p := base; p < end; p++ {
			v := g.Adj[p]
			if filter != nil && !filter(g.TS[p]) {
				continue
			}
			if atomic.LoadInt32(&res.Level[v]) != NotVisited {
				continue
			}
			if atomic.CompareAndSwapInt32(&res.Level[v], NotVisited, level) {
				res.Parent[v] = u
				visited.TrySet(v)
				local = append(local, v)
				if needMass {
					edges += g.Degree(v)
				}
			}
		}
		pos = end - g.Offsets[u] + offsets[vi]
	}
	e.sc.buckets.Put(w, local)
	atomic.AddInt64(&e.found, int64(len(local)))
	if needMass {
		atomic.AddInt64(&e.foundEdges, edges)
	}
}

// topDownVisitBody is the visitor push inner loop: same partitioning as
// the fast path, plus the endpoint-aware arc filter and the OnArc
// callback for every arc that settles at the expanding level (claimed
// discoveries and same-level DAG ties alike).
func (e *exec) topDownVisitBody(lo, hi int) {
	g, res, offsets, verts := e.g, e.res, e.offsets, e.verts
	level, filter, arcF, onArc, needMass := e.level, e.filter, e.arc, e.onArc, e.needMass
	visited := res.Visited
	w := par.BlockIndex(e.workers, int(e.totalWork), lo)
	local := e.sc.buckets.Take(w)
	var edges int64
	vi := psort.SearchOffsets(offsets, int64(lo))
	for pos := int64(lo); pos < int64(hi); {
		for offsets[vi+1] <= pos {
			vi++
		}
		u := verts[vi]
		base := g.Offsets[u] + (pos - offsets[vi])
		end := g.Offsets[u] + (offsets[vi+1] - offsets[vi])
		stop := g.Offsets[u] + (int64(hi) - offsets[vi])
		if stop < end {
			end = stop
		}
		for p := base; p < end; p++ {
			v := g.Adj[p]
			t := g.TS[p]
			if filter != nil && !filter(t) {
				continue
			}
			if arcF != nil && !arcF(u, v, t) {
				continue
			}
			lv := atomic.LoadInt32(&res.Level[v])
			if lv == NotVisited {
				if atomic.CompareAndSwapInt32(&res.Level[v], NotVisited, level) {
					res.Parent[v] = u
					visited.TrySet(v)
					local = append(local, v)
					if needMass {
						edges += g.Degree(v)
					}
					if onArc != nil {
						onArc(u, v, t, true)
					}
					continue
				}
				// Lost the claim race: v settled at some level, reload.
				lv = atomic.LoadInt32(&res.Level[v])
			}
			if lv == level && onArc != nil {
				onArc(u, v, t, false)
			}
		}
		pos = end - g.Offsets[u] + offsets[vi]
	}
	e.sc.buckets.Put(w, local)
	atomic.AddInt64(&e.found, int64(len(local)))
	if needMass {
		atomic.AddInt64(&e.foundEdges, edges)
	}
}

// bottomUpChunk is the dynamic-scheduling grain for the pull step. It
// must stay a multiple of 64 so every chunk owns whole words of the
// Visited bitmap and can update them without atomics.
const bottomUpChunk = 512

// relaxChunk is the dynamic-scheduling grain for relaxation steps.
const relaxChunk = 64

// runBottomUp pulls: every unvisited vertex scans its own adjacency for
// a parent already on the frontier and claims itself on the first hit —
// no CAS needed because each vertex is owned by exactly one worker. The
// Visited shadow bitmap lets the scan skip 64 finished vertices at a
// time with a single word load, which is most of the graph on the
// saturated late levels where the pull direction is active. The produced
// frontier is published into a bitmap with atomic word-OR. Returns
// discoveries and their total out-degree.
func (e *exec) runBottomUp() (int, int64) {
	e.curBits = e.cur.Bits(e.workers)
	e.nextBits = e.next.DenseWriter()
	e.found, e.foundEdges = 0, 0
	n := 0
	var body func(lo, hi int)
	if e.cg != nil {
		n = e.cg.N
		body = e.streamBotFast
		if e.onArc != nil || e.arc != nil {
			body = e.streamBotVisit
		}
	} else {
		n = e.g.N
		body = e.bottomUpFast
		if e.onArc != nil || e.arc != nil {
			body = e.bottomUpVisit
		}
	}
	par.ForDynamic(e.workers, n, bottomUpChunk, body)
	e.next.SetCount(int(e.found))
	return int(e.found), e.foundEdges
}

// bottomUpFastBody is the hook-free pull inner loop: first-hit claim
// with word-granular skipping of finished vertices. [lo, hi) is always
// chunk-aligned (bottomUpChunk is a multiple of 64), so this worker owns
// the visited words it reads and writes; only the final word of the
// final chunk can be partial, guarded by the v >= hi break.
func (e *exec) bottomUpFastBody(lo, hi int) {
	g, res := e.g, e.res
	level, filter := e.level, e.filter
	curBits, nextBits := e.curBits, e.nextBits
	words := res.Visited.Words()
	var cnt, edges int64
	for wi := lo >> 6; wi<<6 < hi; wi++ {
		w := words[wi]
		if w == ^uint64(0) {
			continue // 64 finished vertices: skip the whole word
		}
		base := wi << 6
		for m := ^w; m != 0; m &= m - 1 {
			v := base + bits.TrailingZeros64(m)
			if v >= hi {
				break
			}
			alo, ahi := g.Offsets[v], g.Offsets[v+1]
			for p := alo; p < ahi; p++ {
				u := g.Adj[p]
				if !curBits.Get(u) {
					continue
				}
				if filter != nil && !filter(g.TS[p]) {
					continue
				}
				res.Level[v] = level
				res.Parent[v] = u
				words[wi] |= 1 << (uint(v) & 63)
				nextBits.TrySet(uint32(v))
				cnt++
				edges += ahi - alo
				break
			}
		}
	}
	if cnt > 0 {
		atomic.AddInt64(&e.found, cnt)
		atomic.AddInt64(&e.foundEdges, edges)
	}
}

// bottomUpVisitBody is the visitor pull inner loop. When an OnArc hook
// is present the scan cannot stop at the first frontier parent: it keeps
// scanning the full adjacency so every predecessor arc of the claimed
// vertex is reported (as its mirror arc), exactly matching the arcs the
// push direction would observe on a symmetric graph.
func (e *exec) bottomUpVisitBody(lo, hi int) {
	g, res := e.g, e.res
	level, filter, arcF, onArc := e.level, e.filter, e.arc, e.onArc
	curBits, nextBits := e.curBits, e.nextBits
	words := res.Visited.Words()
	var cnt, edges int64
	for wi := lo >> 6; wi<<6 < hi; wi++ {
		w := words[wi]
		if w == ^uint64(0) {
			continue
		}
		base := wi << 6
		for m := ^w; m != 0; m &= m - 1 {
			v := base + bits.TrailingZeros64(m)
			if v >= hi {
				break
			}
			claimed := false
			alo, ahi := g.Offsets[v], g.Offsets[v+1]
			for p := alo; p < ahi; p++ {
				u := g.Adj[p]
				if !curBits.Get(u) {
					continue
				}
				t := g.TS[p]
				if filter != nil && !filter(t) {
					continue
				}
				if arcF != nil && !arcF(u, uint32(v), t) {
					continue
				}
				if !claimed {
					claimed = true
					res.Level[v] = level
					res.Parent[v] = u
					words[wi] |= 1 << (uint(v) & 63)
					nextBits.TrySet(uint32(v))
					cnt++
					edges += ahi - alo
					if onArc == nil {
						break
					}
					onArc(u, uint32(v), t, true)
					continue
				}
				onArc(u, uint32(v), t, false)
			}
		}
	}
	if cnt > 0 {
		atomic.AddInt64(&e.found, cnt)
		atomic.AddInt64(&e.foundEdges, edges)
	}
}

// runRelax expands one label-correcting round: every accepted arc out of
// the frontier is offered to the Relax hook, and heads it accepts are
// deduplicated into the next frontier through its dense writer. Returns
// the number of vertices touched for the first time (the Reached
// contribution); the next frontier's size is the deduplicated enqueue
// count.
func (e *exec) runRelax() int {
	e.verts = e.cur.Vertices()
	e.nextBits = e.next.DenseWriter()
	e.found, e.foundEdges = 0, 0
	body := e.relaxBody
	if e.cg != nil {
		body = e.streamRelax
	}
	par.ForDynamic(e.workers, len(e.verts), relaxChunk, body)
	e.next.SetCount(int(e.foundEdges))
	return int(e.found)
}

func (e *exec) relaxStepBody(lo, hi int) {
	g, res := e.g, e.res
	filter, arcF, relax := e.filter, e.arc, e.relax
	level, nextBits := e.level, e.nextBits
	var enq, newly int64
	for _, u := range e.verts[lo:hi] {
		alo, ahi := g.Offsets[u], g.Offsets[u+1]
		for p := alo; p < ahi; p++ {
			v := g.Adj[p]
			t := g.TS[p]
			if filter != nil && !filter(t) {
				continue
			}
			if arcF != nil && !arcF(u, v, t) {
				continue
			}
			if !relax(u, v, t) {
				continue
			}
			// Level and Parent are last-writer-wins diagnostics in relax
			// mode; both stores are atomic so a parallel relaxation
			// (atomic hook, Workers > 1) stays race-free.
			atomic.StoreInt32(&res.Level[v], level)
			atomic.StoreUint32(&res.Parent[v], u)
			if res.Visited.TrySet(v) {
				newly++
			}
			if nextBits.TrySet(v) {
				enq++
			}
		}
	}
	if newly > 0 || enq > 0 {
		atomic.AddInt64(&e.found, newly)
		atomic.AddInt64(&e.foundEdges, enq)
	}
}
