package traversal

import (
	"sync/atomic"

	"snapdyn/internal/csr"
	"snapdyn/internal/frontier"
	"snapdyn/internal/par"
	"snapdyn/internal/psort"
)

// Strategy selects the frontier-expansion engine.
type Strategy int

const (
	// TopDown always pushes from the frontier: the classic
	// level-synchronous edge-partitioned BFS. Correct on any graph,
	// directed or not.
	TopDown Strategy = iota
	// DirectionOpt switches between top-down push and bottom-up pull by
	// frontier edge mass (Beamer-style direction-optimizing BFS). The
	// pull step discovers a vertex by scanning its own adjacency for a
	// frontier endpoint, so the graph must be symmetric (undirected),
	// and a filtered traversal additionally needs the mirror arc v->u
	// to carry the same time label as u->v (the pull step filters on
	// the reverse arc). Graphs built by csr.FromEdges(undirected=true)
	// satisfy both; snapshots of treap-backed dynamic stores collapse
	// parallel-edge labels per direction and only satisfy the
	// unfiltered requirement.
	DirectionOpt
)

// Default direction-switching thresholds (Beamer et al., SC'12).
const (
	// DefaultAlpha: switch push->pull when the frontier's outgoing edge
	// mass exceeds 1/DefaultAlpha of the arcs out of unvisited vertices.
	DefaultAlpha = 15
	// DefaultBeta: switch pull->push when the frontier shrinks below
	// n/DefaultBeta vertices.
	DefaultBeta = 18
)

// Options configures a traversal run. The zero value reproduces the
// classic top-down BFS over all arcs with GOMAXPROCS workers.
type Options struct {
	// Workers is the parallelism; <= 0 means GOMAXPROCS.
	Workers int
	// Strategy selects top-down or direction-optimizing expansion.
	Strategy Strategy
	// Alpha overrides the push->pull edge-mass threshold (<= 0 uses
	// DefaultAlpha). Larger values switch to bottom-up earlier.
	Alpha int64
	// Beta overrides the pull->push frontier-size threshold (<= 0 uses
	// DefaultBeta). Larger values stay in bottom-up longer.
	Beta int64
	// Filter restricts traversal to accepted arcs; nil accepts all.
	Filter EdgeFilter
}

// Scratch is the reusable arena for traversals: the two hybrid
// frontiers, the per-worker discovery buckets, and the degree prefix-sum
// buffer. A Scratch passed to successive Run calls (together with a
// reused Result) makes steady-state traversals allocation-free apart
// from the O(workers) goroutine fan-out. A Scratch must not be shared by
// concurrent traversals.
type Scratch struct {
	cur, next *frontier.Frontier
	buckets   *frontier.Buckets
	offsets   []int64
}

// NewScratch returns an empty arena; buffers are sized on first use.
func NewScratch() *Scratch { return &Scratch{} }

func (s *Scratch) ensure(n, workers int) {
	if s.cur == nil {
		s.cur, s.next = frontier.New(n), frontier.New(n)
		s.buckets = frontier.NewBuckets(workers)
	} else {
		s.cur.Grow(n)
		s.next.Grow(n)
		s.buckets.Grow(workers)
	}
	if cap(s.offsets) < n+1 {
		s.offsets = make([]int64, 0, n+1)
	}
}

// Reset prepares r for a traversal over n vertices, reusing its arrays
// when they are large enough.
func (r *Result) Reset(workers, n int) {
	if cap(r.Level) < n || cap(r.Parent) < n {
		r.Level = make([]int32, n)
		r.Parent = make([]uint32, n)
	} else {
		r.Level = r.Level[:n]
		r.Parent = r.Parent[:n]
	}
	lvl := r.Level
	par.ForBlock(workers, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			lvl[i] = NotVisited
		}
	})
	r.Reached = 0
	r.Levels = 0
}

// Run executes a multi-source traversal under opt, writing into res
// (allocated when nil) and drawing buffers from scratch (a temporary
// arena when nil). Sources must be distinct. It returns res.
func Run(g *csr.Graph, sources []uint32, opt Options, scratch *Scratch, res *Result) *Result {
	workers := opt.Workers
	if workers <= 0 {
		workers = par.MaxWorkers()
	}
	alpha, beta := opt.Alpha, opt.Beta
	if alpha <= 0 {
		alpha = DefaultAlpha
	}
	if beta <= 0 {
		beta = DefaultBeta
	}
	n := g.N
	if res == nil {
		res = &Result{}
	}
	res.Reset(workers, n)
	if scratch == nil {
		scratch = NewScratch()
	}
	scratch.ensure(n, workers)

	for _, s := range sources {
		res.Level[s] = 0
		res.Parent[s] = s
	}
	res.Reached = len(sources)

	cur, next := scratch.cur, scratch.next
	cur.AppendAll(sources)

	// Direction heuristic state: the current frontier's outgoing edge
	// mass, and the arcs still leaving unvisited vertices. Maintained
	// only when the heuristic can use it, so pure top-down runs pay no
	// degree-sum bookkeeping.
	needMass := opt.Strategy == DirectionOpt
	var curEdges, unexplored int64
	if needMass {
		curEdges = g.DegreeSum(workers, sources)
		unexplored = g.NumEdges() - curEdges
	}
	pull := false

	level := int32(0)
	for cur.Count() > 0 {
		level++
		if needMass {
			if pull {
				if int64(cur.Count()) < int64(n)/beta {
					pull = false
				}
			} else if curEdges > unexplored/alpha {
				pull = true
			}
		}
		var found int
		var foundEdges int64
		if pull {
			found, foundEdges = bottomUpStep(workers, g, opt.Filter, res, cur, next, level)
		} else {
			found, foundEdges = topDownStep(workers, g, opt.Filter, res, scratch, cur, next, level, needMass)
		}
		res.Reached += found
		if needMass {
			unexplored -= foundEdges
			curEdges = foundEdges
		}
		cur, next = next, cur
		next.Reset()
	}
	res.Levels = int(level)
	return res
}

// topDownStep pushes from the frontier along out-arcs, partitioning the
// level's work by *edges*: a prefix sum over frontier degrees lets each
// worker claim an equal slice of arcs, so one high-degree hub cannot
// serialize a level. Discoveries are claimed with a CAS on the level
// array and collected in per-worker buckets. Returns the number of
// vertices discovered and, when needMass is set, their total out-degree
// (the next frontier's edge mass).
func topDownStep(workers int, g *csr.Graph, filter EdgeFilter, res *Result,
	s *Scratch, cur, next *frontier.Frontier, level int32, needMass bool) (int, int64) {
	verts := cur.Vertices()
	offsets := s.offsets[:0]
	for _, u := range verts {
		offsets = append(offsets, g.Degree(u))
	}
	offsets = append(offsets, 0)
	s.offsets = offsets
	totalWork := psort.ExclusiveScan(workers, offsets)
	var found, foundEdges int64
	if totalWork > 0 {
		par.ForBlock(workers, int(totalWork), func(lo, hi int) {
			w := searchWorker(workers, int(totalWork), lo)
			local := s.buckets.Take(w)
			var edges int64
			// Locate the first frontier vertex whose arc range
			// intersects [lo, hi).
			vi := searchOffsets(offsets, int64(lo))
			for pos := int64(lo); pos < int64(hi); {
				for offsets[vi+1] <= pos {
					vi++
				}
				u := verts[vi]
				base := g.Offsets[u] + (pos - offsets[vi])
				end := g.Offsets[u] + (offsets[vi+1] - offsets[vi])
				stop := g.Offsets[u] + (int64(hi) - offsets[vi])
				if stop < end {
					end = stop
				}
				for p := base; p < end; p++ {
					v := g.Adj[p]
					if filter != nil && !filter(g.TS[p]) {
						continue
					}
					if atomic.LoadInt32(&res.Level[v]) != NotVisited {
						continue
					}
					if atomic.CompareAndSwapInt32(&res.Level[v], NotVisited, level) {
						res.Parent[v] = u
						local = append(local, v)
						if needMass {
							edges += g.Degree(v)
						}
					}
				}
				pos = end - g.Offsets[u] + offsets[vi]
			}
			s.buckets.Put(w, local)
			atomic.AddInt64(&found, int64(len(local)))
			if needMass {
				atomic.AddInt64(&foundEdges, edges)
			}
		})
	}
	s.buckets.Drain(next)
	return int(found), foundEdges
}

// bottomUpChunk is the dynamic-scheduling grain for the pull step.
const bottomUpChunk = 512

// bottomUpStep pulls: every unvisited vertex scans its own adjacency for
// a parent already on the frontier and claims itself on the first hit —
// no CAS needed because each vertex is owned by exactly one worker, and
// the scan breaks on the first frontier neighbor instead of touching
// every arc. The produced frontier is published into a bitmap with
// atomic word-OR. Returns discoveries and their total out-degree.
func bottomUpStep(workers int, g *csr.Graph, filter EdgeFilter, res *Result,
	cur, next *frontier.Frontier, level int32) (int, int64) {
	curBits := cur.Bits(workers)
	nextBits := next.DenseWriter()
	var found, foundEdges int64
	par.ForDynamic(workers, g.N, bottomUpChunk, func(lo, hi int) {
		var cnt, edges int64
		for v := lo; v < hi; v++ {
			if res.Level[v] != NotVisited {
				continue
			}
			alo, ahi := g.Offsets[v], g.Offsets[v+1]
			for p := alo; p < ahi; p++ {
				u := g.Adj[p]
				if !curBits.Get(u) {
					continue
				}
				if filter != nil && !filter(g.TS[p]) {
					continue
				}
				res.Level[v] = level
				res.Parent[v] = u
				nextBits.TrySet(uint32(v))
				cnt++
				edges += ahi - alo
				break
			}
		}
		if cnt > 0 {
			atomic.AddInt64(&found, cnt)
			atomic.AddInt64(&foundEdges, edges)
		}
	})
	next.SetCount(int(found))
	return int(found), foundEdges
}

// searchOffsets returns the largest index i with offsets[i] <= pos.
func searchOffsets(offsets []int64, pos int64) int {
	lo, hi := 0, len(offsets)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if offsets[mid] <= pos {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// searchWorker mirrors par.ForBlock's static partitioning.
func searchWorker(workers, n, lo int) int {
	q, r := n/workers, n%workers
	big := r * (q + 1)
	if lo < big {
		return lo / (q + 1)
	}
	if q == 0 {
		return workers - 1
	}
	return r + (lo-big)/q
}
