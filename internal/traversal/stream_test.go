package traversal

import (
	"sort"
	"testing"

	"snapdyn/internal/cc"
	"snapdyn/internal/compress"
	"snapdyn/internal/csr"
	"snapdyn/internal/edge"
)

// streamPair builds an R-MAT CSR and its compressed twin.
func streamPair(t testing.TB, scale, edgeFactor int, tmax uint32, seed uint64) (*csr.Graph, *compress.Graph) {
	t.Helper()
	g := rmatGraph(t, scale, edgeFactor, tmax, seed)
	return g, compress.FromCSR(0, g)
}

func TestRunStreamMatchesRun(t *testing.T) {
	g, cg := streamPair(t, 11, 8, 0, 41)
	for _, src := range []uint32{0, 7, 512, 1999} {
		want := Run(g, []uint32{src}, Options{Workers: 4}, nil, nil)
		for _, workers := range []int{1, 4} {
			for _, strat := range []Strategy{TopDown, DirectionOpt} {
				got := RunStream(cg, []uint32{src},
					Options{Workers: workers, Strategy: strat}, nil, nil)
				levelsEqual(t, "stream", got.Level, want.Level)
				if got.Reached != want.Reached || got.Levels != want.Levels {
					t.Fatalf("src=%d workers=%d strat=%d: reached/levels %d/%d, want %d/%d",
						src, workers, strat, got.Reached, got.Levels, want.Reached, want.Levels)
				}
			}
		}
	}
}

func TestRunStreamForcedPull(t *testing.T) {
	g, cg := streamPair(t, 10, 5, 0, 43)
	want := BFS(2, g, 3)
	for _, workers := range []int{1, 4} {
		opt := forcePull
		opt.Workers = workers
		got := RunStream(cg, []uint32{3}, opt, nil, nil)
		levelsEqual(t, "stream-pull", got.Level, want.Level)
		if got.Reached != want.Reached || got.Levels != want.Levels {
			t.Fatalf("reached/levels %d/%d, want %d/%d",
				got.Reached, got.Levels, want.Reached, want.Levels)
		}
	}
}

func TestRunStreamTemporalFilter(t *testing.T) {
	g, cg := streamPair(t, 10, 6, 50, 47)
	filter := TimeWindow(10, 30)
	want := TemporalBFS(4, g, 1, filter)
	got := RunStream(cg, []uint32{1},
		Options{Workers: 4, Filter: filter}, nil, nil)
	levelsEqual(t, "stream-temporal", got.Level, want.Level)
	if got.Reached != want.Reached || got.Levels != want.Levels {
		t.Fatalf("reached/levels %d/%d, want %d/%d",
			got.Reached, got.Levels, want.Reached, want.Levels)
	}
}

func TestRunStreamMultiSource(t *testing.T) {
	g, cg := streamPair(t, 10, 3, 0, 53)
	sources := []uint32{0, 100, 200, 999}
	want := MultiBFS(4, g, sources)
	got := RunStream(cg, sources, Options{Workers: 4, Strategy: DirectionOpt}, nil, nil)
	levelsEqual(t, "stream-multi", got.Level, want.Level)
	if got.Reached != want.Reached {
		t.Fatalf("reached %d, want %d", got.Reached, want.Reached)
	}
}

// TestRunStreamOnArcDAG asserts the visitor path observes exactly the
// same predecessor-arc multiset as the CSR engine: (u, v, t, level) for
// every arc settling at its head's discovery level. Claim winners may
// differ (adjacency order differs between the representations), so the
// comparison is order- and claim-flag-insensitive.
func TestRunStreamOnArcDAG(t *testing.T) {
	g, cg := streamPair(t, 9, 6, 20, 59)
	type obs struct {
		u, v uint32
		t    uint32
	}
	collect := func(run func(h Hooks) *Result) []obs {
		var arcs []obs
		h := Hooks{OnArc: func(u, v uint32, ts uint32, _ bool) {
			arcs = append(arcs, obs{u, v, ts})
		}}
		run(h)
		sort.Slice(arcs, func(a, b int) bool {
			if arcs[a].u != arcs[b].u {
				return arcs[a].u < arcs[b].u
			}
			if arcs[a].v != arcs[b].v {
				return arcs[a].v < arcs[b].v
			}
			return arcs[a].t < arcs[b].t
		})
		return arcs
	}
	want := collect(func(h Hooks) *Result {
		return Run(g, []uint32{5}, Options{Workers: 1, Hooks: h}, nil, nil)
	})
	got := collect(func(h Hooks) *Result {
		return RunStream(cg, []uint32{5}, Options{Workers: 1, Hooks: h}, nil, nil)
	})
	if len(got) != len(want) {
		t.Fatalf("observed %d arcs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("arc %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestStreamComponentsMatchCC(t *testing.T) {
	g, cg := streamPair(t, 10, 2, 0, 61)
	want := cc.Components(4, g)
	comp, _ := StreamComponentsInto(cg, nil, nil)
	for v := range want {
		if comp[v] != want[v] {
			t.Fatalf("comp[%d] = %d, want %d", v, comp[v], want[v])
		}
	}
	// Reuse path: same buffers, same answer.
	comp2, _ := StreamComponentsInto(cg, comp, nil)
	for v := range want {
		if comp2[v] != want[v] {
			t.Fatalf("reused comp[%d] = %d, want %d", v, comp2[v], want[v])
		}
	}
}

// TestStreamSteadyStateAllocations is the compressed twin of
// TestSteadyStateAllocations: a serial warm RunStream must allocate
// nothing at all (the ISSUE's acceptance bar for engine-on-compressed),
// and parallel runs only the O(workers) fan-out.
func TestStreamSteadyStateAllocations(t *testing.T) {
	scratch := NewScratch()
	res := &Result{}
	sources := []uint32{0}
	measure := func(scale, workers int) float64 {
		g := rmatGraph(t, scale, 8, 0, 21)
		cg := compress.FromCSR(0, g)
		opt := Options{Workers: workers, Strategy: DirectionOpt}
		RunStream(cg, sources, opt, scratch, res) // warm up the arena
		return testing.AllocsPerRun(10, func() {
			RunStream(cg, sources, opt, scratch, res)
		})
	}
	if allocs := measure(12, 1); allocs > 0 {
		t.Fatalf("serial steady-state allocs/run = %g, want 0", allocs)
	}
	small, large := measure(10, 4), measure(14, 4)
	if small > 64 || large > 64 {
		t.Fatalf("steady-state allocs/run = %g (2^10), %g (2^14); want <= 64", small, large)
	}
	if large > 2*small+8 {
		t.Fatalf("allocs grow with graph size: %g (2^10) -> %g (2^14)", small, large)
	}
}

func TestStreamComponentsSteadyStateAllocations(t *testing.T) {
	g := rmatGraph(t, 11, 2, 0, 67)
	cg := compress.FromCSR(0, g)
	comp, queue := StreamComponentsInto(cg, nil, nil)
	allocs := testing.AllocsPerRun(10, func() {
		comp, queue = StreamComponentsInto(cg, comp, queue)
	})
	if allocs > 0 {
		t.Fatalf("warm StreamComponentsInto allocs/run = %g, want 0", allocs)
	}
	_ = comp
}

// Adversarial shapes through the stream engine, mirroring
// TestDirectionOptAdversarialShapes.
func TestRunStreamAdversarialShapes(t *testing.T) {
	const n = 3000
	var star []edge.Edge
	for v := uint32(1); v < n; v++ {
		star = append(star, edge.Edge{U: 0, V: v})
	}
	var path []edge.Edge
	for v := uint32(0); v < 99; v++ {
		path = append(path, edge.Edge{U: v, V: v + 1})
	}
	discon := []edge.Edge{{U: 0, V: 1}, {U: 2, V: 3}, {U: 5, V: 6}}
	cases := []struct {
		name  string
		n     int
		edges []edge.Edge
		src   uint32
	}{
		{"star-hub", n, star, 0},
		{"star-leaf", n, star, 17},
		{"path-head", 100, path, 0},
		{"path-mid", 100, path, 50},
		{"disconnected", 8, discon, 0},
	}
	for _, tc := range cases {
		g := csr.FromEdges(0, tc.n, tc.edges, true)
		cg := compress.FromCSR(0, g)
		want := BFS(4, g, tc.src)
		for _, opt := range []Options{
			{Workers: 4, Strategy: DirectionOpt},
			{Workers: 4, Strategy: forcePull.Strategy, Alpha: forcePull.Alpha, Beta: forcePull.Beta},
		} {
			got := RunStream(cg, []uint32{tc.src}, opt, nil, nil)
			levelsEqual(t, tc.name, got.Level, want.Level)
			if got.Reached != want.Reached || got.Levels != want.Levels {
				t.Fatalf("%s: reached/levels %d/%d, want %d/%d",
					tc.name, got.Reached, got.Levels, want.Reached, want.Levels)
			}
		}
	}
}
