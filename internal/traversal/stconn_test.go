package traversal

import (
	"testing"
	"testing/quick"

	"snapdyn/internal/csr"
	"snapdyn/internal/edge"
	"snapdyn/internal/rmat"
	"snapdyn/internal/xrand"
)

func TestBidirectionalLine(t *testing.T) {
	g := lineGraph(50)
	ok, d := STConnectedBidirectional(g, 0, 49)
	if !ok || d != 49 {
		t.Fatalf("got (%v,%d), want (true,49)", ok, d)
	}
	ok, d = STConnectedBidirectional(g, 10, 10)
	if !ok || d != 0 {
		t.Fatalf("self query (%v,%d)", ok, d)
	}
	ok, d = STConnectedBidirectional(g, 3, 4)
	if !ok || d != 1 {
		t.Fatalf("adjacent query (%v,%d)", ok, d)
	}
}

func TestBidirectionalDisconnected(t *testing.T) {
	edges := []edge.Edge{{U: 0, V: 1}, {U: 2, V: 3}}
	g := csr.FromEdges(1, 4, edges, true)
	ok, d := STConnectedBidirectional(g, 0, 3)
	if ok || d != -1 {
		t.Fatalf("got (%v,%d), want (false,-1)", ok, d)
	}
}

func TestBidirectionalMatchesBFSOnRMAT(t *testing.T) {
	p := rmat.PaperParams(10, 6*(1<<10), 0, 29)
	edgesL, _ := rmat.Generate(0, p)
	g := csr.FromEdges(0, p.NumVertices(), edgesL, true)
	r := xrand.New(3)
	n := uint32(g.N)
	for i := 0; i < 300; i++ {
		s, tt := edge.ID(r.Uint32n(n)), edge.ID(r.Uint32n(n))
		res := BFS(0, g, s)
		wantOK := res.Level[tt] != NotVisited
		wantD := res.Level[tt]
		gotOK, gotD := STConnectedBidirectional(g, s, tt)
		if gotOK != wantOK {
			t.Fatalf("(%d,%d): reachability %v, want %v", s, tt, gotOK, wantOK)
		}
		if gotOK && gotD != wantD {
			t.Fatalf("(%d,%d): distance %d, want %d", s, tt, gotD, wantD)
		}
	}
}

func TestBidirectionalPropertyRandomGraphs(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		n := 8 + int(r.Uint32n(24))
		var es []edge.Edge
		for i := 0; i < 3*n; i++ {
			es = append(es, edge.Edge{U: r.Uint32n(uint32(n)), V: r.Uint32n(uint32(n))})
		}
		g := csr.FromEdges(1, n, es, true)
		s := edge.ID(r.Uint32n(uint32(n)))
		tt := edge.ID(r.Uint32n(uint32(n)))
		res := BFS(1, g, s)
		wantOK := res.Level[tt] != NotVisited
		gotOK, gotD := STConnectedBidirectional(g, s, tt)
		if gotOK != wantOK {
			return false
		}
		return !gotOK || gotD == res.Level[tt]
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiBFSCoversAllSources(t *testing.T) {
	edges := []edge.Edge{{U: 0, V: 1}, {U: 2, V: 3}, {U: 3, V: 4}}
	g := csr.FromEdges(1, 6, edges, true)
	res := MultiBFS(2, g, []uint32{0, 2, 5})
	if res.Reached != 6 {
		t.Fatalf("reached %d, want 6", res.Reached)
	}
	for _, src := range []int{0, 2, 5} {
		if res.Level[src] != 0 {
			t.Fatalf("source %d at level %d", src, res.Level[src])
		}
	}
	if res.Level[1] != 1 || res.Level[3] != 1 || res.Level[4] != 2 {
		t.Fatalf("levels wrong: %v", res.Level)
	}
}

func TestMultiBFSEmptySources(t *testing.T) {
	g := lineGraph(4)
	res := MultiBFS(2, g, nil)
	if res.Reached != 0 {
		t.Fatalf("reached %d from no sources", res.Reached)
	}
	for _, l := range res.Level {
		if l != NotVisited {
			t.Fatal("vertex visited from no sources")
		}
	}
}

func BenchmarkSTConnectedBidirectional(b *testing.B) {
	p := rmat.PaperParams(14, 8*(1<<14), 0, 5)
	edgesL, _ := rmat.Generate(0, p)
	g := csr.FromEdges(0, p.NumVertices(), edgesL, true)
	r := xrand.New(1)
	n := uint32(g.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		STConnectedBidirectional(g, r.Uint32n(n), r.Uint32n(n))
	}
}
