package traversal

import (
	"testing"

	"snapdyn/internal/csr"
	"snapdyn/internal/edge"
	"snapdyn/internal/rmat"
)

// forcePull makes the direction heuristic enter bottom-up at level 1 and
// never leave it, so tests cover the pull step on any graph shape.
var forcePull = Options{Strategy: DirectionOpt, Alpha: 1 << 40, Beta: 1 << 40}

func levelsEqual(t *testing.T, name string, got, want []int32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: level length %d != %d", name, len(got), len(want))
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("%s: level[%d] = %d, want %d", name, v, got[v], want[v])
		}
	}
}

// checkParents verifies the parent array is a valid BFS forest: each
// reached non-source vertex has a reached parent one level closer that
// is an actual in-neighbor.
func checkParents(t *testing.T, g *csr.Graph, res *Result) {
	t.Helper()
	for v := range res.Level {
		if res.Level[v] <= 0 {
			continue // unreached or source
		}
		p := res.Parent[v]
		if res.Level[p] != res.Level[v]-1 {
			t.Fatalf("parent level invariant broken at %d: level %d, parent %d at %d",
				v, res.Level[v], p, res.Level[p])
		}
		adj, _ := g.Neighbors(p)
		ok := false
		for _, w := range adj {
			if w == uint32(v) {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("parent %d of %d is not adjacent", p, v)
		}
	}
}

func rmatGraph(t testing.TB, scale, edgeFactor int, tmax uint32, seed uint64) *csr.Graph {
	t.Helper()
	p := rmat.PaperParams(scale, edgeFactor*(1<<scale), tmax, seed)
	edges, err := rmat.Generate(0, p)
	if err != nil {
		t.Fatal(err)
	}
	return csr.FromEdges(0, p.NumVertices(), edges, true)
}

func TestDirectionOptMatchesTopDownRMAT(t *testing.T) {
	g := rmatGraph(t, 12, 8, 0, 31)
	for _, src := range []uint32{0, 7, 512, 4000} {
		want := Run(g, []uint32{src}, Options{Workers: 4}, nil, nil)
		for _, workers := range []int{1, 4, 8} {
			got := Run(g, []uint32{src},
				Options{Workers: workers, Strategy: DirectionOpt}, nil, nil)
			levelsEqual(t, "dirop", got.Level, want.Level)
			if got.Reached != want.Reached || got.Levels != want.Levels {
				t.Fatalf("src=%d workers=%d: reached/levels %d/%d, want %d/%d",
					src, workers, got.Reached, got.Levels, want.Reached, want.Levels)
			}
			checkParents(t, g, got)
		}
	}
}

func TestForcedBottomUpMatchesTopDown(t *testing.T) {
	g := rmatGraph(t, 11, 5, 0, 77)
	for _, workers := range []int{1, 4} {
		want := BFS(workers, g, 3)
		opt := forcePull
		opt.Workers = workers
		got := Run(g, []uint32{3}, opt, nil, nil)
		levelsEqual(t, "forced-pull", got.Level, want.Level)
		if got.Reached != want.Reached || got.Levels != want.Levels {
			t.Fatalf("reached/levels %d/%d, want %d/%d",
				got.Reached, got.Levels, want.Reached, want.Levels)
		}
		checkParents(t, g, got)
	}
}

func TestDirectionOptAdversarialShapes(t *testing.T) {
	// Star: one pull step discovers every leaf.
	const n = 3000
	var star []edge.Edge
	for v := uint32(1); v < n; v++ {
		star = append(star, edge.Edge{U: 0, V: v})
	}
	// Path: worst case for pull (frontier never gains mass).
	var path []edge.Edge
	for v := uint32(0); v < 99; v++ {
		path = append(path, edge.Edge{U: v, V: v + 1})
	}
	// Disconnected pairs plus isolated vertices.
	discon := []edge.Edge{{U: 0, V: 1}, {U: 2, V: 3}, {U: 5, V: 6}}

	cases := []struct {
		name  string
		n     int
		edges []edge.Edge
		src   uint32
	}{
		{"star-hub", n, star, 0},
		{"star-leaf", n, star, 17},
		{"path-head", 100, path, 0},
		{"path-mid", 100, path, 50},
		{"disconnected", 8, discon, 0},
	}
	for _, tc := range cases {
		g := csr.FromEdges(0, tc.n, tc.edges, true)
		want := BFS(4, g, tc.src)
		for _, opt := range []Options{
			{Workers: 4, Strategy: DirectionOpt},
			{Workers: 4, Strategy: forcePull.Strategy, Alpha: forcePull.Alpha, Beta: forcePull.Beta},
		} {
			got := Run(g, []uint32{tc.src}, opt, nil, nil)
			levelsEqual(t, tc.name, got.Level, want.Level)
			if got.Reached != want.Reached || got.Levels != want.Levels {
				t.Fatalf("%s: reached/levels %d/%d, want %d/%d",
					tc.name, got.Reached, got.Levels, want.Reached, want.Levels)
			}
			checkParents(t, g, got)
		}
	}
}

func TestDirectionOptMultiSource(t *testing.T) {
	g := rmatGraph(t, 10, 3, 0, 9)
	sources := []uint32{0, 100, 200, 999}
	want := MultiBFS(4, g, sources)
	got := Run(g, sources, Options{Workers: 4, Strategy: DirectionOpt}, nil, nil)
	levelsEqual(t, "multi", got.Level, want.Level)
	if got.Reached != want.Reached {
		t.Fatalf("reached %d, want %d", got.Reached, want.Reached)
	}
}

func TestDirectionOptTemporalFilter(t *testing.T) {
	g := rmatGraph(t, 11, 6, 50, 13)
	filter := TimeWindow(10, 30)
	want := TemporalBFS(4, g, 1, filter)
	got := Run(g, []uint32{1},
		Options{Workers: 4, Strategy: DirectionOpt, Filter: filter}, nil, nil)
	levelsEqual(t, "temporal", got.Level, want.Level)
	if got.Reached != want.Reached || got.Levels != want.Levels {
		t.Fatalf("reached/levels %d/%d, want %d/%d",
			got.Reached, got.Levels, want.Reached, want.Levels)
	}
	// And under forced pull.
	opt := forcePull
	opt.Filter = filter
	got = Run(g, []uint32{1}, opt, nil, nil)
	levelsEqual(t, "temporal-pull", got.Level, want.Level)
}

func TestScratchAndResultReuse(t *testing.T) {
	scratch := NewScratch()
	res := &Result{}
	// Alternate between two graphs of different sizes so reuse must
	// handle regrowing and shrinking.
	big := rmatGraph(t, 11, 8, 0, 5)
	small := rmatGraph(t, 8, 4, 0, 6)
	wantBig := Run(big, []uint32{2}, Options{Workers: 4, Strategy: DirectionOpt}, nil, nil)
	wantSmall := Run(small, []uint32{2}, Options{Workers: 4, Strategy: DirectionOpt}, nil, nil)
	for i := 0; i < 6; i++ {
		g, want := big, wantBig
		if i%2 == 1 {
			g, want = small, wantSmall
		}
		got := Run(g, []uint32{2}, Options{Workers: 4, Strategy: DirectionOpt}, scratch, res)
		if got != res {
			t.Fatal("Run did not return the reused result")
		}
		levelsEqual(t, "reuse", got.Level, want.Level)
		if got.Reached != want.Reached || got.Levels != want.Levels {
			t.Fatalf("iteration %d: reached/levels diverged", i)
		}
	}
}

func TestSteadyStateAllocations(t *testing.T) {
	scratch := NewScratch()
	res := &Result{}
	sources := []uint32{0}
	measure := func(scale, workers int) float64 {
		g := rmatGraph(t, scale, 8, 0, 21)
		opt := Options{Workers: workers, Strategy: DirectionOpt}
		Run(g, sources, opt, scratch, res) // warm up the arena
		return testing.AllocsPerRun(10, func() {
			Run(g, sources, opt, scratch, res)
		})
	}
	// A serial steady-state traversal must not allocate at all: the
	// Scratch holds the frontiers, buckets, prefix-sum buffer, and the
	// executor's closure set, and the serial paths of the par/frontier
	// helpers avoid escaping state. Anything nonzero is a regression.
	if allocs := measure(12, 1); allocs > 0 {
		t.Fatalf("serial steady-state allocs/run = %g, want 0", allocs)
	}
	// Parallel runs may allocate the O(workers) goroutine fan-out, but
	// never anything O(n) or O(frontier): the count must be a small
	// constant independent of graph size.
	small, large := measure(10, 4), measure(14, 4)
	if small > 64 || large > 64 {
		t.Fatalf("steady-state allocs/run = %g (2^10), %g (2^14); want <= 64", small, large)
	}
	if large > 2*small+8 {
		t.Fatalf("allocs grow with graph size: %g (2^10) -> %g (2^14)", small, large)
	}
}

func TestDeriveThresholds(t *testing.T) {
	// Low skew: the global defaults, unchanged.
	p := rmatGraph(t, 10, 8, 0, 3) // path-adjacent skew well under the ref
	if a, b := DeriveThresholds(p); a > DefaultAlpha || b < DefaultBeta {
		t.Fatalf("low-skew thresholds moved the wrong way: alpha=%d beta=%d", a, b)
	}
	// A star graph is maximally skewed: alpha must drop (later pull
	// entry) and beta rise (longer pull stay), within the clamps.
	n := 1 << 12
	var edges []edge.Edge
	for v := 1; v < n; v++ {
		edges = append(edges, edge.Edge{U: 0, V: uint32(v)})
	}
	star := csr.FromEdges(0, n, edges, true)
	a, b := DeriveThresholds(star)
	if a >= DefaultAlpha || b <= DefaultBeta {
		t.Fatalf("star thresholds not shifted: alpha=%d beta=%d", a, b)
	}
	if a < 6 || b > 28 {
		t.Fatalf("thresholds escaped clamps: alpha=%d beta=%d", a, b)
	}
	// Degenerate shapes fall back to the defaults.
	if a, b := DeriveThresholds(csr.FromEdges(1, 3, nil, false)); a != DefaultAlpha || b != DefaultBeta {
		t.Fatalf("empty-graph thresholds: alpha=%d beta=%d", a, b)
	}
	// Derived thresholds preserve traversal results: the switch points
	// only affect direction choice, never the BFS levels.
	g := rmatGraph(t, 11, 8, 0, 7)
	want := Run(g, []uint32{1}, Options{Workers: 2, Strategy: DirectionOpt, Alpha: DefaultAlpha, Beta: DefaultBeta}, nil, nil)
	got := Run(g, []uint32{1}, Options{Workers: 2, Strategy: DirectionOpt}, nil, nil)
	levelsEqual(t, "derived-thresholds", got.Level, want.Level)
	if got.Reached != want.Reached {
		t.Fatalf("reached %d, want %d", got.Reached, want.Reached)
	}
}
