// Package traversal implements the paper's level-synchronous parallel
// breadth-first search over CSR snapshots, including the degree-aware
// work partitioning used for graphs with unbalanced degree distributions
// and the time-stamp-filtered (temporal) variant used for dynamic
// analysis without auxiliary memory.
//
// The algorithm processes the frontier one level at a time (O(d) parallel
// phases for diameter d, optimal linear work). Within a level, work is
// partitioned by *edges*, not vertices: a prefix sum over frontier
// degrees lets each worker claim an equal slice of arcs, so a single
// high-degree hub cannot serialize a level — the "we process high-degree
// and low-degree vertices differently" optimization.
package traversal

import (
	"sync/atomic"

	"snapdyn/internal/csr"
	"snapdyn/internal/edge"
	"snapdyn/internal/par"
	"snapdyn/internal/psort"
)

// NotVisited marks unreached vertices in level and parent arrays.
const NotVisited = int32(-1)

// Result holds a BFS traversal outcome.
type Result struct {
	// Level[v] is the hop distance from the source, or NotVisited.
	Level []int32
	// Parent[v] is the BFS-tree parent, or the vertex itself for the
	// source, or undefined (check Level) for unreached vertices.
	Parent []uint32
	// Reached counts visited vertices (including the source).
	Reached int
	// Levels counts frontier expansions (the BFS tree height + 1).
	Levels int
}

// EdgeFilter restricts traversal to arcs it accepts. The zero filter
// (AllEdges) accepts everything; TimeWindow restricts by time label.
type EdgeFilter func(t uint32) bool

// AllEdges accepts every arc.
func AllEdges(uint32) bool { return true }

// TimeWindow returns a filter accepting time labels in [lo, hi].
func TimeWindow(lo, hi uint32) EdgeFilter {
	return func(t uint32) bool { return t >= lo && t <= hi }
}

// BFS runs a parallel level-synchronous BFS from src over all arcs.
func BFS(workers int, g *csr.Graph, src edge.ID) *Result {
	return bfs(workers, g, src, nil)
}

// TemporalBFS runs BFS traversing only arcs whose time label the filter
// accepts: the paper's "augmented BFS with a check for time-stamps",
// which recomputes from scratch using no auxiliary memory beyond the
// visited map.
func TemporalBFS(workers int, g *csr.Graph, src edge.ID, filter EdgeFilter) *Result {
	if filter == nil {
		filter = AllEdges
	}
	return bfs(workers, g, src, filter)
}

// MultiBFS runs a parallel BFS from all sources simultaneously (each at
// level 0), producing a spanning forest of the union of their reachable
// sets. Used to build link-cut forests with one traversal regardless of
// the component count.
func MultiBFS(workers int, g *csr.Graph, sources []uint32) *Result {
	return bfsMulti(workers, g, sources, nil)
}

func bfs(workers int, g *csr.Graph, src edge.ID, filter EdgeFilter) *Result {
	return bfsMulti(workers, g, []uint32{uint32(src)}, filter)
}

func bfsMulti(workers int, g *csr.Graph, sources []uint32, filter EdgeFilter) *Result {
	if workers <= 0 {
		workers = par.MaxWorkers()
	}
	n := g.N
	res := &Result{
		Level:  make([]int32, n),
		Parent: make([]uint32, n),
	}
	for i := range res.Level {
		res.Level[i] = NotVisited
	}
	for _, s := range sources {
		res.Level[s] = 0
		res.Parent[s] = s
	}
	res.Reached = len(sources)

	frontier := append([]uint32(nil), sources...)
	offsets := make([]int64, 0, 1024)
	level := int32(0)
	for len(frontier) > 0 {
		level++
		// Degree prefix sum over the frontier for edge-balanced
		// partitioning.
		offsets = offsets[:0]
		for _, u := range frontier {
			offsets = append(offsets, g.Degree(u))
		}
		offsets = append(offsets, 0)
		totalWork := psort.ExclusiveScan(workers, offsets)

		next := make([][]uint32, workers)
		if totalWork > 0 {
			par.ForBlock(workers, int(totalWork), func(lo, hi int) {
				w := searchWorker(workers, int(totalWork), lo)
				local := next[w]
				// Locate the first frontier vertex whose arc range
				// intersects [lo, hi).
				vi := searchOffsets(offsets, int64(lo))
				for pos := int64(lo); pos < int64(hi); {
					for offsets[vi+1] <= pos {
						vi++
					}
					u := frontier[vi]
					base := g.Offsets[u] + (pos - offsets[vi])
					end := g.Offsets[u] + (offsets[vi+1] - offsets[vi])
					stop := g.Offsets[u] + (int64(hi) - offsets[vi])
					if stop < end {
						end = stop
					}
					for p := base; p < end; p++ {
						v := g.Adj[p]
						if filter != nil && !filter(g.TS[p]) {
							continue
						}
						if atomic.LoadInt32(&res.Level[v]) != NotVisited {
							continue
						}
						if atomic.CompareAndSwapInt32(&res.Level[v], NotVisited, level) {
							res.Parent[v] = u
							local = append(local, v)
						}
					}
					pos = end - g.Offsets[u] + offsets[vi]
				}
				next[w] = local
			})
		}
		frontier = frontier[:0]
		for _, l := range next {
			frontier = append(frontier, l...)
			res.Reached += len(l)
		}
	}
	res.Levels = int(level)
	return res
}

// searchOffsets returns the largest index i with offsets[i] <= pos.
func searchOffsets(offsets []int64, pos int64) int {
	lo, hi := 0, len(offsets)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if offsets[mid] <= pos {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// searchWorker mirrors par.ForBlock's static partitioning.
func searchWorker(workers, n, lo int) int {
	q, r := n/workers, n%workers
	big := r * (q + 1)
	if lo < big {
		return lo / (q + 1)
	}
	if q == 0 {
		return workers - 1
	}
	return r + (lo-big)/q
}

// STConnected answers an st-connectivity query by BFS from s, stopping
// early once t is reached. It returns reachability and the hop distance
// (-1 when unreachable).
func STConnected(workers int, g *csr.Graph, s, t edge.ID) (bool, int32) {
	if s == t {
		return true, 0
	}
	res := BFS(workers, g, s)
	if res.Level[t] == NotVisited {
		return false, -1
	}
	return true, res.Level[t]
}

// STConnectedBidirectional answers st-connectivity by expanding
// alternating frontiers from both endpoints (the strategy of the
// authors' MTA-2 st-connectivity study, paper reference [4]): on
// low-diameter graphs each side explores only about half the depth,
// touching far fewer edges than a full one-sided BFS. g must be
// symmetric. Returns reachability and the exact hop distance.
func STConnectedBidirectional(g *csr.Graph, s, t edge.ID) (bool, int32) {
	if s == t {
		return true, 0
	}
	n := g.N
	// side: 0 unvisited, 1 reached from s, 2 reached from t.
	side := make([]uint8, n)
	dist := make([]int32, n)
	side[s], side[t] = 1, 2
	fs := []uint32{uint32(s)}
	ft := []uint32{uint32(t)}
	var ds, dt int32
	best := int32(-1)
	// Keep expanding (smaller frontier first) until no path can beat the
	// best meeting found: any undiscovered s-t path is longer than
	// ds + dt + 1 once both depths are complete.
	for len(fs) > 0 && len(ft) > 0 && (best < 0 || ds+dt+1 < best) {
		expandS := len(fs) <= len(ft)
		var frontier []uint32
		var own, other uint8
		var depth int32
		if expandS {
			ds++
			frontier, own, other, depth = fs, 1, 2, ds
		} else {
			dt++
			frontier, own, other, depth = ft, 2, 1, dt
		}
		var next []uint32
		for _, u := range frontier {
			adj, _ := g.Neighbors(u)
			for _, v := range adj {
				switch side[v] {
				case 0:
					side[v] = own
					dist[v] = depth
					next = append(next, v)
				case other:
					if total := depth + dist[v]; best < 0 || total < best {
						best = total
					}
				}
			}
		}
		if expandS {
			fs = next
		} else {
			ft = next
		}
	}
	if best < 0 {
		return false, -1
	}
	return true, best
}
