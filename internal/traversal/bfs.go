// Package traversal implements the paper's level-synchronous parallel
// breadth-first search over CSR snapshots, including the degree-aware
// work partitioning used for graphs with unbalanced degree distributions
// and the time-stamp-filtered (temporal) variant used for dynamic
// analysis without auxiliary memory.
//
// The algorithm processes the frontier one level at a time (O(d) parallel
// phases for diameter d, optimal linear work). Within a level, work is
// partitioned by *edges*, not vertices: a prefix sum over frontier
// degrees lets each worker claim an equal slice of arcs, so a single
// high-degree hub cannot serialize a level — the "we process high-degree
// and low-degree vertices differently" optimization.
//
// Two frontier-expansion engines are provided (see Options and Run):
// the classic top-down push, and a direction-optimizing engine that
// switches to a bottom-up pull step once the frontier's edge mass
// dominates the unexplored edges — on low-diameter small-world graphs
// the pull step skips the vast majority of edge inspections. Passing a
// reusable Scratch arena and Result makes steady-state traversals
// allocation-free.
//
// The engine is a visitor-hook substrate (see Hooks): per-arc and
// per-level callbacks, an endpoint-aware arc filter, and a
// label-correcting relaxation mode let every BFS-shaped kernel in the
// repository — Brandes (temporal) betweenness and stress, closeness,
// spanning-forest construction for the link-cut index, st-connectivity,
// and temporal reachability — share this one traversal loop instead of
// hand-rolling its own frontier code.
package traversal

import (
	"snapdyn/internal/csr"
	"snapdyn/internal/edge"
	"snapdyn/internal/frontier"
)

// NotVisited marks unreached vertices in level and parent arrays.
const NotVisited = int32(-1)

// Result holds a BFS traversal outcome.
type Result struct {
	// Level[v] is the hop distance from the source, or NotVisited.
	Level []int32
	// Parent[v] is the BFS-tree parent, or the vertex itself for the
	// source, or undefined (check Level) for unreached vertices.
	Parent []uint32
	// Visited shadows Level as a bitmap: bit v is set iff Level[v] is
	// not NotVisited. The bottom-up step uses it to skip whole 64-vertex
	// words of finished vertices with one load; kernels may read it for
	// O(1) membership tests after a run.
	Visited *frontier.Bitmap
	// Reached counts visited vertices (including the source).
	Reached int
	// Levels counts frontier expansions (the BFS tree height + 1).
	Levels int
}

// EdgeFilter restricts traversal to arcs it accepts. A nil filter
// accepts everything; TimeWindow restricts by time label.
type EdgeFilter func(t uint32) bool

// TimeWindow returns a filter accepting time labels in [lo, hi].
func TimeWindow(lo, hi uint32) EdgeFilter {
	return func(t uint32) bool { return t >= lo && t <= hi }
}

// BFS runs a parallel level-synchronous BFS from src over all arcs.
func BFS(workers int, g *csr.Graph, src edge.ID) *Result {
	return Run(g, []uint32{src}, Options{Workers: workers}, nil, nil)
}

// TemporalBFS runs BFS traversing only arcs whose time label the filter
// accepts: the paper's "augmented BFS with a check for time-stamps",
// which recomputes from scratch using no auxiliary memory beyond the
// visited map.
func TemporalBFS(workers int, g *csr.Graph, src edge.ID, filter EdgeFilter) *Result {
	return Run(g, []uint32{src}, Options{Workers: workers, Filter: filter}, nil, nil)
}

// MultiBFS runs a parallel BFS from all sources simultaneously (each at
// level 0), producing a spanning forest of the union of their reachable
// sets. Used to build link-cut forests with one traversal regardless of
// the component count.
func MultiBFS(workers int, g *csr.Graph, sources []uint32) *Result {
	return Run(g, sources, Options{Workers: workers}, nil, nil)
}

// STConnected answers an st-connectivity query by BFS from s, stopping
// early once t is reached: the engine's level-end hook cuts the
// traversal at the first level that settles t, so the remaining levels'
// edges are never inspected. It returns reachability and the hop
// distance (-1 when unreachable).
func STConnected(workers int, g *csr.Graph, s, t edge.ID) (bool, int32) {
	if s == t {
		return true, 0
	}
	res := &Result{}
	Run(g, []uint32{s}, Options{
		Workers: workers,
		Hooks: Hooks{OnLevelEnd: func(int32, int) bool {
			return res.Level[t] == NotVisited
		}},
	}, nil, res)
	if res.Level[t] == NotVisited {
		return false, -1
	}
	return true, res.Level[t]
}

// STConnectedBidirectional answers st-connectivity by expanding
// alternating frontiers from both endpoints (the strategy of the
// authors' MTA-2 st-connectivity study, paper reference [4]): on
// low-diameter graphs each side explores only about half the depth,
// touching far fewer edges than a full one-sided BFS. g must be
// symmetric. Returns reachability and the exact hop distance.
func STConnectedBidirectional(g *csr.Graph, s, t edge.ID) (bool, int32) {
	if s == t {
		return true, 0
	}
	n := g.N
	// side: 0 unvisited, 1 reached from s, 2 reached from t.
	side := make([]uint8, n)
	dist := make([]int32, n)
	side[s], side[t] = 1, 2
	fs := []uint32{uint32(s)}
	ft := []uint32{uint32(t)}
	var ds, dt int32
	best := int32(-1)
	// Keep expanding (smaller frontier first) until no path can beat the
	// best meeting found: any undiscovered s-t path is longer than
	// ds + dt + 1 once both depths are complete.
	for len(fs) > 0 && len(ft) > 0 && (best < 0 || ds+dt+1 < best) {
		expandS := len(fs) <= len(ft)
		var frontier []uint32
		var own, other uint8
		var depth int32
		if expandS {
			ds++
			frontier, own, other, depth = fs, 1, 2, ds
		} else {
			dt++
			frontier, own, other, depth = ft, 2, 1, dt
		}
		var next []uint32
		for _, u := range frontier {
			adj, _ := g.Neighbors(u)
			for _, v := range adj {
				switch side[v] {
				case 0:
					side[v] = own
					dist[v] = depth
					next = append(next, v)
				case other:
					if total := depth + dist[v]; best < 0 || total < best {
						best = total
					}
				}
			}
		}
		if expandS {
			fs = next
		} else {
			ft = next
		}
	}
	if best < 0 {
		return false, -1
	}
	return true, best
}
