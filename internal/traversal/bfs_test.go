package traversal

import (
	"testing"

	"snapdyn/internal/csr"
	"snapdyn/internal/edge"
	"snapdyn/internal/rmat"
)

func lineGraph(n int) *csr.Graph {
	var edges []edge.Edge
	for i := uint32(0); i < uint32(n-1); i++ {
		edges = append(edges, edge.Edge{U: i, V: i + 1, T: i + 1})
	}
	return csr.FromEdges(2, n, edges, true)
}

func TestBFSLine(t *testing.T) {
	g := lineGraph(100)
	res := BFS(4, g, 0)
	if res.Reached != 100 {
		t.Fatalf("reached %d, want 100", res.Reached)
	}
	for v := 0; v < 100; v++ {
		if res.Level[v] != int32(v) {
			t.Fatalf("level[%d] = %d, want %d", v, res.Level[v], v)
		}
	}
	if res.Levels != 100 {
		t.Fatalf("levels = %d, want 100", res.Levels)
	}
	for v := 1; v < 100; v++ {
		if res.Parent[v] != uint32(v-1) {
			t.Fatalf("parent[%d] = %d", v, res.Parent[v])
		}
	}
}

func TestBFSDisconnected(t *testing.T) {
	edges := []edge.Edge{{U: 0, V: 1}, {U: 2, V: 3}}
	g := csr.FromEdges(1, 4, edges, true)
	res := BFS(2, g, 0)
	if res.Reached != 2 {
		t.Fatalf("reached %d, want 2", res.Reached)
	}
	if res.Level[2] != NotVisited || res.Level[3] != NotVisited {
		t.Fatal("unreachable vertices marked visited")
	}
}

func TestBFSStar(t *testing.T) {
	// High-degree hub exercises edge-balanced partitioning.
	const n = 5000
	var edges []edge.Edge
	for v := uint32(1); v < n; v++ {
		edges = append(edges, edge.Edge{U: 0, V: v})
	}
	g := csr.FromEdges(4, n, edges, true)
	res := BFS(8, g, 0)
	if res.Reached != n {
		t.Fatalf("reached %d, want %d", res.Reached, n)
	}
	for v := 1; v < n; v++ {
		if res.Level[v] != 1 || res.Parent[v] != 0 {
			t.Fatalf("leaf %d: level %d parent %d", v, res.Level[v], res.Parent[v])
		}
	}
	// From a leaf: hub at 1, other leaves at 2.
	res = BFS(8, g, 17)
	if res.Level[0] != 1 || res.Level[18] != 2 {
		t.Fatalf("leaf-rooted levels wrong: %d %d", res.Level[0], res.Level[18])
	}
}

func bfsReference(g *csr.Graph, src edge.ID) []int32 {
	level := make([]int32, g.N)
	for i := range level {
		level[i] = NotVisited
	}
	level[src] = 0
	queue := []uint32{uint32(src)}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		adj, _ := g.Neighbors(u)
		for _, v := range adj {
			if level[v] == NotVisited {
				level[v] = level[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return level
}

func TestBFSMatchesReferenceRMAT(t *testing.T) {
	p := rmat.PaperParams(11, 8*(1<<11), 0, 13)
	edgesL, _ := rmat.Generate(0, p)
	g := csr.FromEdges(4, p.NumVertices(), edgesL, true)
	for _, src := range []edge.ID{0, 1, 100, 2000} {
		want := bfsReference(g, src)
		for _, workers := range []int{1, 4, 8} {
			got := BFS(workers, g, src)
			for v := range want {
				if got.Level[v] != want[v] {
					t.Fatalf("workers=%d src=%d: level[%d] = %d, want %d",
						workers, src, v, got.Level[v], want[v])
				}
			}
		}
	}
}

func TestBFSParentsFormTree(t *testing.T) {
	p := rmat.PaperParams(10, 5*(1<<10), 0, 21)
	edgesL, _ := rmat.Generate(0, p)
	g := csr.FromEdges(4, p.NumVertices(), edgesL, true)
	res := BFS(4, g, 0)
	for v := range res.Level {
		if res.Level[v] == NotVisited || v == 0 {
			continue
		}
		pv := res.Parent[v]
		if res.Level[pv] != res.Level[v]-1 {
			t.Fatalf("parent level invariant broken at %d", v)
		}
	}
}

func TestTemporalBFSWindow(t *testing.T) {
	// Path 0-1-2-3 with rising labels; a window cutting the middle edge
	// splits reachability.
	edges := []edge.Edge{
		{U: 0, V: 1, T: 10}, {U: 1, V: 2, T: 50}, {U: 2, V: 3, T: 90},
	}
	g := csr.FromEdges(1, 4, edges, true)
	res := TemporalBFS(2, g, 0, TimeWindow(0, 40))
	if res.Level[1] != 1 || res.Level[2] != NotVisited || res.Level[3] != NotVisited {
		t.Fatalf("windowed BFS wrong: %v", res.Level)
	}
	res = TemporalBFS(2, g, 0, TimeWindow(0, 100))
	if res.Reached != 4 {
		t.Fatalf("full-window BFS reached %d", res.Reached)
	}
	res = TemporalBFS(2, g, 0, nil)
	if res.Reached != 4 {
		t.Fatal("nil filter should accept all")
	}
}

func TestSTConnected(t *testing.T) {
	g := lineGraph(10)
	ok, d := STConnected(2, g, 0, 9)
	if !ok || d != 9 {
		t.Fatalf("st = (%v,%d), want (true,9)", ok, d)
	}
	ok, d = STConnected(2, g, 3, 3)
	if !ok || d != 0 {
		t.Fatalf("self st = (%v,%d)", ok, d)
	}
	edges := []edge.Edge{{U: 0, V: 1}}
	g2 := csr.FromEdges(1, 3, edges, true)
	ok, d = STConnected(2, g2, 0, 2)
	if ok || d != -1 {
		t.Fatalf("disconnected st = (%v,%d)", ok, d)
	}
}

func TestBFSEmptySource(t *testing.T) {
	g := csr.FromEdges(1, 3, nil, false)
	res := BFS(2, g, 1)
	// Levels counts frontier expansions: the lone source level is 1.
	if res.Reached != 1 || res.Level[1] != 0 || res.Levels != 1 {
		t.Fatalf("isolated source BFS wrong: %+v", res)
	}
}
