// Package subgraph implements the paper's induced subgraph kernel:
// extracting the graph induced by edges (or vertices) satisfying a
// temporal condition, e.g. "edges created in time interval (20, 70)".
//
// Following the paper, the kernel makes one parallel pass over the edge
// set to mark affected edges and keep a running count, then either builds
// a new graph from the marked edges or (when few edges are affected)
// deletes the complement from a dynamic store — "each edge in the graph
// is visited at most twice in the worst case."
package subgraph

import (
	"sync/atomic"

	"snapdyn/internal/csr"
	"snapdyn/internal/edge"
	"snapdyn/internal/par"
	"snapdyn/internal/psort"
)

// EdgePredicate selects edges for the induced subgraph.
type EdgePredicate func(u, v edge.ID, t uint32) bool

// TimeInterval returns a predicate accepting edges with time label
// strictly inside (lo, hi), matching the paper's open-interval example.
func TimeInterval(lo, hi uint32) EdgePredicate {
	return func(_, _ edge.ID, t uint32) bool { return t > lo && t < hi }
}

// CountMatching performs the marking pass alone: one parallel sweep over
// the arcs, returning the number accepted. Exposed because the paper
// times marking and extraction as separate steps.
func CountMatching(workers int, g *csr.Graph, pred EdgePredicate) int64 {
	var count atomic.Int64
	par.ForDynamic(workers, g.N, 256, func(lo, hi int) {
		var local int64
		for u := lo; u < hi; u++ {
			adj, ts := g.Neighbors(edge.ID(u))
			for i := range adj {
				if pred(edge.ID(u), adj[i], ts[i]) {
					local++
				}
			}
		}
		count.Add(local)
	})
	return count.Load()
}

// InducedByEdges extracts the subgraph of arcs accepted by pred. The
// vertex set is unchanged (ids are stable); only arcs are filtered.
// Pass 1 marks and counts per-vertex surviving degrees; pass 2 scatters
// surviving arcs into a fresh CSR.
func InducedByEdges(workers int, g *csr.Graph, pred EdgePredicate) *csr.Graph {
	n := g.N
	counts := make([]int64, n+1)
	par.ForDynamic(workers, n, 256, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			adj, ts := g.Neighbors(edge.ID(u))
			var d int64
			for i := range adj {
				if pred(edge.ID(u), adj[i], ts[i]) {
					d++
				}
			}
			counts[u] = d
		}
	})
	total := psort.ExclusiveScan(workers, counts)
	out := &csr.Graph{
		N:       n,
		Offsets: counts,
		Adj:     make([]uint32, total),
		TS:      make([]uint32, total),
	}
	par.ForDynamic(workers, n, 256, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			adj, ts := g.Neighbors(edge.ID(u))
			p := out.Offsets[u]
			for i := range adj {
				if pred(edge.ID(u), adj[i], ts[i]) {
					out.Adj[p] = adj[i]
					out.TS[p] = ts[i]
					p++
				}
			}
		}
	})
	return out
}

// InducedByVertices extracts the subgraph induced by the vertex set
// keep: arcs survive iff both endpoints are kept. Vertex ids are stable.
func InducedByVertices(workers int, g *csr.Graph, keep []bool) *csr.Graph {
	return InducedByEdges(workers, g, func(u, v edge.ID, _ uint32) bool {
		return keep[u] && keep[v]
	})
}

// VerticesInWindow returns the keep-set of vertices incident to at least
// one arc with time label in [lo, hi] — the "entities active in a time
// interval" selector used to analyze network snapshots.
func VerticesInWindow(workers int, g *csr.Graph, lo, hi uint32) []bool {
	keep := make([]bool, g.N)
	marks := make([]atomic.Bool, g.N)
	par.ForDynamic(workers, g.N, 256, func(blo, bhi int) {
		for u := blo; u < bhi; u++ {
			adj, ts := g.Neighbors(edge.ID(u))
			for i := range adj {
				if ts[i] >= lo && ts[i] <= hi {
					marks[u].Store(true)
					marks[adj[i]].Store(true)
				}
			}
		}
	})
	for i := range marks {
		keep[i] = marks[i].Load()
	}
	return keep
}

// DeleteComplement is the paper's alternative extraction path for a
// dynamic store: when most edges survive, it is cheaper to delete the
// non-matching edges from the current dynamic graph than to rebuild.
// It deletes every arc of g that pred rejects from store (which must
// currently contain g's arcs) and returns the number deleted.
func DeleteComplement(workers int, g *csr.Graph, store interface {
	Delete(u, v edge.ID) bool
}, pred EdgePredicate) int64 {
	var deleted atomic.Int64
	par.ForDynamic(workers, g.N, 256, func(lo, hi int) {
		var local int64
		for u := lo; u < hi; u++ {
			adj, ts := g.Neighbors(edge.ID(u))
			for i := range adj {
				if !pred(edge.ID(u), adj[i], ts[i]) && store.Delete(edge.ID(u), adj[i]) {
					local++
				}
			}
		}
		deleted.Add(local)
	})
	return deleted.Load()
}
