package subgraph

import (
	"testing"

	"snapdyn/internal/csr"
	"snapdyn/internal/dyngraph"
	"snapdyn/internal/edge"
	"snapdyn/internal/rmat"
)

func testGraph() *csr.Graph {
	edges := []edge.Edge{
		{U: 0, V: 1, T: 10}, {U: 0, V: 2, T: 30}, {U: 1, V: 2, T: 50},
		{U: 2, V: 3, T: 70}, {U: 3, V: 0, T: 90},
	}
	return csr.FromEdges(2, 4, edges, false)
}

func TestTimeIntervalPredicate(t *testing.T) {
	pred := TimeInterval(20, 70)
	if pred(0, 0, 20) || pred(0, 0, 70) {
		t.Fatal("interval must be open")
	}
	if !pred(0, 0, 21) || !pred(0, 0, 69) {
		t.Fatal("interior rejected")
	}
}

func TestCountMatching(t *testing.T) {
	g := testGraph()
	if got := CountMatching(4, g, TimeInterval(20, 70)); got != 2 {
		t.Fatalf("count = %d, want 2 (labels 30, 50)", got)
	}
	if got := CountMatching(4, g, func(_, _ edge.ID, _ uint32) bool { return true }); got != 5 {
		t.Fatalf("count all = %d", got)
	}
}

func TestInducedByEdges(t *testing.T) {
	g := testGraph()
	sub := InducedByEdges(4, g, TimeInterval(20, 70))
	if sub.N != g.N {
		t.Fatal("vertex set must be stable")
	}
	if sub.NumEdges() != 2 {
		t.Fatalf("induced arcs = %d, want 2", sub.NumEdges())
	}
	adj, ts := sub.Neighbors(0)
	if len(adj) != 1 || adj[0] != 2 || ts[0] != 30 {
		t.Fatalf("neighbors of 0 = %v @%v", adj, ts)
	}
	adj, _ = sub.Neighbors(1)
	if len(adj) != 1 || adj[0] != 2 {
		t.Fatalf("neighbors of 1 = %v", adj)
	}
	if sub.Degree(2) != 0 || sub.Degree(3) != 0 {
		t.Fatal("filtered arcs survived")
	}
}

func TestInducedByVertices(t *testing.T) {
	g := testGraph()
	keep := []bool{true, true, true, false}
	sub := InducedByVertices(4, g, keep)
	// Arcs among {0,1,2}: 0->1, 0->2, 1->2.
	if sub.NumEdges() != 3 {
		t.Fatalf("induced arcs = %d, want 3", sub.NumEdges())
	}
	if sub.Degree(2) != 0 {
		t.Fatal("2->3 survived vertex filter")
	}
}

func TestVerticesInWindow(t *testing.T) {
	g := testGraph()
	keep := VerticesInWindow(2, g, 60, 80) // only edge 2->3 @70
	want := []bool{false, false, true, true}
	for i := range want {
		if keep[i] != want[i] {
			t.Fatalf("keep[%d] = %v, want %v", i, keep[i], want[i])
		}
	}
}

func TestDeleteComplement(t *testing.T) {
	g := testGraph()
	s := dyngraph.NewDynArr(4, 8)
	for u := 0; u < g.N; u++ {
		adj, ts := g.Neighbors(edge.ID(u))
		for i := range adj {
			s.Insert(edge.ID(u), adj[i], ts[i])
		}
	}
	deleted := DeleteComplement(4, g, s, TimeInterval(20, 70))
	if deleted != 3 {
		t.Fatalf("deleted = %d, want 3", deleted)
	}
	if s.NumEdges() != 2 {
		t.Fatalf("remaining = %d, want 2", s.NumEdges())
	}
	if !s.Has(0, 2) || !s.Has(1, 2) || s.Has(0, 1) {
		t.Fatal("wrong survivors")
	}
}

func TestExtractionPathsAgree(t *testing.T) {
	// Building a new graph and deleting the complement must agree on the
	// surviving edge multiset.
	p := rmat.PaperParams(10, 8*(1<<10), 100, 17)
	edgesL, _ := rmat.Generate(0, p)
	n := p.NumVertices()
	g := csr.FromEdges(4, n, edgesL, false)
	pred := TimeInterval(20, 70)

	sub := InducedByEdges(4, g, pred)

	s := dyngraph.NewHybrid(n, len(edgesL), 0, 7)
	dyngraph.InsertAll(s, 4, edgesL)
	DeleteComplement(4, g, s, pred)

	if int64(s.NumEdges()) != sub.NumEdges() {
		t.Fatalf("paths disagree: rebuild %d vs delete %d", sub.NumEdges(), s.NumEdges())
	}
	for u := 0; u < n; u++ {
		if int(sub.Degree(edge.ID(u))) != s.Degree(edge.ID(u)) {
			t.Fatalf("vertex %d: rebuild degree %d vs delete degree %d",
				u, sub.Degree(edge.ID(u)), s.Degree(edge.ID(u)))
		}
	}
	// Count must match the standalone marking pass.
	if c := CountMatching(4, g, pred); c != sub.NumEdges() {
		t.Fatalf("count %d != induced %d", c, sub.NumEdges())
	}
}

func TestInducedDeterministicAcrossWorkers(t *testing.T) {
	p := rmat.PaperParams(9, 4*(1<<9), 50, 23)
	edgesL, _ := rmat.Generate(0, p)
	g := csr.FromEdges(4, p.NumVertices(), edgesL, false)
	a := InducedByEdges(1, g, TimeInterval(10, 40))
	b := InducedByEdges(8, g, TimeInterval(10, 40))
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("edge counts differ across workers")
	}
	for u := 0; u < g.N; u++ {
		if a.Degree(edge.ID(u)) != b.Degree(edge.ID(u)) {
			t.Fatalf("degree(%d) differs across workers", u)
		}
	}
}
