// Package reorder implements the vertex relabeling strategies the paper
// lists as future work ("vertex and edge identifier reordering strategies
// to improve cache performance"): degree ordering (hubs get small ids, so
// hot adjacency data clusters at the front of the arrays), BFS ordering
// (traversal locality), and reverse Cuthill-McKee (bandwidth reduction),
// plus the machinery to apply a permutation to a CSR snapshot and to
// compose one with the incremental delta-refresh path.
package reorder

import (
	"sort"

	"snapdyn/internal/csr"
	"snapdyn/internal/edge"
	"snapdyn/internal/par"
	"snapdyn/internal/psort"
	"snapdyn/internal/traversal"
)

// storeView is the minimal dynamic-graph surface the permuted refresh
// needs; it matches dyngraph.Store without importing it.
type storeView interface {
	NumVertices() int
	Degree(u edge.ID) int
	Neighbors(u edge.ID, fn func(v edge.ID, t uint32) bool)
}

// Permutation maps old vertex ids to new ones: newID = perm[oldID]. A
// valid permutation is a bijection on [0, n).
type Permutation []uint32

// Valid reports whether p is a bijection.
func (p Permutation) Valid() bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if int(v) >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// Inverse returns q with q[p[i]] = i.
func (p Permutation) Inverse() Permutation {
	q := make(Permutation, len(p))
	for i, v := range p {
		q[v] = uint32(i)
	}
	return q
}

// ByDegree returns the permutation placing vertices in decreasing degree
// order (ties broken by old id for determinism): hubs first.
func ByDegree(g *csr.Graph) Permutation {
	order := make([]uint32, g.N)
	for i := range order {
		order[i] = uint32(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		da, db := g.Degree(order[a]), g.Degree(order[b])
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})
	perm := make(Permutation, g.N)
	for newID, oldID := range order {
		perm[oldID] = uint32(newID)
	}
	return perm
}

// ByBFS returns the permutation numbering vertices in multi-source BFS
// visit order from the given roots (unreached vertices keep relative
// order after all reached ones). BFS ordering clusters neighborhoods,
// improving traversal locality.
func ByBFS(workers int, g *csr.Graph, roots []uint32) Permutation {
	res := traversal.MultiBFS(workers, g, roots)
	// Sort vertices by (level, old id); unreached (level -1) go last.
	order := make([]uint32, g.N)
	for i := range order {
		order[i] = uint32(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		la, lb := res.Level[order[a]], res.Level[order[b]]
		ua := la == traversal.NotVisited
		ub := lb == traversal.NotVisited
		if ua != ub {
			return ub // reached before unreached
		}
		if la != lb {
			return la < lb
		}
		return order[a] < order[b]
	})
	perm := make(Permutation, g.N)
	for newID, oldID := range order {
		perm[oldID] = uint32(newID)
	}
	return perm
}

// ByRCM returns the reverse Cuthill-McKee permutation: each component is
// rooted at its minimum-degree vertex, vertices are visited in BFS order
// with neighbors expanded in ascending (degree, id) order, and the final
// numbering is the reverse of the visit order. RCM minimizes adjacency
// bandwidth — neighbors land near each other in the relabeled arrays —
// which is the locality the paper's cache-oriented future work is after.
// The ordering pass is inherently sequential (each dequeue depends on
// every earlier one) and deterministic.
func ByRCM(g *csr.Graph) Permutation {
	n := g.N
	// Seeds in ascending (degree, id): the first unvisited seed of each
	// component is that component's minimum-degree vertex.
	seeds := make([]uint32, n)
	for i := range seeds {
		seeds[i] = uint32(i)
	}
	sort.SliceStable(seeds, func(a, b int) bool {
		da, db := g.Degree(seeds[a]), g.Degree(seeds[b])
		if da != db {
			return da < db
		}
		return seeds[a] < seeds[b]
	})
	visited := make([]bool, n)
	order := make([]uint32, 0, n)
	var nbr []uint32
	for _, r := range seeds {
		if visited[r] {
			continue
		}
		visited[r] = true
		start := len(order)
		order = append(order, r)
		for head := start; head < len(order); head++ {
			adj, _ := g.Neighbors(order[head])
			nbr = nbr[:0]
			for _, v := range adj {
				if !visited[v] {
					visited[v] = true
					nbr = append(nbr, v)
				}
			}
			sort.SliceStable(nbr, func(a, b int) bool {
				da, db := g.Degree(nbr[a]), g.Degree(nbr[b])
				if da != db {
					return da < db
				}
				return nbr[a] < nbr[b]
			})
			order = append(order, nbr...)
		}
	}
	for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	perm := make(Permutation, n)
	for newID, oldID := range order {
		perm[oldID] = uint32(newID)
	}
	return perm
}

// Apply relabels a CSR snapshot under the permutation in parallel,
// returning a graph where vertex perm[u] has u's (relabeled) adjacency.
func Apply(workers int, g *csr.Graph, perm Permutation) *csr.Graph {
	return ApplyInto(workers, g, perm, nil, nil)
}

// ApplyInto is Apply reusing caller-owned buffers: out's slices are grown
// only when too small, and inv (perm's precomputed inverse) skips the
// per-call inverse build. Either may be nil, in which case it is
// allocated. With workers == 1 and warm buffers the call allocates
// nothing — the refresh path leans on this. Returns out.
func ApplyInto(workers int, g *csr.Graph, perm, inv Permutation, out *csr.Graph) *csr.Graph {
	n := g.N
	if inv == nil {
		inv = perm.Inverse()
	}
	if out == nil {
		out = &csr.Graph{}
	}
	total := g.NumEdges()
	out.N = n
	if cap(out.Offsets) < n+1 {
		out.Offsets = make([]int64, n+1)
	}
	out.Offsets = out.Offsets[:n+1]
	if int64(cap(out.Adj)) < total {
		out.Adj = make([]uint32, total)
		out.TS = make([]uint32, total)
	}
	out.Adj = out.Adj[:total]
	out.TS = out.TS[:total]
	off := out.Offsets
	if workers == 1 {
		// Closure-free serial path: the loop bodies below are what keeps
		// a warm single-worker ApplyInto at 0 allocs/op.
		for nu := 0; nu < n; nu++ {
			off[nu] = g.Degree(inv[nu])
		}
		off[n] = 0
		var sum int64
		for i := 0; i <= n; i++ {
			c := off[i]
			off[i] = sum
			sum += c
		}
		for nu := 0; nu < n; nu++ {
			adj, ts := g.Neighbors(inv[nu])
			p := off[nu]
			for i := range adj {
				out.Adj[p] = perm[adj[i]]
				out.TS[p] = ts[i]
				p++
			}
		}
		return out
	}
	par.ForDynamic(workers, n, 256, func(lo, hi int) {
		for nu := lo; nu < hi; nu++ {
			off[nu] = g.Degree(inv[nu])
		}
	})
	off[n] = 0
	psort.ExclusiveScan(workers, off)
	par.ForDynamic(workers, n, 256, func(lo, hi int) {
		for nu := lo; nu < hi; nu++ {
			adj, ts := g.Neighbors(inv[nu])
			p := off[nu]
			for i := range adj {
				out.Adj[p] = perm[adj[i]]
				out.TS[p] = ts[i]
				p++
			}
		}
	})
	return out
}

// FromStorePermuted snapshots a dynamic graph store directly into
// permuted CSR form: vertex perm[u] holds u's arcs (heads relabeled
// through perm) in store enumeration order, byte-identical to
// Apply(csr.FromStore(s), perm) without materializing the unpermuted
// intermediate.
func FromStorePermuted(workers int, s storeView, perm, inv Permutation) *csr.Graph {
	n := s.NumVertices()
	counts := make([]int64, n+1)
	par.ForDynamic(workers, n, 256, func(lo, hi int) {
		for nu := lo; nu < hi; nu++ {
			counts[nu] = int64(s.Degree(edge.ID(inv[nu])))
		}
	})
	total := psort.ExclusiveScan(workers, counts)
	out := &csr.Graph{
		N:       n,
		Offsets: counts,
		Adj:     make([]uint32, total),
		TS:      make([]uint32, total),
	}
	par.ForDynamic(workers, n, 256, func(lo, hi int) {
		for nu := lo; nu < hi; nu++ {
			p := out.Offsets[nu]
			s.Neighbors(edge.ID(inv[nu]), func(v edge.ID, t uint32) bool {
				out.Adj[p] = perm[v]
				out.TS[p] = t
				p++
				return true
			})
		}
	})
	return out
}

// RefreshPermuted composes the incremental delta refresh with a held
// permutation: base is the previous *permuted* snapshot, dirty lists
// store-space (original) vertex ids, and the output is byte-identical to
// FromStorePermuted over the current store. Clean vertices' arc spans
// are bulk-copied from base; dirty vertices re-enumerate the store with
// heads mapped through perm. Falls back to a full permuted rebuild when
// there is no usable base, the vertex count no longer matches the
// permutation (the permutation is stale — the caller should recompute
// it), or the dirty fraction exceeds csr.RefreshMaxDirtyFrac.
func RefreshPermuted(workers int, base *csr.Graph, s storeView, dirty []uint32, perm, inv Permutation) *csr.Graph {
	n := s.NumVertices()
	if n != len(perm) || base == nil || base.N != n || n == 0 ||
		float64(len(dirty)) > csr.RefreshMaxDirtyFrac*float64(n) {
		if n != len(perm) {
			return nil // stale permutation: the caller must recompute
		}
		return FromStorePermuted(workers, s, perm, inv)
	}
	if len(dirty) == 0 {
		return base
	}
	// Mark dirty in layout space and take exact degrees from the store.
	pdirty := make([]bool, n)
	counts := make([]int64, n+1)
	par.ForDynamic(workers, n, 512, func(lo, hi int) {
		for nu := lo; nu < hi; nu++ {
			counts[nu] = base.Offsets[nu+1] - base.Offsets[nu]
		}
	})
	for _, d := range dirty {
		if int(d) >= n {
			continue
		}
		nu := perm[d]
		pdirty[nu] = true
		counts[nu] = int64(s.Degree(edge.ID(d)))
	}
	total := psort.ExclusiveScan(workers, counts)
	out := &csr.Graph{
		N:       n,
		Offsets: counts,
		Adj:     make([]uint32, total),
		TS:      make([]uint32, total),
	}
	par.ForDynamic(workers, n, 512, func(lo, hi int) {
		for nu := lo; nu < hi; {
			if pdirty[nu] {
				p := out.Offsets[nu]
				s.Neighbors(edge.ID(inv[nu]), func(v edge.ID, t uint32) bool {
					out.Adj[p] = perm[v]
					out.TS[p] = t
					p++
					return true
				})
				nu++
				continue
			}
			run := nu + 1
			for run < hi && !pdirty[run] {
				run++
			}
			copy(out.Adj[out.Offsets[nu]:out.Offsets[run]],
				base.Adj[base.Offsets[nu]:base.Offsets[run]])
			copy(out.TS[out.Offsets[nu]:out.Offsets[run]],
				base.TS[base.Offsets[nu]:base.Offsets[run]])
			nu = run
		}
	})
	return out
}

// Identity returns the identity permutation over n vertices.
func Identity(n int) Permutation {
	p := make(Permutation, n)
	for i := range p {
		p[i] = uint32(i)
	}
	return p
}
