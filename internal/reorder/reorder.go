// Package reorder implements the vertex relabeling strategies the paper
// lists as future work ("vertex and edge identifier reordering strategies
// to improve cache performance"): degree ordering (hubs get small ids, so
// hot adjacency data clusters at the front of the arrays) and BFS
// ordering (traversal locality), plus the machinery to apply a
// permutation to a CSR snapshot.
package reorder

import (
	"sort"

	"snapdyn/internal/csr"
	"snapdyn/internal/par"
	"snapdyn/internal/psort"
	"snapdyn/internal/traversal"
)

// Permutation maps old vertex ids to new ones: newID = perm[oldID]. A
// valid permutation is a bijection on [0, n).
type Permutation []uint32

// Valid reports whether p is a bijection.
func (p Permutation) Valid() bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if int(v) >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// Inverse returns q with q[p[i]] = i.
func (p Permutation) Inverse() Permutation {
	q := make(Permutation, len(p))
	for i, v := range p {
		q[v] = uint32(i)
	}
	return q
}

// ByDegree returns the permutation placing vertices in decreasing degree
// order (ties broken by old id for determinism): hubs first.
func ByDegree(g *csr.Graph) Permutation {
	order := make([]uint32, g.N)
	for i := range order {
		order[i] = uint32(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		da, db := g.Degree(order[a]), g.Degree(order[b])
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})
	perm := make(Permutation, g.N)
	for newID, oldID := range order {
		perm[oldID] = uint32(newID)
	}
	return perm
}

// ByBFS returns the permutation numbering vertices in multi-source BFS
// visit order from the given roots (unreached vertices keep relative
// order after all reached ones). BFS ordering clusters neighborhoods,
// improving traversal locality.
func ByBFS(workers int, g *csr.Graph, roots []uint32) Permutation {
	res := traversal.MultiBFS(workers, g, roots)
	// Sort vertices by (level, old id); unreached (level -1) go last.
	order := make([]uint32, g.N)
	for i := range order {
		order[i] = uint32(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		la, lb := res.Level[order[a]], res.Level[order[b]]
		ua := la == traversal.NotVisited
		ub := lb == traversal.NotVisited
		if ua != ub {
			return ub // reached before unreached
		}
		if la != lb {
			return la < lb
		}
		return order[a] < order[b]
	})
	perm := make(Permutation, g.N)
	for newID, oldID := range order {
		perm[oldID] = uint32(newID)
	}
	return perm
}

// Apply relabels a CSR snapshot under the permutation in parallel,
// returning a graph where vertex perm[u] has u's (relabeled) adjacency.
func Apply(workers int, g *csr.Graph, perm Permutation) *csr.Graph {
	n := g.N
	inv := perm.Inverse()
	counts := make([]int64, n+1)
	par.ForDynamic(workers, n, 256, func(lo, hi int) {
		for nu := lo; nu < hi; nu++ {
			counts[nu] = g.Degree(inv[nu])
		}
	})
	total := psort.ExclusiveScan(workers, counts)
	out := &csr.Graph{
		N:       n,
		Offsets: counts,
		Adj:     make([]uint32, total),
		TS:      make([]uint32, total),
	}
	par.ForDynamic(workers, n, 256, func(lo, hi int) {
		for nu := lo; nu < hi; nu++ {
			adj, ts := g.Neighbors(inv[nu])
			p := out.Offsets[nu]
			for i := range adj {
				out.Adj[p] = perm[adj[i]]
				out.TS[p] = ts[i]
				p++
			}
		}
	})
	return out
}

// Identity returns the identity permutation over n vertices.
func Identity(n int) Permutation {
	p := make(Permutation, n)
	for i := range p {
		p[i] = uint32(i)
	}
	return p
}
