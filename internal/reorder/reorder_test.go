package reorder

import (
	"sort"
	"testing"
	"testing/quick"

	"snapdyn/internal/csr"
	"snapdyn/internal/edge"
	"snapdyn/internal/rmat"
	"snapdyn/internal/traversal"
	"snapdyn/internal/xrand"
)

func sampleCSR(t testing.TB, scale int, seed uint64) *csr.Graph {
	t.Helper()
	p := rmat.PaperParams(scale, 8<<scale, 50, seed)
	edges, err := rmat.Generate(0, p)
	if err != nil {
		t.Fatal(err)
	}
	return csr.FromEdges(0, p.NumVertices(), edges, true)
}

func TestIdentity(t *testing.T) {
	p := Identity(5)
	if !p.Valid() {
		t.Fatal("identity invalid")
	}
	inv := p.Inverse()
	for i := range p {
		if p[i] != uint32(i) || inv[i] != uint32(i) {
			t.Fatal("identity wrong")
		}
	}
}

func TestValidRejects(t *testing.T) {
	if (Permutation{0, 0}).Valid() {
		t.Fatal("duplicate accepted")
	}
	if (Permutation{0, 5}).Valid() {
		t.Fatal("out of range accepted")
	}
	if !(Permutation{1, 0, 2}).Valid() {
		t.Fatal("valid rejected")
	}
}

func TestInverseProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		n := 2 + int(r.Uint32n(50))
		idx := make([]int, n)
		r.Perm(idx)
		p := make(Permutation, n)
		for i, v := range idx {
			p[i] = uint32(v)
		}
		inv := p.Inverse()
		for i := range p {
			if inv[p[i]] != uint32(i) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestByDegreeHubsFirst(t *testing.T) {
	g := sampleCSR(t, 9, 3)
	perm := ByDegree(g)
	if !perm.Valid() {
		t.Fatal("invalid permutation")
	}
	rg := Apply(0, g, perm)
	// New ids must be in non-increasing degree order.
	for u := 1; u < rg.N; u++ {
		if rg.Degree(edge.ID(u)) > rg.Degree(edge.ID(u-1)) {
			t.Fatalf("degree order violated at %d", u)
		}
	}
}

func TestByBFSValid(t *testing.T) {
	g := sampleCSR(t, 9, 5)
	perm := ByBFS(0, g, []uint32{0})
	if !perm.Valid() {
		t.Fatal("invalid permutation")
	}
	// The root must get id 0.
	if perm[0] != 0 {
		t.Fatalf("root relabeled to %d", perm[0])
	}
	// A neighbor of the root must get a smaller id than any level-2
	// vertex.
	res := traversal.BFS(0, g, 0)
	var l1max, l2min uint32 = 0, ^uint32(0)
	for v := range res.Level {
		switch res.Level[v] {
		case 1:
			if perm[v] > l1max {
				l1max = perm[v]
			}
		case 2:
			if perm[v] < l2min {
				l2min = perm[v]
			}
		}
	}
	if l1max > 0 && l2min != ^uint32(0) && l1max >= l2min {
		t.Fatalf("BFS order violated: max level-1 id %d >= min level-2 id %d", l1max, l2min)
	}
}

func TestApplyPreservesStructure(t *testing.T) {
	g := sampleCSR(t, 9, 7)
	perm := ByDegree(g)
	rg := Apply(0, g, perm)
	if rg.NumEdges() != g.NumEdges() {
		t.Fatalf("arc count changed: %d != %d", rg.NumEdges(), g.NumEdges())
	}
	// Each old vertex's adjacency must map exactly onto the new one.
	for u := 0; u < g.N; u++ {
		adj, ts := g.Neighbors(edge.ID(u))
		radj, rts := rg.Neighbors(perm[u])
		if len(adj) != len(radj) {
			t.Fatalf("vertex %d degree changed", u)
		}
		type arc struct{ v, t uint32 }
		want := make([]arc, len(adj))
		got := make([]arc, len(adj))
		for i := range adj {
			want[i] = arc{perm[adj[i]], ts[i]}
			got[i] = arc{radj[i], rts[i]}
		}
		less := func(s []arc) func(a, b int) bool {
			return func(a, b int) bool {
				if s[a].v != s[b].v {
					return s[a].v < s[b].v
				}
				return s[a].t < s[b].t
			}
		}
		sort.Slice(want, less(want))
		sort.Slice(got, less(got))
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("vertex %d arc %d: %v != %v", u, i, got[i], want[i])
			}
		}
	}
}

func TestReorderingPreservesBFSDistances(t *testing.T) {
	g := sampleCSR(t, 10, 9)
	perm := ByBFS(0, g, []uint32{0})
	rg := Apply(0, g, perm)
	src := edge.ID(42)
	want := traversal.BFS(0, g, src)
	got := traversal.BFS(0, rg, perm[src])
	if got.Reached != want.Reached {
		t.Fatalf("reached %d != %d", got.Reached, want.Reached)
	}
	for v := 0; v < g.N; v++ {
		if got.Level[perm[v]] != want.Level[v] {
			t.Fatalf("distance to %d changed under relabeling", v)
		}
	}
}
