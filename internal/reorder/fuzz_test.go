package reorder

import (
	"testing"
)

// FuzzPermutation fuzzes the Valid/Inverse pair: Valid must agree with a
// brute-force bijection check on arbitrary byte-derived candidates (a
// malformed permutation accepted here would let Apply scatter arcs out
// of range and corrupt a snapshot), and on valid inputs Inverse must be
// an involution: Inverse(Inverse(p)) == p.
func FuzzPermutation(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{3, 2, 1, 0})
	f.Add([]byte{0, 0})       // duplicate
	f.Add([]byte{5, 0, 1})    // out of range
	f.Add([]byte{1, 2, 3, 0}) // rotation
	f.Fuzz(func(t *testing.T, data []byte) {
		p := make(Permutation, len(data))
		for i, b := range data {
			p[i] = uint32(b)
		}
		want := bruteForceValid(p)
		if got := p.Valid(); got != want {
			t.Fatalf("Valid() = %v, brute force says %v for %v", got, want, p)
		}
		if !want {
			return
		}
		inv := p.Inverse()
		if !inv.Valid() {
			t.Fatalf("inverse of valid permutation invalid: %v -> %v", p, inv)
		}
		for i := range p {
			if inv[p[i]] != uint32(i) {
				t.Fatalf("inv[p[%d]] = %d, want %d", i, inv[p[i]], i)
			}
		}
		back := inv.Inverse()
		if !permEqual(back, p) {
			t.Fatalf("Inverse(Inverse(p)) != p: %v != %v", back, p)
		}
	})
}

func bruteForceValid(p Permutation) bool {
	for i := range p {
		hit := false
		for _, v := range p {
			if v == uint32(i) {
				hit = true
				break
			}
		}
		if !hit {
			return false
		}
	}
	// Every value in range and no target missed: with len(p) slots and
	// all len(p) targets hit, p is a bijection.
	for _, v := range p {
		if int(v) >= len(p) {
			return false
		}
	}
	return true
}

func permEqual(a, b Permutation) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
