package reorder

import (
	"testing"

	"snapdyn/internal/csr"
	"snapdyn/internal/dyngraph"
	"snapdyn/internal/edge"
	"snapdyn/internal/traversal"
	"snapdyn/internal/xrand"
)

func TestByRCMValidAndPreservesStructure(t *testing.T) {
	g := sampleCSR(t, 9, 13)
	perm := ByRCM(g)
	if !perm.Valid() {
		t.Fatal("invalid RCM permutation")
	}
	// Determinism: same graph, same permutation.
	perm2 := ByRCM(g)
	for i := range perm {
		if perm[i] != perm2[i] {
			t.Fatalf("RCM nondeterministic at %d", i)
		}
	}
	rg := Apply(0, g, perm)
	src := edge.ID(17)
	want := traversal.BFS(0, g, src)
	got := traversal.BFS(0, rg, perm[src])
	if got.Reached != want.Reached {
		t.Fatalf("reached %d != %d", got.Reached, want.Reached)
	}
	for v := 0; v < g.N; v++ {
		if got.Level[perm[v]] != want.Level[v] {
			t.Fatalf("distance to %d changed under RCM relabeling", v)
		}
	}
}

func TestByRCMReducesBandwidth(t *testing.T) {
	g := sampleCSR(t, 10, 15)
	perm := ByRCM(g)
	rg := Apply(0, g, perm)
	bandwidth := func(h *csr.Graph) (sum int64) {
		for u := 0; u < h.N; u++ {
			adj, _ := h.Neighbors(edge.ID(u))
			for _, v := range adj {
				d := int64(u) - int64(v)
				if d < 0 {
					d = -d
				}
				sum += d
			}
		}
		return sum
	}
	before, after := bandwidth(g), bandwidth(rg)
	if after >= before {
		t.Fatalf("RCM did not reduce total bandwidth: %d -> %d", before, after)
	}
	t.Logf("adjacency bandwidth %d -> %d (%.2fx)", before, after, float64(before)/float64(after))
}

func TestApplyIntoMatchesApply(t *testing.T) {
	g := sampleCSR(t, 9, 17)
	perm := ByRCM(g)
	want := Apply(0, g, perm)
	inv := perm.Inverse()
	var out csr.Graph
	for _, workers := range []int{1, 4} {
		got := ApplyInto(workers, g, perm, inv, &out)
		if got != &out {
			t.Fatal("ApplyInto did not return the supplied graph")
		}
		if got.N != want.N || got.NumEdges() != want.NumEdges() {
			t.Fatalf("shape %d/%d, want %d/%d", got.N, got.NumEdges(), want.N, want.NumEdges())
		}
		for i := range want.Offsets {
			if got.Offsets[i] != want.Offsets[i] {
				t.Fatalf("workers=%d: offsets diverge at %d", workers, i)
			}
		}
		for i := range want.Adj {
			if got.Adj[i] != want.Adj[i] || got.TS[i] != want.TS[i] {
				t.Fatalf("workers=%d: arc %d diverges", workers, i)
			}
		}
	}
}

func TestApplyIntoSteadyStateAllocations(t *testing.T) {
	g := sampleCSR(t, 10, 19)
	perm := ByDegree(g)
	inv := perm.Inverse()
	out := &csr.Graph{}
	ApplyInto(1, g, perm, inv, out) // warm the buffers
	allocs := testing.AllocsPerRun(10, func() {
		ApplyInto(1, g, perm, inv, out)
	})
	if allocs > 0 {
		t.Fatalf("warm serial ApplyInto allocs/run = %g, want 0", allocs)
	}
}

// permutedStore builds a Tracked store with random edges and returns it
// with its mirror edge list applied.
func permutedStore(t testing.TB, n int, arcs int, seed uint64) *dyngraph.Tracked {
	t.Helper()
	s := dyngraph.NewTracked(dyngraph.NewHybrid(n, 2*arcs, 0, 1))
	r := xrand.New(seed)
	for i := 0; i < arcs; i++ {
		u, v := r.Uint32n(uint32(n)), r.Uint32n(uint32(n))
		ts := r.Uint32n(100)
		s.Insert(u, v, ts)
		s.Insert(v, u, ts)
	}
	return s
}

func TestFromStorePermutedMatchesApply(t *testing.T) {
	s := permutedStore(t, 500, 2000, 23)
	s.Flush(nil)
	plain := csr.FromStore(2, s)
	perm := ByRCM(plain)
	inv := perm.Inverse()
	want := Apply(2, plain, perm)
	got := FromStorePermuted(2, s, perm, inv)
	assertCSREqual(t, "from-store-permuted", got, want)
}

func TestRefreshPermutedMatchesFullRebuild(t *testing.T) {
	const n = 600
	s := permutedStore(t, n, 3000, 29)
	s.Flush(nil)
	plain := csr.FromStore(2, s)
	perm := ByRCM(plain)
	inv := perm.Inverse()
	base := FromStorePermuted(2, s, perm, inv)
	r := xrand.New(31)
	for round := 0; round < 5; round++ {
		// Churn a small dirty set: inserts and deletes.
		for i := 0; i < 20; i++ {
			u, v := r.Uint32n(n), r.Uint32n(n)
			ts := r.Uint32n(100)
			s.Insert(u, v, ts)
			s.Insert(v, u, ts)
		}
		dirty := s.Flush(nil)
		got := RefreshPermuted(2, base, s, dirty, perm, inv)
		want := FromStorePermuted(2, s, perm, inv)
		assertCSREqual(t, "refresh-permuted", got, want)
		base = got
	}
	// Empty dirty: base is returned as-is.
	if RefreshPermuted(2, base, s, nil, perm, inv) != base {
		t.Fatal("empty dirty set should return base unchanged")
	}
	// High churn falls back to the full permuted rebuild, same answer.
	dirty := make([]uint32, n)
	for i := range dirty {
		dirty[i] = uint32(i)
	}
	got := RefreshPermuted(2, base, s, dirty, perm, inv)
	assertCSREqual(t, "refresh-permuted-fallback", got, FromStorePermuted(2, s, perm, inv))
	// Stale permutation (vertex count mismatch) is refused.
	if RefreshPermuted(2, base, s, nil, perm[:n-1], inv[:n-1]) != nil {
		t.Fatal("stale permutation must return nil")
	}
}

func assertCSREqual(t *testing.T, name string, got, want *csr.Graph) {
	t.Helper()
	if got.N != want.N || got.NumEdges() != want.NumEdges() {
		t.Fatalf("%s: shape %d/%d, want %d/%d", name, got.N, got.NumEdges(), want.N, want.NumEdges())
	}
	for i := range want.Offsets {
		if got.Offsets[i] != want.Offsets[i] {
			t.Fatalf("%s: offsets diverge at %d: %d != %d", name, i, got.Offsets[i], want.Offsets[i])
		}
	}
	for i := range want.Adj {
		if got.Adj[i] != want.Adj[i] || got.TS[i] != want.TS[i] {
			t.Fatalf("%s: arc %d diverges: (%d,%d) != (%d,%d)",
				name, i, got.Adj[i], got.TS[i], want.Adj[i], want.TS[i])
		}
	}
}
