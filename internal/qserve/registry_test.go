package qserve

import (
	"net/url"
	"testing"

	"snapdyn/internal/qcache"
)

// TestRegistryCatalog pins the registry's structural invariants: the
// seven kinds registered in a fixed order with dense ids, unique wire
// names, and one reserved cache-key space each. The fleet executor's
// kernel table and the HTTP route table are both generated from this
// catalog, so its shape is API surface.
func TestRegistryCatalog(t *testing.T) {
	wantNames := []string{
		"bfs", "sssp", "connected", "components",
		"clustering", "khop", "pagerank",
	}
	sps := Specs()
	if len(sps) != len(wantNames) || NumSpecs() != len(wantNames) {
		t.Fatalf("registered %d kinds (NumSpecs %d), want %d", len(sps), NumSpecs(), len(wantNames))
	}
	seenKind := map[qcache.Kind]string{}
	for i, sp := range sps {
		if sp.Name() != wantNames[i] {
			t.Fatalf("spec %d named %q, want %q", i, sp.Name(), wantNames[i])
		}
		if sp.ID() != i {
			t.Fatalf("spec %q has id %d, want dense registration index %d", sp.Name(), sp.ID(), i)
		}
		if prev, dup := seenKind[sp.CacheKind()]; dup {
			t.Fatalf("kinds %q and %q share cache kind %d", prev, sp.Name(), sp.CacheKind())
		}
		seenKind[sp.CacheKind()] = sp.Name()
		if got := LookupSpec(sp.Name()); got != sp {
			t.Fatalf("LookupSpec(%q) = %p, want %p", sp.Name(), got, sp)
		}
	}
	if LookupSpec("no-such-kind") != nil {
		t.Fatal("LookupSpec resolved an unregistered name")
	}
}

// TestRegisterRejectsCollisions asserts the registration-time guards: a
// duplicate wire name and a shared cache kind both panic before
// mutating the catalog, so a collision cannot ship.
func TestRegisterRejectsCollisions(t *testing.T) {
	before := NumSpecs()
	mustPanic := func(name string, sp *Spec) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("register(%s) did not panic", name)
			}
		}()
		register(sp)
	}
	mustPanic("duplicate name", &Spec{name: "bfs", kind: qcache.Kind(200)})
	mustPanic("shared cache kind", &Spec{name: "bfs2", kind: SpecBFS.CacheKind()})
	if NumSpecs() != before {
		t.Fatalf("failed registration mutated the catalog: %d kinds, want %d", NumSpecs(), before)
	}
	if LookupSpec("bfs2") != nil {
		t.Fatal("failed registration left a name binding behind")
	}
}

// TestCacheKeysDistinctAcrossKinds is the cross-kind collision test:
// every cacheable kind, handed an identical argument payload, must
// derive a distinct qcache.Key — the registered cache kind namespaces
// the key, so a BFS from vertex 3 can never alias a k-hop query whose
// operands happen to encode the same integers.
func TestCacheKeysDistinctAcrossKinds(t *testing.T) {
	argSets := []Args{
		{},
		{A: 3},
		{A: 3, B: 7},
		{A: 1 << 40, B: 1},
	}
	for _, a := range argSets {
		seen := map[qcache.Key]string{}
		for _, sp := range Specs() {
			k, ok := sp.CacheKey(a)
			if !ok {
				t.Fatalf("%q: snapshot-path args %+v unexpectedly uncacheable", sp.Name(), a)
			}
			if k.Kind != sp.CacheKind() {
				t.Fatalf("%q derives keys in kind %d, registered %d", sp.Name(), k.Kind, sp.CacheKind())
			}
			if prev, dup := seen[k]; dup {
				t.Fatalf("args %+v: kinds %q and %q collide on key %+v", a, prev, sp.Name(), k)
			}
			seen[k] = sp.Name()
		}
	}

	// The live connectivity path must refuse a key outright: its answers
	// come from a mutating index and may never enter a snapshot-pinned
	// generation.
	if _, ok := SpecConnected.CacheKey(Args{A: 1, B: 2, Live: true}); ok {
		t.Fatal("live connectivity derived a cache key")
	}
}

// TestGenericQueryMatchesTyped runs each kind through the registry's
// generic Query entry point and through its typed convenience method
// and demands identical replies — the typed surface is a projection of
// the registry, not a second implementation.
func TestGenericQueryMatchesTyped(t *testing.T) {
	mgr, _ := newManager(t, 8, 53)
	ex := New(mgr, Config{Undirected: true})

	{
		a := Args{A: 3}
		r, err := ex.Query(SpecBFS, a)
		typed, err2 := ex.BFS(3)
		if err != nil || err2 != nil {
			t.Fatal(err, err2)
		}
		if BFSReplyFrom(a, r) != typed {
			t.Fatalf("bfs: generic %+v, typed %+v", BFSReplyFrom(a, r), typed)
		}
	}
	{
		a := Args{A: 3, B: 0}
		r, err := ex.Query(SpecSSSP, a)
		typed, err2 := ex.SSSP(3, 0)
		if err != nil || err2 != nil {
			t.Fatal(err, err2)
		}
		if SSSPReplyFrom(a, r) != typed {
			t.Fatalf("sssp: generic %+v, typed %+v", SSSPReplyFrom(a, r), typed)
		}
	}
	{
		a := Args{A: 1, B: 2}
		r, err := ex.Query(SpecConnected, a)
		typed, err2 := ex.Connected(1, 2)
		if err != nil || err2 != nil {
			t.Fatal(err, err2)
		}
		if ConnReplyFrom(a, r) != typed {
			t.Fatalf("connected: generic %+v, typed %+v", ConnReplyFrom(a, r), typed)
		}
	}
	{
		r, err := ex.Query(SpecComponents, Args{})
		typed, err2 := ex.Components()
		if err != nil || err2 != nil {
			t.Fatal(err, err2)
		}
		if ComponentsReplyFrom(r) != typed {
			t.Fatalf("components: generic %+v, typed %+v", ComponentsReplyFrom(r), typed)
		}
	}
	{
		r, err := ex.Query(SpecClustering, Args{})
		typed, err2 := ex.Clustering()
		if err != nil || err2 != nil {
			t.Fatal(err, err2)
		}
		if ClusteringReplyFrom(r) != typed {
			t.Fatalf("clustering: generic %+v, typed %+v", ClusteringReplyFrom(r), typed)
		}
	}
	{
		a := Args{A: 3, B: 2}
		r, err := ex.Query(SpecKHop, a)
		typed, err2 := ex.KHop(3, 2)
		if err != nil || err2 != nil {
			t.Fatal(err, err2)
		}
		if KHopReplyFrom(a, r) != typed {
			t.Fatalf("khop: generic %+v, typed %+v", KHopReplyFrom(a, r), typed)
		}
	}
	{
		a := PageRankArgs(1e-6)
		r, err := ex.Query(SpecPageRank, a)
		typed, err2 := ex.PageRank(1e-6)
		if err != nil || err2 != nil {
			t.Fatal(err, err2)
		}
		if PageRankReplyFrom(a, r) != typed {
			t.Fatalf("pagerank: generic %+v, typed %+v", PageRankReplyFrom(a, r), typed)
		}
	}
}

// TestDecodeRejectsBadParams walks the registered decoders through
// malformed parameter sets: every rejection must come back as a
// bad-request error, never a zero-valued Args that silently queries
// vertex 0.
func TestDecodeRejectsBadParams(t *testing.T) {
	cases := []struct {
		kind  string
		query string
	}{
		{"bfs", ""},                         // missing src
		{"bfs", "src=x"},                    // non-numeric
		{"bfs", "src=-1"},                   // negative
		{"sssp", "src=1&delta=abc"},         // bad delta
		{"connected", "u=1"},                // missing v
		{"connected", "u=1&v=2&live=maybe"}, // bad live flag
		{"khop", "src=1"},                   // missing k
		{"khop", "src=1&k=-3"},              // negative k
		{"pagerank", "tol=0"},               // non-positive tol
		{"pagerank", "tol=NaN"},             // NaN tol
		{"pagerank", "tol=+Inf"},            // infinite tol
		{"pagerank", "tol=bogus"},           // non-numeric tol
	}
	for _, tc := range cases {
		sp := LookupSpec(tc.kind)
		if sp == nil {
			t.Fatalf("kind %q not registered", tc.kind)
		}
		q, err := url.ParseQuery(tc.query)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sp.Decode(q); err == nil {
			t.Errorf("%s?%s: decode accepted malformed parameters", tc.kind, tc.query)
		}
	}

	// PageRank's default and floor: no tol means DefaultPageRankTol, a
	// sub-floor tol clamps to the termination floor.
	q, _ := url.ParseQuery("")
	a, err := LookupSpec("pagerank").Decode(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := PageRankTol(a); got != DefaultPageRankTol {
		t.Fatalf("default tol = %v, want %v", got, DefaultPageRankTol)
	}
	q, _ = url.ParseQuery("tol=1e-300")
	a, err = LookupSpec("pagerank").Decode(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := PageRankTol(a); got != minPageRankTol {
		t.Fatalf("sub-floor tol = %v, want floor %v", got, minPageRankTol)
	}
}
