package qserve

import (
	"errors"
	"runtime"
	"sync"
	"testing"

	"snapdyn/internal/cc"
	"snapdyn/internal/dyngraph"
	"snapdyn/internal/edge"
	"snapdyn/internal/rmat"
	"snapdyn/internal/snapmgr"
	"snapdyn/internal/sssp"
	"snapdyn/internal/stream"
	"snapdyn/internal/traversal"
)

// newManager builds an undirected R-MAT instance behind a snapshot
// manager, returning the manager and the generated (unmirrored) edges.
func newManager(t *testing.T, scale int, seed uint64) (*snapmgr.Manager, []edge.Edge) {
	t.Helper()
	n := 1 << scale
	edges, err := rmat.Generate(0, rmat.PaperParams(scale, 8*n, 50, seed))
	if err != nil {
		t.Fatal(err)
	}
	store := dyngraph.NewTracked(dyngraph.NewHybrid(n, 4*len(edges), 0, seed))
	store.ApplyBatch(0, stream.Mirror(stream.Inserts(edges)))
	return snapmgr.New(0, store), edges
}

func TestQueriesMatchKernels(t *testing.T) {
	mgr, _ := newManager(t, 9, 7)
	ex := New(mgr, Config{Undirected: true})
	g := mgr.Current()

	for _, src := range []uint32{0, 3, 101, 511} {
		want := traversal.BFS(1, g, src)
		got, err := ex.BFS(src)
		if err != nil {
			t.Fatal(err)
		}
		if got.Reached != want.Reached || got.Levels != want.Levels {
			t.Fatalf("BFS(%d) = %+v, want reached=%d levels=%d", src, got, want.Reached, want.Levels)
		}

		dist := sssp.Run(g, src, sssp.Options{Workers: 1})
		wantReached, wantMax := 0, int64(0)
		for _, d := range dist {
			if d != sssp.Inf {
				wantReached++
				if d > wantMax {
					wantMax = d
				}
			}
		}
		sp, err := ex.SSSP(src, 0)
		if err != nil {
			t.Fatal(err)
		}
		if sp.Reached != wantReached || sp.MaxDist != wantMax {
			t.Fatalf("SSSP(%d) = %+v, want reached=%d max=%d", src, sp, wantReached, wantMax)
		}
	}

	for _, q := range [][2]uint32{{0, 0}, {1, 2}, {5, 200}, {17, 400}} {
		wantConn, wantHops := traversal.STConnected(1, g, q[0], q[1])
		got, err := ex.Connected(q[0], q[1])
		if err != nil {
			t.Fatal(err)
		}
		if got.Connected != wantConn || got.Hops != wantHops {
			t.Fatalf("Connected%v = %+v, want (%v, %d)", q, got, wantConn, wantHops)
		}
	}

	comp := cc.Components(1, g)
	_, wantLargest := cc.Largest(1, comp)
	cr, err := ex.Components()
	if err != nil {
		t.Fatal(err)
	}
	if cr.Components != cc.Count(comp) || cr.LargestSize != wantLargest {
		t.Fatalf("Components() = %+v, want count=%d largest=%d", cr, cc.Count(comp), wantLargest)
	}

	st := ex.Stats()
	if st.Vertices != g.N || st.Arcs != g.NumEdges() || st.Epoch != mgr.Epoch() {
		t.Fatalf("Stats() = %+v inconsistent with snapshot", st)
	}
}

func TestBadVertex(t *testing.T) {
	mgr, _ := newManager(t, 8, 3)
	ex := New(mgr, Config{Undirected: true})
	if _, err := ex.BFS(1 << 20); !errors.Is(err, ErrBadVertex) {
		t.Fatalf("BFS out of range: err = %v, want ErrBadVertex", err)
	}
	if _, err := ex.SSSP(1<<20, 0); !errors.Is(err, ErrBadVertex) {
		t.Fatalf("SSSP out of range: err = %v, want ErrBadVertex", err)
	}
	if _, err := ex.Connected(0, 1<<20); !errors.Is(err, ErrBadVertex) {
		t.Fatalf("Connected out of range: err = %v, want ErrBadVertex", err)
	}
	c := ex.Counters()
	if c.Served != 3 {
		t.Fatalf("served = %d, want 3 (errors still release their slot)", c.Served)
	}
}

// TestAdmissionShedsBeyondQueue saturates MaxConcurrent+MaxQueue with
// blocked queries and asserts the next one is shed, not queued.
func TestAdmissionShedsBeyondQueue(t *testing.T) {
	mgr, _ := newManager(t, 8, 5)
	ex := New(mgr, Config{Undirected: true, MaxConcurrent: 2, MaxQueue: 1})

	// Occupy both execution slots with queries blocked inside checkout
	// by holding the slots channel full from the outside first.
	ex.adm.slots <- struct{}{}
	ex.adm.slots <- struct{}{}

	// One waiter is admitted to the queue.
	done := make(chan error, 2)
	go func() {
		_, err := ex.BFS(0)
		done <- err
	}()
	// Wait until it is counted as waiting.
	for ex.Counters().Waiting == 0 {
		runtime.Gosched()
	}

	// The queue (MaxQueue=1) is full: the next query must shed.
	if _, err := ex.BFS(0); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if c := ex.Counters(); c.Shed != 1 {
		t.Fatalf("shed = %d, want 1", c.Shed)
	}

	// Free the slots; the queued query completes fine.
	<-ex.adm.slots
	<-ex.adm.slots
	if err := <-done; err != nil {
		t.Fatalf("queued query failed: %v", err)
	}
}

// TestScratchReuseAcrossEpochs publishes a new epoch between queries
// and asserts the pool still serves correct results from the same
// scratch set (kernel scratches self-revalidate).
func TestScratchReuseAcrossEpochs(t *testing.T) {
	mgr, edges := newManager(t, 9, 11)
	ex := New(mgr, Config{Undirected: true, MaxConcurrent: 1})

	if _, err := ex.BFS(0); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.SSSP(0, 0); err != nil {
		t.Fatal(err)
	}

	// Mutate and republish: delete a batch of arcs, insert fresh ones.
	var batch []edge.Update
	for i := 0; i < 200; i++ {
		e := edges[i*7%len(edges)]
		batch = append(batch,
			edge.Update{Edge: e, Op: edge.Delete},
			edge.Update{Edge: edge.Edge{U: e.V, V: e.U, T: e.T}, Op: edge.Delete})
	}
	mgr.Ingest(func(s *dyngraph.Tracked) { s.ApplyBatch(0, batch) })
	before := mgr.Epoch()
	mgr.Refresh(0)
	if mgr.Epoch() != before+1 {
		t.Fatalf("epoch = %d, want %d", mgr.Epoch(), before+1)
	}

	g := mgr.Current()
	want := traversal.BFS(1, g, 0)
	got, err := ex.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Reached != want.Reached || got.Levels != want.Levels || got.Epoch != before+1 {
		t.Fatalf("post-epoch BFS = %+v, want reached=%d levels=%d epoch=%d",
			got, want.Reached, want.Levels, before+1)
	}

	dist := sssp.Run(g, 0, sssp.Options{Workers: 1})
	wantReached := 0
	for _, d := range dist {
		if d != sssp.Inf {
			wantReached++
		}
	}
	sp, err := ex.SSSP(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Reached != wantReached {
		t.Fatalf("post-epoch SSSP reached = %d, want %d", sp.Reached, wantReached)
	}
}

// TestSteadyStateQueriesDoNotAllocateScratch is the serving-layer
// allocation guard: after warm-up, BFS, SSSP, and connectivity queries
// through the executor allocate zero objects per request — the kernel
// scratch comes from the pool, the admission path is channel-only, and
// replies are returned by value.
func TestSteadyStateQueriesDoNotAllocateScratch(t *testing.T) {
	mgr, _ := newManager(t, 10, 13)
	ex := New(mgr, Config{Undirected: true, MaxConcurrent: 1})

	warm := func() {
		if _, err := ex.BFS(1); err != nil {
			t.Fatal(err)
		}
		if _, err := ex.SSSP(1, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := ex.Connected(1, 2); err != nil {
			t.Fatal(err)
		}
	}
	warm()
	warm()

	if n := testing.AllocsPerRun(20, func() {
		if _, err := ex.BFS(1); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Fatalf("steady-state BFS query allocates %.1f objects/op, want 0", n)
	}
	if n := testing.AllocsPerRun(20, func() {
		if _, err := ex.SSSP(1, 0); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Fatalf("steady-state SSSP query allocates %.1f objects/op, want 0", n)
	}
	if n := testing.AllocsPerRun(20, func() {
		if _, err := ex.Connected(1, 2); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Fatalf("steady-state connectivity query allocates %.1f objects/op, want 0", n)
	}
}

// TestConcurrentQueriesUnderIngest hammers the executor from many
// goroutines while the ingest side applies batches and refreshes —
// the qserve half of the serving -race guarantee.
func TestConcurrentQueriesUnderIngest(t *testing.T) {
	mgr, edges := newManager(t, 9, 17)
	ex := New(mgr, Config{Undirected: true, MaxConcurrent: 4, MaxQueue: 64})

	const queriers = 6
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for q := 0; q < queriers; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			src := uint32(q)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var err error
				switch i % 3 {
				case 0:
					_, err = ex.BFS(src % 512)
				case 1:
					_, err = ex.SSSP(src%512, 0)
				default:
					_, err = ex.Connected(src%512, (src+7)%512)
				}
				if err != nil && !errors.Is(err, ErrOverloaded) {
					t.Errorf("query failed: %v", err)
					return
				}
				src = src*1664525 + 1013904223
			}
		}(q)
	}

	for round := 0; round < 20; round++ {
		var batch []edge.Update
		for i := 0; i < 100; i++ {
			e := edges[(round*100+i)%len(edges)]
			batch = append(batch,
				edge.Update{Edge: edge.Edge{U: e.U, V: e.V, T: e.T + 1}, Op: edge.Insert},
				edge.Update{Edge: edge.Edge{U: e.V, V: e.U, T: e.T + 1}, Op: edge.Insert})
		}
		mgr.Ingest(func(s *dyngraph.Tracked) { s.ApplyBatch(0, batch) })
		mgr.Refresh(0)
	}
	close(stop)
	wg.Wait()
}

// TestComponentsPooledZeroAlloc pins the dst-slice components path: the
// scratch pool owns the label and census buffers, so steady-state
// component queries allocate nothing at Workers=1 (parallel reductions
// allocate fan-out closures, so the guarantee is for the serial path).
func TestComponentsPooledZeroAlloc(t *testing.T) {
	mgr, _ := newManager(t, 9, 17)
	ex := New(mgr, Config{Undirected: true, Workers: 1, MaxConcurrent: 1})

	// Correctness first: the pooled reply matches the one-shot kernels.
	g := mgr.Current()
	comp := cc.Components(1, g)
	_, wantLargest := cc.Largest(1, comp)
	reply, err := ex.Components()
	if err != nil {
		t.Fatal(err)
	}
	if reply.Components != cc.Count(comp) || reply.LargestSize != wantLargest {
		t.Fatalf("pooled components = %+v, want %d components / largest %d",
			reply, cc.Count(comp), wantLargest)
	}

	if _, err := ex.Components(); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(20, func() {
		if _, err := ex.Components(); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Fatalf("steady-state components query allocates %.1f objects/op, want 0", n)
	}
}
