package qserve

import (
	"errors"
	"fmt"
	"math"
	"net/url"
	"strconv"

	"snapdyn/internal/qcache"
	"snapdyn/internal/snapmgr"
)

// ErrUnsupported is returned when a query kind (or a mode of one, such
// as live connectivity without an enabled live index) is not available
// on this engine or snapshot layout — the serving layer's 501.
var ErrUnsupported = errors.New("qserve: query kind not supported by this engine")

// Args is the decoded argument set of one query, uniform across kinds:
// two integer operands (vertex ids, a bucket width, a float's bits —
// the spec's decode/validate functions fix the interpretation) plus the
// live flag for kinds that can answer from the update stream instead of
// the snapshot. Passed by value so the steady-state query path stays
// allocation-free.
type Args struct {
	A, B uint64
	Live bool
}

// CacheState records how a query's result was produced relative to the
// result cache.
type CacheState uint8

const (
	// CacheBypass: computed directly — caching disabled, the kind is
	// uncacheable, or a trivial short-circuit answered without a kernel.
	CacheBypass CacheState = iota
	// CacheHit: served from the snapshot's cache generation.
	CacheHit
	// CacheMiss: computed (possibly coalescing concurrent identical
	// requests) and stored into the generation.
	CacheMiss
	// CacheLive: answered from the live update-stream index, not from
	// any snapshot.
	CacheLive
)

func (c CacheState) String() string {
	switch c {
	case CacheHit:
		return "hit"
	case CacheMiss:
		return "miss"
	case CacheLive:
		return "live"
	default:
		return "bypass"
	}
}

// Result is the kind-agnostic outcome of one query: the kernel's value
// aggregates, the epoch lower bound of the snapshot served (0 on the
// live path), and the cache disposition. Each spec's encode function
// (and the typed convenience methods) project it into the kind's wire
// reply.
type Result struct {
	Val   qcache.Value
	Epoch uint64
	Cache CacheState
}

// Spec is one registered query kind: everything the generic serving
// path needs to admit, validate, cache, execute, and encode it. A kind
// registers exactly once (in this package's init); the executors, the
// HTTP layer, and the cache all dispatch through the registry instead
// of per-kind plumbing.
type Spec struct {
	id   int
	name string
	kind qcache.Kind

	// vertexA/vertexB mark which operands are vertex ids that must be
	// range-checked against the snapshot's vertex set.
	vertexA, vertexB bool

	// quick, when set, may answer without a kernel or cache round trip
	// (e.g. u == v st-connectivity).
	quick func(a Args) (qcache.Value, bool)
	// key derives the kind's cache key; ok=false marks this request
	// uncacheable (live-path queries). The Kind field always comes from
	// the spec's registered kind, so keys cannot collide across kinds.
	key func(a Args) (qcache.Key, bool)
	// decode parses HTTP query parameters into Args.
	decode func(q url.Values) (Args, error)
	// record projects Args into the query-trace tuple.
	record func(a Args) (u, v uint32, delta int64)
	// encode builds the kind's JSON wire reply.
	encode func(a Args, r Result) any
	// run executes the kernel against the pinned single-snapshot view;
	// keep=true copies payload slices out of pooled scratch for the
	// cache. The sharded fleet registers its kernels separately
	// (internal/shard), keyed by the spec's dense id.
	run func(e *Executor, v *snapmgr.View, epoch uint64, a Args, keep bool) (qcache.Value, error)
}

// Name is the kind's wire name: the <kind> in /v1/query/<kind> and the
// kind string in query traces.
func (sp *Spec) Name() string { return sp.name }

// ID is the kind's dense registration index, stable for the process
// lifetime — the fleet executor's kernel table is indexed by it.
func (sp *Spec) ID() int { return sp.id }

// CacheKind is the kind's reserved qcache key space.
func (sp *Spec) CacheKind() qcache.Kind { return sp.kind }

// Validate range-checks the vertex operands against an n-vertex
// snapshot.
func (sp *Spec) Validate(a Args, n int) error {
	if sp.vertexA && a.A >= uint64(n) {
		return ErrBadVertex
	}
	if sp.vertexB && a.B >= uint64(n) {
		return ErrBadVertex
	}
	return nil
}

// Quick reports a kernel-free short-circuit answer, if the kind has one
// for these arguments.
func (sp *Spec) Quick(a Args) (qcache.Value, bool) {
	if sp.quick == nil {
		return qcache.Value{}, false
	}
	return sp.quick(a)
}

// CacheKey derives the request's cache key from the registered key
// function; ok=false means this request must not be cached.
func (sp *Spec) CacheKey(a Args) (qcache.Key, bool) { return sp.key(a) }

// Decode parses URL query parameters into the kind's Args.
func (sp *Spec) Decode(q url.Values) (Args, error) { return sp.decode(q) }

// Record projects Args into the query-trace (u, v, delta) tuple.
func (sp *Spec) Record(a Args) (u, v uint32, delta int64) { return sp.record(a) }

// Encode builds the kind's JSON reply from a Result.
func (sp *Spec) Encode(a Args, r Result) any { return sp.encode(a, r) }

var (
	specs  []*Spec
	byName = map[string]*Spec{}
)

func register(sp *Spec) {
	if _, dup := byName[sp.name]; dup {
		panic(fmt.Sprintf("qserve: duplicate query kind %q", sp.name))
	}
	for _, other := range specs {
		if other.kind == sp.kind {
			panic(fmt.Sprintf("qserve: query kinds %q and %q share cache kind %d",
				other.name, sp.name, sp.kind))
		}
	}
	sp.id = len(specs)
	specs = append(specs, sp)
	byName[sp.name] = sp
}

// Specs returns the registered query kinds in registration order. The
// returned slice is shared; callers must not mutate it.
func Specs() []*Spec { return specs }

// LookupSpec resolves a kind by wire name; nil when unknown.
func LookupSpec(name string) *Spec { return byName[name] }

// NumSpecs returns the number of registered kinds, for sizing kernel
// tables indexed by Spec.ID.
func NumSpecs() int { return len(specs) }

// The registered query kinds. Registration happens once, here, in a
// fixed order; everything else (executors, HTTP routes, fleet kernel
// table, trace replay) is derived from this list.
var (
	SpecBFS = &Spec{
		name: "bfs", kind: qcache.KindBFS, vertexA: true,
		key:    func(a Args) (qcache.Key, bool) { return qcache.Key{Kind: qcache.KindBFS, A: a.A}, true },
		decode: decodeSrc,
		record: func(a Args) (uint32, uint32, int64) { return uint32(a.A), 0, 0 },
		encode: func(a Args, r Result) any { return BFSReplyFrom(a, r) },
		run: func(e *Executor, v *snapmgr.View, epoch uint64, a Args, keep bool) (qcache.Value, error) {
			return e.bfsValue(v, epoch, uint32(a.A), keep), nil
		},
	}

	SpecSSSP = &Spec{
		name: "sssp", kind: qcache.KindSSSP, vertexA: true,
		key: func(a Args) (qcache.Key, bool) {
			return qcache.Key{Kind: qcache.KindSSSP, A: a.A, B: a.B}, true
		},
		decode: decodeSSSP,
		record: func(a Args) (uint32, uint32, int64) { return uint32(a.A), 0, int64(a.B) },
		encode: func(a Args, r Result) any { return SSSPReplyFrom(a, r) },
		run: func(e *Executor, v *snapmgr.View, epoch uint64, a Args, keep bool) (qcache.Value, error) {
			return e.ssspValue(v, epoch, uint32(a.A), int64(a.B), keep), nil
		},
	}

	SpecConnected = &Spec{
		name: "connected", kind: qcache.KindConnected, vertexA: true, vertexB: true,
		quick: func(a Args) (qcache.Value, bool) {
			// u == v is connected at hop distance 0 on every path, live
			// or snapshot, without touching a kernel.
			if a.A == a.B {
				return qcache.Value{Flag: true}, true
			}
			return qcache.Value{}, false
		},
		key: func(a Args) (qcache.Key, bool) {
			// Live answers come from the mutating update-stream index:
			// they are not pinned to any snapshot and must never enter a
			// snapshot-keyed generation.
			return qcache.Key{Kind: qcache.KindConnected, A: a.A, B: a.B}, !a.Live
		},
		decode: decodeConnected,
		record: func(a Args) (uint32, uint32, int64) { return uint32(a.A), uint32(a.B), 0 },
		encode: func(a Args, r Result) any { return ConnReplyFrom(a, r) },
		run:    runConnected,
	}

	SpecComponents = &Spec{
		name: "components", kind: qcache.KindComponents,
		key:    func(a Args) (qcache.Key, bool) { return qcache.Key{Kind: qcache.KindComponents}, true },
		decode: decodeNone,
		record: func(a Args) (uint32, uint32, int64) { return 0, 0, 0 },
		encode: func(a Args, r Result) any { return ComponentsReplyFrom(r) },
		run: func(e *Executor, v *snapmgr.View, epoch uint64, a Args, keep bool) (qcache.Value, error) {
			return e.componentsValue(v, epoch, keep), nil
		},
	}

	SpecClustering = &Spec{
		name: "clustering", kind: qcache.KindClustering,
		key:    func(a Args) (qcache.Key, bool) { return qcache.Key{Kind: qcache.KindClustering}, true },
		decode: decodeNone,
		record: func(a Args) (uint32, uint32, int64) { return 0, 0, 0 },
		encode: func(a Args, r Result) any { return ClusteringReplyFrom(r) },
		run: func(e *Executor, v *snapmgr.View, epoch uint64, a Args, keep bool) (qcache.Value, error) {
			return e.clusteringValue(v, epoch, keep), nil
		},
	}

	SpecKHop = &Spec{
		name: "khop", kind: qcache.KindKHop, vertexA: true,
		key: func(a Args) (qcache.Key, bool) {
			return qcache.Key{Kind: qcache.KindKHop, A: a.A, B: a.B}, true
		},
		decode: decodeKHop,
		record: func(a Args) (uint32, uint32, int64) { return uint32(a.A), 0, int64(a.B) },
		encode: func(a Args, r Result) any { return KHopReplyFrom(a, r) },
		run: func(e *Executor, v *snapmgr.View, epoch uint64, a Args, keep bool) (qcache.Value, error) {
			return e.khopValue(v, epoch, uint32(a.A), int32(a.B), keep), nil
		},
	}

	SpecPageRank = &Spec{
		name: "pagerank", kind: qcache.KindPageRank,
		key: func(a Args) (qcache.Key, bool) {
			return qcache.Key{Kind: qcache.KindPageRank, A: a.A}, true
		},
		decode: decodePageRank,
		record: func(a Args) (uint32, uint32, int64) { return 0, 0, 0 },
		encode: func(a Args, r Result) any { return PageRankReplyFrom(a, r) },
		run: func(e *Executor, v *snapmgr.View, epoch uint64, a Args, keep bool) (qcache.Value, error) {
			return e.pagerankValue(v, epoch, math.Float64frombits(a.A), keep), nil
		},
	}
)

func init() {
	for _, sp := range []*Spec{
		SpecBFS, SpecSSSP, SpecConnected, SpecComponents,
		SpecClustering, SpecKHop, SpecPageRank,
	} {
		register(sp)
	}
}

// Query runs one registered kind against the current snapshot (or the
// live index, for live-path arguments) with the shared admission,
// validation, and caching flow every kind rides:
//
//	admit (queue-or-shed) → pin snapshot → validate vertex operands →
//	quick short-circuit → cache lookup → kernel (coalesced on miss).
//
// The uncacheable and cache-disabled paths call the kernel directly —
// no singleflight closure — preserving the allocation-free steady
// state; only a cacheable miss pays the closure and the payload copy.
func (e *Executor) Query(sp *Spec, a Args) (Result, error) {
	v, epoch, gen, err := e.checkout()
	if err != nil {
		return Result{}, err
	}
	defer e.adm.Release()
	if err := sp.Validate(a, v.NumVertices()); err != nil {
		return Result{}, err
	}
	res := Result{Epoch: epoch}
	if val, ok := sp.Quick(a); ok {
		res.Val = val
		return res, nil
	}
	k, cacheable := sp.key(a)
	if !cacheable {
		if a.Live {
			res.Cache = CacheLive
		}
		val, err := sp.run(e, v, epoch, a, false)
		if err != nil {
			return Result{}, err
		}
		res.Val = val
		return res, nil
	}
	if val, ok := gen.Lookup(k); ok {
		res.Val, res.Cache = val, CacheHit
		return res, nil
	}
	if gen == nil {
		val, err := sp.run(e, v, epoch, a, false)
		if err != nil {
			return Result{}, err
		}
		res.Val = val
		return res, nil
	}
	val, err := gen.Do(k, func() (qcache.Value, error) {
		return sp.run(e, v, epoch, a, true)
	})
	if err != nil {
		return Result{}, err
	}
	res.Val, res.Cache = val, CacheMiss
	return res, nil
}

// runConnected answers st-connectivity: from the live update-stream
// forest when a.Live (no snapshot wait, hop count unavailable), else by
// the early-exiting snapshot traversal.
func runConnected(e *Executor, view *snapmgr.View, epoch uint64, a Args, keep bool) (qcache.Value, error) {
	if a.Live {
		l := e.live
		if l == nil {
			return qcache.Value{}, ErrUnsupported
		}
		// Hops is -1 on the live path: the spanning forest proves
		// connectivity but its tree paths are not shortest paths.
		return qcache.Value{Flag: l.Connected(uint32(a.A), uint32(a.B)), N1: -1}, nil
	}
	return e.connValue(view, epoch, uint32(a.A), uint32(a.B)), nil
}

// --- decode helpers (URL query parameters → Args) ---

func decodeNone(url.Values) (Args, error) { return Args{}, nil }

func decodeSrc(q url.Values) (Args, error) {
	src, err := formUint32(q, "src")
	if err != nil {
		return Args{}, err
	}
	return Args{A: uint64(src)}, nil
}

func decodeSSSP(q url.Values) (Args, error) {
	src, err := formUint32(q, "src")
	if err != nil {
		return Args{}, err
	}
	var delta int64
	if v := q.Get("delta"); v != "" {
		delta, err = strconv.ParseInt(v, 10, 64)
		if err != nil {
			return Args{}, badParam("delta", err)
		}
	}
	return Args{A: uint64(src), B: uint64(delta)}, nil
}

func decodeConnected(q url.Values) (Args, error) {
	u, err := formUint32(q, "u")
	if err != nil {
		return Args{}, err
	}
	v, err := formUint32(q, "v")
	if err != nil {
		return Args{}, err
	}
	a := Args{A: uint64(u), B: uint64(v)}
	switch live := q.Get("live"); live {
	case "", "0", "false":
	case "1", "true":
		a.Live = true
	default:
		return Args{}, badParam("live", fmt.Errorf("want 0/1/true/false, got %q", live))
	}
	return a, nil
}

func decodeKHop(q url.Values) (Args, error) {
	src, err := formUint32(q, "src")
	if err != nil {
		return Args{}, err
	}
	k, err := formUint32(q, "k")
	if err != nil {
		return Args{}, err
	}
	if k > maxKHop {
		k = maxKHop
	}
	return Args{A: uint64(src), B: uint64(k)}, nil
}

func decodePageRank(q url.Values) (Args, error) {
	tol := DefaultPageRankTol
	if v := q.Get("tol"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return Args{}, badParam("tol", err)
		}
		if math.IsNaN(f) || math.IsInf(f, 0) || f <= 0 {
			return Args{}, badParam("tol", fmt.Errorf("want a finite tolerance > 0, got %v", f))
		}
		tol = f
	}
	if tol < minPageRankTol {
		tol = minPageRankTol
	}
	return Args{A: math.Float64bits(tol)}, nil
}

func formUint32(q url.Values, name string) (uint32, error) {
	v := q.Get(name)
	if v == "" {
		return 0, badParam(name, errors.New("missing"))
	}
	u, err := strconv.ParseUint(v, 10, 32)
	if err != nil {
		return 0, badParam(name, err)
	}
	return uint32(u), nil
}

// The XReplyFrom builders project a kind-agnostic Result into the
// kind's typed wire reply. The typed convenience methods on both
// executors and the HTTP encode functions all go through them, so the
// wire format is defined in exactly one place; they are exported so
// the fleet executor's typed methods can build replies without the
// interface boxing Spec.Encode implies (which would cost an allocation
// on the cache-hit path).

// BFSReplyFrom builds the BFS wire reply.
func BFSReplyFrom(a Args, r Result) BFSReply {
	return BFSReply{Src: uint32(a.A), Reached: int(r.Val.N1), Levels: int(r.Val.N2), Epoch: r.Epoch}
}

// SSSPReplyFrom builds the SSSP wire reply.
func SSSPReplyFrom(a Args, r Result) SSSPReply {
	return SSSPReply{Src: uint32(a.A), Reached: int(r.Val.N1), MaxDist: r.Val.N2, Epoch: r.Epoch}
}

// ConnReplyFrom builds the st-connectivity wire reply.
func ConnReplyFrom(a Args, r Result) ConnReply {
	return ConnReply{U: uint32(a.A), V: uint32(a.B), Connected: r.Val.Flag,
		Hops: int32(r.Val.N1), Epoch: r.Epoch, Live: a.Live}
}

// ComponentsReplyFrom builds the components wire reply.
func ComponentsReplyFrom(r Result) ComponentsReply {
	return ComponentsReply{Components: int(r.Val.N1), LargestSize: int(r.Val.N2), Epoch: r.Epoch}
}

// ClusteringReplyFrom builds the clustering wire reply.
func ClusteringReplyFrom(r Result) ClusteringReply {
	return ClusteringReply{Triangles: r.Val.N1, Counted: int(r.Val.N2),
		AvgLocal: r.Val.F1, Epoch: r.Epoch}
}

// KHopReplyFrom builds the k-hop wire reply.
func KHopReplyFrom(a Args, r Result) KHopReply {
	return KHopReply{Src: uint32(a.A), K: uint32(a.B), Reached: int(r.Val.N1), Epoch: r.Epoch}
}

// PageRankReplyFrom builds the PageRank wire reply.
func PageRankReplyFrom(a Args, r Result) PageRankReply {
	return PageRankReply{Tol: math.Float64frombits(a.A), Iterations: int(r.Val.N1),
		MaxRank: r.Val.F1, SumRank: r.Val.F2, Epoch: r.Epoch}
}
