package qserve

import "sync/atomic"

// Admission is the executor pool's queue-or-shed gate, factored out so
// any query engine (the single-shard Executor here, the sharded fleet
// executor in internal/shard) enforces the same bounded-latency
// policy: up to maxConcurrent holders at once, up to maxQueue waiters,
// everything beyond shed immediately with ErrOverloaded.
type Admission struct {
	slots    chan struct{}
	maxQueue int64
	waiting  atomic.Int64
	served   atomic.Uint64
	shed     atomic.Uint64
}

// NewAdmission builds a gate for maxConcurrent concurrent holders and
// maxQueue waiters (both already defaulted by the caller).
func NewAdmission(maxConcurrent, maxQueue int) *Admission {
	return &Admission{
		slots:    make(chan struct{}, maxConcurrent),
		maxQueue: int64(maxQueue),
	}
}

// Capacity returns the concurrent-holder bound.
func (a *Admission) Capacity() int { return cap(a.slots) }

// Acquire takes a slot, queueing when none is free and there is queue
// room, shedding with ErrOverloaded otherwise.
func (a *Admission) Acquire() error {
	select {
	case a.slots <- struct{}{}:
		return nil
	default:
		if a.waiting.Add(1) > a.maxQueue {
			a.waiting.Add(-1)
			a.shed.Add(1)
			return ErrOverloaded
		}
		a.slots <- struct{}{}
		a.waiting.Add(-1)
		return nil
	}
}

// Release frees the slot and counts the query as served.
func (a *Admission) Release() {
	<-a.slots
	a.served.Add(1)
}

// Counters returns a point-in-time view of gate activity.
func (a *Admission) Counters() Counters {
	return Counters{
		Served:   a.served.Load(),
		Shed:     a.shed.Load(),
		Inflight: len(a.slots),
		Waiting:  int(a.waiting.Load()),
	}
}
