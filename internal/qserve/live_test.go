package qserve

import (
	"errors"
	"sync"
	"testing"

	"snapdyn/internal/edge"
	"snapdyn/internal/stream"
	"snapdyn/internal/xrand"
)

// TestLiveConnectivityAgreesWithSnapshots is the ISSUE's consistency
// oracle: drive churn (inserts and deletes, including tree-edge
// deletions — any alive edge can be picked, tree or not) through the
// ingest path, and after every refresh demand that the dynamic forest
// agrees exactly with the published snapshot's component structure. The
// snapshot path (cc label propagation) is the oracle; the forest is the
// system under test.
func TestLiveConnectivityAgreesWithSnapshots(t *testing.T) {
	mgr, _ := newManager(t, 8, 61)
	ex := New(mgr, Config{Undirected: true})
	ex.EnableLive()
	n := uint32(ex.NumVertices())

	r := xrand.New(7)
	// alive tracks only edges this test inserted, so deletes name exact
	// tuples the store can match; unique T keeps multiplicities aligned
	// between the tuple-matching store and the endpoint-matching forest.
	var alive []edge.Edge
	nextT := uint32(1 << 20)

	for round := 0; round < 8; round++ {
		var batch []edge.Update
		// Deletes first, drawn from edges alive before this round.
		dels := 20
		if dels > len(alive) {
			dels = len(alive)
		}
		for i := 0; i < dels; i++ {
			j := int(r.Uint32n(uint32(len(alive))))
			e := alive[j]
			alive[j] = alive[len(alive)-1]
			alive = alive[:len(alive)-1]
			batch = append(batch, edge.Update{Edge: e, Op: edge.Delete})
		}
		for i := 0; i < 30; i++ {
			u, v := r.Uint32n(n), r.Uint32n(n)
			if u == v {
				continue
			}
			e := edge.Edge{U: u, V: v, T: nextT}
			nextT++
			alive = append(alive, e)
			batch = append(batch, edge.Update{Edge: e, Op: edge.Insert})
		}
		if _, err := ex.Ingest(1, stream.Mirror(batch)); err != nil {
			t.Fatal(err)
		}

		// Quiesce: publish a snapshot containing exactly the applied
		// updates, then compare component structure.
		mgr.Refresh(0)
		snap, err := ex.Components()
		if err != nil {
			t.Fatal(err)
		}
		if live := ex.Live().Components(); live != snap.Components {
			t.Fatalf("round %d: live forest has %d components, snapshot %d", round, live, snap.Components)
		}
		for i := 0; i < 25; i++ {
			u, v := r.Uint32n(n), r.Uint32n(n)
			lr, err := ex.ConnectedLive(u, v)
			if err != nil {
				t.Fatal(err)
			}
			sr, err := ex.Connected(u, v)
			if err != nil {
				t.Fatal(err)
			}
			if lr.Connected != sr.Connected {
				t.Fatalf("round %d: ConnectedLive(%d,%d) = %v, snapshot says %v", round, u, v, lr.Connected, sr.Connected)
			}
			if !lr.Live {
				t.Fatalf("round %d: live reply not flagged live: %+v", round, lr)
			}
			if u != v && lr.Hops != -1 {
				t.Fatalf("round %d: live reply claims a hop count: %+v", round, lr)
			}
		}
	}
}

// TestLiveFreshness checks the headline property: a live query issued
// after an Ingest ack observes the batch with no refresh in between,
// while the snapshot path still serves the stale view.
func TestLiveFreshness(t *testing.T) {
	mgr, _ := newManager(t, 6, 67)
	ex := New(mgr, Config{Undirected: true})
	ex.EnableLive()
	n := uint32(ex.NumVertices())

	// Find a disconnected pair on the current snapshot.
	var u, v uint32
	found := false
	r := xrand.New(3)
	for i := 0; i < 10000 && !found; i++ {
		u, v = r.Uint32n(n), r.Uint32n(n)
		sr, err := ex.Connected(u, v)
		if err != nil {
			t.Fatal(err)
		}
		found = !sr.Connected
	}
	if !found {
		t.Skip("snapshot is fully connected; no pair to join")
	}

	link := []edge.Update{{Edge: edge.Edge{U: u, V: v, T: 1 << 21}, Op: edge.Insert}}
	if _, err := ex.Ingest(1, stream.Mirror(link)); err != nil {
		t.Fatal(err)
	}

	lr, err := ex.ConnectedLive(u, v)
	if err != nil {
		t.Fatal(err)
	}
	if !lr.Connected {
		t.Fatal("live query did not observe the acknowledged ingest")
	}
	sr, err := ex.Connected(u, v)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Connected {
		t.Fatal("snapshot query observed an unpublished update (no refresh ran)")
	}
	mgr.Refresh(0)
	sr, err = ex.Connected(u, v)
	if err != nil {
		t.Fatal(err)
	}
	if !sr.Connected {
		t.Fatal("published snapshot is missing the ingested edge")
	}
}

// TestLiveUnsupportedUntilEnabled pins the contract: live connectivity
// fails with ErrUnsupported before EnableLive — except the u == v quick
// answer, which needs no forest.
func TestLiveUnsupportedUntilEnabled(t *testing.T) {
	mgr, _ := newManager(t, 6, 71)
	ex := New(mgr, Config{Undirected: true})

	if _, err := ex.ConnectedLive(1, 2); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("ConnectedLive before EnableLive: err = %v, want ErrUnsupported", err)
	}
	r, err := ex.ConnectedLive(5, 5)
	if err != nil {
		t.Fatalf("reflexive live query needs no forest, got %v", err)
	}
	if !r.Connected || r.Hops != 0 {
		t.Fatalf("reflexive live reply %+v", r)
	}

	ex.EnableLive()
	if _, err := ex.ConnectedLive(1, 2); err != nil {
		t.Fatalf("ConnectedLive after EnableLive: %v", err)
	}
}

// TestLiveNotCachedAndZeroAlloc pins two guarantees at once: live
// answers never touch the result cache (the forest mutates continuously
// and is pinned to no snapshot), and the steady-state live query path —
// admission, two root walks under an RLock, reply by value — allocates
// nothing.
func TestLiveNotCachedAndZeroAlloc(t *testing.T) {
	mgr, _ := newManager(t, 8, 73)
	ex := New(mgr, Config{Undirected: true, MaxConcurrent: 1, CacheBytes: 8 << 20})
	ex.EnableLive()

	res, err := ex.Query(SpecConnected, Args{A: 1, B: 2, Live: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache != CacheLive {
		t.Fatalf("live query disposition = %v, want CacheLive", res.Cache)
	}
	if _, err := ex.ConnectedLive(1, 2); err != nil {
		t.Fatal(err)
	}
	if c := ex.Cache().Counters(); c.Hits != 0 || c.Misses != 0 || c.Bytes != 0 {
		t.Fatalf("live queries touched the cache: %+v", c)
	}

	if n := testing.AllocsPerRun(100, func() {
		if _, err := ex.ConnectedLive(1, 2); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Fatalf("steady-state live query allocates %.1f objects/op, want 0", n)
	}
}

// TestLiveConnHammer interleaves live queries with gated ingest and
// refreshes under the race detector: two ingesters churning disjoint
// vertex stripes (so their alive-lists and timestamps never collide),
// three queriers mixing live and snapshot reads, one refresher. The
// values read mid-flight are unordered and unchecked; the test's
// assertions are the race detector itself plus exact live/snapshot
// agreement after the final quiesce.
func TestLiveConnHammer(t *testing.T) {
	mgr, _ := newManager(t, 8, 79)
	ex := New(mgr, Config{Undirected: true, MaxConcurrent: 4, MaxQueue: 1 << 20})
	ex.EnableLive()
	n := uint32(ex.NumVertices())

	const rounds = 60
	var wg, refWG sync.WaitGroup
	for ing := 0; ing < 2; ing++ {
		wg.Add(1)
		go func(stripe uint32) {
			defer wg.Done()
			// Stripe s owns vertices [s*n/2, (s+1)*n/2) and timestamps
			// congruent to s mod 2 — no cross-goroutine tuple collisions.
			lo, span := stripe*n/2, n/2
			r := xrand.New(uint64(100 + stripe))
			var alive []edge.Edge
			nextT := uint32(1<<22) + stripe
			for i := 0; i < rounds; i++ {
				var batch []edge.Update
				if len(alive) > 0 && r.Uint32n(3) == 0 {
					j := int(r.Uint32n(uint32(len(alive))))
					e := alive[j]
					alive[j] = alive[len(alive)-1]
					alive = alive[:len(alive)-1]
					batch = append(batch, edge.Update{Edge: e, Op: edge.Delete})
				}
				for k := 0; k < 5; k++ {
					u, v := lo+r.Uint32n(span), lo+r.Uint32n(span)
					if u == v {
						continue
					}
					e := edge.Edge{U: u, V: v, T: nextT}
					nextT += 2
					alive = append(alive, e)
					batch = append(batch, edge.Update{Edge: e, Op: edge.Insert})
				}
				if _, err := ex.Ingest(1, stream.Mirror(batch)); err != nil {
					t.Error(err)
					return
				}
			}
		}(uint32(ing))
	}
	for q := 0; q < 3; q++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := xrand.New(seed)
			for i := 0; i < 4*rounds; i++ {
				u, v := r.Uint32n(n), r.Uint32n(n)
				switch i % 4 {
				case 0:
					if _, err := ex.ConnectedLive(u, v); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if _, err := ex.Connected(u, v); err != nil {
						t.Error(err)
						return
					}
				case 2:
					if _, err := ex.Components(); err != nil {
						t.Error(err)
						return
					}
				default:
					ex.Live().Components()
				}
			}
		}(uint64(200 + q))
	}
	done := make(chan struct{})
	refWG.Add(1)
	go func() {
		defer refWG.Done()
		for {
			select {
			case <-done:
				return
			default:
				mgr.Refresh(0)
			}
		}
	}()
	wg.Wait()
	close(done)
	refWG.Wait()

	// Quiesce: one final refresh, then the forest and the snapshot must
	// agree exactly.
	mgr.Refresh(0)
	snap, err := ex.Components()
	if err != nil {
		t.Fatal(err)
	}
	if live := ex.Live().Components(); live != snap.Components {
		t.Fatalf("after quiesce: live forest has %d components, snapshot %d", live, snap.Components)
	}
	r := xrand.New(5)
	for i := 0; i < 50; i++ {
		u, v := r.Uint32n(n), r.Uint32n(n)
		lr, err := ex.ConnectedLive(u, v)
		if err != nil {
			t.Fatal(err)
		}
		sr, err := ex.Connected(u, v)
		if err != nil {
			t.Fatal(err)
		}
		if lr.Connected != sr.Connected {
			t.Fatalf("after quiesce: ConnectedLive(%d,%d) = %v, snapshot %v", u, v, lr.Connected, sr.Connected)
		}
	}
}
