package qserve

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"snapdyn/internal/cc"
	"snapdyn/internal/dyngraph"
	"snapdyn/internal/edge"
	"snapdyn/internal/qcache"
	"snapdyn/internal/snapmgr"
	"snapdyn/internal/sssp"
	"snapdyn/internal/traversal"
)

// verifyCachedEntries recomputes up to limit ready entries of gen
// uncached against gen's own pinned snapshot — the bit-identity oracle:
// a cached reply must be indistinguishable from running the kernel on
// the exact snapshot the entry was computed from, no matter how many
// refreshes have happened since.
func verifyCachedEntries(t *testing.T, gen *qcache.Gen, limit int) int {
	t.Helper()
	if gen == nil {
		return 0
	}
	view, ok := gen.ID().(*snapmgr.View)
	if !ok || view == nil {
		t.Fatalf("generation identity %T is not a view", gen.ID())
	}
	g := view.G
	checked := 0
	gen.Range(func(k qcache.Key, v qcache.Value) bool {
		switch k.Kind {
		case qcache.KindBFS:
			want := traversal.BFS(1, g, uint32(k.A))
			if int64(want.Reached) != v.N1 || int64(want.Levels) != v.N2 {
				t.Errorf("cached BFS(%d) = (%d,%d), uncached on pinned view = (%d,%d)",
					k.A, v.N1, v.N2, want.Reached, want.Levels)
				return false
			}
			for i := range v.Levels {
				if v.Levels[i] != want.Level[i] {
					t.Errorf("cached BFS(%d) level[%d] = %d, uncached %d", k.A, i, v.Levels[i], want.Level[i])
					return false
				}
			}
		case qcache.KindSSSP:
			dist := sssp.Run(g, uint32(k.A), sssp.Options{Workers: 1, Delta: int64(k.B)})
			for i := range v.Dist {
				if v.Dist[i] != dist[i] {
					t.Errorf("cached SSSP(%d) dist[%d] = %d, uncached %d", k.A, i, v.Dist[i], dist[i])
					return false
				}
			}
		case qcache.KindConnected:
			conn, hops := traversal.STConnected(1, g, uint32(k.A), uint32(k.B))
			if conn != v.Flag || int64(hops) != v.N1 {
				t.Errorf("cached Connected(%d,%d) = (%v,%d), uncached (%v,%d)",
					k.A, k.B, v.Flag, v.N1, conn, hops)
				return false
			}
		case qcache.KindComponents:
			comp := cc.Components(1, g)
			if int64(cc.Count(comp)) != v.N1 {
				t.Errorf("cached Components count = %d, uncached %d", v.N1, cc.Count(comp))
				return false
			}
		}
		checked++
		return checked < limit
	})
	return checked
}

// TestCacheHammer is the tentpole -race test: concurrent cached queries
// over a hot source pool while gated ingest keeps the store dirty and
// the background auto-refresher republishes real snapshots — with a
// verifier thread continuously proving every cached entry bit-identical
// to an uncached kernel run on the entry's own pinned snapshot, even
// for generations whose snapshot is no longer the published one.
func TestCacheHammer(t *testing.T) {
	mgr, edges := newManager(t, 9, 23)
	if !mgr.Start(snapmgr.Policy{MaxDirty: 256, MaxAge: 2 * time.Millisecond,
		Poll: time.Millisecond, Workers: 2}) {
		t.Fatal("auto-refresher failed to start")
	}
	defer mgr.Stop()
	ex := New(mgr, Config{Undirected: true, MaxConcurrent: 4, MaxQueue: 1 << 20,
		CacheBytes: 16 << 20})

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Queriers over a small hot pool, so repeats (and therefore hits and
	// coalesces) actually happen within each generation's lifetime.
	for q := 0; q < 4; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			src := uint32(q)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var err error
				switch i % 4 {
				case 0, 1:
					_, err = ex.BFS(src % 16)
				case 2:
					_, err = ex.SSSP(src%16, 0)
				default:
					_, err = ex.Connected(src%16, (src+5)%16)
				}
				if err != nil && !errors.Is(err, ErrOverloaded) {
					t.Errorf("query failed: %v", err)
					return
				}
				src = src*1664525 + 1013904223
			}
		}(q)
	}

	// Verifier: live generations must answer bit-identically to uncached
	// execution on their pinned snapshot, and must never be ahead of the
	// manager.
	verified := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			gen := ex.cache.Current()
			verified += verifyCachedEntries(t, gen, 3)
			if gen != nil && gen.Epoch() > mgr.Epoch() {
				t.Errorf("generation epoch %d ahead of manager %d", gen.Epoch(), mgr.Epoch())
				return
			}
		}
	}()

	// Ingest rounds on the main goroutine: fresh arcs with new time
	// labels, each round crossing the dirty threshold so real refreshes
	// keep retiring generations mid-flight.
	for round := 0; round < 30; round++ {
		var batch []edge.Update
		for i := 0; i < 200; i++ {
			e := edges[(round*200+i)%len(edges)]
			batch = append(batch,
				edge.Update{Edge: edge.Edge{U: e.U, V: e.V, T: e.T + uint32(round) + 1}, Op: edge.Insert},
				edge.Update{Edge: edge.Edge{U: e.V, V: e.U, T: e.T + uint32(round) + 1}, Op: edge.Insert})
		}
		mgr.Ingest(func(s *dyngraph.Tracked) { s.ApplyBatch(0, batch) })
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if verified == 0 {
		t.Fatal("verifier never checked a cached entry")
	}

	c := ex.cache.Counters()
	if c.Hits == 0 || c.Misses == 0 {
		t.Fatalf("hammer exercised no cache traffic: %+v", c)
	}

	// Entries never outlive their snapshot: after one more real refresh,
	// the next query's generation is pinned to the new published view and
	// holds only what was computed against it.
	oldGen := ex.cache.Current()
	mgr.Ingest(func(s *dyngraph.Tracked) {
		s.ApplyBatch(0, []edge.Update{
			{Edge: edge.Edge{U: 1, V: 2, T: 9999}, Op: edge.Insert},
			{Edge: edge.Edge{U: 2, V: 1, T: 9999}, Op: edge.Insert},
		})
	})
	deadline := time.Now().Add(10 * time.Second)
	for mgr.View() == oldGen.ID().(*snapmgr.View) {
		if time.Now().After(deadline) {
			t.Fatal("refresher never republished after ingest")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := ex.BFS(1); err != nil {
		t.Fatal(err)
	}
	newGen := ex.cache.Current()
	if newGen == oldGen {
		t.Fatal("generation survived a real snapshot swap")
	}
	if newGen.ID().(*snapmgr.View) != mgr.View() {
		t.Fatal("live generation not pinned to the published view")
	}
}

// TestCacheIdentityInvalidation pins the invalidation contract from
// doc.go: a no-op refresh (epoch bump, identical view pointer) keeps
// every entry alive and hitting; a real refresh (new view) retires the
// generation, and the next identical query misses and recomputes on the
// new snapshot.
func TestCacheIdentityInvalidation(t *testing.T) {
	mgr, _ := newManager(t, 8, 29)
	ex := New(mgr, Config{Undirected: true, MaxConcurrent: 1, CacheBytes: 8 << 20})

	if _, err := ex.BFS(1); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.SSSP(1, 0); err != nil {
		t.Fatal(err)
	}
	gen := ex.cache.Current()
	if gen == nil || gen.Len() != 2 {
		t.Fatalf("expected 2 cached entries, got %+v", gen.Len())
	}

	// No-op refresh: nothing dirty, so the manager republishes the same
	// view under a bumped epoch. The cache keys by view identity, so both
	// entries must survive and hit.
	view := mgr.View()
	epoch := mgr.Epoch()
	mgr.Refresh(0)
	if mgr.Epoch() != epoch+1 {
		t.Fatalf("refresh did not bump epoch: %d then %d", epoch, mgr.Epoch())
	}
	if mgr.View() != view {
		t.Fatal("clean refresh replaced the view pointer; identity test needs a no-op republish")
	}
	got, err := ex.BFS(1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != epoch+1 {
		t.Fatalf("post-refresh reply epoch = %d, want %d", got.Epoch, epoch+1)
	}
	c := ex.cache.Counters()
	if c.Hits != 1 {
		t.Fatalf("hit across no-op refresh not counted: %+v", c)
	}
	if ex.cache.Current() != gen {
		t.Fatal("no-op refresh replaced the generation")
	}

	// Real refresh: mutate and republish. The old generation is retired
	// wholesale; the same query misses and recomputes.
	mgr.Ingest(func(s *dyngraph.Tracked) {
		s.ApplyBatch(0, []edge.Update{
			{Edge: edge.Edge{U: 3, V: 200, T: 77}, Op: edge.Insert},
			{Edge: edge.Edge{U: 200, V: 3, T: 77}, Op: edge.Insert},
		})
	})
	mgr.Refresh(0)
	if mgr.View() == view {
		t.Fatal("dirty refresh republished the same view pointer")
	}
	missesBefore := ex.cache.Counters().Misses
	if _, err := ex.BFS(1); err != nil {
		t.Fatal(err)
	}
	nc := ex.cache.Counters()
	if nc.Misses != missesBefore+1 || nc.Hits != 1 {
		t.Fatalf("real refresh did not invalidate: %+v", nc)
	}
	ngen := ex.cache.Current()
	if ngen == gen || ngen.Len() != 1 {
		t.Fatalf("new generation should hold exactly the recomputed entry, got len %d", ngen.Len())
	}
	if verifyCachedEntries(t, ngen, 8) != 1 {
		t.Fatal("post-refresh entry not verifiable")
	}
}

// TestCacheHitZeroAlloc is the allocation-regression guard for the hit
// path: once a result is cached, repeat BFS, SSSP, and connectivity
// queries allocate zero objects per op — no scratch checkout, no
// closure, no boxing, reply built from the immutable cached value.
func TestCacheHitZeroAlloc(t *testing.T) {
	mgr, _ := newManager(t, 10, 31)
	ex := New(mgr, Config{Undirected: true, MaxConcurrent: 1, CacheBytes: 64 << 20})

	warm := func() {
		if _, err := ex.BFS(1); err != nil {
			t.Fatal(err)
		}
		if _, err := ex.SSSP(1, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := ex.Connected(1, 2); err != nil {
			t.Fatal(err)
		}
	}
	warm()
	warm()
	if c := ex.cache.Counters(); c.Hits < 3 {
		t.Fatalf("warm-up did not hit the cache: %+v", c)
	}

	if n := testing.AllocsPerRun(50, func() {
		if _, err := ex.BFS(1); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Fatalf("cache-hit BFS allocates %.1f objects/op, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() {
		if _, err := ex.SSSP(1, 0); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Fatalf("cache-hit SSSP allocates %.1f objects/op, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() {
		if _, err := ex.Connected(1, 2); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Fatalf("cache-hit connectivity allocates %.1f objects/op, want 0", n)
	}
}

// TestCachedStatsWireFields asserts the cache counters ride the /stats
// reply: hits, misses, bytes present after traffic; all-zero with the
// cache disabled.
func TestCachedStatsWireFields(t *testing.T) {
	mgr, _ := newManager(t, 8, 37)
	ex := New(mgr, Config{Undirected: true, MaxConcurrent: 1, CacheBytes: 8 << 20})
	for i := 0; i < 2; i++ {
		if _, err := ex.BFS(1); err != nil {
			t.Fatal(err)
		}
	}
	st := ex.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 1 || st.CacheBytes <= 0 {
		t.Fatalf("stats cache fields = hits %d misses %d bytes %d, want 1/1/>0",
			st.CacheHits, st.CacheMisses, st.CacheBytes)
	}
	m := ex.Metrics()
	if m.CacheHits != 1 || m.CacheMisses != 1 || m.CacheBytes != st.CacheBytes {
		t.Fatalf("metrics cache fields inconsistent with stats: %+v", m)
	}

	off := New(mgr, Config{Undirected: true, MaxConcurrent: 1})
	if _, err := off.BFS(1); err != nil {
		t.Fatal(err)
	}
	if st := off.Stats(); st.CacheHits != 0 || st.CacheMisses != 0 || st.CacheBytes != 0 {
		t.Fatalf("disabled cache reported traffic: %+v", st)
	}
}

// TestMinEpochGatingWithCache pins the freshness contract on the hit
// path: a warmed cache entry does not let a query dodge its minEpoch —
// the handler gates on epoch before the lookup, so an unreachable
// minEpoch still 503s even though the answer sits in the cache, and a
// satisfied minEpoch is served from the cache.
func TestMinEpochGatingWithCache(t *testing.T) {
	mgr, _ := newManager(t, 8, 41)
	ex := New(mgr, Config{Undirected: true, MaxConcurrent: 1, CacheBytes: 8 << 20})
	srv := NewServer(ex, true, 1)
	srv.SetStaleWait(20 * time.Millisecond)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := get("/query/bfs?src=1"); code != http.StatusOK {
		t.Fatalf("warming query = %d", code)
	}
	if c := ex.cache.Counters(); c.Misses != 1 {
		t.Fatalf("warming query did not populate the cache: %+v", c)
	}

	// The entry is cached, but a future minEpoch must still shed: hit on
	// a stale snapshot is stale regardless of how cheap it is.
	future := mgr.Epoch() + 100
	if code := get(fmt.Sprintf("/query/bfs?src=1&minEpoch=%d", future)); code != http.StatusServiceUnavailable {
		t.Fatalf("unreachable minEpoch on cached entry = %d, want 503", code)
	}

	// A satisfiable minEpoch serves the cached value.
	hits := ex.cache.Counters().Hits
	if code := get(fmt.Sprintf("/query/bfs?src=1&minEpoch=%d", mgr.Epoch())); code != http.StatusOK {
		t.Fatalf("satisfiable minEpoch = %d, want 200", code)
	}
	if c := ex.cache.Counters(); c.Hits != hits+1 {
		t.Fatalf("satisfiable minEpoch did not hit the cache: %+v", c)
	}
}
