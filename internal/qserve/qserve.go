// Package qserve is the query-serving layer over the incremental
// snapshot pipeline: a fixed-capacity executor pool that runs analysis
// queries against whatever snapshot the manager currently publishes,
// with per-worker kernel scratch checked out from a free list instead
// of allocated per request.
//
// Query kinds are registered, not hand-plumbed: each kind appears once
// in this package's registry (see registry.go) with its wire name,
// parameter decoding, cache-key derivation, kernel, and reply encoding,
// and the generic (*Executor).Query path runs every kind through the
// same admission, validation, caching, and scratch-pooling flow. The
// registered kinds are BFS, delta-stepping SSSP, st-connectivity
// (snapshot or live), connected components, clustering coefficients,
// k-hop neighborhood size, and PageRank; stats and the offline sampled
// betweenness job sit beside the registry (no caching, no admission
// semantics to share).
//
// Consistency comes in two models. Snapshot queries answer from the
// immutable published view — repeatable until the next refresh, and
// cacheable by snapshot identity. Live st-connectivity (Connected with
// live=1 after EnableLive) answers from a dynamic spanning forest
// maintained synchronously by the ingest path, so it observes updates
// the next snapshot has not published yet; at quiesce — after a refresh
// with no ingest racing it — the forest and the snapshot's components
// agree exactly. Live answers are never cached.
//
// Admission is queue-or-shed: up to MaxConcurrent queries execute at
// once, up to MaxQueue more wait their turn, and anything beyond that
// is shed immediately with ErrOverloaded — bounded latency under
// overload instead of an unbounded goroutine pile-up.
//
// Scratch reuse across epochs is safe by construction: a
// traversal.Scratch re-validates itself by graph shape (n, m) and an
// sssp.Scratch keys its cached weighted view by graph pointer, so a
// scratch that last served an older snapshot transparently rebuilds
// exactly the state the new snapshot needs. The free list tags each
// scratch with the epoch it last served so that revalidation has one
// hook point (and so tests can observe reuse).
package qserve

import (
	"errors"
	"time"

	"snapdyn/internal/cc"
	"snapdyn/internal/cluster"
	"snapdyn/internal/dyngraph"
	"snapdyn/internal/edge"
	"snapdyn/internal/par"
	"snapdyn/internal/qcache"
	"snapdyn/internal/snapmgr"
	"snapdyn/internal/sssp"
	"snapdyn/internal/traversal"
)

// ErrOverloaded is returned when a query is shed: MaxConcurrent queries
// are executing and MaxQueue more are already waiting.
var ErrOverloaded = errors.New("qserve: overloaded, query shed")

// ErrBadVertex is returned when a query names a vertex outside the
// snapshot's vertex set.
var ErrBadVertex = errors.New("qserve: vertex out of range")

// ErrStale is returned when a query demands a minimum snapshot epoch
// (read-your-writes against an ingest ack) that did not publish within
// the staleness wait — the serving layer's 503, retryable.
var ErrStale = errors.New("qserve: snapshot older than requested minEpoch")

// Config sizes the executor pool.
type Config struct {
	// Workers is the kernel parallelism of each query; <= 0 means 1
	// (serve many queries concurrently rather than one query on many
	// cores — the serving default).
	Workers int
	// MaxConcurrent bounds the queries executing at once; <= 0 means
	// GOMAXPROCS.
	MaxConcurrent int
	// MaxQueue bounds the queries waiting for a slot; <= 0 means
	// 2*MaxConcurrent. Beyond it, queries are shed with ErrOverloaded.
	MaxQueue int
	// Undirected declares the managed snapshots symmetric, enabling the
	// direction-opt traversal strategy for BFS-shaped queries.
	Undirected bool
	// CacheBytes is the result-cache payload budget; <= 0 disables
	// caching (every query recomputes). The cache is keyed by snapshot
	// identity — the published View pointer, never the epoch number —
	// so no-op refreshes keep entries alive and a real refresh retires
	// the whole generation with its snapshot (see internal/qcache).
	CacheBytes int64
}

// WithDefaults fills unset fields with the serving defaults.
func (c Config) WithDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = par.MaxWorkers()
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 2 * c.MaxConcurrent
	}
	return c
}

// scratchSet is one pooled unit of per-query kernel state: the
// traversal arena + result, the SSSP arena, and a persistent
// st-connectivity early-exit hook (bound once so the steady-state
// query path allocates no closures).
type scratchSet struct {
	trav *traversal.Scratch
	res  traversal.Result
	ssp  *sssp.Scratch
	// sspStream is the compressed-layout SSSP arena; nil until the first
	// SSSP against a LayoutCompressed snapshot.
	sspStream *sssp.StreamScratch
	src       [1]uint32

	// comp and sizes are the component query's label array and census,
	// pool-owned so Components allocates nothing per request. queue is
	// the compressed-layout component labeler's BFS queue.
	comp  []uint32
	sizes []int
	queue []uint32

	connTarget uint32
	connHook   func(int32, int) bool

	// khopK/khopReached drive the k-hop neighborhood query: a pooled
	// level-end hook that counts discoveries through level k and stops
	// the traversal there.
	khopK       int32
	khopReached int
	khopHook    func(int32, int) bool

	// clus is the triangle-counting arena (lazily built on the first
	// clustering query, then reused across epochs — it resizes itself
	// to the snapshot's shape). clusMap is the original-id → layout-id
	// aggregation order, bound once over clusView so the steady-state
	// clustering query allocates no closures.
	clus     *cluster.Scratch
	clusView *snapmgr.View
	clusMap  func(uint32) uint32

	// PageRank push-residual state (see kernels.go): per-vertex rank
	// and residual (residual as float bits for atomic CAS updates), a
	// per-frontier-vertex push amount, a level tag that lets the owner
	// of a frontier vertex harvest its residual exactly once per
	// round, and the all-vertices source list. The hooks are bound
	// once so the steady-state query path allocates no closures.
	prRank     []float64
	prResid    []uint64
	prPush     []float64
	prClaim    []int32
	prSrcs     []uint32
	prLevel    int32
	prTol      float64
	prView     *snapmgr.View
	prRelax    func(u, v, t uint32) bool
	prLevelEnd func(int32, int) bool

	// epoch is the snapshot version this set last served. Kernel
	// scratches self-revalidate (traversal by (n, m), sssp by graph
	// pointer), so nothing is rebuilt eagerly on an epoch change; the
	// tag exists so revalidate has a place to hang any future cache
	// that is keyed by epoch rather than by shape.
	epoch uint64
}

func newScratchSet() *scratchSet {
	s := &scratchSet{trav: traversal.NewScratch(), ssp: sssp.NewScratch()}
	s.connHook = func(int32, int) bool {
		return s.res.Level[s.connTarget] == traversal.NotVisited
	}
	s.khopHook = func(level int32, discovered int) bool {
		if level <= s.khopK {
			s.khopReached += discovered
		}
		return level < s.khopK
	}
	s.clusMap = func(orig uint32) uint32 { return translate(s.clusView, orig) }
	s.prRelax = prRelaxStep(s)
	s.prLevelEnd = func(level int32, discovered int) bool {
		s.prLevel = level + 1
		return level < prMaxLevels
	}
	return s
}

// revalidate prepares the set for a snapshot at the given epoch. The
// kernel scratches detect shape/graph changes on their own, so this is
// only the epoch tag today.
func (s *scratchSet) revalidate(epoch uint64) { s.epoch = epoch }

// Counters reports executor activity. Served counts completed queries,
// Shed the ones refused with ErrOverloaded, Inflight and Waiting the
// instantaneous occupancy.
type Counters struct {
	Served   uint64 `json:"served"`
	Shed     uint64 `json:"shed"`
	Inflight int    `json:"inflight"`
	Waiting  int    `json:"waiting"`
}

// Engine is the query surface the HTTP server (and any other frontend)
// serves: the generic registry-driven Query entry point, the legacy
// typed methods (thin wrappers over Query), plus ingest, admission
// counters, and refresh health. The single-snapshot Executor
// implements it, and so does the sharded fleet executor in
// internal/shard — one facade, two engines.
type Engine interface {
	// Query runs one registered query kind through the engine's
	// admission, validation, cache, and kernel-dispatch flow. Kinds an
	// engine cannot serve fail with ErrUnsupported.
	Query(sp *Spec, a Args) (Result, error)
	BFS(src uint32) (BFSReply, error)
	SSSP(src uint32, delta int64) (SSSPReply, error)
	Connected(u, v uint32) (ConnReply, error)
	Components() (ComponentsReply, error)
	Stats() StatsReply
	Counters() Counters
	// NumVertices is the fixed vertex-set size, for ingest validation.
	NumVertices() int
	// Ingest applies a batch through the engine's refresh gate(s) —
	// or, when a durable ingest path is installed, through the
	// group-commit WAL — returning the ack epoch: the snapshot epoch
	// guaranteed to contain the batch. On the durable path the call
	// returns only after the batch is fsynced and applied; an error
	// means nothing was acknowledged.
	Ingest(workers int, batch []edge.Update) (uint64, error)
	// WaitEpoch blocks until the published epoch reaches min (timeout
	// <= 0 waits forever), returning the epoch observed — the
	// read-your-writes wait paired with the ack epoch from Ingest.
	WaitEpoch(min uint64, timeout time.Duration) (uint64, error)
	// Metrics aggregates refresh activity and current lag.
	Metrics() snapmgr.Metrics
}

// Executor runs queries against mgr.Current() with pooled scratch and
// bounded admission. All methods are safe for concurrent use.
type Executor struct {
	mgr   *snapmgr.Manager
	cfg   Config
	adm   *Admission
	free  chan *scratchSet
	cache *qcache.Cache // nil when Config.CacheBytes <= 0

	// ingest, when set (SetIngest), replaces the direct gated apply
	// with a durable commit path.
	ingest func(batch []edge.Update) (uint64, error)

	// live, when set (EnableLive), is the dynamic spanning forest the
	// ingest path maintains for between-refresh connectivity queries.
	live *Live
}

var _ Engine = (*Executor)(nil)

// New returns an executor over the manager's published snapshots.
func New(mgr *snapmgr.Manager, cfg Config) *Executor {
	cfg = cfg.WithDefaults()
	return &Executor{
		mgr:   mgr,
		cfg:   cfg,
		adm:   NewAdmission(cfg.MaxConcurrent, cfg.MaxQueue),
		free:  make(chan *scratchSet, cfg.MaxConcurrent),
		cache: qcache.New(cfg.CacheBytes),
	}
}

// Cache returns the executor's result cache (nil when disabled) — the
// observation hook tests and the workload harness verify through.
func (e *Executor) Cache() *qcache.Cache { return e.cache }

// Manager returns the snapshot manager the executor serves from.
func (e *Executor) Manager() *snapmgr.Manager { return e.mgr }

// NumVertices returns the managed store's fixed vertex-set size.
func (e *Executor) NumVertices() int { return e.mgr.Store().NumVertices() }

// Ingest applies a batch and returns the ack epoch: by default through
// the manager's refresh gate (volatile, synchronous), or through the
// durable group-commit path when one is installed with SetIngest. When
// live connectivity is enabled the same batch then updates the dynamic
// forest, so a live query issued after this call returns observes the
// batch without waiting for a refresh. Safe concurrently with queries
// and the auto-refresher.
func (e *Executor) Ingest(workers int, batch []edge.Update) (uint64, error) {
	var epoch uint64
	if e.ingest != nil {
		var err error
		epoch, err = e.ingest(batch)
		if err != nil {
			return epoch, err
		}
	} else {
		epoch = e.mgr.IngestEpoch(func(t *dyngraph.Tracked) { t.ApplyBatch(workers, batch) })
	}
	if e.live != nil {
		e.live.Apply(batch)
	}
	return epoch, nil
}

// SetIngest installs a replacement ingest path (the durable
// group-commit front, internal/durable). Call before serving; not
// synchronized with in-flight Ingest calls.
func (e *Executor) SetIngest(fn func(batch []edge.Update) (uint64, error)) { e.ingest = fn }

// WaitEpoch blocks until the manager publishes epoch min, for
// read-your-writes against an ingest ack.
func (e *Executor) WaitEpoch(min uint64, timeout time.Duration) (uint64, error) {
	return e.mgr.WaitEpoch(min, timeout)
}

// Metrics returns the manager's refresh metrics overlaid with the
// result-cache counters (zeros when caching is disabled).
func (e *Executor) Metrics() snapmgr.Metrics {
	m := e.mgr.Metrics()
	ctr := e.cache.Counters()
	m.CacheHits = ctr.Hits
	m.CacheMisses = ctr.Misses
	m.CacheCoalesced = ctr.Coalesced
	m.CacheEvictions = ctr.Evictions
	m.CacheBytes = ctr.Bytes
	return m
}

// Counters returns a point-in-time view of executor activity.
func (e *Executor) Counters() Counters { return e.adm.Counters() }

// checkout admits the query (queue-or-shed), then hands out the current
// snapshot view (in whatever storage layout the manager publishes), its
// epoch lower bound, and — when caching is on — the snapshot's cache
// generation. No scratch is taken here: a cache hit answers from the
// generation without ever touching the scratch pool (the 0-alloc hit
// path); only a miss checks a set out via scratch().
func (e *Executor) checkout() (*snapmgr.View, uint64, *qcache.Gen, error) {
	if err := e.adm.Acquire(); err != nil {
		return nil, 0, nil, err
	}
	// Epoch first, then the view: the snapshot served is at least this
	// fresh (publication stores the view before bumping the epoch).
	epoch := e.mgr.Epoch()
	v := e.mgr.View()
	return v, epoch, e.cache.ForView(v, epoch), nil
}

// scratch checks a set out of the pool. Callers must hold an admission
// slot: scratch objects are only ever created while holding one and the
// free list is slot-capacity sized, so at most MaxConcurrent sets exist
// and unscratch never drops one.
func (e *Executor) scratch(epoch uint64) *scratchSet {
	var s *scratchSet
	select {
	case s = <-e.free:
	default:
		s = newScratchSet()
	}
	s.revalidate(epoch)
	return s
}

// unscratch returns a set to the pool. Runs before the caller's
// deferred slot release, so a queued query that wakes always finds a
// warm set on the free list.
func (e *Executor) unscratch(s *scratchSet) { e.free <- s }

// translate maps an original vertex id into the view's layout space:
// the identity for plain and compressed views, the held permutation for
// reordered ones. Queries accept and report original ids only; the
// layout is invisible at the query surface.
func translate(v *snapmgr.View, u uint32) uint32 {
	if v.Perm != nil {
		return v.Perm[u]
	}
	return u
}

// strategy picks the traversal engine for BFS-shaped queries.
func (e *Executor) strategy() traversal.Strategy {
	if e.cfg.Undirected {
		return traversal.DirectionOpt
	}
	return traversal.TopDown
}

// BFSReply summarizes one BFS query.
type BFSReply struct {
	Src     uint32 `json:"src"`
	Reached int    `json:"reached"`
	Levels  int    `json:"levels"`
	Epoch   uint64 `json:"epoch"`
}

// BFS runs a breadth-first search from src over the current snapshot,
// whatever its storage layout: reordered views translate src through
// the held permutation, compressed views traverse by streaming decode
// (traversal.RunStream). The reply's aggregates are id-invariant, so
// every layout answers bit-identically. With caching on, a repeat src
// against the same published snapshot is served from the generation
// without touching the scratch pool, and concurrent identical misses
// coalesce onto one kernel execution.
func (e *Executor) BFS(src uint32) (BFSReply, error) {
	a := Args{A: uint64(src)}
	r, err := e.Query(SpecBFS, a)
	if err != nil {
		return BFSReply{}, err
	}
	return BFSReplyFrom(a, r), nil
}

// bfsValue executes the BFS kernel against the pinned view. keep copies
// the level array out of the pooled scratch into an immutable slice for
// the cache; the uncached path skips the copy and stays allocation-free.
func (e *Executor) bfsValue(v *snapmgr.View, epoch uint64, src uint32, keep bool) qcache.Value {
	s := e.scratch(epoch)
	defer e.unscratch(s)
	s.src[0] = translate(v, src)
	opt := traversal.Options{Workers: e.cfg.Workers, Strategy: e.strategy()}
	if v.C != nil {
		traversal.RunStream(v.C, s.src[:1], opt, s.trav, &s.res)
	} else {
		traversal.Run(v.G, s.src[:1], opt, s.trav, &s.res)
	}
	val := qcache.Value{N1: int64(s.res.Reached), N2: int64(s.res.Levels)}
	if keep {
		val.Levels = append([]int32(nil), s.res.Level...)
	}
	return val
}

// SSSPReply summarizes one delta-stepping shortest-paths query.
type SSSPReply struct {
	Src     uint32 `json:"src"`
	Reached int    `json:"reached"`
	// MaxDist is the largest finite distance (the weighted eccentricity
	// of src); 0 when nothing beyond src is reachable.
	MaxDist int64  `json:"maxDist"`
	Epoch   uint64 `json:"epoch"`
}

// SSSP runs delta-stepping shortest paths from src with the arc time
// labels as weights (delta <= 0 picks the heuristic bucket width).
//
// The pooled scratch caches its weighted graph view keyed by (graph,
// delta): requests that agree on delta (in particular the <= 0
// default) reuse it across the epoch, while a delta differing from
// the scratch's cached one pays a full O(m) view rebuild inside the
// request. Serving workloads should therefore omit delta (or agree on
// one); per-request delta tuning is supported but priced accordingly.
// Under LayoutCompressed the query runs the streaming Bellman-Ford
// kernel (sssp.RunStream) instead of delta-stepping — distances are
// identical; delta is ignored there (the stream kernel has no buckets).
func (e *Executor) SSSP(src uint32, delta int64) (SSSPReply, error) {
	a := Args{A: uint64(src), B: uint64(delta)}
	r, err := e.Query(SpecSSSP, a)
	if err != nil {
		return SSSPReply{}, err
	}
	return SSSPReplyFrom(a, r), nil
}

// ssspValue executes the shortest-paths kernel against the pinned view;
// keep copies the distance array out for the cache.
func (e *Executor) ssspValue(v *snapmgr.View, epoch uint64, src uint32, delta int64, keep bool) qcache.Value {
	s := e.scratch(epoch)
	defer e.unscratch(s)
	var dist []int64
	if v.C != nil {
		if s.sspStream == nil {
			s.sspStream = sssp.NewStreamScratch()
		}
		dist = sssp.RunStream(v.C, edge.ID(translate(v, src)), e.cfg.Workers, sssp.LabelWeights, s.sspStream)
	} else {
		dist = sssp.Run(v.G, edge.ID(translate(v, src)), sssp.Options{Workers: e.cfg.Workers, Delta: delta, Scratch: s.ssp})
	}
	var val qcache.Value
	for _, d := range dist {
		if d != sssp.Inf {
			val.N1++
			if d > val.N2 {
				val.N2 = d
			}
		}
	}
	if keep {
		val.Dist = append([]int64(nil), dist...)
	}
	return val
}

// ConnReply answers one st-connectivity query.
type ConnReply struct {
	U         uint32 `json:"u"`
	V         uint32 `json:"v"`
	Connected bool   `json:"connected"`
	// Hops is the hop distance between u and v; -1 when disconnected —
	// and also -1 on the live path (u != v), where the forest proves
	// connectivity without computing shortest paths.
	Hops  int32  `json:"hops"`
	Epoch uint64 `json:"epoch"`
	// Live marks an answer served from the update-stream forest rather
	// than a published snapshot (Epoch is then only the publication
	// lower bound; the answer may be fresher).
	Live bool `json:"live,omitempty"`
}

// Connected answers st-connectivity by an early-exiting traversal from
// u: the engine's level-end hook stops as soon as v settles, so the
// remaining levels' arcs are never inspected.
func (e *Executor) Connected(u, v uint32) (ConnReply, error) {
	a := Args{A: uint64(u), B: uint64(v)}
	r, err := e.Query(SpecConnected, a)
	if err != nil {
		return ConnReply{}, err
	}
	return ConnReplyFrom(a, r), nil
}

// ConnectedLive answers st-connectivity from the dynamic forest the
// ingest path maintains — no snapshot wait, hop count unavailable.
// ErrUnsupported until EnableLive.
func (e *Executor) ConnectedLive(u, v uint32) (ConnReply, error) {
	a := Args{A: uint64(u), B: uint64(v), Live: true}
	r, err := e.Query(SpecConnected, a)
	if err != nil {
		return ConnReply{}, err
	}
	return ConnReplyFrom(a, r), nil
}

// connValue executes the early-exiting st-connectivity traversal
// against the pinned view. The verdict is two scalars — it is cached
// whole (no payload copy to skip).
func (e *Executor) connValue(view *snapmgr.View, epoch uint64, u, v uint32) qcache.Value {
	s := e.scratch(epoch)
	defer e.unscratch(s)
	// The whole query runs in layout space: source, early-exit target,
	// and the settled level read back. Hop counts are id-invariant.
	s.src[0] = translate(view, u)
	s.connTarget = translate(view, v)
	opt := traversal.Options{
		Workers:  e.cfg.Workers,
		Strategy: e.strategy(),
		Hooks:    traversal.Hooks{OnLevelEnd: s.connHook},
	}
	if view.C != nil {
		traversal.RunStream(view.C, s.src[:1], opt, s.trav, &s.res)
	} else {
		traversal.Run(view.G, s.src[:1], opt, s.trav, &s.res)
	}
	if lvl := s.res.Level[s.connTarget]; lvl != traversal.NotVisited {
		return qcache.Value{Flag: true, N1: int64(lvl)}
	}
	return qcache.Value{N1: -1}
}

// ComponentsReply summarizes the component structure.
type ComponentsReply struct {
	Components  int    `json:"components"`
	LargestSize int    `json:"largestSize"`
	Epoch       uint64 `json:"epoch"`
}

// Components labels weakly-connected components over the current
// snapshot. The label array and its census live in the pooled scratch
// (cc.ComponentsInto / cc.CensusInto), so the steady state allocates
// nothing per request at the serving config (Workers = 1; the parallel
// census path still builds per-worker partial counts).
func (e *Executor) Components() (ComponentsReply, error) {
	r, err := e.Query(SpecComponents, Args{})
	if err != nil {
		return ComponentsReply{}, err
	}
	return ComponentsReplyFrom(r), nil
}

// componentsValue executes the component labeling against the pinned
// view; keep copies the label array out for the cache.
func (e *Executor) componentsValue(v *snapmgr.View, epoch uint64, keep bool) qcache.Value {
	s := e.scratch(epoch)
	defer e.unscratch(s)
	if v.C != nil {
		s.comp, s.queue = traversal.StreamComponentsInto(v.C, s.comp, s.queue)
	} else {
		// Reordered views label in permuted space; component count and
		// sizes are invariant under relabeling, so the reply is identical.
		s.comp = cc.ComponentsInto(e.cfg.Workers, v.G, s.comp)
	}
	s.sizes = cc.CensusInto(e.cfg.Workers, s.comp, s.sizes)
	_, size := cc.LargestOf(e.cfg.Workers, s.sizes)
	val := qcache.Value{N1: int64(cc.Count(s.comp)), N2: int64(size)}
	if keep {
		val.Labels = append([]uint32(nil), s.comp...)
	}
	return val
}

// StatsReply summarizes the served snapshot and the serving state,
// including the snapshot's storage layout and in-memory footprint — the
// memory-scale observability the /stats endpoint exposes.
type StatsReply struct {
	Vertices  int    `json:"vertices"`
	Arcs      int64  `json:"arcs"`
	MaxDegree int64  `json:"maxDegree"`
	Epoch     uint64 `json:"epoch"`
	Staleness int    `json:"staleness"`
	SizeBytes int64  `json:"sizeBytes"`
	Format    string `json:"format"`
	// Result-cache activity (internal/qcache); all zero when caching
	// is disabled. Coalesced counts followers that shared an in-flight
	// leader's execution; CacheBytes is the live generation's payload
	// footprint.
	CacheHits      uint64 `json:"cacheHits"`
	CacheMisses    uint64 `json:"cacheMisses"`
	Coalesced      uint64 `json:"coalesced"`
	CacheBytes     int64  `json:"cacheBytes"`
	CacheEvictions uint64 `json:"cacheEvictions"`
}

// Stats reports the current snapshot's shape, layout, and footprint
// plus the manager's epoch and staleness. It bypasses admission: stats
// are cheap (at most one O(n) degree scan) and must stay observable
// under query overload.
func (e *Executor) Stats() StatsReply {
	epoch := e.mgr.Epoch()
	v := e.mgr.View()
	maxDeg := int64(0)
	if v.C != nil {
		maxDeg = v.C.MaxDegree()
	} else {
		maxDeg = v.G.MaxDegree()
	}
	ctr := e.cache.Counters()
	return StatsReply{
		Vertices:       v.NumVertices(),
		Arcs:           v.NumEdges(),
		MaxDegree:      maxDeg,
		Epoch:          epoch,
		Staleness:      e.mgr.Staleness(),
		SizeBytes:      v.SizeBytes(),
		Format:         e.mgr.Layout().String(),
		CacheHits:      ctr.Hits,
		CacheMisses:    ctr.Misses,
		Coalesced:      ctr.Coalesced,
		CacheBytes:     ctr.Bytes,
		CacheEvictions: ctr.Evictions,
	}
}
