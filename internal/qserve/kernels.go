package qserve

import (
	"math"
	"sync/atomic"

	"snapdyn/internal/cluster"
	"snapdyn/internal/edge"
	"snapdyn/internal/qcache"
	"snapdyn/internal/snapmgr"
	"snapdyn/internal/traversal"
)

// ClusteringReply summarizes one clustering-coefficient query.
type ClusteringReply struct {
	// Triangles is the global triangle count (each triangle once).
	Triangles int64 `json:"triangles"`
	// AvgLocal is the mean local clustering coefficient over vertices
	// with simple degree >= 2 (0 when no vertex qualifies); Counted is
	// how many qualified. Meaningful on undirected (symmetric) graphs.
	AvgLocal float64 `json:"avgLocal"`
	Counted  int     `json:"counted"`
	Epoch    uint64  `json:"epoch"`
}

// Clustering counts triangles and averages local clustering
// coefficients over the current snapshot. The enumeration arena is
// pooled (cluster.Scratch), so the steady state allocates nothing per
// request at the serving config; the aggregation runs in original-id
// order, so every storage layout (and the shard fleet) answers
// bit-identically — triangle counts are integers and the float average
// is summed in the same order everywhere.
func (e *Executor) Clustering() (ClusteringReply, error) {
	r, err := e.Query(SpecClustering, Args{})
	if err != nil {
		return ClusteringReply{}, err
	}
	return ClusteringReplyFrom(r), nil
}

// KHopReply summarizes one k-hop neighborhood query.
type KHopReply struct {
	Src uint32 `json:"src"`
	K   uint32 `json:"k"`
	// Reached counts vertices within k hops of src, src included.
	Reached int    `json:"reached"`
	Epoch   uint64 `json:"epoch"`
}

// KHop counts the vertices within k hops of src: a BFS whose pooled
// level-end hook stops the traversal after level k, so arcs beyond the
// horizon are never expanded. Hop counts are id-invariant; every
// layout answers bit-identically.
func (e *Executor) KHop(src, k uint32) (KHopReply, error) {
	a := Args{A: uint64(src), B: uint64(k)}
	r, err := e.Query(SpecKHop, a)
	if err != nil {
		return KHopReply{}, err
	}
	return KHopReplyFrom(a, r), nil
}

// PageRankReply summarizes one PageRank query.
type PageRankReply struct {
	// Tol is the residual tolerance the solve ran at; Iterations the
	// relaxation rounds it took.
	Tol        float64 `json:"tol"`
	Iterations int     `json:"iterations"`
	// MaxRank and SumRank summarize the score vector (damping 0.85,
	// uniform (1-d) teleport, dangling mass dropped — ranks are
	// unnormalized, each >= 1-d).
	MaxRank float64 `json:"maxRank"`
	SumRank float64 `json:"sumRank"`
	Epoch   uint64  `json:"epoch"`
}

// PageRank solves PageRank to the given residual tolerance (tol <= 0
// picks DefaultPageRankTol) as an iterative kernel on the traversal
// engine's label-correcting Relax mode: every vertex starts with
// residual 1-d, a frontier vertex pushes its harvested residual along
// its out-arcs, and a head vertex re-enters the frontier when its
// residual crosses tol — the push-based local iteration, converging
// without ever sweeping settled regions.
//
// Unlike the integer-valued kinds, PageRank is *not* bit-identical
// across layouts or the fleet: float accumulation order follows arc
// order, and retained sub-tolerance residuals depend on schedule, so
// answers agree only to within a tolerance-proportional error — the
// documented exception to the bit-identity guarantee.
func (e *Executor) PageRank(tol float64) (PageRankReply, error) {
	a := PageRankArgs(tol)
	r, err := e.Query(SpecPageRank, a)
	if err != nil {
		return PageRankReply{}, err
	}
	return PageRankReplyFrom(a, r), nil
}

// PageRankArgs builds the PageRank argument set from a tolerance,
// applying the default and the termination floor exactly like the HTTP
// decoder; PageRankTol recovers the tolerance. Both engines' typed
// methods and kernels share them so a tolerance means the same thing
// everywhere (including in the cache key, which is the tolerance's
// bits).
func PageRankArgs(tol float64) Args {
	if tol <= 0 {
		tol = DefaultPageRankTol
	}
	if tol < minPageRankTol {
		tol = minPageRankTol
	}
	return Args{A: math.Float64bits(tol)}
}

// PageRankTol recovers the tolerance from a PageRank argument set.
func PageRankTol(a Args) float64 { return math.Float64frombits(a.A) }

// clusteringValue runs the pooled triangle count against the pinned
// view. The per-vertex aggregation iterates original ids (translated
// into layout space), so the float average is summed in the same order
// under every layout; keep copies the triangle counts out for the
// cache (layout id space, like every cached payload).
func (e *Executor) clusteringValue(v *snapmgr.View, epoch uint64, keep bool) qcache.Value {
	s := e.scratch(epoch)
	defer e.unscratch(s)
	if s.clus == nil {
		s.clus = cluster.NewScratch()
	}
	if v.C != nil {
		s.clus.ComputeStream(e.cfg.Workers, v.C)
	} else {
		s.clus.ComputeCSR(e.cfg.Workers, v.G)
	}
	s.clusView = v
	total, counted, avg := s.clus.Aggregate(s.clusMap, v.NumVertices())
	s.clusView = nil
	val := qcache.Value{N1: total, N2: counted, F1: avg}
	if keep {
		val.Dist = append([]int64(nil), s.clus.Triangles()...)
	}
	return val
}

// maxKHop caps the k parameter; any larger k behaves as unbounded
// (every graph's diameter is far below it) while keeping the level
// arithmetic safely inside int32.
const maxKHop = 1 << 30

// khopValue runs the depth-limited BFS against the pinned view.
func (e *Executor) khopValue(v *snapmgr.View, epoch uint64, src uint32, k int32, keep bool) qcache.Value {
	s := e.scratch(epoch)
	defer e.unscratch(s)
	s.src[0] = translate(v, src)
	s.khopK = k
	s.khopReached = 1 // the source itself
	opt := traversal.Options{
		Workers:  e.cfg.Workers,
		Strategy: e.strategy(),
		Hooks:    traversal.Hooks{OnLevelEnd: s.khopHook},
	}
	if v.C != nil {
		traversal.RunStream(v.C, s.src[:1], opt, s.trav, &s.res)
	} else {
		traversal.Run(v.G, s.src[:1], opt, s.trav, &s.res)
	}
	val := qcache.Value{N1: int64(s.khopReached)}
	if keep {
		val.Levels = append([]int32(nil), s.res.Level...)
	}
	return val
}

// PageRank solve parameters. The damping factor is fixed — it is part
// of the kind's definition, like BFS's unit arc cost — while the
// residual tolerance is the query parameter (and the cache key).
const (
	// PageRankDamping is the fixed damping factor d; the sharded
	// fleet's power-iteration kernel shares it so both engines solve
	// the same linear system.
	PageRankDamping = 0.85
	// DefaultPageRankTol is the residual tolerance when the query does
	// not name one.
	DefaultPageRankTol = 1e-6
	// minPageRankTol floors the tolerance so the solve always
	// terminates in a bounded number of rounds.
	minPageRankTol = 1e-12
	// prMaxLevels hard-caps the relaxation rounds (residual mass
	// contracts geometrically with damping 0.85, so real solves finish
	// orders of magnitude below this).
	prMaxLevels = 1000
)

// prRelaxStep builds the pooled Relax hook for the PageRank push
// iteration. The traversal engine hands every arc of one frontier
// vertex to a single worker contiguously and deduplicates the
// frontier, so the first arc out of u this round can harvest u's
// residual without atomics (the claim tag is per-round); pushes into
// head vertices race across workers and go through the CAS-loop float
// add. A head enters the next frontier exactly when its residual
// crosses the tolerance from below.
func prRelaxStep(s *scratchSet) func(u, v, t uint32) bool {
	return func(u, v, t uint32) bool {
		if s.prClaim[u] != s.prLevel {
			s.prClaim[u] = s.prLevel
			ru := math.Float64frombits(atomic.SwapUint64(&s.prResid[u], 0))
			s.prRank[u] += ru
			var d int64
			if s.prView.C != nil {
				d = s.prView.C.Degree(edge.ID(u))
			} else {
				d = s.prView.G.Degree(edge.ID(u))
			}
			s.prPush[u] = PageRankDamping * ru / float64(d)
		}
		p := s.prPush[u]
		nv := atomicAddFloat(&s.prResid[v], p)
		return nv >= s.prTol && nv-p < s.prTol
	}
}

// pagerankValue runs the push-residual PageRank solve against the
// pinned view. All state is pooled; at Workers=1 the steady state
// allocates nothing per request.
func (e *Executor) pagerankValue(v *snapmgr.View, epoch uint64, tol float64, keep bool) qcache.Value {
	s := e.scratch(epoch)
	defer e.unscratch(s)
	n := v.NumVertices()
	s.prRank = resizeF64(s.prRank, n)
	s.prResid = resizeU64(s.prResid, n)
	s.prPush = resizeF64(s.prPush, n)
	s.prClaim = resizeI32(s.prClaim, n)
	s.prSrcs = resizeU32(s.prSrcs, n)
	seed := math.Float64bits(1 - PageRankDamping)
	for i := 0; i < n; i++ {
		s.prRank[i] = 0
		s.prResid[i] = seed
		s.prClaim[i] = 0
		s.prSrcs[i] = uint32(i)
	}
	s.prLevel = 1
	s.prTol = tol
	s.prView = v
	opt := traversal.Options{
		Workers: e.cfg.Workers,
		Hooks:   traversal.Hooks{Relax: s.prRelax, OnLevelEnd: s.prLevelEnd},
	}
	if v.C != nil {
		traversal.RunStream(v.C, s.prSrcs, opt, s.trav, &s.res)
	} else {
		traversal.Run(v.G, s.prSrcs, opt, s.trav, &s.res)
	}
	s.prView = nil
	// Fold retained sub-tolerance residual into each vertex's own rank:
	// exact for vertices nothing points at, and a strictly better
	// estimate elsewhere.
	var maxRank, sum float64
	for i := 0; i < n; i++ {
		r := s.prRank[i] + math.Float64frombits(s.prResid[i])
		s.prRank[i] = r
		sum += r
		if r > maxRank {
			maxRank = r
		}
	}
	val := qcache.Value{N1: int64(s.res.Levels), F1: maxRank, F2: sum}
	if keep {
		val.Ranks = append([]float64(nil), s.prRank[:n]...)
	}
	return val
}

// atomicAddFloat adds x to the float64 stored as bits at p, returning
// the new value.
func atomicAddFloat(p *uint64, x float64) float64 {
	for {
		old := atomic.LoadUint64(p)
		nf := math.Float64frombits(old) + x
		if atomic.CompareAndSwapUint64(p, old, math.Float64bits(nf)) {
			return nf
		}
	}
}

func resizeF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func resizeU64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

func resizeI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func resizeU32(s []uint32, n int) []uint32 {
	if cap(s) < n {
		return make([]uint32, n)
	}
	return s[:n]
}
