package qserve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"snapdyn/internal/edge"
	"snapdyn/internal/stream"
)

// Server exposes a query Engine over HTTP/JSON — the snapserve
// daemon's handler set, engine-agnostic: the same routes serve a
// single-snapshot Executor or a sharded fleet.
//
// The query surface is generated from the kind registry: every
// registered kind is served at GET /v1/query/<kind> with a typed
// envelope (kind, epoch served, cache disposition, structured error
// codes) and, for compatibility, at GET /query/<kind> with the kind's
// flat legacy reply and string-only error body. Both routes decode,
// record, gate, and dispatch identically; only the response framing
// differs. /stats, /healthz, and /ingest exist at both roots too;
// offline jobs (sampled betweenness) are v1-only. Query endpoints go
// through the engine's admission control (503 when shed); /ingest
// applies update batches through the engine's refresh gate(s), so it
// is safe concurrently with background auto-refreshers; /healthz and
// /stats bypass admission so the service stays observable under
// overload.
type Server struct {
	eng Engine
	// undirected mirrors ingest batches, matching the facade's
	// undirected Graph semantics.
	undirected    bool
	ingestWorkers int
	staleWait     time.Duration
	rec           QueryRecorder
	jobs          *jobTable
}

// QueryRecorder observes every well-formed query request before it is
// dispatched (hit, miss, shed, or stale alike — the trace captures
// offered load, not served load). internal/workload implements it over
// a JSONL trace file for snapserve -record / snapbench -replay.
// Implementations must be safe for concurrent use.
type QueryRecorder interface {
	RecordQuery(kind string, u, v uint32, delta int64)
}

// DefaultStaleWait bounds how long a query with a minEpoch constraint
// waits for the snapshot to catch up before failing with 503.
const DefaultStaleWait = 2 * time.Second

// NewServer wraps a query engine. ingestWorkers is the parallelism of
// batch application; undirected mirrors every ingested update.
func NewServer(eng Engine, undirected bool, ingestWorkers int) *Server {
	return &Server{eng: eng, undirected: undirected, ingestWorkers: ingestWorkers,
		staleWait: DefaultStaleWait, jobs: newJobTable()}
}

// SetStaleWait overrides the minEpoch wait bound (tests use short
// values). Call before serving.
func (s *Server) SetStaleWait(d time.Duration) { s.staleWait = d }

// SetRecorder installs a query-trace recorder. Call before serving.
func (s *Server) SetRecorder(rec QueryRecorder) { s.rec = rec }

func (s *Server) record(kind string, u, v uint32, delta int64) {
	if s.rec != nil {
		s.rec.RecordQuery(kind, u, v, delta)
	}
}

// Handler returns the route table, generated from the kind registry.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, sp := range Specs() {
		mux.HandleFunc("GET /query/"+sp.Name(), s.queryHandler(sp, false))
		mux.HandleFunc("GET /v1/query/"+sp.Name(), s.queryHandler(sp, true))
	}
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("POST /ingest", s.handleIngest)
	mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	mux.HandleFunc("POST /v1/jobs/betweenness", s.handleJobStart)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	return mux
}

// Envelope is the v1 query response frame: the kind that answered, the
// epoch lower bound served, how the cache was involved ("hit", "miss",
// "bypass", or "live"), and the kind's reply as data.
type Envelope struct {
	Kind  string `json:"kind"`
	Epoch uint64 `json:"epoch"`
	Cache string `json:"cache"`
	Data  any    `json:"data"`
}

// queryHandler builds the handler for one registered kind: decode →
// record → minEpoch gate → engine dispatch → encode, identical on both
// routes; v1 selects the envelope framing and structured errors.
func (s *Server) queryHandler(sp *Spec, v1 bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		a, err := sp.Decode(r.URL.Query())
		if err != nil {
			s.fail(w, v1, err)
			return
		}
		ru, rv, delta := sp.Record(a)
		s.record(sp.Name(), ru, rv, delta)
		if err := s.waitMinEpoch(r); err != nil {
			s.fail(w, v1, err)
			return
		}
		res, err := s.eng.Query(sp, a)
		if err != nil {
			s.fail(w, v1, err)
			return
		}
		body := sp.Encode(a, res)
		if v1 {
			writeJSON(w, Envelope{Kind: sp.Name(), Epoch: res.Epoch,
				Cache: res.Cache.String(), Data: body})
			return
		}
		writeJSON(w, body)
	}
}

func (s *Server) fail(w http.ResponseWriter, v1 bool, err error) {
	if v1 {
		v1Error(w, err)
		return
	}
	httpError(w, err)
}

// IngestUpdate is the wire form of one structural update.
type IngestUpdate struct {
	U  uint32 `json:"u"`
	V  uint32 `json:"v"`
	T  uint32 `json:"t"`
	Op string `json:"op"` // "insert" (default) or "delete"
}

// IngestReply acknowledges a batch.
type IngestReply struct {
	Applied   int    `json:"applied"`
	Epoch     uint64 `json:"epoch"`
	Staleness int    `json:"staleness"`
}

// Health is the /healthz body: snapshot version and lag plus refresh
// and admission activity.
type Health struct {
	Status        string   `json:"status"`
	Epoch         uint64   `json:"epoch"`
	Staleness     int      `json:"staleness"`
	SnapshotAgeMs float64  `json:"snapshotAgeMs"`
	Refreshes     uint64   `json:"refreshes"`
	AutoRefreshes uint64   `json:"autoRefreshes"`
	LastRefreshMs float64  `json:"lastRefreshMs"`
	MaxRefreshMs  float64  `json:"maxRefreshMs"`
	Counters      Counters `json:"counters"`
}

// waitMinEpoch honors an optional minEpoch query parameter: the
// read-your-writes handshake. A client holding the ack epoch from
// /ingest passes it back as minEpoch and is guaranteed to observe its
// writes — or get a retryable 503 (ErrStale) if the snapshot does not
// publish within the staleness bound.
func (s *Server) waitMinEpoch(r *http.Request) error {
	v := r.URL.Query().Get("minEpoch")
	if v == "" {
		return nil
	}
	min, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return badParam("minEpoch", err)
	}
	if _, err := s.eng.WaitEpoch(min, s.staleWait); err != nil {
		return fmt.Errorf("%w: epoch %d not published within %v", ErrStale, min, s.staleWait)
	}
	return nil
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.eng.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	met := s.eng.Metrics()
	writeJSON(w, Health{
		Status:        "ok",
		Epoch:         met.Epoch,
		Staleness:     met.Staleness,
		SnapshotAgeMs: durMs(met.Age),
		Refreshes:     met.Refreshes,
		AutoRefreshes: met.AutoRefreshes,
		LastRefreshMs: durMs(met.LastLatency),
		MaxRefreshMs:  durMs(met.MaxLatency),
		Counters:      s.eng.Counters(),
	})
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var wire []IngestUpdate
	if err := json.NewDecoder(r.Body).Decode(&wire); err != nil {
		httpError(w, badParam("body", err))
		return
	}
	n := uint32(s.eng.NumVertices())
	batch := make([]edge.Update, len(wire))
	for i, u := range wire {
		// Reject out-of-range endpoints up front: past this point the
		// store trusts its indices, so a bad vertex would corrupt or
		// crash the shared structure, not just this request.
		if u.U >= n || u.V >= n {
			httpError(w, badParam("updates",
				fmt.Errorf("update %d: vertex out of range [0,%d): %d->%d", i, n, u.U, u.V)))
			return
		}
		op := edge.Insert
		switch u.Op {
		case "", "insert", "ins":
		case "delete", "del":
			op = edge.Delete
		default:
			httpError(w, badParam("op", fmt.Errorf("unknown op %q", u.Op)))
			return
		}
		batch[i] = edge.Update{Edge: edge.Edge{U: u.U, V: u.V, T: u.T}, Op: op}
	}
	if s.undirected {
		batch = stream.Mirror(batch)
	}
	epoch, err := s.eng.Ingest(s.ingestWorkers, batch)
	if err != nil {
		httpError(w, err)
		return
	}
	// Epoch is the ack epoch: pass it back as minEpoch on a query to
	// read your writes. On the durable path the updates are fsynced by
	// the time this reply is written.
	writeJSON(w, IngestReply{Applied: len(wire), Epoch: epoch, Staleness: s.eng.Metrics().Staleness})
}

// errBadRequest wraps parameter errors so httpError maps them to 400.
type errBadRequest struct{ error }

func badParam(name string, err error) error {
	return errBadRequest{fmt.Errorf("bad %s: %w", name, err)}
}

var (
	errNotPositive = errors.New("want a positive integer")
	errUnknownJob  = errors.New("unknown job id")
)

// errStatus maps an error to its HTTP status and v1 error code.
func errStatus(err error) (int, string) {
	var bad errBadRequest
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusServiceUnavailable, "overloaded"
	case errors.Is(err, ErrStale):
		return http.StatusServiceUnavailable, "stale"
	case errors.Is(err, ErrBadVertex):
		return http.StatusBadRequest, "bad_vertex"
	case errors.As(err, &bad):
		return http.StatusBadRequest, "bad_request"
	case errors.Is(err, ErrUnsupported):
		return http.StatusNotImplemented, "unsupported"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

// httpError writes the legacy error body: {"error": "<message>"}.
func httpError(w http.ResponseWriter, err error) {
	code, _ := errStatus(err)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// v1Error writes the structured v1 error body:
// {"error": {"code": "...", "message": "..."}}.
func v1Error(w http.ResponseWriter, err error) {
	code, slug := errStatus(err)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]map[string]string{
		"error": {"code": slug, "message": err.Error()},
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func durMs(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
