package qserve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"snapdyn/internal/edge"
	"snapdyn/internal/stream"
)

// Server exposes a query Engine over HTTP/JSON — the snapserve
// daemon's handler set, engine-agnostic: the same routes serve a
// single-snapshot Executor or a sharded fleet. Query endpoints go
// through the engine's admission control (503 when shed); /ingest
// applies update batches through the engine's refresh gate(s), so it
// is safe concurrently with background auto-refreshers; /healthz and
// /stats bypass admission so the service stays observable under
// overload.
type Server struct {
	eng Engine
	// undirected mirrors ingest batches, matching the facade's
	// undirected Graph semantics.
	undirected    bool
	ingestWorkers int
	staleWait     time.Duration
	rec           QueryRecorder
}

// QueryRecorder observes every well-formed query request before it is
// dispatched (hit, miss, shed, or stale alike — the trace captures
// offered load, not served load). internal/workload implements it over
// a JSONL trace file for snapserve -record / snapbench -replay.
// Implementations must be safe for concurrent use.
type QueryRecorder interface {
	RecordQuery(kind string, u, v uint32, delta int64)
}

// DefaultStaleWait bounds how long a query with a minEpoch constraint
// waits for the snapshot to catch up before failing with 503.
const DefaultStaleWait = 2 * time.Second

// NewServer wraps a query engine. ingestWorkers is the parallelism of
// batch application; undirected mirrors every ingested update.
func NewServer(eng Engine, undirected bool, ingestWorkers int) *Server {
	return &Server{eng: eng, undirected: undirected, ingestWorkers: ingestWorkers,
		staleWait: DefaultStaleWait}
}

// SetStaleWait overrides the minEpoch wait bound (tests use short
// values). Call before serving.
func (s *Server) SetStaleWait(d time.Duration) { s.staleWait = d }

// SetRecorder installs a query-trace recorder. Call before serving.
func (s *Server) SetRecorder(rec QueryRecorder) { s.rec = rec }

func (s *Server) record(kind string, u, v uint32, delta int64) {
	if s.rec != nil {
		s.rec.RecordQuery(kind, u, v, delta)
	}
}

// Handler returns the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /query/bfs", s.handleBFS)
	mux.HandleFunc("GET /query/sssp", s.handleSSSP)
	mux.HandleFunc("GET /query/connected", s.handleConnected)
	mux.HandleFunc("GET /query/components", s.handleComponents)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("POST /ingest", s.handleIngest)
	return mux
}

// IngestUpdate is the wire form of one structural update.
type IngestUpdate struct {
	U  uint32 `json:"u"`
	V  uint32 `json:"v"`
	T  uint32 `json:"t"`
	Op string `json:"op"` // "insert" (default) or "delete"
}

// IngestReply acknowledges a batch.
type IngestReply struct {
	Applied   int    `json:"applied"`
	Epoch     uint64 `json:"epoch"`
	Staleness int    `json:"staleness"`
}

// Health is the /healthz body: snapshot version and lag plus refresh
// and admission activity.
type Health struct {
	Status        string   `json:"status"`
	Epoch         uint64   `json:"epoch"`
	Staleness     int      `json:"staleness"`
	SnapshotAgeMs float64  `json:"snapshotAgeMs"`
	Refreshes     uint64   `json:"refreshes"`
	AutoRefreshes uint64   `json:"autoRefreshes"`
	LastRefreshMs float64  `json:"lastRefreshMs"`
	MaxRefreshMs  float64  `json:"maxRefreshMs"`
	Counters      Counters `json:"counters"`
}

// waitMinEpoch honors an optional minEpoch query parameter: the
// read-your-writes handshake. A client holding the ack epoch from
// /ingest passes it back as minEpoch and is guaranteed to observe its
// writes — or get a retryable 503 (ErrStale) if the snapshot does not
// publish within the staleness bound.
func (s *Server) waitMinEpoch(r *http.Request) error {
	v := r.URL.Query().Get("minEpoch")
	if v == "" {
		return nil
	}
	min, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return badParam("minEpoch", err)
	}
	if _, err := s.eng.WaitEpoch(min, s.staleWait); err != nil {
		return fmt.Errorf("%w: epoch %d not published within %v", ErrStale, min, s.staleWait)
	}
	return nil
}

func (s *Server) handleBFS(w http.ResponseWriter, r *http.Request) {
	src, err := queryUint32(r, "src")
	if err != nil {
		httpError(w, err)
		return
	}
	s.record("bfs", src, 0, 0)
	if err := s.waitMinEpoch(r); err != nil {
		httpError(w, err)
		return
	}
	reply, err := s.eng.BFS(src)
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, reply)
}

func (s *Server) handleSSSP(w http.ResponseWriter, r *http.Request) {
	src, err := queryUint32(r, "src")
	if err != nil {
		httpError(w, err)
		return
	}
	var delta int64
	if v := r.URL.Query().Get("delta"); v != "" {
		delta, err = strconv.ParseInt(v, 10, 64)
		if err != nil {
			httpError(w, badParam("delta", err))
			return
		}
	}
	s.record("sssp", src, 0, delta)
	if err := s.waitMinEpoch(r); err != nil {
		httpError(w, err)
		return
	}
	reply, err := s.eng.SSSP(src, delta)
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, reply)
}

func (s *Server) handleConnected(w http.ResponseWriter, r *http.Request) {
	u, err := queryUint32(r, "u")
	if err != nil {
		httpError(w, err)
		return
	}
	v, err := queryUint32(r, "v")
	if err != nil {
		httpError(w, err)
		return
	}
	s.record("connected", u, v, 0)
	if err := s.waitMinEpoch(r); err != nil {
		httpError(w, err)
		return
	}
	reply, err := s.eng.Connected(u, v)
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, reply)
}

func (s *Server) handleComponents(w http.ResponseWriter, r *http.Request) {
	s.record("components", 0, 0, 0)
	if err := s.waitMinEpoch(r); err != nil {
		httpError(w, err)
		return
	}
	reply, err := s.eng.Components()
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, reply)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.eng.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	met := s.eng.Metrics()
	writeJSON(w, Health{
		Status:        "ok",
		Epoch:         met.Epoch,
		Staleness:     met.Staleness,
		SnapshotAgeMs: durMs(met.Age),
		Refreshes:     met.Refreshes,
		AutoRefreshes: met.AutoRefreshes,
		LastRefreshMs: durMs(met.LastLatency),
		MaxRefreshMs:  durMs(met.MaxLatency),
		Counters:      s.eng.Counters(),
	})
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var wire []IngestUpdate
	if err := json.NewDecoder(r.Body).Decode(&wire); err != nil {
		httpError(w, badParam("body", err))
		return
	}
	n := uint32(s.eng.NumVertices())
	batch := make([]edge.Update, len(wire))
	for i, u := range wire {
		// Reject out-of-range endpoints up front: past this point the
		// store trusts its indices, so a bad vertex would corrupt or
		// crash the shared structure, not just this request.
		if u.U >= n || u.V >= n {
			httpError(w, badParam("updates",
				fmt.Errorf("update %d: vertex out of range [0,%d): %d->%d", i, n, u.U, u.V)))
			return
		}
		op := edge.Insert
		switch u.Op {
		case "", "insert", "ins":
		case "delete", "del":
			op = edge.Delete
		default:
			httpError(w, badParam("op", fmt.Errorf("unknown op %q", u.Op)))
			return
		}
		batch[i] = edge.Update{Edge: edge.Edge{U: u.U, V: u.V, T: u.T}, Op: op}
	}
	if s.undirected {
		batch = stream.Mirror(batch)
	}
	epoch, err := s.eng.Ingest(s.ingestWorkers, batch)
	if err != nil {
		httpError(w, err)
		return
	}
	// Epoch is the ack epoch: pass it back as minEpoch on a query to
	// read your writes. On the durable path the updates are fsynced by
	// the time this reply is written.
	writeJSON(w, IngestReply{Applied: len(wire), Epoch: epoch, Staleness: s.eng.Metrics().Staleness})
}

// errBadRequest wraps parameter errors so httpError maps them to 400.
type errBadRequest struct{ error }

func badParam(name string, err error) error {
	return errBadRequest{fmt.Errorf("bad %s: %w", name, err)}
}

func queryUint32(r *http.Request, name string) (uint32, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return 0, badParam(name, errors.New("missing"))
	}
	u, err := strconv.ParseUint(v, 10, 32)
	if err != nil {
		return 0, badParam(name, err)
	}
	return uint32(u), nil
}

func httpError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	var bad errBadRequest
	switch {
	case errors.Is(err, ErrOverloaded), errors.Is(err, ErrStale):
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrBadVertex):
		code = http.StatusBadRequest
	case errors.As(err, &bad):
		code = http.StatusBadRequest
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func durMs(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
