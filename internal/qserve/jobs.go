package qserve

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"snapdyn/internal/centrality"
)

// Sampled betweenness is served as an offline job, not a query: a
// Brandes sweep over k sampled sources costs k full traversals —
// orders of magnitude above the admission-pooled kinds — so it runs in
// a background goroutine outside admission (it must not pin a slot for
// minutes) and is polled for progress. Allocation-free steady state is
// explicitly waived for jobs: per-job worker state is allocated each
// run (the documented exception; jobs are rare and long).

// VertexScore pairs an original vertex id with its score.
type VertexScore struct {
	V     uint32  `json:"v"`
	Score float64 `json:"score"`
}

// BetweennessReply is the result of one sampled-betweenness job:
// approximate scores from `Sources` sampled roots (Brandes, normalized
// by n/|Sources|), reported as the top-k vertices by score in original
// id space.
type BetweennessReply struct {
	Sources int           `json:"sources"`
	TopK    []VertexScore `json:"topK"`
	Epoch   uint64        `json:"epoch"`
}

// BetweennessRunner is implemented by engines that can run the offline
// sampled-betweenness job. The single-snapshot Executor implements it
// for CSR layouts (plain and reordered); the compressed layout and the
// sharded fleet do not (the Brandes engine needs a resident CSR), and
// the job endpoint answers 501 there.
type BetweennessRunner interface {
	RunBetweenness(samples int, seed uint64, topk int, progress func(done, total int)) (BetweennessReply, error)
}

var _ BetweennessRunner = (*Executor)(nil)

// RunBetweenness runs one sampled-betweenness sweep against the current
// snapshot, blocking until done (callers wrap it in a goroutine — the
// job table in the HTTP layer does). Sources are sampled in the
// snapshot's layout space, so the sampled set — and therefore the
// approximate scores — can differ across layouts for the same seed;
// the job is approximate by construction and carries no bit-identity
// guarantee.
func (e *Executor) RunBetweenness(samples int, seed uint64, topk int, progress func(done, total int)) (BetweennessReply, error) {
	epoch := e.mgr.Epoch()
	v := e.mgr.View()
	if v.C != nil {
		return BetweennessReply{}, ErrUnsupported
	}
	srcs := centrality.SampleSources(v.G, samples, seed)
	bc := centrality.Betweenness(e.cfg.Workers, v.G, centrality.Options{
		Sources:   srcs,
		Normalize: true,
		Strategy:  e.strategy(),
		Progress:  progress,
	})
	reply := BetweennessReply{Sources: len(srcs), Epoch: epoch}
	reply.TopK = topScores(bc, v.Inv, topk)
	return reply, nil
}

// topScores selects the k highest-scoring vertices (original ids; inv
// translates layout ids back when non-nil) by insertion into a small
// sorted buffer — O(n·k) with k small.
func topScores(bc []float64, inv []uint32, k int) []VertexScore {
	if k > len(bc) {
		k = len(bc)
	}
	top := make([]VertexScore, 0, k)
	for p, score := range bc {
		if len(top) == k && score <= top[k-1].Score {
			continue
		}
		orig := uint32(p)
		if inv != nil {
			orig = inv[p]
		}
		i := len(top)
		if i < k {
			top = append(top, VertexScore{})
		} else {
			i = k - 1
		}
		for i > 0 && top[i-1].Score < score {
			top[i] = top[i-1]
			i--
		}
		top[i] = VertexScore{V: orig, Score: score}
	}
	return top
}

// Job limits: at most maxRunningJobs sweeps at once (more shed with
// 503), at most maxRetainedJobs finished jobs kept for polling.
const (
	maxRunningJobs  = 2
	maxRetainedJobs = 64

	defaultJobSamples = 16
	maxJobSamples     = 256
	defaultJobTopK    = 10
	maxJobTopK        = 100
)

// JobStatus is the wire form of one job's state, served by
// GET /v1/jobs/{id} (and returned by the POST that starts it).
type JobStatus struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`
	State string `json:"state"` // "running", "done", "failed"
	// Done/Total report traversal progress (sources finished).
	Done      int     `json:"done"`
	Total     int     `json:"total"`
	ElapsedMs float64 `json:"elapsedMs"`
	Error     string  `json:"error,omitempty"`
	// Result is set once State is "done".
	Result *BetweennessReply `json:"result,omitempty"`
}

type betwJob struct {
	id          string
	started     time.Time
	done, total atomic.Int64

	mu     sync.Mutex
	state  string
	reply  BetweennessReply
	errMsg string
	ms     float64
}

func (j *betwJob) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:    j.id,
		Kind:  "betweenness",
		State: j.state,
		Done:  int(j.done.Load()),
		Total: int(j.total.Load()),
	}
	switch j.state {
	case "running":
		st.ElapsedMs = durMs(time.Since(j.started))
	case "done":
		st.ElapsedMs = j.ms
		r := j.reply
		st.Result = &r
	case "failed":
		st.ElapsedMs = j.ms
		st.Error = j.errMsg
	}
	return st
}

// jobTable tracks background jobs for the HTTP layer.
type jobTable struct {
	mu      sync.Mutex
	seq     int
	running int
	jobs    map[string]*betwJob
	order   []string
}

func newJobTable() *jobTable { return &jobTable{jobs: map[string]*betwJob{}} }

func (t *jobTable) get(id string) *betwJob {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.jobs[id]
}

// start registers a new job if a slot is free; ok=false means the
// running-job bound is hit (the job-level shed).
func (t *jobTable) start() (*betwJob, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.running >= maxRunningJobs {
		return nil, false
	}
	t.running++
	t.seq++
	j := &betwJob{id: "bw-" + strconv.Itoa(t.seq), state: "running", started: time.Now()}
	t.jobs[j.id] = j
	t.order = append(t.order, j.id)
	for len(t.order) > maxRetainedJobs {
		old := t.order[0]
		if t.jobs[old].state == "running" {
			break // never evict a running job; retry at the next start
		}
		delete(t.jobs, old)
		t.order = t.order[1:]
	}
	return j, true
}

func (t *jobTable) finish() {
	t.mu.Lock()
	t.running--
	t.mu.Unlock()
}

// handleJobStart serves POST /v1/jobs/betweenness: it validates the
// parameters, starts the sweep in the background, and replies 202 with
// the job id to poll.
func (s *Server) handleJobStart(w http.ResponseWriter, r *http.Request) {
	runner, ok := s.eng.(BetweennessRunner)
	if !ok {
		v1Error(w, ErrUnsupported)
		return
	}
	q := r.URL.Query()
	samples := defaultJobSamples
	if v := q.Get("samples"); v != "" {
		p, err := strconv.Atoi(v)
		if err != nil || p <= 0 {
			v1Error(w, badParam("samples", errNotPositive))
			return
		}
		samples = min(p, maxJobSamples)
	}
	var seed uint64 = 1
	if v := q.Get("seed"); v != "" {
		p, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			v1Error(w, badParam("seed", err))
			return
		}
		seed = p
	}
	topk := defaultJobTopK
	if v := q.Get("topk"); v != "" {
		p, err := strconv.Atoi(v)
		if err != nil || p <= 0 {
			v1Error(w, badParam("topk", errNotPositive))
			return
		}
		topk = min(p, maxJobTopK)
	}
	j, ok := s.jobs.start()
	if !ok {
		v1Error(w, ErrOverloaded)
		return
	}
	j.total.Store(int64(samples))
	go func() {
		reply, err := runner.RunBetweenness(samples, seed, topk, func(done, total int) {
			j.done.Store(int64(done))
			j.total.Store(int64(total))
		})
		ms := durMs(time.Since(j.started))
		j.mu.Lock()
		j.ms = ms
		if err != nil {
			j.state, j.errMsg = "failed", err.Error()
		} else {
			j.state, j.reply = "done", reply
		}
		j.mu.Unlock()
		s.jobs.finish()
	}()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(j.status())
}

// handleJobGet serves GET /v1/jobs/{id}.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j := s.jobs.get(r.PathValue("id"))
	if j == nil {
		v1Error(w, badParam("id", errUnknownJob))
		return
	}
	writeJSON(w, j.status())
}
