package qserve

import (
	"math"
	"testing"

	"snapdyn/internal/cluster"
	"snapdyn/internal/csr"
	"snapdyn/internal/edge"
	"snapdyn/internal/qcache"
	"snapdyn/internal/snapmgr"
	"snapdyn/internal/stream"
	"snapdyn/internal/traversal"
	"snapdyn/internal/xrand"
)

// TestClusteringMatchesReference checks the pooled clustering query
// against the one-shot cluster.Compute kernel and an independent
// simple-degree count.
func TestClusteringMatchesReference(t *testing.T) {
	mgr, _ := newManager(t, 9, 19)
	ex := New(mgr, Config{Undirected: true})
	g := mgr.Current()

	want := cluster.Compute(1, g)
	got, err := ex.Clustering()
	if err != nil {
		t.Fatal(err)
	}
	if got.Triangles != want.TotalTriangles {
		t.Fatalf("Triangles = %d, want %d", got.Triangles, want.TotalTriangles)
	}
	if got.AvgLocal != want.GlobalAverage {
		t.Fatalf("AvgLocal = %v, want %v (bit-identical)", got.AvgLocal, want.GlobalAverage)
	}

	// Counted, independently: vertices whose deduplicated loop-free
	// degree is at least 2.
	counted := 0
	seen := map[uint32]bool{}
	for u := 0; u < g.N; u++ {
		clear(seen)
		adj, _ := g.Neighbors(edge.ID(u))
		for _, v := range adj {
			if v != uint32(u) {
				seen[v] = true
			}
		}
		if len(seen) >= 2 {
			counted++
		}
	}
	if got.Counted != counted {
		t.Fatalf("Counted = %d, want %d", got.Counted, counted)
	}
	if got.Epoch != mgr.Epoch() {
		t.Fatalf("Epoch = %d, want %d", got.Epoch, mgr.Epoch())
	}
}

// TestKHopMatchesBFSLevels checks the depth-limited traversal against a
// plain BFS level array: Reached(k) must equal the number of vertices
// whose BFS level is at most k, for every k from zero through past the
// eccentricity.
func TestKHopMatchesBFSLevels(t *testing.T) {
	mgr, _ := newManager(t, 9, 29)
	ex := New(mgr, Config{Undirected: true})
	g := mgr.Current()

	for _, src := range []uint32{0, 3, 101, 511} {
		ref := traversal.BFS(1, g, src)
		for _, k := range []uint32{0, 1, 2, 3, 7, 100, maxKHop} {
			want := 0
			for _, lvl := range ref.Level {
				if lvl != traversal.NotVisited && uint32(lvl) <= k {
					want++
				}
			}
			got, err := ex.KHop(src, k)
			if err != nil {
				t.Fatal(err)
			}
			if got.Reached != want {
				t.Fatalf("KHop(%d, %d) = %d, want %d", src, k, got.Reached, want)
			}
			if got.Src != src || got.K != k {
				t.Fatalf("KHop(%d, %d) echoed %+v", src, k, got)
			}
		}
		// Unbounded k reaches exactly the BFS closure.
		got, err := ex.KHop(src, maxKHop)
		if err != nil {
			t.Fatal(err)
		}
		if got.Reached != ref.Reached {
			t.Fatalf("KHop(%d, inf) = %d, want BFS closure %d", src, got.Reached, ref.Reached)
		}
	}
}

// refPageRank is the dense Jacobi reference: iterate
// r' = (1-d)·1 + d·AᵀD⁻¹r to numerical convergence. Both serving
// engines solve this same fixed point (push-residual and sharded power
// iteration), so their aggregates must land within a
// tolerance-proportional band of it.
func refPageRank(g *csr.Graph, iters int) []float64 {
	const d = PageRankDamping
	n := g.N
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1 - d
	}
	for it := 0; it < iters; it++ {
		for i := range next {
			next[i] = 1 - d
		}
		for u := 0; u < n; u++ {
			adj, _ := g.Neighbors(edge.ID(u))
			if len(adj) == 0 {
				continue
			}
			push := d * rank[u] / float64(len(adj))
			for _, v := range adj {
				next[v] += push
			}
		}
		rank, next = next, rank
	}
	return rank
}

// TestPageRankMatchesPowerIteration checks the push-residual solve
// against the dense reference. With residual tolerance tau, every
// vertex retains less than tau unharvested mass, so any aggregate is
// within n·tau/(1-d) of the fixed point; the assertions use a 10x
// slack on that bound.
func TestPageRankMatchesPowerIteration(t *testing.T) {
	mgr, _ := newManager(t, 8, 31)
	ex := New(mgr, Config{Undirected: true, CacheBytes: 8 << 20})
	g := mgr.Current()
	n := g.N

	const tol = 1e-9
	// 400 damped iterations contract the error to ~0.85^400 — far below
	// the comparison band.
	ref := refPageRank(g, 400)
	var refSum, refMax float64
	for _, r := range ref {
		refSum += r
		if r > refMax {
			refMax = r
		}
	}

	got, err := ex.PageRank(tol)
	if err != nil {
		t.Fatal(err)
	}
	bound := 10 * float64(n) * tol / (1 - PageRankDamping)
	if math.Abs(got.SumRank-refSum) > bound {
		t.Fatalf("SumRank = %v, reference %v (|diff| %v > %v)", got.SumRank, refSum, math.Abs(got.SumRank-refSum), bound)
	}
	if math.Abs(got.MaxRank-refMax) > bound {
		t.Fatalf("MaxRank = %v, reference %v (bound %v)", got.MaxRank, refMax, bound)
	}
	if got.Iterations <= 0 || got.Tol != tol {
		t.Fatalf("reply metadata %+v implausible", got)
	}

	// The cached score vector (plain layout: original id space) must be
	// within the same band elementwise.
	gen := ex.Cache().Current()
	if gen == nil {
		t.Fatal("no generation after a cacheable pagerank query")
	}
	checked := false
	gen.Range(func(k qcache.Key, v qcache.Value) bool {
		if k.Kind != qcache.KindPageRank {
			return true
		}
		if len(v.Ranks) != n {
			t.Fatalf("cached rank vector has %d entries, want %d", len(v.Ranks), n)
		}
		for i, r := range v.Ranks {
			if math.Abs(r-ref[i]) > bound {
				t.Fatalf("rank[%d] = %v, reference %v (bound %v)", i, r, ref[i], bound)
			}
		}
		checked = true
		return true
	})
	if !checked {
		t.Fatal("pagerank entry missing from the generation")
	}

	// Repeat query at the same tolerance hits the cache and answers
	// identically.
	again, err := ex.PageRank(tol)
	if err != nil {
		t.Fatal(err)
	}
	if again != got {
		t.Fatalf("cache-hit pagerank %+v differs from miss %+v", again, got)
	}
	if ex.Cache().Counters().Hits == 0 {
		t.Fatal("repeat pagerank did not hit the cache")
	}
}

// TestNewKindsLayoutEquivalence extends the cross-layout guarantee to
// the analytics kinds: clustering and k-hop answer bit-identically
// under every storage layout (integer counts; float mean summed in
// original-id order everywhere), and PageRank — the documented
// exception — agrees to within a tolerance-proportional band. Repeated
// after ingest/refresh churn to exercise each layout's delta path.
func TestNewKindsLayoutEquivalence(t *testing.T) {
	const scale, seed = 9, 13
	layouts := []snapmgr.Layout{
		snapmgr.LayoutPlain, snapmgr.LayoutDegree, snapmgr.LayoutBFS,
		snapmgr.LayoutRCM, snapmgr.LayoutCompressed,
	}
	exs := make([]*Executor, len(layouts))
	for i, l := range layouts {
		exs[i] = New(newLayoutManager(t, scale, seed, l), Config{Undirected: true})
	}
	const tol = 1e-9
	n := 1 << scale
	prBound := 10 * float64(n) * tol / (1 - PageRankDamping)

	check := func(round int) {
		t.Helper()
		wantCl, err := exs[0].Clustering()
		if err != nil {
			t.Fatal(err)
		}
		wantPR, err := exs[0].PageRank(tol)
		if err != nil {
			t.Fatal(err)
		}
		for i, l := range layouts[1:] {
			cl, err := exs[i+1].Clustering()
			if err != nil {
				t.Fatal(err)
			}
			if cl.Triangles != wantCl.Triangles || cl.Counted != wantCl.Counted || cl.AvgLocal != wantCl.AvgLocal {
				t.Fatalf("round %d %v: Clustering = %+v, want %+v (bit-identical)", round, l, cl, wantCl)
			}
			pr, err := exs[i+1].PageRank(tol)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(pr.SumRank-wantPR.SumRank) > prBound || math.Abs(pr.MaxRank-wantPR.MaxRank) > prBound {
				t.Fatalf("round %d %v: PageRank = %+v, plain %+v (band %v)", round, l, pr, wantPR, prBound)
			}
		}
		for _, src := range []uint32{0, 3, 101, 511} {
			for _, k := range []uint32{0, 1, 2, 5, maxKHop} {
				want, err := exs[0].KHop(src, k)
				if err != nil {
					t.Fatal(err)
				}
				for i, l := range layouts[1:] {
					got, err := exs[i+1].KHop(src, k)
					if err != nil {
						t.Fatal(err)
					}
					if got.Reached != want.Reached {
						t.Fatalf("round %d %v: KHop(%d,%d) = %d, want %d",
							round, l, src, k, got.Reached, want.Reached)
					}
				}
			}
		}
	}
	check(0)
	r := xrand.New(41)
	for round := 1; round <= 2; round++ {
		var batch []edge.Update
		for i := 0; i < 40; i++ {
			batch = append(batch, edge.Update{
				Edge: edge.Edge{U: r.Uint32n(uint32(n)), V: r.Uint32n(uint32(n)), T: r.Uint32n(50)},
				Op:   edge.Insert,
			})
		}
		batch = stream.Mirror(batch)
		for _, ex := range exs {
			if _, err := ex.Ingest(0, batch); err != nil {
				t.Fatal(err)
			}
			ex.Manager().Refresh(0)
		}
		check(round)
	}
}

// TestNewKindsSteadyStateZeroAlloc extends the serving-layer allocation
// guard to the analytics kinds: at the serving config (Workers = 1,
// cache off) warmed clustering, k-hop, and PageRank queries allocate
// zero objects per request — triangle arena, depth-limited frontier,
// and push-residual state all live in the pooled scratch, and every
// hook is bound once at pool construction.
func TestNewKindsSteadyStateZeroAlloc(t *testing.T) {
	mgr, _ := newManager(t, 9, 37)
	ex := New(mgr, Config{Undirected: true, Workers: 1, MaxConcurrent: 1})

	warm := func() {
		if _, err := ex.Clustering(); err != nil {
			t.Fatal(err)
		}
		if _, err := ex.KHop(1, 3); err != nil {
			t.Fatal(err)
		}
		if _, err := ex.PageRank(1e-4); err != nil {
			t.Fatal(err)
		}
	}
	warm()
	warm()

	if n := testing.AllocsPerRun(10, func() {
		if _, err := ex.Clustering(); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Fatalf("steady-state clustering query allocates %.1f objects/op, want 0", n)
	}
	if n := testing.AllocsPerRun(20, func() {
		if _, err := ex.KHop(1, 3); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Fatalf("steady-state khop query allocates %.1f objects/op, want 0", n)
	}
	if n := testing.AllocsPerRun(10, func() {
		if _, err := ex.PageRank(1e-4); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Fatalf("steady-state pagerank query allocates %.1f objects/op, want 0", n)
	}
}

// TestNewKindsCacheHitZeroAlloc extends the cache-hit allocation guard:
// once cached, the analytics kinds answer repeats without allocating —
// the reply is built by value from the generation's entry.
func TestNewKindsCacheHitZeroAlloc(t *testing.T) {
	mgr, _ := newManager(t, 9, 41)
	ex := New(mgr, Config{Undirected: true, MaxConcurrent: 1, CacheBytes: 64 << 20})

	warm := func() {
		if _, err := ex.Clustering(); err != nil {
			t.Fatal(err)
		}
		if _, err := ex.KHop(1, 3); err != nil {
			t.Fatal(err)
		}
		if _, err := ex.PageRank(0); err != nil {
			t.Fatal(err)
		}
	}
	warm()
	warm()
	if c := ex.Cache().Counters(); c.Hits < 3 {
		t.Fatalf("warm-up did not hit the cache: %+v", c)
	}

	if n := testing.AllocsPerRun(50, func() {
		if _, err := ex.Clustering(); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Fatalf("cache-hit clustering allocates %.1f objects/op, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() {
		if _, err := ex.KHop(1, 3); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Fatalf("cache-hit khop allocates %.1f objects/op, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() {
		if _, err := ex.PageRank(0); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Fatalf("cache-hit pagerank allocates %.1f objects/op, want 0", n)
	}
}
