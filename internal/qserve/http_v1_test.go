package qserve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"snapdyn/internal/snapmgr"
)

func getJSON(t *testing.T, ts *httptest.Server, path string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return resp.StatusCode, body
}

// TestV1EnvelopeMatchesLegacy pins the aliasing contract: for every
// registered kind, the legacy flat route and the /v1 envelope route
// decode, dispatch, and encode identically — the envelope's data field
// is byte-for-byte the legacy body, and kind/epoch/cache frame it.
func TestV1EnvelopeMatchesLegacy(t *testing.T) {
	mgr, _ := newManager(t, 9, 83)
	ex := New(mgr, Config{Undirected: true})
	ex.EnableLive()
	ts := httptest.NewServer(NewServer(ex, true, 1).Handler())
	defer ts.Close()

	cases := []struct {
		kind, params string
	}{
		{"bfs", "?src=3"},
		{"sssp", "?src=7&delta=25"},
		{"connected", "?u=1&v=9"},
		{"connected", "?u=1&v=2&live=1"},
		{"components", ""},
		{"clustering", ""},
		{"khop", "?src=3&k=2"},
		{"pagerank", "?tol=1e-6"},
	}
	for _, tc := range cases {
		code, legacy := getJSON(t, ts, "/query/"+tc.kind+tc.params)
		if code != http.StatusOK {
			t.Fatalf("legacy %s%s: status %d (%v)", tc.kind, tc.params, code, legacy)
		}
		code, env := getJSON(t, ts, "/v1/query/"+tc.kind+tc.params)
		if code != http.StatusOK {
			t.Fatalf("v1 %s%s: status %d (%v)", tc.kind, tc.params, code, env)
		}
		if env["kind"] != tc.kind {
			t.Fatalf("v1 %s%s: kind = %v", tc.kind, tc.params, env["kind"])
		}
		if _, ok := env["epoch"].(float64); !ok {
			t.Fatalf("v1 %s%s: epoch missing: %v", tc.kind, tc.params, env)
		}
		disp, _ := env["cache"].(string)
		switch disp {
		case "hit", "miss", "bypass", "live":
		default:
			t.Fatalf("v1 %s%s: cache disposition %q", tc.kind, tc.params, disp)
		}
		if tc.params == "?u=1&v=2&live=1" && disp != "live" {
			t.Fatalf("live query served with disposition %q", disp)
		}
		if !reflect.DeepEqual(env["data"], legacy) {
			t.Fatalf("%s%s: envelope data %v != legacy body %v", tc.kind, tc.params, env["data"], legacy)
		}
	}
}

// TestV1CacheDisposition checks the envelope's cache field end to end:
// miss then hit with caching on, bypass with caching off.
func TestV1CacheDisposition(t *testing.T) {
	mgr, _ := newManager(t, 8, 89)
	ex := New(mgr, Config{Undirected: true, CacheBytes: 8 << 20})
	ts := httptest.NewServer(NewServer(ex, true, 1).Handler())
	defer ts.Close()

	_, env := getJSON(t, ts, "/v1/query/khop?src=5&k=3")
	if env["cache"] != "miss" {
		t.Fatalf("first khop: cache = %v, want miss", env["cache"])
	}
	_, env = getJSON(t, ts, "/v1/query/khop?src=5&k=3")
	if env["cache"] != "hit" {
		t.Fatalf("repeat khop: cache = %v, want hit", env["cache"])
	}

	exOff := New(mgr, Config{Undirected: true})
	tsOff := httptest.NewServer(NewServer(exOff, true, 1).Handler())
	defer tsOff.Close()
	_, env = getJSON(t, tsOff, "/v1/query/khop?src=5&k=3")
	if env["cache"] != "bypass" {
		t.Fatalf("cache-off khop: cache = %v, want bypass", env["cache"])
	}
}

// TestV1ErrorBodies pins both error framings: the legacy string-only
// body and the v1 {code, message} object, with the status/code mapping
// the README documents.
func TestV1ErrorBodies(t *testing.T) {
	mgr, _ := newManager(t, 8, 97)
	ex := New(mgr, Config{Undirected: true}) // live NOT enabled
	ts := httptest.NewServer(NewServer(ex, true, 1).Handler())
	defer ts.Close()

	code, legacy := getJSON(t, ts, "/query/bfs?src=bogus")
	if code != http.StatusBadRequest {
		t.Fatalf("legacy bad src: status %d", code)
	}
	if msg, ok := legacy["error"].(string); !ok || msg == "" {
		t.Fatalf("legacy error body %v, want {\"error\": \"<message>\"}", legacy)
	}

	v1code := func(body map[string]any) string {
		obj, _ := body["error"].(map[string]any)
		if obj == nil {
			t.Fatalf("v1 error body %v, want {\"error\": {\"code\", \"message\"}}", body)
		}
		if msg, _ := obj["message"].(string); msg == "" {
			t.Fatalf("v1 error body %v has no message", body)
		}
		slug, _ := obj["code"].(string)
		return slug
	}
	cases := []struct {
		path   string
		status int
		code   string
	}{
		{"/v1/query/bfs", http.StatusBadRequest, "bad_request"},             // missing src
		{"/v1/query/bfs?src=99999999", http.StatusBadRequest, "bad_vertex"}, // out of range
		{"/v1/query/connected?u=1&v=2&live=bogus", http.StatusBadRequest, "bad_request"},
		{"/v1/query/connected?u=1&v=2&live=1", http.StatusNotImplemented, "unsupported"}, // live not enabled
		{"/v1/query/pagerank?tol=NaN", http.StatusBadRequest, "bad_request"},
	}
	for _, tc := range cases {
		code, body := getJSON(t, ts, tc.path)
		if code != tc.status {
			t.Fatalf("%s: status %d, want %d (%v)", tc.path, code, tc.status, body)
		}
		if slug := v1code(body); slug != tc.code {
			t.Fatalf("%s: error code %q, want %q", tc.path, slug, tc.code)
		}
	}

	// Unregistered kind: the route does not exist.
	resp, err := http.Get(ts.URL + "/v1/query/no-such-kind")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown kind: status %d, want 404", resp.StatusCode)
	}
}

func pollJob(t *testing.T, ts *httptest.Server, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		code, st := getJSON(t, ts, "/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("poll %s: status %d (%v)", id, code, st)
		}
		if st["state"] != "running" {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still running at deadline: %v", id, st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBetweennessJobFlow drives the offline job endpoint end to end:
// POST starts the sampled sweep and answers 202 with a pollable id,
// GET reports progress and eventually the result; unknown ids are 400;
// and on the compressed layout — where the Brandes engine has no
// resident CSR — the job runs and fails cleanly.
func TestBetweennessJobFlow(t *testing.T) {
	mgr, _ := newManager(t, 8, 101)
	ex := New(mgr, Config{Undirected: true})
	ts := httptest.NewServer(NewServer(ex, true, 1).Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/jobs/betweenness?samples=4&topk=5", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var started map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&started); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job start: status %d (%v)", resp.StatusCode, started)
	}
	id, _ := started["id"].(string)
	if id == "" || started["kind"] != "betweenness" {
		t.Fatalf("job start body %v", started)
	}

	st := pollJob(t, ts, id)
	if st["state"] != "done" {
		t.Fatalf("job finished in state %v: %v", st["state"], st)
	}
	result, _ := st["result"].(map[string]any)
	if result == nil {
		t.Fatalf("done job has no result: %v", st)
	}
	if result["sources"] != float64(4) {
		t.Fatalf("job sampled %v sources, want 4", result["sources"])
	}
	topk, _ := result["topK"].([]any)
	if len(topk) == 0 || len(topk) > 5 {
		t.Fatalf("topK has %d entries, want 1..5", len(topk))
	}

	if code, body := getJSON(t, ts, "/v1/jobs/no-such-job"); code != http.StatusBadRequest {
		t.Fatalf("unknown job id: status %d (%v)", code, body)
	}

	// Compressed layout: the job starts (202) but the sweep fails with
	// ErrUnsupported — reported through the job state, not the POST.
	exC := New(newLayoutManager(t, 8, 101, snapmgr.LayoutCompressed), Config{Undirected: true})
	tsC := httptest.NewServer(NewServer(exC, true, 1).Handler())
	defer tsC.Close()
	resp, err = http.Post(tsC.URL+"/v1/jobs/betweenness?samples=2", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&started); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("compressed job start: status %d", resp.StatusCode)
	}
	st = pollJob(t, tsC, started["id"].(string))
	if st["state"] != "failed" {
		t.Fatalf("compressed-layout job state %v, want failed", st["state"])
	}
	if msg, _ := st["error"].(string); msg == "" {
		t.Fatalf("failed job carries no error: %v", st)
	}
}
