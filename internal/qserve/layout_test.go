package qserve

import (
	"encoding/json"
	"net/http/httptest"
	"testing"

	"snapdyn/internal/dyngraph"
	"snapdyn/internal/edge"
	"snapdyn/internal/rmat"
	"snapdyn/internal/snapmgr"
	"snapdyn/internal/stream"
	"snapdyn/internal/xrand"
)

// newLayoutManager is newManager publishing in the given layout.
func newLayoutManager(t *testing.T, scale int, seed uint64, l snapmgr.Layout) *snapmgr.Manager {
	t.Helper()
	n := 1 << scale
	edges, err := rmat.Generate(0, rmat.PaperParams(scale, 8*n, 50, seed))
	if err != nil {
		t.Fatal(err)
	}
	store := dyngraph.NewTracked(dyngraph.NewHybrid(n, 4*len(edges), 0, seed))
	store.ApplyBatch(0, stream.Mirror(stream.Inserts(edges)))
	return snapmgr.NewLayout(0, store, l)
}

// TestLayoutsAnswerIdentically runs every query type against every
// storage layout and demands the replies match the plain executor's
// bit-for-bit — callers must not be able to tell what format the
// snapshot is stored in — including after ingest/refresh churn that
// exercises each layout's delta path.
func TestLayoutsAnswerIdentically(t *testing.T) {
	const scale, seed = 9, 13
	layouts := []snapmgr.Layout{
		snapmgr.LayoutPlain, snapmgr.LayoutDegree, snapmgr.LayoutBFS,
		snapmgr.LayoutRCM, snapmgr.LayoutCompressed,
	}
	exs := make([]*Executor, len(layouts))
	for i, l := range layouts {
		exs[i] = New(newLayoutManager(t, scale, seed, l), Config{Undirected: true})
	}
	check := func(round int) {
		t.Helper()
		srcs := []uint32{0, 3, 101, 511}
		for _, src := range srcs {
			want, err := exs[0].BFS(src)
			if err != nil {
				t.Fatal(err)
			}
			wantSP, err := exs[0].SSSP(src, 0)
			if err != nil {
				t.Fatal(err)
			}
			for i, l := range layouts[1:] {
				got, err := exs[i+1].BFS(src)
				if err != nil {
					t.Fatal(err)
				}
				if got.Reached != want.Reached || got.Levels != want.Levels {
					t.Fatalf("round %d %v: BFS(%d) = %+v, want %+v", round, l, src, got, want)
				}
				sp, err := exs[i+1].SSSP(src, 0)
				if err != nil {
					t.Fatal(err)
				}
				if sp.Reached != wantSP.Reached || sp.MaxDist != wantSP.MaxDist {
					t.Fatalf("round %d %v: SSSP(%d) = %+v, want %+v", round, l, src, sp, wantSP)
				}
			}
		}
		for _, q := range [][2]uint32{{0, 0}, {1, 2}, {5, 200}, {17, 400}} {
			want, err := exs[0].Connected(q[0], q[1])
			if err != nil {
				t.Fatal(err)
			}
			for i, l := range layouts[1:] {
				got, err := exs[i+1].Connected(q[0], q[1])
				if err != nil {
					t.Fatal(err)
				}
				if got.Connected != want.Connected || got.Hops != want.Hops {
					t.Fatalf("round %d %v: Connected%v = %+v, want %+v", round, l, q, got, want)
				}
			}
		}
		want, err := exs[0].Components()
		if err != nil {
			t.Fatal(err)
		}
		for i, l := range layouts[1:] {
			got, err := exs[i+1].Components()
			if err != nil {
				t.Fatal(err)
			}
			if got.Components != want.Components || got.LargestSize != want.LargestSize {
				t.Fatalf("round %d %v: Components = %+v, want %+v", round, l, got, want)
			}
		}
	}
	check(0)
	r := xrand.New(41)
	n := uint32(1 << scale)
	for round := 1; round <= 3; round++ {
		var batch []edge.Update
		for i := 0; i < 40; i++ {
			batch = append(batch, edge.Update{
				Edge: edge.Edge{U: r.Uint32n(n), V: r.Uint32n(n), T: r.Uint32n(50)},
				Op:   edge.Insert,
			})
		}
		batch = stream.Mirror(batch)
		for _, ex := range exs {
			ex.Ingest(0, batch)
			ex.Manager().Refresh(0)
		}
		check(round)
	}
}

func TestStatsReportsLayoutAndBytes(t *testing.T) {
	plain := New(newLayoutManager(t, 8, 5, snapmgr.LayoutPlain), Config{})
	comp := New(newLayoutManager(t, 8, 5, snapmgr.LayoutCompressed), Config{})
	ps, cs := plain.Stats(), comp.Stats()
	if ps.Format != "plain" || cs.Format != "compressed" {
		t.Fatalf("formats %q/%q", ps.Format, cs.Format)
	}
	if ps.SizeBytes <= 0 || cs.SizeBytes <= 0 {
		t.Fatalf("SizeBytes unset: %d/%d", ps.SizeBytes, cs.SizeBytes)
	}
	if cs.SizeBytes >= ps.SizeBytes {
		t.Fatalf("compressed %d B not smaller than plain %d B", cs.SizeBytes, ps.SizeBytes)
	}
	if ps.Vertices != cs.Vertices || ps.Arcs != cs.Arcs || ps.MaxDegree != cs.MaxDegree {
		t.Fatalf("shape mismatch: %+v vs %+v", ps, cs)
	}

	// The fields ride the /stats wire format.
	srv := httptest.NewServer(NewServer(comp, true, 1).Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var wire struct {
		SizeBytes int64  `json:"sizeBytes"`
		Format    string `json:"format"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	if wire.Format != "compressed" || wire.SizeBytes != cs.SizeBytes {
		t.Fatalf("/stats wire = %+v, want format=compressed sizeBytes=%d", wire, cs.SizeBytes)
	}
}
