package qserve

import (
	"sync"
	"sync/atomic"

	"snapdyn/internal/csr"
	"snapdyn/internal/dynconn"
	"snapdyn/internal/edge"
	"snapdyn/internal/snapmgr"
)

// Live is the between-refresh connectivity index: a dynamic spanning
// forest (internal/dynconn) the ingest path updates synchronously, so
// st-connectivity can be answered from the update stream without
// waiting for the next snapshot publication.
//
// Consistency model: a live answer reflects every batch whose Ingest
// call returned before the query started — fresher than any snapshot —
// and at quiesce (no ingest in flight) it agrees exactly with the
// components of the next published snapshot, because both sides have
// applied the same multiset of updates. Every directed update is
// applied as an undirected forest edge: a mirrored batch (undirected
// serving) inserts both copies as parallel edges and deletes remove
// both, leaving connectivity identical to the snapshot store's;
// directed inputs get undirected (weak-ish) connectivity, the only kind
// a spanning forest can maintain.
//
// Live answers are never cached: the index mutates continuously and is
// pinned to no snapshot.
type Live struct {
	mu  sync.RWMutex
	idx *dynconn.Index
	// version counts applied batches — a cheap change signal for
	// derived structures (the fleet's merged union-find).
	version atomic.Uint64
}

// NewLive returns an empty live index over n vertices. Seed it from the
// current snapshot (SeedView) before serving.
func NewLive(n int) *Live {
	return &Live{idx: dynconn.New(n, nil)}
}

// Apply feeds one ingested batch into the forest, in order. Called by
// the executor's Ingest after the snapshot-path apply succeeds; safe
// for concurrent use.
func (l *Live) Apply(batch []edge.Update) {
	l.mu.Lock()
	for _, up := range batch {
		if up.Op == edge.Delete {
			l.idx.DeleteEdge(up.U, up.V)
		} else {
			l.idx.InsertEdge(up.U, up.V, up.T)
		}
	}
	l.mu.Unlock()
	l.version.Add(1)
}

// Connected answers st-connectivity from the forest: two root walks.
func (l *Live) Connected(u, v uint32) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.idx.Connected(u, v)
}

// Components counts the forest's components (isolated vertices
// included) — the oracle hook the consistency tests compare against
// the snapshot path's component count.
func (l *Live) Components() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.idx.ComponentCount()
}

// Version returns the applied-batch count.
func (l *Live) Version() uint64 { return l.version.Load() }

// SeedView replays every arc of a published snapshot into the forest —
// the bootstrap that makes a live index agree with history it never saw
// (including a durable store's recovered state). Arcs are translated
// back to original ids for reordered layouts; each stored arc becomes
// one undirected edge, exactly what Apply does per update, so seed +
// subsequent batches stays consistent with the snapshot store.
func (l *Live) SeedView(v *snapmgr.View) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if v.C != nil {
		n := v.C.N
		for u := 0; u < n; u++ {
			v.C.Neighbors(edge.ID(u), func(w edge.ID, t uint32) bool {
				l.idx.InsertEdge(uint32(u), w, t)
				return true
			})
		}
		return
	}
	g := v.G
	for pu := 0; pu < g.N; pu++ {
		u := uint32(pu)
		if v.Inv != nil {
			u = v.Inv[pu]
		}
		adj, ts := g.Neighbors(edge.ID(pu))
		for i, pw := range adj {
			w := pw
			if v.Inv != nil {
				w = v.Inv[pw]
			}
			l.idx.InsertEdge(u, w, ts[i])
		}
	}
}

// SeedCSR replays every arc of one plain (unpermuted) CSR snapshot —
// the per-shard seeding hook for the fleet's live index, where each
// shard's view is plain CSR and holds exactly the owned arcs.
func (l *Live) SeedCSR(g *csr.Graph) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for u := 0; u < g.N; u++ {
		adj, ts := g.Neighbors(edge.ID(u))
		for i, w := range adj {
			l.idx.InsertEdge(uint32(u), w, ts[i])
		}
	}
}

// EachTreeEdge visits the forest's current tree edges under the read
// lock — the hook the fleet's merged union-find is rebuilt from.
func (l *Live) EachTreeEdge(fn func(u, v edge.ID)) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	l.idx.EachTreeEdge(fn)
}

// EnableLive builds the live connectivity index, seeded from the
// current snapshot, and starts feeding it from every subsequent Ingest.
// Call before serving (not synchronized with in-flight Ingest calls).
// Live queries (Connected with live=1) fail with ErrUnsupported until
// this is called.
func (e *Executor) EnableLive() {
	l := NewLive(e.NumVertices())
	l.SeedView(e.mgr.View())
	e.live = l
}

// Live returns the live connectivity index, nil until EnableLive.
func (e *Executor) Live() *Live { return e.live }
