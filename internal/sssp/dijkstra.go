package sssp

import (
	"snapdyn/internal/csr"
	"snapdyn/internal/edge"
)

// Dijkstra computes exact shortest path distances from src with a typed
// binary heap — the sequential baseline. Weights must be non-negative;
// a negative weight panics. The heap stores (vertex, distance) pairs
// directly, so pushes and pops involve no interface boxing.
func Dijkstra(g *csr.Graph, src edge.ID, w WeightFunc) []int64 {
	dist := make([]int64, g.N)
	for i := range dist {
		dist[i] = Inf
	}
	dist[src] = 0
	h := distHeap{items: make([]distItem, 1, 64)}
	h.items[0] = distItem{v: src, d: 0}
	for len(h.items) > 0 {
		item := h.pop()
		if item.d > dist[item.v] {
			continue // stale entry
		}
		adj, ts := g.Neighbors(item.v)
		for i, v := range adj {
			wt := w(ts[i])
			if wt < 0 {
				panic("sssp: negative weight")
			}
			if nd := item.d + wt; nd < dist[v] {
				dist[v] = nd
				h.push(distItem{v: v, d: nd})
			}
		}
	}
	return dist
}

type distItem struct {
	v uint32
	d int64
}

// distHeap is a plain binary min-heap over distItem values, ordered by
// distance.
type distHeap struct {
	items []distItem
}

func (h *distHeap) push(it distItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].d <= h.items[i].d {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *distHeap) pop() distItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.items[l].d < h.items[small].d {
			small = l
		}
		if r < last && h.items[r].d < h.items[small].d {
			small = r
		}
		if small == i {
			break
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
	return top
}
