package sssp

import (
	"sync/atomic"

	"snapdyn/internal/compress"
	"snapdyn/internal/edge"
	"snapdyn/internal/par"
	"snapdyn/internal/traversal"
)

// StreamScratch carries the reusable state of compressed-adjacency SSSP
// runs: the distance array, the traversal engine's arena, and the relax
// hook bound once so the steady state allocates no closures. A
// StreamScratch must not be shared by concurrent runs.
type StreamScratch struct {
	trav  *traversal.Scratch
	res   traversal.Result
	dist  []int64
	src   [1]uint32
	wf    WeightFunc
	relax func(u, v uint32, t uint32) bool
}

// NewStreamScratch returns an empty arena; buffers are sized on first
// use.
func NewStreamScratch() *StreamScratch {
	s := &StreamScratch{trav: traversal.NewScratch()}
	s.relax = func(u, v uint32, t uint32) bool {
		nd := atomic.LoadInt64(&s.dist[u]) + s.wf(t)
		for {
			dv := atomic.LoadInt64(&s.dist[v])
			if nd >= dv {
				return false
			}
			if atomic.CompareAndSwapInt64(&s.dist[v], dv, nd) {
				return true
			}
		}
	}
	return s
}

// RunStream computes shortest path distances from src directly over a
// gap-compressed adjacency, without materializing CSR arrays: it drives
// the traversal engine's label-correcting relaxation mode
// (traversal.RunStream with a Relax hook) as a frontier Bellman-Ford.
// Distances match Dijkstra (and Run) exactly; unreachable vertices hold
// Inf. wf nil means LabelWeights. sc nil allocates a throwaway scratch;
// a warm scratch makes repeated serial runs over one snapshot
// allocation-free.
//
// Unlike the delta-stepping kernel this settles no distance bands — a
// vertex re-enters the frontier whenever its label improves — trading
// wasted re-relaxations for zero preprocessing of the compressed
// payload. It is the memory-scale query path; Run on CSR remains the
// throughput path.
func RunStream(cg *compress.Graph, src edge.ID, workers int, wf WeightFunc, sc *StreamScratch) []int64 {
	if sc == nil {
		sc = NewStreamScratch()
	}
	if wf == nil {
		wf = LabelWeights
	}
	if workers <= 0 {
		workers = par.MaxWorkers()
	}
	sc.wf = wf
	n := cg.N
	if cap(sc.dist) < n {
		sc.dist = make([]int64, n)
	}
	sc.dist = sc.dist[:n]
	dist := sc.dist
	if workers == 1 {
		for i := range dist {
			dist[i] = Inf
		}
	} else {
		par.ForBlock(workers, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				dist[i] = Inf
			}
		})
	}
	dist[src] = 0
	sc.src[0] = uint32(src)
	traversal.RunStream(cg, sc.src[:1], traversal.Options{
		Workers: workers,
		Hooks:   traversal.Hooks{Relax: sc.relax},
	}, sc.trav, &sc.res)
	return dist
}
