// Package sssp implements single-source shortest paths for weighted
// graphs — the problem the paper flags as future work ("the problem of
// single-source shortest paths for arbitrarily weighted graphs is
// challenging to parallelize efficiently, and is even harder in a
// dynamic setting") — using the parallel delta-stepping algorithm of the
// authors' companion ALENEX'07 study (paper reference [19]), with a
// sequential Dijkstra baseline for validation.
//
// Weights are derived from the arc's uint32 payload via a WeightFunc, so
// time labels can double as weights or be mapped arbitrarily. The kernel
// runs over a weight-materialized view (internal/wcsr) that computes and
// validates every weight once and pre-partitions each adjacency into a
// light prefix and heavy suffix, so the relaxation phases scan only
// their own arcs with no per-arc closure call or weight branch. A
// Scratch carries every reusable buffer — the distance array, the
// cyclic bucket ring, the dedup bitmaps, and the per-worker relaxation
// outputs — so steady-state repeated SSSP over one snapshot allocates
// nothing.
package sssp

import (
	"math"

	"snapdyn/internal/csr"
	"snapdyn/internal/edge"
	"snapdyn/internal/wcsr"
)

// Inf marks unreachable vertices in distance arrays.
const Inf = int64(math.MaxInt64)

// WeightFunc maps an arc's stored label to a non-negative weight that
// fits in uint32 (label-derived weights always do). Violations are
// reported by a panic from the single up-front materialization pass,
// never from inside a parallel relaxation phase.
type WeightFunc = wcsr.WeightFunc

// UnitWeights ignores labels: every arc costs 1 (BFS distances).
func UnitWeights(uint32) int64 { return 1 }

// LabelWeights uses the stored label directly as the weight.
func LabelWeights(ts uint32) int64 { return int64(ts) }

// Options configures a delta-stepping run.
type Options struct {
	// Workers is the parallelism; <= 0 means GOMAXPROCS.
	Workers int
	// Delta is the bucket width; <= 0 picks the heuristic (average arc
	// weight, deterministically sampled).
	Delta int64
	// Weights maps time labels to arc weights; nil means LabelWeights.
	Weights WeightFunc
	// Scratch, when non-nil, supplies every reusable buffer including
	// the cached weighted view of the graph, making repeated runs over
	// one snapshot allocation-free. The returned distance slice is owned
	// by the Scratch and overwritten by its next run.
	Scratch *Scratch
}

// Run computes shortest path distances from src under opt. Distances
// match Dijkstra exactly; unreachable vertices hold Inf.
func Run(g *csr.Graph, src edge.ID, opt Options) []int64 {
	sc := opt.Scratch
	if sc == nil {
		sc = NewScratch()
	}
	wf := opt.Weights
	if wf == nil {
		wf = LabelWeights
	}
	workers := opt.Workers
	wg := sc.prepare(workers, g, wf, opt.Delta)
	return sc.run(workers, wg, src)
}

// DeltaStepping computes shortest path distances from src in parallel
// using bucketed relaxation: vertices are settled in distance bands of
// width delta; "light" arcs (weight <= delta) are relaxed iteratively
// within a band, "heavy" arcs once per settled vertex. delta <= 0 picks
// a heuristic (average weight). Distances match Dijkstra exactly. It is
// Run with a throwaway Scratch; use Run with a warm Scratch for repeated
// sources over one snapshot.
func DeltaStepping(workers int, g *csr.Graph, src edge.ID, w WeightFunc, delta int64) []int64 {
	return Run(g, src, Options{Workers: workers, Weights: w, Delta: delta})
}
