// Package sssp implements single-source shortest paths for weighted
// graphs — the problem the paper flags as future work ("the problem of
// single-source shortest paths for arbitrarily weighted graphs is
// challenging to parallelize efficiently, and is even harder in a
// dynamic setting") — using the parallel delta-stepping algorithm of the
// authors' companion ALENEX'07 study (paper reference [19]), with a
// sequential Dijkstra baseline for validation.
//
// Weights are derived from the arc's uint32 payload via a WeightFunc, so
// time labels can double as weights or be mapped arbitrarily.
package sssp

import (
	"container/heap"
	"math"
	"sync/atomic"

	"snapdyn/internal/csr"
	"snapdyn/internal/edge"
	"snapdyn/internal/par"
)

// Inf marks unreachable vertices in distance arrays.
const Inf = int64(math.MaxInt64)

// WeightFunc maps an arc's stored label to a non-negative weight.
type WeightFunc func(ts uint32) int64

// UnitWeights ignores labels: every arc costs 1 (BFS distances).
func UnitWeights(uint32) int64 { return 1 }

// LabelWeights uses the stored label directly as the weight.
func LabelWeights(ts uint32) int64 { return int64(ts) }

// Dijkstra computes exact shortest path distances from src with a binary
// heap — the sequential baseline. Weights must be non-negative.
func Dijkstra(g *csr.Graph, src edge.ID, w WeightFunc) []int64 {
	dist := make([]int64, g.N)
	for i := range dist {
		dist[i] = Inf
	}
	dist[src] = 0
	pq := &distHeap{{v: uint32(src), d: 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(distItem)
		if item.d > dist[item.v] {
			continue // stale entry
		}
		adj, ts := g.Neighbors(item.v)
		for i, v := range adj {
			wt := w(ts[i])
			if wt < 0 {
				panic("sssp: negative weight")
			}
			if nd := item.d + wt; nd < dist[v] {
				dist[v] = nd
				heap.Push(pq, distItem{v: v, d: nd})
			}
		}
	}
	return dist
}

type distItem struct {
	v uint32
	d int64
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// DeltaStepping computes shortest path distances from src in parallel
// using bucketed relaxation: vertices are settled in distance bands of
// width delta; "light" arcs (weight <= delta) are relaxed iteratively
// within a band, "heavy" arcs once per settled vertex. delta <= 0 picks
// a heuristic (average weight). Distances match Dijkstra exactly.
func DeltaStepping(workers int, g *csr.Graph, src edge.ID, w WeightFunc, delta int64) []int64 {
	if workers <= 0 {
		workers = par.MaxWorkers()
	}
	if delta <= 0 {
		delta = heuristicDelta(g, w)
	}
	dist := make([]int64, g.N)
	for i := range dist {
		dist[i] = Inf
	}
	dist[src] = 0

	// buckets[i] holds vertices with tentative distance in
	// [i*delta, (i+1)*delta); grown on demand.
	var buckets [][]uint32
	addToBucket := func(v uint32, d int64) {
		idx := int(d / delta)
		for idx >= len(buckets) {
			buckets = append(buckets, nil)
		}
		buckets[idx] = append(buckets[idx], v)
	}
	addToBucket(uint32(src), 0)

	// relax attempts dist[v] = min(dist[v], nd) with a CAS loop; the
	// winning worker reports the improvement through its local adds.
	relax := func(v uint32, nd int64, adds *[]uint32) {
		for {
			cur := atomic.LoadInt64(&dist[v])
			if nd >= cur {
				return
			}
			if atomic.CompareAndSwapInt64(&dist[v], cur, nd) {
				*adds = append(*adds, v)
				return
			}
		}
	}

	perWorker := make([][]uint32, workers)
	runPhase := func(frontier []uint32, light bool) []uint32 {
		for i := range perWorker {
			perWorker[i] = perWorker[i][:0]
		}
		par.ForBlock(workers, len(frontier), func(lo, hi int) {
			wk := workerIndex(workers, len(frontier), lo)
			adds := &perWorker[wk]
			for i := lo; i < hi; i++ {
				u := frontier[i]
				du := atomic.LoadInt64(&dist[u])
				adj, ts := g.Neighbors(u)
				for j, v := range adj {
					wt := w(ts[j])
					if wt < 0 {
						panic("sssp: negative weight")
					}
					if (wt <= delta) != light {
						continue
					}
					relax(v, du+wt, adds)
				}
			}
		})
		var out []uint32
		for i := range perWorker {
			out = append(out, perWorker[i]...)
		}
		return out
	}

	for bi := 0; bi < len(buckets); bi++ {
		var settled []uint32
		// Light-edge fixpoint within the band.
		for len(buckets[bi]) > 0 {
			band := dedupeInBand(buckets[bi], dist, int64(bi), delta)
			buckets[bi] = nil
			settled = append(settled, band...)
			for _, v := range runPhase(band, true) {
				d := atomic.LoadInt64(&dist[v])
				addToBucket(v, d)
			}
			// Re-added vertices may land in this same bucket (light
			// edges keep them within delta); loop until empty.
		}
		// Heavy edges once per settled vertex.
		settled = dedupe(settled)
		for _, v := range runPhase(settled, false) {
			d := atomic.LoadInt64(&dist[v])
			addToBucket(v, d)
		}
	}
	return dist
}

// dedupeInBand filters a bucket to vertices whose current tentative
// distance still falls in band bi (stale entries are dropped), removing
// duplicates.
func dedupeInBand(vs []uint32, dist []int64, bi, delta int64) []uint32 {
	seen := make(map[uint32]bool, len(vs))
	out := vs[:0]
	for _, v := range vs {
		if seen[v] {
			continue
		}
		seen[v] = true
		d := atomic.LoadInt64(&dist[v])
		if d/delta == bi {
			out = append(out, v)
		}
	}
	return out
}

func dedupe(vs []uint32) []uint32 {
	seen := make(map[uint32]bool, len(vs))
	out := vs[:0]
	for _, v := range vs {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// heuristicDelta picks the average arc weight (at least 1), the standard
// delta-stepping starting point.
func heuristicDelta(g *csr.Graph, w WeightFunc) int64 {
	arcs := int64(len(g.Adj))
	if arcs == 0 {
		return 1
	}
	sample := arcs
	if sample > 1<<16 {
		sample = 1 << 16
	}
	var sum int64
	for i := int64(0); i < sample; i++ {
		sum += w(g.TS[i*arcs/sample])
	}
	d := sum / sample
	if d < 1 {
		d = 1
	}
	return d
}

// workerIndex mirrors par.ForBlock's static partitioning.
func workerIndex(workers, n, lo int) int {
	q, r := n/workers, n%workers
	big := r * (q + 1)
	if lo < big {
		return lo / (q + 1)
	}
	if q == 0 {
		return workers - 1
	}
	return r + (lo-big)/q
}
