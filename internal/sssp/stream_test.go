package sssp

import (
	"testing"

	"snapdyn/internal/compress"
	"snapdyn/internal/csr"
	"snapdyn/internal/edge"
	"snapdyn/internal/rmat"
)

func TestRunStreamMatchesDijkstraSmall(t *testing.T) {
	g := weightedGraph(6, true,
		[3]uint32{0, 1, 4}, [3]uint32{0, 2, 1}, [3]uint32{2, 1, 2},
		[3]uint32{1, 3, 5}, [3]uint32{2, 3, 8}, [3]uint32{3, 4, 3})
	cg := compress.FromCSR(0, g)
	for _, workers := range []int{1, 4} {
		dist := RunStream(cg, 0, workers, LabelWeights, nil)
		assertMatchesDijkstra(t, g, 0, dist, "small")
		if dist[5] != Inf {
			t.Fatalf("isolated vertex dist = %d, want Inf", dist[5])
		}
	}
}

func TestRunStreamMatchesDijkstraRMAT(t *testing.T) {
	p := rmat.PaperParams(10, 8*(1<<10), 1000, 7)
	edgesL, _ := rmat.Generate(0, p)
	g := csr.FromEdges(0, 1<<10, edgesL, true)
	cg := compress.FromCSR(0, g)
	sc := NewStreamScratch()
	for _, src := range []edge.ID{0, 17, 512} {
		for _, workers := range []int{1, 4} {
			dist := RunStream(cg, src, workers, LabelWeights, sc)
			assertMatchesDijkstra(t, g, src, dist, "rmat")
		}
	}
}

func TestRunStreamZeroWeights(t *testing.T) {
	// Zero-weight arcs must not enqueue forever (strict-improvement
	// relaxation terminates) and distances still match Dijkstra.
	g := weightedGraph(4, true,
		[3]uint32{0, 1, 0}, [3]uint32{1, 2, 0}, [3]uint32{2, 3, 5})
	cg := compress.FromCSR(0, g)
	dist := RunStream(cg, 0, 1, LabelWeights, nil)
	assertMatchesDijkstra(t, g, 0, dist, "zero weights")
}

func TestRunStreamSteadyStateAllocations(t *testing.T) {
	p := rmat.PaperParams(9, 8*(1<<9), 50, 11)
	edgesL, _ := rmat.Generate(0, p)
	g := csr.FromEdges(0, 1<<9, edgesL, true)
	cg := compress.FromCSR(0, g)
	sc := NewStreamScratch()
	RunStream(cg, 0, 1, LabelWeights, sc) // warm up
	allocs := testing.AllocsPerRun(5, func() {
		RunStream(cg, 3, 1, LabelWeights, sc)
	})
	if allocs != 0 {
		t.Fatalf("serial steady-state RunStream allocated %.1f/op, want 0", allocs)
	}
}
