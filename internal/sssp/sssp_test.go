package sssp

import (
	"fmt"
	"testing"
	"testing/quick"

	"snapdyn/internal/csr"
	"snapdyn/internal/edge"
	"snapdyn/internal/rmat"
	"snapdyn/internal/traversal"
	"snapdyn/internal/xrand"
)

func weightedGraph(n int, undirected bool, es ...[3]uint32) *csr.Graph {
	edges := make([]edge.Edge, len(es))
	for i, e := range es {
		edges[i] = edge.Edge{U: e[0], V: e[1], T: e[2]} // T doubles as weight
	}
	return csr.FromEdges(1, n, edges, undirected)
}

func TestDijkstraLine(t *testing.T) {
	g := weightedGraph(4, true, [3]uint32{0, 1, 5}, [3]uint32{1, 2, 7}, [3]uint32{2, 3, 2})
	dist := Dijkstra(g, 0, LabelWeights)
	want := []int64{0, 5, 12, 14}
	for i := range want {
		if dist[i] != want[i] {
			t.Fatalf("dist[%d] = %d, want %d", i, dist[i], want[i])
		}
	}
}

func TestDijkstraPicksShorterPath(t *testing.T) {
	// 0->2 direct costs 10; 0->1->2 costs 3+4=7.
	g := weightedGraph(3, false,
		[3]uint32{0, 2, 10}, [3]uint32{0, 1, 3}, [3]uint32{1, 2, 4})
	dist := Dijkstra(g, 0, LabelWeights)
	if dist[2] != 7 {
		t.Fatalf("dist[2] = %d, want 7", dist[2])
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := weightedGraph(3, false, [3]uint32{0, 1, 1})
	dist := Dijkstra(g, 0, LabelWeights)
	if dist[2] != Inf {
		t.Fatalf("dist[2] = %d, want Inf", dist[2])
	}
}

func TestUnitWeightsMatchBFS(t *testing.T) {
	p := rmat.PaperParams(10, 6*(1<<10), 100, 3)
	edgesL, _ := rmat.Generate(0, p)
	g := csr.FromEdges(0, p.NumVertices(), edgesL, true)
	src := edge.ID(0)
	dist := Dijkstra(g, src, UnitWeights)
	res := traversal.BFS(0, g, src)
	for v := range dist {
		want := int64(res.Level[v])
		if res.Level[v] == traversal.NotVisited {
			want = Inf
		}
		if dist[v] != want {
			t.Fatalf("dist[%d] = %d, BFS level %d", v, dist[v], res.Level[v])
		}
	}
}

func TestDeltaSteppingMatchesDijkstraSmall(t *testing.T) {
	g := weightedGraph(5, true,
		[3]uint32{0, 1, 2}, [3]uint32{1, 2, 2}, [3]uint32{0, 3, 9},
		[3]uint32{2, 3, 1}, [3]uint32{3, 4, 6}, [3]uint32{1, 4, 20})
	want := Dijkstra(g, 0, LabelWeights)
	for _, delta := range []int64{1, 2, 5, 100, 0} {
		got := DeltaStepping(2, g, 0, LabelWeights, delta)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("delta=%d: dist[%d] = %d, want %d", delta, v, got[v], want[v])
			}
		}
	}
}

func TestDeltaSteppingMatchesDijkstraRMAT(t *testing.T) {
	p := rmat.PaperParams(10, 8*(1<<10), 1000, 7)
	edgesL, _ := rmat.Generate(0, p)
	g := csr.FromEdges(0, p.NumVertices(), edgesL, true)
	for _, src := range []edge.ID{0, 17, 999} {
		want := Dijkstra(g, src, LabelWeights)
		for _, workers := range []int{1, 4} {
			got := DeltaStepping(workers, g, src, LabelWeights, 0)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("workers=%d src=%d: dist[%d] = %d, want %d",
						workers, src, v, got[v], want[v])
				}
			}
		}
	}
}

func TestDeltaSteppingZeroWeights(t *testing.T) {
	// Zero-weight edges are legal (light, no infinite loop).
	g := weightedGraph(4, true,
		[3]uint32{0, 1, 0}, [3]uint32{1, 2, 0}, [3]uint32{2, 3, 5})
	want := Dijkstra(g, 0, LabelWeights)
	got := DeltaStepping(2, g, 0, LabelWeights, 3)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, got[v], want[v])
		}
	}
	if got[2] != 0 || got[3] != 5 {
		t.Fatalf("zero-weight distances wrong: %v", got)
	}
}

func TestDeltaSteppingProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		n := 12 + int(r.Uint32n(20))
		var es []edge.Edge
		for i := 0; i < 4*n; i++ {
			es = append(es, edge.Edge{
				U: r.Uint32n(uint32(n)), V: r.Uint32n(uint32(n)),
				T: r.Uint32n(30),
			})
		}
		g := csr.FromEdges(1, n, es, true)
		src := edge.ID(r.Uint32n(uint32(n)))
		want := Dijkstra(g, src, LabelWeights)
		got := DeltaStepping(3, g, src, LabelWeights, 1+int64(r.Uint32n(20)))
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestDeltaSteppingHubBatch exercises the edge-partitioned relaxation
// phases: a star graph puts one hub with thousands of arcs into a
// one-vertex batch, which the arc prefix sum must split across workers
// (the old vertex partitioning would serialize it), including the
// straddling-block bookkeeping at every worker boundary.
func TestDeltaSteppingHubBatch(t *testing.T) {
	const n = 5000
	var es []edge.Edge
	for v := 1; v < n; v++ {
		// Spoke weights vary so light and heavy phases both split the hub.
		es = append(es, edge.Edge{U: 0, V: uint32(v), T: uint32(1 + v%40)})
	}
	g := csr.FromEdges(0, n, es, true)
	for _, workers := range []int{1, 2, 4, 7} {
		for _, delta := range []int64{1, 10, 50} {
			got := DeltaStepping(workers, g, 0, LabelWeights, delta)
			assertMatchesDijkstra(t, g, 0, got,
				fmt.Sprintf("star w=%d delta=%d", workers, delta))
		}
	}
	// Hub in the middle of a larger batch: a path into the hub plus the
	// spokes, traversed from the path end.
	es = append(es, edge.Edge{U: uint32(n - 1), V: 0, T: 3})
	g = csr.FromEdges(0, n, es, true)
	got := DeltaStepping(4, g, uint32(n-1), LabelWeights, 25)
	assertMatchesDijkstra(t, g, uint32(n-1), got, "hub mid-batch")
}

// assertMatchesDijkstra checks a delta-stepping result against the
// baseline on every vertex.
func assertMatchesDijkstra(t *testing.T, g *csr.Graph, src edge.ID, got []int64, ctx string) {
	t.Helper()
	want := Dijkstra(g, src, LabelWeights)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("%s: dist[%d] = %d, want %d", ctx, v, got[v], want[v])
		}
	}
}

func TestDeltaSteppingExtremes(t *testing.T) {
	p := rmat.PaperParams(10, 8*(1<<10), 30, 9)
	edgesL, _ := rmat.Generate(0, p)
	g := csr.FromEdges(0, p.NumVertices(), edgesL, true)
	maxPath := int64(0)
	for _, d := range Dijkstra(g, 3, LabelWeights) {
		if d != Inf && d > maxPath {
			maxPath = d
		}
	}
	for _, delta := range []int64{
		1,           // every non-zero arc is heavy: one band per distance unit
		maxPath,     // single band: the whole run is one light fixpoint
		maxPath * 2, // delta beyond any path length
	} {
		for _, workers := range []int{1, 4} {
			got := DeltaStepping(workers, g, 3, LabelWeights, delta)
			assertMatchesDijkstra(t, g, 3, got, "extreme delta")
		}
	}
}

func TestDeltaSteppingDisconnected(t *testing.T) {
	// Two components plus an isolated vertex; distances in the source's
	// component are exact, everything else Inf.
	g := weightedGraph(7, true,
		[3]uint32{0, 1, 4}, [3]uint32{1, 2, 3},
		[3]uint32{4, 5, 7}, [3]uint32{5, 6, 1})
	for _, src := range []edge.ID{0, 4, 3} {
		got := DeltaStepping(2, g, src, LabelWeights, 0)
		assertMatchesDijkstra(t, g, src, got, "disconnected")
	}
	if d := DeltaStepping(1, g, 0, LabelWeights, 0); d[4] != Inf || d[3] != Inf {
		t.Fatalf("cross-component distances not Inf: %v", d)
	}
}

func TestDeltaSteppingRingOverflow(t *testing.T) {
	// Weights far above delta force heavy relaxations beyond the capped
	// cyclic ring window, exercising the overflow redistribution path.
	g := weightedGraph(6, true,
		[3]uint32{0, 1, 50_000}, [3]uint32{1, 2, 120_000},
		[3]uint32{0, 3, 250_000}, [3]uint32{3, 4, 2},
		[3]uint32{2, 4, 90_000}, [3]uint32{0, 5, 1})
	for _, workers := range []int{1, 3} {
		got := DeltaStepping(workers, g, 0, LabelWeights, 1)
		assertMatchesDijkstra(t, g, 0, got, "ring overflow")
	}
}

func TestDeltaSteppingOverflowShortcut(t *testing.T) {
	// Regression: a long light chain keeps the ring non-empty while a
	// heavy shortcut lands in overflow beyond the capped ring window
	// (band 5000 >= span 4096 at delta=1). The band scan must not pass
	// the overflow band — the shortcut's continuation is the shortest
	// path to the tail vertex and would otherwise be lost.
	const chain = 6000
	es := make([][3]uint32, 0, chain+3)
	for v := uint32(0); v < chain-1; v++ {
		es = append(es, [3]uint32{v, v + 1, 1})
	}
	es = append(es,
		[3]uint32{0, chain, 5000},          // heavy shortcut into overflow
		[3]uint32{chain, chain + 1, 1},     // its continuation
		[3]uint32{chain - 1, chain + 1, 2}, // chain-side path, longer
	)
	g := weightedGraph(chain+2, true, es...)
	for _, workers := range []int{1, 2} {
		got := DeltaStepping(workers, g, 0, LabelWeights, 1)
		assertMatchesDijkstra(t, g, 0, got, "overflow shortcut")
		if got[chain+1] != 5001 {
			t.Fatalf("workers=%d: dist[%d] = %d, want 5001 (via shortcut)", workers, chain+1, got[chain+1])
		}
	}
}

func TestScratchReuseAcrossGraphsAndSources(t *testing.T) {
	sc := NewScratch()
	big := func() *csr.Graph {
		p := rmat.PaperParams(10, 8*(1<<10), 500, 21)
		es, _ := rmat.Generate(0, p)
		return csr.FromEdges(0, p.NumVertices(), es, true)
	}()
	small := func() *csr.Graph {
		p := rmat.PaperParams(7, 6*(1<<7), 50, 22)
		es, _ := rmat.Generate(0, p)
		return csr.FromEdges(0, p.NumVertices(), es, true)
	}()
	for i := 0; i < 6; i++ {
		g, src := big, edge.ID(i*101)
		if i%2 == 1 {
			g, src = small, edge.ID(i*13)
		}
		got := Run(g, src, Options{Workers: 2, Scratch: sc})
		assertMatchesDijkstra(t, g, src, got, "scratch reuse")
	}
}

func TestScratchWeightFunctionCacheKey(t *testing.T) {
	g := weightedGraph(3, true, [3]uint32{0, 1, 5}, [3]uint32{1, 2, 5})
	sc := NewScratch()
	if d := Run(g, 0, Options{Scratch: sc}); d[2] != 10 {
		t.Fatalf("label weights: dist[2] = %d, want 10", d[2])
	}
	// Same graph and delta, different named weight function: the cache
	// key includes the function identity, so no Invalidate is needed.
	if d := Run(g, 0, Options{Scratch: sc, Weights: UnitWeights}); d[2] != 2 {
		t.Fatalf("unit weights on warm scratch: dist[2] = %d, want 2", d[2])
	}
	// Closures created from one source location share a code pointer;
	// Invalidate forces the rebuild the key cannot see.
	mk := func(scale int64) WeightFunc {
		return func(ts uint32) int64 { return int64(ts) * scale }
	}
	if d := Run(g, 0, Options{Scratch: sc, Weights: mk(1)}); d[2] != 10 {
		t.Fatalf("scale-1 closure: dist[2] = %d, want 10", d[2])
	}
	sc.Invalidate()
	if d := Run(g, 0, Options{Scratch: sc, Weights: mk(3)}); d[2] != 30 {
		t.Fatalf("scale-3 closure after Invalidate: dist[2] = %d, want 30", d[2])
	}
}

func TestSteadyStateAllocations(t *testing.T) {
	p := rmat.PaperParams(12, 8*(1<<12), 100, 31)
	edgesL, _ := rmat.Generate(0, p)
	g := csr.FromEdges(0, p.NumVertices(), edgesL, true)
	sc := NewScratch()
	opt := Options{Workers: 1, Scratch: sc}
	srcs := []edge.ID{0, 17, 999, 4000}
	Run(g, srcs[0], opt) // warm the weighted view and every buffer
	i := 0
	allocs := testing.AllocsPerRun(10, func() {
		Run(g, srcs[i%len(srcs)], opt)
		i++
	})
	// The warm steady state must not allocate: the Scratch holds the
	// distance array, the cached weighted view, the bucket ring, the
	// dedup bitmaps, the per-worker outputs, and the executor closures.
	// The acceptance bound allows 2 objects/run of slack (mirroring the
	// Brandes guard); today the measured value is 0.
	if allocs > 2 {
		t.Fatalf("steady-state allocs/run = %g, want <= 2", allocs)
	}
}

func TestNegativeWeightPanics(t *testing.T) {
	g := weightedGraph(2, false, [3]uint32{0, 1, 5})
	neg := func(ts uint32) int64 { return -1 }
	for name, run := range map[string]func(){
		"dijkstra":       func() { Dijkstra(g, 0, neg) },
		"delta-stepping": func() { DeltaStepping(1, g, 0, neg, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic for negative weight", name)
				}
			}()
			run()
		}()
	}
}

func TestEmptyGraph(t *testing.T) {
	g := csr.FromEdges(1, 3, nil, false)
	dist := DeltaStepping(2, g, 1, LabelWeights, 0)
	if dist[1] != 0 || dist[0] != Inf || dist[2] != Inf {
		t.Fatalf("isolated source distances wrong: %v", dist)
	}
}

func BenchmarkDijkstra(b *testing.B) {
	p := rmat.PaperParams(14, 8*(1<<14), 100, 5)
	edgesL, _ := rmat.Generate(0, p)
	g := csr.FromEdges(0, p.NumVertices(), edgesL, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dijkstra(g, 0, LabelWeights)
	}
}

// BenchmarkDeltaStepping is the cold path: a fresh Scratch per run pays
// the weighted-view build and every buffer allocation.
func BenchmarkDeltaStepping(b *testing.B) {
	p := rmat.PaperParams(14, 8*(1<<14), 100, 5)
	edgesL, _ := rmat.Generate(0, p)
	g := csr.FromEdges(0, p.NumVertices(), edgesL, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DeltaStepping(0, g, 0, LabelWeights, 0)
	}
}

// BenchmarkDeltaSteppingWarm is the steady state: a warm Scratch reuses
// the weighted view and kernel buffers, allocating nothing per run.
func BenchmarkDeltaSteppingWarm(b *testing.B) {
	p := rmat.PaperParams(14, 8*(1<<14), 100, 5)
	edgesL, _ := rmat.Generate(0, p)
	g := csr.FromEdges(0, p.NumVertices(), edgesL, true)
	opt := Options{Scratch: NewScratch()}
	Run(g, 0, opt)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(g, 0, opt)
	}
	b.ReportMetric(float64(g.NumEdges())*float64(b.N)/b.Elapsed().Seconds()/1e6, "MTEPS")
}

func TestScratchRecoversFromBadWeightFunc(t *testing.T) {
	// A weight-validation panic mid-rebuild must disarm the cached view:
	// a caller that recovers and reuses the scratch with the original
	// weights gets a fresh rebuild, not the half-clobbered cache.
	g := weightedGraph(4, true, [3]uint32{0, 1, 2}, [3]uint32{1, 2, 3}, [3]uint32{2, 3, 4})
	sc := NewScratch()
	want := Run(g, 0, Options{Scratch: sc})
	wantCopy := append([]int64(nil), want...)
	func() {
		defer func() { recover() }()
		Run(g, 0, Options{Scratch: sc, Weights: func(uint32) int64 { return -1 }})
		t.Fatal("bad weight function did not panic")
	}()
	got := Run(g, 0, Options{Scratch: sc})
	for v := range wantCopy {
		if got[v] != wantCopy[v] {
			t.Fatalf("post-recover dist[%d] = %d, want %d", v, got[v], wantCopy[v])
		}
	}
}
