package sssp

import (
	"testing"
	"testing/quick"

	"snapdyn/internal/csr"
	"snapdyn/internal/edge"
	"snapdyn/internal/rmat"
	"snapdyn/internal/traversal"
	"snapdyn/internal/xrand"
)

func weightedGraph(n int, undirected bool, es ...[3]uint32) *csr.Graph {
	edges := make([]edge.Edge, len(es))
	for i, e := range es {
		edges[i] = edge.Edge{U: e[0], V: e[1], T: e[2]} // T doubles as weight
	}
	return csr.FromEdges(1, n, edges, undirected)
}

func TestDijkstraLine(t *testing.T) {
	g := weightedGraph(4, true, [3]uint32{0, 1, 5}, [3]uint32{1, 2, 7}, [3]uint32{2, 3, 2})
	dist := Dijkstra(g, 0, LabelWeights)
	want := []int64{0, 5, 12, 14}
	for i := range want {
		if dist[i] != want[i] {
			t.Fatalf("dist[%d] = %d, want %d", i, dist[i], want[i])
		}
	}
}

func TestDijkstraPicksShorterPath(t *testing.T) {
	// 0->2 direct costs 10; 0->1->2 costs 3+4=7.
	g := weightedGraph(3, false,
		[3]uint32{0, 2, 10}, [3]uint32{0, 1, 3}, [3]uint32{1, 2, 4})
	dist := Dijkstra(g, 0, LabelWeights)
	if dist[2] != 7 {
		t.Fatalf("dist[2] = %d, want 7", dist[2])
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := weightedGraph(3, false, [3]uint32{0, 1, 1})
	dist := Dijkstra(g, 0, LabelWeights)
	if dist[2] != Inf {
		t.Fatalf("dist[2] = %d, want Inf", dist[2])
	}
}

func TestUnitWeightsMatchBFS(t *testing.T) {
	p := rmat.PaperParams(10, 6*(1<<10), 100, 3)
	edgesL, _ := rmat.Generate(0, p)
	g := csr.FromEdges(0, p.NumVertices(), edgesL, true)
	src := edge.ID(0)
	dist := Dijkstra(g, src, UnitWeights)
	res := traversal.BFS(0, g, src)
	for v := range dist {
		want := int64(res.Level[v])
		if res.Level[v] == traversal.NotVisited {
			want = Inf
		}
		if dist[v] != want {
			t.Fatalf("dist[%d] = %d, BFS level %d", v, dist[v], res.Level[v])
		}
	}
}

func TestDeltaSteppingMatchesDijkstraSmall(t *testing.T) {
	g := weightedGraph(5, true,
		[3]uint32{0, 1, 2}, [3]uint32{1, 2, 2}, [3]uint32{0, 3, 9},
		[3]uint32{2, 3, 1}, [3]uint32{3, 4, 6}, [3]uint32{1, 4, 20})
	want := Dijkstra(g, 0, LabelWeights)
	for _, delta := range []int64{1, 2, 5, 100, 0} {
		got := DeltaStepping(2, g, 0, LabelWeights, delta)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("delta=%d: dist[%d] = %d, want %d", delta, v, got[v], want[v])
			}
		}
	}
}

func TestDeltaSteppingMatchesDijkstraRMAT(t *testing.T) {
	p := rmat.PaperParams(10, 8*(1<<10), 1000, 7)
	edgesL, _ := rmat.Generate(0, p)
	g := csr.FromEdges(0, p.NumVertices(), edgesL, true)
	for _, src := range []edge.ID{0, 17, 999} {
		want := Dijkstra(g, src, LabelWeights)
		for _, workers := range []int{1, 4} {
			got := DeltaStepping(workers, g, src, LabelWeights, 0)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("workers=%d src=%d: dist[%d] = %d, want %d",
						workers, src, v, got[v], want[v])
				}
			}
		}
	}
}

func TestDeltaSteppingZeroWeights(t *testing.T) {
	// Zero-weight edges are legal (light, no infinite loop).
	g := weightedGraph(4, true,
		[3]uint32{0, 1, 0}, [3]uint32{1, 2, 0}, [3]uint32{2, 3, 5})
	want := Dijkstra(g, 0, LabelWeights)
	got := DeltaStepping(2, g, 0, LabelWeights, 3)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, got[v], want[v])
		}
	}
	if got[2] != 0 || got[3] != 5 {
		t.Fatalf("zero-weight distances wrong: %v", got)
	}
}

func TestDeltaSteppingProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		n := 12 + int(r.Uint32n(20))
		var es []edge.Edge
		for i := 0; i < 4*n; i++ {
			es = append(es, edge.Edge{
				U: r.Uint32n(uint32(n)), V: r.Uint32n(uint32(n)),
				T: r.Uint32n(30),
			})
		}
		g := csr.FromEdges(1, n, es, true)
		src := edge.ID(r.Uint32n(uint32(n)))
		want := Dijkstra(g, src, LabelWeights)
		got := DeltaStepping(3, g, src, LabelWeights, 1+int64(r.Uint32n(20)))
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeWeightPanics(t *testing.T) {
	g := weightedGraph(2, false, [3]uint32{0, 1, 5})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for negative weight")
		}
	}()
	Dijkstra(g, 0, func(ts uint32) int64 { return -1 })
}

func TestEmptyGraph(t *testing.T) {
	g := csr.FromEdges(1, 3, nil, false)
	dist := DeltaStepping(2, g, 1, LabelWeights, 0)
	if dist[1] != 0 || dist[0] != Inf || dist[2] != Inf {
		t.Fatalf("isolated source distances wrong: %v", dist)
	}
}

func BenchmarkDijkstra(b *testing.B) {
	p := rmat.PaperParams(14, 8*(1<<14), 100, 5)
	edgesL, _ := rmat.Generate(0, p)
	g := csr.FromEdges(0, p.NumVertices(), edgesL, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dijkstra(g, 0, LabelWeights)
	}
}

func BenchmarkDeltaStepping(b *testing.B) {
	p := rmat.PaperParams(14, 8*(1<<14), 100, 5)
	edgesL, _ := rmat.Generate(0, p)
	g := csr.FromEdges(0, p.NumVertices(), edgesL, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DeltaStepping(0, g, 0, LabelWeights, 0)
	}
}
