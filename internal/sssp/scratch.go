package sssp

import (
	"reflect"
	"sync/atomic"

	"snapdyn/internal/csr"
	"snapdyn/internal/edge"
	"snapdyn/internal/frontier"
	"snapdyn/internal/par"
	"snapdyn/internal/psort"
	"snapdyn/internal/wcsr"
)

// maxRing caps the cyclic bucket ring size. Bands beyond the ring's
// window spill into an overflow list that is redistributed when the
// window catches up — only reachable when delta is tiny relative to the
// largest weight.
const maxRing = 1 << 12

// serialArcs is the phase size — in arcs, not vertices — below which a
// relaxation phase runs serially: the goroutine fan-out costs more than
// the relaxations. Measuring in arcs keeps a small batch containing one
// hub on the parallel path.
const serialArcs = 1024

// Scratch is the reusable arena for delta-stepping: the distance array,
// the cached weighted graph view, the cyclic bucket ring with its
// overflow list, the batch-dedup and settled bitmaps, the per-worker
// relaxation outputs, and the persistent executor closure set. After a
// warm-up run, repeated SSSP over the same snapshot (any source)
// allocates nothing. A Scratch must not be shared by concurrent runs,
// and the distance slice returned by a run is overwritten by the next.
//
// The cached weighted view is keyed by the graph pointer, the requested
// delta, and the weight function's code pointer. Distinct named
// functions (LabelWeights vs UnitWeights) therefore never collide, but
// closures created from the same source location share a code pointer
// regardless of their captures — when reusing one Scratch across such
// closures, call Invalidate between them.
type Scratch struct {
	dist []int64

	prep      wcsr.Graph
	prepFor   *csr.Graph
	prepDelta int64
	prepWF    uintptr
	prepOK    bool

	inBatch   *frontier.Bitmap // dedups one batch; cleared per batch member
	inSettled *frontier.Bitmap // dedups a band's settled set; cleared per band
	out       *frontier.Buckets

	ring     [][]uint32 // cyclic bucket array, power-of-two length
	overflow []uint32
	settled  []uint32
	batch    []uint32
	offsets  []int64 // prefix-summed batch degrees (parallel phases)

	ex *exec
}

// NewScratch returns an empty arena; buffers are sized on first use.
func NewScratch() *Scratch { return &Scratch{} }

// Invalidate drops the cached weighted view, forcing the next run to
// rebuild it. Needed only when reusing one Scratch across same-origin
// closures with different captures (see the cache-key note above);
// distinct functions are told apart automatically.
func (sc *Scratch) Invalidate() { sc.prepOK = false }

// prepare returns the weighted view for (g, wf, delta), rebuilding the
// cached one only when the graph or weight function changed. A
// delta-only change re-splits the cached view in place (Retarget —
// binary search per vertex over the weight-sorted spans) instead of
// re-materializing and re-sorting every arc, so alternating deltas
// over one snapshot no longer thrash the cache. The weight function is
// identified by its code pointer — allocation-free, so the warm path
// stays at zero objects.
func (sc *Scratch) prepare(workers int, g *csr.Graph, wf WeightFunc, delta int64) *wcsr.Graph {
	wfp := reflect.ValueOf(wf).Pointer()
	switch {
	case sc.prepOK && sc.prepFor == g && sc.prepWF == wfp && sc.prepDelta == delta:
		// Warm hit.
	case sc.prepOK && sc.prepFor == g && sc.prepWF == wfp:
		sc.prep.Retarget(workers, delta)
		sc.prepDelta = delta
	default:
		// Disarm the cache before Rebuild: a weight-validation panic
		// mid-rebuild leaves the view half-overwritten, and a caller
		// that recovers must not be handed it under the stale key.
		sc.prepOK = false
		sc.prep.Rebuild(workers, g, wf, delta)
		sc.prepFor, sc.prepDelta, sc.prepWF, sc.prepOK = g, delta, wfp, true
	}
	return &sc.prep
}

// ensure sizes every buffer for a run over wg.
func (sc *Scratch) ensure(workers int, wg *wcsr.Graph) {
	n := wg.N
	if cap(sc.dist) < n {
		sc.dist = make([]int64, n)
	} else {
		sc.dist = sc.dist[:n]
	}
	if sc.inBatch == nil {
		sc.inBatch = frontier.NewBitmap(n)
		sc.inSettled = frontier.NewBitmap(n)
	} else if sc.inBatch.Len() != n {
		sc.inBatch.Grow(n)
		sc.inSettled.Grow(n)
	}
	if sc.out == nil {
		sc.out = frontier.NewBuckets(workers)
	} else {
		sc.out.Grow(workers)
	}
	if s := ringSize(wg.MaxW, wg.Delta); len(sc.ring) < s {
		ring := make([][]uint32, s)
		copy(ring, sc.ring)
		sc.ring = ring
	}
}

// ringSize returns the power-of-two ring length covering every band a
// relaxation from the current band can reach: light targets stay within
// one band, heavy targets within maxW/delta + 1, so maxW/delta + 2
// consecutive bands always suffice (capped at maxRing; the overflow
// list absorbs the pathological remainder).
func ringSize(maxW uint32, delta int64) int {
	span := int64(maxW)/delta + 2
	s := 4
	for int64(s) < span && s < maxRing {
		s <<= 1
	}
	return s
}

// exec returns the persistent executor, binding the phase bodies once
// per Scratch so the per-phase par calls reuse the same function values
// instead of allocating fresh closures.
func (sc *Scratch) exec() *exec {
	if sc.ex == nil {
		e := &exec{sc: sc}
		e.light = e.lightBody
		e.heavy = e.heavyBody
		sc.ex = e
	}
	return sc.ex
}

// run executes delta-stepping from src over the weighted view, writing
// into (and returning) the scratch-owned distance array.
func (sc *Scratch) run(workers int, wg *wcsr.Graph, src edge.ID) []int64 {
	if workers <= 0 {
		workers = par.MaxWorkers()
	}
	sc.ensure(workers, wg)
	dist, delta := sc.dist, wg.Delta
	if workers == 1 {
		for i := range dist {
			dist[i] = Inf
		}
	} else {
		par.ForBlock(workers, len(dist), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				dist[i] = Inf
			}
		})
	}
	dist[src] = 0

	e := sc.exec()
	e.wg, e.dist, e.workers = wg, dist, workers

	mask := len(sc.ring) - 1
	sc.overflow = sc.overflow[:0]
	sc.ring[0] = append(sc.ring[0][:0], src)
	queued := 1

	for cur := int64(0); queued > 0 || len(sc.overflow) > 0; {
		if queued == 0 {
			// The ring is drained but overflow entries remain: jump the
			// window forward to their earliest band and re-add them.
			cur, queued = sc.redistribute(cur, mask, delta)
			continue
		}
		if len(sc.overflow) > 0 {
			// Merge overflow entries whose band has entered the window
			// before scanning: the scan below may advance cur up to
			// span-1 bands, and a band that lives only in the overflow
			// list must be re-ringed before cur can pass it. Ring
			// entries never need this — an entry is always placed with
			// a base the scan has not passed, so its slot is reached at
			// its true band.
			queued += sc.sweepOverflow(cur, mask, delta)
		}
		for len(sc.ring[int(cur)&mask]) == 0 {
			cur++
		}
		slot := &sc.ring[int(cur)&mask]

		// Light fixpoint: relax the band's light arcs until no vertex
		// re-enters it. A vertex improved within its own band re-enters
		// the slot and is re-relaxed with the smaller distance.
		settled := sc.settled[:0]
		for len(*slot) > 0 {
			raw := *slot
			batch := sc.batch[:0]
			for _, v := range raw {
				d := dist[v]
				if d == Inf || d/delta != cur {
					continue // stale: improved into another band
				}
				if sc.inBatch.Set(v) {
					batch = append(batch, v)
				}
			}
			queued -= len(raw)
			*slot = raw[:0]
			for _, v := range batch {
				sc.inBatch.Clear(v)
				if sc.inSettled.Set(v) {
					settled = append(settled, v)
				}
			}
			sc.batch = batch
			if len(batch) == 0 {
				continue
			}
			e.batch = batch
			e.runPhase(true)
			queued += sc.drain(cur, mask, delta)
		}

		// Heavy pass: once per vertex settled in this band, with its
		// final distance. Heavy targets always land in strictly later
		// bands, so the fixpoint cannot reopen.
		if len(settled) > 0 {
			e.batch = settled
			e.runPhase(false)
			queued += sc.drain(cur, mask, delta)
			for _, v := range settled {
				sc.inSettled.Clear(v)
			}
		}
		sc.settled = settled
		cur++
	}

	return dist
}

// drain moves the per-worker relaxation outputs into the ring (or the
// overflow list for bands beyond the window base cur), returning the
// number of ring entries added.
func (sc *Scratch) drain(cur int64, mask int, delta int64) int {
	dist := sc.dist
	span := int64(mask + 1)
	added := 0
	for w := 0; w < sc.out.Width(); w++ {
		buf := sc.out.Buf(w)
		for _, v := range buf {
			b := dist[v] / delta
			if b-cur < span {
				sc.ring[int(b)&mask] = append(sc.ring[int(b)&mask], v)
				added++
			} else {
				sc.overflow = append(sc.overflow, v)
			}
		}
		sc.out.Put(w, buf[:0])
	}
	return added
}

// redistribute advances the window to the earliest live overflow band
// and moves every overflow entry now inside the window into the ring.
func (sc *Scratch) redistribute(cur int64, mask int, delta int64) (int64, int) {
	dist := sc.dist
	minBand, live := int64(-1), sc.overflow[:0]
	for _, v := range sc.overflow {
		b := dist[v] / delta
		if b < cur {
			continue // settled in an earlier band: stale duplicate
		}
		if minBand < 0 || b < minBand {
			minBand = b
		}
		live = append(live, v)
	}
	sc.overflow = live
	if minBand < 0 {
		return cur, 0
	}
	return minBand, sc.sweepOverflow(minBand, mask, delta)
}

// sweepOverflow moves every overflow entry whose band lies in the
// window [cur, cur+span) into the ring, drops entries whose distance
// improved into an already-settled band (stale duplicates), keeps the
// rest, and returns the number of ring entries added.
func (sc *Scratch) sweepOverflow(cur int64, mask int, delta int64) int {
	dist := sc.dist
	span := int64(mask + 1)
	added, keep := 0, sc.overflow[:0]
	for _, v := range sc.overflow {
		b := dist[v] / delta
		if b < cur {
			continue
		}
		if b-cur < span {
			sc.ring[int(b)&mask] = append(sc.ring[int(b)&mask], v)
			added++
		} else {
			keep = append(keep, v)
		}
	}
	sc.overflow = keep
	return added
}

// exec is the per-Scratch kernel executor: persistent phase bodies over
// mutable per-phase fields, so phases hand par.ForBlock the same
// function values every time and the steady state allocates no closures.
type exec struct {
	sc      *Scratch
	wg      *wcsr.Graph
	dist    []int64
	workers int
	batch   []uint32

	offsets   []int64 // prefix-summed phase degrees, one entry per batch vertex
	totalWork int64   // arcs in the current phase

	light func(lo, hi int)
	heavy func(lo, hi int)
}

// runPhase relaxes the batch's light or heavy arcs. The parallel path
// partitions the phase's work by *arcs* — a prefix sum over the batch's
// light (or heavy) degrees lets each worker claim an equal slice of
// arcs, exactly as the traversal engine partitions a frontier — so one
// hub vertex in a batch cannot serialize the phase. Small phases (and
// single-worker runs) take the serial path: no goroutine fan-out, no
// atomics.
func (e *exec) runPhase(light bool) {
	if e.workers == 1 {
		e.serialPhase(light)
		return
	}
	wg := e.wg
	offsets := e.sc.offsets[:0]
	if light {
		for _, u := range e.batch {
			offsets = append(offsets, wg.LightEnd[u]-wg.Offsets[u])
		}
	} else {
		for _, u := range e.batch {
			offsets = append(offsets, wg.Offsets[u+1]-wg.LightEnd[u])
		}
	}
	offsets = append(offsets, 0)
	e.sc.offsets = offsets
	e.offsets = offsets
	e.totalWork = psort.ExclusiveScan(e.workers, offsets)
	if e.totalWork == 0 {
		return
	}
	// par.BlockIndex inverts ForBlock's partitioning only when ForBlock
	// doesn't clamp the worker count, hence the totalWork >= workers
	// requirement on the parallel path.
	if e.totalWork < serialArcs || e.totalWork < int64(e.workers) {
		e.serialPhase(light)
		return
	}
	body := e.heavy
	if light {
		body = e.light
	}
	par.ForBlock(e.workers, int(e.totalWork), body)
}

// serialPhase is the single-owner relaxation loop: plain loads and
// stores, improvements appended to worker 0's bucket.
func (e *exec) serialPhase(light bool) {
	wg, dist := e.wg, e.dist
	local := e.sc.out.Take(0)
	for _, u := range e.batch {
		du := dist[u]
		var lo, hi int64
		if light {
			lo, hi = wg.Offsets[u], wg.LightEnd[u]
		} else {
			lo, hi = wg.LightEnd[u], wg.Offsets[u+1]
		}
		for p := lo; p < hi; p++ {
			v := wg.Adj[p]
			if nd := du + int64(wg.W[p]); nd < dist[v] {
				dist[v] = nd
				local = append(local, v)
			}
		}
	}
	e.sc.out.Put(0, local)
}

// lightBody is the parallel light-arc relaxation: lock-free CAS
// relaxation over the worker's arc slice [lo, hi) of the batch's
// concatenated light prefixes. A vertex whose prefix straddles a block
// boundary is relaxed by both neighbors, each over its own arc
// sub-range.
func (e *exec) lightBody(lo, hi int) {
	wg, dist, offsets, batch := e.wg, e.dist, e.offsets, e.batch
	w := par.BlockIndex(e.workers, int(e.totalWork), lo)
	local := e.sc.out.Take(w)
	vi := psort.SearchOffsets(offsets, int64(lo))
	for pos := int64(lo); pos < int64(hi); {
		for offsets[vi+1] <= pos {
			vi++
		}
		u := batch[vi]
		abase := wg.Offsets[u]
		base := abase + (pos - offsets[vi])
		end := abase + (offsets[vi+1] - offsets[vi])
		if stop := abase + (int64(hi) - offsets[vi]); stop < end {
			end = stop
		}
		du := atomic.LoadInt64(&dist[u])
		for p := base; p < end; p++ {
			local = relax(dist, wg.Adj[p], du+int64(wg.W[p]), local)
		}
		pos = end - abase + offsets[vi]
	}
	e.sc.out.Put(w, local)
}

// heavyBody is the parallel heavy-arc relaxation over the batch's
// concatenated heavy suffixes, partitioned like lightBody.
func (e *exec) heavyBody(lo, hi int) {
	wg, dist, offsets, batch := e.wg, e.dist, e.offsets, e.batch
	w := par.BlockIndex(e.workers, int(e.totalWork), lo)
	local := e.sc.out.Take(w)
	vi := psort.SearchOffsets(offsets, int64(lo))
	for pos := int64(lo); pos < int64(hi); {
		for offsets[vi+1] <= pos {
			vi++
		}
		u := batch[vi]
		abase := wg.LightEnd[u]
		base := abase + (pos - offsets[vi])
		end := abase + (offsets[vi+1] - offsets[vi])
		if stop := abase + (int64(hi) - offsets[vi]); stop < end {
			end = stop
		}
		du := atomic.LoadInt64(&dist[u])
		for p := base; p < end; p++ {
			local = relax(dist, wg.Adj[p], du+int64(wg.W[p]), local)
		}
		pos = end - abase + offsets[vi]
	}
	e.sc.out.Put(w, local)
}

// relax attempts dist[v] = min(dist[v], nd) with a CAS loop; the winning
// worker records the improvement in its local bucket.
func relax(dist []int64, v uint32, nd int64, local []uint32) []uint32 {
	for {
		cur := atomic.LoadInt64(&dist[v])
		if nd >= cur {
			return local
		}
		if atomic.CompareAndSwapInt64(&dist[v], cur, nd) {
			return append(local, v)
		}
	}
}
