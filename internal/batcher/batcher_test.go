package batcher

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"snapdyn/internal/edge"
)

func ups(n int) []edge.Update {
	out := make([]edge.Update, n)
	for i := range out {
		out[i] = edge.Update{Op: edge.Insert, Edge: edge.Edge{U: uint32(i), V: uint32(i + 1)}}
	}
	return out
}

// collector is a CommitFunc recording committed batches.
type collector struct {
	mu      sync.Mutex
	batches [][]edge.Update
	total   int
	epoch   uint64
	err     error
	slow    time.Duration
}

func (c *collector) commit(batch []edge.Update) (uint64, error) {
	if c.slow > 0 {
		time.Sleep(c.slow)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return 0, c.err
	}
	// The batch slice is recycled after return: copy.
	c.batches = append(c.batches, append([]edge.Update(nil), batch...))
	c.total += len(batch)
	c.epoch++
	return c.epoch, nil
}

func (c *collector) snapshot() (int, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.batches), c.total
}

func TestGroupCommitCoalesces(t *testing.T) {
	c := &collector{slow: 2 * time.Millisecond}
	b := New(Config{MaxBatch: 1 << 20, MaxDelay: time.Hour}, c.commit)
	defer b.Stop()

	// Fire many concurrent submitters; the slow commit forces later
	// ones to coalesce while the first flush is in flight.
	const n = 64
	var wg sync.WaitGroup
	acks := make([]*Ack, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			a, err := b.Submit(ups(3))
			if err != nil {
				t.Error(err)
				return
			}
			acks[i] = a
		}()
	}
	wg.Wait()
	b.Stop() // flush whatever is pending

	flushes, total := c.snapshot()
	if total != n*3 {
		t.Fatalf("committed %d updates, want %d", total, n*3)
	}
	if flushes >= n {
		t.Fatalf("%d flushes for %d submissions — no coalescing", flushes, n)
	}
	for i, a := range acks {
		if err := a.Err(); err != nil {
			t.Fatalf("ack %d: %v", i, err)
		}
		if a.Epoch() == 0 {
			t.Fatalf("ack %d: zero epoch", i)
		}
	}
	if m := b.Metrics(); m.Submitted != n*3 || m.Flushes != uint64(flushes) {
		t.Fatalf("metrics %+v", m)
	}
}

func TestSizeTrigger(t *testing.T) {
	c := &collector{}
	b := New(Config{MaxBatch: 10, MaxDelay: time.Hour}, c.commit)
	defer b.Stop()
	a, err := b.Submit(ups(10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Wait(2 * time.Second); err != nil {
		t.Fatalf("size-triggered flush did not happen: %v", err)
	}
}

func TestAgeTrigger(t *testing.T) {
	c := &collector{}
	b := New(Config{MaxBatch: 1 << 20, MaxDelay: 5 * time.Millisecond}, c.commit)
	defer b.Stop()
	a, err := b.Submit(ups(1))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := a.Wait(2 * time.Second); err != nil {
		t.Fatalf("age-triggered flush did not happen: %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatalf("age flush took %v, want ~5ms", time.Since(start))
	}
}

func TestTrySubmitSheds(t *testing.T) {
	block := make(chan struct{})
	var entered sync.Once
	started := make(chan struct{})
	b := New(Config{MaxBatch: 4, MaxDelay: time.Nanosecond, MaxPending: 8},
		func(batch []edge.Update) (uint64, error) {
			entered.Do(func() { close(started) })
			<-block
			return 1, nil
		})
	defer func() { close(block); b.Stop() }()

	if _, err := b.Submit(ups(4)); err != nil { // flushes, commit blocks
		t.Fatal(err)
	}
	<-started
	if _, err := b.Submit(ups(8)); err != nil { // fills the queue
		t.Fatal(err)
	}
	if _, err := b.TrySubmit(ups(1)); !errors.Is(err, ErrFull) {
		t.Fatalf("err %v, want ErrFull", err)
	}
	if m := b.Metrics(); m.Shed != 1 {
		t.Fatalf("metrics %+v, want Shed=1", m)
	}
}

func TestSubmitBackpressureBlocksThenProceeds(t *testing.T) {
	release := make(chan struct{})
	var entered sync.Once
	started := make(chan struct{})
	b := New(Config{MaxBatch: 4, MaxDelay: time.Nanosecond, MaxPending: 8},
		func(batch []edge.Update) (uint64, error) {
			entered.Do(func() { close(started) })
			<-release
			return 1, nil
		})

	if _, err := b.Submit(ups(4)); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := b.Submit(ups(8)); err != nil {
		t.Fatal(err)
	}
	var blockedDone atomic.Bool
	unblocked := make(chan *Ack, 1)
	go func() {
		a, err := b.Submit(ups(2)) // must block: queue full
		if err != nil {
			t.Error(err)
		}
		blockedDone.Store(true)
		unblocked <- a
	}()
	time.Sleep(20 * time.Millisecond)
	if blockedDone.Load() {
		t.Fatal("Submit did not block at a full queue")
	}
	close(release) // commits drain the queue
	a := <-unblocked
	if _, err := a.Wait(2 * time.Second); err != nil {
		t.Fatalf("blocked submission never committed: %v", err)
	}
	b.Stop()
}

func TestStopResolvesAllAcks(t *testing.T) {
	c := &collector{slow: time.Millisecond}
	b := New(Config{MaxBatch: 1 << 20, MaxDelay: time.Hour}, c.commit)
	var acks []*Ack
	for i := 0; i < 10; i++ {
		a, err := b.Submit(ups(2))
		if err != nil {
			t.Fatal(err)
		}
		acks = append(acks, a)
	}
	b.Stop()
	for i, a := range acks {
		select {
		case <-a.Done():
		default:
			t.Fatalf("ack %d unresolved after Stop", i)
		}
		if err := a.Err(); err != nil {
			t.Fatalf("ack %d: %v", i, err)
		}
	}
	if _, total := c.snapshot(); total != 20 {
		t.Fatalf("committed %d updates, want 20", total)
	}
	if _, err := b.Submit(ups(1)); !errors.Is(err, ErrStopped) {
		t.Fatalf("Submit after Stop: %v, want ErrStopped", err)
	}
	if _, err := b.TrySubmit(ups(1)); !errors.Is(err, ErrStopped) {
		t.Fatalf("TrySubmit after Stop: %v, want ErrStopped", err)
	}
	b.Stop() // idempotent
}

func TestCommitErrorPropagatesToEveryAck(t *testing.T) {
	boom := errors.New("disk on fire")
	c := &collector{err: boom}
	b := New(Config{MaxBatch: 1 << 20, MaxDelay: time.Hour}, c.commit)
	a1, err := b.Submit(ups(2))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := b.Submit(ups(2))
	if err != nil {
		t.Fatal(err)
	}
	b.Stop()
	if !errors.Is(a1.Err(), boom) || !errors.Is(a2.Err(), boom) {
		t.Fatalf("ack errors %v / %v, want %v", a1.Err(), a2.Err(), boom)
	}
	if m := b.Metrics(); m.CommitErrs == 0 {
		t.Fatalf("metrics %+v, want CommitErrs > 0", m)
	}
}

func TestEmptySubmitResolvesImmediately(t *testing.T) {
	b := New(Config{}, func(batch []edge.Update) (uint64, error) { return 1, nil })
	defer b.Stop()
	a, err := b.Submit(nil)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-a.Done():
	default:
		t.Fatal("empty submission not resolved immediately")
	}
}

func TestAckWaitTimeout(t *testing.T) {
	block := make(chan struct{})
	b := New(Config{MaxBatch: 1, MaxDelay: time.Nanosecond},
		func(batch []edge.Update) (uint64, error) { <-block; return 1, nil })
	a, err := b.Submit(ups(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Wait(10 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err %v, want ErrTimeout", err)
	}
	close(block)
	if _, err := a.Wait(2 * time.Second); err != nil {
		t.Fatalf("post-timeout wait: %v", err)
	}
	b.Stop()
}

// TestPreservesSubmissionOrder: updates from one submitter stay
// contiguous and in order within and across flushes.
func TestPreservesSubmissionOrder(t *testing.T) {
	c := &collector{}
	b := New(Config{MaxBatch: 16, MaxDelay: time.Millisecond}, c.commit)
	var want []edge.Update
	for i := 0; i < 50; i++ {
		u := edge.Update{Op: edge.Insert, Edge: edge.Edge{U: uint32(i), V: uint32(i), T: uint32(i)}}
		want = append(want, u)
		if _, err := b.Submit([]edge.Update{u}); err != nil {
			t.Fatal(err)
		}
	}
	b.Stop()
	c.mu.Lock()
	defer c.mu.Unlock()
	var got []edge.Update
	for _, batch := range c.batches {
		got = append(got, batch...)
	}
	if len(got) != len(want) {
		t.Fatalf("committed %d updates, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("update %d out of order: %+v != %+v", i, got[i], want[i])
		}
	}
}
