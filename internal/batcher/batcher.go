// Package batcher implements the async group-commit front of the
// ingest path: submitters hand in small update slices and immediately
// receive an Ack future, while a single flusher goroutine coalesces
// everything pending into one batch and commits it through a
// caller-supplied CommitFunc (typically WAL append + gated apply,
// internal/durable). One commit = one fsync, amortized over every
// submitter in the batch — the group commit of the PR title.
//
// The pending queue is double-buffered: the flusher swaps the filled
// buffer out under the lock and commits outside it, so submitters keep
// filling the other buffer during the (comparatively slow) fsync.
//
// Flushes trigger on size (MaxBatch pending updates) or age (the
// oldest pending update has waited MaxDelay). Admission control is the
// caller's choice per call: Submit blocks when MaxPending updates are
// queued (backpressure), TrySubmit sheds with ErrFull instead.
//
// The Ack resolves after the commit function returns — for a durable
// commit fn that means the updates are fsynced and applied — carrying
// the snapshot epoch that will contain the batch, so callers can get
// read-your-writes by waiting for a view with Epoch() >= ack epoch.
package batcher

import (
	"errors"
	"sync"
	"time"

	"snapdyn/internal/edge"
)

// ErrFull is returned by TrySubmit when MaxPending updates are queued.
var ErrFull = errors.New("batcher: pending queue full")

// ErrStopped is returned by submissions after Stop.
var ErrStopped = errors.New("batcher: stopped")

// ErrTimeout is returned by Ack.Wait when the commit does not resolve
// in time. The submission itself is still in flight — a timeout
// abandons the wait, not the updates.
var ErrTimeout = errors.New("batcher: ack timeout")

// CommitFunc durably commits one coalesced batch and returns the
// snapshot epoch that will contain it. It runs on the flusher
// goroutine, serially; an error fails every Ack in the batch. The
// batch slice is recycled after the call returns (double buffering) —
// implementations must not retain it.
type CommitFunc func(batch []edge.Update) (epoch uint64, err error)

// Config tunes the batcher. Zero values pick the defaults noted.
type Config struct {
	// MaxBatch flushes as soon as this many updates are pending
	// (default 8192). Larger batches amortize the fsync further at the
	// cost of per-update latency.
	MaxBatch int
	// MaxDelay flushes a non-empty pending buffer at this age even if
	// under MaxBatch (default 2ms) — the latency bound under light
	// load.
	MaxDelay time.Duration
	// MaxPending is the queued-update ceiling at which Submit blocks
	// and TrySubmit sheds (default 4*MaxBatch). A single oversized
	// submission larger than MaxPending is still admitted whole when
	// the queue is empty rather than deadlocking.
	MaxPending int
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8192
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.MaxPending <= 0 {
		c.MaxPending = 4 * c.MaxBatch
	}
	return c
}

// Metrics counts batcher activity since Start.
type Metrics struct {
	// Submitted counts accepted updates; Shed counts updates rejected
	// by TrySubmit at a full queue.
	Submitted uint64
	Shed      uint64
	// Flushes counts commits; Submitted/Flushes is the realized group
	// size. CommitErrs counts commits whose CommitFunc failed.
	Flushes    uint64
	CommitErrs uint64
}

// Ack is the future a submission resolves through: Done closes once
// the batch containing the submission has been committed (or failed).
type Ack struct {
	done  chan struct{}
	epoch uint64
	err   error
}

// Done returns a channel closed when the commit has resolved.
func (a *Ack) Done() <-chan struct{} { return a.done }

// Epoch blocks until resolution and returns the snapshot epoch that
// will contain the submission (meaningless if Err is non-nil).
func (a *Ack) Epoch() uint64 { <-a.done; return a.epoch }

// Err blocks until resolution and returns the commit error, if any.
func (a *Ack) Err() error { <-a.done; return a.err }

// Wait blocks up to timeout (forever if <= 0) for resolution,
// returning the ack epoch and commit error, or ErrTimeout.
func (a *Ack) Wait(timeout time.Duration) (uint64, error) {
	if timeout <= 0 {
		<-a.done
		return a.epoch, a.err
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-a.done:
		return a.epoch, a.err
	case <-t.C:
		return 0, ErrTimeout
	}
}

// Batcher coalesces submissions into group commits. Create with New,
// stop with Stop; all methods are safe for concurrent use.
type Batcher struct {
	cfg    Config
	commit CommitFunc

	mu      sync.Mutex
	room    *sync.Cond // signaled when a flush drains the queue
	pending []edge.Update
	acks    []*Ack
	spare   []edge.Update // the flushed buffer, recycled (double buffering)
	firstAt time.Time     // when pending went empty -> non-empty
	stopped bool

	kick   chan struct{} // cap 1: pending became non-empty or reached MaxBatch
	stopCh chan struct{}
	done   chan struct{}

	metMu sync.Mutex
	met   Metrics
}

// New starts a batcher committing through fn.
func New(cfg Config, fn CommitFunc) *Batcher {
	b := &Batcher{
		cfg:    cfg.withDefaults(),
		commit: fn,
		kick:   make(chan struct{}, 1),
		stopCh: make(chan struct{}),
		done:   make(chan struct{}),
	}
	b.room = sync.NewCond(&b.mu)
	go b.run()
	return b
}

// Metrics returns a copy of the activity counters.
func (b *Batcher) Metrics() Metrics {
	b.metMu.Lock()
	defer b.metMu.Unlock()
	return b.met
}

// Submit queues updates for the next group commit, blocking while the
// pending queue is full (backpressure: ingest slows to the commit
// path's speed instead of dropping). The returned Ack resolves when
// the containing batch commits. Empty submissions resolve immediately
// against the current state.
func (b *Batcher) Submit(updates []edge.Update) (*Ack, error) {
	b.mu.Lock()
	for !b.stopped && len(b.pending) > 0 && len(b.pending)+len(updates) > b.cfg.MaxPending {
		b.room.Wait()
	}
	return b.enqueueLocked(updates)
}

// TrySubmit queues updates like Submit but sheds with ErrFull instead
// of blocking when the queue cannot take them.
func (b *Batcher) TrySubmit(updates []edge.Update) (*Ack, error) {
	b.mu.Lock()
	if !b.stopped && len(b.pending) > 0 && len(b.pending)+len(updates) > b.cfg.MaxPending {
		b.mu.Unlock()
		b.metMu.Lock()
		b.met.Shed += uint64(len(updates))
		b.metMu.Unlock()
		return nil, ErrFull
	}
	return b.enqueueLocked(updates)
}

// enqueueLocked appends updates and registers an ack. Called with
// b.mu held; unlocks it.
func (b *Batcher) enqueueLocked(updates []edge.Update) (*Ack, error) {
	if b.stopped {
		b.mu.Unlock()
		return nil, ErrStopped
	}
	a := &Ack{done: make(chan struct{})}
	if len(updates) == 0 {
		b.mu.Unlock()
		close(a.done)
		return a, nil
	}
	wasEmpty := len(b.pending) == 0
	b.pending = append(b.pending, updates...)
	if wasEmpty {
		b.firstAt = time.Now()
	}
	b.acks = append(b.acks, a)
	full := len(b.pending) >= b.cfg.MaxBatch
	b.mu.Unlock()

	b.metMu.Lock()
	b.met.Submitted += uint64(len(updates))
	b.metMu.Unlock()

	if wasEmpty || full {
		select {
		case b.kick <- struct{}{}:
		default:
		}
	}
	return a, nil
}

// Stop flushes everything pending, resolves every outstanding Ack,
// and stops the flusher. Submissions racing with Stop either commit
// in the final flush or fail with ErrStopped; none are left hanging.
// Idempotent.
func (b *Batcher) Stop() {
	b.mu.Lock()
	if b.stopped {
		b.mu.Unlock()
		<-b.done
		return
	}
	b.stopped = true
	b.mu.Unlock()
	b.room.Broadcast() // fail blocked submitters
	close(b.stopCh)
	<-b.done
}

// run is the flusher: it owns the commit path, swapping the pending
// buffer out under the lock and committing outside it.
func (b *Batcher) run() {
	defer close(b.done)
	timer := time.NewTimer(time.Hour)
	timer.Stop()
	defer timer.Stop()
	for {
		select {
		case <-b.kick:
		case <-b.stopCh:
		}
		for {
			b.mu.Lock()
			if len(b.pending) == 0 {
				stopped := b.stopped
				b.mu.Unlock()
				if stopped {
					return
				}
				break // back to waiting for work
			}
			if !b.stopped && len(b.pending) < b.cfg.MaxBatch {
				if wait := b.cfg.MaxDelay - time.Since(b.firstAt); wait > 0 {
					b.mu.Unlock()
					timer.Reset(wait)
					select {
					case <-timer.C:
					case <-b.kick:
						if !timer.Stop() {
							select {
							case <-timer.C:
							default:
							}
						}
					case <-b.stopCh:
					}
					continue
				}
			}
			batch, acks := b.pending, b.acks
			b.pending, b.spare = b.spare[:0], nil
			b.acks = nil
			b.mu.Unlock()
			b.room.Broadcast()

			epoch, err := b.commit(batch)
			for _, a := range acks {
				a.epoch, a.err = epoch, err
				close(a.done)
			}
			b.metMu.Lock()
			b.met.Flushes++
			if err != nil {
				b.met.CommitErrs++
			}
			b.metMu.Unlock()

			b.mu.Lock()
			b.spare = batch[:0]
			b.mu.Unlock()
		}
	}
}
