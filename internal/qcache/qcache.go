// Package qcache is the snapshot-identity result cache behind the
// serving layer: immutable query results (BFS levels, SSSP distances,
// component labels, connectivity verdicts) keyed by (snapshot identity,
// query kind, arguments), with singleflight coalescing so N concurrent
// identical queries execute the kernel once and every follower shares
// the one immutable result.
//
// Invalidation is free by construction. The RCU snapshot pipeline
// publishes each materialization as a fresh immutable View and — the
// load-bearing half — republishes the *identical* pointer on a no-op
// refresh. The cache therefore keys its live generation by snapshot
// identity (the published pointer), never by epoch number: an epoch
// bump without a content change (no-op refresh) keeps every entry
// alive, while a real refresh swaps the pointer and the whole old
// generation becomes unreachable and dies with its snapshot (RCU by
// GC — no invalidation walk, no epoch bookkeeping, no stale reads).
//
// The hit path is allocation-free: generation match is a pointer
// compare, lookup is one struct-keyed map read under an RWMutex, and
// the cached Value is returned by value (slice headers only — the
// backing arrays are shared and immutable). Misses run the caller's
// compute function exactly once per key per generation; concurrent
// callers for the same key block on the leader's completion channel
// and share its Value (and its error, should the leader fail).
//
// Capacity is a byte budget over the result payloads. Inserting past
// the budget evicts least-recently-stamped ready entries; a single
// result larger than the whole budget is handed to its waiters but
// never stored.
package qcache

import (
	"sync"
	"sync/atomic"
)

// Kind is the query type component of a cache key.
type Kind uint8

const (
	KindBFS Kind = iota
	KindSSSP
	KindConnected
	KindComponents
	KindClustering
	KindKHop
	KindPageRank
)

// Key identifies one cached query within a generation: the query kind
// plus its packed arguments (source vertex, target vertex, bucket
// width — interpretation is per kind and owned by the caller).
type Key struct {
	Kind Kind
	A, B uint64
}

// Value is one immutable cached result. N1/N2, F1/F2, and Flag carry
// the reply aggregates (interpreted per kind by the caller); the
// slices hold the full kernel output — BFS levels, SSSP distances,
// component labels, triangle counts (Dist again), PageRank scores —
// in the snapshot's own id space, both the evidence for bit-identity
// verification and the payload a full-result endpoint would serve.
// Slices are shared between the cache and every hit: they must never
// be mutated after Store/Do returns them.
type Value struct {
	N1, N2 int64
	F1, F2 float64
	Flag   bool
	Levels []int32
	Dist   []int64
	Labels []uint32
	Ranks  []float64
}

// entryOverhead approximates the fixed per-entry footprint (entry
// struct, map bucket share, channel) charged against the byte budget
// on top of the payload slices.
const entryOverhead = 160

// bytes is the budget charge for a value.
func (v Value) bytes() int64 {
	return entryOverhead + 4*int64(len(v.Levels)) + 8*int64(len(v.Dist)) +
		4*int64(len(v.Labels)) + 8*int64(len(v.Ranks))
}

// Counters is a point-in-time view of cache activity. Hits are
// lookups served from a ready entry, Coalesced are followers that
// waited on an in-flight leader and shared its result (counted
// separately from hits: they saved a kernel execution but not the
// latency), Misses are leader executions, Evictions budget-forced
// removals. Bytes is the live generation's current payload footprint.
type Counters struct {
	Hits      uint64
	Misses    uint64
	Coalesced uint64
	Evictions uint64
	Bytes     int64
}

// Cache owns the live generation and the activity counters. All
// methods are safe for concurrent use and nil-safe: a nil *Cache is
// the disabled cache (ForView returns nil, Counters returns zeros),
// so callers gate on construction, not on every call site.
type Cache struct {
	budget int64
	gen    atomic.Pointer[Gen]
	clock  atomic.Uint64 // LRU stamp source

	hits      atomic.Uint64
	misses    atomic.Uint64
	coalesced atomic.Uint64
	evictions atomic.Uint64
}

// New returns a cache with the given payload byte budget, or nil (the
// disabled cache) when budget <= 0.
func New(budget int64) *Cache {
	if budget <= 0 {
		return nil
	}
	return &Cache{budget: budget}
}

// Counters returns a point-in-time view of cache activity.
func (c *Cache) Counters() Counters {
	if c == nil {
		return Counters{}
	}
	var bytes int64
	if g := c.gen.Load(); g != nil {
		g.mu.RLock()
		bytes = g.bytes
		g.mu.RUnlock()
	}
	return Counters{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Evictions: c.evictions.Load(),
		Bytes:     bytes,
	}
}

// Current returns the live generation (nil on a nil or never-used
// cache) — the observation hook the bit-identity hammer verifies
// entries through.
func (c *Cache) Current() *Gen {
	if c == nil {
		return nil
	}
	return c.gen.Load()
}

// Gen is one cache generation: the entries computed against exactly
// one published snapshot. Its identity is the snapshot the owning
// executor pinned when the generation was created — either one
// pointer (ID) or, for the sharded fleet, one pinned snapshot per
// shard (IDs). A generation is never invalidated in place: when the
// pipeline publishes a different snapshot, lookups stop matching, a
// fresh generation replaces it, and the old one is garbage once its
// last in-flight reader drops it.
type Gen struct {
	c     *Cache
	id    any
	ids   []any
	epoch uint64

	mu      sync.RWMutex
	entries map[Key]*entry
	bytes   int64
}

// entry is one keyed slot: in-flight until done is closed, ready (or
// failed) after.
type entry struct {
	seq    atomic.Uint64 // last-use stamp, for eviction
	done   chan struct{}
	val    Value
	err    error
	ready  bool
	gbytes int64 // budget charge while resident (0 = not resident)
}

// ID returns the single-snapshot identity the generation serves (nil
// for a multi-identity generation).
func (g *Gen) ID() any { return g.id }

// IDs returns the multi-part identity (the fleet's per-shard pinned
// snapshots), nil for a single-snapshot generation.
func (g *Gen) IDs() []any { return g.ids }

// Epoch returns the epoch observed when the generation was installed
// (a tiebreaker against stale writers, not an invalidation signal).
func (g *Gen) Epoch() uint64 { return g.epoch }

// ForView returns the live generation for the snapshot identity id
// (compared by ==; pass the published view pointer), installing a
// fresh one when the published snapshot changed. epoch orders racing
// installers: a reader still holding an older snapshot never clobbers
// the generation a newer one installed — it gets a private generation
// instead, correct (entries match its own pinned snapshot) but
// unshared, which is fine because stale pins are one refresh wide.
func (c *Cache) ForView(id any, epoch uint64) *Gen {
	if c == nil {
		return nil
	}
	g := c.gen.Load()
	if g != nil && g.id == id {
		return g
	}
	ng := &Gen{c: c, id: id, epoch: epoch, entries: make(map[Key]*entry)}
	for {
		if g != nil && g.epoch > epoch {
			return ng // newer snapshot already installed; stay private
		}
		if c.gen.CompareAndSwap(g, ng) {
			return ng
		}
		g = c.gen.Load()
		if g != nil && g.id == id {
			return g
		}
	}
}

// ForViews is ForView for multi-part identities: the generation
// matches while every pinned snapshot is identical (elementwise ==).
// ids is copied on install, so callers may reuse their buffer.
func (c *Cache) ForViews(ids []any, epoch uint64) *Gen {
	if c == nil {
		return nil
	}
	g := c.gen.Load()
	if g.matchIDs(ids) {
		return g
	}
	ng := &Gen{c: c, ids: append([]any(nil), ids...), epoch: epoch, entries: make(map[Key]*entry)}
	for {
		if g != nil && g.epoch > epoch {
			return ng
		}
		if c.gen.CompareAndSwap(g, ng) {
			return ng
		}
		g = c.gen.Load()
		if g.matchIDs(ids) {
			return g
		}
	}
}

// matchIDs reports whether the generation's multi-part identity equals
// ids elementwise.
func (g *Gen) matchIDs(ids []any) bool {
	if g == nil || len(g.ids) != len(ids) || g.ids == nil {
		return false
	}
	for i := range ids {
		if g.ids[i] != ids[i] {
			return false
		}
	}
	return true
}

// Lookup returns the ready entry for k, if any — the allocation-free
// hit path. It does not wait on in-flight leaders (that is Do's job):
// a caller that misses here proceeds to Do, which re-checks under the
// write path.
func (g *Gen) Lookup(k Key) (Value, bool) {
	if g == nil {
		return Value{}, false
	}
	g.mu.RLock()
	e := g.entries[k]
	ok := e != nil && e.ready && e.err == nil // flags written under g.mu
	g.mu.RUnlock()
	if !ok {
		return Value{}, false
	}
	// val is never written again once ready; observing ready under the
	// lock orders this read after the leader's write.
	e.seq.Store(g.c.clock.Add(1))
	g.c.hits.Add(1)
	return e.val, true
}

// Do returns the cached value for k, computing it with fn on a miss.
// Exactly one caller per key runs fn (the leader); concurrent callers
// for the same key wait for the leader and share its value and error.
// A failed compute is not cached: the error is delivered to the
// leader's cohort and the key is released for the next attempt.
func (g *Gen) Do(k Key, fn func() (Value, error)) (Value, error) {
	if g == nil {
		return fn()
	}
	g.mu.Lock()
	if e := g.entries[k]; e != nil {
		ready := e.ready // e.ready/e.val/e.err are written under g.mu
		g.mu.Unlock()
		if ready {
			e.seq.Store(g.c.clock.Add(1))
			g.c.hits.Add(1)
			return e.val, nil // failed computes are never left resident
		}
		// Follower: the leader's close(done) happens after it filled
		// val/err, so the reads below are ordered.
		<-e.done
		g.c.coalesced.Add(1)
		return e.val, e.err
	}
	e := &entry{done: make(chan struct{})}
	g.entries[k] = e
	g.mu.Unlock()

	val, err := fn()
	e.seq.Store(g.c.clock.Add(1))

	g.mu.Lock()
	e.val, e.err = val, err
	e.ready = true
	if err != nil {
		delete(g.entries, k) // release the key; next caller retries
	} else {
		b := val.bytes()
		if b > g.c.budget {
			delete(g.entries, k) // larger than the whole budget: serve, don't store
		} else {
			e.gbytes = b
			g.bytes += b
			g.evictOver()
		}
	}
	g.mu.Unlock()
	close(e.done)
	g.c.misses.Add(1)
	return val, err
}

// Store inserts a precomputed value for k (the non-singleflight path;
// used by callers that already executed). An existing entry wins.
func (g *Gen) Store(k Key, val Value) {
	if g == nil {
		return
	}
	b := val.bytes()
	if b > g.c.budget {
		return
	}
	e := &entry{val: val, ready: true, gbytes: b}
	e.seq.Store(g.c.clock.Add(1))
	close2 := make(chan struct{})
	close(close2)
	e.done = close2
	g.mu.Lock()
	if _, dup := g.entries[k]; !dup {
		g.entries[k] = e
		g.bytes += b
		g.evictOver()
	}
	g.mu.Unlock()
}

// evictOver removes least-recently-stamped ready entries until the
// generation fits the budget. Called with g.mu held. The scan is
// O(entries) per eviction round, paid on the miss path only — misses
// just ran a full graph kernel, so the scan is noise.
func (g *Gen) evictOver() {
	for g.bytes > g.c.budget {
		var victim Key
		var ve *entry
		var vseq uint64
		for k, e := range g.entries {
			if !e.ready || e.gbytes == 0 {
				continue // never evict in-flight leaders
			}
			if s := e.seq.Load(); ve == nil || s < vseq {
				victim, ve, vseq = k, e, s
			}
		}
		if ve == nil {
			return
		}
		delete(g.entries, victim)
		g.bytes -= ve.gbytes
		g.c.evictions.Add(1)
	}
}

// Len returns the number of resident entries (ready and in-flight).
func (g *Gen) Len() int {
	if g == nil {
		return 0
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.entries)
}

// Range calls fn for every ready entry. The Value's slices are the
// shared immutable backing arrays — callers may read and retain but
// must never mutate them. fn returning false stops the walk. Range
// snapshots the entry set under the read lock, then runs fn unlocked,
// so a slow verifier never stalls inserts.
func (g *Gen) Range(fn func(Key, Value) bool) {
	if g == nil {
		return
	}
	type kv struct {
		k Key
		v Value
	}
	g.mu.RLock()
	snap := make([]kv, 0, len(g.entries))
	for k, e := range g.entries {
		if e.ready && e.err == nil {
			snap = append(snap, kv{k, e.val})
		}
	}
	g.mu.RUnlock()
	for _, p := range snap {
		if !fn(p.k, p.v) {
			return
		}
	}
}
