package qcache

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestNilCacheIsDisabled(t *testing.T) {
	var c *Cache
	if c2 := New(0); c2 != nil {
		t.Fatalf("New(0) = %v, want nil", c2)
	}
	if g := c.ForView("id", 1); g != nil {
		t.Fatalf("nil cache ForView = %v, want nil", g)
	}
	if g := c.ForViews([]any{"a"}, 1); g != nil {
		t.Fatalf("nil cache ForViews = %v, want nil", g)
	}
	if got := c.Counters(); got != (Counters{}) {
		t.Fatalf("nil cache Counters = %+v, want zeros", got)
	}
	if c.Current() != nil {
		t.Fatal("nil cache Current != nil")
	}

	// A nil generation passes queries through untouched.
	var g *Gen
	if _, ok := g.Lookup(Key{}); ok {
		t.Fatal("nil gen Lookup hit")
	}
	ran := false
	v, err := g.Do(Key{}, func() (Value, error) { ran = true; return Value{N1: 7}, nil })
	if err != nil || v.N1 != 7 || !ran {
		t.Fatalf("nil gen Do = (%+v, %v), ran=%v", v, err, ran)
	}
	g.Store(Key{}, Value{})
	if g.Len() != 0 {
		t.Fatal("nil gen Len != 0")
	}
	g.Range(func(Key, Value) bool { t.Fatal("nil gen Range called fn"); return false })
}

func TestHitMissAndSharedBacking(t *testing.T) {
	c := New(1 << 20)
	id := new(int)
	g := c.ForView(id, 1)
	k := Key{Kind: KindBFS, A: 3}

	if _, ok := g.Lookup(k); ok {
		t.Fatal("lookup hit on empty generation")
	}
	levels := []int32{0, 1, 2, -1}
	calls := 0
	v, err := g.Do(k, func() (Value, error) {
		calls++
		return Value{N1: 3, Levels: levels}, nil
	})
	if err != nil || calls != 1 {
		t.Fatalf("Do = err %v, calls %d", err, calls)
	}
	if &v.Levels[0] != &levels[0] {
		t.Fatal("leader's value does not share the computed backing array")
	}

	hit, ok := g.Lookup(k)
	if !ok {
		t.Fatal("lookup miss after successful Do")
	}
	if &hit.Levels[0] != &levels[0] {
		t.Fatal("hit does not share the cached backing array")
	}
	if hit.N1 != 3 {
		t.Fatalf("hit N1 = %d, want 3", hit.N1)
	}

	// Do on a ready key never re-executes.
	v2, err := g.Do(k, func() (Value, error) {
		t.Fatal("Do re-executed a ready key")
		return Value{}, nil
	})
	if err != nil || &v2.Levels[0] != &levels[0] {
		t.Fatal("ready-key Do did not return the cached value")
	}

	ctr := c.Counters()
	if ctr.Misses != 1 || ctr.Hits != 2 {
		t.Fatalf("counters = %+v, want 1 miss / 2 hits", ctr)
	}
	if want := (Value{N1: 3, Levels: levels}).bytes(); ctr.Bytes != want {
		t.Fatalf("bytes = %d, want %d", ctr.Bytes, want)
	}
}

func TestSingleflightCoalescing(t *testing.T) {
	c := New(1 << 20)
	g := c.ForView(new(int), 1)
	k := Key{Kind: KindSSSP, A: 9, B: 4}

	const followers = 8
	gate := make(chan struct{})
	entered := make(chan struct{})
	var calls atomic.Int64
	dist := []int64{0, 5, 9}

	var wg sync.WaitGroup
	results := make([]Value, followers+1)
	for i := 0; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := g.Do(k, func() (Value, error) {
				close(entered)
				calls.Add(1)
				<-gate // hold the flight open until all followers queue
				return Value{N2: 14, Dist: dist}, nil
			})
			if err != nil {
				t.Errorf("follower %d: %v", i, err)
			}
			results[i] = v
		}(i)
	}
	<-entered
	// Hold the flight open long enough for the followers to queue on
	// the leader's done channel (they are not blocked on the mutex —
	// the leader computes outside it — so they reach the wait quickly).
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()

	if n := calls.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	for i, v := range results {
		if &v.Dist[0] != &dist[0] || v.N2 != 14 {
			t.Fatalf("caller %d got a private result: %+v", i, v)
		}
	}
	// A follower that queued mid-flight counts as coalesced; one that
	// arrived after completion counts as a hit. Either way the kernel
	// ran once and everyone shared its result.
	ctr := c.Counters()
	if ctr.Misses != 1 || ctr.Hits+ctr.Coalesced != followers {
		t.Fatalf("counters = %+v, want 1 miss and %d hits+coalesced", ctr, followers)
	}
	if ctr.Coalesced == 0 {
		t.Fatalf("counters = %+v, want at least one coalesced follower", ctr)
	}
}

func TestErrorsSharedButNotCached(t *testing.T) {
	c := New(1 << 20)
	g := c.ForView(new(int), 1)
	k := Key{Kind: KindConnected, A: 1, B: 2}
	boom := errors.New("boom")

	gate := make(chan struct{})
	entered := make(chan struct{})
	var leaderErr, followerErr error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, leaderErr = g.Do(k, func() (Value, error) {
			close(entered)
			<-gate // hold the flight open while the follower queues
			return Value{}, boom
		})
	}()
	<-entered
	go func() {
		defer wg.Done()
		// Either coalesces onto the failing flight (shares boom) or
		// arrives after the key was released and leads its own
		// successful compute — both are correct.
		_, followerErr = g.Do(k, func() (Value, error) { return Value{Flag: true}, nil })
	}()
	time.Sleep(10 * time.Millisecond) // let the follower queue on the flight
	close(gate)
	wg.Wait()

	if !errors.Is(leaderErr, boom) {
		t.Fatalf("leader error = %v, want %v", leaderErr, boom)
	}
	if followerErr != nil && !errors.Is(followerErr, boom) {
		t.Fatalf("follower error = %v, want %v or nil", followerErr, boom)
	}
	if errors.Is(followerErr, boom) && g.Len() != 0 {
		t.Fatalf("failed compute left %d resident entries", g.Len())
	}
	// The key is released: a later caller retries and can succeed.
	v, err := g.Do(k, func() (Value, error) { return Value{Flag: true}, nil })
	if err != nil || !v.Flag {
		t.Fatalf("retry after failure = (%+v, %v)", v, err)
	}
}

func TestEvictionUnderBudget(t *testing.T) {
	one := Value{Labels: make([]uint32, 100)} // 160 + 400 = 560 bytes
	per := one.bytes()
	c := New(3 * per) // room for exactly 3 entries
	g := c.ForView(new(int), 1)

	for i := range 3 {
		g.Store(Key{Kind: KindComponents, A: uint64(i)}, Value{Labels: make([]uint32, 100)})
	}
	if g.Len() != 3 {
		t.Fatalf("Len = %d, want 3", g.Len())
	}
	// Touch entry 0 so it is most-recent; inserting a 4th must evict 1.
	if _, ok := g.Lookup(Key{Kind: KindComponents, A: 0}); !ok {
		t.Fatal("warm lookup missed")
	}
	g.Store(Key{Kind: KindComponents, A: 3}, Value{Labels: make([]uint32, 100)})
	if g.Len() != 3 {
		t.Fatalf("Len after insert = %d, want 3", g.Len())
	}
	if _, ok := g.Lookup(Key{Kind: KindComponents, A: 1}); ok {
		t.Fatal("least-recently-used entry survived eviction")
	}
	if _, ok := g.Lookup(Key{Kind: KindComponents, A: 0}); !ok {
		t.Fatal("recently-touched entry was evicted")
	}
	ctr := c.Counters()
	if ctr.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", ctr.Evictions)
	}
	if ctr.Bytes > 3*per {
		t.Fatalf("bytes = %d over budget %d", ctr.Bytes, 3*per)
	}

	// An entry larger than the whole budget is served but never stored.
	k := Key{Kind: KindBFS, A: 99}
	v, err := g.Do(k, func() (Value, error) {
		return Value{Levels: make([]int32, 1<<20)}, nil
	})
	if err != nil || len(v.Levels) != 1<<20 {
		t.Fatalf("oversized Do = (%d levels, %v)", len(v.Levels), err)
	}
	if _, ok := g.Lookup(k); ok {
		t.Fatal("oversized entry was stored")
	}
}

func TestGenerationIdentity(t *testing.T) {
	c := New(1 << 20)
	v1, v2 := new(int), new(int)

	g1 := c.ForView(v1, 1)
	g1.Store(Key{Kind: KindBFS, A: 1}, Value{N1: 1})

	// Same pointer (no-op refresh republished it, epoch bumped): the
	// generation — and its entries — survive.
	if g := c.ForView(v1, 2); g != g1 {
		t.Fatal("identical view pointer did not reuse the generation")
	}
	if _, ok := g1.Lookup(Key{Kind: KindBFS, A: 1}); !ok {
		t.Fatal("entry lost across no-op identity reuse")
	}

	// Different pointer (real refresh): fresh generation, old entries
	// unreachable through the cache.
	g2 := c.ForView(v2, 3)
	if g2 == g1 {
		t.Fatal("new view pointer reused the old generation")
	}
	if _, ok := g2.Lookup(Key{Kind: KindBFS, A: 1}); ok {
		t.Fatal("entry leaked across a real refresh")
	}
	if c.Current() != g2 {
		t.Fatal("Current is not the fresh generation")
	}

	// A stale reader (older epoch, old pointer) gets a private
	// generation and never clobbers the fresher installed one.
	gStale := c.ForView(v1, 1)
	if gStale == g1 || gStale == g2 {
		t.Fatal("stale reader shared an installed generation")
	}
	if c.Current() != g2 {
		t.Fatal("stale reader clobbered the live generation")
	}
}

func TestForViewsElementwiseIdentity(t *testing.T) {
	c := New(1 << 20)
	a, b, b2 := new(int), new(int), new(int)

	buf := []any{a, b}
	g1 := c.ForViews(buf, 2)
	g1.Store(Key{Kind: KindSSSP, A: 5}, Value{N2: 5})

	// Caller reuses its buffer with identical pinned views: same gen.
	buf[0], buf[1] = a, b
	if g := c.ForViews(buf, 4); g != g1 {
		t.Fatal("identical pinned views did not match the generation")
	}

	// One shard refreshed: the whole generation is replaced.
	buf[1] = b2
	g2 := c.ForViews(buf, 5)
	if g2 == g1 {
		t.Fatal("changed shard view reused the old generation")
	}
	if _, ok := g2.Lookup(Key{Kind: KindSSSP, A: 5}); ok {
		t.Fatal("entry leaked across a shard refresh")
	}

	// The generation copied the ids: mutating the caller's buffer
	// afterwards must not corrupt matching.
	buf[0] = b2
	buf[1] = a
	if g := c.ForViews([]any{a, b2}, 6); g != g2 {
		t.Fatal("generation identity corrupted by caller buffer reuse")
	}
}

func TestLookupIsAllocationFree(t *testing.T) {
	c := New(1 << 20)
	g := c.ForView(new(int), 1)
	k := Key{Kind: KindBFS, A: 7}
	g.Store(k, Value{N1: 9, Levels: make([]int32, 4096)})

	allocs := testing.AllocsPerRun(100, func() {
		if _, ok := g.Lookup(k); !ok {
			t.Fatal("lookup missed")
		}
	})
	if allocs != 0 {
		t.Fatalf("Lookup allocated %.1f objects/op, want 0", allocs)
	}
}

// TestFollowerSharedReplyNoAlloc pins the coalesced-follower cost: a
// Do that lands on an already-resolved entry returns the shared value
// without allocating — no private copy, no closure evaluation beyond
// the one the caller already built.
func TestFollowerSharedReplyNoAlloc(t *testing.T) {
	c := New(1 << 20)
	g := c.ForView(&struct{}{}, 1)
	k := Key{Kind: KindBFS, A: 9}
	levels := []int32{0, 1, 1, 2}
	if _, err := g.Do(k, func() (Value, error) {
		return Value{N1: 4, N2: 3, Levels: levels}, nil
	}); err != nil {
		t.Fatal(err)
	}

	fn := func() (Value, error) { t.Error("resolved entry recomputed"); return Value{}, nil }
	var got Value
	if n := testing.AllocsPerRun(50, func() {
		v, err := g.Do(k, fn)
		if err != nil {
			t.Fatal(err)
		}
		got = v
	}); n > 0 {
		t.Fatalf("follower on resolved entry allocates %.1f objects/op, want 0", n)
	}
	if &got.Levels[0] != &levels[0] {
		t.Fatal("follower reply does not share the leader's backing array")
	}
}
