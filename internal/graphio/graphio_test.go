package graphio

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"snapdyn/internal/edge"
	"snapdyn/internal/rmat"
	"snapdyn/internal/xrand"
)

func sample(t *testing.T, n int, seed uint64) []edge.Edge {
	t.Helper()
	p := rmat.PaperParams(8, n, 50, seed)
	edges, err := rmat.Generate(0, p)
	if err != nil {
		t.Fatal(err)
	}
	return edges
}

func TestTextRoundTrip(t *testing.T) {
	edges := sample(t, 500, 1)
	var buf bytes.Buffer
	if err := WriteText(&buf, edges); err != nil {
		t.Fatal(err)
	}
	got, n, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(edges) {
		t.Fatalf("len %d != %d", len(got), len(edges))
	}
	for i := range edges {
		if got[i] != edges[i] {
			t.Fatalf("edge %d: %v != %v", i, got[i], edges[i])
		}
	}
	if n != edge.MaxVertex(edges) {
		t.Fatalf("n = %d, want %d", n, edge.MaxVertex(edges))
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	edges := sample(t, 500, 2)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, edges); err != nil {
		t.Fatal(err)
	}
	got, n, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(edges) || n != edge.MaxVertex(edges) {
		t.Fatalf("len %d n %d", len(got), n)
	}
	for i := range edges {
		if got[i] != edges[i] {
			t.Fatalf("edge %d: %v != %v", i, got[i], edges[i])
		}
	}
}

func TestBinarySmallerThanText(t *testing.T) {
	// Full-range ids: decimal rendering is ~30 bytes/edge vs binary's 12.
	r := xrand.New(3)
	edges := make([]edge.Edge, 2000)
	for i := range edges {
		edges[i] = edge.Edge{U: r.Uint32(), V: r.Uint32(), T: r.Uint32()}
	}
	var tb, bb bytes.Buffer
	if err := WriteText(&tb, edges); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bb, edges); err != nil {
		t.Fatal(err)
	}
	if bb.Len() >= tb.Len() {
		t.Fatalf("binary %d >= text %d", bb.Len(), tb.Len())
	}
}

func TestDetect(t *testing.T) {
	edges := sample(t, 100, 4)
	var tb, bb bytes.Buffer
	_ = WriteText(&tb, edges)
	_ = WriteBinary(&bb, edges)
	for name, buf := range map[string]*bytes.Buffer{"text": &tb, "binary": &bb} {
		got, _, err := Detect(buf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != len(edges) {
			t.Fatalf("%s: len %d", name, len(got))
		}
	}
}

func TestReadTextTolerance(t *testing.T) {
	in := "# comment\n\n 1 2 3 \n4 5\n"
	edges, n, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 2 || n != 6 {
		t.Fatalf("edges %v n %d", edges, n)
	}
	if edges[1].T != 0 {
		t.Fatal("missing timestamp should default to 0")
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []string{
		"1\n",                 // too few fields
		"a b\n",               // non-numeric
		"1 b\n",               // non-numeric v
		"1 2 c\n",             // non-numeric t
		"1 2 3 extra4x\n 5\n", // trailing garbage on next line
	}
	for _, c := range cases {
		if _, _, err := ReadText(strings.NewReader(c)); err == nil {
			t.Fatalf("no error for %q", c)
		}
	}
}

func TestReadBinaryErrors(t *testing.T) {
	if _, _, err := ReadBinary(strings.NewReader("BOGUS123whatever")); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Truncated payload.
	edges := sample(t, 10, 5)
	var buf bytes.Buffer
	_ = WriteBinary(&buf, edges)
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated payload accepted")
	}
	// Implausible count.
	var evil bytes.Buffer
	evil.WriteString(Magic)
	evil.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	if _, _, err := ReadBinary(&evil); err == nil {
		t.Fatal("implausible count accepted")
	}
}

func TestEmptyLists(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, n, err := ReadBinary(&buf)
	if err != nil || len(got) != 0 || n != 0 {
		t.Fatalf("empty binary round trip: %v %d %v", got, n, err)
	}
	buf.Reset()
	if err := WriteText(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, n, err = ReadText(&buf)
	if err != nil || len(got) != 0 || n != 0 {
		t.Fatalf("empty text round trip: %v %d %v", got, n, err)
	}
}

func TestBinaryPropertyRoundTrip(t *testing.T) {
	if err := quick.Check(func(seed uint64, ln uint8) bool {
		r := xrand.New(seed)
		edges := make([]edge.Edge, ln)
		for i := range edges {
			edges[i] = edge.Edge{U: r.Uint32(), V: r.Uint32(), T: r.Uint32()}
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, edges); err != nil {
			return false
		}
		got, _, err := ReadBinary(&buf)
		if err != nil || len(got) != len(edges) {
			return false
		}
		for i := range edges {
			if got[i] != edges[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
