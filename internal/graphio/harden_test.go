package graphio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"snapdyn/internal/edge"
)

// validBinary builds a well-formed binary file with k small edges.
func validBinary(t testing.TB, k int) []byte {
	t.Helper()
	edges := make([]edge.Edge, k)
	for i := range edges {
		edges[i] = edge.Edge{U: uint32(i), V: uint32(i + 1), T: uint32(i % 7)}
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, edges); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReadBinaryTypedErrors pins each failure class to its typed
// error, so recovery code can branch on errors.Is.
func TestReadBinaryTypedErrors(t *testing.T) {
	full := validBinary(t, 8)

	// Every proper prefix is ErrTruncated or ErrBadMagic — never a
	// success, never an untyped error, never a panic.
	for cut := 0; cut < len(full); cut++ {
		_, _, err := ReadBinary(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes accepted", cut, len(full))
		}
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadMagic) {
			t.Fatalf("prefix %d: untyped error %v", cut, err)
		}
	}

	// Wrong magic.
	bad := append([]byte("WRONGMAG"), full[8:]...)
	if _, _, err := ReadBinary(bytes.NewReader(bad)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("wrong magic: %v, want ErrBadMagic", err)
	}

	// Implausible count is ErrCorrupt, rejected before any allocation.
	evil := append([]byte(Magic), make([]byte, 8)...)
	binary.LittleEndian.PutUint64(evil[8:], 1<<40)
	if _, _, err := ReadBinary(bytes.NewReader(evil)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("implausible count: %v, want ErrCorrupt", err)
	}
}

// TestReadBinaryLyingCount feeds a plausible-but-false count over a
// tiny payload: the reader must fail with ErrTruncated without trying
// to allocate count edges up front (12 GiB here — an OOM if it did).
func TestReadBinaryLyingCount(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(Magic)
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], 1<<30) // claims a billion edges
	buf.Write(hdr[:])
	buf.Write(make([]byte, 36)) // delivers three
	_, _, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("lying count: %v, want ErrTruncated", err)
	}
}

// TestDetectHostileInputs runs the sniffing loader over adversarial
// heads; it may error, but must not panic and must reject cleanly.
func TestDetectHostileInputs(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte(Magic),                          // magic, nothing else
		[]byte(Magic[:5]),                      // partial magic: text fallback
		append([]byte(Magic), 0xff),            // partial count
		validBinary(t, 3)[:22],                 // mid-edge cut
		bytes.Repeat([]byte{0}, 64),            // binary garbage to the text parser
		[]byte("9999999999999999999999 2 3\n"), // overflowing text ids
	}
	for i, c := range cases {
		edges, n, err := Detect(bytes.NewReader(c))
		if err == nil && len(edges) > 0 && n == 0 {
			t.Fatalf("case %d: %d edges with n=0", i, len(edges))
		}
	}
}

// FuzzReadBinary asserts ReadBinary never panics and that anything it
// accepts round-trips byte-identically through WriteBinary.
func FuzzReadBinary(f *testing.F) {
	f.Add(validBinary(f, 0))
	f.Add(validBinary(f, 5))
	f.Add(validBinary(f, 5)[:20])
	f.Add([]byte("0 1 2\n"))
	evil := append([]byte(Magic), make([]byte, 8)...)
	binary.LittleEndian.PutUint64(evil[8:], 1<<35)
	f.Add(evil)
	f.Fuzz(func(t *testing.T, data []byte) {
		edges, n, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("untyped error: %v", err)
			}
			return
		}
		for _, e := range edges {
			if int(e.U) >= n || int(e.V) >= n {
				t.Fatalf("edge %v outside n=%d", e, n)
			}
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, edges); err != nil {
			t.Fatal(err)
		}
		got, _, err := ReadBinary(bytes.NewReader(buf.Bytes()))
		if err != nil || len(got) != len(edges) {
			t.Fatalf("re-read: %d edges, %v", len(got), err)
		}
	})
}

// FuzzDetect asserts the sniffing path never panics on arbitrary
// bytes and keeps its n >= ids invariant when it succeeds.
func FuzzDetect(f *testing.F) {
	f.Add([]byte("1 2 3\n# c\n4 5\n"))
	f.Add(validBinary(f, 4))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		edges, n, err := Detect(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, e := range edges {
			if int(e.U) >= n || int(e.V) >= n {
				t.Fatalf("edge %v outside n=%d", e, n)
			}
		}
	})
}
