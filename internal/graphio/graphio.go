// Package graphio reads and writes time-stamped edge lists in the two
// formats the tools use: a human-readable text format ("u v t" lines
// with '#' comments) and a compact binary format (magic header + little
// endian uint32 triples) for large instances where text parsing
// dominates load time.
package graphio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"snapdyn/internal/edge"
)

// Magic identifies the binary format, versioned.
const Magic = "SNAPDYNB"

// Typed read errors: loaders and recovery code branch on these (a
// truncated snapshot is recoverable by falling back, a corrupt one is
// not) and callers can surface precise diagnostics. All binary-format
// failures wrap one of them.
var (
	// ErrBadMagic means the input is not the binary format at all.
	ErrBadMagic = errors.New("graphio: bad magic")
	// ErrTruncated means the input ended before the promised data: a
	// partial write or cut-off transfer.
	ErrTruncated = errors.New("graphio: truncated input")
	// ErrCorrupt means the input is structurally impossible (e.g. an
	// edge count no real file could hold).
	ErrCorrupt = errors.New("graphio: corrupt input")
)

// WriteText writes "u v t" lines with a size-comment header.
func WriteText(w io.Writer, edges []edge.Edge) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "# snapdyn edges=%d\n", len(edges)); err != nil {
		return err
	}
	for _, e := range edges {
		if _, err := fmt.Fprintf(bw, "%d %d %d\n", e.U, e.V, e.T); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses "u v [t]" lines, skipping blank lines and '#'
// comments. It returns the edges and the implied vertex-set size
// (max id + 1).
func ReadText(r io.Reader) ([]edge.Edge, int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []edge.Edge
	var maxID uint32
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, 0, fmt.Errorf("graphio: line %d: want 'u v [t]', got %q", line, text)
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, 0, fmt.Errorf("graphio: line %d: %v", line, err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, 0, fmt.Errorf("graphio: line %d: %v", line, err)
		}
		var t uint64
		if len(fields) >= 3 {
			t, err = strconv.ParseUint(fields[2], 10, 32)
			if err != nil {
				return nil, 0, fmt.Errorf("graphio: line %d: %v", line, err)
			}
		}
		e := edge.Edge{U: uint32(u), V: uint32(v), T: uint32(t)}
		edges = append(edges, e)
		if e.U > maxID {
			maxID = e.U
		}
		if e.V > maxID {
			maxID = e.V
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	n := 0
	if len(edges) > 0 {
		n = int(maxID) + 1
	}
	return edges, n, nil
}

// WriteBinary writes the compact format: magic, uint64 count, then
// little-endian (u, v, t) uint32 triples.
func WriteBinary(w io.Writer, edges []edge.Edge) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(Magic); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(edges)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [12]byte
	for _, e := range edges {
		binary.LittleEndian.PutUint32(buf[0:], e.U)
		binary.LittleEndian.PutUint32(buf[4:], e.V)
		binary.LittleEndian.PutUint32(buf[8:], e.T)
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses the compact format. The count prefix is treated as
// untrusted: allocation grows with the bytes actually read, so a bogus
// count on a short or hostile input fails with ErrTruncated after a
// bounded allocation instead of attempting a count-sized one.
func ReadBinary(r io.Reader) ([]edge.Edge, int, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, 0, fmt.Errorf("%w: reading magic: %v", ErrTruncated, err)
	}
	if string(magic) != Magic {
		return nil, 0, fmt.Errorf("%w: %q", ErrBadMagic, magic)
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, 0, fmt.Errorf("%w: reading count: %v", ErrTruncated, err)
	}
	count := binary.LittleEndian.Uint64(hdr[:])
	const maxReasonable = 1 << 36
	if count > maxReasonable {
		return nil, 0, fmt.Errorf("%w: implausible edge count %d", ErrCorrupt, count)
	}
	// Initial capacity is capped: a lying count prefix can only cost
	// one chunk before the first short read surfaces.
	const chunk = 1 << 18
	edges := make([]edge.Edge, 0, min(count, chunk))
	var buf [12]byte
	var maxID uint32
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, 0, fmt.Errorf("%w: edge %d of %d: %v", ErrTruncated, i, count, err)
		}
		e := edge.Edge{
			U: binary.LittleEndian.Uint32(buf[0:]),
			V: binary.LittleEndian.Uint32(buf[4:]),
			T: binary.LittleEndian.Uint32(buf[8:]),
		}
		edges = append(edges, e)
		if e.U > maxID {
			maxID = e.U
		}
		if e.V > maxID {
			maxID = e.V
		}
	}
	n := 0
	if count > 0 {
		n = int(maxID) + 1
	}
	return edges, n, nil
}

// Detect sniffs the format from the first bytes of a reader and
// dispatches to the appropriate parser. The reader must support
// buffering via the returned path only (callers pass a fresh reader).
func Detect(r io.Reader) ([]edge.Edge, int, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	head, err := br.Peek(len(Magic))
	if err == nil && string(head) == Magic {
		return ReadBinary(br)
	}
	return ReadText(br)
}
