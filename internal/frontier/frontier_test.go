package frontier

import (
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"snapdyn/internal/xrand"
)

func TestBitmapSetGet(t *testing.T) {
	b := NewBitmap(200)
	if b.Len() != 200 {
		t.Fatalf("len = %d", b.Len())
	}
	for _, i := range []uint32{0, 1, 63, 64, 65, 127, 128, 199} {
		if b.Get(i) {
			t.Fatalf("bit %d set in fresh bitmap", i)
		}
		if !b.Set(i) {
			t.Fatalf("Set(%d) not newly set", i)
		}
		if b.Set(i) {
			t.Fatalf("Set(%d) newly set twice", i)
		}
		if !b.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if b.Count() != 8 {
		t.Fatalf("count = %d, want 8", b.Count())
	}
	b.Reset()
	if b.Count() != 0 || b.Get(64) {
		t.Fatal("reset did not clear")
	}
}

func TestBitmapTrySetOnce(t *testing.T) {
	// Under heavy concurrency, exactly one TrySet per bit wins.
	const n = 1 << 12
	const workers = 8
	b := NewBitmap(n)
	var wins int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := int64(0)
			for i := uint32(0); i < n; i++ {
				if b.TrySet(i) {
					local++
				}
			}
			atomic.AddInt64(&wins, local)
		}()
	}
	wg.Wait()
	if wins != n {
		t.Fatalf("wins = %d, want %d", wins, n)
	}
	if b.Count() != n {
		t.Fatalf("count = %d, want %d", b.Count(), n)
	}
}

func TestBitmapAppendTo(t *testing.T) {
	b := NewBitmap(300)
	want := []uint32{3, 63, 64, 100, 255, 299}
	for _, i := range want {
		b.Set(i)
	}
	got := b.AppendTo(nil)
	if len(got) != len(want) {
		t.Fatalf("extracted %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("extracted %v, want %v", got, want)
		}
	}
	// Appends after a prefix.
	got = b.AppendTo([]uint32{7})
	if got[0] != 7 || len(got) != len(want)+1 {
		t.Fatalf("prefix append wrong: %v", got)
	}
}

func TestBitmapGrowReuse(t *testing.T) {
	b := NewBitmap(1000)
	b.Set(999)
	b.Grow(500) // shrink reuses and clears
	if b.Len() != 500 || b.Count() != 0 {
		t.Fatalf("after shrink: len=%d count=%d", b.Len(), b.Count())
	}
	b.Set(499)
	b.Grow(640)
	if b.Count() != 0 {
		t.Fatal("grow did not clear")
	}
}

func TestFrontierSparseDenseRoundTrip(t *testing.T) {
	const n = 1 << 10
	f := New(n)
	r := xrand.New(42)
	seen := map[uint32]bool{}
	for len(seen) < 300 {
		v := r.Uint32n(n)
		if !seen[v] {
			seen[v] = true
			f.Append(v)
		}
	}
	if f.Count() != 300 || f.IsDense() {
		t.Fatalf("count=%d dense=%v", f.Count(), f.IsDense())
	}
	bits := f.Bits(4)
	if !f.IsDense() {
		t.Fatal("Bits did not switch representation")
	}
	if bits.Count() != 300 {
		t.Fatalf("bitmap count = %d", bits.Count())
	}
	for v := range seen {
		if !bits.Get(v) {
			t.Fatalf("vertex %d lost in sparse->dense", v)
		}
	}
	// Count is preserved across conversion.
	if f.Count() != 300 {
		t.Fatalf("count after conversion = %d", f.Count())
	}
	verts := f.Vertices()
	if f.IsDense() {
		t.Fatal("Vertices did not switch representation")
	}
	if len(verts) != 300 {
		t.Fatalf("sparse len = %d", len(verts))
	}
	if !sort.SliceIsSorted(verts, func(i, j int) bool { return verts[i] < verts[j] }) {
		t.Fatal("dense->sparse extraction not ascending")
	}
	for _, v := range verts {
		if !seen[v] {
			t.Fatalf("vertex %d appeared from nowhere", v)
		}
	}
}

func TestFrontierDenseWriter(t *testing.T) {
	f := New(128)
	bits := f.DenseWriter()
	set := 0
	for i := uint32(0); i < 128; i += 3 {
		if bits.TrySet(i) {
			set++
		}
	}
	f.SetCount(set)
	if !f.IsDense() || f.Count() != set {
		t.Fatalf("dense=%v count=%d want %d", f.IsDense(), f.Count(), set)
	}
	verts := f.Vertices()
	if len(verts) != set {
		t.Fatalf("extracted %d, want %d", len(verts), set)
	}
}

func TestFrontierResetReuse(t *testing.T) {
	f := New(256)
	for run := 0; run < 3; run++ {
		for i := uint32(0); i < 100; i++ {
			f.Append(i)
		}
		f.Bits(1) // force dense
		f.Reset()
		if f.Count() != 0 || f.IsDense() {
			t.Fatalf("run %d: reset left count=%d dense=%v", run, f.Count(), f.IsDense())
		}
		if f.Bits(1).Count() != 0 {
			t.Fatalf("run %d: stale bits survived reset", run)
		}
		f.Reset()
	}
}

func TestBucketsDrain(t *testing.T) {
	b := NewBuckets(3)
	for w := 0; w < 3; w++ {
		buf := b.Take(w)
		for i := 0; i < 5; i++ {
			buf = append(buf, uint32(w*10+i))
		}
		b.Put(w, buf)
	}
	f := New(64)
	if got := b.Drain(f); got != 15 {
		t.Fatalf("drained %d, want 15", got)
	}
	if f.Count() != 15 {
		t.Fatalf("frontier count %d", f.Count())
	}
	// Buckets are emptied but keep capacity; a second drain adds nothing.
	if got := b.Drain(f); got != 0 {
		t.Fatalf("second drain moved %d", got)
	}
	if b.Take(0) != nil && len(b.Take(0)) != 0 {
		t.Fatal("bucket not emptied")
	}
}

func TestBucketsGrowKeepsBuffers(t *testing.T) {
	b := NewBuckets(2)
	buf := b.Take(0)
	buf = append(buf, 1, 2, 3)
	b.Put(0, buf)
	b.Grow(4)
	if got := b.Take(3); len(got) != 0 {
		t.Fatalf("new bucket not empty: %v", got)
	}
	f := New(8)
	if b.Drain(f) != 3 {
		t.Fatal("grow dropped existing buffer")
	}
}

func TestBitmapClear(t *testing.T) {
	b := NewBitmap(130)
	for _, i := range []uint32{0, 63, 64, 129} {
		b.Set(i)
	}
	b.Clear(63)
	b.Clear(129)
	if b.Get(63) || b.Get(129) {
		t.Fatal("cleared bits still set")
	}
	if !b.Get(0) || !b.Get(64) {
		t.Fatal("Clear disturbed neighboring bits")
	}
	if b.Count() != 2 {
		t.Fatalf("count = %d, want 2", b.Count())
	}
	// Set-after-Clear reports newly set again (the batch-dedup cycle).
	if !b.Set(63) {
		t.Fatal("re-Set after Clear not reported as new")
	}
}

func TestBucketsBufAndWidth(t *testing.T) {
	b := NewBuckets(3)
	if b.Width() != 3 {
		t.Fatalf("width = %d, want 3", b.Width())
	}
	buf := b.Take(1)
	buf = append(buf, 7, 8)
	b.Put(1, buf)
	if got := b.Buf(1); len(got) != 2 || got[0] != 7 || got[1] != 8 {
		t.Fatalf("Buf(1) = %v, want [7 8]", got)
	}
	if len(b.Buf(0)) != 0 || len(b.Buf(2)) != 0 {
		t.Fatal("untouched buckets not empty")
	}
	// The scatter cycle: read Buf, then Put back emptied.
	b.Put(1, b.Buf(1)[:0])
	if len(b.Buf(1)) != 0 {
		t.Fatal("Put of emptied buffer did not clear")
	}
}
