package frontier

import "snapdyn/internal/par"

// Frontier is a hybrid BFS frontier over vertex ids [0, n): a sparse
// vertex queue for the push (top-down) direction and a dense bitmap for
// the pull (bottom-up) direction, converting between the two on demand.
// All backing storage is retained across Reset/Grow so a frontier can be
// reused by many traversals without allocating.
type Frontier struct {
	verts []uint32
	bits  *Bitmap // lazily allocated: pure-sparse users never pay for it
	n     int
	dense bool
	count int
}

// New returns an empty sparse frontier over n vertex ids.
func New(n int) *Frontier {
	f := &Frontier{}
	f.Grow(n)
	return f
}

// Grow resizes the frontier to cover n ids, reusing buffers when large
// enough, and empties it.
func (f *Frontier) Grow(n int) {
	if cap(f.verts) < n {
		f.verts = make([]uint32, 0, n)
	}
	if f.bits != nil && f.bits.Len() != n {
		f.bits.Grow(n)
	}
	f.n = n
	f.Reset()
}

// lazyBits returns the bitmap, allocating it on first dense use.
func (f *Frontier) lazyBits() *Bitmap {
	if f.bits == nil {
		f.bits = NewBitmap(f.n)
	}
	return f.bits
}

// Reset empties the frontier and returns it to sparse mode. The bitmap
// is cleared only when it was in use, keeping Reset O(count) for sparse
// frontiers.
func (f *Frontier) Reset() {
	f.verts = f.verts[:0]
	if f.dense {
		f.bits.Reset()
		f.dense = false
	}
	f.count = 0
}

// Count returns the number of frontier vertices.
func (f *Frontier) Count() int { return f.count }

// IsDense reports whether the bitmap is the current representation.
func (f *Frontier) IsDense() bool { return f.dense }

// Append adds v to a sparse frontier. The caller guarantees v is not
// already present (BFS set-once discovery provides this).
func (f *Frontier) Append(v uint32) {
	f.verts = append(f.verts, v)
	f.count++
}

// AppendAll adds a batch of distinct vertices to a sparse frontier.
func (f *Frontier) AppendAll(vs []uint32) {
	f.verts = append(f.verts, vs...)
	f.count += len(vs)
}

// Vertices returns the frontier as a sparse vertex slice (a view into
// internal storage: valid until the next mutation), converting from the
// bitmap if needed. Conversion yields ascending id order.
func (f *Frontier) Vertices() []uint32 {
	if f.dense {
		f.verts = f.bits.AppendTo(f.verts[:0])
		f.bits.Reset()
		f.dense = false
	}
	return f.verts
}

// Bits returns the frontier as a bitmap (a view into internal storage),
// converting from the sparse queue in parallel if needed. The serial
// path avoids the conversion closure so single-worker steady-state
// traversals stay allocation-free.
func (f *Frontier) Bits(workers int) *Bitmap {
	if !f.dense {
		bits := f.lazyBits()
		verts := f.verts
		if workers == 1 || len(verts) < 1024 {
			for _, v := range verts {
				bits.Set(v)
			}
		} else {
			par.ForBlock(workers, len(verts), func(lo, hi int) {
				for _, v := range verts[lo:hi] {
					bits.TrySet(v)
				}
			})
		}
		f.verts = f.verts[:0]
		f.dense = true
	}
	return f.bits
}

// DenseWriter switches an empty frontier to dense mode and returns the
// bitmap for concurrent TrySet publication. The producer must report the
// number of bits it set via SetCount (cheaper than a popcount pass when
// the producer already counts discoveries).
func (f *Frontier) DenseWriter() *Bitmap {
	f.dense = true
	return f.lazyBits()
}

// SetCount records the frontier size after direct bitmap publication.
func (f *Frontier) SetCount(c int) { f.count = c }

// Buckets is a pool of per-worker append buffers for frontier
// production: each worker takes its bucket, appends discoveries, puts it
// back, and Drain concatenates the buckets into a frontier. Buffer
// capacity is retained across levels and traversals.
type Buckets struct {
	bufs [][]uint32
}

// NewBuckets returns a pool of the given width.
func NewBuckets(workers int) *Buckets {
	b := &Buckets{}
	b.Grow(workers)
	return b
}

// Grow widens the pool to at least the given number of workers, keeping
// existing buffers.
func (b *Buckets) Grow(workers int) {
	for len(b.bufs) < workers {
		b.bufs = append(b.bufs, nil)
	}
}

// Width returns the number of buffers in the pool.
func (b *Buckets) Width() int { return len(b.bufs) }

// Take returns worker w's buffer, emptied.
func (b *Buckets) Take(w int) []uint32 { return b.bufs[w][:0] }

// Buf returns worker w's current contents without emptying it (a view;
// valid until the next Take or Put for w). Consumers that scatter bucket
// contents somewhere other than a Frontier iterate Buf over the width
// and Put the emptied buffer back.
func (b *Buckets) Buf(w int) []uint32 { return b.bufs[w] }

// Put stores worker w's buffer back (call after appends: append may have
// reallocated the backing array).
func (b *Buckets) Put(w int, buf []uint32) { b.bufs[w] = buf }

// Drain appends every bucket's contents to the sparse frontier and
// returns the number of vertices transferred. Buckets keep their
// capacity but are emptied.
func (b *Buckets) Drain(f *Frontier) int {
	total := 0
	for w, buf := range b.bufs {
		f.AppendAll(buf)
		total += len(buf)
		b.bufs[w] = buf[:0]
	}
	return total
}
