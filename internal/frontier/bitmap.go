// Package frontier provides the reusable frontier infrastructure shared
// by the traversal kernels: an atomic bitset over vertex ids, a hybrid
// sparse-queue/dense-bitmap frontier that converts between the two
// representations on demand, and per-worker scratch-buffer pools so a
// steady-state traversal allocates nothing.
//
// The split mirrors the direction-optimizing BFS design (Beamer et al.):
// the top-down (push) step wants a sparse vertex queue it can
// edge-partition, while the bottom-up (pull) step wants an O(1)
// membership test over the current frontier — a bitmap word-ORed
// atomically so concurrent workers can publish discoveries without
// locks.
package frontier

import (
	"math/bits"
	"sync/atomic"
)

// Bitmap is a fixed-capacity bitset over vertex ids [0, Len). The atomic
// operations (TrySet, Get with concurrent setters) use word-granularity
// atomic OR/load so the structure supports lock-free concurrent
// publication; Set/Reset are plain writes for single-owner phases.
type Bitmap struct {
	words []uint64
	n     int
}

// NewBitmap returns an empty bitmap over n ids.
func NewBitmap(n int) *Bitmap {
	b := &Bitmap{}
	b.Grow(n)
	return b
}

// Len returns the id capacity.
func (b *Bitmap) Len() int { return b.n }

// Grow resizes the bitmap to cover n ids, reusing the word array when it
// is already large enough. The bitmap is cleared.
func (b *Bitmap) Grow(n int) {
	w := (n + 63) / 64
	if cap(b.words) < w {
		b.words = make([]uint64, w)
	} else {
		b.words = b.words[:w]
		clear(b.words)
	}
	b.n = n
}

// Reset clears every bit.
func (b *Bitmap) Reset() { clear(b.words) }

// Get reports whether bit i is set. It is safe against concurrent
// TrySet publication (plain load: the caller either tolerates racing
// reads or has a barrier between the set and get phases).
func (b *Bitmap) Get(i uint32) bool {
	return b.words[i>>6]&(1<<(i&63)) != 0
}

// Set sets bit i non-atomically, returning true when the bit was newly
// set. Single-owner phases (census counting, sequential builds) use this
// to avoid atomic traffic.
func (b *Bitmap) Set(i uint32) bool {
	w, mask := i>>6, uint64(1)<<(i&63)
	old := b.words[w]
	b.words[w] = old | mask
	return old&mask == 0
}

// Clear clears bit i non-atomically. Kernels that dedup small batches
// against a large bitmap pair Set with per-member Clear so the reset
// costs O(batch), not O(n).
func (b *Bitmap) Clear(i uint32) {
	b.words[i>>6] &^= 1 << (i & 63)
}

// TrySet sets bit i with an atomic word-OR and reports whether this call
// set it (set-once semantics under concurrency: exactly one concurrent
// TrySet(i) returns true).
func (b *Bitmap) TrySet(i uint32) bool {
	w, mask := i>>6, uint64(1)<<(i&63)
	old := atomic.OrUint64(&b.words[w], mask)
	return old&mask == 0
}

// Words exposes the backing word array (bit i lives in word i>>6) so
// traversal inner loops can skip whole 64-vertex spans of set bits with
// one load. The returned slice is a view: it is invalidated by Grow and
// must not be resized by the caller.
func (b *Bitmap) Words() []uint64 { return b.words }

// Count returns the number of set bits.
func (b *Bitmap) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// AppendTo appends the set bit indices to dst in ascending order and
// returns the extended slice.
func (b *Bitmap) AppendTo(dst []uint32) []uint32 {
	for wi, w := range b.words {
		base := uint32(wi) << 6
		for w != 0 {
			dst = append(dst, base+uint32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}
