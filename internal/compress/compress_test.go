// External test package: internal/traversal imports compress for the
// streaming-decode engine path, so tests that exercise traversal (here
// and in equiv_test.go) must live outside package compress to avoid an
// import cycle.
package compress_test

import (
	"sort"
	"testing"
	"testing/quick"

	"snapdyn/internal/compress"
	"snapdyn/internal/csr"
	"snapdyn/internal/edge"
	"snapdyn/internal/rmat"
	"snapdyn/internal/xrand"
)

func sampleCSR(t testing.TB, scale int, seed uint64) *csr.Graph {
	t.Helper()
	p := rmat.PaperParams(scale, 8<<scale, 100, seed)
	edges, err := rmat.Generate(0, p)
	if err != nil {
		t.Fatal(err)
	}
	return csr.FromEdges(0, p.NumVertices(), edges, true)
}

func TestRoundTrip(t *testing.T) {
	g := sampleCSR(t, 10, 3)
	cg := compress.FromCSR(4, g)
	if cg.NumEdges() != g.NumEdges() {
		t.Fatalf("arc count %d != %d", cg.NumEdges(), g.NumEdges())
	}
	back := cg.ToCSR(4)
	for u := 0; u < g.N; u++ {
		adj, ts := g.Neighbors(edge.ID(u))
		type arc struct{ v, t uint32 }
		want := make([]arc, len(adj))
		for i := range adj {
			want[i] = arc{adj[i], ts[i]}
		}
		sort.Slice(want, func(a, b int) bool {
			if want[a].v != want[b].v {
				return want[a].v < want[b].v
			}
			return want[a].t < want[b].t
		})
		badj, bts := back.Neighbors(edge.ID(u))
		got := make([]arc, len(badj))
		for i := range badj {
			got[i] = arc{badj[i], bts[i]}
		}
		sort.Slice(got, func(a, b int) bool {
			if got[a].v != got[b].v {
				return got[a].v < got[b].v
			}
			return got[a].t < got[b].t
		})
		if len(got) != len(want) {
			t.Fatalf("vertex %d degree %d != %d", u, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("vertex %d arc %d: %v != %v", u, i, got[i], want[i])
			}
		}
	}
}

func TestNeighborsSortedAndComplete(t *testing.T) {
	g := sampleCSR(t, 9, 7)
	cg := compress.FromCSR(2, g)
	for u := 0; u < g.N; u++ {
		var prev int64 = -1
		count := int64(0)
		cg.Neighbors(edge.ID(u), func(v edge.ID, _ uint32) bool {
			if int64(v) < prev {
				t.Fatalf("vertex %d: neighbors out of order", u)
			}
			prev = int64(v)
			count++
			return true
		})
		if count != g.Degree(edge.ID(u)) {
			t.Fatalf("vertex %d: decoded %d arcs, want %d", u, count, g.Degree(edge.ID(u)))
		}
		if cg.Degree(edge.ID(u)) != count {
			t.Fatalf("vertex %d: Degree() disagrees with decode", u)
		}
	}
}

func TestCursorMatchesNeighbors(t *testing.T) {
	g := sampleCSR(t, 9, 19)
	cg := compress.FromCSR(2, g)
	var c compress.Cursor
	for u := 0; u < g.N; u++ {
		cg.Begin(&c, edge.ID(u))
		cg.Neighbors(edge.ID(u), func(v edge.ID, ts uint32) bool {
			cv, ct, ok := c.Next()
			if !ok || cv != v || ct != ts {
				t.Fatalf("vertex %d: cursor (%d,%d,%v) != callback (%d,%d)", u, cv, ct, ok, v, ts)
			}
			return true
		})
		if _, _, ok := c.Next(); ok {
			t.Fatalf("vertex %d: cursor overran the arc list", u)
		}
	}
}

func TestCachedShape(t *testing.T) {
	g := sampleCSR(t, 10, 23)
	cg := compress.FromCSR(2, g)
	if cg.NumEdges() != g.NumEdges() {
		t.Fatalf("cached NumEdges %d != %d", cg.NumEdges(), g.NumEdges())
	}
	if cg.MaxDegree() != g.MaxDegree() {
		t.Fatalf("cached MaxDegree %d != %d", cg.MaxDegree(), g.MaxDegree())
	}
	if cg.FootprintBytes() <= cg.SizeBytes() {
		t.Fatal("footprint should include the offset array")
	}
}

func TestCompressionSavesSpace(t *testing.T) {
	g := sampleCSR(t, 12, 11)
	cg := compress.FromCSR(0, g)
	ratio := cg.CompressionRatio()
	if ratio <= 1.0 {
		t.Fatalf("compression ratio %.2f, want > 1 on a small-world graph", ratio)
	}
	t.Logf("compression ratio: %.2fx (%d arcs in %d bytes)", ratio, cg.NumEdges(), cg.SizeBytes())
}

func TestEarlyStop(t *testing.T) {
	g := sampleCSR(t, 8, 13)
	cg := compress.FromCSR(2, g)
	// Find a vertex with degree >= 3.
	for u := 0; u < g.N; u++ {
		if cg.Degree(edge.ID(u)) >= 3 {
			count := 0
			cg.Neighbors(edge.ID(u), func(edge.ID, uint32) bool {
				count++
				return count < 2
			})
			if count != 2 {
				t.Fatalf("early stop visited %d", count)
			}
			return
		}
	}
	t.Skip("no vertex with degree >= 3")
}

func TestEmptyAndSingleton(t *testing.T) {
	g := csr.FromEdges(1, 3, nil, false)
	cg := compress.FromCSR(2, g)
	if cg.NumEdges() != 0 {
		t.Fatal("empty graph has arcs")
	}
	if cg.CompressionRatio() != 1 {
		t.Fatal("empty ratio should be 1")
	}
	g2 := csr.FromEdges(1, 3, []edge.Edge{{U: 2, V: 0, T: 9}}, false)
	cg2 := compress.FromCSR(2, g2)
	found := false
	cg2.Neighbors(2, func(v edge.ID, t32 uint32) bool {
		found = v == 0 && t32 == 9
		return true
	})
	if !found {
		t.Fatal("backward gap (2 -> 0) decoded wrong")
	}
}

func TestRandomGraphsRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		n := 16 + int(r.Uint32n(32))
		var edges []edge.Edge
		for i := 0; i < 200; i++ {
			edges = append(edges, edge.Edge{
				U: r.Uint32n(uint32(n)), V: r.Uint32n(uint32(n)), T: r.Uint32n(50),
			})
		}
		g := csr.FromEdges(1, n, edges, false)
		cg := compress.FromCSR(1, g)
		back := cg.ToCSR(1)
		if back.NumEdges() != g.NumEdges() {
			return false
		}
		for u := 0; u < n; u++ {
			if back.Degree(edge.ID(u)) != g.Degree(edge.ID(u)) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDecodeNeighbors(b *testing.B) {
	g := sampleCSR(b, 14, 5)
	cg := compress.FromCSR(0, g)
	b.ResetTimer()
	var sink int
	var c compress.Cursor
	for i := 0; i < b.N; i++ {
		u := edge.ID(i & (g.N - 1))
		cg.Begin(&c, u)
		for {
			if _, _, ok := c.Next(); !ok {
				break
			}
			sink++
		}
	}
	_ = sink
}
