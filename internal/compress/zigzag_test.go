package compress

import (
	"testing"
	"testing/quick"
)

func TestZigzagProperty(t *testing.T) {
	if err := quick.Check(func(d int64) bool {
		return unzigzag(zigzag(d)) == d
	}, nil); err != nil {
		t.Fatal(err)
	}
}
