package compress_test

// Randomized and adversarial equivalence suite for the compressed
// format as a pipeline citizen: whatever the store looks like, the
// compressed snapshot must carry exactly the same arcs as the plain CSR
// one, the traversal engine must answer identically when streaming over
// it, and byte-splice Refresh must track churn without drifting from a
// from-scratch build.

import (
	"math"
	"sort"
	"testing"

	"snapdyn/internal/compress"
	"snapdyn/internal/csr"
	"snapdyn/internal/dyngraph"
	"snapdyn/internal/edge"
	"snapdyn/internal/rmat"
	"snapdyn/internal/stream"
	"snapdyn/internal/traversal"
	"snapdyn/internal/xrand"
)

// adversarialStores builds the store menagerie: each entry stresses a
// different corner of the varint block encoding.
func adversarialStores(t *testing.T) map[string]*dyngraph.Tracked {
	t.Helper()
	mk := func(n, cap int) *dyngraph.Tracked {
		return dyngraph.NewTracked(dyngraph.NewHybrid(n, cap, 0, 1))
	}

	// R-MAT: the skewed baseline every figure uses.
	const scale = 9
	n := 1 << scale
	edges, err := rmat.Generate(0, rmat.PaperParams(scale, 8*n, 50, 11))
	if err != nil {
		t.Fatal(err)
	}
	rmatStore := mk(n, 4*len(edges))
	rmatStore.ApplyBatch(0, stream.Mirror(stream.Inserts(edges)))

	// Hubs: two vertices adjacent to everything (maximum block length,
	// gap-1 runs), plus a sprinkle of random arcs.
	hub := mk(512, 4096)
	for v := uint32(1); v < 512; v++ {
		hub.Insert(0, v, v%7)
		hub.Insert(v, 0, v%7)
		hub.Insert(511, v-1, 3)
	}
	r := xrand.New(7)
	for i := 0; i < 256; i++ {
		hub.Insert(r.Uint32n(512), r.Uint32n(512), r.Uint32n(50))
	}

	// Empty vertices: arcs only between multiples of 97, so nearly the
	// whole vertex range is degree zero (zero-length blocks) and the
	// first gaps are large.
	sparse := mk(4096, 512)
	for i := uint32(0); i < 4096; i += 97 {
		for j := i + 97; j < 4096; j += 97 {
			sparse.Insert(i, j, 1)
			sparse.Insert(j, i, 1)
		}
	}

	// Max labels: timestamps at the uint32 ceiling (5-byte varints) on
	// arcs whose neighbor gaps are also near-maximal.
	maxed := mk(1<<16, 256)
	last := uint32(1<<16 - 1)
	maxed.Insert(0, last, math.MaxUint32)
	maxed.Insert(last, 0, math.MaxUint32)
	maxed.Insert(0, 1, math.MaxUint32)
	maxed.Insert(1, last, math.MaxUint32-1)
	maxed.Insert(last, last, math.MaxUint32) // self-loop at the boundary

	return map[string]*dyngraph.Tracked{
		"rmat": rmatStore, "hubs": hub, "empty-vertices": sparse, "max-labels": maxed,
	}
}

// sortedArcSet flattens a graph into per-vertex sorted (neighbor, ts)
// pairs so plain and compressed snapshots compare as arc multisets.
func sortedArcSet(n int, neighbors func(u edge.ID, fn func(v edge.ID, ts uint32) bool)) [][][2]uint32 {
	out := make([][][2]uint32, n)
	for u := 0; u < n; u++ {
		var arcs [][2]uint32
		neighbors(edge.ID(u), func(v edge.ID, ts uint32) bool {
			arcs = append(arcs, [2]uint32{v, ts})
			return true
		})
		sort.Slice(arcs, func(i, j int) bool {
			if arcs[i][0] != arcs[j][0] {
				return arcs[i][0] < arcs[j][0]
			}
			return arcs[i][1] < arcs[j][1]
		})
		out[u] = arcs
	}
	return out
}

// assertEquivalent checks arc fidelity and engine equivalence of the
// compressed snapshot against the plain CSR of the same store.
func assertEquivalent(t *testing.T, name string, g *csr.Graph, cg *compress.Graph) {
	t.Helper()
	if cg.N != g.N || cg.NumEdges() != g.NumEdges() {
		t.Fatalf("%s: shape (%d, %d) != (%d, %d)", name, cg.N, cg.NumEdges(), g.N, g.NumEdges())
	}
	want := sortedArcSet(g.N, func(u edge.ID, fn func(edge.ID, uint32) bool) {
		adj, ts := g.Neighbors(u)
		for i := range adj {
			if !fn(adj[i], ts[i]) {
				return
			}
		}
	})
	got := sortedArcSet(cg.N, cg.Neighbors)
	for u := range want {
		if len(got[u]) != len(want[u]) {
			t.Fatalf("%s: vertex %d has %d arcs compressed, %d plain", name, u, len(got[u]), len(want[u]))
		}
		for i := range want[u] {
			if got[u][i] != want[u][i] {
				t.Fatalf("%s: vertex %d arc %d: %v != %v", name, u, i, got[u][i], want[u][i])
			}
		}
	}

	// The engine must answer identically when streaming the compressed
	// blocks: per-vertex levels and reach counts, serial and parallel.
	for _, src := range []uint32{0, uint32(g.N / 2), uint32(g.N - 1)} {
		for _, w := range []int{1, 4} {
			opt := traversal.Options{Workers: w}
			plain := traversal.Run(g, []uint32{src}, opt, nil, nil)
			streamed := traversal.RunStream(cg, []uint32{src}, opt, nil, nil)
			if streamed.Reached != plain.Reached {
				t.Fatalf("%s: BFS(%d, w=%d) reached %d streamed, %d plain",
					name, src, w, streamed.Reached, plain.Reached)
			}
			for v := range plain.Level {
				if streamed.Level[v] != plain.Level[v] {
					t.Fatalf("%s: BFS(%d, w=%d) Level[%d] = %d streamed, %d plain",
						name, src, w, v, streamed.Level[v], plain.Level[v])
				}
			}
		}
	}
}

// TestCompressedEquivalentOnAdversarialStores pins the format contract
// on the store menagerie, from scratch and across churned refreshes.
func TestCompressedEquivalentOnAdversarialStores(t *testing.T) {
	for name, store := range adversarialStores(t) {
		t.Run(name, func(t *testing.T) {
			store.Flush(nil) // build from a clean dirty set, like the manager
			cg := compress.FromStore(0, store)
			assertEquivalent(t, name, csr.FromStore(0, store), cg)

			// Churn: mixed inserts and deletes, then a byte-splice
			// Refresh over the flushed dirty set. The result must stay
			// arc- and engine-equivalent to a fresh plain build.
			r := xrand.New(99)
			n := uint32(store.NumVertices())
			var dirty []uint32
			for round := 1; round <= 3; round++ {
				for i := 0; i < 30; i++ {
					u, v := r.Uint32n(n), r.Uint32n(n)
					if i%4 == 3 {
						store.Delete(u, v)
					} else {
						store.Insert(u, v, r.Uint32n(math.MaxUint32))
					}
				}
				dirty = store.Flush(dirty[:0])
				cg = compress.Refresh(0, cg, store, dirty)
				assertEquivalent(t, name, csr.FromStore(0, store), cg)
			}
		})
	}
}

// TestCompressedEquivalentRandomized is the property-style sweep:
// random small stores (parallel edges, self-loops, deletes) must always
// satisfy the same fidelity and engine contracts.
func TestCompressedEquivalentRandomized(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		r := xrand.New(seed)
		n := 32 + int(r.Uint32n(200))
		store := dyngraph.NewTracked(dyngraph.NewHybrid(n, 4*n, 0, seed))
		for i := 0; i < 12*n; i++ {
			u, v := r.Uint32n(uint32(n)), r.Uint32n(uint32(n))
			if i%7 == 6 {
				store.Delete(u, v)
			} else {
				store.Insert(u, v, r.Uint32n(1<<30))
			}
		}
		store.Flush(nil)
		assertEquivalent(t, "randomized", csr.FromStore(0, store), compress.FromStore(0, store))
	}
}
