// Package compress implements the compressed adjacency representation the
// paper lists as future work ("we intend to explore compressed adjacency
// representations to reduce the memory footprint"), following the
// WebGraph-style scheme it cites: per-vertex neighbor lists are sorted
// and gap-encoded with variable-length integers, exploiting the locality
// and skew of small-world graphs.
//
// The representation is immutable and traversal-oriented: Cursor streams
// a vertex's arcs with zero allocations, so the shared traversal engine
// (internal/traversal RunStream) runs BFS and hook kernels directly on
// the compressed bytes without materializing adjacency. Per-vertex blocks
// are self-contained, which is what makes Refresh a byte-splice: clean
// vertices are copied as raw byte runs, only dirty vertices re-encode.
// A round trip through ToCSR restores the uncompressed snapshot
// (neighbor order within a vertex becomes sorted).
package compress

import (
	"encoding/binary"
	"sort"

	"snapdyn/internal/csr"
	"snapdyn/internal/edge"
	"snapdyn/internal/par"
	"snapdyn/internal/psort"
)

// Graph is a gap-compressed immutable adjacency structure.
type Graph struct {
	N int
	// offsets[u] .. offsets[u+1] delimit u's encoded block in data.
	offsets []int64
	// data holds, per vertex: varint degree, then for each arc (sorted by
	// neighbor id) the varint neighbor gap (first neighbor is stored
	// relative to the vertex id, zig-zag encoded; subsequent ones as
	// plain gaps) followed by the varint time label.
	data []byte
	// m and maxDeg are cached at build/refresh time so the traversal
	// engine's direction-optimizing thresholds need no decode pass.
	m      int64
	maxDeg int64
}

// zigzag encodes a signed delta as an unsigned varint payload.
func zigzag(d int64) uint64 { return uint64((d << 1) ^ (d >> 63)) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// storeView is the minimal dynamic-graph surface compress needs; it
// matches dyngraph.Store without importing it.
type storeView interface {
	NumVertices() int
	Degree(u edge.ID) int
	Neighbors(u edge.ID, fn func(v edge.ID, t uint32) bool)
}

// appendVertex encodes one vertex's arc list (already sorted by neighbor
// id) onto enc and returns the extended buffer.
func appendVertex(enc []byte, u int, adj, ts []uint32, order []int) []byte {
	enc = binary.AppendUvarint(enc, uint64(len(order)))
	prev := int64(u) // first gap is relative to the vertex id
	first := true
	for _, i := range order {
		v := int64(adj[i])
		if first {
			enc = binary.AppendUvarint(enc, zigzag(v-prev))
			first = false
		} else {
			enc = binary.AppendUvarint(enc, uint64(v-prev))
		}
		prev = v
		enc = binary.AppendUvarint(enc, uint64(ts[i]))
	}
	return enc
}

// sortOrder fills order with 0..len(adj)-1 stably sorted by neighbor id,
// so the encoded arc order is deterministic regardless of store
// enumeration order of equal neighbors.
func sortOrder(order []int, adj []uint32) []int {
	order = order[:0]
	for i := range adj {
		order = append(order, i)
	}
	sort.SliceStable(order, func(a, b int) bool { return adj[order[a]] < adj[order[b]] })
	return order
}

// FromCSR builds a compressed graph from a CSR snapshot in parallel.
func FromCSR(workers int, g *csr.Graph) *Graph {
	n := g.N
	// Pass 1: encode each vertex into a private buffer, recording sizes.
	bufs := make([][]byte, n)
	sizes := make([]int64, n+1)
	par.ForDynamic(workers, n, 256, func(lo, hi int) {
		var order []int
		enc := make([]byte, 0, 64)
		for u := lo; u < hi; u++ {
			adj, ts := g.Neighbors(edge.ID(u))
			order = sortOrder(order, adj)
			enc = appendVertex(enc[:0], u, adj, ts, order)
			bufs[u] = append([]byte(nil), enc...)
			sizes[u] = int64(len(enc))
		}
	})
	total := psort.ExclusiveScan(workers, sizes)
	out := &Graph{
		N:       n,
		offsets: sizes,
		data:    make([]byte, total),
		m:       g.NumEdges(),
		maxDeg:  g.MaxDegree(),
	}
	par.ForDynamic(workers, n, 256, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			copy(out.data[out.offsets[u]:], bufs[u])
		}
	})
	return out
}

// FromStore snapshots a dynamic graph store straight into compressed
// form. The arc order per vertex matches FromCSR over csr.FromStore of
// the same store (stable sort by neighbor id of the store's enumeration
// order), so Refresh can splice against either origin byte-identically.
func FromStore(workers int, s storeView) *Graph {
	n := s.NumVertices()
	bufs := make([][]byte, n)
	sizes := make([]int64, n+1)
	par.ForDynamic(workers, n, 256, func(lo, hi int) {
		var adj, ts []uint32
		var order []int
		enc := make([]byte, 0, 64)
		for u := lo; u < hi; u++ {
			adj, ts = adj[:0], ts[:0]
			s.Neighbors(edge.ID(u), func(v edge.ID, t uint32) bool {
				adj = append(adj, v)
				ts = append(ts, t)
				return true
			})
			order = sortOrder(order, adj)
			enc = appendVertex(enc[:0], u, adj, ts, order)
			bufs[u] = append([]byte(nil), enc...)
			sizes[u] = int64(len(enc))
		}
	})
	total := psort.ExclusiveScan(workers, sizes)
	out := &Graph{N: n, offsets: sizes, data: make([]byte, total)}
	par.ForDynamic(workers, n, 256, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			copy(out.data[out.offsets[u]:], bufs[u])
		}
	})
	out.m, out.maxDeg = out.shape(workers)
	return out
}

// Refresh produces the compressed snapshot of s, splicing unchanged
// vertices' encoded blocks out of base as raw byte runs and re-encoding
// only the dirty vertices. Output is byte-identical to FromStore. Falls
// back to a full FromStore build when there is no usable base, the
// vertex count changed, or the dirty fraction exceeds
// csr.RefreshMaxDirtyFrac (same threshold as the CSR delta path).
func Refresh(workers int, base *Graph, s storeView, dirty []uint32) *Graph {
	n := s.NumVertices()
	if base == nil || base.N != n || n == 0 ||
		float64(len(dirty)) > csr.RefreshMaxDirtyFrac*float64(n) {
		return FromStore(workers, s)
	}
	if len(dirty) == 0 {
		return base
	}
	isDirty := make([]bool, n)
	for _, d := range dirty {
		if int(d) < n {
			isDirty[d] = true
		}
	}
	// Re-encode dirty vertices into private buffers.
	bufs := make([][]byte, len(dirty))
	sizes := make([]int64, n+1)
	par.ForDynamic(workers, n, 512, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			if !isDirty[u] {
				sizes[u] = base.offsets[u+1] - base.offsets[u]
			}
		}
	})
	par.ForDynamic(workers, len(dirty), 64, func(lo, hi int) {
		var adj, ts []uint32
		var order []int
		enc := make([]byte, 0, 64)
		for i := lo; i < hi; i++ {
			u := int(dirty[i])
			if u >= n {
				continue
			}
			adj, ts = adj[:0], ts[:0]
			s.Neighbors(edge.ID(u), func(v edge.ID, t uint32) bool {
				adj = append(adj, v)
				ts = append(ts, t)
				return true
			})
			order = sortOrder(order, adj)
			enc = appendVertex(enc[:0], u, adj, ts, order)
			bufs[i] = append([]byte(nil), enc...)
			sizes[u] = int64(len(enc))
		}
	})
	dirtyBuf := make(map[int][]byte, len(dirty))
	for i, d := range dirty {
		dirtyBuf[int(d)] = bufs[i]
	}
	total := psort.ExclusiveScan(workers, sizes)
	out := &Graph{N: n, offsets: sizes, data: make([]byte, total)}
	// Scatter: bulk-copy maximal clean byte runs, splice dirty blocks.
	par.ForDynamic(workers, n, 512, func(lo, hi int) {
		for u := lo; u < hi; {
			if isDirty[u] {
				copy(out.data[out.offsets[u]:], dirtyBuf[u])
				u++
				continue
			}
			run := u + 1
			for run < hi && !isDirty[run] {
				run++
			}
			copy(out.data[out.offsets[u]:out.offsets[run]],
				base.data[base.offsets[u]:base.offsets[run]])
			u = run
		}
	})
	out.m, out.maxDeg = out.shape(workers)
	return out
}

// shape recomputes the cached arc count and max degree by decoding each
// vertex's leading degree varint (one byte for degrees < 128).
func (g *Graph) shape(workers int) (m, maxDeg int64) {
	type acc struct{ m, maxDeg int64 }
	r := par.Reduce(workers, g.N, acc{},
		func(a acc, u int) acc {
			d := g.Degree(edge.ID(u))
			a.m += d
			if d > a.maxDeg {
				a.maxDeg = d
			}
			return a
		},
		func(a, b acc) acc {
			a.m += b.m
			if b.maxDeg > a.maxDeg {
				a.maxDeg = b.maxDeg
			}
			return a
		})
	return r.m, r.maxDeg
}

// Degree returns u's arc count.
func (g *Graph) Degree(u edge.ID) int64 {
	b := g.data[g.offsets[u]:g.offsets[u+1]]
	d, _ := binary.Uvarint(b)
	return int64(d)
}

// Cursor streams one vertex's arcs without allocating. It is valid until
// the Graph it was begun on is released; Begin may be called repeatedly
// on the same Cursor to reuse it across vertices.
type Cursor struct {
	b     []byte
	rem   uint64
	prev  int64
	first bool
}

// Begin positions c at the start of u's arc list.
func (g *Graph) Begin(c *Cursor, u edge.ID) {
	b := g.data[g.offsets[u]:g.offsets[u+1]]
	d, k := binary.Uvarint(b)
	c.b = b[k:]
	c.rem = d
	c.prev = int64(u)
	c.first = true
}

// Next decodes the next arc, returning ok=false when the list is
// exhausted. Arcs arrive in increasing neighbor order.
func (c *Cursor) Next() (v edge.ID, t uint32, ok bool) {
	if c.rem == 0 {
		return 0, 0, false
	}
	raw, k := binary.Uvarint(c.b)
	c.b = c.b[k:]
	var nv int64
	if c.first {
		nv = c.prev + unzigzag(raw)
		c.first = false
	} else {
		nv = c.prev + int64(raw)
	}
	c.prev = nv
	tw, k2 := binary.Uvarint(c.b)
	c.b = c.b[k2:]
	c.rem--
	return uint32(nv), uint32(tw), true
}

// Neighbors decodes u's arcs in increasing neighbor order, calling fn
// until it returns false.
func (g *Graph) Neighbors(u edge.ID, fn func(v edge.ID, t uint32) bool) {
	var c Cursor
	g.Begin(&c, u)
	for {
		v, t, ok := c.Next()
		if !ok || !fn(v, t) {
			return
		}
	}
}

// NumEdges returns the total arc count (cached at build time).
func (g *Graph) NumEdges() int64 { return g.m }

// MaxDegree returns the largest out-degree (cached at build time).
func (g *Graph) MaxDegree() int64 { return g.maxDeg }

// DegreeSum returns the total out-degree of the given vertices, the
// frontier edge mass the direction-optimizing heuristic needs. Mirrors
// csr.Graph.DegreeSum including the closure-free serial path.
func (g *Graph) DegreeSum(workers int, vs []uint32) int64 {
	if workers == 1 || len(vs) < 4096 {
		var sum int64
		for _, v := range vs {
			sum += g.Degree(edge.ID(v))
		}
		return sum
	}
	return par.Reduce(workers, len(vs), int64(0),
		func(acc int64, i int) int64 { return acc + g.Degree(edge.ID(vs[i])) },
		func(a, b int64) int64 { return a + b })
}

// SizeBytes returns the compressed payload size (offsets excluded).
func (g *Graph) SizeBytes() int64 { return int64(len(g.data)) }

// FootprintBytes returns the full in-memory footprint: payload plus the
// per-vertex offset array. This is the number to compare against
// csr.Graph.SizeBytes when reporting bytes-per-edge.
func (g *Graph) FootprintBytes() int64 {
	return int64(len(g.data)) + 8*int64(len(g.offsets))
}

// CompressionRatio compares against the 8-byte-per-arc CSR encoding.
func (g *Graph) CompressionRatio() float64 {
	arcs := g.NumEdges()
	if arcs == 0 {
		return 1
	}
	return float64(arcs*8) / float64(len(g.data))
}

// ToCSR decompresses back into a CSR snapshot (arcs sorted per vertex).
func (g *Graph) ToCSR(workers int) *csr.Graph {
	counts := make([]int64, g.N+1)
	par.ForDynamic(workers, g.N, 256, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			counts[u] = g.Degree(edge.ID(u))
		}
	})
	total := psort.ExclusiveScan(workers, counts)
	out := &csr.Graph{
		N:       g.N,
		Offsets: counts,
		Adj:     make([]uint32, total),
		TS:      make([]uint32, total),
	}
	par.ForDynamic(workers, g.N, 256, func(lo, hi int) {
		var c Cursor
		for u := lo; u < hi; u++ {
			p := out.Offsets[u]
			g.Begin(&c, edge.ID(u))
			for {
				v, t, ok := c.Next()
				if !ok {
					break
				}
				out.Adj[p] = v
				out.TS[p] = t
				p++
			}
		}
	})
	return out
}
