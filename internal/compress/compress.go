// Package compress implements the compressed adjacency representation the
// paper lists as future work ("we intend to explore compressed adjacency
// representations to reduce the memory footprint"), following the
// WebGraph-style scheme it cites: per-vertex neighbor lists are sorted
// and gap-encoded with variable-length integers, exploiting the locality
// and skew of small-world graphs.
//
// The representation is immutable and traversal-oriented: Neighbors
// decodes a vertex's list sequentially. A round trip through ToCSR
// restores the uncompressed snapshot (neighbor order within a vertex
// becomes sorted).
package compress

import (
	"encoding/binary"
	"sort"
	"sync/atomic"

	"snapdyn/internal/csr"
	"snapdyn/internal/edge"
	"snapdyn/internal/par"
	"snapdyn/internal/psort"
)

// Graph is a gap-compressed immutable adjacency structure.
type Graph struct {
	N int
	// offsets[u] .. offsets[u+1] delimit u's encoded block in data.
	offsets []int64
	// data holds, per vertex: varint degree, then for each arc (sorted by
	// neighbor id) the varint neighbor gap (first neighbor is stored
	// relative to the vertex id, zig-zag encoded; subsequent ones as
	// plain gaps) followed by the varint time label.
	data []byte
}

// zigzag encodes a signed delta as an unsigned varint payload.
func zigzag(d int64) uint64 { return uint64((d << 1) ^ (d >> 63)) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// FromCSR builds a compressed graph from a CSR snapshot in parallel.
func FromCSR(workers int, g *csr.Graph) *Graph {
	n := g.N
	// Pass 1: encode each vertex into a private buffer, recording sizes.
	bufs := make([][]byte, n)
	sizes := make([]int64, n+1)
	par.ForDynamic(workers, n, 256, func(lo, hi int) {
		var scratch []uint32
		var order []int
		enc := make([]byte, 0, 64)
		for u := lo; u < hi; u++ {
			adj, ts := g.Neighbors(edge.ID(u))
			enc = enc[:0]
			// Sort arcs by neighbor id (stable for determinism).
			order = order[:0]
			for i := range adj {
				order = append(order, i)
			}
			sort.SliceStable(order, func(a, b int) bool { return adj[order[a]] < adj[order[b]] })
			_ = scratch
			enc = binary.AppendUvarint(enc, uint64(len(adj)))
			prev := int64(u) // first gap is relative to the vertex id
			first := true
			for _, i := range order {
				v := int64(adj[i])
				if first {
					enc = binary.AppendUvarint(enc, zigzag(v-prev))
					first = false
				} else {
					enc = binary.AppendUvarint(enc, uint64(v-prev))
				}
				prev = v
				enc = binary.AppendUvarint(enc, uint64(ts[i]))
			}
			bufs[u] = append([]byte(nil), enc...)
			sizes[u] = int64(len(enc))
		}
	})
	total := psort.ExclusiveScan(workers, sizes)
	out := &Graph{N: n, offsets: sizes, data: make([]byte, total)}
	par.ForDynamic(workers, n, 256, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			copy(out.data[out.offsets[u]:], bufs[u])
		}
	})
	return out
}

// Degree returns u's arc count.
func (g *Graph) Degree(u edge.ID) int {
	b := g.data[g.offsets[u]:g.offsets[u+1]]
	d, _ := binary.Uvarint(b)
	return int(d)
}

// Neighbors decodes u's arcs in increasing neighbor order, calling fn
// until it returns false.
func (g *Graph) Neighbors(u edge.ID, fn func(v edge.ID, t uint32) bool) {
	b := g.data[g.offsets[u]:g.offsets[u+1]]
	d, k := binary.Uvarint(b)
	b = b[k:]
	prev := int64(u)
	for i := uint64(0); i < d; i++ {
		raw, k := binary.Uvarint(b)
		b = b[k:]
		var v int64
		if i == 0 {
			v = prev + unzigzag(raw)
		} else {
			v = prev + int64(raw)
		}
		prev = v
		t, k := binary.Uvarint(b)
		b = b[k:]
		if !fn(uint32(v), uint32(t)) {
			return
		}
	}
}

// NumEdges returns the total arc count.
func (g *Graph) NumEdges() int64 {
	return par.Reduce(0, g.N, int64(0),
		func(acc int64, u int) int64 { return acc + int64(g.Degree(edge.ID(u))) },
		func(a, b int64) int64 { return a + b })
}

// SizeBytes returns the compressed payload size (offsets excluded).
func (g *Graph) SizeBytes() int64 { return int64(len(g.data)) }

// CompressionRatio compares against the 8-byte-per-arc CSR encoding.
func (g *Graph) CompressionRatio() float64 {
	arcs := g.NumEdges()
	if arcs == 0 {
		return 1
	}
	return float64(arcs*8) / float64(len(g.data))
}

// ToCSR decompresses back into a CSR snapshot (arcs sorted per vertex).
func (g *Graph) ToCSR(workers int) *csr.Graph {
	counts := make([]int64, g.N+1)
	par.ForDynamic(workers, g.N, 256, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			counts[u] = int64(g.Degree(edge.ID(u)))
		}
	})
	total := psort.ExclusiveScan(workers, counts)
	out := &csr.Graph{
		N:       g.N,
		Offsets: counts,
		Adj:     make([]uint32, total),
		TS:      make([]uint32, total),
	}
	par.ForDynamic(workers, g.N, 256, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			p := out.Offsets[u]
			g.Neighbors(edge.ID(u), func(v edge.ID, t uint32) bool {
				out.Adj[p] = v
				out.TS[p] = t
				p++
				return true
			})
		}
	})
	return out
}

// BFS runs a sequential-decode level-synchronous BFS over the compressed
// graph, for the memory-vs-time ablation against csr traversal. It is
// the one traversal that cannot ride the shared visitor engine: the
// engine edge-partitions CSR offset arrays, which a gap-compressed
// adjacency deliberately does not materialize.
func (g *Graph) BFS(workers int, src edge.ID) (level []int32, reached int) {
	level = make([]int32, g.N)
	for i := range level {
		level[i] = -1
	}
	level[src] = 0
	cur := []uint32{uint32(src)}
	reached = 1
	for l := int32(1); len(cur) > 0; l++ {
		locals := make([][]uint32, len(cur))
		par.ForDynamic(workers, len(cur), 64, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				var local []uint32
				g.Neighbors(cur[i], func(v edge.ID, _ uint32) bool {
					if atomic.LoadInt32(&level[v]) == -1 &&
						atomic.CompareAndSwapInt32(&level[v], -1, l) {
						local = append(local, v)
					}
					return true
				})
				locals[i] = local
			}
		})
		var next []uint32
		for _, loc := range locals {
			next = append(next, loc...)
		}
		reached += len(next)
		cur = next
	}
	return level, reached
}
