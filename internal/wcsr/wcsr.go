// Package wcsr provides a weight-materialized view of a CSR snapshot for
// the delta-stepping SSSP kernel: every arc's weight is computed once
// from its time label at build time (instead of a WeightFunc call per arc
// per relaxation phase), validated once up front, and each vertex's
// adjacency is split into a light prefix (weight <= delta) and a heavy
// suffix, so the light fixpoint and the heavy pass each scan only their
// own arcs. The split halves the inner-loop arc traffic and removes the
// closure call and the negative-weight branch from the hot loop.
package wcsr

import (
	"fmt"
	"math"
	"sync/atomic"

	"snapdyn/internal/csr"
	"snapdyn/internal/edge"
	"snapdyn/internal/par"
)

// WeightFunc maps an arc's stored time label to its weight. Results must
// be non-negative and fit in uint32 (label-derived weights always do);
// Build validates every arc once and panics otherwise, so the relaxation
// phases can trust the materialized array unconditionally.
type WeightFunc func(ts uint32) int64

// Graph is a weight-materialized, light/heavy-partitioned CSR view.
// Vertex u's arcs occupy [Offsets[u], Offsets[u+1]) of Adj and W as in
// csr.Graph, reordered so the span is sorted by weight ascending. The
// light/heavy split then falls out for free: arcs with W <= Delta form
// the prefix [Offsets[u], LightEnd[u]) and heavy arcs the suffix
// [LightEnd[u], Offsets[u+1]), and changing Delta is a binary-search
// re-split per vertex (Retarget), not a rebuild.
type Graph struct {
	N        int
	Offsets  []int64  // length N+1, shared with the source CSR (immutable)
	LightEnd []int64  // length N: first heavy arc position per vertex
	Adj      []uint32 // reordered adjacency
	W        []uint32 // weights, parallel to Adj
	Delta    int64    // partition width (>= 1)
	MaxW     uint32   // largest arc weight
}

// NumEdges returns the number of stored arcs.
func (g *Graph) NumEdges() int64 { return int64(len(g.Adj)) }

// Build materializes weights for g under wf and partitions each
// adjacency at delta. delta <= 0 picks HeuristicDelta over the
// materialized weights. Panics if wf produces a weight outside
// [0, MaxUint32].
func Build(workers int, g *csr.Graph, wf WeightFunc, delta int64) *Graph {
	wg := &Graph{}
	wg.Rebuild(workers, g, wf, delta)
	return wg
}

// Rebuild is Build into an existing view, reusing its arrays when large
// enough — the scratch-reuse path for repeated SSSP over one snapshot.
func (wg *Graph) Rebuild(workers int, g *csr.Graph, wf WeightFunc, delta int64) {
	if workers <= 0 {
		workers = par.MaxWorkers()
	}
	m := len(g.Adj)
	wg.N = g.N
	wg.Offsets = g.Offsets
	if cap(wg.LightEnd) < g.N {
		wg.LightEnd = make([]int64, g.N)
	} else {
		wg.LightEnd = wg.LightEnd[:g.N]
	}
	if cap(wg.Adj) < m {
		wg.Adj = make([]uint32, m)
		wg.W = make([]uint32, m)
	} else {
		wg.Adj = wg.Adj[:m]
		wg.W = wg.W[:m]
	}

	// Pass 1: materialize and validate every weight once, in source arc
	// order, tracking the maximum. An out-of-range weight is recorded
	// atomically and reported by a panic after the barrier, on the
	// caller's goroutine — a panic inside a par.ForBlock worker would
	// crash the process with no chance to recover.
	var maxW atomic.Uint32
	badArc := atomic.Int64{}
	badArc.Store(-1)
	par.ForBlock(workers, m, func(lo, hi int) {
		var localMax uint32
		for i := lo; i < hi; i++ {
			w := wf(g.TS[i])
			if w < 0 || w > math.MaxUint32 {
				badArc.CompareAndSwap(-1, int64(i))
				return
			}
			wg.Adj[i] = g.Adj[i]
			wg.W[i] = uint32(w)
			if uint32(w) > localMax {
				localMax = uint32(w)
			}
		}
		for {
			cur := maxW.Load()
			if localMax <= cur || maxW.CompareAndSwap(cur, localMax) {
				break
			}
		}
	})
	if i := badArc.Load(); i >= 0 {
		panic(fmt.Sprintf("wcsr: weight %d for label %d outside [0, MaxUint32]", wf(g.TS[i]), g.TS[i]))
	}
	wg.MaxW = maxW.Load()

	// The heuristic samples the arc-order weights, so it must run
	// before pass 2 reorders them — keeping delta values identical to
	// the historical two-pointer build.
	if delta <= 0 {
		delta = HeuristicDelta(wg.W)
	}

	// Pass 2: sort each vertex's (Adj, W) span by weight ascending, then
	// place the light/heavy split by binary search. The sort costs
	// O(d log d) per vertex instead of the old O(d) two-pointer pass,
	// but it is paid once per snapshot; every later delta change is a
	// Retarget (binary search only).
	par.ForDynamic(workers, g.N, 256, func(vlo, vhi int) {
		for u := vlo; u < vhi; u++ {
			sortSpan(wg.Adj, wg.W, wg.Offsets[u], wg.Offsets[u+1])
		}
	})
	wg.retarget(workers, delta)
}

// Retarget moves the light/heavy split of every adjacency to a new
// delta without touching weights or arc order: each span is already
// weight-sorted, so the new LightEnd is one binary search per vertex.
// delta <= 0 re-derives HeuristicDelta over the (now sorted) weights.
// O(n log maxDegree); the scratch-reuse path for SSSP runs that change
// delta over one snapshot.
func (wg *Graph) Retarget(workers int, delta int64) {
	if workers <= 0 {
		workers = par.MaxWorkers()
	}
	if delta <= 0 {
		delta = HeuristicDelta(wg.W)
	}
	wg.retarget(workers, delta)
}

func (wg *Graph) retarget(workers int, delta int64) {
	wg.Delta = delta
	par.ForDynamic(workers, wg.N, 1024, func(vlo, vhi int) {
		for u := vlo; u < vhi; u++ {
			wg.LightEnd[u] = searchHeavy(wg.W, wg.Offsets[u], wg.Offsets[u+1], delta)
		}
	})
}

// searchHeavy returns the position of the first arc in the sorted span
// [lo, hi) with weight > delta.
func searchHeavy(w []uint32, lo, hi, delta int64) int64 {
	for lo < hi {
		mid := int64(uint64(lo+hi) >> 1)
		if int64(w[mid]) <= delta {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// sortSpanCutoff is the span length below which insertion sort beats
// the quicksort machinery.
const sortSpanCutoff = 24

// sortSpan sorts the parallel (adj, w) pair slice [lo, hi) by weight
// ascending, breaking ties by adjacency id so the layout is a pure
// function of the arc multiset — deterministic across rebuilds
// regardless of source arc order. Hand-rolled on the two parallel
// arrays: sort.Sort would cost an interface allocation per span.
func sortSpan(adj, w []uint32, lo, hi int64) {
	for hi-lo > sortSpanCutoff {
		// Median-of-three pivot, middle element as representative.
		mid := lo + (hi-lo)/2
		if pairLess(w, adj, mid, lo) {
			swapArc(adj, w, mid, lo)
		}
		if pairLess(w, adj, hi-1, lo) {
			swapArc(adj, w, hi-1, lo)
		}
		if pairLess(w, adj, hi-1, mid) {
			swapArc(adj, w, hi-1, mid)
		}
		pw, pa := w[mid], adj[mid]
		i, j := lo, hi-1
		for {
			for w[i] < pw || (w[i] == pw && adj[i] < pa) {
				i++
			}
			for pw < w[j] || (pw == w[j] && pa < adj[j]) {
				j--
			}
			if i >= j {
				break
			}
			swapArc(adj, w, i, j)
			i++
			j--
		}
		// Recurse into the smaller side, loop on the larger: O(log d)
		// stack depth worst case.
		if j-lo < hi-j-1 {
			sortSpan(adj, w, lo, j+1)
			lo = j + 1
		} else {
			sortSpan(adj, w, j+1, hi)
			hi = j + 1
		}
	}
	for i := lo + 1; i < hi; i++ {
		cw, ca := w[i], adj[i]
		j := i - 1
		for j >= lo && (w[j] > cw || (w[j] == cw && adj[j] > ca)) {
			adj[j+1], w[j+1] = adj[j], w[j]
			j--
		}
		adj[j+1], w[j+1] = ca, cw
	}
}

func pairLess(w, adj []uint32, i, j int64) bool {
	return w[i] < w[j] || (w[i] == w[j] && adj[i] < adj[j])
}

func swapArc(adj, w []uint32, i, j int64) {
	adj[i], adj[j] = adj[j], adj[i]
	w[i], w[j] = w[j], w[i]
}

// Degree returns the out-degree of u.
func (g *Graph) Degree(u edge.ID) int64 { return g.Offsets[u+1] - g.Offsets[u] }

// heuristicSample bounds the number of arcs HeuristicDelta inspects.
const heuristicSample = 1 << 16

// HeuristicDelta returns the average arc weight (at least 1), the
// standard delta-stepping starting point. Large arc sets are sampled
// deterministically: a fixed stride of max(1, len(w)/2^16) starting at
// index 0, so repeated runs over one snapshot pick the same delta. All
// index arithmetic is additive (no i*stride products), so it cannot
// overflow regardless of the arc count.
func HeuristicDelta(w []uint32) int64 {
	if len(w) == 0 {
		return 1
	}
	stride := len(w) / heuristicSample
	if stride < 1 {
		stride = 1
	}
	var sum, count int64
	for i := 0; i < len(w); i += stride {
		sum += int64(w[i])
		count++
	}
	d := sum / count
	if d < 1 {
		d = 1
	}
	return d
}
