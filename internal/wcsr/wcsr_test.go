package wcsr

import (
	"sort"
	"testing"

	"snapdyn/internal/csr"
	"snapdyn/internal/edge"
	"snapdyn/internal/rmat"
)

func rmatGraph(t *testing.T, scale, ef int, timeMax uint32, seed uint64) *csr.Graph {
	t.Helper()
	p := rmat.PaperParams(scale, ef*(1<<scale), timeMax, seed)
	edges, err := rmat.Generate(0, p)
	if err != nil {
		t.Fatal(err)
	}
	return csr.FromEdges(0, p.NumVertices(), edges, true)
}

// checkView verifies the structural invariants of a built view against
// its source: the partition point, the weight mapping, and arc-set
// preservation per vertex.
func checkView(t *testing.T, g *csr.Graph, wg *Graph, wf WeightFunc) {
	t.Helper()
	if wg.N != g.N || len(wg.Adj) != len(g.Adj) || len(wg.W) != len(g.Adj) {
		t.Fatalf("shape mismatch: N=%d/%d m=%d/%d", wg.N, g.N, len(wg.Adj), len(g.Adj))
	}
	var maxW uint32
	for u := 0; u < g.N; u++ {
		lo, hi := g.Offsets[u], g.Offsets[u+1]
		le := wg.LightEnd[u]
		if le < lo || le > hi {
			t.Fatalf("vertex %d: LightEnd %d outside [%d,%d]", u, le, lo, hi)
		}
		for p := lo; p < hi; p++ {
			if w := int64(wg.W[p]); (w <= wg.Delta) != (p < le) {
				t.Fatalf("vertex %d arc %d: weight %d on wrong side of LightEnd (delta %d)", u, p, w, wg.Delta)
			}
			if wg.W[p] > maxW {
				maxW = wg.W[p]
			}
		}
		// Same multiset of (neighbor, weight) pairs as wf over the source.
		want := make([][2]uint64, 0, hi-lo)
		got := make([][2]uint64, 0, hi-lo)
		for p := lo; p < hi; p++ {
			want = append(want, [2]uint64{uint64(g.Adj[p]), uint64(wf(g.TS[p]))})
			got = append(got, [2]uint64{uint64(wg.Adj[p]), uint64(wg.W[p])})
		}
		less := func(s [][2]uint64) func(i, j int) bool {
			return func(i, j int) bool {
				if s[i][0] != s[j][0] {
					return s[i][0] < s[j][0]
				}
				return s[i][1] < s[j][1]
			}
		}
		sort.Slice(want, less(want))
		sort.Slice(got, less(got))
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("vertex %d: arc multiset diverged at %d: %v vs %v", u, i, got[i], want[i])
			}
		}
	}
	if maxW != wg.MaxW {
		t.Fatalf("MaxW = %d, want %d", wg.MaxW, maxW)
	}
}

func TestBuildPartition(t *testing.T) {
	g := rmatGraph(t, 9, 8, 100, 11)
	for _, delta := range []int64{1, 17, 50, 1000, 0} {
		for _, workers := range []int{1, 4} {
			wg := Build(workers, g, func(ts uint32) int64 { return int64(ts) }, delta)
			if delta > 0 && wg.Delta != delta {
				t.Fatalf("Delta = %d, want %d", wg.Delta, delta)
			}
			if wg.Delta < 1 {
				t.Fatalf("Delta = %d, want >= 1", wg.Delta)
			}
			checkView(t, g, wg, func(ts uint32) int64 { return int64(ts) })
		}
	}
}

func TestRebuildReusesArrays(t *testing.T) {
	g := rmatGraph(t, 9, 8, 100, 12)
	wf := func(ts uint32) int64 { return int64(ts) }
	wg := Build(1, g, wf, 10)
	adj0, w0 := &wg.Adj[0], &wg.W[0]
	wg.Rebuild(1, g, wf, 25)
	if &wg.Adj[0] != adj0 || &wg.W[0] != w0 {
		t.Fatal("Rebuild reallocated same-size arrays")
	}
	checkView(t, g, wg, wf)
}

func TestBuildEmptyAndIsolated(t *testing.T) {
	g := csr.FromEdges(1, 4, nil, false)
	wg := Build(1, g, func(uint32) int64 { return 1 }, 0)
	if wg.Delta != 1 || wg.MaxW != 0 || wg.NumEdges() != 0 {
		t.Fatalf("empty view: delta=%d maxW=%d m=%d", wg.Delta, wg.MaxW, wg.NumEdges())
	}
}

func TestBuildValidatesWeights(t *testing.T) {
	g := csr.FromEdges(1, 2, []edge.Edge{{U: 0, V: 1, T: 5}}, false)
	for _, wf := range []WeightFunc{
		func(uint32) int64 { return -1 },
		func(uint32) int64 { return 1 << 40 },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic for out-of-range weight")
				}
			}()
			Build(1, g, wf, 0)
		}()
	}
}

func TestHeuristicDelta(t *testing.T) {
	if d := HeuristicDelta(nil); d != 1 {
		t.Fatalf("empty: %d, want 1", d)
	}
	if d := HeuristicDelta([]uint32{0, 0, 0}); d != 1 {
		t.Fatalf("all-zero: %d, want 1 (floor)", d)
	}
	if d := HeuristicDelta([]uint32{10, 20, 30}); d != 20 {
		t.Fatalf("small: %d, want 20", d)
	}
	// Deterministic: same input, same answer, and a strided large input
	// averages the sampled stride positions exactly.
	big := make([]uint32, 1<<18)
	for i := range big {
		big[i] = uint32(i % 97)
	}
	d1, d2 := HeuristicDelta(big), HeuristicDelta(big)
	if d1 != d2 {
		t.Fatalf("nondeterministic: %d vs %d", d1, d2)
	}
	stride := len(big) / heuristicSample
	var sum, count int64
	for i := 0; i < len(big); i += stride {
		sum += int64(big[i])
		count++
	}
	if want := sum / count; d1 != want {
		t.Fatalf("stride sample: %d, want %d", d1, want)
	}
}

func TestBuildValidatesWeightsParallel(t *testing.T) {
	// The out-of-range panic must surface on the caller's goroutine even
	// when the materialization pass fans out to workers, so callers can
	// recover it.
	g := rmatGraph(t, 8, 6, 100, 13)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for negative weight at workers=4")
		}
	}()
	Build(4, g, func(uint32) int64 { return -1 }, 0)
}
