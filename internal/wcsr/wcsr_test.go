package wcsr

import (
	"sort"
	"testing"

	"snapdyn/internal/csr"
	"snapdyn/internal/edge"
	"snapdyn/internal/rmat"
)

func rmatGraph(t *testing.T, scale, ef int, timeMax uint32, seed uint64) *csr.Graph {
	t.Helper()
	p := rmat.PaperParams(scale, ef*(1<<scale), timeMax, seed)
	edges, err := rmat.Generate(0, p)
	if err != nil {
		t.Fatal(err)
	}
	return csr.FromEdges(0, p.NumVertices(), edges, true)
}

// checkView verifies the structural invariants of a built view against
// its source: the partition point, the weight mapping, and arc-set
// preservation per vertex.
func checkView(t *testing.T, g *csr.Graph, wg *Graph, wf WeightFunc) {
	t.Helper()
	if wg.N != g.N || len(wg.Adj) != len(g.Adj) || len(wg.W) != len(g.Adj) {
		t.Fatalf("shape mismatch: N=%d/%d m=%d/%d", wg.N, g.N, len(wg.Adj), len(g.Adj))
	}
	var maxW uint32
	for u := 0; u < g.N; u++ {
		lo, hi := g.Offsets[u], g.Offsets[u+1]
		le := wg.LightEnd[u]
		if le < lo || le > hi {
			t.Fatalf("vertex %d: LightEnd %d outside [%d,%d]", u, le, lo, hi)
		}
		for p := lo; p < hi; p++ {
			if w := int64(wg.W[p]); (w <= wg.Delta) != (p < le) {
				t.Fatalf("vertex %d arc %d: weight %d on wrong side of LightEnd (delta %d)", u, p, w, wg.Delta)
			}
			if wg.W[p] > maxW {
				maxW = wg.W[p]
			}
		}
		// Same multiset of (neighbor, weight) pairs as wf over the source.
		want := make([][2]uint64, 0, hi-lo)
		got := make([][2]uint64, 0, hi-lo)
		for p := lo; p < hi; p++ {
			want = append(want, [2]uint64{uint64(g.Adj[p]), uint64(wf(g.TS[p]))})
			got = append(got, [2]uint64{uint64(wg.Adj[p]), uint64(wg.W[p])})
		}
		less := func(s [][2]uint64) func(i, j int) bool {
			return func(i, j int) bool {
				if s[i][0] != s[j][0] {
					return s[i][0] < s[j][0]
				}
				return s[i][1] < s[j][1]
			}
		}
		sort.Slice(want, less(want))
		sort.Slice(got, less(got))
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("vertex %d: arc multiset diverged at %d: %v vs %v", u, i, got[i], want[i])
			}
		}
	}
	if maxW != wg.MaxW {
		t.Fatalf("MaxW = %d, want %d", wg.MaxW, maxW)
	}
}

func TestBuildPartition(t *testing.T) {
	g := rmatGraph(t, 9, 8, 100, 11)
	for _, delta := range []int64{1, 17, 50, 1000, 0} {
		for _, workers := range []int{1, 4} {
			wg := Build(workers, g, func(ts uint32) int64 { return int64(ts) }, delta)
			if delta > 0 && wg.Delta != delta {
				t.Fatalf("Delta = %d, want %d", wg.Delta, delta)
			}
			if wg.Delta < 1 {
				t.Fatalf("Delta = %d, want >= 1", wg.Delta)
			}
			checkView(t, g, wg, func(ts uint32) int64 { return int64(ts) })
		}
	}
}

func TestRebuildReusesArrays(t *testing.T) {
	g := rmatGraph(t, 9, 8, 100, 12)
	wf := func(ts uint32) int64 { return int64(ts) }
	wg := Build(1, g, wf, 10)
	adj0, w0 := &wg.Adj[0], &wg.W[0]
	wg.Rebuild(1, g, wf, 25)
	if &wg.Adj[0] != adj0 || &wg.W[0] != w0 {
		t.Fatal("Rebuild reallocated same-size arrays")
	}
	checkView(t, g, wg, wf)
}

func TestBuildEmptyAndIsolated(t *testing.T) {
	g := csr.FromEdges(1, 4, nil, false)
	wg := Build(1, g, func(uint32) int64 { return 1 }, 0)
	if wg.Delta != 1 || wg.MaxW != 0 || wg.NumEdges() != 0 {
		t.Fatalf("empty view: delta=%d maxW=%d m=%d", wg.Delta, wg.MaxW, wg.NumEdges())
	}
}

func TestBuildValidatesWeights(t *testing.T) {
	g := csr.FromEdges(1, 2, []edge.Edge{{U: 0, V: 1, T: 5}}, false)
	for _, wf := range []WeightFunc{
		func(uint32) int64 { return -1 },
		func(uint32) int64 { return 1 << 40 },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic for out-of-range weight")
				}
			}()
			Build(1, g, wf, 0)
		}()
	}
}

func TestHeuristicDelta(t *testing.T) {
	if d := HeuristicDelta(nil); d != 1 {
		t.Fatalf("empty: %d, want 1", d)
	}
	if d := HeuristicDelta([]uint32{0, 0, 0}); d != 1 {
		t.Fatalf("all-zero: %d, want 1 (floor)", d)
	}
	if d := HeuristicDelta([]uint32{10, 20, 30}); d != 20 {
		t.Fatalf("small: %d, want 20", d)
	}
	// Deterministic: same input, same answer, and a strided large input
	// averages the sampled stride positions exactly.
	big := make([]uint32, 1<<18)
	for i := range big {
		big[i] = uint32(i % 97)
	}
	d1, d2 := HeuristicDelta(big), HeuristicDelta(big)
	if d1 != d2 {
		t.Fatalf("nondeterministic: %d vs %d", d1, d2)
	}
	stride := len(big) / heuristicSample
	var sum, count int64
	for i := 0; i < len(big); i += stride {
		sum += int64(big[i])
		count++
	}
	if want := sum / count; d1 != want {
		t.Fatalf("stride sample: %d, want %d", d1, want)
	}
}

func TestBuildValidatesWeightsParallel(t *testing.T) {
	// The out-of-range panic must surface on the caller's goroutine even
	// when the materialization pass fans out to workers, so callers can
	// recover it.
	g := rmatGraph(t, 8, 6, 100, 13)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for negative weight at workers=4")
		}
	}()
	Build(4, g, func(uint32) int64 { return -1 }, 0)
}

// checkSorted verifies the weight-sorted span invariant Retarget relies
// on: within every vertex's span, arcs ascend by (weight, neighbor id).
func checkSorted(t *testing.T, wg *Graph) {
	t.Helper()
	for u := 0; u < wg.N; u++ {
		lo, hi := wg.Offsets[u], wg.Offsets[u+1]
		for p := lo + 1; p < hi; p++ {
			if wg.W[p] < wg.W[p-1] ||
				(wg.W[p] == wg.W[p-1] && wg.Adj[p] < wg.Adj[p-1]) {
				t.Fatalf("vertex %d: span not sorted at %d: (%d,%d) after (%d,%d)",
					u, p, wg.W[p], wg.Adj[p], wg.W[p-1], wg.Adj[p-1])
			}
		}
	}
}

func TestSortedSpans(t *testing.T) {
	wf := func(ts uint32) int64 { return int64(ts) }
	for _, workers := range []int{1, 4} {
		g := rmatGraph(t, 9, 8, 100, 21)
		wg := Build(workers, g, wf, 17)
		checkSorted(t, wg)
		checkView(t, g, wg, wf)
	}
	// Degenerate spans: length 0, 1, and all-equal weights stay sorted
	// (ties break by neighbor id).
	g := csr.FromEdges(1, 4, []edge.Edge{
		{U: 0, V: 3, T: 7}, {U: 0, V: 1, T: 7}, {U: 0, V: 2, T: 7}, {U: 2, V: 0, T: 1},
	}, false)
	wg := Build(1, g, wf, 7)
	checkSorted(t, wg)
	if wg.Adj[0] != 1 || wg.Adj[1] != 2 || wg.Adj[2] != 3 {
		t.Fatalf("equal-weight ties not ordered by id: %v", wg.Adj[:3])
	}
}

func TestSortedSpansDeterministic(t *testing.T) {
	// The sorted layout is identical across worker counts: parallel
	// builds must not produce a different (valid) permutation.
	wf := func(ts uint32) int64 { return int64(ts) }
	g := rmatGraph(t, 9, 8, 100, 22)
	a := Build(1, g, wf, 13)
	b := Build(4, g, wf, 13)
	for p := range a.Adj {
		if a.Adj[p] != b.Adj[p] || a.W[p] != b.W[p] {
			t.Fatalf("layout diverges at arc %d: (%d,%d) vs (%d,%d)",
				p, a.Adj[p], a.W[p], b.Adj[p], b.W[p])
		}
	}
}

func TestRetargetMatchesRebuild(t *testing.T) {
	wf := func(ts uint32) int64 { return int64(ts) }
	g := rmatGraph(t, 9, 8, 100, 23)
	wg := Build(1, g, wf, 5)
	for _, delta := range []int64{1, 17, 50, 99, 1000} {
		for _, workers := range []int{1, 4} {
			wg.Retarget(workers, delta)
			if wg.Delta != delta {
				t.Fatalf("Delta = %d, want %d", wg.Delta, delta)
			}
			fresh := Build(1, g, wf, delta)
			for u := 0; u < g.N; u++ {
				if wg.LightEnd[u] != fresh.LightEnd[u] {
					t.Fatalf("delta %d: LightEnd[%d] = %d, want %d",
						delta, u, wg.LightEnd[u], fresh.LightEnd[u])
				}
			}
			checkView(t, g, wg, wf)
		}
	}
	// Retarget does not touch the arc arrays, only the split points.
	before := append([]uint32(nil), wg.Adj...)
	wg.Retarget(1, 3)
	for p := range before {
		if wg.Adj[p] != before[p] {
			t.Fatal("Retarget permuted arcs")
		}
	}
}

func TestRetargetHeuristic(t *testing.T) {
	// delta <= 0 re-derives the heuristic width from the (sorted)
	// weights; the result must be a valid positive split.
	wf := func(ts uint32) int64 { return int64(ts) }
	g := rmatGraph(t, 8, 6, 100, 24)
	wg := Build(1, g, wf, 40)
	wg.Retarget(1, 0)
	if wg.Delta < 1 {
		t.Fatalf("heuristic Delta = %d, want >= 1", wg.Delta)
	}
	checkView(t, g, wg, wf)
}
