package dyngraph

import "snapdyn/internal/edge"

// An adjacency entry packs a 32-bit neighbor id and a 32-bit time label
// into one uint64, the paper's compact 8-byte tuple. A deleted entry is
// tombstoned in place (Dyn-arr "marks a memory location as deleted") by
// setting the neighbor id to the sentinel; the time label slot then
// records the deletion time.

// tombstone is the reserved neighbor id marking a deleted slot. Vertex
// ids must therefore be < 2^32 - 1.
const tombstone = ^uint32(0)

func pack(v edge.ID, t uint32) uint64 {
	return uint64(v)<<32 | uint64(t)
}

func unpack(e uint64) (v edge.ID, t uint32) {
	return uint32(e >> 32), uint32(e)
}

func isTombstone(e uint64) bool {
	return uint32(e>>32) == tombstone
}
