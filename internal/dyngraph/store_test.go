package dyngraph

import (
	"fmt"
	"testing"
	"testing/quick"

	"snapdyn/internal/edge"
	"snapdyn/internal/xrand"
)

// allStores builds one instance of every representation over n vertices.
func allStores(n, expectedEdges int) []Store {
	return []Store{
		NewDynArr(n, expectedEdges),
		NewTreapStore(n, 42),
		NewHybrid(n, expectedEdges, 8, 42),
		NewVpart(n, expectedEdges),
		NewEpart(n, expectedEdges, 8),
		NewBatched(NewDynArr(n, expectedEdges)),
	}
}

// randomUpdates generates a stream mixing inserts and deletes; deletes
// target previously inserted edges with probability pHit.
func randomUpdates(r *xrand.State, n, count int, delFrac float64) []edge.Update {
	ups := make([]edge.Update, 0, count)
	var inserted []edge.Edge
	for len(ups) < count {
		if len(inserted) > 0 && r.Float64() < delFrac {
			e := inserted[r.Intn(len(inserted))]
			ups = append(ups, edge.Update{Edge: e, Op: edge.Delete})
		} else {
			e := edge.Edge{U: r.Uint32n(uint32(n)), V: r.Uint32n(uint32(n)), T: uint32(len(ups))}
			inserted = append(inserted, e)
			ups = append(ups, edge.Update{Edge: e, Op: edge.Insert})
		}
	}
	return ups
}

// stateMatches compares a store against the oracle vertex by vertex.
func stateMatches(t *testing.T, s Store, o *Oracle) {
	t.Helper()
	if s.NumEdges() != o.NumEdges() {
		t.Fatalf("%s: live edges %d != oracle %d", s.Name(), s.NumEdges(), o.NumEdges())
	}
	for u := 0; u < s.NumVertices(); u++ {
		id := edge.ID(u)
		if s.Degree(id) != o.Degree(id) {
			t.Fatalf("%s: degree(%d) = %d, oracle %d", s.Name(), u, s.Degree(id), o.Degree(id))
		}
		want := o.NeighborCounts(id)
		got := map[edge.ID]int{}
		s.Neighbors(id, func(v edge.ID, _ uint32) bool {
			got[v]++
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("%s: vertex %d neighbor sets differ: got %v want %v", s.Name(), u, got, want)
		}
		for v, c := range want {
			if got[v] != c {
				t.Fatalf("%s: vertex %d neighbor %d count %d, oracle %d", s.Name(), u, v, got[v], c)
			}
			if !s.Has(id, v) {
				t.Fatalf("%s: Has(%d,%d) false, oracle true", s.Name(), u, v)
			}
		}
	}
}

func TestAllStoresMatchOracleSequential(t *testing.T) {
	const n = 48
	r := xrand.New(2024)
	ups := randomUpdates(r, n, 3000, 0.3)
	for _, s := range allStores(n, 3000) {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			o := NewOracle(n)
			for _, up := range ups {
				if up.Op == edge.Insert {
					s.Insert(up.U, up.V, up.T)
					o.Insert(up.U, up.V, up.T)
				} else {
					gs := s.Delete(up.U, up.V)
					go_ := o.Delete(up.U, up.V)
					if gs != go_ {
						t.Fatalf("%s: Delete(%d,%d) = %v, oracle %v", s.Name(), up.U, up.V, gs, go_)
					}
				}
			}
			stateMatches(t, s, o)
		})
	}
}

func TestAllStoresMatchOracleBatch(t *testing.T) {
	const n = 64
	r := xrand.New(777)
	// Insert-only batches so delete-ordering nondeterminism cannot make
	// store and oracle diverge.
	var ups []edge.Update
	for i := 0; i < 5000; i++ {
		ups = append(ups, edge.Update{
			Edge: edge.Edge{U: r.Uint32n(n), V: r.Uint32n(n), T: uint32(i)},
			Op:   edge.Insert,
		})
	}
	for _, s := range allStores(n, len(ups)) {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			o := NewOracle(n)
			o.ApplyBatch(4, ups)
			s.ApplyBatch(4, ups)
			stateMatches(t, s, o)
		})
	}
}

func TestAllStoresBatchWithDeletes(t *testing.T) {
	// Batch of inserts, then a batch deleting a subset: multiset end
	// state is deterministic even with concurrent application.
	const n = 32
	r := xrand.New(31)
	var ins []edge.Update
	for i := 0; i < 2000; i++ {
		ins = append(ins, edge.Update{
			Edge: edge.Edge{U: r.Uint32n(n), V: r.Uint32n(n), T: uint32(i)},
			Op:   edge.Insert,
		})
	}
	var dels []edge.Update
	for i := 0; i < len(ins); i += 2 {
		dels = append(dels, edge.Update{Edge: ins[i].Edge, Op: edge.Delete})
	}
	for _, s := range allStores(n, len(ins)) {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			o := NewOracle(n)
			o.ApplyBatch(1, ins)
			o.ApplyBatch(1, dels)
			s.ApplyBatch(4, ins)
			s.ApplyBatch(4, dels)
			stateMatches(t, s, o)
		})
	}
}

func TestStoresPropertyQuick(t *testing.T) {
	// Randomized sequential op sequences across all stores vs oracle.
	cfg := &quick.Config{MaxCount: 12}
	if err := quick.Check(func(seed uint64) bool {
		const n = 24
		r := xrand.New(seed)
		ups := randomUpdates(r, n, 600, 0.4)
		for _, s := range allStores(n, 600) {
			o := NewOracle(n)
			for _, up := range ups {
				if up.Op == edge.Insert {
					s.Insert(up.U, up.V, up.T)
					o.Insert(up.U, up.V, up.T)
				} else {
					if s.Delete(up.U, up.V) != o.Delete(up.U, up.V) {
						return false
					}
				}
			}
			if s.NumEdges() != o.NumEdges() {
				return false
			}
			for u := 0; u < n; u++ {
				if s.Degree(edge.ID(u)) != o.Degree(edge.ID(u)) {
					return false
				}
			}
		}
		return true
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestInsertAll(t *testing.T) {
	edges := []edge.Edge{{U: 0, V: 1, T: 1}, {U: 1, V: 2, T: 2}, {U: 2, V: 0, T: 3}}
	s := NewDynArr(3, 3)
	InsertAll(s, 2, edges)
	if s.NumEdges() != 3 {
		t.Fatalf("m = %d", s.NumEdges())
	}
	nb := CollectNeighbors(s, 1)
	if len(nb) != 1 || nb[0].V != 2 {
		t.Fatalf("neighbors of 1 = %v", nb)
	}
}

func TestSemiSortGroups(t *testing.T) {
	ups := []edge.Update{
		{Edge: edge.Edge{U: 5, V: 0}}, {Edge: edge.Edge{U: 2, V: 0}},
		{Edge: edge.Edge{U: 5, V: 1}}, {Edge: edge.Edge{U: 2, V: 1}},
		{Edge: edge.Edge{U: 9, V: 0}},
	}
	perm, bounds := SemiSort(2, ups)
	if len(bounds) != 4 { // groups for 2, 5, 9 plus terminator
		t.Fatalf("bounds = %v", bounds)
	}
	// Verify grouping: each group has a single source vertex and groups
	// are in increasing vertex order.
	prev := int64(-1)
	for g := 0; g < len(bounds)-1; g++ {
		u := ups[perm[bounds[g]]].U
		if int64(u) <= prev {
			t.Fatalf("groups not ordered: %d after %d", u, prev)
		}
		prev = int64(u)
		for i := bounds[g]; i < bounds[g+1]; i++ {
			if ups[perm[i]].U != u {
				t.Fatalf("group %d mixes vertices", g)
			}
		}
	}
}

func TestStatsSummary(t *testing.T) {
	s := NewDynArr(10, 32)
	for v := uint32(1); v <= 5; v++ {
		s.Insert(0, v, 0)
	}
	s.Insert(1, 0, 0)
	st := Stats(s, 4)
	if st.Vertices != 10 || st.LiveEdges != 6 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MaxDegree != 5 || st.HeavyCount != 1 || st.Isolated != 8 {
		t.Fatalf("stats = %+v", st)
	}
	if st.AvgDegree <= 0 {
		t.Fatalf("avg degree = %v", st.AvgDegree)
	}
	if fmt.Sprint(st) == "" {
		t.Fatal("empty stats string")
	}
}

func TestVpartName(t *testing.T) {
	if NewVpart(4, 4).Name() != "vpart" {
		t.Fatal("vpart name")
	}
	if NewEpart(4, 4, 0).Name() != "epart" {
		t.Fatal("epart name")
	}
	if NewBatched(NewDynArr(2, 2)).Name() != "batched(dyn-arr)" {
		t.Fatal("batched name")
	}
}

func TestEpartDefaultHotThresh(t *testing.T) {
	s := NewEpart(100, 1000, 0)
	if s.HotThresh != 80 {
		t.Fatalf("default hot thresh = %d, want 80 (8x avg degree)", s.HotThresh)
	}
}

func TestEpartMergesHotInserts(t *testing.T) {
	const n = 16
	s := NewEpart(n, 4096, 4)
	// Make vertex 0 hot.
	for v := uint32(0); v < 8; v++ {
		s.Insert(0, v, 0)
	}
	var batch []edge.Update
	for i := uint32(0); i < 1000; i++ {
		batch = append(batch, edge.Update{Edge: edge.Edge{U: 0, V: 100 + i, T: i}, Op: edge.Insert})
	}
	s.ApplyBatch(4, batch)
	if s.Degree(0) != 8+1000 {
		t.Fatalf("degree = %d, want 1008", s.Degree(0))
	}
	if s.NumEdges() != 1008 {
		t.Fatalf("m = %d, want 1008", s.NumEdges())
	}
}
