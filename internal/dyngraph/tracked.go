package dyngraph

import (
	"math/bits"
	"sync/atomic"

	"snapdyn/internal/edge"
	"snapdyn/internal/par"
)

// Tracked decorates any Store with dirty-vertex tracking, the front end
// of the incremental snapshot pipeline: every mutation records its
// source vertex in a lock-free bitmap, so a snapshot materialization can
// rebuild only the adjacencies that changed since the previous one
// (csr.Refresh) instead of re-enumerating all of them (csr.FromStore).
//
// The mark is published *after* the mutation completes. A concurrent
// Flush that misses an in-flight mutation's mark therefore also reads
// the pre-mutation adjacency at worst — and the mark, published
// afterwards, keeps the vertex dirty for the next epoch. A mutation is
// never lost; the only slack is a redundant re-enumeration of a vertex
// the materialization happened to read fresh. Deletions that remove
// nothing do not mark.
//
// The per-update cost is one atomic word-OR, negligible next to the
// store's own per-vertex locking.
type Tracked struct {
	Store
	words []uint64     // dirty bitmap, bit u set = u's adjacency changed
	count atomic.Int64 // set bits (vertices, not mutations)
	epoch atomic.Uint64
}

var _ Store = (*Tracked)(nil)

// NewTracked wraps base with dirty-vertex tracking. The decorator is
// transparent: Name, Degree, Neighbors, and the rest pass through.
func NewTracked(base Store) *Tracked {
	return &Tracked{
		Store: base,
		words: make([]uint64, (base.NumVertices()+63)/64),
	}
}

// mark records u's adjacency as changed (atomic word-OR, idempotent).
func (t *Tracked) mark(u edge.ID) {
	w, mask := u>>6, uint64(1)<<(u&63)
	if atomic.OrUint64(&t.words[w], mask)&mask == 0 {
		t.count.Add(1)
	}
}

// Insert implements Store.
func (t *Tracked) Insert(u, v edge.ID, ts uint32) {
	t.Store.Insert(u, v, ts)
	t.mark(u)
}

// Delete implements Store; only successful removals dirty the vertex.
func (t *Tracked) Delete(u, v edge.ID) bool {
	ok := t.Store.Delete(u, v)
	if ok {
		t.mark(u)
	}
	return ok
}

// DeleteTuple implements Store; only successful removals dirty the
// vertex.
func (t *Tracked) DeleteTuple(u, v edge.ID, ts uint32) bool {
	ok := t.Store.DeleteTuple(u, v, ts)
	if ok {
		t.mark(u)
	}
	return ok
}

// ApplyBatch implements Store: the inner store applies the batch with
// its own strategy (semi-sort, partitioning, ...), then every source
// vertex in the batch is marked, in parallel (mark is an idempotent
// atomic word-OR) so the ingest path has no serial tail. Failed
// deletions mark conservatively — a spurious dirty bit only costs one
// redundant re-enumeration.
func (t *Tracked) ApplyBatch(workers int, batch []edge.Update) {
	t.Store.ApplyBatch(workers, batch)
	par.ForDynamic(workers, len(batch), 4096, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			t.mark(batch[i].U)
		}
	})
}

// DirtyCount returns the number of vertices whose adjacency changed
// since the last Flush. Clamped at zero: a Flush racing an in-flight
// mark can momentarily subtract the bit before the marker's increment
// lands.
func (t *Tracked) DirtyCount() int { return max(0, int(t.count.Load())) }

// Epoch returns the monotone materialization counter: the number of
// Flush calls so far.
func (t *Tracked) Epoch() uint64 { return t.epoch.Load() }

// Dirty appends the current dirty vertices to dst in ascending order
// without consuming them, for inspection and staleness heuristics. It
// tolerates concurrent mutators (marks landing mid-scan may or may not
// appear).
func (t *Tracked) Dirty(dst []uint32) []uint32 {
	for wi := range t.words {
		dst = appendWordBits(dst, uint32(wi)<<6, atomic.LoadUint64(&t.words[wi]))
	}
	return dst
}

// Flush consumes the dirty set: it appends the dirty vertices to dst in
// ascending order, clears them, and advances the epoch. Each word is
// taken with one atomic swap, so a mark racing the flush is either
// consumed now or left intact for the next epoch — never lost. Flush
// may run concurrently with mutators; concurrent Flush calls partition
// the dirty set between themselves (the snapshot manager serializes
// them anyway).
func (t *Tracked) Flush(dst []uint32) []uint32 {
	taken := 0
	for wi := range t.words {
		w := atomic.SwapUint64(&t.words[wi], 0)
		if w == 0 {
			continue
		}
		taken += bits.OnesCount64(w)
		dst = appendWordBits(dst, uint32(wi)<<6, w)
	}
	if taken > 0 {
		t.count.Add(int64(-taken))
	}
	t.epoch.Add(1)
	return dst
}

// appendWordBits appends base+i for every set bit i of w, ascending.
func appendWordBits(dst []uint32, base uint32, w uint64) []uint32 {
	for w != 0 {
		dst = append(dst, base+uint32(bits.TrailingZeros64(w)))
		w &= w - 1
	}
	return dst
}
