package dyngraph

import (
	"sync/atomic"

	"snapdyn/internal/arena"
	"snapdyn/internal/edge"
)

// LockFreeArr is the paper's lock-free insertion path made precise under
// the Go memory model: adjacency arrays are fixed-capacity (sized a
// priori, like Dyn-arr-nr), an insert claims a slot with one atomic
// fetch-add on the per-vertex length ("the count can be incremented
// using an atomic increment operation") and publishes the 8-byte entry
// with a single atomic store — no locks, no blocking, for any number of
// concurrent writers.
//
// Unwritten-but-claimed slots hold the tombstone sentinel, so concurrent
// readers simply skip entries that are not yet published. Deletions
// tombstone entries via CAS, making concurrent deletes race-free (each
// tuple is removed at most once).
type LockFreeArr struct {
	name  string
	caps  []uint32
	len_  []uint32 // slots claimed (atomic)
	alive []int32  // live tuples (atomic)
	data  [][]uint64
	live  atomic.Int64
}

var _ Store = (*LockFreeArr)(nil)

// emptySlot marks a claimed-but-unpublished or deleted slot; readers
// skip it. It reuses the tombstone neighbor id.
const emptySlot = uint64(tombstone) << 32

// NewLockFreeArr creates a lock-free store with the given per-vertex
// capacities (exact degrees suffice; capacities are rounded up to arena
// size classes). Inserting beyond a vertex's capacity panics.
func NewLockFreeArr(capacities []int) *LockFreeArr {
	total := 0
	for _, c := range capacities {
		total += arena.ClassSize(max(1, c))
	}
	ar := arena.New(total)
	s := &LockFreeArr{
		name:  "lockfree-arr",
		caps:  make([]uint32, len(capacities)),
		len_:  make([]uint32, len(capacities)),
		alive: make([]int32, len(capacities)),
		data:  make([][]uint64, len(capacities)),
	}
	for u, c := range capacities {
		blk := ar.Alloc(max(1, c))
		for i := range blk {
			blk[i] = emptySlot
		}
		s.data[u] = blk
		s.caps[u] = uint32(len(blk))
	}
	return s
}

// Name implements Store.
func (s *LockFreeArr) Name() string { return s.name }

// NumVertices implements Store.
func (s *LockFreeArr) NumVertices() int { return len(s.data) }

// NumEdges implements Store.
func (s *LockFreeArr) NumEdges() int64 { return s.live.Load() }

// Insert implements Store: one fetch-add to claim a slot, one atomic
// store to publish — wait-free for writers.
func (s *LockFreeArr) Insert(u, v edge.ID, t uint32) {
	idx := atomic.AddUint32(&s.len_[u], 1) - 1
	if idx >= s.caps[u] {
		panic("dyngraph: lockfree-arr adjacency overflow (capacities underestimated)")
	}
	atomic.StoreUint64(&s.data[u][idx], pack(v, t))
	atomic.AddInt32(&s.alive[u], 1)
	s.live.Add(1)
}

// Delete implements Store: scan published entries and tombstone the
// first match via CAS (losing a CAS means another deleter claimed that
// tuple; the scan continues).
func (s *LockFreeArr) Delete(u, v edge.ID) bool {
	return s.deleteMatch(u, func(e uint64) bool { return uint32(e>>32) == v })
}

// DeleteTuple implements Store: exact (v,t) match first, then any-v
// fallback, mirroring arrCore.deleteTuple's semantics.
func (s *LockFreeArr) DeleteTuple(u, v edge.ID, t uint32) bool {
	if t == edge.NoTime {
		return s.Delete(u, v)
	}
	want := pack(v, t)
	if s.deleteMatch(u, func(e uint64) bool { return e == want }) {
		return true
	}
	return s.Delete(u, v)
}

func (s *LockFreeArr) deleteMatch(u edge.ID, match func(uint64) bool) bool {
	n := atomic.LoadUint32(&s.len_[u])
	if n > s.caps[u] {
		n = s.caps[u]
	}
	d := s.data[u]
	for i := uint32(0); i < n; i++ {
		e := atomic.LoadUint64(&d[i])
		for !isTombstone(e) && match(e) {
			if atomic.CompareAndSwapUint64(&d[i], e, pack(tombstone, uint32(e))) {
				atomic.AddInt32(&s.alive[u], -1)
				s.live.Add(-1)
				return true
			}
			e = atomic.LoadUint64(&d[i])
		}
	}
	return false
}

// Degree implements Store.
func (s *LockFreeArr) Degree(u edge.ID) int {
	return int(atomic.LoadInt32(&s.alive[u]))
}

// Has implements Store.
func (s *LockFreeArr) Has(u, v edge.ID) bool {
	found := false
	s.Neighbors(u, func(w edge.ID, _ uint32) bool {
		if w == v {
			found = true
			return false
		}
		return true
	})
	return found
}

// Neighbors implements Store. The iteration is a consistent-enough view:
// entries published before the call are seen; concurrent inserts may or
// may not appear.
func (s *LockFreeArr) Neighbors(u edge.ID, fn func(v edge.ID, t uint32) bool) {
	n := atomic.LoadUint32(&s.len_[u])
	if n > s.caps[u] {
		n = s.caps[u]
	}
	d := s.data[u]
	for i := uint32(0); i < n; i++ {
		e := atomic.LoadUint64(&d[i])
		if isTombstone(e) {
			continue
		}
		if !fn(unpack(e)) {
			return
		}
	}
}

// ApplyBatch implements Store.
func (s *LockFreeArr) ApplyBatch(workers int, batch []edge.Update) {
	applyConcurrent(s, workers, batch)
}
