package dyngraph

import (
	"sync"
	"testing"

	"snapdyn/internal/edge"
	"snapdyn/internal/xrand"
)

func TestHybridMigration(t *testing.T) {
	s := NewHybrid(4, 256, 8, 1)
	if s.DegreeThresh() != 8 {
		t.Fatalf("thresh = %d", s.DegreeThresh())
	}
	for v := uint32(0); v < 8; v++ {
		s.Insert(0, v, v)
	}
	if s.IsTreap(0) {
		t.Fatal("vertex migrated below threshold")
	}
	s.Insert(0, 8, 8)
	if !s.IsTreap(0) {
		t.Fatal("vertex did not migrate above threshold")
	}
	if s.Degree(0) != 9 {
		t.Fatalf("degree = %d, want 9", s.Degree(0))
	}
	for v := uint32(0); v < 9; v++ {
		if !s.Has(0, v) {
			t.Fatalf("lost edge 0->%d in migration", v)
		}
	}
	if s.TreapVertexCount() != 1 {
		t.Fatalf("treap vertices = %d, want 1", s.TreapVertexCount())
	}
}

func TestHybridMigrationPreservesTimestamps(t *testing.T) {
	s := NewHybrid(2, 64, 4, 2)
	for v := uint32(0); v < 10; v++ {
		s.Insert(0, v, 100+v)
	}
	got := map[edge.ID]uint32{}
	s.Neighbors(0, func(v edge.ID, ts uint32) bool {
		got[v] = ts
		return true
	})
	for v := uint32(0); v < 10; v++ {
		if got[v] != 100+v {
			t.Fatalf("timestamp of 0->%d = %d, want %d", v, got[v], 100+v)
		}
	}
}

func TestHybridDefaultThreshold(t *testing.T) {
	s := NewHybrid(2, 64, 0, 3)
	if s.DegreeThresh() != DefaultDegreeThresh {
		t.Fatalf("default thresh = %d, want %d", s.DegreeThresh(), DefaultDegreeThresh)
	}
}

func TestHybridDeleteBothModes(t *testing.T) {
	s := NewHybrid(4, 256, 8, 4)
	// Array-mode vertex.
	s.Insert(1, 10, 0)
	s.Insert(1, 11, 0)
	if !s.Delete(1, 10) || s.Has(1, 10) || s.Degree(1) != 1 {
		t.Fatal("array-mode delete wrong")
	}
	// Treap-mode vertex.
	for v := uint32(0); v < 20; v++ {
		s.Insert(2, v, 0)
	}
	if !s.IsTreap(2) {
		t.Fatal("expected treap mode")
	}
	if !s.Delete(2, 5) || s.Has(2, 5) || s.Degree(2) != 19 {
		t.Fatal("treap-mode delete wrong")
	}
	if s.Delete(2, 5) {
		t.Fatal("double delete succeeded")
	}
	if s.NumEdges() != 1+19 {
		t.Fatalf("m = %d", s.NumEdges())
	}
}

func TestHybridDeletesStayBelowThreshold(t *testing.T) {
	// Deleting from an array-mode vertex never migrates it.
	s := NewHybrid(2, 64, 8, 5)
	for v := uint32(0); v < 6; v++ {
		s.Insert(0, v, 0)
	}
	for v := uint32(0); v < 6; v++ {
		s.Delete(0, v)
	}
	if s.IsTreap(0) {
		t.Fatal("deletes caused migration")
	}
	if s.Degree(0) != 0 {
		t.Fatalf("degree = %d", s.Degree(0))
	}
}

func TestHybridConcurrentMigration(t *testing.T) {
	// Many workers hammer the same vertex across the migration boundary.
	const workers = 8
	const perWorker = 500
	s := NewHybrid(2, workers*perWorker, 32, 6)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				s.Insert(0, edge.ID(w*perWorker+i), uint32(i))
			}
		}(w)
	}
	wg.Wait()
	if !s.IsTreap(0) {
		t.Fatal("hot vertex should be in treap mode")
	}
	if s.Degree(0) != workers*perWorker {
		t.Fatalf("degree = %d, want %d", s.Degree(0), workers*perWorker)
	}
	if s.NumEdges() != workers*perWorker {
		t.Fatalf("m = %d", s.NumEdges())
	}
}

func TestHybridConcurrentMixed(t *testing.T) {
	const n = 64
	s := NewHybrid(n, 1<<14, 16, 7)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := xrand.New(uint64(w) + 100)
			for i := 0; i < 2000; i++ {
				u := edge.ID(r.Uint32n(n))
				v := edge.ID(r.Uint32n(128))
				switch {
				case r.Float64() < 0.7:
					s.Insert(u, v, uint32(i))
				default:
					s.Delete(u, v)
				}
				if i%64 == 0 {
					s.Degree(u)
					s.Has(u, v)
				}
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for u := 0; u < n; u++ {
		total += int64(s.Degree(edge.ID(u)))
	}
	if total != s.NumEdges() {
		t.Fatalf("degree sum %d != live %d", total, s.NumEdges())
	}
}

func TestHybridNeighborsEarlyStopTreapMode(t *testing.T) {
	s := NewHybrid(2, 256, 4, 8)
	for v := uint32(0); v < 32; v++ {
		s.Insert(0, v, 0)
	}
	count := 0
	s.Neighbors(0, func(v edge.ID, _ uint32) bool {
		count++
		return count < 4
	})
	if count != 4 {
		t.Fatalf("early stop visited %d", count)
	}
}
