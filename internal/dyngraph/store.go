// Package dyngraph implements the paper's dynamic graph representations:
// resizable adjacency arrays (Dyn-arr and its no-resize upper bound),
// adjacency treaps, the hybrid array/treap structure keyed by a degree
// threshold, vertex partitioning (Vpart), edge partitioning (Epart), and
// batched (semi-sorted) update application.
//
// All representations share multigraph semantics matching the paper's C
// implementation: Insert appends a tuple unconditionally (constant-time
// for arrays; duplicate tuples raise a per-neighbor multiplicity in
// treaps), and Delete removes one matching tuple, reporting whether one
// existed. Degree counts live tuples. Iteration order is
// representation-specific.
//
// Concurrency: all mutating and reading methods are safe for concurrent
// use; mutations to the same vertex serialize on a per-vertex spinlock.
// Neighbor callbacks run with that vertex's lock held and must not
// re-enter the store for the same vertex.
package dyngraph

import (
	"snapdyn/internal/edge"
	"snapdyn/internal/par"
)

// Store is a dynamic adjacency structure over a fixed vertex set
// [0, NumVertices).
type Store interface {
	// Name identifies the representation ("dyn-arr", "treaps", ...).
	Name() string
	// NumVertices returns the size of the vertex set.
	NumVertices() int
	// NumEdges returns the current number of live edge tuples.
	NumEdges() int64
	// Insert appends the tuple u->v with time label t.
	Insert(u, v edge.ID, t uint32)
	// Delete removes one tuple u->v (any time label), returning whether
	// one existed.
	Delete(u, v edge.ID) bool
	// DeleteTuple removes the specific tuple u->v with time label t (the
	// paper's "locate the required tuple"): array representations must
	// scan for the exact entry, while treaps locate the neighbor key in
	// O(log d) regardless. t == edge.NoTime acts as a wildcard. When the
	// labeled tuple is absent, one u->v tuple with any label is removed
	// as a fallback. Reports whether a tuple was removed.
	DeleteTuple(u, v edge.ID, t uint32) bool
	// Degree returns the number of live tuples out of u.
	Degree(u edge.ID) int
	// Has reports whether at least one live tuple u->v exists.
	Has(u, v edge.ID) bool
	// Neighbors calls fn for every live tuple out of u (once per
	// multiplicity) until fn returns false.
	Neighbors(u edge.ID, fn func(v edge.ID, t uint32) bool)
	// ApplyBatch applies a batch of updates using the given number of
	// workers (<=0 means GOMAXPROCS).
	ApplyBatch(workers int, batch []edge.Update)
}

// applyConcurrent is the default ApplyBatch: updates are striped across
// workers in chunks; per-vertex locks serialize conflicting updates. Used
// by representations without a specialized batch path.
func applyConcurrent(s Store, workers int, batch []edge.Update) {
	par.ForDynamic(workers, len(batch), 1024, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			u := batch[i]
			if u.Op == edge.Insert {
				s.Insert(u.U, u.V, u.T)
			} else {
				s.DeleteTuple(u.U, u.V, u.T)
			}
		}
	})
}

// InsertAll bulk-loads an edge list as a series of insertions ("graph
// construction treated as a series of insertions").
func InsertAll(s Store, workers int, edges []edge.Edge) {
	par.ForDynamic(workers, len(edges), 1024, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := edges[i]
			s.Insert(e.U, e.V, e.T)
		}
	})
}

// CollectNeighbors returns u's live neighbor tuples as a slice, mainly
// for tests and examples.
func CollectNeighbors(s Store, u edge.ID) []edge.Edge {
	var out []edge.Edge
	s.Neighbors(u, func(v edge.ID, t uint32) bool {
		out = append(out, edge.Edge{U: u, V: v, T: t})
		return true
	})
	return out
}
