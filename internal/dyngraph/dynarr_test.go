package dyngraph

import (
	"sync"
	"testing"

	"snapdyn/internal/edge"
)

func TestDynArrBasic(t *testing.T) {
	s := NewDynArr(10, 100)
	if s.Name() != "dyn-arr" {
		t.Fatalf("name = %q", s.Name())
	}
	if s.NumVertices() != 10 {
		t.Fatalf("n = %d", s.NumVertices())
	}
	s.Insert(1, 2, 5)
	s.Insert(1, 3, 6)
	s.Insert(2, 1, 7)
	if s.NumEdges() != 3 {
		t.Fatalf("m = %d, want 3", s.NumEdges())
	}
	if s.Degree(1) != 2 || s.Degree(2) != 1 || s.Degree(0) != 0 {
		t.Fatalf("degrees wrong: %d %d %d", s.Degree(1), s.Degree(2), s.Degree(0))
	}
	if !s.Has(1, 2) || !s.Has(1, 3) || s.Has(1, 4) || s.Has(3, 1) {
		t.Fatal("Has gave wrong answers")
	}
}

func TestDynArrDelete(t *testing.T) {
	s := NewDynArr(4, 16)
	s.Insert(0, 1, 1)
	s.Insert(0, 2, 2)
	if !s.Delete(0, 1) {
		t.Fatal("delete of existing edge failed")
	}
	if s.Delete(0, 1) {
		t.Fatal("delete of absent edge succeeded")
	}
	if s.Degree(0) != 1 || s.Has(0, 1) || !s.Has(0, 2) {
		t.Fatal("post-delete state wrong")
	}
	if s.NumEdges() != 1 {
		t.Fatalf("m = %d, want 1", s.NumEdges())
	}
}

func TestDynArrTombstonesAndCompact(t *testing.T) {
	s := NewDynArr(2, 16)
	for i := uint32(0); i < 8; i++ {
		s.Insert(0, i+10, i)
	}
	for i := uint32(0); i < 4; i++ {
		s.Delete(0, i+10)
	}
	if s.Slots(0) != 8 {
		t.Fatalf("slots = %d, want 8 (tombstones retained)", s.Slots(0))
	}
	if s.Degree(0) != 4 {
		t.Fatalf("degree = %d, want 4", s.Degree(0))
	}
	s.Compact(0)
	if s.Slots(0) != 4 {
		t.Fatalf("slots after compact = %d, want 4", s.Slots(0))
	}
	for i := uint32(4); i < 8; i++ {
		if !s.Has(0, i+10) {
			t.Fatalf("lost edge 0->%d in compact", i+10)
		}
	}
}

func TestDynArrMultigraph(t *testing.T) {
	s := NewDynArr(2, 8)
	s.Insert(0, 1, 1)
	s.Insert(0, 1, 2)
	s.Insert(0, 1, 3)
	if s.Degree(0) != 3 {
		t.Fatalf("degree = %d, want 3 (multigraph)", s.Degree(0))
	}
	s.Delete(0, 1)
	if s.Degree(0) != 2 || !s.Has(0, 1) {
		t.Fatal("delete should remove exactly one tuple")
	}
}

func TestDynArrResizeGrowth(t *testing.T) {
	s := NewDynArrInitial(2, 1, 4)
	const k = 1000
	for i := uint32(0); i < k; i++ {
		s.Insert(0, i, i)
	}
	if s.Degree(0) != k {
		t.Fatalf("degree = %d, want %d", s.Degree(0), k)
	}
	count := 0
	s.Neighbors(0, func(v edge.ID, _ uint32) bool { count++; return true })
	if count != k {
		t.Fatalf("iterated %d, want %d", count, k)
	}
}

func TestDynArrNoResize(t *testing.T) {
	degrees := []int{3, 0, 2}
	s := NewDynArrNoResize(degrees)
	if s.Name() != "dyn-arr-nr" {
		t.Fatalf("name = %q", s.Name())
	}
	s.Insert(0, 1, 0)
	s.Insert(0, 2, 0)
	s.Insert(0, 3, 0)
	s.Insert(2, 0, 0)
	s.Insert(2, 1, 0)
	if s.Degree(0) != 3 || s.Degree(2) != 2 {
		t.Fatal("degrees wrong")
	}
}

func TestDynArrNoResizeOverflowPanics(t *testing.T) {
	s := NewDynArrNoResize([]int{1})
	s.Insert(0, 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on Dyn-arr-nr overflow")
		}
	}()
	s.Insert(0, 2, 0)
	s.Insert(0, 3, 0) // capacity is rounded to a size class; keep pushing
	s.Insert(0, 4, 0)
}

func TestDynArrNeighborsEarlyStop(t *testing.T) {
	s := NewDynArr(2, 8)
	for i := uint32(0); i < 10; i++ {
		s.Insert(0, i, 0)
	}
	count := 0
	s.Neighbors(0, func(v edge.ID, _ uint32) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop visited %d, want 3", count)
	}
}

func TestDynArrTimestampsPreserved(t *testing.T) {
	s := NewDynArr(2, 8)
	s.Insert(0, 5, 42)
	s.Insert(0, 6, 43)
	got := map[edge.ID]uint32{}
	s.Neighbors(0, func(v edge.ID, ts uint32) bool {
		got[v] = ts
		return true
	})
	if got[5] != 42 || got[6] != 43 {
		t.Fatalf("timestamps lost: %v", got)
	}
}

func TestDynArrConcurrentInserts(t *testing.T) {
	const n = 64
	const perWorker = 2000
	const workers = 8
	s := NewDynArr(n, workers*perWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Hammer a small vertex set to force contention.
				s.Insert(edge.ID(i%n), edge.ID(w), uint32(i))
			}
		}(w)
	}
	wg.Wait()
	if s.NumEdges() != workers*perWorker {
		t.Fatalf("m = %d, want %d", s.NumEdges(), workers*perWorker)
	}
	total := 0
	for u := 0; u < n; u++ {
		total += s.Degree(edge.ID(u))
	}
	if total != workers*perWorker {
		t.Fatalf("sum of degrees = %d, want %d", total, workers*perWorker)
	}
}

func TestDynArrConcurrentMixed(t *testing.T) {
	const n = 32
	s := NewDynArr(n, 4096)
	// Preload.
	for u := uint32(0); u < n; u++ {
		for v := uint32(0); v < 16; v++ {
			s.Insert(u, v, 0)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				u := edge.ID(i % n)
				if w%2 == 0 {
					s.Insert(u, edge.ID(16+w), uint32(i))
				} else {
					s.Delete(u, edge.ID(i%16))
				}
				s.Degree(u)
				s.Has(u, 0)
			}
		}(w)
	}
	wg.Wait()
}

func TestDynArrArenaStats(t *testing.T) {
	s := NewDynArrInitial(4, 2, 8)
	for i := uint32(0); i < 64; i++ {
		s.Insert(0, i, 0)
	}
	st := s.ArenaStats()
	if st.EntriesAllocated == 0 {
		t.Fatal("expected arena allocations")
	}
	if st.EntriesRecycled == 0 {
		t.Fatal("expected recycled blocks from doubling resizes")
	}
}
