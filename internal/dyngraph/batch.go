package dyngraph

import (
	"snapdyn/internal/edge"
	"snapdyn/internal/par"
	"snapdyn/internal/psort"
)

// Batched decorates any Store with the paper's batched update strategy:
// "order the tuples by the vertex identifier and then process all the
// updates corresponding to each vertex at once." The semi-sort time is the
// strategy's lower bound (Figure 3 reports it as the batched upper bound
// on MUPS).
type Batched struct {
	Store
}

var _ Store = (*Batched)(nil)

// NewBatched wraps base with semi-sorted batch application.
func NewBatched(base Store) *Batched { return &Batched{Store: base} }

// Name implements Store.
func (s *Batched) Name() string { return "batched(" + s.Store.Name() + ")" }

// ApplyBatch implements Store: semi-sort by source vertex, then apply
// each vertex's run of updates by a single worker.
func (s *Batched) ApplyBatch(workers int, batch []edge.Update) {
	if len(batch) == 0 {
		return
	}
	keys := make([]uint32, len(batch))
	for i := range batch {
		keys[i] = batch[i].U
	}
	perm := psort.Order(workers, keys)
	bounds := groupBounds(keys, perm)
	par.ForDynamic(workers, len(bounds)-1, 8, func(glo, ghi int) {
		for g := glo; g < ghi; g++ {
			for i := bounds[g]; i < bounds[g+1]; i++ {
				up := &batch[perm[i]]
				if up.Op == edge.Insert {
					s.Store.Insert(up.U, up.V, up.T)
				} else {
					s.Store.DeleteTuple(up.U, up.V, up.T)
				}
			}
		}
	})
}

// SemiSort groups a batch by source vertex and returns the permutation
// and group bounds; exposed so the harness can time the semi-sort alone
// (the paper's batched upper bound).
func SemiSort(workers int, batch []edge.Update) (perm []uint32, bounds []int) {
	keys := make([]uint32, len(batch))
	for i := range batch {
		keys[i] = batch[i].U
	}
	perm = psort.Order(workers, keys)
	return perm, groupBounds(keys, perm)
}
