package dyngraph

import (
	"sync"
	"testing"

	"snapdyn/internal/edge"
	"snapdyn/internal/xrand"
)

func TestLockFreeBasic(t *testing.T) {
	s := NewLockFreeArr([]int{4, 2, 0})
	if s.Name() != "lockfree-arr" || s.NumVertices() != 3 {
		t.Fatal("metadata wrong")
	}
	s.Insert(0, 1, 10)
	s.Insert(0, 2, 20)
	if s.Degree(0) != 2 || !s.Has(0, 1) || s.Has(0, 3) {
		t.Fatal("basic ops wrong")
	}
	if !s.Delete(0, 1) || s.Has(0, 1) || s.Degree(0) != 1 {
		t.Fatal("delete wrong")
	}
	if s.Delete(0, 1) {
		t.Fatal("double delete succeeded")
	}
	if s.NumEdges() != 1 {
		t.Fatalf("m = %d", s.NumEdges())
	}
}

func TestLockFreeOverflowPanics(t *testing.T) {
	s := NewLockFreeArr([]int{1})
	s.Insert(0, 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected overflow panic")
		}
	}()
	// Capacity rounds to a size class, so keep inserting.
	for i := uint32(0); i < 8; i++ {
		s.Insert(0, 10+i, 0)
	}
}

func TestLockFreeDeleteTupleExact(t *testing.T) {
	s := NewLockFreeArr([]int{4})
	s.Insert(0, 1, 10)
	s.Insert(0, 1, 20)
	if !s.DeleteTuple(0, 1, 20) {
		t.Fatal("exact delete failed")
	}
	var labels []uint32
	s.Neighbors(0, func(_ edge.ID, ts uint32) bool {
		labels = append(labels, ts)
		return true
	})
	if len(labels) != 1 || labels[0] != 10 {
		t.Fatalf("surviving labels = %v", labels)
	}
	// Stale label falls back to endpoint match.
	if !s.DeleteTuple(0, 1, 99) {
		t.Fatal("fallback failed")
	}
	if s.Degree(0) != 0 {
		t.Fatal("degree wrong")
	}
}

func TestLockFreeConcurrentInserts(t *testing.T) {
	const n = 16
	const workers = 8
	const perWorker = 1000
	caps := make([]int, n)
	for i := range caps {
		caps[i] = workers * perWorker // worst case all to one vertex
	}
	s := NewLockFreeArr(caps)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				s.Insert(edge.ID(i%n), edge.ID(w*perWorker+i), uint32(i))
			}
		}(w)
	}
	wg.Wait()
	if s.NumEdges() != workers*perWorker {
		t.Fatalf("m = %d", s.NumEdges())
	}
	total := 0
	for u := 0; u < n; u++ {
		count := 0
		s.Neighbors(edge.ID(u), func(edge.ID, uint32) bool { count++; return true })
		if count != s.Degree(edge.ID(u)) {
			t.Fatalf("vertex %d: iterated %d, degree %d", u, count, s.Degree(edge.ID(u)))
		}
		total += count
	}
	if total != workers*perWorker {
		t.Fatalf("total = %d", total)
	}
}

func TestLockFreeConcurrentReadersAndWriters(t *testing.T) {
	const n = 8
	caps := make([]int, n)
	for i := range caps {
		caps[i] = 1 << 14
	}
	s := NewLockFreeArr(caps)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Readers run continuously while writers insert and delete.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for u := 0; u < n; u++ {
					s.Neighbors(edge.ID(u), func(v edge.ID, _ uint32) bool {
						if v == tombstone {
							t.Error("tombstone leaked to reader")
							return false
						}
						return true
					})
					s.Degree(edge.ID(u))
				}
			}
		}(r)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := xrand.New(uint64(w))
			for i := 0; i < 2000; i++ {
				u := edge.ID(r.Uint32n(n))
				if r.Float64() < 0.7 {
					s.Insert(u, r.Uint32n(100), uint32(i))
				} else {
					s.Delete(u, r.Uint32n(100))
				}
			}
		}(w)
	}
	// Wait for writers (the last 4 goroutines) by counting separately.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// Give writers time to finish, then stop readers.
	for i := 0; i < 4*2000; i++ {
		select {
		case <-done:
			i = 4 * 2000
		default:
		}
	}
	close(stop)
	<-done
	var total int64
	for u := 0; u < n; u++ {
		total += int64(s.Degree(edge.ID(u)))
	}
	if total != s.NumEdges() {
		t.Fatalf("degree sum %d != live %d", total, s.NumEdges())
	}
}

func TestLockFreeConcurrentDeleteOnce(t *testing.T) {
	// Many goroutines race to delete the same tuples: each tuple must be
	// deleted exactly once in total.
	const dup = 100
	s := NewLockFreeArr([]int{dup})
	for i := 0; i < dup; i++ {
		s.Insert(0, 7, uint32(i))
	}
	var wg sync.WaitGroup
	var success int64
	var mu sync.Mutex
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := int64(0)
			for i := 0; i < dup; i++ {
				if s.Delete(0, 7) {
					local++
				}
			}
			mu.Lock()
			success += local
			mu.Unlock()
		}()
	}
	wg.Wait()
	if success != dup {
		t.Fatalf("deleted %d tuples, want exactly %d", success, dup)
	}
	if s.Degree(0) != 0 || s.NumEdges() != 0 {
		t.Fatal("state not empty")
	}
}

func TestLockFreeMatchesOracle(t *testing.T) {
	const n = 24
	caps := make([]int, n)
	for i := range caps {
		caps[i] = 4096
	}
	s := NewLockFreeArr(caps)
	o := NewOracle(n)
	r := xrand.New(77)
	ups := randomUpdates(r, n, 3000, 0.3)
	for _, up := range ups {
		if up.Op == edge.Insert {
			s.Insert(up.U, up.V, up.T)
			o.Insert(up.U, up.V, up.T)
		} else {
			gs := s.Delete(up.U, up.V)
			if gs != o.Delete(up.U, up.V) {
				t.Fatal("delete results diverged")
			}
		}
	}
	stateMatches(t, s, o)
}
