package dyngraph

import (
	"sync/atomic"

	"snapdyn/internal/edge"
	"snapdyn/internal/par"
	"snapdyn/internal/psort"
)

// defaultTreapShards bounds lock contention for treap stores: operations
// on vertices in different shards proceed in parallel.
const defaultTreapShards = 512

// TreapStore represents every adjacency list as a randomized treap
// (Seidel & Aragon), the paper's choice of self-balancing structure for
// deletion-heavy workloads: search, insert and delete are all
// average-case O(log d). The memory footprint is ~3x Dyn-arr's 8-byte
// entries (24-byte nodes), matching the paper's reported 2-4x.
type TreapStore struct {
	name  string
	pool  *treapPool
	roots []uint32
	deg   []uint32 // live tuple count per vertex
	live  atomic.Int64
}

var _ Store = (*TreapStore)(nil)

// NewTreapStore creates a treap store over n vertices.
func NewTreapStore(n int, seed uint64) *TreapStore {
	roots := make([]uint32, n)
	for i := range roots {
		roots[i] = nilNode
	}
	return &TreapStore{
		name:  "treaps",
		pool:  newTreapPool(defaultTreapShards, seed),
		roots: roots,
		deg:   make([]uint32, n),
	}
}

// Name implements Store.
func (s *TreapStore) Name() string { return s.name }

// NumVertices implements Store.
func (s *TreapStore) NumVertices() int { return len(s.roots) }

// NumEdges implements Store.
func (s *TreapStore) NumEdges() int64 { return s.live.Load() }

// Insert implements Store. Note the coarser lock granularity compared to
// Dyn-arr: the treap may rebalance at every step, so the whole operation
// runs inside the shard lock — the paper's "granularity of work inside a
// lock is significantly higher" observation.
func (s *TreapStore) Insert(u, v edge.ID, t uint32) {
	sh := s.pool.shard(u)
	sh.mu.Lock()
	s.roots[u] = sh.insert(s.roots[u], v, t)
	s.deg[u]++
	sh.mu.Unlock()
	s.live.Add(1)
}

// Delete implements Store.
func (s *TreapStore) Delete(u, v edge.ID) bool {
	sh := s.pool.shard(u)
	sh.mu.Lock()
	root, ok := sh.deleteKey(s.roots[u], v)
	s.roots[u] = root
	if ok {
		s.deg[u]--
	}
	sh.mu.Unlock()
	if ok {
		s.live.Add(-1)
	}
	return ok
}

// DeleteTuple implements Store. Treaps key tuples by neighbor id, so the
// exact tuple is located in O(log d) regardless of the time label — the
// structural advantage Figure 5 measures.
func (s *TreapStore) DeleteTuple(u, v edge.ID, _ uint32) bool {
	return s.Delete(u, v)
}

// Degree implements Store.
func (s *TreapStore) Degree(u edge.ID) int {
	sh := s.pool.shard(u)
	sh.mu.Lock()
	d := int(s.deg[u])
	sh.mu.Unlock()
	return d
}

// Has implements Store.
func (s *TreapStore) Has(u, v edge.ID) bool {
	sh := s.pool.shard(u)
	sh.mu.Lock()
	ok := sh.find(s.roots[u], v) != nilNode
	sh.mu.Unlock()
	return ok
}

// Neighbors implements Store. Tuples are visited in increasing neighbor
// order, once per multiplicity; duplicates share the most recent time
// label (see package comment).
func (s *TreapStore) Neighbors(u edge.ID, fn func(v edge.ID, t uint32) bool) {
	sh := s.pool.shard(u)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.walk(s.roots[u], func(key, ts, cnt uint32) bool {
		for i := uint32(0); i < cnt; i++ {
			if !fn(key, ts) {
				return false
			}
		}
		return true
	})
}

// ApplyBatch implements Store using the semi-sort strategy: the batch is
// grouped by source vertex in parallel, then each vertex's updates are
// applied by a single worker in one locked pass. Randomly shuffled
// per-update application "might not be as effective as in the case of
// Dyn-arr" (coarse locks), so batching is the treap's preferred path.
func (s *TreapStore) ApplyBatch(workers int, batch []edge.Update) {
	if len(batch) < 2048 {
		applyConcurrent(s, workers, batch)
		return
	}
	keys := make([]uint32, len(batch))
	for i := range batch {
		keys[i] = batch[i].U
	}
	perm := psort.Order(workers, keys)
	// Group boundaries over the sorted permutation.
	bounds := groupBounds(keys, perm)
	par.ForDynamic(workers, len(bounds)-1, 8, func(glo, ghi int) {
		for g := glo; g < ghi; g++ {
			lo, hi := bounds[g], bounds[g+1]
			u := batch[perm[lo]].U
			sh := s.pool.shard(u)
			sh.mu.Lock()
			root := s.roots[u]
			var delta int64
			for i := lo; i < hi; i++ {
				up := batch[perm[i]]
				if up.Op == edge.Insert {
					root = sh.insert(root, up.V, up.T)
					s.deg[u]++
					delta++
				} else if nr, ok := sh.deleteKey(root, up.V); ok {
					root = nr
					s.deg[u]--
					delta--
				}
			}
			s.roots[u] = root
			sh.mu.Unlock()
			s.live.Add(delta)
		}
	})
}

// groupBounds returns indices delimiting runs of equal keys[perm[i]]:
// bounds[g]..bounds[g+1] is group g.
func groupBounds(keys []uint32, perm []uint32) []int {
	bounds := []int{0}
	for i := 1; i < len(perm); i++ {
		if keys[perm[i]] != keys[perm[i-1]] {
			bounds = append(bounds, i)
		}
	}
	return append(bounds, len(perm))
}

// IntersectKeys returns the neighbor ids adjacent to both a and b, in
// increasing order — the treap set-intersection kernel.
func (s *TreapStore) IntersectKeys(a, b edge.ID) []edge.ID {
	bs := neighborSet(s, b)
	var out []edge.ID
	prev := int64(-1)
	s.Neighbors(a, func(v edge.ID, _ uint32) bool {
		if int64(v) != prev && bs[v] {
			out = append(out, v)
		}
		prev = int64(v)
		return true
	})
	return out
}

// DifferenceKeys returns neighbor ids adjacent to a but not to b, in
// increasing order.
func (s *TreapStore) DifferenceKeys(a, b edge.ID) []edge.ID {
	bs := neighborSet(s, b)
	var out []edge.ID
	prev := int64(-1)
	s.Neighbors(a, func(v edge.ID, _ uint32) bool {
		if int64(v) != prev && !bs[v] {
			out = append(out, v)
		}
		prev = int64(v)
		return true
	})
	return out
}

func neighborSet(s Store, u edge.ID) map[edge.ID]bool {
	set := make(map[edge.ID]bool)
	s.Neighbors(u, func(v edge.ID, _ uint32) bool {
		set[v] = true
		return true
	})
	return set
}

// CheckInvariants verifies treap structural invariants (BST key order,
// heap priority order, positive multiplicities) for every vertex.
func (s *TreapStore) CheckInvariants() bool {
	for u := range s.roots {
		sh := s.pool.shard(edge.ID(u))
		sh.mu.Lock()
		ok := sh.checkInvariants(s.roots[u], -1, 1<<32)
		sh.mu.Unlock()
		if !ok {
			return false
		}
	}
	return true
}
