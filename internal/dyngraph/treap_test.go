package dyngraph

import (
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"snapdyn/internal/edge"
	"snapdyn/internal/xrand"
)

func TestTreapStoreBasic(t *testing.T) {
	s := NewTreapStore(8, 1)
	s.Insert(0, 3, 10)
	s.Insert(0, 1, 11)
	s.Insert(0, 2, 12)
	if s.Degree(0) != 3 {
		t.Fatalf("degree = %d", s.Degree(0))
	}
	var order []edge.ID
	s.Neighbors(0, func(v edge.ID, _ uint32) bool {
		order = append(order, v)
		return true
	})
	if !sort.SliceIsSorted(order, func(i, j int) bool { return order[i] < order[j] }) {
		t.Fatalf("treap iteration not in key order: %v", order)
	}
	if !s.Has(0, 2) || s.Has(0, 9) {
		t.Fatal("Has wrong")
	}
}

func TestTreapStoreDelete(t *testing.T) {
	s := NewTreapStore(4, 2)
	for v := uint32(0); v < 100; v++ {
		s.Insert(1, v, v)
	}
	for v := uint32(0); v < 100; v += 2 {
		if !s.Delete(1, v) {
			t.Fatalf("delete 1->%d failed", v)
		}
	}
	if s.Degree(1) != 50 {
		t.Fatalf("degree = %d, want 50", s.Degree(1))
	}
	for v := uint32(0); v < 100; v++ {
		want := v%2 == 1
		if s.Has(1, v) != want {
			t.Fatalf("Has(1,%d) = %v, want %v", v, !want, want)
		}
	}
	if !s.CheckInvariants() {
		t.Fatal("treap invariants violated after deletes")
	}
}

func TestTreapMultiplicity(t *testing.T) {
	s := NewTreapStore(2, 3)
	s.Insert(0, 7, 1)
	s.Insert(0, 7, 2)
	s.Insert(0, 7, 3)
	if s.Degree(0) != 3 {
		t.Fatalf("degree = %d, want 3", s.Degree(0))
	}
	count := 0
	s.Neighbors(0, func(v edge.ID, ts uint32) bool {
		if v != 7 || ts != 3 {
			t.Fatalf("got (%d,%d), want (7,3)", v, ts)
		}
		count++
		return true
	})
	if count != 3 {
		t.Fatalf("iterated %d tuples, want 3", count)
	}
	s.Delete(0, 7)
	if s.Degree(0) != 2 || !s.Has(0, 7) {
		t.Fatal("multiplicity delete wrong")
	}
	s.Delete(0, 7)
	s.Delete(0, 7)
	if s.Degree(0) != 0 || s.Has(0, 7) {
		t.Fatal("final delete wrong")
	}
	if s.Delete(0, 7) {
		t.Fatal("delete on empty succeeded")
	}
}

func TestTreapInvariantsProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		s := NewTreapStore(4, seed)
		live := map[uint32]int{}
		for i := 0; i < 500; i++ {
			v := r.Uint32n(64)
			if r.Float64() < 0.6 {
				s.Insert(0, v, uint32(i))
				live[v]++
			} else if s.Delete(0, v) {
				live[v]--
				if live[v] == 0 {
					delete(live, v)
				}
			}
		}
		if !s.CheckInvariants() {
			return false
		}
		want := 0
		for _, c := range live {
			want += c
		}
		return s.Degree(0) == want
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTreapEarlyStop(t *testing.T) {
	s := NewTreapStore(2, 5)
	for v := uint32(0); v < 50; v++ {
		s.Insert(0, v, 0)
	}
	count := 0
	s.Neighbors(0, func(v edge.ID, _ uint32) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestTreapSetOps(t *testing.T) {
	s := NewTreapStore(4, 7)
	for _, v := range []uint32{1, 3, 5, 7, 9} {
		s.Insert(0, v, 0)
	}
	for _, v := range []uint32{3, 4, 5, 6} {
		s.Insert(1, v, 0)
	}
	inter := s.IntersectKeys(0, 1)
	if len(inter) != 2 || inter[0] != 3 || inter[1] != 5 {
		t.Fatalf("intersection = %v, want [3 5]", inter)
	}
	diff := s.DifferenceKeys(0, 1)
	if len(diff) != 3 || diff[0] != 1 || diff[1] != 7 || diff[2] != 9 {
		t.Fatalf("difference = %v, want [1 7 9]", diff)
	}
}

func TestTreapUnionKernel(t *testing.T) {
	// Exercise the in-shard union directly: build two treaps in the same
	// shard and union them.
	p := newTreapPool(1, 42)
	sh := &p.shards[0]
	a, b := nilNode, nilNode
	for _, k := range []uint32{1, 5, 9, 13} {
		a = sh.insert(a, k, k)
	}
	for _, k := range []uint32{5, 6, 13, 20} {
		b = sh.insert(b, k, 100+k)
	}
	u := sh.union(a, b)
	var keys []uint32
	var counts []uint32
	sh.walk(u, func(key, ts, cnt uint32) bool {
		keys = append(keys, key)
		counts = append(counts, cnt)
		return true
	})
	wantKeys := []uint32{1, 5, 6, 9, 13, 20}
	wantCnt := []uint32{1, 2, 1, 1, 2, 1}
	if len(keys) != len(wantKeys) {
		t.Fatalf("union keys = %v, want %v", keys, wantKeys)
	}
	for i := range wantKeys {
		if keys[i] != wantKeys[i] || counts[i] != wantCnt[i] {
			t.Fatalf("union entry %d = (%d,%d), want (%d,%d)", i, keys[i], counts[i], wantKeys[i], wantCnt[i])
		}
	}
	if !sh.checkInvariants(u, -1, 1<<32) {
		t.Fatal("union violated invariants")
	}
}

func TestTreapSplitMergeProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64, pivot uint32) bool {
		pivot %= 128
		r := xrand.New(seed)
		p := newTreapPool(1, seed)
		sh := &p.shards[0]
		root := nilNode
		present := map[uint32]bool{}
		for i := 0; i < 100; i++ {
			k := r.Uint32n(128)
			if !present[k] {
				root = sh.insert(root, k, 0)
				present[k] = true
			}
		}
		lt, ge := sh.split(root, pivot)
		okL := sh.walk(lt, func(key, _, _ uint32) bool { return key < pivot })
		okG := sh.walk(ge, func(key, _, _ uint32) bool { return key >= pivot })
		if !okL || !okG {
			return false
		}
		merged := sh.merge(lt, ge)
		count := 0
		sh.walk(merged, func(_, _, _ uint32) bool { count++; return true })
		return count == len(present) && sh.checkInvariants(merged, -1, 1<<32)
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTreapConcurrent(t *testing.T) {
	const n = 128
	s := NewTreapStore(n, 11)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := xrand.New(uint64(w))
			for i := 0; i < 3000; i++ {
				u := edge.ID(r.Uint32n(n))
				v := edge.ID(r.Uint32n(256))
				if r.Float64() < 0.7 {
					s.Insert(u, v, uint32(i))
				} else {
					s.Delete(u, v)
				}
			}
		}(w)
	}
	wg.Wait()
	if !s.CheckInvariants() {
		t.Fatal("invariants violated under concurrency")
	}
	var total int64
	for u := 0; u < n; u++ {
		total += int64(s.Degree(edge.ID(u)))
	}
	if total != s.NumEdges() {
		t.Fatalf("degree sum %d != live count %d", total, s.NumEdges())
	}
}

func TestTreapApplyBatchLarge(t *testing.T) {
	const n = 256
	s := NewTreapStore(n, 13)
	r := xrand.New(99)
	batch := make([]edge.Update, 5000)
	for i := range batch {
		batch[i] = edge.Update{
			Edge: edge.Edge{U: r.Uint32n(n), V: r.Uint32n(n), T: uint32(i)},
			Op:   edge.Insert,
		}
	}
	s.ApplyBatch(4, batch)
	if s.NumEdges() != int64(len(batch)) {
		t.Fatalf("m = %d, want %d", s.NumEdges(), len(batch))
	}
	if !s.CheckInvariants() {
		t.Fatal("invariants violated after batch")
	}
	// Now delete everything through a batch.
	for i := range batch {
		batch[i].Op = edge.Delete
	}
	s.ApplyBatch(4, batch)
	if s.NumEdges() != 0 {
		t.Fatalf("m = %d after full deletion, want 0", s.NumEdges())
	}
}
