package dyngraph

import (
	"sync/atomic"

	"snapdyn/internal/arena"
	"snapdyn/internal/edge"
	"snapdyn/internal/par"
	"snapdyn/internal/psort"
)

// DefaultDegreeThresh is the paper's recommended degree-thresh for
// synthetic R-MAT small-world graphs: adjacency lists up to this size use
// arrays, larger ones migrate to treaps.
const DefaultDegreeThresh = 32

// Hybrid is the paper's Hybrid-arr-treap representation: dynamic arrays
// for the (majority) low-degree vertices, treaps for high-degree ones.
// Inserts are array-fast for most vertices; deletes on the heavy vertices
// — where Dyn-arr pays O(d) scans — take logarithmic time. A vertex's
// adjacency migrates from array to treap when its live degree crosses
// degree-thresh.
//
// Synchronization: every operation on vertex u runs under u's treap-pool
// shard mutex, which also makes array-to-treap migration atomic. With
// hundreds of shards, cross-vertex contention is negligible; per-vertex
// contention (the phenomenon the paper studies) behaves as with
// per-vertex locks.
type Hybrid struct {
	name   string
	thresh uint32
	isTr   []bool // true = treap mode; guarded by the owning shard mutex
	arr    arrCore
	pool   *treapPool
	roots  []uint32
	deg    []uint32 // live degree for treap-mode vertices
	live   atomic.Int64
}

var _ Store = (*Hybrid)(nil)

// NewHybrid creates a hybrid store over n vertices with the given degree
// threshold (0 uses DefaultDegreeThresh), expecting about expectedEdges
// insertions.
func NewHybrid(n, expectedEdges, thresh int, seed uint64) *Hybrid {
	if thresh <= 0 {
		thresh = DefaultDegreeThresh
	}
	roots := make([]uint32, n)
	for i := range roots {
		roots[i] = nilNode
	}
	return &Hybrid{
		name:   "hybrid-arr-treap",
		thresh: uint32(thresh),
		isTr:   make([]bool, n),
		arr:    newArrCore(n, arena.ClassSize(max(2, 2*expectedEdges/max(1, n))), expectedEdges),
		pool:   newTreapPool(defaultTreapShards, seed),
		roots:  roots,
		deg:    make([]uint32, n),
	}
}

// DegreeThresh returns the migration threshold.
func (s *Hybrid) DegreeThresh() int { return int(s.thresh) }

// Name implements Store.
func (s *Hybrid) Name() string { return s.name }

// NumVertices implements Store.
func (s *Hybrid) NumVertices() int { return len(s.isTr) }

// NumEdges implements Store.
func (s *Hybrid) NumEdges() int64 { return s.live.Load() }

// IsTreap reports whether u currently uses the treap representation.
func (s *Hybrid) IsTreap(u edge.ID) bool {
	sh := s.pool.shard(u)
	sh.mu.Lock()
	t := s.isTr[u]
	sh.mu.Unlock()
	return t
}

// Insert implements Store.
func (s *Hybrid) Insert(u, v edge.ID, t uint32) {
	sh := s.pool.shard(u)
	sh.mu.Lock()
	if s.isTr[u] {
		s.roots[u] = sh.insert(s.roots[u], v, t)
		s.deg[u]++
	} else {
		s.arr.insert(u, v, t)
		if s.arr.alive[u] > s.thresh {
			s.migrate(sh, u)
		}
	}
	sh.mu.Unlock()
	s.live.Add(1)
}

// migrate converts u's adjacency from array to treap form; called with
// u's shard mutex held.
func (s *Hybrid) migrate(sh *treapShard, u edge.ID) {
	root := s.roots[u]
	cnt := uint32(0)
	s.arr.iterate(u, func(v edge.ID, t uint32) bool {
		root = sh.insert(root, v, t)
		cnt++
		return true
	})
	s.roots[u] = root
	s.deg[u] = cnt
	s.arr.reset(u)
	s.isTr[u] = true
}

// Delete implements Store.
func (s *Hybrid) Delete(u, v edge.ID) bool {
	sh := s.pool.shard(u)
	sh.mu.Lock()
	var ok bool
	if s.isTr[u] {
		var root uint32
		root, ok = sh.deleteKey(s.roots[u], v)
		s.roots[u] = root
		if ok {
			s.deg[u]--
		}
	} else {
		ok = s.arr.delete(u, v)
	}
	sh.mu.Unlock()
	if ok {
		s.live.Add(-1)
	}
	return ok
}

// DeleteTuple implements Store: an exact-tuple scan in array mode, a
// logarithmic keyed removal in treap mode.
func (s *Hybrid) DeleteTuple(u, v edge.ID, t uint32) bool {
	sh := s.pool.shard(u)
	sh.mu.Lock()
	var ok bool
	if s.isTr[u] {
		var root uint32
		root, ok = sh.deleteKey(s.roots[u], v)
		s.roots[u] = root
		if ok {
			s.deg[u]--
		}
	} else {
		ok = s.arr.deleteTuple(u, v, t)
	}
	sh.mu.Unlock()
	if ok {
		s.live.Add(-1)
	}
	return ok
}

// Degree implements Store.
func (s *Hybrid) Degree(u edge.ID) int {
	sh := s.pool.shard(u)
	sh.mu.Lock()
	var d int
	if s.isTr[u] {
		d = int(s.deg[u])
	} else {
		d = int(s.arr.alive[u])
	}
	sh.mu.Unlock()
	return d
}

// Has implements Store.
func (s *Hybrid) Has(u, v edge.ID) bool {
	sh := s.pool.shard(u)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s.isTr[u] {
		return sh.find(s.roots[u], v) != nilNode
	}
	found := false
	s.arr.iterate(u, func(w edge.ID, _ uint32) bool {
		if w == v {
			found = true
			return false
		}
		return true
	})
	return found
}

// Neighbors implements Store.
func (s *Hybrid) Neighbors(u edge.ID, fn func(v edge.ID, t uint32) bool) {
	sh := s.pool.shard(u)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s.isTr[u] {
		sh.walk(s.roots[u], func(key, ts, cnt uint32) bool {
			for i := uint32(0); i < cnt; i++ {
				if !fn(key, ts) {
					return false
				}
			}
			return true
		})
		return
	}
	s.arr.iterate(u, fn)
}

// ApplyBatch implements Store. Like the treap store, large batches are
// semi-sorted by source vertex so each vertex's updates apply in one
// locked pass.
func (s *Hybrid) ApplyBatch(workers int, batch []edge.Update) {
	if len(batch) < 2048 {
		applyConcurrent(s, workers, batch)
		return
	}
	keys := make([]uint32, len(batch))
	for i := range batch {
		keys[i] = batch[i].U
	}
	perm := psort.Order(workers, keys)
	bounds := groupBounds(keys, perm)
	par.ForDynamic(workers, len(bounds)-1, 8, func(glo, ghi int) {
		for g := glo; g < ghi; g++ {
			lo, hi := bounds[g], bounds[g+1]
			u := batch[perm[lo]].U
			sh := s.pool.shard(u)
			sh.mu.Lock()
			var delta int64
			for i := lo; i < hi; i++ {
				up := &batch[perm[i]]
				if up.Op == edge.Insert {
					if s.isTr[u] {
						s.roots[u] = sh.insert(s.roots[u], up.V, up.T)
						s.deg[u]++
					} else {
						s.arr.insert(u, up.V, up.T)
						if s.arr.alive[u] > s.thresh {
							s.migrate(sh, u)
						}
					}
					delta++
					continue
				}
				var ok bool
				if s.isTr[u] {
					var root uint32
					root, ok = sh.deleteKey(s.roots[u], up.V)
					s.roots[u] = root
					if ok {
						s.deg[u]--
					}
				} else {
					ok = s.arr.deleteTuple(u, up.V, up.T)
				}
				if ok {
					delta--
				}
			}
			sh.mu.Unlock()
			s.live.Add(delta)
		}
	})
}

// TreapVertexCount returns how many vertices have migrated to treap mode,
// for stats and tests.
func (s *Hybrid) TreapVertexCount() int {
	c := 0
	for u := range s.isTr {
		sh := s.pool.shard(edge.ID(u))
		sh.mu.Lock()
		if s.isTr[u] {
			c++
		}
		sh.mu.Unlock()
	}
	return c
}
