package dyngraph

// Failure-injection tests: the documented semantics for malformed or
// adversarial operation sequences must hold in every representation —
// deletes of absent edges report false and change nothing, duplicate
// edges accumulate, self-loops are legal single arcs, and empty batches
// are no-ops.

import (
	"testing"

	"snapdyn/internal/edge"
	"snapdyn/internal/xrand"
)

func TestDeleteAbsentEverywhere(t *testing.T) {
	for _, s := range allStores(16, 64) {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			if s.Delete(0, 1) {
				t.Fatal("delete on empty graph succeeded")
			}
			s.Insert(0, 2, 1)
			if s.Delete(0, 1) {
				t.Fatal("delete of absent neighbor succeeded")
			}
			if s.Delete(1, 2) {
				t.Fatal("delete from wrong source succeeded")
			}
			if s.NumEdges() != 1 || s.Degree(0) != 1 {
				t.Fatal("failed deletes mutated state")
			}
		})
	}
}

func TestDeleteTupleFallback(t *testing.T) {
	for _, s := range allStores(8, 32) {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			s.Insert(0, 1, 42)
			// Wrong label: must still remove the single (0,1) tuple.
			if !s.DeleteTuple(0, 1, 99) {
				t.Fatal("labeled delete with stale label failed")
			}
			if s.Has(0, 1) {
				t.Fatal("tuple survived fallback delete")
			}
			if s.DeleteTuple(0, 1, 42) {
				t.Fatal("delete after removal succeeded")
			}
		})
	}
}

func TestDeleteTupleExactAmongDuplicates(t *testing.T) {
	// Array stores must tombstone the exact labeled tuple among
	// duplicates, not the first endpoint match.
	s := NewDynArr(4, 16)
	s.Insert(0, 1, 10)
	s.Insert(0, 1, 20)
	s.Insert(0, 1, 30)
	if !s.DeleteTuple(0, 1, 20) {
		t.Fatal("exact delete failed")
	}
	var labels []uint32
	s.Neighbors(0, func(_ edge.ID, ts uint32) bool {
		labels = append(labels, ts)
		return true
	})
	if len(labels) != 2 || labels[0] != 10 || labels[1] != 30 {
		t.Fatalf("surviving labels = %v, want [10 30]", labels)
	}
}

func TestSelfLoopsEverywhere(t *testing.T) {
	for _, s := range allStores(8, 32) {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			s.Insert(3, 3, 7)
			if !s.Has(3, 3) || s.Degree(3) != 1 {
				t.Fatal("self loop mishandled")
			}
			if !s.Delete(3, 3) || s.Has(3, 3) {
				t.Fatal("self loop delete mishandled")
			}
		})
	}
}

func TestEmptyBatchEverywhere(t *testing.T) {
	for _, s := range allStores(8, 32) {
		s.ApplyBatch(4, nil)
		s.ApplyBatch(4, []edge.Update{})
		if s.NumEdges() != 0 {
			t.Fatalf("%s: empty batch created edges", s.Name())
		}
	}
}

func TestDeleteHeavyBatchOverdraw(t *testing.T) {
	// A batch deleting the same edge more times than it exists must
	// settle at zero, not negative.
	for _, s := range allStores(8, 64) {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			for i := 0; i < 3; i++ {
				s.Insert(1, 2, uint32(i))
			}
			batch := make([]edge.Update, 10)
			for i := range batch {
				batch[i] = edge.Update{Edge: edge.Edge{U: 1, V: 2, T: uint32(i)}, Op: edge.Delete}
			}
			s.ApplyBatch(4, batch)
			if s.NumEdges() != 0 || s.Degree(1) != 0 || s.Has(1, 2) {
				t.Fatalf("overdraw left m=%d deg=%d", s.NumEdges(), s.Degree(1))
			}
		})
	}
}

func TestHybridChurnAroundThreshold(t *testing.T) {
	// Insert/delete churn exactly at the migration threshold must keep
	// counts exact (vertex migrates once, then deletes hit the treap).
	s := NewHybrid(4, 256, 8, 3)
	r := xrand.New(9)
	live := map[uint32]int{}
	total := 0
	for i := 0; i < 2000; i++ {
		v := r.Uint32n(12)
		if r.Float64() < 0.55 {
			s.Insert(0, v, uint32(i))
			live[v]++
			total++
		} else if s.Delete(0, v) {
			live[v]--
			total--
		}
	}
	want := 0
	for _, c := range live {
		want += c
	}
	if s.Degree(0) != want || int(s.NumEdges()) != total {
		t.Fatalf("churn: degree=%d want=%d, m=%d want=%d", s.Degree(0), want, s.NumEdges(), total)
	}
	for v, c := range live {
		if (c > 0) != s.Has(0, v) {
			t.Fatalf("churn: Has(0,%d) = %v with count %d", v, s.Has(0, v), c)
		}
	}
}

func TestVpartSingleOpsOutsideBatch(t *testing.T) {
	// Vpart's single-op path must still be usable (locked) even though
	// batches are its intended mode.
	s := NewVpart(8, 32)
	s.Insert(1, 2, 3)
	if !s.Has(1, 2) {
		t.Fatal("vpart single insert lost")
	}
	if !s.Delete(1, 2) {
		t.Fatal("vpart single delete failed")
	}
}

func TestEpartDeleteDuringBatch(t *testing.T) {
	// Mixed batch with deletes targeting a hot vertex: buffered inserts
	// and direct deletes must both apply.
	s := NewEpart(8, 256, 4)
	for v := uint32(0); v < 10; v++ {
		s.Insert(0, v, v)
	}
	batch := []edge.Update{
		{Edge: edge.Edge{U: 0, V: 100, T: 1}, Op: edge.Insert},
		{Edge: edge.Edge{U: 0, V: 5, T: 5}, Op: edge.Delete},
		{Edge: edge.Edge{U: 0, V: 101, T: 2}, Op: edge.Insert},
	}
	s.ApplyBatch(2, batch)
	if s.Has(0, 5) {
		t.Fatal("delete ignored")
	}
	if !s.Has(0, 100) || !s.Has(0, 101) {
		t.Fatal("buffered inserts lost")
	}
	if s.Degree(0) != 11 {
		t.Fatalf("degree = %d, want 11", s.Degree(0))
	}
}
