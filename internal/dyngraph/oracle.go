package dyngraph

import (
	"sync"
	"sync/atomic"

	"snapdyn/internal/edge"
)

// Oracle is a deliberately simple map-of-multisets reference
// implementation of Store used by tests to validate every optimized
// representation under random operation sequences. It is correct by
// construction and slow by design.
type Oracle struct {
	mu   sync.Mutex
	n    int
	adj  []map[edge.ID]int // neighbor -> multiplicity
	live atomic.Int64
}

var _ Store = (*Oracle)(nil)

// NewOracle creates an oracle over n vertices.
func NewOracle(n int) *Oracle {
	adj := make([]map[edge.ID]int, n)
	for i := range adj {
		adj[i] = make(map[edge.ID]int)
	}
	return &Oracle{n: n, adj: adj}
}

// Name implements Store.
func (o *Oracle) Name() string { return "oracle" }

// NumVertices implements Store.
func (o *Oracle) NumVertices() int { return o.n }

// NumEdges implements Store.
func (o *Oracle) NumEdges() int64 { return o.live.Load() }

// Insert implements Store.
func (o *Oracle) Insert(u, v edge.ID, t uint32) {
	o.mu.Lock()
	o.adj[u][v]++
	o.mu.Unlock()
	o.live.Add(1)
}

// Delete implements Store.
func (o *Oracle) Delete(u, v edge.ID) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.adj[u][v] == 0 {
		return false
	}
	o.adj[u][v]--
	if o.adj[u][v] == 0 {
		delete(o.adj[u], v)
	}
	o.live.Add(-1)
	return true
}

// DeleteTuple implements Store; the oracle tracks neighbor multisets
// only, so the time label is ignored.
func (o *Oracle) DeleteTuple(u, v edge.ID, _ uint32) bool {
	return o.Delete(u, v)
}

// Degree implements Store.
func (o *Oracle) Degree(u edge.ID) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	d := 0
	for _, c := range o.adj[u] {
		d += c
	}
	return d
}

// Has implements Store.
func (o *Oracle) Has(u, v edge.ID) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.adj[u][v] > 0
}

// Neighbors implements Store. Time labels are not tracked by the oracle
// and are reported as edge.NoTime.
func (o *Oracle) Neighbors(u edge.ID, fn func(v edge.ID, t uint32) bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for v, c := range o.adj[u] {
		for i := 0; i < c; i++ {
			if !fn(v, edge.NoTime) {
				return
			}
		}
	}
}

// ApplyBatch implements Store.
func (o *Oracle) ApplyBatch(workers int, batch []edge.Update) {
	applyConcurrent(o, workers, batch)
}

// NeighborCounts returns a copy of u's neighbor multiset for comparisons.
func (o *Oracle) NeighborCounts(u edge.ID) map[edge.ID]int {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make(map[edge.ID]int, len(o.adj[u]))
	for v, c := range o.adj[u] {
		out[v] = c
	}
	return out
}
