package dyngraph

import (
	"sync/atomic"

	"snapdyn/internal/arena"
	"snapdyn/internal/edge"
)

// arrCore is the unsynchronized resizable-adjacency-array engine shared
// by DynArr and Hybrid. Callers must hold the owning vertex's lock.
type arrCore struct {
	ar         *arena.Arena
	length     []uint32 // slots used, including tombstones
	alive      []uint32 // live tuples
	data       [][]uint64
	initialCap int
	noResize   bool
}

func newArrCore(n, initialCap, expectedEdges int) arrCore {
	return arrCore{
		ar:         arena.New(expectedEdges + expectedEdges/4),
		length:     make([]uint32, n),
		alive:      make([]uint32, n),
		data:       make([][]uint64, n),
		initialCap: initialCap,
	}
}

// insert appends the tuple u->v.
func (c *arrCore) insert(u, v edge.ID, t uint32) {
	l := c.length[u]
	d := c.data[u]
	if int(l) == len(d) {
		if c.noResize {
			panic("dyngraph: Dyn-arr-nr adjacency overflow (degrees underestimated)")
		}
		grow := c.initialCap
		if len(d) > 0 {
			grow = 2 * len(d)
		}
		nd := c.ar.Alloc(grow)
		copy(nd, d)
		c.data[u] = nd
		if d != nil {
			c.ar.Free(d)
		}
		d = nd
	}
	d[l] = pack(v, t)
	c.length[u] = l + 1
	c.alive[u]++
}

// delete tombstones one matching tuple, reporting success.
func (c *arrCore) delete(u, v edge.ID) bool {
	d := c.data[u][:c.length[u]]
	for i, e := range d {
		if uint32(e>>32) == v {
			d[i] = pack(tombstone, uint32(e))
			c.alive[u]--
			return true
		}
	}
	return false
}

// deleteTuple tombstones the exact (v, t) tuple, scanning the whole list
// to locate it; it falls back to any v-tuple when the labeled one is
// absent (or t is the wildcard edge.NoTime).
func (c *arrCore) deleteTuple(u, v edge.ID, t uint32) bool {
	if t == edge.NoTime {
		return c.delete(u, v)
	}
	d := c.data[u][:c.length[u]]
	fallback := -1
	want := pack(v, t)
	for i, e := range d {
		if e == want {
			d[i] = pack(tombstone, uint32(e))
			c.alive[u]--
			return true
		}
		if fallback < 0 && uint32(e>>32) == v {
			fallback = i
		}
	}
	if fallback >= 0 {
		d[fallback] = pack(tombstone, uint32(d[fallback]))
		c.alive[u]--
		return true
	}
	return false
}

// iterate visits live tuples until fn returns false.
func (c *arrCore) iterate(u edge.ID, fn func(v edge.ID, t uint32) bool) {
	d := c.data[u][:c.length[u]]
	for _, e := range d {
		if isTombstone(e) {
			continue
		}
		if !fn(unpack(e)) {
			return
		}
	}
}

// compact rewrites u's array without tombstones.
func (c *arrCore) compact(u edge.ID) {
	d := c.data[u][:c.length[u]]
	w := uint32(0)
	for _, e := range d {
		if !isTombstone(e) {
			d[w] = e
			w++
		}
	}
	c.length[u] = w
}

// reset empties u's adjacency, returning its block to the arena.
func (c *arrCore) reset(u edge.ID) {
	if d := c.data[u]; d != nil {
		c.ar.Free(d)
	}
	c.data[u] = nil
	c.length[u] = 0
	c.alive[u] = 0
}

// DynArr is the paper's Dyn-arr representation: one resizable adjacency
// array per vertex, backed by an arena allocator, doubling on overflow.
// Insertions append in O(1); deletions scan the array and tombstone the
// matching slot in place, which is cheap for low-degree vertices and O(d)
// for high-degree ones — the asymmetry Figure 5 quantifies.
type DynArr struct {
	name  string
	locks []spinLock
	core  arrCore
	live  atomic.Int64
}

var _ Store = (*DynArr)(nil)

// NewDynArr creates a Dyn-arr store over n vertices expecting about
// expectedEdges insertions in total. Each adjacency array starts at the
// paper's k·m/n entries with k = 2 (rounded to the allocator size class),
// and doubles on overflow. Arrays are allocated lazily on first insert.
func NewDynArr(n, expectedEdges int) *DynArr {
	ic := 2
	if n > 0 && expectedEdges > 0 {
		ic = max(2, 2*expectedEdges/n)
	}
	return newDynArr("dyn-arr", n, arena.ClassSize(ic), expectedEdges)
}

// NewDynArrInitial creates a Dyn-arr with an explicit initial adjacency
// array size (Figure 2 uses 16).
func NewDynArrInitial(n, initialCap, expectedEdges int) *DynArr {
	return newDynArr("dyn-arr", n, arena.ClassSize(max(1, initialCap)), expectedEdges)
}

// NewDynArrNoResize creates the Dyn-arr-nr variant: the exact out-degree
// of every vertex is known a priori, so adjacency arrays are sized once
// and never resized. It is the optimal-case baseline of Figures 1-3.
func NewDynArrNoResize(degrees []int) *DynArr {
	total := 0
	for _, d := range degrees {
		total += arena.ClassSize(max(1, d))
	}
	s := newDynArr("dyn-arr-nr", len(degrees), 0, total)
	s.core.noResize = true
	for u, d := range degrees {
		s.core.data[u] = s.core.ar.Alloc(max(1, d))
	}
	return s
}

func newDynArr(name string, n, initialCap, expectedEdges int) *DynArr {
	return &DynArr{
		name:  name,
		locks: make([]spinLock, n),
		core:  newArrCore(n, initialCap, expectedEdges),
	}
}

// Name implements Store.
func (s *DynArr) Name() string { return s.name }

// NumVertices implements Store.
func (s *DynArr) NumVertices() int { return len(s.core.data) }

// NumEdges implements Store.
func (s *DynArr) NumEdges() int64 { return s.live.Load() }

// Insert implements Store.
func (s *DynArr) Insert(u, v edge.ID, t uint32) {
	s.locks[u].lock()
	s.core.insert(u, v, t)
	s.locks[u].unlock()
	s.live.Add(1)
}

// Delete implements Store.
func (s *DynArr) Delete(u, v edge.ID) bool {
	s.locks[u].lock()
	ok := s.core.delete(u, v)
	s.locks[u].unlock()
	if ok {
		s.live.Add(-1)
	}
	return ok
}

// DeleteTuple implements Store.
func (s *DynArr) DeleteTuple(u, v edge.ID, t uint32) bool {
	s.locks[u].lock()
	ok := s.core.deleteTuple(u, v, t)
	s.locks[u].unlock()
	if ok {
		s.live.Add(-1)
	}
	return ok
}

// Degree implements Store.
func (s *DynArr) Degree(u edge.ID) int {
	s.locks[u].lock()
	d := int(s.core.alive[u])
	s.locks[u].unlock()
	return d
}

// Has implements Store.
func (s *DynArr) Has(u, v edge.ID) bool {
	found := false
	s.Neighbors(u, func(w edge.ID, _ uint32) bool {
		if w == v {
			found = true
			return false
		}
		return true
	})
	return found
}

// Neighbors implements Store.
func (s *DynArr) Neighbors(u edge.ID, fn func(v edge.ID, t uint32) bool) {
	s.locks[u].lock()
	defer s.locks[u].unlock()
	s.core.iterate(u, fn)
}

// ApplyBatch implements Store.
func (s *DynArr) ApplyBatch(workers int, batch []edge.Update) {
	applyConcurrent(s, workers, batch)
}

// Compact rewrites u's adjacency array without tombstones, reclaiming
// slots. It is not part of the paper's design (deletions only mark) but is
// provided for long-running streams.
func (s *DynArr) Compact(u edge.ID) {
	s.locks[u].lock()
	s.core.compact(u)
	s.locks[u].unlock()
}

// Slots returns the number of occupied slots (live + tombstoned) of u,
// exposing fragmentation for tests and stats.
func (s *DynArr) Slots(u edge.ID) int {
	s.locks[u].lock()
	defer s.locks[u].unlock()
	return int(s.core.length[u])
}

// ArenaStats exposes allocator statistics (resize traffic).
func (s *DynArr) ArenaStats() arena.Stats { return s.core.ar.Stats() }
