package dyngraph

import (
	"sort"
	"sync"
	"testing"

	"snapdyn/internal/edge"
)

func TestTrackedMarksMutations(t *testing.T) {
	s := NewTracked(NewDynArr(64, 256))
	if s.DirtyCount() != 0 {
		t.Fatalf("fresh store dirty count = %d, want 0", s.DirtyCount())
	}
	s.Insert(3, 4, 1)
	s.Insert(3, 5, 2)
	s.Insert(10, 3, 3)
	if got := s.DirtyCount(); got != 2 {
		t.Fatalf("dirty count = %d, want 2 (vertices, not mutations)", got)
	}
	if d := s.Dirty(nil); len(d) != 2 || d[0] != 3 || d[1] != 10 {
		t.Fatalf("Dirty = %v, want [3 10]", d)
	}

	got := s.Flush(nil)
	if len(got) != 2 || got[0] != 3 || got[1] != 10 {
		t.Fatalf("Flush = %v, want [3 10]", got)
	}
	if s.DirtyCount() != 0 {
		t.Fatalf("dirty count after flush = %d, want 0", s.DirtyCount())
	}
	if s.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", s.Epoch())
	}

	// Deleting an absent edge must not dirty the vertex; deleting a
	// present one must.
	if s.Delete(20, 21) {
		t.Fatal("delete of absent edge reported success")
	}
	if s.DirtyCount() != 0 {
		t.Fatalf("failed delete dirtied a vertex: %v", s.Dirty(nil))
	}
	if !s.DeleteTuple(3, 4, 1) {
		t.Fatal("delete of present tuple failed")
	}
	if d := s.Flush(nil); len(d) != 1 || d[0] != 3 {
		t.Fatalf("Flush after delete = %v, want [3]", d)
	}
}

func TestTrackedApplyBatchMarksSources(t *testing.T) {
	for _, mk := range []func() Store{
		func() Store { return NewDynArr(128, 512) },
		func() Store { return NewBatched(NewHybrid(128, 512, 4, 7)) },
		func() Store { return NewVpart(128, 512) },
	} {
		s := NewTracked(mk())
		batch := []edge.Update{
			{Edge: edge.Edge{U: 1, V: 2, T: 5}, Op: edge.Insert},
			{Edge: edge.Edge{U: 7, V: 2, T: 5}, Op: edge.Insert},
			{Edge: edge.Edge{U: 1, V: 9, T: 6}, Op: edge.Insert},
			{Edge: edge.Edge{U: 50, V: 1, T: 6}, Op: edge.Delete}, // no-op delete
		}
		s.ApplyBatch(2, batch)
		d := s.Flush(nil)
		want := []uint32{1, 7, 50} // batch marking is conservative
		if len(d) != len(want) {
			t.Fatalf("%s: Flush = %v, want %v", s.Name(), d, want)
		}
		for i := range want {
			if d[i] != want[i] {
				t.Fatalf("%s: Flush = %v, want %v", s.Name(), d, want)
			}
		}
	}
}

func TestTrackedConcurrentMarking(t *testing.T) {
	const n = 1 << 12
	s := NewTracked(NewDynArr(n, 8*n))
	var wg sync.WaitGroup
	workers := 8
	per := n / workers
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				u := edge.ID(w*per + i)
				s.Insert(u, (u+1)%n, uint32(i+1))
			}
		}(w)
	}
	wg.Wait()
	if got := s.DirtyCount(); got != n {
		t.Fatalf("dirty count = %d, want %d", got, n)
	}
	d := s.Flush(nil)
	if len(d) != n {
		t.Fatalf("flush returned %d vertices, want %d", len(d), n)
	}
	if !sort.SliceIsSorted(d, func(i, j int) bool { return d[i] < d[j] }) {
		t.Fatal("flush output not sorted")
	}
	if s.DirtyCount() != 0 {
		t.Fatalf("dirty count after flush = %d, want 0", s.DirtyCount())
	}
}
