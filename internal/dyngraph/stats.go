package dyngraph

import (
	"fmt"

	"snapdyn/internal/edge"
)

// GraphStats summarizes a dynamic graph's shape for reports and examples.
type GraphStats struct {
	Vertices   int
	LiveEdges  int64
	MaxDegree  int
	AvgDegree  float64
	Isolated   int // vertices with no live tuples
	HeavyCount int // vertices with degree >= HeavyThresh
	// HeavyThresh is the degree bound used for HeavyCount.
	HeavyThresh int
}

// Stats scans the store and computes summary statistics. heavyThresh <= 0
// defaults to DefaultDegreeThresh.
func Stats(s Store, heavyThresh int) GraphStats {
	if heavyThresh <= 0 {
		heavyThresh = DefaultDegreeThresh
	}
	st := GraphStats{Vertices: s.NumVertices(), LiveEdges: s.NumEdges(), HeavyThresh: heavyThresh}
	total := 0
	for u := 0; u < st.Vertices; u++ {
		d := s.Degree(edge.ID(u))
		total += d
		if d == 0 {
			st.Isolated++
		}
		if d > st.MaxDegree {
			st.MaxDegree = d
		}
		if d >= heavyThresh {
			st.HeavyCount++
		}
	}
	if st.Vertices > 0 {
		st.AvgDegree = float64(total) / float64(st.Vertices)
	}
	return st
}

// String implements fmt.Stringer.
func (g GraphStats) String() string {
	return fmt.Sprintf("n=%d m=%d maxdeg=%d avgdeg=%.2f isolated=%d heavy(>=%d)=%d",
		g.Vertices, g.LiveEdges, g.MaxDegree, g.AvgDegree, g.Isolated, g.HeavyThresh, g.HeavyCount)
}
