package dyngraph

import (
	"snapdyn/internal/edge"
	"snapdyn/internal/par"
)

// Vpart is the paper's vertex-partitioning representation: vertices are
// assigned to workers deterministically (u mod P), and during batch
// application every worker reads the entire update stream but applies
// only the updates it owns. No locks are needed because each vertex has
// exactly one writer; the cost is that every update is read P times —
// "each update is read by all the threads ... the reads have good spatial
// locality, and hence this approach might work well for a small number of
// threads."
type Vpart struct {
	*DynArr
}

var _ Store = (*Vpart)(nil)

// NewVpart creates a vertex-partitioned store over n vertices.
func NewVpart(n, expectedEdges int) *Vpart {
	s := NewDynArr(n, expectedEdges)
	s.name = "vpart"
	return &Vpart{DynArr: s}
}

// ApplyBatch implements Store. Each worker scans the whole batch and
// applies only updates whose source vertex it owns, lock-free. The batch
// must not run concurrently with other mutators.
func (s *Vpart) ApplyBatch(workers int, batch []edge.Update) {
	if workers <= 0 {
		workers = par.MaxWorkers()
	}
	deltas := make([]int64, workers)
	par.Workers(workers, func(id int) {
		own := uint32(id)
		p := uint32(workers)
		var delta int64
		for i := range batch {
			up := &batch[i]
			if up.U%p != own {
				continue
			}
			if up.Op == edge.Insert {
				s.core.insert(up.U, up.V, up.T)
				delta++
			} else if s.core.deleteTuple(up.U, up.V, up.T) {
				delta--
			}
		}
		deltas[id] = delta
	})
	var total int64
	for _, d := range deltas {
		total += d
	}
	s.live.Add(total)
}
