package dyngraph

import (
	"runtime"
	"sync/atomic"
)

// spinLock is a one-word test-and-set spinlock. The paper's C code
// publishes adjacency appends with a bare atomic increment, which the Go
// memory model does not permit; a per-vertex spinlock costs a single
// uncontended CAS on the fast path and preserves the contention behaviour
// under study (many threads hammering one high-degree vertex).
type spinLock struct {
	v atomic.Uint32
}

func (l *spinLock) lock() {
	for i := 0; ; i++ {
		if l.v.Load() == 0 && l.v.CompareAndSwap(0, 1) {
			return
		}
		if i&63 == 63 {
			runtime.Gosched()
		}
	}
}

func (l *spinLock) unlock() {
	l.v.Store(0)
}
