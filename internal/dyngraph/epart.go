package dyngraph

import (
	"snapdyn/internal/edge"
	"snapdyn/internal/par"
	"snapdyn/internal/psort"
)

// Epart is the paper's edge-partitioning representation: the adjacency
// lists of vertices discovered to be high-degree during insertion are
// split among threads — each worker buffers its inserts to hot vertices
// privately — and a merge step folds the per-thread sub-arrays back into
// single adjacency arrays afterwards. This removes insert contention on
// heavy vertices at the cost of the buffer space and the merge pass, the
// drawback the paper calls out.
type Epart struct {
	*DynArr
	// HotThresh is the degree above which a vertex is treated as
	// high-degree for partitioning purposes.
	HotThresh int
}

var _ Store = (*Epart)(nil)

// NewEpart creates an edge-partitioned store over n vertices. hotThresh
// <= 0 defaults to 8x the expected average degree.
func NewEpart(n, expectedEdges, hotThresh int) *Epart {
	if hotThresh <= 0 {
		avg := 1
		if n > 0 {
			avg = max(1, expectedEdges/n)
		}
		hotThresh = 8 * avg
	}
	s := NewDynArr(n, expectedEdges)
	s.name = "epart"
	return &Epart{DynArr: s, HotThresh: hotThresh}
}

// epBuf is one worker's private buffer of deferred hot-vertex inserts.
type epBuf struct {
	us      []uint32
	entries []uint64
	_       [4]uint64 // avoid false sharing between workers' buffers
}

// ApplyBatch implements Store. Phase 1: workers stream their block of
// updates; inserts to currently-hot vertices are buffered privately,
// everything else goes through the normal locked path. Phase 2 (merge):
// buffered inserts are semi-sorted by vertex and appended group-by-group,
// one lock acquisition per vertex. The batch must not run concurrently
// with other mutators.
func (s *Epart) ApplyBatch(workers int, batch []edge.Update) {
	if workers <= 0 {
		workers = par.MaxWorkers()
	}
	if workers > len(batch) {
		workers = max(1, len(batch))
	}
	hot := uint32(s.HotThresh)
	// Snapshot degrees once: "vertices discovered to be high-degree in
	// the process of insertions" are classified at batch start. A stale
	// classification only shifts an insert between the buffered and
	// direct paths, both correct.
	isHot := make([]bool, s.NumVertices())
	par.For(workers, len(isHot), func(u int) {
		isHot[u] = s.core.alive[u] >= hot
	})
	bufs := make([]epBuf, workers)
	var deferred int64
	par.ForBlock(workers, len(batch), func(lo, hi int) {
		w := blockWorker(workers, len(batch), lo)
		b := &bufs[w]
		for i := lo; i < hi; i++ {
			up := &batch[i]
			if up.Op == edge.Insert && isHot[up.U] {
				b.us = append(b.us, up.U)
				b.entries = append(b.entries, pack(up.V, up.T))
				continue
			}
			if up.Op == edge.Insert {
				s.Insert(up.U, up.V, up.T)
			} else {
				s.DeleteTuple(up.U, up.V, up.T)
			}
		}
	})
	// Merge step: gather all deferred inserts, group by vertex, append.
	var us []uint32
	var entries []uint64
	for w := range bufs {
		us = append(us, bufs[w].us...)
		entries = append(entries, bufs[w].entries...)
	}
	deferred = int64(len(us))
	if deferred == 0 {
		return
	}
	perm := psort.Order(workers, us)
	bounds := groupBounds(us, perm)
	par.ForDynamic(workers, len(bounds)-1, 4, func(glo, ghi int) {
		for g := glo; g < ghi; g++ {
			lo, hi := bounds[g], bounds[g+1]
			u := us[perm[lo]]
			s.locks[u].lock()
			for i := lo; i < hi; i++ {
				e := entries[perm[i]]
				s.core.insert(u, uint32(e>>32), uint32(e))
			}
			s.locks[u].unlock()
		}
	})
	s.live.Add(deferred)
}

// blockWorker mirrors par.ForBlock's static partitioning.
func blockWorker(workers, n, lo int) int {
	q, r := n/workers, n%workers
	big := r * (q + 1)
	if lo < big {
		return lo / (q + 1)
	}
	if q == 0 {
		return workers - 1
	}
	return r + (lo-big)/q
}
